(* Benchmark harness: regenerates every figure of the paper and runs
   Bechamel micro-benchmarks.

   Usage:
     main.exe                 run every report, then the micro-benchmarks,
                              then write BENCH_results.json
     main.exe --report NAME   one report: fig1 fig2 fig3 fig5 fig7 fig8
                              ex3 ex5 sweep-groups sweep-selectivity
                              batch-sweep ...
     main.exe --micro         only the micro-benchmarks
     main.exe --json [PATH]   only the machine-readable results
                              (default PATH: BENCH_results.json)
     main.exe --seed N        seed for every generated workload (default
                              1994); all data generation threads an
                              explicit Random.State from it
     main.exe --smoke         fast subset for CI (@bench-smoke): the
                              batch-size sweep on Figure 1, asserting
                              that E2's peak intermediate-row high-water
                              mark stays strictly below E1's

   See EXPERIMENTS.md for the paper-vs-measured record. *)

open Eager_value
open Eager_schema
open Eager_expr
open Eager_catalog
open Eager_storage
open Eager_fd
open Eager_algebra
open Eager_exec
open Eager_core
open Eager_opt
open Eager_workload

(* every workload generator below receives this seed: same invocation,
   same data, same numbers (modulo the clock) *)
let seed = ref 1994

let section title =
  Printf.printf "\n==========================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==========================================================\n"

(* wall-clock milliseconds, best of three runs *)
let time_ms f =
  let once () =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1000.)
  in
  let r, t1 = once () in
  let _, t2 = once () in
  let _, t3 = once () in
  (r, Float.min t1 (Float.min t2 t3))

let run_both db q =
  let (h1, s1), t1 = time_ms (fun () -> Exec.run db (Plans.e1 db q)) in
  let (h2, s2), t2 = time_ms (fun () -> Exec.run db (Plans.e2 db q)) in
  ((h1, s1, t1), (h2, s2, t2))

let decide_ok db q =
  match Planner.decide db q with
  | Ok d -> d
  | Error e -> failwith (Eager_robust.Err.to_string e)

let plan_report name db q =
  Printf.printf "%s\n" (Format.asprintf "%a@." Canonical.pp q);
  Printf.printf "TestFD: %s\n" (Testfd.verdict_to_string (Testfd.test db q));
  let (h1, s1, t1), (h2, s2, t2) = run_both db q in
  Printf.printf "\nPlan 1 (group-by after join), executed:\n%s\n"
    (Optree.to_string s1);
  Printf.printf "Plan 2 (group-by before join), executed:\n%s\n"
    (Optree.to_string s2);
  let d = decide_ok db q in
  Printf.printf "%-24s %12s %12s %12s\n" name "rows" "est. cost" "time (ms)";
  Printf.printf "%-24s %12d %12.0f %12.2f\n" "plan1 (lazy)"
    (Heap.length h1) d.Planner.cost_lazy t1;
  Printf.printf "%-24s %12d %12s %12.2f\n" "plan2 (eager)"
    (Heap.length h2)
    (match d.Planner.cost_eager with
    | Some c -> Printf.sprintf "%.0f" c
    | None -> "-")
    t2;
  Printf.printf "optimizer chooses: %s\n"
    (Planner.kind_to_string d.Planner.chosen_kind);
  Printf.printf "results identical: %b\n"
    (Exec.multiset_equal (Heap.to_list h1) (Heap.to_list h2))

(* ------------------------------------------------------------------ *)

let report_fig1 () =
  section
    "FIG1 — Figure 1 / Example 1: Employee(10000) x Department(100), COUNT";
  let w = Employee_dept.setup ~seed:!seed ~employees:10_000 ~departments:100 () in
  plan_report "fig1" w.Employee_dept.db w.Employee_dept.query;
  print_endline
    "\npaper: join input 10000x100 vs 100x100; group input 10000 both ways;\n\
     both plans yield 100 rows and Plan 2 wins.";
  0

let report_fig2 () =
  section "FIG2 — Figure 2: SQL2 three-valued AND / OR truth tables";
  let vals = [ Tbool.True; Tbool.Unknown; Tbool.False ] in
  let header =
    Printf.sprintf "%-9s| %-9s %-9s %-9s" "AND" "true" "unknown" "false"
  in
  print_endline header;
  print_endline (String.make (String.length header) '-');
  List.iter
    (fun a ->
      Printf.printf "%-9s| %-9s %-9s %-9s\n" (Tbool.to_string a)
        (Tbool.to_string (Tbool.and_ a Tbool.True))
        (Tbool.to_string (Tbool.and_ a Tbool.Unknown))
        (Tbool.to_string (Tbool.and_ a Tbool.False)))
    vals;
  print_newline ();
  Printf.printf "%-9s| %-9s %-9s %-9s\n" "OR" "true" "unknown" "false";
  print_endline (String.make (String.length header) '-');
  List.iter
    (fun a ->
      Printf.printf "%-9s| %-9s %-9s %-9s\n" (Tbool.to_string a)
        (Tbool.to_string (Tbool.or_ a Tbool.True))
        (Tbool.to_string (Tbool.or_ a Tbool.Unknown))
        (Tbool.to_string (Tbool.or_ a Tbool.False)))
    vals;
  0

let report_fig3 () =
  section "FIG3 — Figure 3: interpretation operators and null-equality";
  Printf.printf "%-10s %-10s %-10s\n" "P" "floor(P)" "ceil(P)";
  List.iter
    (fun p ->
      Printf.printf "%-10s %-10b %-10b\n" (Tbool.to_string p) (Tbool.holds p)
        (Tbool.possible p))
    [ Tbool.True; Tbool.Unknown; Tbool.False ];
  print_newline ();
  let cases =
    [
      (Value.Null, Value.Null);
      (Value.Null, Value.Int 1);
      (Value.Int 1, Value.Int 1);
      (Value.Int 1, Value.Int 2);
    ]
  in
  Printf.printf "%-14s %-14s %-8s %-12s\n" "X" "Y" "X =n Y" "floor(X=Y)";
  List.iter
    (fun (x, y) ->
      Printf.printf "%-14s %-14s %-8b %-12b\n" (Value.to_string x)
        (Value.to_string y) (Value.null_eq x y)
        (Tbool.holds (Value.cmp_eq x y)))
    cases;
  0

let fig5_script =
  {|CREATE DOMAIN DepIdType SMALLINT CHECK (VALUE > 0 AND VALUE < 100);
    CREATE TABLE Dept (DeptID DepIdType, PRIMARY KEY (DeptID));
    CREATE TABLE Department (
      EmpID INTEGER CHECK (EmpID > 0),
      EmpSID INTEGER UNIQUE,
      LastName CHARACTER(30) NOT NULL,
      FirstName CHARACTER(30),
      DeptID DepIdType CHECK (DeptID > 5),
      PRIMARY KEY (EmpID),
      FOREIGN KEY (DeptID) REFERENCES Dept (DeptID));|}

let report_fig5 () =
  section "FIG5 — Figure 5: SQL2 constraint DDL into the catalog";
  let db = Database.create () in
  (match Eager_parser.Binder.run_script db fig5_script with
  | Ok _ -> ()
  | Error msg -> failwith msg);
  (match Catalog.find_table (Database.catalog db) "Department" with
  | None -> failwith "table missing"
  | Some td ->
      Printf.printf "%s\n\n" (Format.asprintf "%a" Table_def.pp td);
      Printf.printf "declared keys: %s\n"
        (String.concat " | " (List.map (String.concat ",") (Table_def.keys td)));
      Printf.printf "NOT NULL columns: %s\n"
        (String.concat ", " (Table_def.not_null td));
      Printf.printf "\nT predicates handed to TestFD (rel = D):\n";
      List.iter
        (fun e -> Printf.printf "  %s\n" (Expr.to_string e))
        (Catalog.table_checks (Database.catalog db) ~rel:"D" td));
  0

let report_fig7 () =
  section "FIG7 — Figure 7: transitive closure in TestFD";
  let cr = Colref.make "R" in
  let a1 = cr "A1" and a2 = cr "A2" and a3 = cr "A3" and a4 = cr "A4" in
  print_endline "known: a: A1 = 25   b: A1 -> A3   c: A3 = A4";
  print_endline "claim: A2 -> A4";
  let closure =
    Closure.compute
      ~start:(Colref.set_of_list [ a2 ])
      ~constants:(Colref.set_of_list [ a1 ])
      ~equalities:[ (a3, a4) ]
      ~fds:[ Fd.make [ a1 ] [ a3 ] ]
  in
  Printf.printf "closure({A2}) = %s\n"
    (Format.asprintf "%a" Colref.pp_set closure);
  Printf.printf "A2 -> A4 derived: %b\n" (Colref.Set.mem a4 closure);
  0

let report_fig8 () =
  section
    "FIG8 — Figure 8 / Example 4: valid but disadvantageous (A 10000, B 100)";
  let w = Contrived.setup ~seed:!seed () in
  plan_report "fig8" w.Contrived.db w.Contrived.query;
  print_endline
    "\npaper: lazy join 10000x100 -> 50 rows -> 10 groups;\n\
     eager groups 10000 -> 9000 then joins 9000x100; Plan 1 wins.";
  0

let report_ex3 () =
  section "EX3 — Example 3: printer accounting, full TestFD walk-through";
  let w = Printers.setup ~seed:!seed () in
  let db = w.Printers.db and q = w.Printers.query in
  let verdict, trace = Testfd.test_traced db q in
  Printf.printf "%s\n" (Format.asprintf "%a@." Canonical.pp q);
  Printf.printf "step 1-2: %d CNF clauses kept, %d dropped (non-equality)\n"
    trace.Testfd.clauses_kept trace.Testfd.clauses_dropped;
  Printf.printf "step 3:   %d DNF disjunct(s)\n" trace.Testfd.disjuncts;
  List.iteri
    (fun idx (cols, r2_ok, ga1_ok) ->
      Printf.printf
        "step 4, disjunct %d:\n\
        \  closure S = {%s}\n\
        \  (d) key of R2 in S: %b\n\
        \  (h) GA1+ in S: %b\n"
        (idx + 1)
        (String.concat ", " cols)
        r2_ok ga1_ok)
    trace.Testfd.closures;
  Printf.printf "verdict:  %s\n\n" (Testfd.verdict_to_string verdict);
  plan_report "ex3" db q;
  (* the paper's closing remark on Example 3: predicate expansion *)
  let q' = Expand.query q in
  let group_input plan =
    let _, st = Exec.run db plan in
    match Optree.find ~prefix:"GroupBy" st with
    | Some node -> List.hd (Optree.in_rows node)
    | None -> 0
  in
  Printf.printf
    "\npredicate expansion (paper: \"add A.Machine = 'dragon' to R1'\"):\n\
     derived atoms: %d; eager grouping input %d -> %d rows\n"
    (Expand.derived_count q) (group_input (Plans.e2 db q))
    (group_input (Plans.e2 db q'));
  0

let report_ex5 () =
  section "EX5 — Section 8: performing join before group-by (UserInfo view)";
  let w = Printers.setup ~seed:!seed () in
  let db = w.Printers.db and q = w.Printers.query in
  print_endline "aggregated view body (materialised by the standard strategy):";
  print_endline (Plan.to_string (Reverse.view_plan db q));
  (match Reverse.eligible db q with
  | Ok () -> print_endline "reverse transformation eligible: yes"
  | Error r -> Printf.printf "reverse transformation eligible: no (%s)\n" r);
  let (hv, _), tv =
    time_ms (fun () -> Exec.run db (Reverse.plan_of db q Reverse.Materialize_view))
  in
  let (hf, _), tf =
    time_ms (fun () -> Exec.run db (Reverse.plan_of db q Reverse.Flatten))
  in
  Printf.printf "%-28s %10s %12s\n" "strategy" "rows" "time (ms)";
  Printf.printf "%-28s %10d %12.2f\n" "materialize view, then join"
    (Heap.length hv) tv;
  Printf.printf "%-28s %10d %12.2f\n" "flatten: join, then group"
    (Heap.length hf) tf;
  Printf.printf "results identical: %b\n"
    (Exec.multiset_equal (Heap.to_list hv) (Heap.to_list hf));
  0

let sweep_report title points =
  Printf.printf "%-12s %12s %12s %12s %12s  %s\n" "knob" "cost E1" "cost E2"
    "E1 (ms)" "E2 (ms)" "choice";
  List.iter
    (fun p ->
      let db = p.Sweep.db and q = p.Sweep.query in
      let d = decide_ok db q in
      let (_, _, t1), (_, _, t2) = run_both db q in
      Printf.printf "%-12.2f %12.0f %12.0f %12.2f %12.2f  %s\n" p.Sweep.knob
        d.Planner.cost_lazy
        (Option.value d.Planner.cost_eager ~default:nan)
        t1 t2
        (match d.Planner.chosen_kind with
        | Planner.Eager_group -> "eager (E2)"
        | Planner.Eager_partial_group -> "eager partial"
        | Planner.Lazy_group -> "lazy (E1)"))
    points;
  Printf.printf
    "(%s: eager wins where the group-by shrinks the join input most)\n" title

let report_sweep_groups () =
  section "SWEEP-G — Section 7 trade-off: vary rows-per-group (10000 employees)";
  let points =
    Sweep.by_fanin ~seed:!seed ~employees:10_000
      ~departments:[ 5; 10; 50; 100; 500; 1000; 5000; 10000 ]
      ()
  in
  sweep_report "fan-in sweep" points;
  0

let report_sweep_selectivity () =
  section
    "SWEEP-S — Section 7 trade-off: vary join selectivity (10000 employees, \
     50 departments)";
  let points =
    Sweep.by_selectivity ~seed:!seed ~employees:10_000 ~departments:50
      ~fractions:[ 0.01; 0.05; 0.1; 0.25; 0.5; 0.75; 1.0 ]
      ()
  in
  sweep_report "selectivity sweep" points;
  0

let report_pipeline () =
  section
    "SEC7-PIPE — Section 7, last observation: grouping output is sorted; \
     later joins can exploit it";
  (* high-cardinality grouping (15000 groups out of 20000 rows): the
     downstream sort the merge join would need is substantial, so skipping
     it is visible *)
  let w = Employee_dept.setup ~seed:!seed ~employees:20_000 ~departments:15_000 () in
  let db = w.Employee_dept.db and q = w.Employee_dept.query in
  let e2 = Plans.e2 db q in
  let run ja ga =
    let options = { Exec.default_options with join_algo = ja; group_algo = ga } in
    let (h, st, _), t = time_ms (fun () -> Exec.run_ordered ~options db e2) in
    (h, st, t)
  in
  let _, st_sorted, t_sorted = run Exec.Merge_join Exec.Sort_group in
  let _, _, t_hash = run Exec.Hash_join Exec.Hash_group in
  let _, _, t_merge_unsorted = run Exec.Merge_join Exec.Hash_group in
  (match Optree.find ~prefix:"Join" st_sorted with
  | Some node -> Printf.printf "executed join node: %s\n" node.Optree.label
  | None -> ());
  Printf.printf "%-44s %10s\n" "E2 configuration" "time (ms)";
  Printf.printf "%-44s %10.2f\n" "sort-group + merge join (R1' presorted)"
    t_sorted;
  Printf.printf "%-44s %10.2f\n" "hash-group + hash join" t_hash;
  Printf.printf "%-44s %10.2f\n" "hash-group + merge join (must sort)"
    t_merge_unsorted;
  print_endline
    "(the merge join over the sort-grouped R1' skips its left sort — the\n\
     'resulting table is normally sorted on the grouping columns' claim;\n\
     whether the skip pays off overall depends on how the grouping was\n\
     implemented, which is why it is a property the executor *tracks*\n\
     rather than a plan the optimizer forces)";
  0

let report_unique () =
  section
    "UNIQ — Klug/Dayal singleton-group optimisation (grouping on a derived \
     key)";
  let w = Sales.setup ~seed:!seed ~customers:500 ~orders:30_000 () in
  let db = w.Sales.db in
  let td =
    Option.get (Catalog.find_table (Database.catalog db) "Orders")
  in
  let scan =
    Plan.scan ~table:"Orders" ~rel:"O" (Table_def.schema ~rel:"O" td)
  in
  let g =
    Plan.group
      ~by:[ Colref.make "O" "OrderID" ]
      ~aggs:[ Agg.sum (Colref.make "" "amt") (Expr.col "O" "Amount") ]
      scan
  in
  let marked = Unique_group.mark db g in
  let (h1, _), t_hash = time_ms (fun () -> Exec.run db g) in
  let (h2, _), t_fast = time_ms (fun () -> Exec.run db marked) in
  Printf.printf "%-36s %10s %10s\n" "plan" "rows" "time (ms)";
  Printf.printf "%-36s %10d %10.2f\n" "hash grouping" (Heap.length h1) t_hash;
  Printf.printf "%-36s %10d %10.2f\n" "singleton fast path (marked)"
    (Heap.length h2) t_fast;
  Printf.printf "results identical: %b\n"
    (Exec.multiset_equal (Heap.to_list h1) (Heap.to_list h2));
  0

let report_sweep_scale () =
  section
    "SWEEP-N — scale sweep: Example 1 shape at growing sizes (100 \
     rows/group)";
  Printf.printf "%10s %10s %12s %12s %10s\n" "employees" "depts" "E1 (ms)"
    "E2 (ms)" "speedup";
  List.iter
    (fun employees ->
      let departments = max 2 (employees / 100) in
      let w = Employee_dept.setup ~seed:!seed ~employees ~departments () in
      let db = w.Employee_dept.db and q = w.Employee_dept.query in
      let (_, t1), (_, t2) =
        ( time_ms (fun () -> Exec.run_rows db (Plans.e1 db q)),
          time_ms (fun () -> Exec.run_rows db (Plans.e2 db q)) )
      in
      Printf.printf "%10d %10d %12.2f %12.2f %9.1fx\n" employees departments
        t1 t2 (t1 /. Float.max 0.01 t2))
    [ 1_000; 5_000; 20_000; 50_000 ];
  print_endline
    "(the eager win is the join-input reduction, so it grows with scale at \
     fixed rows/group)";
  0

let report_estimator () =
  section
    "EST — estimator ablation: range selectivity with and without \
     histograms (skewed data)";
  (* 90% of values in [0,10), 10% in [90,100) *)
  let db = Database.create () in
  Database.create_table db
    (Table_def.make "Sk"
       [ { Table_def.cname = "v"; ctype = Ctype.Int; domain = None } ]
       []);
  for i = 0 to 8_999 do
    Database.insert_exn db "Sk" [ Value.Int (i mod 10) ]
  done;
  for i = 0 to 999 do
    Database.insert_exn db "Sk" [ Value.Int (90 + (i mod 10)) ]
  done;
  let td = Option.get (Catalog.find_table (Database.catalog db) "Sk") in
  let scan = Plan.scan ~table:"Sk" ~rel:"S" (Table_def.schema ~rel:"S" td) in
  let prof = Estimate.profile db scan in
  let ndv c = Option.value (Colref.Map.find_opt c prof.Estimate.ndv) ~default:10. in
  let hist c = Colref.Map.find_opt c prof.Estimate.hist in
  Printf.printf "%-18s %10s %12s %12s %12s\n" "predicate" "actual"
    "uniform est" "hist est" "hist err";
  List.iter
    (fun threshold ->
      let pred = Expr.Cmp (Expr.Lt, Expr.col "S" "v", Expr.int threshold) in
      let actual =
        float_of_int
          (List.length (Exec.run_rows db (Plan.select pred scan)))
      in
      let uniform = 10_000. *. Estimate.selectivity ~ndv pred in
      let with_hist = 10_000. *. Estimate.selectivity ~ndv ~hist pred in
      Printf.printf "%-18s %10.0f %12.0f %12.0f %11.0f%%\n"
        (Printf.sprintf "v < %d" threshold)
        actual uniform with_hist
        (Float.abs (with_hist -. actual) /. Float.max 1. actual *. 100.))
    [ 5; 10; 50; 95 ];
  print_endline
    "(the uniform 1/3 guess is off by an order of magnitude on skew; the \
     16-bucket histogram tracks it)";
  0

(* ------------------------------------------------------------------ *)
(* batch-size sweep: the pull pipeline's knob.  Throughput is total
   rows produced across all operators per second (pipeline work rate);
   peak is the high-water mark of simultaneously live intermediate rows
   — the memory axis where group-by before join pays off (E2's hash
   join builds over ~100 aggregated rows instead of 10000 base rows). *)

let swept_batch_sizes = [ 1; 16; 256; 1024; 8192 ]

let profiled_run db plan batch_rows =
  let options = { Exec.default_options with batch_rows } in
  let (h, st, _, prof), t =
    time_ms (fun () -> Exec.run_profiled ~options db plan)
  in
  let produced = Optree.total_produced st in
  let rows_per_sec =
    float_of_int produced /. (Float.max 0.001 t /. 1000.)
  in
  (h, st, prof, t, rows_per_sec)

let batch_sweep_points ?(sizes = swept_batch_sizes) db q =
  let e1 = Plans.e1 db q and e2 = Plans.e2 db q in
  List.map
    (fun batch_rows ->
      let _, _, prof1, t1, rps1 = profiled_run db e1 batch_rows in
      let _, _, prof2, t2, rps2 = profiled_run db e2 batch_rows in
      (batch_rows, (t1, rps1, prof1), (t2, rps2, prof2)))
    sizes

let print_batch_sweep points =
  Printf.printf "%10s %10s %14s %10s %10s %14s %10s\n" "batch" "E1 (ms)"
    "E1 rows/s" "E1 peak" "E2 (ms)" "E2 rows/s" "E2 peak";
  List.iter
    (fun (batch_rows, (t1, rps1, p1), (t2, rps2, p2)) ->
      Printf.printf "%10d %10.2f %14.0f %10d %10.2f %14.0f %10d\n" batch_rows
        t1 rps1 p1.Exec.peak_live_rows t2 rps2 p2.Exec.peak_live_rows)
    points

let report_batch_sweep () =
  section
    "BATCH — batch-size sweep on Figure 1 (Employee 10000 x Department \
     100): throughput and peak live intermediate rows";
  let w =
    Employee_dept.setup ~seed:!seed ~employees:10_000 ~departments:100 ()
  in
  let points = batch_sweep_points w.Employee_dept.db w.Employee_dept.query in
  print_batch_sweep points;
  print_endline
    "(peak counts rows held by pipeline breakers — hash-join build sides,\n\
     sort buffers, group tables.  E1 must build its hash join over all\n\
     10000 employees; E2 groups them first, streaming, and builds over\n\
     ~100 aggregated rows, so its peak is two orders of magnitude lower\n\
     at every batch size)";
  0

(* ------------------------------------------------------------------ *)
(* the N-way star: Part -> Supplier -> Region, where no full eager push
   is valid (TestFD says NO at every cut) but partial pre-aggregation
   below both joins collapses ~10000 parts to ~50 partial groups before
   any join input is built *)

let nway_measurements () =
  let w = Star.setup ~seed:!seed () in
  let db = w.Star.db and q = w.Star.query in
  let d = decide_ok db q in
  let forced_e1 =
    match Planner.decide ~force:Planner.E1 db q with
    | Ok d1 -> d1.Planner.chosen
    | Error e -> failwith (Eager_robust.Err.to_string e)
  in
  let profiled plan =
    let (h, _, _, prof), t = time_ms (fun () -> Exec.run_profiled db plan) in
    (Heap.length h, t, prof.Exec.peak_live_rows)
  in
  (d, profiled forced_e1, profiled d.Planner.chosen)

let report_nway () =
  section
    "NWAY — three-relation star (Part 10000 x Supplier 50 x Region 5): \
     forced E1 vs the planner's best placement";
  let d, (rows1, t1, peak1), (rows2, t2, peak2) = nway_measurements () in
  Printf.printf "placements (%d candidates, ranked by cost):\n"
    (List.length d.Planner.candidates);
  List.iteri
    (fun i (p : Placement.t) ->
      Printf.printf "  %d. %-28s cost %10.0f%s\n" (i + 1)
        (Placement.describe p) p.Placement.cost
        (if p.Placement.plan == d.Planner.chosen then "  [chosen]" else ""))
    d.Planner.candidates;
  Printf.printf "%-32s %10s %10s %12s\n" "" "rows" "ms" "peak live";
  Printf.printf "%-32s %10d %10.2f %12d\n" "forced E1" rows1 t1 peak1;
  Printf.printf "%-32s %10d %10.2f %12d\n"
    (Planner.kind_to_string d.Planner.chosen_kind)
    rows2 t2 peak2;
  print_endline
    "(the full eager push is invalid here — suppliers share regions, so \
     TestFD says NO\n\
    \ at every cut — but the bounded partial group below both joins \
     pre-aggregates the\n\
    \ fact table, and the finalizing group above merges per region)";
  if rows1 = rows2 && peak2 < peak1 then 0 else 1

(* CI smoke: the sweep at full Figure-1 size, with the paper's memory
   claim enforced rather than just printed *)
let report_smoke () =
  section "SMOKE — batch sweep + E2-peak-below-E1 assertion (Figure 1)";
  let w =
    Employee_dept.setup ~seed:!seed ~employees:10_000 ~departments:100 ()
  in
  let points =
    batch_sweep_points ~sizes:[ 1; 1024 ] w.Employee_dept.db
      w.Employee_dept.query
  in
  print_batch_sweep points;
  let ok =
    List.for_all
      (fun (_, (_, _, p1), (_, _, p2)) ->
        p2.Exec.peak_live_rows < p1.Exec.peak_live_rows)
      points
  in
  Printf.printf "E2 peak strictly below E1 peak at every batch size: %b\n" ok;
  if ok then 0 else 1

(* ------------------------------------------------------------------ *)
(* the paged engine under pressure: Figure 1 with a buffer pool far
   below the lazy plan's build side.  Both plans run to completion
   through the spill breakers and agree on the result; the eager plan's
   pinned-page high-water mark stays strictly below the lazy plan's,
   because one group row per department fits the pool while one build
   row per employee cannot. *)

let spill_storage =
  { Database.pool_pages = Some 32; page_size = 1024; spill_dir = None }

let spill_measurements () =
  let w =
    Employee_dept.setup ~storage:spill_storage ~seed:!seed ~employees:10_000
      ~departments:100 ()
  in
  let db = w.Employee_dept.db and q = w.Employee_dept.query in
  let pool =
    match Database.buffer_pool db with
    | Some p -> p
    | None -> failwith "paged workload has no buffer pool"
  in
  let measure plan =
    Buffer_pool.reset_peak pool;
    let options = { Exec.default_options with spill = Spill.for_db db } in
    let rows, ms = time_ms (fun () -> Exec.run_rows ~options db plan) in
    (rows, ms, (Buffer_pool.stats pool).Buffer_pool.peak_pinned)
  in
  let m1 = measure (Plans.e1 db q) in
  let m2 = measure (Plans.e2 db q) in
  (db, m1, m2)

let report_spill () =
  section
    "SPILL — Figure 1 on the paged engine (32-page pool << E1 build side)";
  let db, (r1, t1, peak1), (r2, t2, peak2) = spill_measurements () in
  let s = Option.get (Database.pool_stats db) in
  Printf.printf "%-24s %12s %12s %14s\n" "" "rows" "time (ms)" "peak pinned";
  Printf.printf "%-24s %12d %12.2f %14d\n" "plan1 (lazy)" (List.length r1) t1
    peak1;
  Printf.printf "%-24s %12d %12.2f %14d\n" "plan2 (eager)" (List.length r2) t2
    peak2;
  Printf.printf
    "pool: hits=%d misses=%d evictions=%d page_reads=%d page_writes=%d\n"
    s.Buffer_pool.hits s.Buffer_pool.misses s.Buffer_pool.evictions
    s.Buffer_pool.page_reads s.Buffer_pool.page_writes;
  let identical = Exec.multiset_equal r1 r2 in
  Printf.printf "results identical: %b\n" identical;
  Printf.printf "E2 peak pinned strictly below E1's: %b\n" (peak2 < peak1);
  Database.close_storage db;
  if identical && peak2 < peak1 then 0 else 1

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per figure/series *)

open Bechamel
open Toolkit

let micro_tests () =
  let fig1 = Employee_dept.setup ~seed:!seed ~employees:2_000 ~departments:50 () in
  let fig1_db = fig1.Employee_dept.db and fig1_q = fig1.Employee_dept.query in
  let fig1_e1 = Plans.e1 fig1_db fig1_q and fig1_e2 = Plans.e2 fig1_db fig1_q in
  let fig8 =
    Contrived.setup ~seed:!seed ~a_rows:2_000 ~b_rows:100 ~matched_rows:50
      ~matched_groups:10 ~a_groups:1_800 ()
  in
  let fig8_db = fig8.Contrived.db and fig8_q = fig8.Contrived.query in
  let fig8_e1 = Plans.e1 fig8_db fig8_q and fig8_e2 = Plans.e2 fig8_db fig8_q in
  let ex3 = Printers.setup ~seed:!seed ~users:200 () in
  let ex3_db = ex3.Printers.db and ex3_q = ex3.Printers.query in
  let group_w = Employee_dept.setup ~seed:!seed ~employees:5_000 ~departments:100 () in
  let gdb = group_w.Employee_dept.db in
  let gq = group_w.Employee_dept.query in
  let group_plan = Plans.e2_r1_prime gdb gq in
  let join_w = Employee_dept.setup ~seed:!seed ~employees:400 ~departments:400 () in
  let jdb = join_w.Employee_dept.db and jq = join_w.Employee_dept.query in
  let join_plan = Plans.e1 jdb jq in
  let with_join algo () =
    Exec.run ~options:{ Exec.default_options with join_algo = algo } jdb
      join_plan
  in
  let with_group algo () =
    Exec.run ~options:{ Exec.default_options with group_algo = algo } gdb
      group_plan
  in
  let cr = Colref.make "R" in
  let closure_inputs =
    ( Colref.set_of_list [ cr "A2" ],
      Colref.set_of_list [ cr "A1" ],
      [ (cr "A3", cr "A4") ],
      [ Fd.make [ cr "A1" ] [ cr "A3" ] ] )
  in
  Test.make_grouped ~name:"eagerdb"
    [
      Test.make ~name:"fig1/plan1-lazy"
        (Staged.stage (fun () -> Exec.run fig1_db fig1_e1));
      Test.make ~name:"fig1/plan2-eager"
        (Staged.stage (fun () -> Exec.run fig1_db fig1_e2));
      Test.make ~name:"fig8/plan1-lazy"
        (Staged.stage (fun () -> Exec.run fig8_db fig8_e1));
      Test.make ~name:"fig8/plan2-eager"
        (Staged.stage (fun () -> Exec.run fig8_db fig8_e2));
      Test.make ~name:"testfd/ex1"
        (Staged.stage (fun () -> Testfd.test fig1_db fig1_q));
      Test.make ~name:"testfd/ex3"
        (Staged.stage (fun () -> Testfd.test ex3_db ex3_q));
      Test.make ~name:"planner/decide-ex3"
        (Staged.stage (fun () -> Planner.decide ex3_db ex3_q));
      Test.make ~name:"groupby/hash" (Staged.stage (with_group Exec.Hash_group));
      Test.make ~name:"groupby/sort" (Staged.stage (with_group Exec.Sort_group));
      Test.make ~name:"join/nested-loop"
        (Staged.stage (with_join Exec.Nested_loop));
      Test.make ~name:"join/hash" (Staged.stage (with_join Exec.Hash_join));
      Test.make ~name:"join/merge" (Staged.stage (with_join Exec.Merge_join));
      Test.make ~name:"closure/fig7"
        (Staged.stage (fun () ->
             let start, constants, equalities, fds = closure_inputs in
             Closure.compute ~start ~constants ~equalities ~fds));
      (* Section 7 pipeline: E2 with presorted merge join vs hash *)
      Test.make ~name:"pipeline/e2-sortgroup-mergejoin"
        (Staged.stage (fun () ->
             Exec.run
               ~options:
                 {
                   Exec.default_options with
                   join_algo = Exec.Merge_join;
                   group_algo = Exec.Sort_group;
                 }
               fig1_db fig1_e2));
      Test.make ~name:"pipeline/e2-hashgroup-hashjoin"
        (Staged.stage (fun () -> Exec.run fig1_db fig1_e2));
      (* unique-group fast path vs hash grouping on a key *)
      (let sales = Sales.setup ~seed:!seed ~customers:100 ~orders:4_000 () in
       let sdb = sales.Sales.db in
       let std_ =
         Option.get (Catalog.find_table (Database.catalog sdb) "Orders")
       in
       let sscan =
         Plan.scan ~table:"Orders" ~rel:"O" (Table_def.schema ~rel:"O" std_)
       in
       let sgroup =
         Plan.group
           ~by:[ Colref.make "O" "OrderID" ]
           ~aggs:[ Agg.sum (Colref.make "" "amt") (Expr.col "O" "Amount") ]
           sscan
       in
       Test.make ~name:"unique-group/hash"
         (Staged.stage (fun () -> Exec.run sdb sgroup)));
      (let sales = Sales.setup ~seed:!seed ~customers:100 ~orders:4_000 () in
       let sdb = sales.Sales.db in
       let std_ =
         Option.get (Catalog.find_table (Database.catalog sdb) "Orders")
       in
       let sscan =
         Plan.scan ~table:"Orders" ~rel:"O" (Table_def.schema ~rel:"O" std_)
       in
       let sgroup =
         Unique_group.mark sdb
           (Plan.group
              ~by:[ Colref.make "O" "OrderID" ]
              ~aggs:[ Agg.sum (Colref.make "" "amt") (Expr.col "O" "Amount") ]
              sscan)
       in
       Test.make ~name:"unique-group/fast-path"
         (Staged.stage (fun () -> Exec.run sdb sgroup)));
    ]

let run_micro () =
  section "MICRO — Bechamel micro-benchmarks (ns per run, OLS estimate)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
        in
        (name, est) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Printf.printf "%-40s %16s %14s\n" "benchmark" "ns/run" "ms/run";
  List.iter
    (fun (name, est) ->
      Printf.printf "%-40s %16.0f %14.3f\n" name est (est /. 1e6))
    rows;
  0

(* ------------------------------------------------------------------ *)
(* machine-readable results: one JSON object per workload, E1/E2 wall
   time, output rows and throughput, written where CI can diff it *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_workloads () =
  [
    ( "fig1",
      let w =
        Employee_dept.setup ~seed:!seed ~employees:10_000 ~departments:100 ()
      in
      (w.Employee_dept.db, w.Employee_dept.query) );
    ( "fig8",
      let w = Contrived.setup ~seed:!seed () in
      (w.Contrived.db, w.Contrived.query) );
    ( "ex3",
      let w = Printers.setup ~seed:!seed () in
      (w.Printers.db, w.Printers.query) );
    ( "parts",
      let w = Parts.setup ~seed:!seed () in
      (w.Parts.db, w.Parts.query) );
    ( "sales",
      let w = Sales.setup ~seed:!seed ~customers:500 ~orders:30_000 () in
      (w.Sales.db, w.Sales.query) );
  ]

(* replication overhead: group-committed insert throughput on a live
   server, with and without a hot standby consuming the WAL stream.
   The commit tap publishes into the hub either way (it is always
   installed); the "on" side adds a connected sender session and a
   standby applying every record, and also reports how long the standby
   needed to drain to the primary's final LSN after the last ack. *)
let repl_throughput ~standby:with_standby ~inserts ~writers =
  let module Server = Eager_server.Server in
  let module Client = Eager_server.Client in
  let ok what = function
    | Ok v -> v
    | Error e ->
        Printf.eprintf "bench replication: %s: %s\n" what
          (Eager_robust.Err.to_string e);
        exit 2
  in
  let uniq =
    Printf.sprintf "%d_%d_%s" (Unix.getpid ()) inserts
      (if with_standby then "on" else "off")
  in
  let path base =
    Filename.concat (Filename.get_temp_dir_name ())
      ("eagerdb_bench_" ^ base ^ uniq)
  in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go k = k + m <= n && (String.sub s k m = sub || go (k + 1)) in
    go 0
  in
  let psock = path "p.sock" in
  let prim, _ =
    ok "primary start"
      (Server.start
         {
           (Server.default_config (Server.L_unix psock)) with
           db_dir = Some (path "pdb");
           read_timeout_ms = 10_000.;
         })
  in
  let stby =
    if not with_standby then None
    else
      Some
        (fst
           (ok "standby start"
              (Server.start
                 {
                   (Server.default_config (Server.L_unix (path "s.sock"))) with
                   db_dir = Some (path "sdb");
                   read_timeout_ms = 10_000.;
                   role =
                     Server.Standby
                       { primary = Client.A_unix psock; repl_seed = !seed };
                 })))
  in
  let pcfg = Client.config ~timeout_ms:10_000. ~retries:5 (Client.A_unix psock) in
  let run_ok sql =
    match ok sql (Client.run pcfg sql) with
    | Client.Ok_text out -> out
    | Client.Refused { msg; _ } | Client.Failed { msg; _ } ->
        Printf.eprintf "bench replication: %s: %s\n" sql msg;
        exit 2
  in
  ignore (run_ok "CREATE TABLE b (id INT NOT NULL, PRIMARY KEY (id));");
  let per_writer = inserts / writers in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init writers (fun w ->
        Thread.create
          (fun () ->
            for k = 1 to per_writer do
              ignore
                (run_ok
                   (Printf.sprintf "INSERT INTO b VALUES (%d);"
                      ((w * 1_000_000) + k)))
            done)
          ())
  in
  List.iter Thread.join threads;
  let commit_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let final_lsn = 1 + (per_writer * writers) in
  let catchup_ms =
    match stby with
    | None -> None
    | Some _ ->
        let scfg =
          Client.config ~timeout_ms:10_000. ~retries:5
            (Client.A_unix (path "s.sock"))
        in
        let t1 = Unix.gettimeofday () in
        let target = Printf.sprintf "applied_lsn=%d" final_lsn in
        let rec drain () =
          match Client.run scfg "STATUS;" with
          | Ok (Client.Ok_text out) when contains out target -> ()
          | _ ->
              Thread.delay 0.01;
              drain ()
        in
        drain ();
        Some ((Unix.gettimeofday () -. t1) *. 1000.)
  in
  Server.stop prim;
  Option.iter Server.stop stby;
  let commits = per_writer * writers in
  let per_sec = float_of_int commits /. (Float.max 0.001 commit_ms /. 1000.) in
  (commits, commit_ms, per_sec, catchup_ms)

let json_replication () =
  let inserts = 400 and writers = 4 in
  let side ~standby =
    let commits, ms, per_sec, catchup = repl_throughput ~standby ~inserts ~writers in
    Printf.sprintf "{\"commits\": %d, \"ms\": %.1f, \"commits_per_sec\": %.0f%s}"
      commits ms per_sec
      (match catchup with
      | None -> ""
      | Some c -> Printf.sprintf ", \"standby_drain_ms\": %.1f" c)
  in
  Printf.sprintf
    "{\"writers\": %d,\n\
    \     \"replication_off\": %s,\n\
    \     \"replication_on\": %s}"
    writers (side ~standby:false) (side ~standby:true)

let report_json path =
  let plan_obj heap ms prof =
    let rows = Heap.length heap in
    Printf.sprintf
      "{\"ms\": %.3f, \"rows\": %d, \"rows_per_sec\": %.0f, \
       \"peak_live_rows\": %d}"
      ms rows
      (float_of_int rows /. (Float.max 0.001 ms /. 1000.))
      prof.Exec.peak_live_rows
  in
  let profiled db plan =
    let (h, _, _, prof), t = time_ms (fun () -> Exec.run_profiled db plan) in
    (h, t, prof)
  in
  let entries =
    List.map
      (fun (name, (db, q)) ->
        let d = decide_ok db q in
        let h1, t1, prof1 = profiled db (Plans.e1 db q) in
        let e2_field =
          match d.Planner.plan_eager with
          | None -> "null"
          | Some p2 ->
              let h2, t2, prof2 = profiled db p2 in
              plan_obj h2 t2 prof2
        in
        Printf.sprintf
          "    {\"workload\": \"%s\", \"seed\": %d, \"testfd\": \"%s\",\n\
          \     \"choice\": \"%s\",\n\
          \     \"e1\": %s,\n\
          \     \"e2\": %s}"
          (json_escape name) !seed
          (json_escape (Testfd.verdict_to_string d.Planner.verdict))
          (json_escape (Planner.kind_to_string d.Planner.chosen_kind))
          (plan_obj h1 t1 prof1) e2_field)
      (json_workloads ())
  in
  (* the batch-size sweep on Figure 1: rows/sec here is pipeline
     throughput (total rows produced across operators per second) *)
  let sweep_entries =
    let w =
      Employee_dept.setup ~seed:!seed ~employees:10_000 ~departments:100 ()
    in
    batch_sweep_points w.Employee_dept.db w.Employee_dept.query
    |> List.map (fun (batch_rows, (t1, rps1, p1), (t2, rps2, p2)) ->
           let side t rps p =
             Printf.sprintf
               "{\"ms\": %.3f, \"rows_per_sec\": %.0f, \"peak_live_rows\": \
                %d}"
               t rps p.Exec.peak_live_rows
           in
           Printf.sprintf
             "    {\"batch_rows\": %d, \"e1\": %s, \"e2\": %s}" batch_rows
             (side t1 rps1 p1) (side t2 rps2 p2))
  in
  (* the N-way star: the query the two-relation form cannot express —
     forced E1 vs the cost-chosen aggregation placement *)
  let nway_entry =
    let d, (rows1, t1, peak1), (rows2, t2, peak2) = nway_measurements () in
    let side rows ms peak =
      Printf.sprintf
        "{\"ms\": %.3f, \"rows\": %d, \"rows_per_sec\": %.0f, \
         \"peak_live_rows\": %d}"
        ms rows
        (float_of_int rows /. (Float.max 0.001 ms /. 1000.))
        peak
    in
    let ranked =
      List.map
        (fun (p : Placement.t) ->
          Printf.sprintf "{\"placement\": \"%s\", \"cost\": %.0f}"
            (json_escape (Placement.describe p))
            p.Placement.cost)
        d.Planner.candidates
    in
    Printf.sprintf
      "{\"workload\": \"star_nway\", \"seed\": %d,\n\
      \     \"choice\": \"%s\",\n\
      \     \"placements\": [%s],\n\
      \     \"e1\": %s,\n\
      \     \"best_placement\": %s}"
      !seed
      (json_escape (Planner.kind_to_string d.Planner.chosen_kind))
      (String.concat ", " ranked)
      (side rows1 t1 peak1) (side rows2 t2 peak2)
  in
  (* Figure 1 through the spill breakers: a 32-page pool far below the
     lazy plan's build side, peak measured in pinned pages *)
  let spill_entry =
    let db, (r1, t1, peak1), (r2, t2, peak2) = spill_measurements () in
    let side rows ms peak =
      Printf.sprintf
        "{\"ms\": %.3f, \"rows\": %d, \"rows_per_sec\": %.0f, \
         \"peak_pinned_pages\": %d}"
        ms (List.length rows)
        (float_of_int (List.length rows) /. (Float.max 0.001 ms /. 1000.))
        peak
    in
    let entry =
      Printf.sprintf
        "{\"workload\": \"fig1_spill\", \"seed\": %d, \"pool_pages\": %d,\n\
        \     \"page_size\": %d,\n\
        \     \"e1\": %s,\n\
        \     \"e2\": %s}"
        !seed
        (Option.value ~default:0 spill_storage.Database.pool_pages)
        spill_storage.Database.page_size (side r1 t1 peak1) (side r2 t2 peak2)
    in
    Database.close_storage db;
    entry
  in
  let replication = json_replication () in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"seed\": %d,\n\
    \  \"workloads\": [\n\
     %s\n\
    \  ],\n\
    \  \"nway_star\": %s,\n\
    \  \"batch_sweep_fig1\": [\n\
     %s\n\
    \  ],\n\
    \  \"spill_fig1\": %s,\n\
    \  \"replication\": %s\n\
     }\n"
    !seed
    (String.concat ",\n" entries)
    nway_entry
    (String.concat ",\n" sweep_entries)
    spill_entry replication;
  close_out oc;
  Printf.printf "wrote %s (%d workloads + %d sweep points, seed %d)\n" path
    (List.length (json_workloads ()))
    (List.length sweep_entries) !seed;
  0

let reports =
  [
    ("fig1", report_fig1);
    ("fig2", report_fig2);
    ("fig3", report_fig3);
    ("fig5", report_fig5);
    ("fig7", report_fig7);
    ("fig8", report_fig8);
    ("ex3", report_ex3);
    ("ex5", report_ex5);
    ("sweep-groups", report_sweep_groups);
    ("sweep-selectivity", report_sweep_selectivity);
    ("pipeline", report_pipeline);
    ("unique", report_unique);
    ("sweep-scale", report_sweep_scale);
    ("estimator", report_estimator);
    ("batch-sweep", report_batch_sweep);
    ("nway", report_nway);
    ("spill", report_spill);
  ]

let () =
  (* --seed is positional-independent; strip it first so every workload
     generator below sees it *)
  let rec strip_seed = function
    | "--seed" :: n :: rest ->
        (match int_of_string_opt n with
        | Some s -> seed := s
        | None ->
            Printf.eprintf "invalid --seed %s\n" n;
            exit 2);
        strip_seed rest
    | a :: rest -> a :: strip_seed rest
    | [] -> []
  in
  match strip_seed (List.tl (Array.to_list Sys.argv)) with
  | "--report" :: name :: _ -> (
      match List.assoc_opt name reports with
      | Some f -> exit (f ())
      | None ->
          Printf.eprintf "unknown report %s; available: %s\n" name
            (String.concat " " (List.map fst reports));
          exit 1)
  | "--micro" :: _ -> exit (run_micro ())
  | "--smoke" :: _ -> exit (report_smoke ())
  | "--json" :: rest ->
      let path =
        match rest with
        | p :: _ when String.length p > 0 && p.[0] <> '-' -> p
        | _ -> "BENCH_results.json"
      in
      exit (report_json path)
  | _ ->
      List.iter (fun (_, f) -> ignore (f ())) reports;
      ignore (run_micro ());
      ignore (report_json "BENCH_results.json")
