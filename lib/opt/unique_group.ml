open Eager_schema
open Eager_expr
open Eager_catalog
open Eager_storage
open Eager_fd
open Eager_algebra

type facts = {
  fds : Fd.t list;
  constants : Colref.Set.t;
  equalities : (Colref.t * Colref.t) list;
  (* per source: the candidate keys (at least one must land in the closure)
     paired with every column the source contributes *)
  sources : (Colref.Set.t list * Colref.Set.t) list;
}

let empty_facts =
  { fds = []; constants = Colref.Set.empty; equalities = []; sources = [] }

let merge a b =
  {
    fds = a.fds @ b.fds;
    constants = Colref.Set.union a.constants b.constants;
    equalities = a.equalities @ b.equalities;
    sources = a.sources @ b.sources;
  }

let mine_pred facts pred =
  let mined = Mine.of_atoms (Expr.conjuncts pred) in
  {
    facts with
    constants = Colref.Set.union facts.constants mined.Mine.constants;
    equalities = mined.Mine.equalities @ facts.equalities;
  }

(* Facts about the rows a sub-plan produces.  Selections only filter, so
   their predicates hold on every surviving row; projections narrow
   visibility but do not merge rows we must keep distinct — the source
   entry keeps the pre-projection column set, which the closure can still
   reason about. *)
let rec facts_of db (p : Plan.t) : facts =
  match p with
  | Plan.Scan { table; rel; schema } -> (
      match Catalog.find_table (Database.catalog db) table with
      | None -> { empty_facts with sources = [ ([], Schema.colset schema) ] }
      | Some td ->
          {
            empty_facts with
            fds = From_catalog.key_fds ~rel td;
            sources = [ (From_catalog.key_sets ~rel td, Schema.colset schema) ];
          })
  | Plan.Select { pred; input } -> mine_pred (facts_of db input) pred
  | Plan.Project { input; _ } | Plan.Sort { input; _ }
  | Plan.Map { input; _ } ->
      facts_of db input
  | Plan.Product (a, b) -> merge (facts_of db a) (facts_of db b)
  | Plan.Join { pred; left; right } ->
      mine_pred (merge (facts_of db left) (facts_of db right)) pred
  | Plan.Group { by; aggs; scalar; input; _ } ->
      (* a grouped output is keyed by its grouping columns (one row per
         group); its other columns are the aggregate outputs *)
      let bys = Colref.set_of_list by in
      let outs =
        Colref.Set.union bys
          (Colref.set_of_list (List.map (fun (a : Agg.t) -> a.Agg.name) aggs))
      in
      ignore (facts_of db input);
      if scalar || by = [] then
        (* at most one row: the empty column set is a key *)
        {
          empty_facts with
          fds = [ Fd.of_sets Colref.Set.empty outs ];
          sources = [ ([ Colref.Set.empty ], outs) ];
        }
      else
        {
          empty_facts with
          fds = [ Fd.of_sets bys outs ];
          sources = [ ([ bys ], outs) ];
        }
  | Plan.Partial_group { by; aggs; input; _ } ->
      (* Flushing may emit several rows per group, so unlike [Group] the
         grouping columns are NOT a key of the output — record the output
         columns with no candidate key. *)
      let outs =
        Colref.Set.union
          (Colref.set_of_list by)
          (Colref.set_of_list (List.map (fun (a : Agg.t) -> a.Agg.name) aggs))
      in
      ignore (facts_of db input);
      { empty_facts with sources = [ ([], outs) ] }

let groups_are_unique db ~by input =
  let f = facts_of db input in
  if f.sources = [] then false
  else begin
    let closure =
      Closure.compute
        ~start:(Colref.set_of_list by)
        ~constants:f.constants ~equalities:f.equalities ~fds:f.fds
    in
    List.for_all
      (fun (keys, _cols) ->
        keys <> []
        && List.exists (fun k -> Colref.Set.subset k closure) keys)
      f.sources
  end

let rec mark db (p : Plan.t) : Plan.t =
  match p with
  | Plan.Scan _ -> p
  | Plan.Select { pred; input } -> Plan.Select { pred; input = mark db input }
  | Plan.Project { dedup; cols; input } ->
      Plan.Project { dedup; cols; input = mark db input }
  | Plan.Sort { by; input } -> Plan.Sort { by; input = mark db input }
  | Plan.Map { items; input } -> Plan.Map { items; input = mark db input }
  | Plan.Product (a, b) -> Plan.Product (mark db a, mark db b)
  | Plan.Join { pred; left; right } ->
      Plan.Join { pred; left = mark db left; right = mark db right }
  | Plan.Group { by; aggs; scalar; unique_groups; input } ->
      let input = mark db input in
      let unique_groups =
        unique_groups || ((not scalar) && by <> [] && groups_are_unique db ~by input)
      in
      Plan.Group { by; aggs; scalar; unique_groups; input }
  | Plan.Partial_group { by; aggs; cap; input } ->
      (* never unique: flush epochs can repeat a group *)
      Plan.Partial_group { by; aggs; cap; input = mark db input }
