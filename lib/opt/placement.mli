(** Aggregation-placement candidates and their lowering onto plans.

    A placement says {i where} the group-by sits relative to the join
    tree: nowhere below it (lazy E1), fully below one cut (the paper's
    eager E2, valid only when TestFD verifies FD1/FD2 at that cut), or
    partially below one cut (a bounded [Partial_group] whose partials a
    finalizing group re-combines — sound for any decomposable aggregate
    list, no FD check needed).

    This module is the single sanctioned bridge from placements to the
    legacy two-sided plan constructors ([Plans.e1_with] and friends);
    the lint rule bans those constructors everywhere else outside
    [lib/core]. *)

open Eager_core
open Eager_storage
open Eager_algebra

type mode =
  | Lazy  (** group after all joins — the canonical E1 *)
  | Eager_full
      (** whole group-by below the cut (E2); requires TestFD = YES *)
  | Eager_partial
      (** bounded partial pre-aggregation below the cut plus a
          finalizing group above; requires decomposable aggregates *)

type t = {
  mode : mode;
  below : string list;
      (** the cut: range variables grouped below the join; [[]] for
          {!Lazy} *)
  verdict : Testfd.verdict option;
      (** the per-cut TestFD answer backing an {!Eager_full} candidate;
          [None] when no FD check applies *)
  plan : Plan.t;
  cost : float;
}

val describe : t -> string
(** One-line human label, e.g. ["eager full below {p, s}"]. *)

val mode_to_string : mode -> string

val sides :
  Database.t -> Canonical.t -> Plan.t * Plan.t
(** The cut's two side trees — DP join-order enumeration
    ({!Join_order.best_tree}) for sides of three or more relations,
    the greedy FROM-order tree otherwise. *)

val lower_lazy : Database.t -> Canonical.t -> Plan.t
(** E1 over {!sides}. *)

val lower_full : Database.t -> Canonical.t -> Plan.t
(** E2 over {!sides}; the caller is responsible for having verified
    TestFD at this cut. *)

val lower_partial :
  Database.t -> cap:int -> Canonical.t -> (Plan.t, string) result
(** The partial plan over {!sides}; [Error] when an aggregate is not
    decomposable. *)

val restore_order : like:Canonical.t -> Canonical.t -> Plan.t -> Plan.t
(** [restore_order ~like qc p] appends a permuting projection to [p]
    (a plan lowered from the per-cut canonical [qc]) whenever [qc]'s
    output column order differs from [like]'s: re-canonicalising at a
    different cut re-partitions the grouping columns between the sides,
    and sga1 @ sga2 follows the partition, not the original SELECT. *)
