open Eager_schema
open Eager_expr
open Eager_storage
open Eager_algebra

type profile = {
  card : float;
  ndv : float Colref.Map.t;
  nullfrac : float Colref.Map.t;
  hist : Stats.histogram Colref.Map.t;
}

let lookup_ndv map c = Option.value (Colref.Map.find_opt c map) ~default:10.
let lookup_nf map c = Option.value (Colref.Map.find_opt c map) ~default:0.
let lookup_hist map c = Colref.Map.find_opt c map

let const_float (e : Expr.t) =
  match e with
  | Expr.Const (Eager_value.Value.Int n) -> Some (float_of_int n)
  | Expr.Const (Eager_value.Value.Float f) -> Some f
  | _ -> None

let rec selectivity ~ndv ?(nullfrac = fun _ -> 0.) ?(hist = fun _ -> None)
    (e : Expr.t) =
  let not_null c = Float.max 0. (1.0 -. nullfrac c) in
  (* histogram-based range estimate; None when no histogram applies *)
  let range_sel op col const =
    match hist col, const_float const with
    | Some h, Some v ->
        let below = Stats.fraction_below h v in
        let frac =
          match op with
          | Expr.Lt | Expr.Le -> below
          | Expr.Gt | Expr.Ge -> 1.0 -. below
          | _ -> 1.0 /. 3.0
        in
        Some (not_null col *. Float.max 0.001 (Float.min 1.0 frac))
    | _ -> None
  in
  match e with
  | Expr.Const (Eager_value.Value.Bool true) -> 1.0
  | Expr.Const (Eager_value.Value.Bool false) -> 0.0
  | Expr.And (a, b) ->
      selectivity ~ndv ~nullfrac ~hist a *. selectivity ~ndv ~nullfrac ~hist b
  | Expr.Or (a, b) ->
      let sa = selectivity ~ndv ~nullfrac ~hist a
      and sb = selectivity ~ndv ~nullfrac ~hist b in
      sa +. sb -. (sa *. sb)
  | Expr.Not a -> 1.0 -. selectivity ~ndv ~nullfrac ~hist a
  | Expr.Cmp (Expr.Eq, a, b) -> (
      match a, b with
      | Expr.Col c, (Expr.Const _ | Expr.Param _)
      | (Expr.Const _ | Expr.Param _), Expr.Col c ->
          not_null c /. Float.max 1.0 (ndv c)
      | Expr.Col c1, Expr.Col c2 ->
          not_null c1 *. not_null c2
          /. Float.max 1.0 (Float.max (ndv c1) (ndv c2))
      | _ -> 0.1)
  | Expr.Cmp (Expr.Ne, _, _) -> 0.9
  | Expr.Cmp (op, Expr.Col c, (Expr.Const _ as k))
    when range_sel op c k <> None ->
      Option.get (range_sel op c k)
  | Expr.Cmp (op, (Expr.Const _ as k), Expr.Col c) ->
      (* flip the comparison around the constant *)
      let flipped =
        match op with
        | Expr.Lt -> Expr.Gt
        | Expr.Le -> Expr.Ge
        | Expr.Gt -> Expr.Lt
        | Expr.Ge -> Expr.Le
        | o -> o
      in
      (match range_sel flipped c k with
      | Some s -> s
      | None -> 1.0 /. 3.0)
  | Expr.Cmp (_, _, _) -> 1.0 /. 3.0
  | Expr.Is_null (Expr.Col c) -> Float.max 0.02 (nullfrac c)
  | Expr.Is_null _ -> 0.05
  | Expr.Is_not_null (Expr.Col c) -> not_null c
  | Expr.Is_not_null _ -> 0.95
  | _ -> 1.0 /. 3.0

let clamp_ndv card map = Colref.Map.map (fun d -> Float.min d card) map

(* Combined distinct count of a column set with exponential backoff: the
   independence assumption overestimates badly for correlated columns
   (e.g. a key and an attribute it determines), so successive factors are
   dampened: d1 · d2^(1/2) · d3^(1/4) · ... *)
let combined_ndv ~ndv cols =
  let ds = List.map ndv cols |> List.sort (fun a b -> compare (b : float) a) in
  let _, product =
    List.fold_left
      (fun (exp, acc) d -> (exp /. 2.0, acc *. Float.pow d exp))
      (1.0, 1.0) ds
  in
  product

let rec profile db (p : Plan.t) : profile =
  match p with
  | Plan.Scan { table; schema; _ } ->
      let stats = Database.stats db table in
      let rows = float_of_int (Stats.row_count stats) in
      let per_col f =
        Array.to_list (Schema.cols schema)
        |> List.mapi (fun i (c, _) -> (c, f (Stats.col stats i)))
        |> List.to_seq |> Colref.Map.of_seq
      in
      let ndv =
        per_col (fun cs ->
            float_of_int
              (max 1 (cs.Stats.ndv + if cs.Stats.nulls > 0 then 1 else 0)))
      in
      let nullfrac =
        per_col (fun cs ->
            if rows <= 0. then 0. else float_of_int cs.Stats.nulls /. rows)
      in
      let hist =
        Array.to_list (Schema.cols schema)
        |> List.mapi (fun i (c, _) -> (c, (Stats.col stats i).Stats.hist))
        |> List.filter_map (fun (c, h) -> Option.map (fun h -> (c, h)) h)
        |> List.to_seq |> Colref.Map.of_seq
      in
      { card = rows; ndv; nullfrac; hist }
  | Plan.Sort { input; _ } -> profile db input
  | Plan.Map { items; input } ->
      let pin = profile db input in
      (* identity items keep their statistics; computed items get defaults *)
      let keep pick =
        List.fold_left
          (fun m (c, e) ->
            match e with
            | Expr.Col src -> (
                match pick src with Some v -> Colref.Map.add c v m | None -> m)
            | _ -> m)
          Colref.Map.empty items
      in
      {
        card = pin.card;
        ndv = keep (fun c -> Colref.Map.find_opt c pin.ndv);
        nullfrac = keep (fun c -> Colref.Map.find_opt c pin.nullfrac);
        hist = keep (fun c -> Colref.Map.find_opt c pin.hist);
      }
  | Plan.Select { pred; input } ->
      let pin = profile db input in
      let s =
        selectivity ~ndv:(lookup_ndv pin.ndv)
          ~nullfrac:(lookup_nf pin.nullfrac)
          ~hist:(lookup_hist pin.hist) pred
      in
      let card = Float.max 0. (pin.card *. s) in
      { pin with card; ndv = clamp_ndv card pin.ndv }
  | Plan.Project { dedup; cols; input } ->
      let pin = profile db input in
      let keep map default =
        List.fold_left
          (fun m c ->
            Colref.Map.add c
              (Option.value (Colref.Map.find_opt c map) ~default)
              m)
          Colref.Map.empty cols
      in
      let ndv = keep pin.ndv 10. and nullfrac = keep pin.nullfrac 0. in
      let hist =
        List.fold_left
          (fun m c ->
            match Colref.Map.find_opt c pin.hist with
            | Some h -> Colref.Map.add c h m
            | None -> m)
          Colref.Map.empty cols
      in
      if dedup then begin
        let distinct = combined_ndv ~ndv:(lookup_ndv pin.ndv) cols in
        let card = Float.min pin.card distinct in
        { card; ndv = clamp_ndv card ndv; nullfrac; hist }
      end
      else { card = pin.card; ndv; nullfrac; hist }
  | Plan.Product (a, b) ->
      let pa = profile db a and pb = profile db b in
      {
        card = pa.card *. pb.card;
        ndv = Colref.Map.union (fun _ x _ -> Some x) pa.ndv pb.ndv;
        nullfrac =
          Colref.Map.union (fun _ x _ -> Some x) pa.nullfrac pb.nullfrac;
        hist = Colref.Map.union (fun _ x _ -> Some x) pa.hist pb.hist;
      }
  | Plan.Join { pred; left; right } ->
      let pa = profile db left and pb = profile db right in
      let ndv = Colref.Map.union (fun _ x _ -> Some x) pa.ndv pb.ndv in
      let nullfrac =
        Colref.Map.union (fun _ x _ -> Some x) pa.nullfrac pb.nullfrac
      in
      let hist = Colref.Map.union (fun _ x _ -> Some x) pa.hist pb.hist in
      let s =
        selectivity ~ndv:(lookup_ndv ndv) ~nullfrac:(lookup_nf nullfrac)
          ~hist:(lookup_hist hist) pred
      in
      let card = pa.card *. pb.card *. s in
      { card; ndv = clamp_ndv card ndv; nullfrac; hist }
  | Plan.Group { by; aggs; input; _ } ->
      let pin = profile db input in
      let groups =
        if by = [] then 1.0
        else Float.min pin.card (combined_ndv ~ndv:(lookup_ndv pin.ndv) by)
      in
      let groups = Float.max 1.0 groups in
      let ndv =
        List.fold_left
          (fun m c ->
            Colref.Map.add c (Float.min groups (lookup_ndv pin.ndv c)) m)
          Colref.Map.empty by
      in
      let ndv =
        List.fold_left
          (fun m (a : Agg.t) -> Colref.Map.add a.Agg.name groups m)
          ndv aggs
      in
      let nullfrac =
        List.fold_left
          (fun m c -> Colref.Map.add c (lookup_nf pin.nullfrac c) m)
          Colref.Map.empty by
      in
      { card = groups; ndv; nullfrac; hist = Colref.Map.empty }
  | Plan.Partial_group { by; aggs; input; _ } ->
      (* Optimistically assume the flush cap is never hit, so the output
         looks like plain grouping (one row per group).  Flushing only
         adds rows, so this is a lower bound on the partial stream. *)
      let pin = profile db input in
      let groups =
        Float.max 1.0
          (Float.min pin.card (combined_ndv ~ndv:(lookup_ndv pin.ndv) by))
      in
      let ndv =
        List.fold_left
          (fun m c ->
            Colref.Map.add c (Float.min groups (lookup_ndv pin.ndv c)) m)
          Colref.Map.empty by
      in
      let ndv =
        List.fold_left
          (fun m (a : Agg.t) -> Colref.Map.add a.Agg.name groups m)
          ndv aggs
      in
      let nullfrac =
        List.fold_left
          (fun m c -> Colref.Map.add c (lookup_nf pin.nullfrac c) m)
          Colref.Map.empty by
      in
      { card = groups; ndv; nullfrac; hist = Colref.Map.empty }

let card db p = (profile db p).card
