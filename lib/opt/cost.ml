open Eager_algebra
open Eager_exec

type breakdown = {
  total : float;
  node_label : string;
  node_cost : float;
  mat_rows : float;
  out_card : float;
  inputs : breakdown list;
}

let log2 x = if x <= 2.0 then 1.0 else Float.log x /. Float.log 2.0

(* Since the executor became a pull pipeline, operators differ not only
   in row touches but in what they hold alive: pipelined operators
   (scan, select, map, the probe side of a hash join) keep at most one
   batch, while pipeline breakers materialize whole inputs (sort
   buffers, nested-loop inners, hash-join build sides, group tables).
   [mat_rows] estimates that footprint and is charged into [total] at
   unit weight, so a plan that shrinks a join's build side — exactly
   what performing group-by before join does — is rewarded even when its
   row-touch counts tie. *)
let breakdown ?(sort_group = false) db plan =
  let rec go (p : Plan.t) : breakdown =
    let prof = Estimate.profile db p in
    let label = Plan.label p in
    let mk ~node_cost ~mat_rows inputs =
      let kids = List.fold_left (fun acc b -> acc +. b.total) 0.0 inputs in
      { total = kids +. node_cost +. mat_rows; node_label = label; node_cost;
        mat_rows; out_card = prof.Estimate.card; inputs }
    in
    match p with
    | Plan.Scan _ ->
        { total = prof.Estimate.card; node_label = label;
          node_cost = prof.Estimate.card; mat_rows = 0.0;
          out_card = prof.Estimate.card; inputs = [] }
    | Plan.Select { input; _ } ->
        let bin = go input in
        mk ~node_cost:bin.out_card ~mat_rows:0.0 [ bin ]
    | Plan.Project { dedup; input; _ } ->
        let bin = go input in
        let c = bin.out_card *. if dedup then 2.0 else 1.0 in
        (* DISTINCT holds its seen-key table, one entry per output row *)
        mk ~node_cost:c ~mat_rows:(if dedup then prof.Estimate.card else 0.0)
          [ bin ]
    | Plan.Product (a, b) ->
        let ba = go a and bb = go b in
        (* nested loop materializes the inner (right) side *)
        mk ~node_cost:(ba.out_card *. bb.out_card) ~mat_rows:bb.out_card
          [ ba; bb ]
    | Plan.Join { pred; left; right } ->
        let ba = go left and bb = go right in
        let lsch = Plan.schema_of left and rsch = Plan.schema_of right in
        let keys, _ = Exec.split_equijoin lsch rsch pred in
        if keys = [] then
          (* nested loop: inner side materialized *)
          mk ~node_cost:(ba.out_card *. bb.out_card) ~mat_rows:bb.out_card
            [ ba; bb ]
        else
          (* hash join: build on the left, stream the right — the eager
             transformation's smaller join input shows up here *)
          mk
            ~node_cost:(ba.out_card +. bb.out_card +. prof.Estimate.card)
            ~mat_rows:ba.out_card [ ba; bb ]
    | Plan.Group { input; _ } ->
        let bin = go input in
        let n = bin.out_card in
        if sort_group then
          (* sort grouping buffers its whole input *)
          mk ~node_cost:(n *. log2 n) ~mat_rows:n [ bin ]
        else
          (* hash grouping holds one entry per group *)
          mk ~node_cost:n ~mat_rows:prof.Estimate.card [ bin ]
    | Plan.Partial_group { cap; input; _ } ->
        let bin = go input in
        (* bounded group table: never more than [cap] live entries *)
        mk ~node_cost:bin.out_card
          ~mat_rows:(Float.min prof.Estimate.card (float_of_int cap))
          [ bin ]
    | Plan.Map { input; _ } ->
        let bin = go input in
        mk ~node_cost:bin.out_card ~mat_rows:0.0 [ bin ]
    | Plan.Sort { input; _ } ->
        let bin = go input in
        let n = bin.out_card in
        mk ~node_cost:(n *. log2 n) ~mat_rows:n [ bin ]
  in
  go plan

let cost ?sort_group db plan = (breakdown ?sort_group db plan).total

let pp_breakdown ppf b =
  let rec go indent b =
    Format.fprintf ppf "%s%s   -- cost %.0f, est. %.0f rows%s@," indent
      b.node_label b.node_cost b.out_card
      (if b.mat_rows > 0.0 then
         Printf.sprintf ", materializes %.0f" b.mat_rows
       else "");
    List.iter (go (indent ^ "  ")) b.inputs
  in
  Format.fprintf ppf "@[<v>";
  go "" b;
  Format.fprintf ppf "total: %.0f@]" b.total
