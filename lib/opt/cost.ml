open Eager_storage
open Eager_algebra
open Eager_exec

type io_model = {
  page_rows : int;
  budget_pages : int;
  seq_weight : float;
  rand_weight : float;
}

let default_io ?budget_pages db =
  match Database.storage_config db with
  | None -> None
  | Some cfg ->
      let budget =
        match budget_pages with
        | Some b -> max 2 b
        | None -> (
            match cfg.Database.pool_pages with
            | Some c -> max 2 (c / 2)
            | None -> 64)
      in
      Some
        {
          page_rows = Database.page_rows db;
          budget_pages = budget;
          (* a random page transfer costs several sequential ones — the
             classic rotating-ratio default, still roughly right for the
             seek-vs-stream gap on SSDs *)
          seq_weight = 1.0;
          rand_weight = 4.0;
        }

type breakdown = {
  total : float;
  node_label : string;
  node_cost : float;
  mat_rows : float;
  io_pages : float;
  out_card : float;
  inputs : breakdown list;
}

let log2 x = if x <= 2.0 then 1.0 else Float.log x /. Float.log 2.0

(* Since the executor became a pull pipeline, operators differ not only
   in row touches but in what they hold alive: pipelined operators
   (scan, select, map, the probe side of a hash join) keep at most one
   batch, while pipeline breakers materialize whole inputs (sort
   buffers, nested-loop inners, hash-join build sides, group tables).
   [mat_rows] estimates that footprint and is charged into [total] at
   unit weight, so a plan that shrinks a join's build side — exactly
   what performing group-by before join does — is rewarded even when its
   row-touch counts tie.

   With an [io_model], the same footprints turn into physical page
   transfers: a breaker whose state exceeds its page budget spills, and
   every spilled page is written once and read back at least once.
   [io_pages] estimates those transfers per operator (scan pages
   included) and they are charged into [total] at the model's
   sequential/random weights — so on a paged database the planner is
   IO-aware, preferring plans whose breakers stay under budget.  Without
   a model every [io_pages] is zero and totals are exactly the
   row-touch figures the RAM engine has always used. *)
let breakdown ?(sort_group = false) ?io db plan =
  let pages card =
    match io with
    | None -> 0.0
    | Some m -> Float.of_int (int_of_float (ceil (card /. Float.of_int m.page_rows)))
  in
  let budget_f =
    match io with
    | None -> Float.infinity
    | Some m -> Float.of_int m.budget_pages
  in
  let seq p = match io with None -> 0.0 | Some m -> m.seq_weight *. p in
  let rand p = match io with None -> 0.0 | Some m -> m.rand_weight *. p in
  let rec go (p : Plan.t) : breakdown =
    let prof = Estimate.profile db p in
    let label = Plan.label p in
    let mk ?(io_pages = 0.0) ?(io_cost = 0.0) ~node_cost ~mat_rows inputs =
      let kids = List.fold_left (fun acc b -> acc +. b.total) 0.0 inputs in
      { total = kids +. node_cost +. mat_rows +. io_cost; node_label = label;
        node_cost; mat_rows; io_pages; out_card = prof.Estimate.card; inputs }
    in
    (* external merge sort: if the buffer exceeds the budget, every page
       is written and re-read once per merge pass *)
    let sort_io n =
      let np = pages n in
      if np <= budget_f then (0.0, 0.0)
      else
        let fan = Float.max 2.0 (budget_f -. 1.0) in
        let passes = ceil (Float.log (np /. budget_f) /. Float.log fan) in
        let passes = Float.max 1.0 passes in
        let transfers = 2.0 *. np *. passes in
        (transfers, seq transfers)
    in
    (* spilling hash table (aggregation, DISTINCT): rows of non-resident
       keys are partitioned out and re-read; resident groups cost no IO *)
    let hash_spill_io ~entries ~input_rows =
      let ep = pages entries in
      if ep <= budget_f then (0.0, 0.0)
      else
        let resident = Float.min 1.0 (budget_f /. ep) in
        let spilled = pages (input_rows *. (1.0 -. resident)) in
        let transfers = 2.0 *. spilled in
        (transfers, seq transfers)
    in
    match p with
    | Plan.Scan _ ->
        let np = pages prof.Estimate.card in
        { total = prof.Estimate.card +. seq np; node_label = label;
          node_cost = prof.Estimate.card; mat_rows = 0.0; io_pages = np;
          out_card = prof.Estimate.card; inputs = [] }
    | Plan.Select { input; _ } ->
        let bin = go input in
        mk ~node_cost:bin.out_card ~mat_rows:0.0 [ bin ]
    | Plan.Project { dedup; input; _ } ->
        let bin = go input in
        let c = bin.out_card *. if dedup then 2.0 else 1.0 in
        (* DISTINCT holds its seen-key table, one entry per output row *)
        let io_pages, io_cost =
          if dedup then
            hash_spill_io ~entries:prof.Estimate.card ~input_rows:bin.out_card
          else (0.0, 0.0)
        in
        mk ~io_pages ~io_cost ~node_cost:c
          ~mat_rows:(if dedup then prof.Estimate.card else 0.0)
          [ bin ]
    | Plan.Product (a, b) ->
        let ba = go a and bb = go b in
        (* nested loop materializes the inner (right) side *)
        mk ~node_cost:(ba.out_card *. bb.out_card) ~mat_rows:bb.out_card
          [ ba; bb ]
    | Plan.Join { pred; left; right } ->
        let ba = go left and bb = go right in
        let lsch = Plan.schema_of left and rsch = Plan.schema_of right in
        let keys, _ = Exec.split_equijoin lsch rsch pred in
        if keys = [] then
          (* nested loop: inner side materialized *)
          mk ~node_cost:(ba.out_card *. bb.out_card) ~mat_rows:bb.out_card
            [ ba; bb ]
        else begin
          (* hash join: build on the left, stream the right — the eager
             transformation's smaller join input shows up here.  An
             over-budget build degrades to grace partitioning: both
             sides written once and read back, the partition reads
             scattered rather than streamed *)
          let io_pages, io_cost =
            let bp = pages ba.out_card in
            if bp <= budget_f then (0.0, 0.0)
            else
              let pp = pages bb.out_card in
              let transfers = 2.0 *. (bp +. pp) in
              (transfers, seq (bp +. pp) +. rand (bp +. pp))
          in
          mk ~io_pages ~io_cost
            ~node_cost:(ba.out_card +. bb.out_card +. prof.Estimate.card)
            ~mat_rows:ba.out_card [ ba; bb ]
        end
    | Plan.Group { input; _ } ->
        let bin = go input in
        let n = bin.out_card in
        if sort_group then begin
          (* sort grouping buffers its whole input *)
          let io_pages, io_cost = sort_io n in
          mk ~io_pages ~io_cost ~node_cost:(n *. log2 n) ~mat_rows:n [ bin ]
        end
        else begin
          (* hash grouping holds one entry per group *)
          let io_pages, io_cost =
            hash_spill_io ~entries:prof.Estimate.card ~input_rows:n
          in
          mk ~io_pages ~io_cost ~node_cost:n ~mat_rows:prof.Estimate.card
            [ bin ]
        end
    | Plan.Partial_group { cap; input; _ } ->
        let bin = go input in
        (* bounded group table: never more than [cap] live entries (and
           the executor clamps the cap to the page budget), so no spill *)
        mk ~node_cost:bin.out_card
          ~mat_rows:(Float.min prof.Estimate.card (float_of_int cap))
          [ bin ]
    | Plan.Map { input; _ } ->
        let bin = go input in
        mk ~node_cost:bin.out_card ~mat_rows:0.0 [ bin ]
    | Plan.Sort { input; _ } ->
        let bin = go input in
        let n = bin.out_card in
        let io_pages, io_cost = sort_io n in
        mk ~io_pages ~io_cost ~node_cost:(n *. log2 n) ~mat_rows:n [ bin ]
  in
  go plan

let cost ?sort_group ?io db plan = (breakdown ?sort_group ?io db plan).total

let pp_breakdown ppf b =
  let rec go indent b =
    Format.fprintf ppf "%s%s   -- cost %.0f, est. %.0f rows%s%s@," indent
      b.node_label b.node_cost b.out_card
      (if b.mat_rows > 0.0 then
         Printf.sprintf ", materializes %.0f" b.mat_rows
       else "")
      (if b.io_pages > 0.0 then
         Printf.sprintf ", ~%.0f page IOs" b.io_pages
       else "");
    List.iter (go (indent ^ "  ")) b.inputs
  in
  Format.fprintf ppf "@[<v>";
  go "" b;
  Format.fprintf ppf "total: %.0f@]" b.total
