open Eager_core

type mode = Lazy | Eager_full | Eager_partial

type t = {
  mode : mode;
  below : string list;
  verdict : Testfd.verdict option;
  plan : Eager_algebra.Plan.t;
  cost : float;
}

let mode_to_string = function
  | Lazy -> "lazy"
  | Eager_full -> "eager full"
  | Eager_partial -> "eager partial"

let describe t =
  match t.mode with
  | Lazy -> "group after join (E1)"
  | Eager_full ->
      Printf.sprintf "eager full below {%s}" (String.concat ", " t.below)
  | Eager_partial ->
      Printf.sprintf "eager partial below {%s}" (String.concat ", " t.below)

(* multi-table sides go through the DP join-order enumerator *)
let sides db (q : Canonical.t) =
  let side sources conjuncts fallback_plan =
    if List.length sources >= 3 then Join_order.best_tree db sources conjuncts
    else fallback_plan ()
  in
  ( side q.Canonical.r1 q.Canonical.c1 (fun () -> Plans.side1 db q),
    side q.Canonical.r2 q.Canonical.c2 (fun () -> Plans.side2 db q) )

let lower_lazy db q =
  let side1, side2 = sides db q in
  Plans.e1_with q ~side1 ~side2

let lower_full db q =
  let side1, side2 = sides db q in
  Plans.e2_with q ~side1 ~side2

let lower_partial db ~cap q =
  let side1, side2 = sides db q in
  Plans.eager_partial_with q ~cap ~side1 ~side2

(* Re-canonicalising the query at a different cut re-partitions the
   grouping columns between the two sides, which permutes the canonical
   output order sga1 @ sga2 @ aggs.  A placement's plan must still
   produce the original query's schema, so a final permuting projection
   is appended whenever the cut's order differs. *)
let output_order (q : Canonical.t) =
  q.Canonical.sga1 @ q.Canonical.sga2 @ Canonical.agg_names q

let restore_order ~like (qc : Canonical.t) plan =
  let want = output_order like in
  if output_order qc = want then plan
  else Eager_algebra.Plan.project want plan
