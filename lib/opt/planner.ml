open Eager_core
open Eager_algebra
open Eager_robust

type kind = Lazy_group | Eager_group | Eager_partial_group

type force =
  | E1
  | E2
  | Force_placement of { below : string list; partial : bool }

type decision = {
  verdict : Testfd.verdict;
  plan_lazy : Plan.t;
  cost_lazy : float;
  plan_eager : Plan.t option;
  cost_eager : float option;
  chosen : Plan.t;
  chosen_kind : kind;
  expanded_atoms : int;
  fallback : string option;
  forced : force option;
  candidates : Placement.t list;
}

let kind_to_string = function
  | Lazy_group -> "group after join (E1)"
  | Eager_group -> "group before join (E2)"
  | Eager_partial_group -> "partial group before join (E2p)"

let force_to_string = function
  | E1 -> "E1"
  | E2 -> "E2"
  | Force_placement { below; partial } ->
      Printf.sprintf "%s placement below {%s}"
        (if partial then "partial" else "full")
        (String.concat ", " below)

let rank placements =
  List.stable_sort
    (fun (a : Placement.t) (b : Placement.t) -> Float.compare a.cost b.cost)
    placements

let rels_of sources =
  List.map (fun (s : Canonical.source) -> s.Canonical.rel) sources

(* Graceful degradation: an eager rewrite is only proposed when its
   validity argument actually goes through — TestFD for the full push
   (cf. Chirkova & Genesereth on dependency-based rewrites),
   decomposability for the partial one.  Whenever verification or
   costing cannot complete — an internal error, an injected fault, or a
   governor deadline already blown — we demote to the canonical E1 plan
   and record why, rather than failing the query. *)
let decide_raw ?strict ?(expand = true) ?(governor = Governor.unlimited)
    ?force ?(partial_cap = 1024) ?(max_cuts = 16) ?io db q =
  let fallback = ref None in
  let demote reason = fallback := Some reason in
  let expanded_atoms, q =
    match
      Err.protect ~kind:Err.Planner (fun () ->
          if expand then (Expand.derived_count q, Expand.query q) else (0, q))
    with
    | Ok r -> r
    | Error e ->
        demote (Printf.sprintf "predicate expansion failed: %s" (Err.to_string e));
        (0, q)
  in
  let verdict =
    if !fallback <> None then
      Testfd.No (Printf.sprintf "planner fallback: %s" (Option.get !fallback))
    else
      match
        let ( let* ) = Result.bind in
        let* () = Fault.check "opt.testfd" in
        let* () = Governor.check governor in
        Err.protect ~kind:Err.Planner (fun () -> Testfd.test ?strict db q)
      with
      | Ok v -> v
      | Error e ->
          let reason =
            Printf.sprintf "TestFD could not complete: %s" (Err.to_string e)
          in
          demote reason;
          Testfd.No reason
  in
  let plan_lazy = Placement.lower_lazy db q in
  let cost_lazy =
    match Err.protect ~kind:Err.Planner (fun () -> Cost.cost ?io db plan_lazy) with
    | Ok c -> c
    | Error e ->
        (* E1 is the plan of last resort: run it even uncosted *)
        demote (Printf.sprintf "cost model failed on E1: %s" (Err.to_string e));
        Float.infinity
  in
  let lazy_cand =
    { Placement.mode = Placement.Lazy; below = []; verdict = None;
      plan = plan_lazy; cost = cost_lazy }
  in
  let lazy_decision verdict =
    {
      verdict;
      plan_lazy;
      cost_lazy;
      plan_eager = None;
      cost_eager = None;
      chosen = plan_lazy;
      chosen_kind = Lazy_group;
      expanded_atoms;
      fallback = !fallback;
      forced = (match force with Some E1 -> Some E1 | _ -> None);
      candidates = [ lazy_cand ];
    }
  in
  (* every placement at one cut: the full E2 push when TestFD verifies
     it, the partial push when the aggregates decompose *)
  let candidates_at g cut : Placement.t list =
    match Qgraph.canonical_at db g cut with
    | Error _ -> []
    | Ok qc ->
        let full =
          match
            Err.protect ~kind:Err.Planner (fun () -> Testfd.test ?strict db qc)
          with
          | Ok Testfd.Yes -> (
              match
                Err.protect ~kind:Err.Planner (fun () ->
                    let p =
                      Placement.restore_order ~like:q qc
                        (Placement.lower_full db qc)
                    in
                    (p, Cost.cost ?io db p))
              with
              | Ok (p, c) ->
                  [ { Placement.mode = Placement.Eager_full; below = cut;
                      verdict = Some Testfd.Yes; plan = p; cost = c } ]
              | Error _ -> [])
          | Ok (Testfd.No _) | Error _ -> []
        in
        let partial =
          match
            Err.protect ~kind:Err.Planner (fun () ->
                match Placement.lower_partial db ~cap:partial_cap qc with
                | Ok p ->
                    let p = Placement.restore_order ~like:q qc p in
                    Some (p, Cost.cost ?io db p)
                | Error _ -> None)
          with
          | Ok (Some (p, c)) ->
              [ { Placement.mode = Placement.Eager_partial; below = cut;
                  verdict = None; plan = p; cost = c } ]
          | Ok None | Error _ -> []
        in
        full @ partial
  in
  let enumerate () =
    match Qgraph.of_canonical db q with
    | Error _ -> []
    | Ok g ->
        List.concat_map
          (fun cut ->
            match Governor.check governor with
            | Error _ -> [] (* deadline blown mid-enumeration: stop adding *)
            | Ok () -> candidates_at g cut)
          (Qgraph.cuts ~max_cuts g)
  in
  let default_full ranked =
    List.find_opt
      (fun (p : Placement.t) ->
        p.mode = Placement.Eager_full
        && List.sort String.compare p.below
           = List.sort String.compare (rels_of q.Canonical.r1))
      ranked
  in
  match force, verdict with
  | Some E1, _ ->
      (* forced E1: always valid — the canonical plan needs no FD check *)
      lazy_decision verdict
  | Some E2, Testfd.No reason ->
      (* force hooks must stay honest: an unverified rewrite is refused
         with a typed error, never silently executed *)
      Err.failf Err.Planner
        "forced E2 rejected: the rewrite is not verified — TestFD says NO \
         (%s)"
        reason
  | Some E2, Testfd.Yes ->
      let plan_eager =
        match
          Err.protect ~kind:Err.Planner (fun () -> Placement.lower_full db q)
        with
        | Ok p -> p
        | Error e ->
            Err.raise_ (Err.add_context "forced E2: plan construction" e)
      in
      let cost_eager =
        match Err.protect ~kind:Err.Planner (fun () -> Cost.cost ?io db plan_eager)
        with
        | Ok c -> Some c
        | Error _ -> None (* cost is advisory under force *)
      in
      let cand =
        { Placement.mode = Placement.Eager_full;
          below = rels_of q.Canonical.r1; verdict = Some Testfd.Yes;
          plan = plan_eager;
          cost = Option.value cost_eager ~default:Float.infinity }
      in
      {
        verdict;
        plan_lazy;
        cost_lazy;
        plan_eager = Some plan_eager;
        cost_eager;
        chosen = plan_eager;
        chosen_kind = Eager_group;
        expanded_atoms;
        fallback = !fallback;
        forced = Some E2;
        candidates = rank [ lazy_cand; cand ];
      }
  | Some (Force_placement { below; partial }), _ ->
      let g =
        match Qgraph.of_canonical db q with
        | Ok g -> g
        | Error msg ->
            Err.failf Err.Planner "forced placement rejected: %s" msg
      in
      let qc =
        match Qgraph.canonical_at db g below with
        | Ok qc -> qc
        | Error msg ->
            Err.failf Err.Planner "forced placement rejected: %s" msg
      in
      let plan, chosen_kind, cand_verdict =
        if partial then
          match Placement.lower_partial db ~cap:partial_cap qc with
          | Ok p -> (p, Eager_partial_group, None)
          | Error msg ->
              Err.failf Err.Planner "forced partial placement rejected: %s"
                msg
        else
          match Testfd.test ?strict db qc with
          | Testfd.No reason ->
              Err.failf Err.Planner
                "forced placement rejected: the rewrite is not verified — \
                 TestFD says NO at cut {%s} (%s)"
                (String.concat ", " below) reason
          | Testfd.Yes -> (Placement.lower_full db qc, Eager_group, Some Testfd.Yes)
      in
      let plan = Placement.restore_order ~like:q qc plan in
      let cost =
        match Err.protect ~kind:Err.Planner (fun () -> Cost.cost ?io db plan) with
        | Ok c -> Some c
        | Error _ -> None (* cost is advisory under force *)
      in
      let cand =
        { Placement.mode =
            (if partial then Placement.Eager_partial else Placement.Eager_full);
          below; verdict = cand_verdict; plan;
          cost = Option.value cost ~default:Float.infinity }
      in
      {
        verdict;
        plan_lazy;
        cost_lazy;
        plan_eager = None;
        cost_eager = None;
        chosen = plan;
        chosen_kind;
        expanded_atoms;
        fallback = !fallback;
        forced = force;
        candidates = rank [ lazy_cand; cand ];
      }
  | None, _ when !fallback <> None -> lazy_decision verdict
  | None, _ -> (
      match
        let ( let* ) = Result.bind in
        let* () = Fault.check "opt.cost" in
        Governor.check governor
      with
      | Error e ->
          (* enumeration or costing unavailable: budget breach or
             injected fault — demote to E1 *)
          demote
            (Printf.sprintf "eager plan abandoned: %s" (Err.to_string e));
          lazy_decision verdict
      | Ok () ->
          let ranked = rank (lazy_cand :: enumerate ()) in
          let best = List.hd ranked in
          let chosen_kind =
            match best.Placement.mode with
            | Placement.Lazy -> Lazy_group
            | Placement.Eager_full -> Eager_group
            | Placement.Eager_partial -> Eager_partial_group
          in
          let dflt = default_full ranked in
          {
            verdict;
            plan_lazy;
            cost_lazy;
            plan_eager = Option.map (fun (p : Placement.t) -> p.plan) dflt;
            cost_eager = Option.map (fun (p : Placement.t) -> p.cost) dflt;
            chosen = best.Placement.plan;
            chosen_kind;
            expanded_atoms;
            fallback = !fallback;
            forced = None;
            candidates = ranked;
          })

(* the planner itself can die on a malformed query (unknown tables on
   both plan shapes); this boundary turns even that into a value *)
let decide ?strict ?expand ?governor ?force ?partial_cap ?max_cuts ?io db q =
  Err.protect ~kind:Err.Planner (fun () ->
      decide_raw ?strict ?expand ?governor ?force ?partial_cap ?max_cuts ?io db
        q)

let decide_exn = decide_raw
