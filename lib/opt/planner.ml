open Eager_core
open Eager_algebra
open Eager_robust

type kind = Lazy_group | Eager_group
type force = E1 | E2

type decision = {
  verdict : Testfd.verdict;
  plan_lazy : Plan.t;
  cost_lazy : float;
  plan_eager : Plan.t option;
  cost_eager : float option;
  chosen : Plan.t;
  chosen_kind : kind;
  expanded_atoms : int;
  fallback : string option;
  forced : force option;
}

let kind_to_string = function
  | Lazy_group -> "group after join (E1)"
  | Eager_group -> "group before join (E2)"

let force_to_string = function E1 -> "E1" | E2 -> "E2"

(* Graceful degradation: the E2 rewrite is only sound when TestFD
   actually verifies the FD conditions (cf. Chirkova & Genesereth on
   dependency-based rewrites).  Whenever verification or costing cannot
   complete — an internal error, an injected fault, or a governor
   deadline already blown — we demote to the canonical E1 plan and
   record why, rather than failing the query. *)
let decide ?strict ?(expand = true) ?(governor = Governor.unlimited) ?force db
    q =
  let fallback = ref None in
  let demote reason = fallback := Some reason in
  let expanded_atoms, q =
    match
      Err.protect ~kind:Err.Planner (fun () ->
          if expand then (Expand.derived_count q, Expand.query q) else (0, q))
    with
    | Ok r -> r
    | Error e ->
        demote (Printf.sprintf "predicate expansion failed: %s" (Err.to_string e));
        (0, q)
  in
  let verdict =
    if !fallback <> None then
      Testfd.No (Printf.sprintf "planner fallback: %s" (Option.get !fallback))
    else
      match
        let ( let* ) = Result.bind in
        let* () = Fault.check "opt.testfd" in
        let* () = Governor.check governor in
        Err.protect ~kind:Err.Planner (fun () -> Testfd.test ?strict db q)
      with
      | Ok v -> v
      | Error e ->
          let reason =
            Printf.sprintf "TestFD could not complete: %s" (Err.to_string e)
          in
          demote reason;
          Testfd.No reason
  in
  (* multi-table sides go through the DP join-order enumerator *)
  let side sources conjuncts fallback_plan =
    if List.length sources >= 3 then Join_order.best_tree db sources conjuncts
    else fallback_plan
  in
  let side1 = side q.Canonical.r1 q.Canonical.c1 (Plans.side1 db q) in
  let side2 = side q.Canonical.r2 q.Canonical.c2 (Plans.side2 db q) in
  let plan_lazy = Plans.e1_with q ~side1 ~side2 in
  let cost_lazy =
    match Err.protect ~kind:Err.Planner (fun () -> Cost.cost db plan_lazy) with
    | Ok c -> c
    | Error e ->
        (* E1 is the plan of last resort: run it even uncosted *)
        demote (Printf.sprintf "cost model failed on E1: %s" (Err.to_string e));
        Float.infinity
  in
  let lazy_decision verdict =
    {
      verdict;
      plan_lazy;
      cost_lazy;
      plan_eager = None;
      cost_eager = None;
      chosen = plan_lazy;
      chosen_kind = Lazy_group;
      expanded_atoms;
      fallback = !fallback;
      forced = (match force with Some E1 -> Some E1 | _ -> None);
    }
  in
  match force, verdict with
  | Some E1, _ ->
      (* forced E1: always valid — the canonical plan needs no FD check *)
      lazy_decision verdict
  | Some E2, Testfd.No reason ->
      (* force hooks must stay honest: an unverified rewrite is refused
         with a typed error, never silently executed *)
      Err.failf Err.Planner
        "forced E2 rejected: the rewrite is not verified — TestFD says NO \
         (%s)"
        reason
  | Some E2, Testfd.Yes ->
      let plan_eager =
        match
          Err.protect ~kind:Err.Planner (fun () ->
              Plans.e2_with q ~side1 ~side2)
        with
        | Ok p -> p
        | Error e ->
            Err.raise_ (Err.add_context "forced E2: plan construction" e)
      in
      let cost_eager =
        match Err.protect ~kind:Err.Planner (fun () -> Cost.cost db plan_eager)
        with
        | Ok c -> Some c
        | Error _ -> None (* cost is advisory under force *)
      in
      {
        verdict;
        plan_lazy;
        cost_lazy;
        plan_eager = Some plan_eager;
        cost_eager;
        chosen = plan_eager;
        chosen_kind = Eager_group;
        expanded_atoms;
        fallback = !fallback;
        forced = Some E2;
      }
  | None, Testfd.No _ -> lazy_decision verdict
  | None, Testfd.Yes -> (
      match
        let ( let* ) = Result.bind in
        let* () = Fault.check "opt.cost" in
        let* () = Governor.check governor in
        Err.protect ~kind:Err.Planner (fun () ->
            let plan_eager = Plans.e2_with q ~side1 ~side2 in
            (plan_eager, Cost.cost db plan_eager))
      with
      | Error e ->
          (* E2 construction or costing failed: budget breach or error
             inside cost estimation — demote to E1 *)
          demote
            (Printf.sprintf "eager plan abandoned: %s" (Err.to_string e));
          lazy_decision verdict
      | Ok (plan_eager, cost_eager) ->
          let chosen, chosen_kind =
            if cost_eager < cost_lazy then (plan_eager, Eager_group)
            else (plan_lazy, Lazy_group)
          in
          {
            verdict;
            plan_lazy;
            cost_lazy;
            plan_eager = Some plan_eager;
            cost_eager = Some cost_eager;
            chosen;
            chosen_kind;
            expanded_atoms;
            fallback = !fallback;
            forced = None;
          })

(* the planner itself can die on a malformed query (unknown tables on
   both plan shapes); this boundary turns even that into a value *)
let decide_checked ?strict ?expand ?governor ?force db q =
  Err.protect ~kind:Err.Planner (fun () ->
      decide ?strict ?expand ?governor ?force db q)

let explain db d =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "TestFD: %s\n" (Testfd.verdict_to_string d.verdict));
  if d.expanded_atoms > 0 then
    Buffer.add_string buf
      (Printf.sprintf "predicate expansion: %d derived binding(s)\n"
         d.expanded_atoms);
  Buffer.add_string buf
    (Format.asprintf "E1 (lazy):@.%a@." Cost.pp_breakdown
       (Cost.breakdown db d.plan_lazy));
  (match d.plan_eager with
  | Some p ->
      Buffer.add_string buf
        (Format.asprintf "E2 (eager):@.%a@." Cost.pp_breakdown
           (Cost.breakdown db p))
  | None -> ());
  (match d.fallback with
  | Some reason ->
      Buffer.add_string buf
        (Printf.sprintf "fallback: demoted to canonical E1 — %s\n" reason)
  | None -> ());
  (match d.forced with
  | Some f ->
      Buffer.add_string buf
        (Printf.sprintf
           "strategy reason: forced %s (cost comparison bypassed by caller)\n"
           (force_to_string f))
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf "chosen: %s%s\n"
       (kind_to_string d.chosen_kind)
       (match d.forced with Some _ -> " [forced]" | None -> ""));
  Buffer.contents buf
