open Eager_core

type entry = { rank : int; label : string; cost : float; picked : bool }

type t = {
  verdict : Testfd.verdict;
  expanded_atoms : int;
  lazy_breakdown : Cost.breakdown;
  eager_breakdown : Cost.breakdown option;
  fallback : string option;
  forced : string option;
  chosen_kind : Planner.kind;
  placements : entry list;
}

let of_decision db (d : Planner.decision) =
  {
    verdict = d.Planner.verdict;
    expanded_atoms = d.Planner.expanded_atoms;
    lazy_breakdown = Cost.breakdown db d.Planner.plan_lazy;
    eager_breakdown =
      Option.map (fun p -> Cost.breakdown db p) d.Planner.plan_eager;
    fallback = d.Planner.fallback;
    forced = Option.map Planner.force_to_string d.Planner.forced;
    chosen_kind = d.Planner.chosen_kind;
    placements =
      List.mapi
        (fun i (p : Placement.t) ->
          {
            rank = i + 1;
            label = Placement.describe p;
            cost = p.Placement.cost;
            picked = p.Placement.plan == d.Planner.chosen;
          })
        d.Planner.candidates;
  }

let render t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "TestFD: %s\n" (Testfd.verdict_to_string t.verdict));
  if t.expanded_atoms > 0 then
    Buffer.add_string buf
      (Printf.sprintf "predicate expansion: %d derived binding(s)\n"
         t.expanded_atoms);
  Buffer.add_string buf
    (Format.asprintf "E1 (lazy):@.%a@." Cost.pp_breakdown t.lazy_breakdown);
  (match t.eager_breakdown with
  | Some b ->
      Buffer.add_string buf
        (Format.asprintf "E2 (eager):@.%a@." Cost.pp_breakdown b)
  | None -> ());
  (match t.fallback with
  | Some reason ->
      Buffer.add_string buf
        (Printf.sprintf "fallback: demoted to canonical E1 — %s\n" reason)
  | None -> ());
  (match t.forced with
  | Some f ->
      Buffer.add_string buf
        (Printf.sprintf
           "strategy reason: forced %s (cost comparison bypassed by caller)\n"
           f)
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf "chosen: %s%s\n"
       (Planner.kind_to_string t.chosen_kind)
       (match t.forced with Some _ -> " [forced]" | None -> ""));
  (match t.placements with
  | [] | [ _ ] -> () (* a lone E1 candidate adds nothing to the ranking *)
  | ps ->
      Buffer.add_string buf
        (Printf.sprintf "placements (%d candidates, ranked):\n"
           (List.length ps));
      List.iter
        (fun e ->
          Buffer.add_string buf
            (Printf.sprintf "  %d. %s -- cost %.0f%s\n" e.rank e.label e.cost
               (if e.picked then " [chosen]" else "")))
        ps);
  Buffer.contents buf

let text db d = render (of_decision db d)
