(** Plan costing.

    Mirrors the executor's algorithms: a hash join costs its inputs plus its
    output, a nested-loop join (used when no equi-join conjunct exists)
    costs the product of its inputs, hash grouping costs its input, sort
    grouping costs [n log n].  Since the executor is a pull pipeline, the
    model also charges [mat_rows] — the rows a pipeline {i breaker}
    materializes (hash-join build side, nested-loop inner, sort buffer,
    group table); pipelined operators charge none, so plans that shrink a
    join's build side (group-by before join) are rewarded.  Units are
    abstract "row touches"; only comparisons between plans are
    meaningful. *)

open Eager_storage
open Eager_algebra

type breakdown = {
  total : float;
  node_label : string;
  node_cost : float;  (** this operator alone *)
  mat_rows : float;
      (** estimated rows this operator holds materialized (0 for fully
          pipelined operators) *)
  out_card : float;
  inputs : breakdown list;
}

val cost : ?sort_group:bool -> Database.t -> Plan.t -> float
val breakdown : ?sort_group:bool -> Database.t -> Plan.t -> breakdown
val pp_breakdown : Format.formatter -> breakdown -> unit
