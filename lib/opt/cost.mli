(** Plan costing.

    Mirrors the executor's algorithms: a hash join costs its inputs plus its
    output, a nested-loop join (used when no equi-join conjunct exists)
    costs the product of its inputs, hash grouping costs its input, sort
    grouping costs [n log n].  Since the executor is a pull pipeline, the
    model also charges [mat_rows] — the rows a pipeline {i breaker}
    materializes (hash-join build side, nested-loop inner, sort buffer,
    group table); pipelined operators charge none, so plans that shrink a
    join's build side (group-by before join) are rewarded.  Units are
    abstract "row touches"; only comparisons between plans are
    meaningful.

    On a paged database an {!io_model} extends the same footprints into
    physical page transfers: scans read their table's pages
    sequentially, and a breaker whose state exceeds the per-operator
    page budget spills — external-sort merge passes rewrite every page
    per pass, a spilling aggregation writes and re-reads the rows of
    non-resident groups, a grace hash join writes and re-reads both
    sides with the partition reads charged at the random weight.
    Without a model (the RAM engine) every IO term is zero and totals
    are unchanged. *)

open Eager_storage
open Eager_algebra

type io_model = {
  page_rows : int;  (** rows per page (see {!Database.page_rows}) *)
  budget_pages : int;  (** per-operator in-memory budget, in pages *)
  seq_weight : float;  (** cost of one sequential page transfer *)
  rand_weight : float;  (** cost of one random page transfer *)
}

val default_io : ?budget_pages:int -> Database.t -> io_model option
(** [None] on a RAM database.  The default budget mirrors the
    executor's: half the pool capacity (at least 2), or 64 pages when
    the pool is unbounded; weights are 1.0 sequential / 4.0 random. *)

type breakdown = {
  total : float;
  node_label : string;
  node_cost : float;  (** this operator alone *)
  mat_rows : float;
      (** estimated rows this operator holds materialized (0 for fully
          pipelined operators) *)
  io_pages : float;
      (** estimated physical page transfers this operator causes (0
          without an {!io_model}) *)
  out_card : float;
  inputs : breakdown list;
}

val cost : ?sort_group:bool -> ?io:io_model -> Database.t -> Plan.t -> float
val breakdown :
  ?sort_group:bool -> ?io:io_model -> Database.t -> Plan.t -> breakdown
val pp_breakdown : Format.formatter -> breakdown -> unit
