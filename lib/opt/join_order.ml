open Eager_schema
open Eager_expr
open Eager_catalog
open Eager_storage
open Eager_core
open Eager_algebra

let scan_of db (s : Canonical.source) =
  match Catalog.find_table (Database.catalog db) s.Canonical.table with
  | None ->
      Eager_robust.Err.failf Eager_robust.Err.Planner "unknown table %s"
        s.Canonical.table
  | Some td ->
      Plan.scan ~table:s.Canonical.table ~rel:s.Canonical.rel
        (Table_def.schema ~rel:s.Canonical.rel td)

let best_tree ?(max_relations = 12) db (sources : Canonical.source list)
    conjuncts =
  let n = List.length sources in
  if n = 0 then
    Eager_robust.Err.failf Eager_robust.Err.Planner
      "Join_order.best_tree: empty source list";
  if n > max_relations then Plans.join_tree db sources conjuncts
  else begin
    let sources = Array.of_list sources in
    let scans = Array.map (scan_of db) sources in
    let colsets = Array.map (fun s -> Schema.colset (Plan.schema_of s)) scans in
    (* column set covered by a subset mask *)
    let cols_of_mask mask =
      let acc = ref Colref.Set.empty in
      for i = 0 to n - 1 do
        if mask land (1 lsl i) <> 0 then acc := Colref.Set.union !acc colsets.(i)
      done;
      !acc
    in
    (* conjuncts applicable once exactly the columns of [mask] are in scope *)
    let applicable =
      let memo = Hashtbl.create 64 in
      fun mask ->
        match Hashtbl.find_opt memo mask with
        | Some l -> l
        | None ->
            let cols = cols_of_mask mask in
            let l =
              List.filter
                (fun e -> Colref.Set.subset (Expr.columns e) cols)
                conjuncts
            in
            Hashtbl.replace memo mask l;
            l
    in
    (* filtered base relation for a singleton *)
    let leaf i =
      Plan.select (Expr.conj (applicable (1 lsl i))) scans.(i)
    in
    let best : (float * Plan.t) option array = Array.make (1 lsl n) None in
    for i = 0 to n - 1 do
      let p = leaf i in
      best.(1 lsl i) <- Some (Cost.cost db p, p)
    done;
    (* enumerate subsets in increasing popcount *)
    let rec popcount x = if x = 0 then 0 else (x land 1) + popcount (x lsr 1) in
    let by_popcount =
      List.init ((1 lsl n) - 1) (fun k -> k + 1)
      |> List.sort (fun a b -> compare (popcount a) (popcount b))
    in
    List.iter
      (fun mask ->
        if popcount mask >= 2 then
          for i = 0 to n - 1 do
            let bit = 1 lsl i in
            if mask land bit <> 0 then begin
              let rest = mask lxor bit in
              match best.(rest) with
              | None -> ()
              | Some (_, left_plan) ->
                  let right = leaf i in
                  (* predicates that become applicable at this join *)
                  let new_preds =
                    let before_left = applicable rest in
                    let before_right = applicable bit in
                    let already e l = List.exists (Expr.equal e) l in
                    List.filter
                      (fun e ->
                        (not (already e before_left))
                        && not (already e before_right))
                      (applicable mask)
                  in
                  let plan =
                    match new_preds with
                    | [] -> Plan.Product (left_plan, right)
                    | _ -> Plan.join (Expr.conj new_preds) left_plan right
                  in
                  let cost = Cost.cost db plan in
                  (match best.(mask) with
                  | Some (c, _) when c <= cost -> ()
                  | _ -> best.(mask) <- Some (cost, plan))
            end
          done)
      by_popcount;
    match best.((1 lsl n) - 1) with
    | Some (_, plan) -> plan
    | None -> Plans.join_tree db (Array.to_list sources) conjuncts
  end
