(** Structured EXPLAIN output.

    {!of_decision} captures everything EXPLAIN reports as a typed value —
    tests assert on these fields, not on rendered substrings — and
    {!render} is the single place that turns it into text.  The textual
    prefix (TestFD verdict, expansion count, E1/E2 cost breakdowns,
    fallback, strategy reason, chosen line) is byte-for-byte the format
    the planner printed before placements existed; the ranked-placements
    section is appended after the [chosen:] line. *)

open Eager_core
open Eager_storage

type entry = {
  rank : int;  (** 1-based position in the cost ranking *)
  label : string;  (** {!Placement.describe} *)
  cost : float;
  picked : bool;  (** this candidate is the decision's chosen plan *)
}

type t = {
  verdict : Testfd.verdict;
  expanded_atoms : int;
  lazy_breakdown : Cost.breakdown;
  eager_breakdown : Cost.breakdown option;
  fallback : string option;
  forced : string option;  (** {!Planner.force_to_string} when forced *)
  chosen_kind : Planner.kind;
  placements : entry list;  (** cheapest first; singleton when only E1 *)
}

val of_decision : Database.t -> Planner.decision -> t
val render : t -> string

val text : Database.t -> Planner.decision -> string
(** [render (of_decision db d)]. *)
