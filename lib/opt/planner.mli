(** The cost-based decision: validity by TestFD (or decomposability),
    desirability by cost.

    The paper establishes {i when the transformation is valid} (Theorem 1/2,
    TestFD) and observes that validity does not imply profitability
    (Section 7, Figure 8).  The planner combines both, generalised to
    N-way join trees: every candidate cut of the join graph
    ({!Eager_core.Qgraph.cuts}) yields up to two eager placements — the
    full E2 rewrite when TestFD verifies the cut, and the partial
    pre-aggregation (bounded [Partial_group] plus finalizing group) when
    the aggregates are decomposable — and the cost model ranks them all
    against the canonical E1.  The two-relation case degenerates to the
    paper's binary E1-vs-E2 comparison. *)

open Eager_core
open Eager_storage
open Eager_algebra
open Eager_robust

type kind = Lazy_group | Eager_group | Eager_partial_group

type force =
  | E1
  | E2
  | Force_placement of { below : string list; partial : bool }
      (** demand the aggregation be placed below exactly this cut —
          fully ([partial = false], requires TestFD = YES at the cut) or
          partially ([partial = true], requires decomposable
          aggregates) *)
(** Force hooks for differential testing: bypass the cost comparison and
    demand one specific strategy.  Unsound demands are refused with a
    typed error — forcing never compromises soundness. *)

type decision = {
  verdict : Testfd.verdict;  (** TestFD at the default (classic R1/R2) cut *)
  plan_lazy : Plan.t;
  cost_lazy : float;
  plan_eager : Plan.t option;
      (** the full E2 plan at the default cut, when TestFD verified it *)
  cost_eager : float option;
  chosen : Plan.t;
  chosen_kind : kind;
  expanded_atoms : int;
      (** predicate-expansion bindings derived before planning (paper
          Example 3's closing optimization); 0 when [expand:false] *)
  fallback : string option;
      (** when set, the planner degraded gracefully: an error, injected
          fault, or budget breach inside TestFD / cost estimation demoted
          the decision to the canonical E1 plan for this reason *)
  forced : force option;
      (** set when the caller forced the strategy; EXPLAIN reports the
          forced strategy as the reason instead of the cost comparison *)
  candidates : Placement.t list;
      (** every costed placement, cheapest first (ties favour earlier
          entries, so E1 wins a dead heat); [chosen] is the head unless
          forcing or a fallback intervened *)
}

val decide :
  ?strict:bool ->
  ?expand:bool ->
  ?governor:Governor.t ->
  ?force:force ->
  ?partial_cap:int ->
  ?max_cuts:int ->
  ?io:Cost.io_model ->
  Database.t ->
  Canonical.t ->
  (decision, Err.t) result
(** The planner's single entry point, behind the typed-error boundary:
    even a planner that cannot produce the E1 plan (e.g. every
    referenced table is gone) — or a forced rewrite that fails
    verification — returns [Error] instead of raising.

    [expand] (default true) applies {!Eager_core.Expand.query} first, so
    derived constant bindings shrink the eager plans' grouping inputs.
    Any failure inside verification or costing — including a [governor]
    deadline already exceeded — falls back to E1 with the reason
    recorded in [fallback] (and shown by {!Explain}).

    [partial_cap] (default 1024) bounds the partial operator's live
    groups; [max_cuts] (default 16) bounds placement enumeration.

    [io] makes ranking IO-aware on a paged database (see
    {!Cost.io_model}): placements are compared on row touches {i plus}
    estimated page transfers, so a rewrite whose smaller breakers avoid
    spilling wins even when its row counts tie.  Omitted, costs are the
    pure row-touch figures.

    [force] bypasses the cost comparison: [E1] always yields the
    canonical plan; [E2] yields the full eager plan at the default cut
    {i only} when TestFD answers YES; [Force_placement] pins the cut
    (and mode) explicitly.  Refused demands are [Error]s of kind
    [Planner]. *)

val decide_exn :
  ?strict:bool ->
  ?expand:bool ->
  ?governor:Governor.t ->
  ?force:force ->
  ?partial_cap:int ->
  ?max_cuts:int ->
  ?io:Cost.io_model ->
  Database.t ->
  Canonical.t ->
  decision
[@@ocaml.deprecated "use Planner.decide, which returns a result"]
(** Raising variant kept for one release for out-of-tree callers;
    raises [Err.Error_exn] where {!decide} returns [Error]. *)

val kind_to_string : kind -> string
val force_to_string : force -> string
