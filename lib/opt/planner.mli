(** The cost-based decision: validity by TestFD, desirability by cost.

    The paper establishes {i when the transformation is valid} (Theorem 1/2,
    TestFD) and observes that validity does not imply profitability
    (Section 7, Figure 8).  The planner combines both: it proposes E2 only
    when TestFD says YES, and picks whichever of E1/E2 the cost model
    prefers. *)

open Eager_core
open Eager_storage
open Eager_algebra
open Eager_robust

type kind = Lazy_group | Eager_group

type force = E1 | E2
(** Force hooks for differential testing: bypass the cost comparison and
    demand one specific strategy.  [E2] is only honoured when TestFD
    verifies the rewrite — forcing never compromises soundness. *)

type decision = {
  verdict : Testfd.verdict;
  plan_lazy : Plan.t;
  cost_lazy : float;
  plan_eager : Plan.t option;
  cost_eager : float option;
  chosen : Plan.t;
  chosen_kind : kind;
  expanded_atoms : int;
      (** predicate-expansion bindings derived before planning (paper
          Example 3's closing optimization); 0 when [expand:false] *)
  fallback : string option;
      (** when set, the planner degraded gracefully: an error, injected
          fault, or budget breach inside TestFD / cost estimation demoted
          the decision to the canonical E1 plan for this reason *)
  forced : force option;
      (** set when the caller forced the strategy; {!explain} reports the
          forced strategy as the reason instead of the cost comparison *)
}

val decide :
  ?strict:bool ->
  ?expand:bool ->
  ?governor:Governor.t ->
  ?force:force ->
  Database.t ->
  Canonical.t ->
  decision
(** [expand] (default true) applies {!Eager_core.Expand.query} first, so
    derived constant bindings shrink the eager plan's grouping input.
    The E2 rewrite is proposed only when TestFD completes with YES; any
    failure inside verification or costing — including a [governor]
    deadline already exceeded — falls back to E1 with the reason recorded
    in [fallback] (and shown by {!explain}).

    [force] bypasses the cost comparison: [E1] always yields the canonical
    plan; [E2] yields the eager plan {i only} when TestFD answers YES and
    raises [Err.Error_exn] (kind [Planner]) otherwise — use
    {!decide_checked} to receive that refusal as a typed value. *)

val decide_checked :
  ?strict:bool ->
  ?expand:bool ->
  ?governor:Governor.t ->
  ?force:force ->
  Database.t ->
  Canonical.t ->
  (decision, Err.t) result
(** [decide] behind the typed-error boundary: even a planner that cannot
    produce the E1 plan (e.g. every referenced table is gone) — or a
    [~force:E2] request that TestFD refuses — returns [Error] instead of
    raising. *)

val explain : Database.t -> decision -> string
val kind_to_string : kind -> string
val force_to_string : force -> string
