(** Buffer pool: decoded pages behind pin/unpin guards with LRU-2
    replacement, hit/miss/eviction telemetry, and breaker-state
    reservation accounting.

    Frames are keyed by (pager tag, page id), so one pool fronts both
    the data pager and the spill pager.  Pinned frames are never
    evicted; at capacity with everything pinned, a pin fails with a
    typed [Resource] error.  Thread-safe (server sessions share one
    pool).

    This module is the only legal client of {!Pager} IO — tools/lint.sh
    bans unguarded pager access elsewhere. *)

open Eager_schema
open Eager_robust

type t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  flushes : int;  (** dirty write-backs from {!flush_all} barriers *)
  page_reads : int;  (** physical reads, including uncached spill reads *)
  page_writes : int;  (** physical writes, including spills and evictions *)
  resident : int;
  dirty : int;
  pinned : int;  (** pinned frames + reserved pages — the working set *)
  reserved : int;
  peak_pinned : int;  (** high-water mark of [pinned] since creation *)
}

val create : ?cap:int -> unit -> t
(** [cap] bounds resident frames plus reserved pages; omit it for an
    unbounded pool.  Raises [Invalid_argument] if [cap < 1]. *)

val cap : t -> int option

val pin : ?gov:Governor.t -> t -> Pager.t -> int -> Row.t array
(** Fetch a page and pin it resident.  A miss performs one physical read
    (charged to [gov] as a page IO) and may evict an unpinned victim
    (write-back charged too).  Typed [Resource] error when the pool is
    full of pinned pages. *)

val unpin : t -> Pager.t -> int -> unit

val with_page : ?gov:Governor.t -> t -> Pager.t -> int -> (Row.t array -> 'a) -> 'a
(** Pin, run, unpin (exception-safe).  The pool mutex is not held during
    the callback. *)

val alloc : ?gov:Governor.t -> t -> Pager.t -> Row.t array -> int
(** Allocate a fresh page, resident and dirty; it reaches the pager only
    on eviction or flush. *)

val update : ?gov:Governor.t -> t -> Pager.t -> int -> (Row.t array -> Row.t array) -> unit
(** Pin, replace the page's rows with [f rows], mark dirty, unpin. *)

val reserve : ?gov:Governor.t -> t -> int -> unit
(** Account [n] pages of operator state (hash build, sort buffer, group
    table) against the pool: reserved pages compete with frames for the
    cap and count into [pinned]/[peak_pinned], so the telemetry measures
    an execution's true working set.  Typed [Resource] error when the
    cap cannot accommodate them. *)

val release : t -> int -> unit

val append_page : ?gov:Governor.t -> t -> Pager.t -> Row.t array -> int
(** Write-through append for spill runs: allocates, writes immediately,
    and does {e not} cache the frame (runs are written once and read
    once — caching them would pollute the hot set).  Returns the id. *)

val read_page : ?gov:Governor.t -> t -> Pager.t -> int -> Row.t array
(** Uncached read-through, the partner of {!append_page}. *)

val flush_all : t -> unit
(** Write every dirty frame back and fsync each touched pager — the
    flush-before-checkpoint barrier. *)

val drop_pager : t -> Pager.t -> unit
(** Forget every (unpinned) frame of [pager] without write-back. *)

val stats : t -> stats
val reset_peak : t -> unit
val hit_rate : stats -> float
