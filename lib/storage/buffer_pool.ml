(* Buffer pool: decoded pages behind pin/unpin guards with LRU-2
   replacement.

   Frames hold *decoded* rows (an anti-caching layout: the codec runs
   only at the pager boundary, on miss reads and eviction write-backs),
   keyed by (pager tag, page id) so one pool fronts the data pager and
   the spill pager alike.  The pool is the only module allowed to touch
   a [Pager] directly — everything else pins.

   Replacement is LRU-2: the victim is the unpinned frame whose
   second-most-recent access is oldest, with frames touched only once
   preferred (their backward K-distance is infinite).  Sequential floods
   of once-touched scan pages therefore cannot displace the hot set of
   re-referenced pages — the classic LRU-K property.

   Pinned frames are never eviction candidates; when every frame is
   pinned and the pool is at capacity, a pin that needs a free frame
   fails with a typed [Resource] error rather than evicting under a
   caller's feet.

   [reserve]/[release] lets pipeline breakers account their in-memory
   state (hash builds, sort buffers, group tables) against the same
   capacity: reserved pages compete with frames for the cap and count
   into the pinned telemetry, so "peak pinned" measures an execution's
   true working set — the quantity the paper's E2 plans shrink.

   All entry points take the pool mutex (server sessions share one
   pool); the mutex is *not* held across [with_page] callbacks. *)

open Eager_schema
open Eager_robust

type frame = {
  fr_pager : Pager.t;
  fr_id : int;
  mutable rows : Row.t array;
  mutable pins : int;
  mutable dirty : bool;
  mutable h1 : int; (* most recent access tick *)
  mutable h2 : int; (* previous access tick; 0 = touched once *)
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  flushes : int; (* dirty write-backs from flush barriers *)
  page_reads : int; (* physical reads, including uncached spill reads *)
  page_writes : int; (* physical writes, including spill and evictions *)
  resident : int;
  dirty : int;
  pinned : int; (* pinned frames + reserved pages, the working set *)
  reserved : int;
  peak_pinned : int;
}

type t = {
  cap : int option; (* frames + reserved pages; None = unbounded *)
  mu : Mutex.t;
  frames : (int * int, frame) Hashtbl.t;
  mutable tick : int;
  mutable pinned_frames : int;
  mutable reserved : int;
  mutable peak_pinned : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable flushes : int;
  mutable page_reads : int;
  mutable page_writes : int;
}

let create ?cap () =
  (match cap with
  | Some c when c < 1 -> invalid_arg "Buffer_pool.create: cap must be >= 1"
  | _ -> ());
  {
    cap;
    mu = Mutex.create ();
    frames = Hashtbl.create 64;
    tick = 0;
    pinned_frames = 0;
    reserved = 0;
    peak_pinned = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    flushes = 0;
    page_reads = 0;
    page_writes = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let note_peak t =
  let live = t.pinned_frames + t.reserved in
  if live > t.peak_pinned then t.peak_pinned <- live

let touch t fr =
  t.tick <- t.tick + 1;
  fr.h2 <- fr.h1;
  fr.h1 <- t.tick

(* LRU-2 victim: unpinned frame with the oldest second-most-recent
   access; h2 = 0 (touched once) sorts before any re-referenced frame *)
let victim t =
  Hashtbl.fold
    (fun _ fr best ->
      if fr.pins > 0 then best
      else
        match best with
        | None -> Some fr
        | Some b ->
            if (fr.h2, fr.h1) < (b.h2, b.h1) then Some fr else best)
    t.frames None

let evict_one t gov =
  match victim t with
  | None -> false
  | Some fr ->
      if fr.dirty then begin
        Pager.write fr.fr_pager fr.fr_id fr.rows;
        t.page_writes <- t.page_writes + 1;
        (match gov with Some g -> Governor.charge_page_ios g 1 | None -> ())
      end;
      Hashtbl.remove t.frames (Pager.tag fr.fr_pager, fr.fr_id);
      t.evictions <- t.evictions + 1;
      true

(* make room for [want] more frames-or-reservations; caller holds mu *)
let make_room t gov ~want ~why =
  match t.cap with
  | None -> ()
  | Some cap ->
      let need () = Hashtbl.length t.frames + t.reserved + want - cap in
      let rec go () =
        if need () > 0 then
          if evict_one t gov then go ()
          else
            Err.failf Err.Resource
              "buffer pool exhausted: %d of %d pages pinned or reserved, \
               cannot %s"
              (t.pinned_frames + t.reserved)
              cap why
      in
      go ()

let load t gov pager id =
  let rows = Pager.read pager id in
  t.page_reads <- t.page_reads + 1;
  (match gov with Some g -> Governor.charge_page_ios g 1 | None -> ());
  rows

let pin ?gov t pager id =
  locked t (fun () ->
      let key = (Pager.tag pager, id) in
      match Hashtbl.find_opt t.frames key with
      | Some fr ->
          t.hits <- t.hits + 1;
          if fr.pins = 0 then t.pinned_frames <- t.pinned_frames + 1;
          fr.pins <- fr.pins + 1;
          touch t fr;
          note_peak t;
          fr.rows
      | None ->
          t.misses <- t.misses + 1;
          make_room t gov ~want:1 ~why:(Printf.sprintf "pin page %d" id);
          let rows = load t gov pager id in
          let fr =
            { fr_pager = pager; fr_id = id; rows; pins = 1; dirty = false;
              h1 = 0; h2 = 0 }
          in
          touch t fr;
          Hashtbl.add t.frames key fr;
          t.pinned_frames <- t.pinned_frames + 1;
          note_peak t;
          rows)

let unpin t pager id =
  locked t (fun () ->
      match Hashtbl.find_opt t.frames (Pager.tag pager, id) with
      | None -> invalid_arg "Buffer_pool.unpin: page not resident"
      | Some fr ->
          if fr.pins <= 0 then
            invalid_arg "Buffer_pool.unpin: page not pinned";
          fr.pins <- fr.pins - 1;
          if fr.pins = 0 then t.pinned_frames <- t.pinned_frames - 1)

let with_page ?gov t pager id f =
  let rows = pin ?gov t pager id in
  Fun.protect ~finally:(fun () -> unpin t pager id) (fun () -> f rows)

(* allocate a fresh page already resident and dirty: the image reaches
   the pager only when the frame is evicted or flushed *)
let alloc ?gov t pager rows =
  locked t (fun () ->
      make_room t gov ~want:1 ~why:"allocate a page";
      let id = Pager.alloc pager in
      let fr =
        { fr_pager = pager; fr_id = id; rows; pins = 0; dirty = true; h1 = 0;
          h2 = 0 }
      in
      touch t fr;
      Hashtbl.add t.frames (Pager.tag pager, id) fr;
      note_peak t;
      id)

let update ?gov t pager id f =
  let rows = pin ?gov t pager id in
  Fun.protect
    ~finally:(fun () -> unpin t pager id)
    (fun () ->
      let rows' = f rows in
      locked t (fun () ->
          match Hashtbl.find_opt t.frames (Pager.tag pager, id) with
          | None -> invalid_arg "Buffer_pool.update: page vanished while pinned"
          | Some fr ->
              fr.rows <- rows';
              fr.dirty <- true))

(* ---------------- breaker-state accounting ---------------- *)

let reserve ?gov t n =
  if n < 0 then invalid_arg "Buffer_pool.reserve";
  if n > 0 then
    locked t (fun () ->
        make_room t gov ~want:n
          ~why:(Printf.sprintf "reserve %d pages of operator state" n);
        t.reserved <- t.reserved + n;
        note_peak t)

let release t n =
  if n < 0 then invalid_arg "Buffer_pool.release";
  if n > 0 then
    locked t (fun () ->
        if n > t.reserved then invalid_arg "Buffer_pool.release: over-release";
        t.reserved <- t.reserved - n)

(* ---------------- spill-run IO (uncached) ---------------- *)

(* Spill runs are written once and read once, so caching their pages
   would only pollute the hot set: runs bypass the frame table entirely
   — write-through on append, read-through on read — while still
   counting into the pool's physical IO telemetry and the governor's
   page-IO budget. *)

let append_page ?gov t pager rows =
  locked t (fun () ->
      let id = Pager.alloc pager in
      Pager.write pager id rows;
      t.page_writes <- t.page_writes + 1;
      (match gov with Some g -> Governor.charge_page_ios g 1 | None -> ());
      id)

let read_page ?gov t pager id =
  locked t (fun () -> load t gov pager id)

(* ---------------- flush barrier ---------------- *)

(* write every dirty frame back and fsync each distinct pager: the
   checkpoint barrier — a snapshot taken after [flush_all] sees every
   page the pool was still holding *)
let flush_all t =
  locked t (fun () ->
      let pagers = Hashtbl.create 4 in
      Hashtbl.iter
        (fun _ (fr : frame) ->
          if fr.dirty then begin
            Pager.write fr.fr_pager fr.fr_id fr.rows;
            fr.dirty <- false;
            t.page_writes <- t.page_writes + 1;
            t.flushes <- t.flushes + 1;
            Hashtbl.replace pagers (Pager.tag fr.fr_pager) fr.fr_pager
          end)
        t.frames;
      Hashtbl.iter (fun _ p -> Pager.fsync p) pagers)

(* drop every frame belonging to [pager] without write-back — used when
   a scratch pager's contents are abandoned wholesale *)
let drop_pager t pager =
  locked t (fun () ->
      let tag = Pager.tag pager in
      let doomed =
        Hashtbl.fold
          (fun ((tg, _) as key) fr acc ->
            if tg = tag then (key, fr) :: acc else acc)
          t.frames []
      in
      List.iter
        (fun (key, fr) ->
          if fr.pins > 0 then
            invalid_arg "Buffer_pool.drop_pager: page still pinned";
          Hashtbl.remove t.frames key)
        doomed)

let stats t =
  locked t (fun () ->
      let dirty =
        Hashtbl.fold
          (fun _ (fr : frame) n -> if fr.dirty then n + 1 else n)
          t.frames 0
      in
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        flushes = t.flushes;
        page_reads = t.page_reads;
        page_writes = t.page_writes;
        resident = Hashtbl.length t.frames;
        dirty;
        pinned = t.pinned_frames + t.reserved;
        reserved = t.reserved;
        peak_pinned = t.peak_pinned;
      })

let reset_peak t = locked t (fun () -> t.peak_pinned <- 0)

let cap t = t.cap

let hit_rate (s : stats) =
  let total = s.hits + s.misses in
  if total = 0 then 1.0 else float_of_int s.hits /. float_of_int total
