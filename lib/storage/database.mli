(** A database instance: a catalog plus one heap per base table.

    [insert] enforces the SQL2 constraints of the catalog — types, NOT NULL,
    CHECK and domain checks, key uniqueness (primary keys reject NULL; UNIQUE
    keys use SQL2's "NULL not equal to NULL" rule and thus never conflict on
    NULL), and referential integrity. *)

open Eager_value
open Eager_catalog

type t

type storage_config = {
  pool_pages : int option;
      (** buffer-pool capacity in pages; [None] = unbounded *)
  page_size : int;
  spill_dir : string option;
      (** directory for pager files; [None] keeps pages in memory (still
          checksummed, still evicted — the full paged semantics without
          filesystem traffic) *)
}

val default_storage : storage_config
(** Unbounded pool, 4096-byte pages, in-memory pagers. *)

val create : ?storage:storage_config -> unit -> t
(** Without [storage], heaps are RAM-backed (the original engine).  With
    it, every table lives on fixed-size checksummed pages behind one
    shared buffer pool, plus a scratch pager for executor spill runs.
    Pager files are run-scoped caches: durability stays with the WAL and
    snapshots. *)

val catalog : t -> Catalog.t

val storage_config : t -> storage_config option
val is_paged : t -> bool

val buffer_pool : t -> Buffer_pool.t option

val scratch : t -> (Buffer_pool.t * Pager.t) option
(** The pool and scratch pager the executor uses for spill runs. *)

val pool_stats : t -> Buffer_pool.stats option

val flush : t -> unit
(** Flush-before-checkpoint barrier: write every dirty page back and
    fsync the pagers.  No-op on a RAM database. *)

val page_rows : t -> int
(** Estimated rows per page at a nominal encoded row width — how the IO
    cost model translates cardinalities into page counts. *)

val close_storage : t -> unit
(** Close and remove the pager files (call at process exit; snapshots
    share the pagers, so never close a database that still has live
    readers). *)

val snapshot : t -> t
(** A frozen, independent copy: heaps are duplicated (rows shared —
    they are immutable engine-wide), the catalog value is captured, and
    derived caches start empty.  Mutations of either instance never
    show through the other.  This is the MVCC-lite version a server
    stamps with the commit LSN and hands to readers. *)

(** [reader_view t] is a private view sharing [t]'s heaps but owning
    fresh derived caches (statistics, key/secondary indexes).  Intended
    for concurrent readers over one frozen {!snapshot}: row storage is
    safely shared because snapshots are never mutated, while the
    mutable caches stay per-reader so threads cannot race on them.
    O(#tables). *)
val reader_view : t -> t
val create_table : t -> Table_def.t -> unit
(** Registers the table and its empty heap.  Any cached index or
    statistics state left over from a previously dropped table of the
    same name is evicted first. *)

val drop_table : t -> string -> (unit, Eager_robust.Err.t) result
(** Remove the table, its heap, its catalog indexes, and every cached
    derived structure (key indexes, secondary indexes, statistics).
    [Error] with kind [Catalog] for an unknown table. *)

val create_domain : t -> Catalog.domain_def -> unit
val create_view : t -> Catalog.view_def -> unit
val heap : t -> string -> Heap.t
(** Raises [Err.Error_exn] (kind [Storage]) for an unknown table. *)

val heap_opt : t -> string -> Heap.t option

val insert : t -> string -> Value.t list -> (unit, Eager_robust.Err.t) result
(** Typed-error insert: constraint violations are [Storage] errors;
    injected faults and internal raises are captured, never leaked as
    exceptions.  The heap is mutated only after every check has passed. *)

val insert_result :
  t -> string -> Value.t list -> (unit, Eager_robust.Err.t) result
(** Alias of {!insert}, kept for callers written against the older split
    string/typed pair. *)

val insert_exn : t -> string -> Value.t list -> unit
(** Raises [Err.Error_exn] on refusal. *)

val load_result :
  t -> string -> Value.t list list -> (unit, Eager_robust.Err.t) result
(** Statement-atomic bulk insert: either every row lands or the table is
    rolled back to its prior contents (and every incremental index over
    it is invalidated).  Rows within the batch are inserted in order, so
    later rows may reference earlier ones. *)

val load : t -> string -> Value.t list list -> unit
(** {!load_result}, raising [Err.Error_exn] on refusal. *)

val delete :
  t ->
  string ->
  ?params:Eager_expr.Expr.env ->
  where:Eager_expr.Expr.t ->
  unit ->
  (int, Eager_robust.Err.t) result
(** Delete the rows on which [where] {i holds} (3VL; rows where it is
    unknown stay).  Referential integrity is NO ACTION: the delete is
    refused if any foreign key elsewhere (or in the table itself) would be
    left dangling.  Returns the number of rows removed. *)

val update :
  t ->
  string ->
  ?params:Eager_expr.Expr.env ->
  set:(string * Eager_expr.Expr.t) list ->
  where:Eager_expr.Expr.t ->
  unit ->
  (int, Eager_robust.Err.t) result
(** Update the rows on which [where] holds; assignment expressions are
    evaluated against the {i old} row.  The prospective table state is
    validated wholesale — types, NOT NULL, CHECK/domain constraints, key
    uniqueness, outgoing foreign keys, and incoming foreign keys (NO
    ACTION) — before any row is changed.  Returns the number of rows
    updated. *)

val create_index :
  t -> name:string -> table:string -> cols:string list -> (unit, string) result
(** Declare a secondary equality-lookup index.  Maintained incrementally on
    insert and rebuilt after DELETE/UPDATE compactions. *)

val find_equality_index :
  t -> table:string -> col:string -> Catalog.index_def option
(** A declared single-column index usable for a [col = const] lookup. *)

val index_lookup :
  t -> Catalog.index_def -> Eager_value.Value.t list -> Eager_schema.Row.t list
(** All rows of the index's table whose key columns equal the given values
    (search-condition equality: NULL keys never match, and looking up a
    NULL returns nothing). *)

val stats : t -> string -> Stats.t
(** Cached per table; recomputed when the heap has grown. *)

val row_count : t -> string -> int
