(** Fixed-size checksummed page images — the unit of transfer between
    the buffer pool and a pager backend.

    Layout: 20-byte header (magic, page id, row count, payload length),
    self-describing row payload, zero padding, and a trailing 16-byte
    MD5 digest covering {e every} preceding byte, so any single-byte
    corruption of an image — header, payload, or padding — is detected
    at decode time and refused with a typed [Storage] error. *)

open Eager_schema

val min_size : int
(** Smallest legal page size (128 bytes). *)

val header_bytes : int

val checksum_bytes : int

val row_bytes : Row.t -> int
(** Encoded size of one row, for fits-on-page accounting. *)

val capacity : page_size:int -> int
(** Payload bytes available on a page of [page_size]. *)

val encode : page_size:int -> id:int -> Row.t array -> bytes
(** Build the full [page_size]-byte image.  Raises a typed [Storage]
    {!Eager_robust.Err.Error_exn} if the rows exceed {!capacity}. *)

val decode : page_size:int -> id:int -> bytes -> Row.t array
(** Verify checksum, magic, and page id, then decode the rows.  Raises a
    typed [Storage] error on any mismatch — a wrong-length image (torn
    write), a flipped byte anywhere, or a header that disagrees with the
    payload. *)
