(* Fixed-size checksummed page images.

   A page is the unit of transfer between the buffer pool and a pager
   backend.  The on-disk image is exactly [page_size] bytes:

     bytes 0..3             magic "EPG1"
     bytes 4..11            page id (int64 LE) — catches misdirected IO
     bytes 12..15           row count (int32 LE)
     bytes 16..19           payload length in bytes (int32 LE)
     bytes 20..20+payload   encoded rows
     ...                    zero padding
     last 16 bytes          MD5 digest of every preceding byte

   The digest covers header, payload, and padding, so flipping any single
   byte of the image — including the padding and the header — is detected
   at decode time and refused with a typed [Storage] error.  A torn write
   (partial page at the tail of a file) fails the same check.

   Rows are encoded self-descriptively (per-row arity, per-value tag), so
   the codec serves both heap pages (fixed schema) and spill-run pages
   (whatever intermediate schema an operator is carrying). *)

open Eager_value
open Eager_schema
open Eager_robust

let magic = "EPG1"
let header_bytes = 20
let checksum_bytes = 16
let min_size = 128

(* ---------------- value codec ---------------- *)

let tag_null = '\000'
let tag_int = '\001'
let tag_float = '\002'
let tag_str = '\003'
let tag_bool_false = '\004'
let tag_bool_true = '\005'

let value_bytes = function
  | Value.Null -> 1
  | Value.Int _ -> 9
  | Value.Float _ -> 9
  | Value.Bool _ -> 1
  | Value.Str s -> 5 + String.length s

(* 2-byte arity prefix, then the values *)
let row_bytes (row : Row.t) =
  Array.fold_left (fun acc v -> acc + value_bytes v) 2 row

let capacity ~page_size = page_size - header_bytes - checksum_bytes

let put_value buf pos = function
  | Value.Null ->
      Bytes.set buf pos tag_null;
      pos + 1
  | Value.Int n ->
      Bytes.set buf pos tag_int;
      Bytes.set_int64_le buf (pos + 1) (Int64.of_int n);
      pos + 9
  | Value.Float f ->
      Bytes.set buf pos tag_float;
      Bytes.set_int64_le buf (pos + 1) (Int64.bits_of_float f);
      pos + 9
  | Value.Bool b ->
      Bytes.set buf pos (if b then tag_bool_true else tag_bool_false);
      pos + 1
  | Value.Str s ->
      Bytes.set buf pos tag_str;
      Bytes.set_int32_le buf (pos + 1) (Int32.of_int (String.length s));
      Bytes.blit_string s 0 buf (pos + 5) (String.length s);
      pos + 5 + String.length s

let get_value buf pos limit =
  if pos >= limit then Err.failf Err.Storage "page payload truncated";
  match Bytes.get buf pos with
  | c when c = tag_null -> (Value.Null, pos + 1)
  | c when c = tag_int ->
      if pos + 9 > limit then Err.failf Err.Storage "page payload truncated";
      (Value.Int (Int64.to_int (Bytes.get_int64_le buf (pos + 1))), pos + 9)
  | c when c = tag_float ->
      if pos + 9 > limit then Err.failf Err.Storage "page payload truncated";
      ( Value.Float (Int64.float_of_bits (Bytes.get_int64_le buf (pos + 1))),
        pos + 9 )
  | c when c = tag_bool_false -> (Value.Bool false, pos + 1)
  | c when c = tag_bool_true -> (Value.Bool true, pos + 1)
  | c when c = tag_str ->
      if pos + 5 > limit then Err.failf Err.Storage "page payload truncated";
      let n = Int32.to_int (Bytes.get_int32_le buf (pos + 1)) in
      if n < 0 || pos + 5 + n > limit then
        Err.failf Err.Storage "page payload truncated";
      (Value.Str (Bytes.sub_string buf (pos + 5) n), pos + 5 + n)
  | c -> Err.failf Err.Storage "unknown value tag 0x%02x in page" (Char.code c)

let put_row buf pos (row : Row.t) =
  Bytes.set_uint16_le buf pos (Array.length row);
  Array.fold_left (fun p v -> put_value buf p v) (pos + 2) row

let get_row buf pos limit =
  if pos + 2 > limit then Err.failf Err.Storage "page payload truncated";
  let arity = Bytes.get_uint16_le buf pos in
  let row = Array.make arity Value.Null in
  let p = ref (pos + 2) in
  for i = 0 to arity - 1 do
    let v, p' = get_value buf !p limit in
    row.(i) <- v;
    p := p'
  done;
  (row, !p)

(* ---------------- page images ---------------- *)

let encode ~page_size ~id (rows : Row.t array) =
  if page_size < min_size then
    Err.failf Err.Storage "page size %d below minimum %d" page_size min_size;
  let payload = Array.fold_left (fun acc r -> acc + row_bytes r) 0 rows in
  if payload > capacity ~page_size then
    Err.failf Err.Storage
      "rows need %d payload bytes, page %d holds %d (use a larger \
       --page-size)"
      payload id (capacity ~page_size);
  let buf = Bytes.make page_size '\000' in
  Bytes.blit_string magic 0 buf 0 4;
  Bytes.set_int64_le buf 4 (Int64.of_int id);
  Bytes.set_int32_le buf 12 (Int32.of_int (Array.length rows));
  Bytes.set_int32_le buf 16 (Int32.of_int payload);
  let pos = ref header_bytes in
  Array.iter (fun r -> pos := put_row buf !pos r) rows;
  let digest = Digest.subbytes buf 0 (page_size - checksum_bytes) in
  Bytes.blit_string digest 0 buf (page_size - checksum_bytes) checksum_bytes;
  buf

let decode ~page_size ~id buf =
  if Bytes.length buf <> page_size then
    Err.failf Err.Storage "page %d: image is %d bytes, expected %d (torn IO?)"
      id (Bytes.length buf) page_size;
  let stored =
    Bytes.sub_string buf (page_size - checksum_bytes) checksum_bytes
  in
  let actual = Digest.subbytes buf 0 (page_size - checksum_bytes) in
  if not (String.equal stored actual) then
    Err.failf Err.Storage "page %d: checksum mismatch (corrupt or torn page)"
      id;
  if not (String.equal (Bytes.sub_string buf 0 4) magic) then
    Err.failf Err.Storage "page %d: bad magic" id;
  let stored_id = Int64.to_int (Bytes.get_int64_le buf 4) in
  if stored_id <> id then
    Err.failf Err.Storage "page %d: image claims to be page %d (misdirected \
                           IO)" id stored_id;
  let nrows = Int32.to_int (Bytes.get_int32_le buf 12) in
  let payload = Int32.to_int (Bytes.get_int32_le buf 16) in
  if nrows < 0 || payload < 0 || payload > capacity ~page_size then
    Err.failf Err.Storage "page %d: implausible header (%d rows, %d bytes)" id
      nrows payload;
  let limit = header_bytes + payload in
  let rows = Array.make nrows [||] in
  let pos = ref header_bytes in
  for i = 0 to nrows - 1 do
    let row, p = get_row buf !pos limit in
    rows.(i) <- row;
    pos := p
  done;
  if !pos <> limit then
    Err.failf Err.Storage "page %d: payload length disagrees with rows" id;
  rows
