open Eager_schema
open Eager_robust

(* A heap is either the original RAM-backed growable array or a paged
   heap file: a sequence of fixed-size pages owned by a buffer pool, with
   an in-memory page directory ([pref] per page) mapping row positions to
   pages.  The cursor API — the PR 4 seam — is identical for both, so
   the executor's scans never know which backing they read.

   Paged invariants:
   - only the tail page is ever rewritten (appends); a page is frozen
     once full, and [copy] freezes the tail too, so every page shared
     between a heap and its snapshots is immutable — MVCC-lite carries
     over to the paged backend as shared immutable pages plus
     copy-on-write at the tail;
   - [pref.bytes] tracks the encoded payload size so a row lands on the
     tail only if the image will fit — [Page.encode] can then never fail
     on the eviction path;
   - structural rewrites ([delete_where], [replace_all]) build fresh
     pages and abandon the old ones to the run-scoped pager (snapshots
     may still be reading them). *)

type pref = {
  pid : int;
  mutable nrows : int;
  mutable start : int; (* row position of the page's first row *)
  mutable bytes : int; (* encoded payload bytes, for fits accounting *)
  mutable frozen : bool;
}

type backing =
  | Ram of { mutable rows : Row.t array; mutable len : int }
  | Paged of paged

and paged = {
  pool : Buffer_pool.t;
  pager : Pager.t;
  mutable prefs : pref array;
  mutable npages : int;
  mutable plen : int;
}

type t = {
  schema : Schema.t;
  mutable backing : backing;
  mutable gen : int;
  mutable compactions : int;
}

let dummy_row : Row.t = [||]

let create schema =
  {
    schema;
    backing = Ram { rows = Array.make 16 dummy_row; len = 0 };
    gen = 0;
    compactions = 0;
  }

let create_paged ~pool ~pager schema =
  {
    schema;
    backing = Paged { pool; pager; prefs = [||]; npages = 0; plen = 0 };
    gen = 0;
    compactions = 0;
  }

let is_paged t = match t.backing with Paged _ -> true | Ram _ -> false
let schema t = t.schema

let length t =
  match t.backing with Ram r -> r.len | Paged p -> p.plen

let generation t = t.gen
let compactions t = t.compactions

let ensure_capacity rows len =
  if len >= Array.length rows then begin
    let bigger = Array.make (2 * Array.length rows) dummy_row in
    Array.blit rows 0 bigger 0 len;
    bigger
  end
  else rows

let push_pref p pref =
  if p.npages >= Array.length p.prefs then begin
    let bigger =
      Array.make (max 8 (2 * Array.length p.prefs))
        { pid = -1; nrows = 0; start = 0; bytes = 0; frozen = true }
    in
    Array.blit p.prefs 0 bigger 0 p.npages;
    p.prefs <- bigger
  end;
  p.prefs.(p.npages) <- pref;
  p.npages <- p.npages + 1

let paged_append p row =
  let rb = Page.row_bytes row in
  let cap = Page.capacity ~page_size:(Pager.page_size p.pager) in
  if rb > cap then
    Err.failf Err.Storage
      "row needs %d bytes, a page holds %d (use a larger --page-size)" rb cap;
  let tail = if p.npages = 0 then None else Some p.prefs.(p.npages - 1) in
  (match tail with
  | Some pref when (not pref.frozen) && pref.bytes + rb <= cap ->
      Buffer_pool.update p.pool p.pager pref.pid (fun rows ->
          Array.append rows [| row |]);
      pref.nrows <- pref.nrows + 1;
      pref.bytes <- pref.bytes + rb
  | _ ->
      (match tail with Some pref -> pref.frozen <- true | None -> ());
      let pid = Buffer_pool.alloc p.pool p.pager [| row |] in
      push_pref p { pid; nrows = 1; start = p.plen; bytes = rb; frozen = false });
  p.plen <- p.plen + 1

let insert t row =
  if Array.length row <> Schema.arity t.schema then
    invalid_arg
      (Printf.sprintf "Heap.insert: arity %d, expected %d" (Array.length row)
         (Schema.arity t.schema));
  (* fault point fires before any mutation, so an aborted append leaves
     the heap exactly as it was *)
  Fault.trip "heap.append";
  (match t.backing with
  | Ram r ->
      r.rows <- ensure_capacity r.rows r.len;
      r.rows.(r.len) <- row;
      r.len <- r.len + 1
  | Paged p -> paged_append p row);
  t.gen <- t.gen + 1

let of_rows schema rows =
  let t = create schema in
  List.iter (insert t) rows;
  t

(* An independent heap holding the same rows.  RAM backing: only the
   array is duplicated — rows are immutable engine-wide, so sharing them
   is what makes MVCC-lite snapshots cheap.  Paged backing: the page
   directory is duplicated and the tail page frozen, so both heaps share
   every existing (now immutable) page and append new pages of their
   own — snapshots cost O(pages) directory entries, not O(data). *)
let copy t =
  let backing =
    match t.backing with
    | Ram r -> Ram { rows = Array.sub r.rows 0 (max 16 r.len); len = r.len }
    | Paged p ->
        if p.npages > 0 then p.prefs.(p.npages - 1).frozen <- true;
        let prefs =
          Array.init p.npages (fun i ->
              let pr = p.prefs.(i) in
              { pid = pr.pid; nrows = pr.nrows; start = pr.start;
                bytes = pr.bytes; frozen = true })
        in
        Paged
          { pool = p.pool; pager = p.pager; prefs; npages = p.npages;
            plen = p.plen }
  in
  { schema = t.schema; backing; gen = 0; compactions = 0 }

(* page directory lookup: greatest pref with start <= i *)
let pref_of p i =
  let lo = ref 0 and hi = ref (p.npages - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if p.prefs.(mid).start <= i then lo := mid else hi := mid - 1
  done;
  p.prefs.(!lo)

let get t i =
  if i < 0 || i >= length t then invalid_arg "Heap.get: out of bounds";
  match t.backing with
  | Ram r -> r.rows.(i)
  | Paged p ->
      let pref = pref_of p i in
      Buffer_pool.with_page p.pool p.pager pref.pid (fun rows ->
          rows.(i - pref.start))

(* iterate pages in order, one pinned at a time *)
let paged_iter_pages p f =
  for pi = 0 to p.npages - 1 do
    let pref = p.prefs.(pi) in
    let rows =
      Buffer_pool.with_page p.pool p.pager pref.pid (fun rows -> rows)
    in
    (* the rows array outlives the pin safely: appends replace the
       frame's array rather than mutating it, and rows are immutable *)
    f pref rows
  done

let iter f t =
  match t.backing with
  | Ram r ->
      for i = 0 to r.len - 1 do
        f r.rows.(i)
      done
  | Paged p ->
      paged_iter_pages p (fun pref rows ->
          for j = 0 to pref.nrows - 1 do
            f rows.(j)
          done)

let iteri f t =
  match t.backing with
  | Ram r ->
      for i = 0 to r.len - 1 do
        f i r.rows.(i)
      done
  | Paged p ->
      paged_iter_pages p (fun pref rows ->
          for j = 0 to pref.nrows - 1 do
            f (pref.start + j) rows.(j)
          done)

let fold f init t =
  let acc = ref init in
  iter (fun row -> acc := f !acc row) t;
  !acc

let to_list t = List.rev (fold (fun acc r -> r :: acc) [] t)

(* A scan cursor: snapshots the heap's length at creation and hands out
   fixed-size row slices, so a scan never materializes the relation.
   RAM backing reads straight out of the backing array; paged backing
   pins one page per slice — a slice never spans pages, so at most one
   page of the table is pinned at any instant and the buffer pool's
   LRU-2 policy sees the scan as a once-touched sequential flood.  The
   [generation] snapshot lets the caller detect concurrent mutation
   (single-statement evaluation never mutates base tables, so a stale
   cursor is a programming error, not a runtime condition). *)
type cursor = {
  heap : t;
  snapshot_len : int;
  snapshot_gen : int;
  batch_rows : int;
  gov : Governor.t option;
  mutable pos : int;
  mutable page_idx : int; (* paged: directory index of the current page *)
}

let cursor ?(batch_rows = 1024) ?gov t =
  if batch_rows < 1 then invalid_arg "Heap.cursor: batch_rows must be >= 1";
  {
    heap = t;
    snapshot_len = length t;
    snapshot_gen = t.gen;
    batch_rows;
    gov;
    pos = 0;
    page_idx = 0;
  }

let cursor_next c =
  if c.pos >= c.snapshot_len then None
  else begin
    if c.heap.gen <> c.snapshot_gen then
      invalid_arg "Heap.cursor_next: heap mutated under an open cursor";
    match c.heap.backing with
    | Ram r ->
        let n = min c.batch_rows (c.snapshot_len - c.pos) in
        let slice = Array.sub r.rows c.pos n in
        c.pos <- c.pos + n;
        Some slice
    | Paged p ->
        while
          c.page_idx < p.npages - 1
          && p.prefs.(c.page_idx).start + p.prefs.(c.page_idx).nrows <= c.pos
        do
          c.page_idx <- c.page_idx + 1
        done;
        let pref = p.prefs.(c.page_idx) in
        let off = c.pos - pref.start in
        let page_left = min pref.nrows (c.snapshot_len - pref.start) - off in
        let n = min c.batch_rows page_left in
        let slice =
          Buffer_pool.with_page ?gov:c.gov p.pool p.pager pref.pid
            (fun rows -> Array.sub rows off n)
        in
        c.pos <- c.pos + n;
        Some slice
  end

let cursor_remaining c = c.snapshot_len - c.pos

let to_seq t =
  match t.backing with
  | Ram r ->
      let rec go i () =
        if i >= r.len then Seq.Nil else Seq.Cons (r.rows.(i), go (i + 1))
      in
      go 0
  | Paged _ ->
      let c = cursor t in
      let rec page slice j () =
        if j < Array.length slice then Seq.Cons (slice.(j), page slice (j + 1))
        else
          match cursor_next c with
          | None -> Seq.Nil
          | Some slice -> page slice 0 ()
      in
      page [||] 0

let exists p t =
  match t.backing with
  | Ram r ->
      let rec go i = i < r.len && (p r.rows.(i) || go (i + 1)) in
      go 0
  | Paged _ ->
      let exception Found in
      (try
         iter (fun row -> if p row then raise Found) t;
         false
       with Found -> true)

(* rebuild the paged backing from scratch: fresh pages, fresh directory;
   the old pages are abandoned to the pager (open snapshots may still
   read them — pages are immutable once frozen) *)
let paged_rebuild p rows =
  p.prefs <- [||];
  p.npages <- 0;
  p.plen <- 0;
  List.iter (paged_append p) rows

let delete_where pred t =
  match t.backing with
  | Ram r ->
      let keep = ref 0 in
      for i = 0 to r.len - 1 do
        if not (pred r.rows.(i)) then begin
          r.rows.(!keep) <- r.rows.(i);
          incr keep
        end
      done;
      let removed = r.len - !keep in
      for i = !keep to r.len - 1 do
        r.rows.(i) <- dummy_row
      done;
      r.len <- !keep;
      if removed > 0 then begin
        t.gen <- t.gen + 1;
        t.compactions <- t.compactions + 1
      end;
      removed
  | Paged p ->
      let survivors = ref [] in
      let removed = ref 0 in
      iter
        (fun row ->
          if pred row then incr removed else survivors := row :: !survivors)
        t;
      if !removed > 0 then begin
        paged_rebuild p (List.rev !survivors);
        t.gen <- t.gen + 1;
        t.compactions <- t.compactions + 1
      end;
      !removed

(* Replace the contents atomically: the new row list is fully validated
   before any mutation, so neither an arity error nor an injected fault
   can leave the heap part-old, part-new.  (On the paged backing the
   rebuild writes fresh pages; a page-write fault mid-rebuild aborts the
   statement, and recovery replays from the WAL — pager files are
   run-scoped caches, not the durability story.) *)
let replace_all t rows =
  List.iter
    (fun row ->
      if Array.length row <> Schema.arity t.schema then
        invalid_arg
          (Printf.sprintf "Heap.replace_all: arity %d, expected %d"
             (Array.length row) (Schema.arity t.schema)))
    rows;
  Fault.trip "heap.append";
  (match t.backing with
  | Ram r ->
      let arr = Array.of_list rows in
      let cap = max 16 (Array.length arr) in
      let bigger = Array.make cap dummy_row in
      Array.blit arr 0 bigger 0 (Array.length arr);
      r.rows <- bigger;
      r.len <- Array.length arr
  | Paged p -> paged_rebuild p rows);
  t.gen <- t.gen + 1;
  t.compactions <- t.compactions + 1

let page_count t =
  match t.backing with
  | Ram _ -> 0
  | Paged p -> p.npages
