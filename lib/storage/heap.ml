open Eager_schema
open Eager_robust

type t = {
  schema : Schema.t;
  mutable rows : Row.t array;
  mutable len : int;
  mutable gen : int;
  mutable compactions : int;
}

let dummy_row : Row.t = [||]

let create schema =
  { schema; rows = Array.make 16 dummy_row; len = 0; gen = 0; compactions = 0 }

let schema t = t.schema
let length t = t.len
let generation t = t.gen
let compactions t = t.compactions

let ensure_capacity t =
  if t.len >= Array.length t.rows then begin
    let bigger = Array.make (2 * Array.length t.rows) dummy_row in
    Array.blit t.rows 0 bigger 0 t.len;
    t.rows <- bigger
  end

let insert t row =
  if Array.length row <> Schema.arity t.schema then
    invalid_arg
      (Printf.sprintf "Heap.insert: arity %d, expected %d" (Array.length row)
         (Schema.arity t.schema));
  (* fault point fires before any mutation, so an aborted append leaves
     the heap exactly as it was *)
  Fault.trip "heap.append";
  ensure_capacity t;
  t.rows.(t.len) <- row;
  t.len <- t.len + 1;
  t.gen <- t.gen + 1

let of_rows schema rows =
  let t = create schema in
  List.iter (insert t) rows;
  t

(* An independent heap holding the same rows.  Only the backing array is
   duplicated: rows themselves are immutable engine-wide (UPDATE builds
   fresh arrays), so sharing them across copies is safe — this is what
   makes MVCC-lite snapshots O(row count) pointer copies rather than
   O(data).  Counters restart: the copy has its own mutation history. *)
let copy t =
  {
    schema = t.schema;
    rows = Array.sub t.rows 0 (max 16 t.len);
    len = t.len;
    gen = 0;
    compactions = 0;
  }

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Heap.get: out of bounds";
  t.rows.(i)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.rows.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.rows.(i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.rows.(i)
  done;
  !acc

let to_list t = List.init t.len (fun i -> t.rows.(i))

(* A scan cursor: snapshots the heap's length at creation and hands out
   fixed-size row slices, so a scan never materializes the relation — the
   executor's batched pipeline reads straight out of the heap's backing
   array.  Rows are immutable, so sharing them with the caller is safe;
   the [generation] snapshot lets the caller detect concurrent mutation
   (single-statement evaluation never mutates base tables, so a stale
   cursor is a programming error, not a runtime condition). *)
type cursor = {
  heap : t;
  snapshot_len : int;
  snapshot_gen : int;
  batch_rows : int;
  mutable pos : int;
}

let cursor ?(batch_rows = 1024) t =
  if batch_rows < 1 then invalid_arg "Heap.cursor: batch_rows must be >= 1";
  { heap = t; snapshot_len = t.len; snapshot_gen = t.gen; batch_rows; pos = 0 }

let cursor_next c =
  if c.pos >= c.snapshot_len then None
  else begin
    if c.heap.gen <> c.snapshot_gen then
      invalid_arg "Heap.cursor_next: heap mutated under an open cursor";
    let n = min c.batch_rows (c.snapshot_len - c.pos) in
    let slice = Array.sub c.heap.rows c.pos n in
    c.pos <- c.pos + n;
    Some slice
  end

let cursor_remaining c = c.snapshot_len - c.pos

let to_seq t =
  let rec go i () =
    if i >= t.len then Seq.Nil else Seq.Cons (t.rows.(i), go (i + 1))
  in
  go 0

let exists p t =
  let rec go i = i < t.len && (p t.rows.(i) || go (i + 1)) in
  go 0

let delete_where p t =
  let keep = ref 0 in
  for i = 0 to t.len - 1 do
    if not (p t.rows.(i)) then begin
      t.rows.(!keep) <- t.rows.(i);
      incr keep
    end
  done;
  let removed = t.len - !keep in
  for i = !keep to t.len - 1 do
    t.rows.(i) <- dummy_row
  done;
  t.len <- !keep;
  if removed > 0 then begin
    t.gen <- t.gen + 1;
    t.compactions <- t.compactions + 1
  end;
  removed

(* Replace the contents atomically: the new row array is fully built and
   validated before the swap, so neither an arity error nor an injected
   fault can leave the heap part-old, part-new. *)
let replace_all t rows =
  let arr = Array.of_list rows in
  Array.iter
    (fun row ->
      if Array.length row <> Schema.arity t.schema then
        invalid_arg
          (Printf.sprintf "Heap.replace_all: arity %d, expected %d"
             (Array.length row) (Schema.arity t.schema)))
    arr;
  Fault.trip "heap.append";
  let cap = max 16 (Array.length arr) in
  let bigger = Array.make cap dummy_row in
  Array.blit arr 0 bigger 0 (Array.length arr);
  t.rows <- bigger;
  t.len <- Array.length arr;
  t.gen <- t.gen + 1;
  t.compactions <- t.compactions + 1
