(* Page-addressed storage backends.

   A pager owns a flat array of fixed-size pages addressed by id.  Two
   backends: [Mem] keeps encoded images in a hash table (paged semantics
   — checksums, eviction, IO accounting — without touching the
   filesystem), [File] stores page [i] at byte offset [i * page_size] of
   one file opened O_TRUNC (pager files are run-scoped caches: durability
   stays with the WAL + snapshots, so a restart rebuilds pages from the
   recovered heaps rather than trusting a stale file).

   Writes are atomic write-through at page granularity: the full image is
   encoded (checksum last) before a single positioned write.  A crash
   mid-write leaves a torn image that fails its checksum on read — the
   same typed [Storage] refusal as bit rot.

   Direct pager access is unguarded: callers get no caching, no pin
   discipline, and no replacement policy.  Everything outside
   [Buffer_pool] must go through the pool — tools/lint.sh enforces it. *)

open Eager_robust

type backend =
  | Mem of (int, bytes) Hashtbl.t
  | File of { fd : Unix.file_descr; path : string }

type t = {
  tag : int; (* process-unique, keys pool frames across pagers *)
  page_size : int;
  backend : backend;
  mutable next_id : int;
  mutable closed : bool;
}

let next_tag = ref 0

let fresh_tag () =
  incr next_tag;
  !next_tag

let create_mem ?(page_size = 4096) () =
  if page_size < Page.min_size then
    Err.failf Err.Storage "page size %d below minimum %d" page_size
      Page.min_size;
  { tag = fresh_tag (); page_size; backend = Mem (Hashtbl.create 64);
    next_id = 0; closed = false }

let create_file ?(page_size = 4096) path =
  if page_size < Page.min_size then
    Err.failf Err.Storage "page size %d below minimum %d" page_size
      Page.min_size;
  let fd =
    try Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    with Unix.Unix_error (e, _, _) ->
      Err.failf Err.Storage "cannot open pager file %s: %s" path
        (Unix.error_message e)
  in
  { tag = fresh_tag (); page_size; backend = File { fd; path }; next_id = 0;
    closed = false }

let tag t = t.tag
let page_size t = t.page_size
let npages t = t.next_id

let alloc t =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  id

let check_open t =
  if t.closed then Err.failf Err.Storage "pager used after close"

let check_id t id =
  if id < 0 || id >= t.next_id then
    Err.failf Err.Storage "page %d out of range (pager holds %d)" id t.next_id

(* positioned full-image read; loops because read(2) may return short *)
let really_pread fd buf off =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let len = Bytes.length buf in
  let got = ref 0 in
  (try
     while !got < len do
       let n = Unix.read fd buf !got (len - !got) in
       if n = 0 then raise Exit;
       got := !got + n
     done
   with Exit -> ());
  !got

let read t id =
  check_open t;
  check_id t id;
  Fault.trip "storage.page_read";
  let image =
    match t.backend with
    | Mem pages -> (
        match Hashtbl.find_opt pages id with
        | Some b -> b
        | None -> Err.failf Err.Storage "page %d was never written" id)
    | File { fd; path } ->
        let buf = Bytes.create t.page_size in
        let got = really_pread fd buf (id * t.page_size) in
        if got <> t.page_size then
          Err.failf Err.Storage
            "page %d of %s: short read (%d of %d bytes — torn tail?)" id path
            got t.page_size;
        buf
  in
  Page.decode ~page_size:t.page_size ~id image

let write t id rows =
  check_open t;
  check_id t id;
  (* encode first: an injected fault or an oversized row leaves the
     stored image untouched *)
  let image = Page.encode ~page_size:t.page_size ~id rows in
  Fault.trip "storage.page_write";
  match t.backend with
  | Mem pages -> Hashtbl.replace pages id (Bytes.copy image)
  | File { fd; path } ->
      ignore (Unix.lseek fd (id * t.page_size) Unix.SEEK_SET);
      let wrote = Unix.write fd image 0 t.page_size in
      if wrote <> t.page_size then
        Err.failf Err.Storage "page %d of %s: short write (%d of %d bytes)" id
          path wrote t.page_size

let fsync t =
  check_open t;
  match t.backend with Mem _ -> () | File { fd; _ } -> Unix.fsync fd

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.backend with
    | Mem pages -> Hashtbl.reset pages
    | File { fd; path } ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        (try Sys.remove path with Sys_error _ -> ())
  end

(* test hook: corrupt one byte of a stored image in place, bypassing the
   encode path, so decode-side detection can be proven byte by byte *)
let corrupt_byte t id ~pos =
  check_open t;
  check_id t id;
  match t.backend with
  | Mem pages -> (
      match Hashtbl.find_opt pages id with
      | None -> Err.failf Err.Storage "page %d was never written" id
      | Some b ->
          let b = Bytes.copy b in
          Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x5a));
          Hashtbl.replace pages id b)
  | File { fd; _ } ->
      let one = Bytes.create 1 in
      ignore (Unix.lseek fd ((id * t.page_size) + pos) Unix.SEEK_SET);
      if Unix.read fd one 0 1 <> 1 then
        Err.failf Err.Storage "corrupt_byte: short read";
      Bytes.set one 0 (Char.chr (Char.code (Bytes.get one 0) lxor 0x5a));
      ignore (Unix.lseek fd ((id * t.page_size) + pos) Unix.SEEK_SET);
      if Unix.write fd one 0 1 <> 1 then
        Err.failf Err.Storage "corrupt_byte: short write"
