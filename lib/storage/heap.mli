(** A heap table: a growable multiset of rows with a fixed schema.

    Rows are identified by their insertion position, which serves as the
    paper's [RowID] — the column that "uniquely identifies a row" and lets
    the formalism distinguish duplicates (Section 4.3).  The RowID is not
    part of the schema; operators that need it use {!iteri}. *)

open Eager_schema
open Eager_robust

type t

val create : Schema.t -> t
(** RAM-backed heap (the original backing). *)

val create_paged : pool:Buffer_pool.t -> pager:Pager.t -> Schema.t -> t
(** Paged heap file: rows live on fixed-size pages owned by [pager] and
    cached/pinned through [pool].  Only the tail page is ever rewritten;
    full pages are frozen immutable, which is what keeps {!copy}
    snapshots cheap and safe. *)

val is_paged : t -> bool

val page_count : t -> int
(** Pages in the directory (0 for a RAM heap). *)

val of_rows : Schema.t -> Row.t list -> t

(** [copy t] is an independent heap with the same contents.  RAM: rows
    are shared (immutable engine-wide), only the backing array is
    duplicated.  Paged: the page directory is duplicated and the tail
    page frozen, so both heaps share every existing immutable page and
    append fresh pages of their own.  Generation/compaction counters
    restart at zero either way. *)
val copy : t -> t

val schema : t -> Schema.t
val length : t -> int
val insert : t -> Row.t -> unit
(** Raises [Invalid_argument] on arity mismatch. *)

val get : t -> int -> Row.t
val iter : (Row.t -> unit) -> t -> unit
val iteri : (int -> Row.t -> unit) -> t -> unit
val fold : ('a -> Row.t -> 'a) -> 'a -> t -> 'a
val to_list : t -> Row.t list
val to_seq : t -> Row.t Seq.t

type cursor
(** A batched scan cursor over a length snapshot of the heap.  The
    executor's pull pipeline reads base tables through cursors instead of
    [to_list], so a scan holds at most one batch of rows alive. *)

val cursor : ?batch_rows:int -> ?gov:Governor.t -> t -> cursor
(** Snapshot the current length and start a cursor that yields slices of
    at most [batch_rows] rows (default 1024).  On a paged heap each
    slice pins exactly one page for the duration of the copy, and [gov]
    is charged a page IO per buffer-pool miss.  Raises
    [Invalid_argument] if [batch_rows < 1]. *)

val cursor_next : cursor -> Row.t array option
(** The next slice, or [None] when the snapshot is exhausted.  Rows are
    shared with the heap (rows are immutable); a paged slice never spans
    pages, so it may be shorter than [batch_rows].  Raises
    [Invalid_argument] if the heap was mutated since the cursor opened. *)

val cursor_remaining : cursor -> int
(** Rows left in the snapshot. *)

val exists : (Row.t -> bool) -> t -> bool
val generation : t -> int
(** Monotone counter bumped on every insert; used to invalidate caches. *)

val delete_where : (Row.t -> bool) -> t -> int
(** Remove matching rows in place; returns the count.  Bumps
    {!compactions} (incremental caches must rebuild). *)

val replace_all : t -> Row.t list -> unit
(** Replace the heap's contents wholesale (used by UPDATE).  Bumps
    {!compactions}. *)

val compactions : t -> int
(** Counter bumped by every structural rewrite ([delete_where],
    [replace_all]).  Append-only consumers (incremental key indexes) must
    fully rebuild when it changes. *)
