(** A heap table: a growable multiset of rows with a fixed schema.

    Rows are identified by their insertion position, which serves as the
    paper's [RowID] — the column that "uniquely identifies a row" and lets
    the formalism distinguish duplicates (Section 4.3).  The RowID is not
    part of the schema; operators that need it use {!iteri}. *)

open Eager_schema

type t

val create : Schema.t -> t
val of_rows : Schema.t -> Row.t list -> t

(** [copy t] is an independent heap with the same contents.  Rows are
    shared — they are immutable engine-wide; only the backing array is
    duplicated, so later mutations of either heap never show through
    the other, and generation/compaction counters restart at zero. *)
val copy : t -> t

val schema : t -> Schema.t
val length : t -> int
val insert : t -> Row.t -> unit
(** Raises [Invalid_argument] on arity mismatch. *)

val get : t -> int -> Row.t
val iter : (Row.t -> unit) -> t -> unit
val iteri : (int -> Row.t -> unit) -> t -> unit
val fold : ('a -> Row.t -> 'a) -> 'a -> t -> 'a
val to_list : t -> Row.t list
val to_seq : t -> Row.t Seq.t

type cursor
(** A batched scan cursor over a length snapshot of the heap.  The
    executor's pull pipeline reads base tables through cursors instead of
    [to_list], so a scan holds at most one batch of rows alive. *)

val cursor : ?batch_rows:int -> t -> cursor
(** Snapshot the current length and start a cursor that yields slices of
    at most [batch_rows] rows (default 1024).  Raises [Invalid_argument]
    if [batch_rows < 1]. *)

val cursor_next : cursor -> Row.t array option
(** The next slice, or [None] when the snapshot is exhausted.  Rows are
    shared with the heap (rows are immutable).  Raises
    [Invalid_argument] if the heap was mutated since the cursor opened. *)

val cursor_remaining : cursor -> int
(** Rows left in the snapshot. *)

val exists : (Row.t -> bool) -> t -> bool
val generation : t -> int
(** Monotone counter bumped on every insert; used to invalidate caches. *)

val delete_where : (Row.t -> bool) -> t -> int
(** Remove matching rows in place; returns the count.  Bumps
    {!compactions} (incremental caches must rebuild). *)

val replace_all : t -> Row.t list -> unit
(** Replace the heap's contents wholesale (used by UPDATE).  Bumps
    {!compactions}. *)

val compactions : t -> int
(** Counter bumped by every structural rewrite ([delete_where],
    [replace_all]).  Append-only consumers (incremental key indexes) must
    fully rebuild when it changes. *)
