open Eager_value
open Eager_schema
open Eager_expr
open Eager_catalog
open Eager_robust

(* Heaps are append-only between compactions, so key indexes are maintained
   incrementally: [rows_seen] records how many rows have been folded in, and
   a change in the heap's compaction counter forces a full rebuild. *)
type key_index = {
  mutable rows_seen : int;
  mutable compactions_seen : int;
  keys : (Value.t list, unit) Hashtbl.t;
}

(* secondary index: key values -> rows, maintained like [key_index] *)
type sec_index = {
  mutable s_rows_seen : int;
  mutable s_compactions_seen : int;
  entries : (Value.t list, Row.t) Hashtbl.t;
}

(* Paged storage: when a database is created with a [storage_config],
   every table heap lives on fixed-size pages behind one shared buffer
   pool, and a second (scratch) pager holds the executor's spill runs.
   Pager files are run-scoped caches — durability stays with the WAL and
   snapshots, so recovery rebuilds pages from the recovered rows instead
   of trusting a stale page file. *)
type storage_config = {
  pool_pages : int option; (* buffer-pool capacity; None = unbounded *)
  page_size : int;
  spill_dir : string option; (* None = in-memory pagers *)
}

let default_storage = { pool_pages = None; page_size = 4096; spill_dir = None }

type storage_state = {
  scfg : storage_config;
  pool : Buffer_pool.t;
  data_pager : Pager.t;
  scratch_pager : Pager.t;
}

type t = {
  mutable cat : Catalog.t;
  heaps : (string, Heap.t) Hashtbl.t;
  stats_cache : (string, int * Stats.t) Hashtbl.t;
  (* (table, key columns) -> set of key values; used for FK lookups *)
  key_indexes : (string * string list, key_index) Hashtbl.t;
  sec_indexes : (string, sec_index) Hashtbl.t; (* by index name *)
  storage : storage_state option;
}

let open_storage (cfg : storage_config) =
  let mk name =
    match cfg.spill_dir with
    | None -> Pager.create_mem ~page_size:cfg.page_size ()
    | Some dir ->
        (try Unix.mkdir dir 0o755
         with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        let path =
          Filename.concat dir
            (Printf.sprintf "%s.%d.%d.pages" name (Unix.getpid ())
               (Hashtbl.hash (Unix.gettimeofday ()) land 0xffffff))
        in
        Pager.create_file ~page_size:cfg.page_size path
  in
  {
    scfg = cfg;
    pool = Buffer_pool.create ?cap:cfg.pool_pages ();
    data_pager = mk "data";
    scratch_pager = mk "spill";
  }

let create ?storage () =
  {
    cat = Catalog.empty;
    heaps = Hashtbl.create 16;
    stats_cache = Hashtbl.create 16;
    key_indexes = Hashtbl.create 16;
    sec_indexes = Hashtbl.create 16;
    storage = Option.map open_storage storage;
  }

let catalog t = t.cat
let storage_config t = Option.map (fun s -> s.scfg) t.storage
let is_paged t = Option.is_some t.storage
let buffer_pool t = Option.map (fun s -> s.pool) t.storage
let scratch t = Option.map (fun s -> (s.pool, s.scratch_pager)) t.storage
let pool_stats t = Option.map (fun s -> Buffer_pool.stats s.pool) t.storage

(* flush-before-checkpoint barrier: every dirty page reaches its pager
   (and the pager its disk) before a snapshot is cut *)
let flush t =
  match t.storage with None -> () | Some s -> Buffer_pool.flush_all s.pool

(* rows per page, estimated from the page payload capacity at a nominal
   encoded row width — the IO cost model's translation from cardinality
   estimates to page counts *)
let nominal_row_bytes = 48

let page_rows t =
  match t.storage with
  | None -> max 1 (Page.capacity ~page_size:default_storage.page_size
                   / nominal_row_bytes)
  | Some s ->
      max 1
        (Page.capacity ~page_size:s.scfg.page_size / nominal_row_bytes)

let close_storage t =
  match t.storage with
  | None -> ()
  | Some s ->
      Pager.close s.data_pager;
      Pager.close s.scratch_pager

(* A frozen copy for MVCC-lite readers: the catalog value is captured
   (it is updated functionally, so sharing is safe), every heap is
   copied (rows shared — they are immutable engine-wide), and every
   derived cache starts empty.  Later mutations of the live database
   never show through the snapshot, and vice versa. *)
let snapshot t =
  let heaps = Hashtbl.create (Hashtbl.length t.heaps) in
  Hashtbl.iter (fun name h -> Hashtbl.replace heaps name (Heap.copy h)) t.heaps;
  {
    cat = t.cat;
    heaps;
    stats_cache = Hashtbl.create 16;
    key_indexes = Hashtbl.create 16;
    sec_indexes = Hashtbl.create 16;
    storage = t.storage;
  }

(* A reader's private view over a frozen snapshot: heaps are shared with
   the snapshot (nobody mutates a snapshot, so sharing the row storage
   is safe) but the derived caches — statistics, key indexes, secondary
   indexes — are private, because two reader threads filling the same
   hashtable concurrently could corrupt it.  O(#tables), so handing one
   to every statement is cheap. *)
let reader_view t =
  {
    cat = t.cat;
    heaps = Hashtbl.copy t.heaps;
    stats_cache = Hashtbl.create 16;
    key_indexes = Hashtbl.create 16;
    sec_indexes = Hashtbl.create 16;
    storage = t.storage;
  }

(* Drop every cached derived structure for [tname]: statistics, key
   indexes (keyed by table name) and secondary indexes (keyed by index
   name, resolved through the catalog).  Compaction counters alone cannot
   catch a drop/recreate — a fresh heap restarts at compaction 0, which
   matches what a stale index last saw. *)
let evict_derived t tname =
  Hashtbl.remove t.stats_cache tname;
  Hashtbl.filter_map_inplace
    (fun (tab, _) idx -> if String.equal tab tname then None else Some idx)
    t.key_indexes;
  List.iter
    (fun (i : Catalog.index_def) -> Hashtbl.remove t.sec_indexes i.Catalog.iname)
    (Catalog.indexes_on t.cat tname)

let create_table t td =
  (* recreate path: a table of the same name may have lived here before *)
  evict_derived t td.Table_def.tname;
  t.cat <- Catalog.add_table t.cat td;
  let h =
    match t.storage with
    | None -> Heap.create (Table_def.schema td)
    | Some s ->
        Heap.create_paged ~pool:s.pool ~pager:s.data_pager
          (Table_def.schema td)
  in
  Hashtbl.replace t.heaps td.Table_def.tname h

let drop_table t tname =
  match Catalog.find_table t.cat tname with
  | None -> Error (Err.catalog "unknown table %s" tname)
  | Some _ ->
      evict_derived t tname;
      t.cat <- Catalog.remove_table t.cat tname;
      Hashtbl.remove t.heaps tname;
      Ok ()

let create_domain t d = t.cat <- Catalog.add_domain t.cat d
let create_view t v = t.cat <- Catalog.add_view t.cat v

let heap_opt t name = Hashtbl.find_opt t.heaps name

let heap t name =
  match heap_opt t name with
  | Some h -> h
  | None -> Err.failf Err.Storage "unknown table %s" name

let key_index t tname cols =
  let h = heap t tname in
  let key = (tname, List.map Colref.to_string cols) in
  let idx =
    match Hashtbl.find_opt t.key_indexes key with
    | Some idx -> idx
    | None ->
        let idx =
          { rows_seen = 0; compactions_seen = -1; keys = Hashtbl.create 256 }
        in
        Hashtbl.replace t.key_indexes key idx;
        idx
  in
  if idx.compactions_seen <> Heap.compactions h then begin
    Hashtbl.reset idx.keys;
    idx.rows_seen <- 0;
    idx.compactions_seen <- Heap.compactions h
  end;
  if idx.rows_seen < Heap.length h then begin
    let idxs = Schema.indices (Heap.schema h) cols in
    for i = idx.rows_seen to Heap.length h - 1 do
      let row = Heap.get h i in
      (* keys containing NULL never participate in matching *)
      if Array.for_all (fun j -> not (Value.is_null row.(j))) idxs then
        Hashtbl.replace idx.keys (Row.key_on idxs row) ()
    done;
    idx.rows_seen <- Heap.length h
  end;
  idx

let check_types td values =
  let rec go cols vs =
    match cols, vs with
    | [], [] -> Ok ()
    | (c : Table_def.column_def) :: cols, v :: vs ->
        if Ctype.accepts c.Table_def.ctype v then go cols vs
        else
          Error
            (Printf.sprintf "column %s: value %s does not fit type %s"
               c.Table_def.cname (Value.to_string v)
               (Ctype.to_string c.Table_def.ctype))
    | _ -> Error "arity mismatch"
  in
  go td.Table_def.columns values

let insert_impl t tname values =
  let ( let* ) = Result.bind in
  match Catalog.find_table t.cat tname with
  | None -> Error (Printf.sprintf "unknown table %s" tname)
  | Some td ->
      let* () = check_types td values in
      let h = heap t tname in
      let schema = Heap.schema h in
      let row = Array.of_list values in
      (* NOT NULL: the row must provide a value *)
      let* () =
        List.fold_left
          (fun acc cname ->
            let* () = acc in
            let i = Schema.index_of schema (Colref.make tname cname) in
            if Value.is_null row.(i) then
              Error (Printf.sprintf "column %s cannot be NULL" cname)
            else Ok ())
          (Ok ()) (Table_def.not_null td)
      in
      (* CHECK and domain constraints: SQL2 enforces "not false" — a check
         that evaluates to unknown (via NULL) is satisfied *)
      let checks = Catalog.check_predicates t.cat ~rel:tname td in
      let* () =
        List.fold_left
          (fun acc e ->
            let* () = acc in
            if Tbool.possible (Expr.eval_pred schema e row) then Ok ()
            else Error (Printf.sprintf "constraint violated: %s" (Expr.to_string e)))
          (Ok ()) checks
      in
      (* key uniqueness *)
      let* () =
        List.fold_left
          (fun acc key_cols ->
            let* () = acc in
            let cols = List.map (Colref.make tname) key_cols in
            let idxs = Schema.indices schema cols in
            let has_null = Array.exists (fun i -> Value.is_null row.(i)) idxs in
            if has_null then Ok () (* UNIQUE: NULL ≠ NULL; PK nulls already rejected *)
            else
              let idx = key_index t tname cols in
              let key = Row.key_on idxs row in
              if Hashtbl.mem idx.keys key then
                Error
                  (Printf.sprintf "duplicate key (%s) for table %s"
                     (String.concat ", " key_cols) tname)
              else Ok ())
          (Ok ()) (Table_def.keys td)
      in
      (* referential integrity *)
      let* () =
        List.fold_left
          (fun acc c ->
            let* () = acc in
            match c with
            | Constr.Foreign_key { cols; ref_table; ref_cols } ->
                let idxs =
                  Schema.indices schema (List.map (Colref.make tname) cols)
                in
                if Array.exists (fun i -> Value.is_null row.(i)) idxs then Ok ()
                else begin
                  match Catalog.find_table t.cat ref_table with
                  | None -> Error (Printf.sprintf "unknown table %s" ref_table)
                  | Some _ ->
                      let ref_colrefs = List.map (Colref.make ref_table) ref_cols in
                      let ridx = key_index t ref_table ref_colrefs in
                      let key = Row.key_on idxs row in
                      if Hashtbl.mem ridx.keys key then Ok ()
                      else
                        Error
                          (Printf.sprintf
                             "foreign key violation: %s not present in %s"
                             (Row.to_string (Row.project idxs row))
                             ref_table)
                end
            | _ -> Ok ())
          (Ok ()) td.Table_def.constraints
      in
      (* every check passed; the fault point fires before the physical
         append so an aborted insert leaves the heap untouched *)
      Fault.trip "storage.write";
      Heap.insert h row;
      Ok ()

(* typed-error primary: validation failures are [Storage] errors, and
   injected faults or internal raises never escape as exceptions *)
let insert t tname values =
  match Err.protect ~kind:Err.Storage (fun () -> insert_impl t tname values) with
  | Ok (Ok ()) -> Ok ()
  | Ok (Error msg) -> Error (Err.make Err.Storage msg)
  | Error e -> Error e

let insert_result = insert

let insert_exn t tname values =
  match insert t tname values with
  | Ok () -> ()
  | Error e ->
      Err.raise_ (Err.add_context (Printf.sprintf "insert into %s" tname) e)

(* Statement-atomic bulk insert: rows are validated and appended one at a
   time (so rows within the batch can satisfy each other's constraints),
   but a refusal anywhere rolls the heap back to its prior contents.
   [replace_all] bumps the compaction counter, which forces every
   incremental index over the table to rebuild — a rolled-back prefix can
   never linger in a cache. *)
let load_result t tname rows =
  match Catalog.find_table t.cat tname with
  | None -> Error (Err.storage "unknown table %s" tname)
  | Some _ ->
      let h = heap t tname in
      let before = Heap.to_list h in
      let rec go landed = function
        | [] -> Ok ()
        | r :: rest -> (
            match insert t tname r with
            | Ok () -> go (landed + 1) rest
            | Error e ->
                if landed > 0 then Heap.replace_all h before;
                Error
                  (Err.add_context
                     (Printf.sprintf "load into %s (row %d of %d)" tname
                        (landed + 1) (List.length rows))
                     e))
      in
      go 0 rows

let load t tname rows =
  match load_result t tname rows with
  | Ok () -> ()
  | Error e -> Err.raise_ e

(* ------------------------------------------------------------------ *)
(* secondary indexes *)

let create_index t ~name ~table ~cols =
  match Catalog.add_index t.cat { Catalog.iname = name; itable = table; icols = cols } with
  | cat ->
      t.cat <- cat;
      Hashtbl.replace t.sec_indexes name
        { s_rows_seen = 0; s_compactions_seen = -1; entries = Hashtbl.create 256 };
      Ok ()
  | exception Failure msg -> Error msg

let find_equality_index t ~table ~col =
  Catalog.indexes_on t.cat table
  |> List.find_opt (fun (i : Catalog.index_def) -> i.Catalog.icols = [ col ])

let refresh_sec_index t (def : Catalog.index_def) idx =
  let h = heap t def.Catalog.itable in
  if idx.s_compactions_seen <> Heap.compactions h then begin
    Hashtbl.reset idx.entries;
    idx.s_rows_seen <- 0;
    idx.s_compactions_seen <- Heap.compactions h
  end;
  if idx.s_rows_seen < Heap.length h then begin
    let idxs =
      Schema.indices (Heap.schema h)
        (List.map (Colref.make def.Catalog.itable) def.Catalog.icols)
    in
    for i = idx.s_rows_seen to Heap.length h - 1 do
      let row = Heap.get h i in
      (* NULL keys never participate in equality lookups *)
      if Array.for_all (fun j -> not (Value.is_null row.(j))) idxs then
        Hashtbl.add idx.entries (Row.key_on idxs row) row
    done;
    idx.s_rows_seen <- Heap.length h
  end

let index_lookup t (def : Catalog.index_def) values =
  if List.exists Value.is_null values then []
  else begin
    let idx =
      match Hashtbl.find_opt t.sec_indexes def.Catalog.iname with
      | Some idx -> idx
      | None ->
          let idx =
            { s_rows_seen = 0; s_compactions_seen = -1; entries = Hashtbl.create 256 }
          in
          Hashtbl.replace t.sec_indexes def.Catalog.iname idx;
          idx
    in
    refresh_sec_index t def idx;
    (* normalise via Row.key_on so Int/Float keys match the stored form *)
    let key =
      Row.key_on
        (Array.init (List.length values) Fun.id)
        (Array.of_list values)
    in
    Hashtbl.find_all idx.entries key
  end

(* ------------------------------------------------------------------ *)
(* DELETE and UPDATE — enforced with NO ACTION referential semantics *)

(* every FK constraint in the catalog that references [tname] *)
let incoming_fks t tname =
  List.concat_map
    (fun (td : Table_def.t) ->
      List.filter_map
        (fun c ->
          match c with
          | Constr.Foreign_key { cols; ref_table; ref_cols }
            when String.equal ref_table tname ->
              Some (td, cols, ref_cols)
          | _ -> None)
        td.Table_def.constraints)
    (Catalog.tables t.cat)

(* do all non-NULL referencing keys among [rows] appear in [available]?
   [rows] is passed explicitly so self-referencing tables can be checked
   against their prospective state. *)
let check_incoming t (referencer : Table_def.t) cols ~rows available =
  let schema = Heap.schema (heap t referencer.Table_def.tname) in
  let idxs =
    Schema.indices schema
      (List.map (Colref.make referencer.Table_def.tname) cols)
  in
  if
    List.for_all
      (fun row ->
        Array.exists (fun i -> Value.is_null row.(i)) idxs
        || Hashtbl.mem available (Row.key_on idxs row))
      rows
  then Ok ()
  else
    Error
      (Printf.sprintf "rows in %s still reference deleted or changed keys"
         referencer.Table_def.tname)

let key_values_of schema cols rows =
  let tbl = Hashtbl.create 64 in
  let idxs = Schema.indices schema cols in
  List.iter
    (fun row ->
      if Array.for_all (fun i -> not (Value.is_null row.(i))) idxs then
        Hashtbl.replace tbl (Row.key_on idxs row) ())
    rows;
  tbl

let delete_impl t tname ?(params = Expr.no_params) ~where () =
  let ( let* ) = Result.bind in
  match Catalog.find_table t.cat tname with
  | None -> Error (Printf.sprintf "unknown table %s" tname)
  | Some _ ->
      let h = heap t tname in
      let schema = Heap.schema h in
      let pred = Expr.compile_pred ~params schema where in
      let doomed row = Tbool.holds (pred row) in
      let remaining = List.filter (fun r -> not (doomed r)) (Heap.to_list h) in
      (* referential integrity: NO ACTION — every incoming FK must still
         resolve against the remaining rows *)
      let* () =
        List.fold_left
          (fun acc ((referencer : Table_def.t), cols, ref_cols) ->
            let* () = acc in
            let available =
              key_values_of schema
                (List.map (Colref.make tname) ref_cols)
                remaining
            in
            let rows =
              if String.equal referencer.Table_def.tname tname then remaining
              else Heap.to_list (heap t referencer.Table_def.tname)
            in
            check_incoming t referencer cols ~rows available)
          (Ok ()) (incoming_fks t tname)
      in
      Fault.trip "storage.write";
      Ok (Heap.delete_where doomed h)

let delete t tname ?params ~where () =
  match
    Err.protect ~kind:Err.Storage (fun () -> delete_impl t tname ?params ~where ())
  with
  | Ok (Ok n) -> Ok n
  | Ok (Error msg) -> Error (Err.make Err.Storage msg)
  | Error e -> Error e

let update_impl t tname ?(params = Expr.no_params) ~set ~where () =
  let ( let* ) = Result.bind in
  match Catalog.find_table t.cat tname with
  | None -> Error (Printf.sprintf "unknown table %s" tname)
  | Some td ->
      let h = heap t tname in
      let schema = Heap.schema h in
      let pred = Expr.compile_pred ~params schema where in
      (* compile the assignments against the OLD row *)
      let* assigns =
        List.fold_left
          (fun acc (cname, e) ->
            let* acc = acc in
            match Schema.index_of_opt schema (Colref.make tname cname) with
            | None -> Error (Printf.sprintf "unknown column %s" cname)
            | Some i -> Ok ((i, Expr.compile ~params schema e) :: acc))
          (Ok []) set
      in
      let changed = ref 0 in
      let new_rows =
        List.map
          (fun row ->
            if Tbool.holds (pred row) then begin
              incr changed;
              let nr = Array.copy row in
              List.iter (fun (i, f) -> nr.(i) <- f row) assigns;
              nr
            end
            else row)
          (Heap.to_list h)
      in
      (* validate the prospective state: per-row constraints *)
      let checks = Catalog.check_predicates t.cat ~rel:tname td in
      let not_null = Table_def.not_null td in
      let* () =
        List.fold_left
          (fun acc row ->
            let* () = acc in
            let* () =
              check_types td (Array.to_list row)
            in
            let* () =
              List.fold_left
                (fun acc cname ->
                  let* () = acc in
                  let i = Schema.index_of schema (Colref.make tname cname) in
                  if Value.is_null row.(i) then
                    Error (Printf.sprintf "column %s cannot be NULL" cname)
                  else Ok ())
                (Ok ()) not_null
            in
            List.fold_left
              (fun acc e ->
                let* () = acc in
                if Tbool.possible (Expr.eval_pred schema e row) then Ok ()
                else
                  Error
                    (Printf.sprintf "constraint violated: %s" (Expr.to_string e)))
              (Ok ()) checks)
          (Ok ()) new_rows
      in
      (* key uniqueness over the whole prospective state *)
      let* () =
        List.fold_left
          (fun acc key_cols ->
            let* () = acc in
            let idxs =
              Schema.indices schema (List.map (Colref.make tname) key_cols)
            in
            let seen = Hashtbl.create 64 in
            List.fold_left
              (fun acc row ->
                let* () = acc in
                if Array.exists (fun i -> Value.is_null row.(i)) idxs then Ok ()
                else
                  let key = Row.key_on idxs row in
                  if Hashtbl.mem seen key then
                    Error
                      (Printf.sprintf "duplicate key (%s) for table %s"
                         (String.concat ", " key_cols) tname)
                  else begin
                    Hashtbl.add seen key ();
                    Ok ()
                  end)
              (Ok ()) new_rows)
          (Ok ()) (Table_def.keys td)
      in
      (* outgoing foreign keys of the updated rows *)
      let* () =
        List.fold_left
          (fun acc c ->
            let* () = acc in
            match c with
            | Constr.Foreign_key { cols; ref_table; ref_cols } ->
                let idxs =
                  Schema.indices schema (List.map (Colref.make tname) cols)
                in
                let available =
                  if String.equal ref_table tname then
                    (* self-reference: validate against the prospective state *)
                    key_values_of schema
                      (List.map (Colref.make tname) ref_cols)
                      new_rows
                  else
                    (key_index t ref_table
                       (List.map (Colref.make ref_table) ref_cols))
                      .keys
                in
                List.fold_left
                  (fun acc row ->
                    let* () = acc in
                    if Array.exists (fun i -> Value.is_null row.(i)) idxs then
                      Ok ()
                    else if Hashtbl.mem available (Row.key_on idxs row) then
                      Ok ()
                    else
                      Error
                        (Printf.sprintf
                           "foreign key violation: %s not present in %s"
                           (Row.to_string (Row.project idxs row))
                           ref_table))
                  (Ok ()) new_rows
            | _ -> Ok ())
          (Ok ()) td.Table_def.constraints
      in
      (* incoming foreign keys must still resolve against the new state *)
      let* () =
        List.fold_left
          (fun acc ((referencer : Table_def.t), cols, ref_cols) ->
            let* () = acc in
            let available =
              key_values_of schema
                (List.map (Colref.make tname) ref_cols)
                new_rows
            in
            let rows =
              if String.equal referencer.Table_def.tname tname then new_rows
              else Heap.to_list (heap t referencer.Table_def.tname)
            in
            check_incoming t referencer cols ~rows available)
          (Ok ()) (incoming_fks t tname)
      in
      (* all prospective-state checks passed: mutate in one step, with the
         fault point ahead of it so an abort is all-or-nothing *)
      Fault.trip "storage.write";
      Heap.replace_all h new_rows;
      Ok !changed

let update t tname ?params ~set ~where () =
  match
    Err.protect ~kind:Err.Storage (fun () ->
        update_impl t tname ?params ~set ~where ())
  with
  | Ok (Ok n) -> Ok n
  | Ok (Error msg) -> Error (Err.make Err.Storage msg)
  | Error e -> Error e

let stats t tname =
  let h = heap t tname in
  match Hashtbl.find_opt t.stats_cache tname with
  | Some (gen, s) when gen = Heap.generation h -> s
  | _ ->
      let s = Stats.collect h in
      Hashtbl.replace t.stats_cache tname (Heap.generation h, s);
      s

let row_count t tname = Heap.length (heap t tname)
