(** Page-addressed storage backends: an in-memory image table, or one
    file with page [i] at offset [i * page_size].

    Pager files are run-scoped caches — durability stays with the WAL and
    snapshots — so the file backend truncates on open.  Writes are atomic
    write-through: the full checksummed image is built before one
    positioned write, and a torn write is caught by the checksum on the
    next read.

    {b Pin-guard discipline}: direct [read]/[write]/[alloc] access is
    reserved to {!Buffer_pool} (tools/lint.sh bans it elsewhere) — all
    other code pins pages through the pool. *)

open Eager_schema

type t

val create_mem : ?page_size:int -> unit -> t
(** In-memory backend (default page size 4096).  Raises a typed
    [Storage] error below {!Page.min_size}. *)

val create_file : ?page_size:int -> string -> t
(** File backend at the given path, truncated on open; the file is
    removed again on {!close}. *)

val tag : t -> int
(** Process-unique identity, used to key buffer-pool frames. *)

val page_size : t -> int

val npages : t -> int
(** Pages allocated so far (ids are [0 .. npages - 1]). *)

val alloc : t -> int
(** Reserve the next page id.  The page has no stored image until its
    first [write]. *)

val read : t -> int -> Row.t array
(** Decode the stored image (checksum/magic/id verified; fires the
    [storage.page_read] fault point).  Typed [Storage] errors on any
    corruption, torn image, or never-written page. *)

val write : t -> int -> Row.t array -> unit
(** Atomic write-through of a full page image (fires
    [storage.page_write]).  Typed [Storage] error if the rows exceed the
    page capacity. *)

val fsync : t -> unit
(** Flush the file backend to stable storage (no-op for [Mem]) — the
    checkpoint barrier calls this once after writing back dirty pages. *)

val close : t -> unit
(** Release the backend (removes a file backend's path).  Idempotent. *)

val corrupt_byte : t -> int -> pos:int -> unit
(** Test hook: XOR one byte of the stored image in place, bypassing the
    encode path, so corruption detection can be proven for every byte
    offset. *)
