(* Named fault-injection points.

   Production code calls [trip point] (raising transport, simulates a
   crash) or [check point] (result transport) at the registered points.
   With nothing armed both are near-free: one branch on a global.

   Two arming modes, usable together:
   - [arm_nth point n] — deterministic one-shot: the n-th subsequent hit
     of [point] fires, then the trigger disarms itself.
   - [arm_seeded ~seed ~rate ()] — a seeded pseudo-random schedule: every
     hit of an enabled point fires with probability [rate], driven by a
     [Random.State] so a seed fully determines the schedule.

   The registry of known points keeps tests honest: a suite can iterate
   [all_points] and prove every hook actually fires. *)

let all_points =
  [
    "storage.write"; (* Database.insert, before the physical append *)
    "heap.append"; (* Heap.insert, before the row lands *)
    "persist.rename"; (* Persist.save, before the atomic rename *)
    "persist.write"; (* Persist.save, mid-way through the temp write *)
    "exec.next"; (* every operator boundary in Exec *)
    "opt.testfd"; (* Planner.decide, before the TestFD check *)
    "opt.cost"; (* Planner.decide, before costing the eager plan *)
    "wal.append"; (* Wal.append, mid-record — leaves a torn tail *)
    "wal.fsync"; (* Wal.append, after the full record, before fsync *)
    "wal.truncate"; (* Wal.truncate, before the atomic rename *)
    "wal.replay"; (* Durable recovery, before applying each record *)
    "wal.group_commit"; (* Wal.sync, after the batch is flushed, before fsync *)
    "server.accept"; (* Server loop, before accepting a connection *)
    "server.read"; (* Wire.read_frame, before reading from a session *)
    "repl.send"; (* replication sender, before shipping a record frame *)
    "repl.recv"; (* standby applier, before ingesting a shipped record *)
    "backup.copy"; (* Backup.write, mid-way through copying the WAL tail *)
    "repl.lease"; (* replication sender, drops the piggybacked lease grant *)
    "server.election"; (* standby election, before probing peers *)
    "wal.epoch"; (* Durable epoch persistence, before the atomic rename *)
    "clock.jump"; (* Clock.now_ms, steps the raw wall sample backwards *)
    "wal.slow_fsync"; (* Wal.sync, injects latency before the fsync *)
    "storage.page_read"; (* Pager.read, before decoding the page image *)
    "storage.page_write"; (* Pager.write, before the page image lands *)
    "exec.spill"; (* Spill run store, before a spilled page is written *)
  ]

type seeded = {
  rand : Random.State.t;
  rate : float;
  points : string list option; (* None = every registered point *)
}

type state = {
  mutable schedule : seeded option;
  (* point -> remaining hits before firing (1 = fire on next hit) *)
  one_shots : (string, int ref) Hashtbl.t;
  hits : (string, int ref) Hashtbl.t;
  mutable fired : int;
}

let state =
  { schedule = None; one_shots = Hashtbl.create 8; hits = Hashtbl.create 8;
    fired = 0 }

let reset () =
  state.schedule <- None;
  Hashtbl.reset state.one_shots;
  Hashtbl.reset state.hits;
  state.fired <- 0

let arm_seeded ~seed ~rate ?points () =
  state.schedule <-
    Some { rand = Random.State.make [| seed |]; rate; points }

let arm_nth point n =
  if n <= 0 then invalid_arg "Fault.arm_nth: n must be positive";
  Hashtbl.replace state.one_shots point (ref n)

let hit_count point =
  match Hashtbl.find_opt state.hits point with Some r -> !r | None -> 0

let fired_count () = state.fired

let armed () =
  state.schedule <> None || Hashtbl.length state.one_shots > 0

(* record the hit and decide whether this invocation fires *)
let fires point =
  (match Hashtbl.find_opt state.hits point with
  | Some r -> incr r
  | None -> Hashtbl.replace state.hits point (ref 1));
  let one_shot =
    match Hashtbl.find_opt state.one_shots point with
    | Some r ->
        decr r;
        if !r <= 0 then begin
          Hashtbl.remove state.one_shots point;
          true
        end
        else false
    | None -> false
  in
  let scheduled =
    match state.schedule with
    | None -> false
    | Some { rand; rate; points } ->
        let enabled =
          match points with None -> true | Some ps -> List.mem point ps
        in
        enabled && Random.State.float rand 1.0 < rate
  in
  let f = one_shot || scheduled in
  if f then state.fired <- state.fired + 1;
  f

let trip point = if armed () && fires point then raise (Err.Fault_injected point)

let check point =
  if armed () && fires point then Error (Err.of_fault point) else Ok ()

(* boolean transport, for hooks that alter behaviour instead of failing
   (a dropped lease grant, a backwards clock sample, a slow fsync) *)
let hit point = armed () && fires point

let lag ?(ms = 150.) point = if hit point then Unix.sleepf (ms /. 1000.)

(* run [f] with a schedule armed, always disarming afterwards *)
let with_seeded ~seed ~rate ?points f =
  arm_seeded ~seed ~rate ?points ();
  Fun.protect ~finally:reset f
