(* Monotonised wall clock.  The OCaml stdlib exposes no OS monotonic
   source, so we build the property we actually need — a process-wide
   non-decreasing clock — by clamping [Unix.gettimeofday] to its own
   high-water mark.  Backward steps (the dangerous direction: they would
   stall every deadline) are absorbed; forward steps at worst fire
   budgets early, which degrades one query instead of unbounding it. *)

let mu = Mutex.create ()
let high_water = ref neg_infinity

let now_ms () =
  let wall = Unix.gettimeofday () *. 1000. in
  (* the [clock.jump] fault steps the raw sample 10s backwards before
     monotonisation — a fake NTP correction the clamp must absorb *)
  let wall = if Fault.hit "clock.jump" then wall -. 10_000. else wall in
  Mutex.lock mu;
  let now = if wall > !high_water then wall else !high_water in
  high_water := now;
  Mutex.unlock mu;
  now

let sleep_ms ms = if ms > 0. then Unix.sleepf (ms /. 1000.)
