(* Per-query resource governor.

   A governor is created per query (or shared per session statement) and
   charged at operator boundaries.  Budgets:
   - [max_rows]: cumulative rows materialized across all operators —
     bounds intermediate blow-up (cartesian products, exploding joins);
   - [max_groups]: live aggregation-hash-table entries — bounds the
     memory of hash grouping on the group-by-before-join paths;
   - [deadline_ms]: wall-clock budget from governor creation.

   Breaches raise [Err.Error_exn] with kind [Resource] so they unwind
   from deep inside iterator callbacks; [Exec.run_checked] converts them
   to [Error].  Aborting a query never mutates base tables: operators
   only write to fresh output heaps, which are dropped on unwind. *)

type limits = {
  max_rows : int option;
  max_groups : int option;
  deadline_ms : float option;
}

let no_limits = { max_rows = None; max_groups = None; deadline_ms = None }

type t = {
  limits : limits;
  started : float; (* Unix.gettimeofday at creation *)
  mutable rows : int; (* cumulative rows emitted across all operators *)
  mutable batches : int; (* cumulative batches pulled through boundaries *)
}

let create limits =
  { limits; started = Unix.gettimeofday (); rows = 0; batches = 0 }

(* the shared no-op governor: no limit ever fires, so the (unused) row
   counter being global is harmless *)
let unlimited = { limits = no_limits; started = 0.; rows = 0; batches = 0 }

let is_unlimited t = t.limits = no_limits

let rows_charged t = t.rows
let batches_charged t = t.batches
let elapsed_ms t = (Unix.gettimeofday () -. t.started) *. 1000.

let check_deadline t =
  match t.limits.deadline_ms with
  | Some budget when elapsed_ms t >= budget ->
      Err.failf Err.Resource
        "deadline exceeded: %.1f ms elapsed, budget %.1f ms" (elapsed_ms t)
        budget
  | _ -> ()

(* charge [n] freshly emitted rows and re-check every budget; called
   at each operator boundary *)
let charge_rows t n =
  if not (is_unlimited t) then begin
    t.rows <- t.rows + n;
    (match t.limits.max_rows with
    | Some cap when t.rows > cap ->
        Err.failf Err.Resource
          "row budget exceeded: %d rows materialized, limit %d" t.rows cap
    | _ -> ());
    check_deadline t
  end

(* one batch of [rows] crossing a cursor boundary in the pull pipeline:
   charges the rows and counts the batch, so budgets trip mid-stream —
   while the batch flows — rather than after an operator has fully
   materialized its output *)
let charge_batch t ~rows =
  if not (is_unlimited t) then begin
    t.batches <- t.batches + 1;
    charge_rows t rows
  end

(* [n] live entries in an aggregation hash table *)
let charge_groups t n =
  match t.limits.max_groups with
  | Some cap when n > cap ->
      Err.failf Err.Resource
        "aggregation hash table exceeds %d entries (%d live groups)" cap n
  | _ -> ()

(* result-transport variant for cold paths (planner, CLI) *)
let check t =
  match check_deadline t with
  | () -> Ok ()
  | exception Err.Error_exn e -> Error e
