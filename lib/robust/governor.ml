(* Per-query resource governor.

   A governor is created per query (or shared per session statement) and
   charged at operator boundaries.  Budgets:
   - [max_rows]: cumulative rows materialized across all operators —
     bounds intermediate blow-up (cartesian products, exploding joins);
   - [max_groups]: live aggregation-hash-table entries — bounds the
     memory of hash grouping on the group-by-before-join paths;
   - [deadline_ms]: elapsed-time budget from governor creation, measured
     on the monotonised clock ([Clock.now_ms]) so a wall-clock
     adjustment under a long-running session can never stall (or
     spuriously extend) enforcement.

   A governor may additionally be attached to a shared [pool]: a
   process-wide row budget spanning every statement currently executing.
   Each batch pulled through a cursor boundary charges the pool as well,
   so when the server is over its aggregate budget the statement that
   tips it over gets a typed [Resource] refusal mid-stream — backpressure
   propagated through the batch-pull boundary rather than a stall.
   [finish] returns a statement's charge to the pool; the admission
   controller calls it when the statement's ticket is released.

   Breaches raise [Err.Error_exn] with kind [Resource] so they unwind
   from deep inside iterator callbacks; [Exec.run_checked] converts them
   to [Error].  Aborting a query never mutates base tables: operators
   only write to fresh output heaps, which are dropped on unwind. *)

type limits = {
  max_rows : int option;
  max_groups : int option;
  deadline_ms : float option;
  max_page_ios : int option;
}

let no_limits =
  { max_rows = None; max_groups = None; deadline_ms = None;
    max_page_ios = None }

(* shared row budget across concurrently executing statements; guarded
   by its own mutex because sessions run on separate threads *)
type pool = {
  pool_cap : int;
  pool_mu : Mutex.t;
  mutable pool_rows : int;
}

let pool ~cap = { pool_cap = cap; pool_mu = Mutex.create (); pool_rows = 0 }

let pool_in_use p =
  Mutex.lock p.pool_mu;
  let n = p.pool_rows in
  Mutex.unlock p.pool_mu;
  n

let pool_cap p = p.pool_cap

type t = {
  limits : limits;
  pool : pool option;
  started : float; (* Clock.now_ms at creation *)
  mutable rows : int; (* cumulative rows emitted across all operators *)
  mutable batches : int; (* cumulative batches pulled through boundaries *)
  mutable page_ios : int; (* physical page reads + writes charged at pin *)
  mutable pooled : int; (* rows this governor has charged to the pool *)
  mutable finished : bool;
}

let create ?pool limits =
  {
    limits;
    pool;
    started = Clock.now_ms ();
    rows = 0;
    batches = 0;
    page_ios = 0;
    pooled = 0;
    finished = false;
  }

(* the shared no-op governor: no limit ever fires, so the (unused) row
   counter being global is harmless *)
let unlimited =
  {
    limits = no_limits;
    pool = None;
    started = 0.;
    rows = 0;
    batches = 0;
    page_ios = 0;
    pooled = 0;
    finished = false;
  }

let is_unlimited t = t.limits = no_limits && t.pool = None

let rows_charged t = t.rows
let batches_charged t = t.batches
let elapsed_ms t = Clock.now_ms () -. t.started

let check_deadline t =
  match t.limits.deadline_ms with
  | Some budget when elapsed_ms t >= budget ->
      Err.failf Err.Resource
        "deadline exceeded: %.1f ms elapsed, budget %.1f ms" (elapsed_ms t)
        budget
  | _ -> ()

(* charge [n] rows against the shared pool; the charge sticks even when
   it breaches (the rows exist either way) and is returned by [finish] *)
let charge_pool t n =
  match t.pool with
  | None -> ()
  | Some p ->
      Mutex.lock p.pool_mu;
      p.pool_rows <- p.pool_rows + n;
      t.pooled <- t.pooled + n;
      let over = p.pool_rows > p.pool_cap in
      let in_use = p.pool_rows in
      Mutex.unlock p.pool_mu;
      if over then
        Err.failf Err.Resource
          "global row budget exceeded: %d rows live across all sessions, \
           limit %d"
          in_use p.pool_cap

(* charge [n] freshly emitted rows and re-check every budget; called
   at each operator boundary.  Only the shared [unlimited] singleton
   skips the accounting (its counters would be cross-query noise) — a
   limit-free per-statement governor still counts, because the server's
   telemetry reads the counters back even when nothing can trip. *)
let charge_rows t n =
  if t != unlimited then begin
    t.rows <- t.rows + n;
    (match t.limits.max_rows with
    | Some cap when t.rows > cap ->
        Err.failf Err.Resource
          "row budget exceeded: %d rows materialized, limit %d" t.rows cap
    | _ -> ());
    charge_pool t n;
    check_deadline t
  end

(* one batch of [rows] crossing a cursor boundary in the pull pipeline:
   charges the rows and counts the batch, so budgets trip mid-stream —
   while the batch flows — rather than after an operator has fully
   materialized its output *)
let charge_batch t ~rows =
  if t != unlimited then begin
    t.batches <- t.batches + 1;
    charge_rows t rows
  end

(* [n] physical page transfers (a buffer-pool miss read, an eviction
   write-back, or a spill-run page) — charged at pin time, so the budget
   trips while pages move rather than after an operator has churned the
   whole pool.  The unlimited singleton skips accounting for the same
   reason as [charge_rows]. *)
let charge_page_ios t n =
  if t != unlimited then begin
    t.page_ios <- t.page_ios + n;
    (match t.limits.max_page_ios with
    | Some cap when t.page_ios > cap ->
        Err.failf Err.Resource
          "page IO budget exceeded: %d physical page transfers, limit %d"
          t.page_ios cap
    | _ -> ());
    check_deadline t
  end

let page_ios_charged t = t.page_ios

(* [n] live entries in an aggregation hash table *)
let charge_groups t n =
  match t.limits.max_groups with
  | Some cap when n > cap ->
      Err.failf Err.Resource
        "aggregation hash table exceeds %d entries (%d live groups)" cap n
  | _ -> ()

(* return this statement's charge to the shared pool; idempotent, so the
   admission controller can call it from both the normal and the unwind
   path *)
let finish t =
  if not t.finished then begin
    t.finished <- true;
    match t.pool with
    | None -> ()
    | Some p ->
        Mutex.lock p.pool_mu;
        p.pool_rows <- p.pool_rows - t.pooled;
        Mutex.unlock p.pool_mu
  end

(* result-transport variant for cold paths (planner, CLI) *)
let check t =
  match check_deadline t with
  | () -> Ok ()
  | exception Err.Error_exn e -> Error e
