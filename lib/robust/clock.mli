(** Monotonic time for budget enforcement.

    [Unix.gettimeofday] follows the wall clock, which steps when NTP or
    an operator adjusts it; a backward step would freeze every
    {!Governor} deadline (elapsed time stops growing) and let a runaway
    query evade its budget for as long as the adjustment was large.
    {!now_ms} is a monotonised reading: it never goes backward, so a
    backward wall step is absorbed (time stands still until the wall
    catches up) and elapsed intervals never shrink.  A forward step can
    still fire deadlines early — the safe direction for enforcement,
    since a budget that trips early degrades one query instead of
    letting one run forever.

    Thread-safe: the high-water mark is guarded by a mutex, so sessions
    on different threads all observe a single non-decreasing clock. *)

val now_ms : unit -> float
(** Milliseconds on a process-wide non-decreasing clock.  The absolute
    value is meaningless; only differences are. *)

val sleep_ms : float -> unit
(** Block the calling thread for at least that many milliseconds
    (no-op for non-positive values).  Lives here so callers that pace
    retries or group-commit windows use the same time base they
    measure with. *)
