(* Typed error channel for the whole engine.

   Every recoverable failure is a value of type [t]: a [kind] placing it
   in the taxonomy, a human-readable message, and a context trail pushed
   by intermediate layers.  Two transports coexist:

   - [('a, t) result] on cold paths (persistence, DDL, planning API), and
   - the [Error_exn] exception on hot paths that thread through iterator
     callbacks (operator evaluation, heap folds), converted back to a
     [result] at a boundary by [protect].

   [Fault_injected] lives here rather than in [Fault] so that [protect]
   can translate simulated crashes without a dependency cycle. *)

type kind =
  | Parse
  | Bind
  | Catalog
  | Storage
  | Exec
  | Planner
  | Resource
  | Io
  | Fenced

type t = { kind : kind; msg : string; context : string list }

exception Error_exn of t

(* a simulated crash from a named fault-injection point *)
exception Fault_injected of string

let kind_to_string = function
  | Parse -> "Parse"
  | Bind -> "Bind"
  | Catalog -> "Catalog"
  | Storage -> "Storage"
  | Exec -> "Exec"
  | Planner -> "Planner"
  | Resource -> "Resource"
  | Io -> "Io"
  | Fenced -> "Fenced"

let make kind msg = { kind; msg; context = [] }
let kind t = t.kind
let msg t = t.msg

let errf kind fmt = Printf.ksprintf (fun msg -> make kind msg) fmt
let parse fmt = errf Parse fmt
let bind fmt = errf Bind fmt
let catalog fmt = errf Catalog fmt
let storage fmt = errf Storage fmt
let exec fmt = errf Exec fmt
let planner fmt = errf Planner fmt
let resource fmt = errf Resource fmt
let io fmt = errf Io fmt
let fenced fmt = errf Fenced fmt

(* Fenced errors carry the new primary's address as a [redirect=<addr>]
   token in the message, so it survives the wire round-trip without a
   protocol change.  [redirect_of_msg] is the inverse. *)
let redirect_of_msg msg =
  let prefix = "redirect=" in
  let plen = String.length prefix in
  (* wire payloads end in a newline, so split on all whitespace lest the
     terminator ride along inside the address token *)
  String.map (function ' ' | '\t' | '\n' | '\r' -> ' ' | c -> c) msg
  |> String.split_on_char ' '
  |> List.find_map (fun tok ->
         if
           String.length tok > plen
           && String.sub tok 0 plen = prefix
         then Some (String.sub tok plen (String.length tok - plen))
         else None)

let raise_ t = raise (Error_exn t)

(* printf-style raise: [failf Exec "scan of %s: ..." table] *)
let failf kind fmt = Printf.ksprintf (fun msg -> raise_ (make kind msg)) fmt

let add_context note t = { t with context = note :: t.context }

let to_string t =
  let ctx =
    match t.context with
    | [] -> ""
    | notes -> Printf.sprintf " (while %s)" (String.concat "; " notes)
  in
  Printf.sprintf "[%s] %s%s" (kind_to_string t.kind) t.msg ctx

let pp ppf t = Format.pp_print_string ppf (to_string t)

let of_fault point =
  (* route a simulated crash into the taxonomy by its point prefix *)
  let kind =
    match String.index_opt point '.' with
    | Some i -> (
        match String.sub point 0 i with
        | "storage" | "heap" -> Storage
        | "persist" | "wal" | "server" | "repl" | "backup" -> Io
        | "exec" -> Exec
        | "opt" -> Planner
        | _ -> Exec)
    | None -> Exec
  in
  errf kind "injected fault at %s" point

(* ------------------------------------------------------------------ *)
(* result combinators *)

let ( let* ) = Result.bind
let ( let+ ) r f = Result.map f r

let of_msg kind = function
  | Ok _ as ok -> ok
  | Error msg -> Error (make kind msg)

let to_msg = function Ok _ as ok -> ok | Error e -> Error (to_string e)

let with_context note = function
  | Ok _ as ok -> ok
  | Error e -> Error (add_context note e)

(* fold an [('a -> (unit, t) result)] over a list, stopping at the first
   error — the typed-error sibling of [List.iter] *)
let iter_result f l =
  List.fold_left
    (fun acc x ->
      let* () = acc in
      f x)
    (Ok ()) l

let map_result f l =
  let* rev =
    List.fold_left
      (fun acc x ->
        let* acc = acc in
        let* y = f x in
        Ok (y :: acc))
      (Ok []) l
  in
  Ok (List.rev rev)

(* Run [f], converting every escape hatch back into a typed error:
   [Error_exn] carries one already; [Fault_injected] is a simulated
   crash; [Failure]/[Invalid_argument]/[Not_found] from legacy code and
   [Sys_error] from the OS are wrapped under [kind]. Asynchronous and
   truly unexpected exceptions still propagate. *)
let protect ~kind f =
  match f () with
  | v -> Ok v
  | exception Error_exn e -> Error e
  | exception Fault_injected point -> Error (of_fault point)
  | exception Failure msg -> Error (make kind msg)
  | exception Invalid_argument msg -> Error (errf kind "invalid argument: %s" msg)
  | exception Not_found -> Error (make kind "internal lookup failed (Not_found)")
  | exception Sys_error msg -> Error (make Io msg)
  | exception Unix.Unix_error (e, fn, arg) ->
      (* a syscall refusing (EPIPE on a closed peer, ECONNREFUSED, …) is
         an I/O condition, not a crash: the wire layer's writes run with
         SIGPIPE ignored exactly so the failure lands here, typed *)
      Error
        (errf Io "%s%s: %s" fn
           (if arg = "" then "" else " " ^ arg)
           (Unix.error_message e))
