(** Per-query resource governor.

    A governor is created per statement and charged at operator
    boundaries.  Breaches raise {!Err.Error_exn} with kind [Resource] so
    they unwind from deep inside iterator callbacks;
    [Exec.run_checked] converts them to [Error].  Aborting a query never
    mutates base tables: operators only write to fresh output heaps,
    which are dropped on unwind.

    Deadlines are measured on the monotonised clock ({!Clock.now_ms}),
    so budget enforcement survives wall-clock adjustments under
    long-running sessions.

    A governor may also be attached to a shared {!pool} — a process-wide
    row budget spanning every concurrently executing statement.  Every
    batch pulled through a cursor boundary charges the pool, so an
    over-budget server refuses the tipping statement mid-stream with a
    typed [Resource] error (backpressure through the batch-pull
    boundary) instead of stalling.  {!finish} returns the statement's
    charge when it completes or unwinds. *)

type limits = {
  max_rows : int option;
      (** cumulative rows materialized across all operators — bounds
          intermediate blow-up (cartesian products, exploding joins) *)
  max_groups : int option;
      (** live aggregation-hash-table entries — bounds the memory of
          hash grouping on the group-by-before-join paths *)
  deadline_ms : float option;
      (** elapsed-time budget from creation (monotonic clock) *)
  max_page_ios : int option;
      (** physical page transfers (buffer-pool miss reads, eviction
          write-backs, spill-run pages) — bounds the IO a statement may
          generate against the paged storage backend *)
}

val no_limits : limits

type pool
(** A shared row budget across concurrently executing statements
    (thread-safe). *)

val pool : cap:int -> pool
val pool_in_use : pool -> int
(** Rows currently charged by live (unfinished) governors. *)

val pool_cap : pool -> int

type t

val create : ?pool:pool -> limits -> t
(** [pool] attaches the governor to a shared global row budget in
    addition to its per-statement [limits]. *)

val unlimited : t
(** The shared no-op governor: no limit ever fires. *)

val is_unlimited : t -> bool
val rows_charged : t -> int

val batches_charged : t -> int
(** Batches pulled through cursor boundaries (see {!charge_batch}). *)

val elapsed_ms : t -> float

val check_deadline : t -> unit
val charge_rows : t -> int -> unit
(** Charge [n] freshly materialized rows and re-check every budget —
    per-statement caps, the shared pool, the deadline; called at each
    operator boundary. *)

val charge_batch : t -> rows:int -> unit
(** One batch of [rows] crossing a cursor boundary in the pull-based
    pipeline: counts the batch and charges the rows, so budgets trip
    mid-stream rather than after full materialization. *)

val charge_groups : t -> int -> unit
(** [n] live entries in an aggregation hash table. *)

val charge_page_ios : t -> int -> unit
(** [n] physical page transfers (miss reads, eviction write-backs,
    spill-run pages), charged by the buffer pool at pin time. *)

val page_ios_charged : t -> int

val finish : t -> unit
(** Return this governor's charge to its shared pool (no-op without
    one).  Idempotent; the admission controller calls it when the
    statement's ticket is released. *)

val check : t -> (unit, Err.t) result
(** Result-transport deadline check for cold paths (planner, CLI). *)
