(** Per-query resource governor.

    A governor is created per statement and charged at operator
    boundaries.  Breaches raise {!Err.Error_exn} with kind [Resource] so
    they unwind from deep inside iterator callbacks;
    [Exec.run_checked] converts them to [Error].  Aborting a query never
    mutates base tables: operators only write to fresh output heaps,
    which are dropped on unwind. *)

type limits = {
  max_rows : int option;
      (** cumulative rows materialized across all operators — bounds
          intermediate blow-up (cartesian products, exploding joins) *)
  max_groups : int option;
      (** live aggregation-hash-table entries — bounds the memory of
          hash grouping on the group-by-before-join paths *)
  deadline_ms : float option;  (** wall-clock budget from creation *)
}

val no_limits : limits

type t

val create : limits -> t

val unlimited : t
(** The shared no-op governor: no limit ever fires. *)

val is_unlimited : t -> bool
val rows_charged : t -> int

val batches_charged : t -> int
(** Batches pulled through cursor boundaries (see {!charge_batch}). *)

val elapsed_ms : t -> float

val check_deadline : t -> unit
val charge_rows : t -> int -> unit
(** Charge [n] freshly materialized rows and re-check every budget;
    called at each operator boundary. *)

val charge_batch : t -> rows:int -> unit
(** One batch of [rows] crossing a cursor boundary in the pull-based
    pipeline: counts the batch and charges the rows, so budgets trip
    mid-stream rather than after full materialization. *)

val charge_groups : t -> int -> unit
(** [n] live entries in an aggregation hash table. *)

val check : t -> (unit, Err.t) result
(** Result-transport deadline check for cold paths (planner, CLI). *)
