(** Typed error channel for the whole engine.

    Every recoverable failure is a value of type {!t}: a {!kind} placing
    it in the taxonomy, a human-readable message, and a context trail
    pushed by intermediate layers.  Two transports coexist: [('a, t)
    result] on cold paths (persistence, DDL, planning API), and the
    {!Error_exn} exception on hot paths that thread through iterator
    callbacks, converted back to a [result] at a boundary by
    {!protect}. *)

type kind =
  | Parse  (** SQL text did not lex/parse *)
  | Bind  (** name resolution / typing of a parsed statement failed *)
  | Catalog  (** DDL violated a catalog invariant *)
  | Storage  (** base-table read/write failed *)
  | Exec  (** runtime failure inside an operator *)
  | Planner  (** optimizer internals failed (normally demoted, not raised) *)
  | Resource  (** a {!Governor} budget was breached *)
  | Io  (** filesystem / snapshot trouble *)
  | Fenced
      (** the node lost the cluster lease or observed a higher epoch:
          writes are refused and the message names the new primary as a
          [redirect=<addr>] token (see {!redirect_of_msg}) *)

type t = { kind : kind; msg : string; context : string list }

exception Error_exn of t

exception Fault_injected of string
(** A simulated crash from a named {!Fault} injection point.  Lives here
    rather than in [Fault] so {!protect} can translate it without a
    dependency cycle. *)

val kind_to_string : kind -> string
val make : kind -> string -> t
val kind : t -> kind
val msg : t -> string

val errf : kind -> ('a, unit, string, t) format4 -> 'a
(** Printf-style constructor: [errf Exec "scan of %s" t]. *)

val parse : ('a, unit, string, t) format4 -> 'a
val bind : ('a, unit, string, t) format4 -> 'a
val catalog : ('a, unit, string, t) format4 -> 'a
val storage : ('a, unit, string, t) format4 -> 'a
val exec : ('a, unit, string, t) format4 -> 'a
val planner : ('a, unit, string, t) format4 -> 'a
val resource : ('a, unit, string, t) format4 -> 'a
val io : ('a, unit, string, t) format4 -> 'a
val fenced : ('a, unit, string, t) format4 -> 'a

val redirect_of_msg : string -> string option
(** Extract the [redirect=<addr>] token a {!Fenced} message carries, if
    any — how a client learns where the new primary listens without a
    wire-protocol change. *)

val raise_ : t -> 'a
(** Raise as {!Error_exn} (hot-path transport). *)

val failf : kind -> ('a, unit, string, 'b) format4 -> 'a
(** Printf-style raise: [failf Exec "scan of %s: ..." table]. *)

val add_context : string -> t -> t
val to_string : t -> string
(** ["[Kind] msg (while note; note)"] — what the CLI prints. *)

val pp : Format.formatter -> t -> unit

val of_fault : string -> t
(** Route a simulated crash into the taxonomy by its point prefix
    ([storage.]/[heap.] → [Storage], [persist.]/[wal.]/[server.]/
    [repl.]/[backup.] → [Io], …). *)

(** {1 Result combinators} *)

val ( let* ) : ('a, 'e) result -> ('a -> ('b, 'e) result) -> ('b, 'e) result
val ( let+ ) : ('a, 'e) result -> ('a -> 'b) -> ('b, 'e) result

val of_msg : kind -> ('a, string) result -> ('a, t) result
val to_msg : ('a, t) result -> ('a, string) result
val with_context : string -> ('a, t) result -> ('a, t) result

val iter_result : ('a -> (unit, 'e) result) -> 'a list -> (unit, 'e) result
(** Fold, stopping at the first error — the typed sibling of
    [List.iter]. *)

val map_result : ('a -> ('b, 'e) result) -> 'a list -> ('b list, 'e) result

val protect : kind:kind -> (unit -> 'a) -> ('a, t) result
(** Run [f], converting every escape hatch back into a typed error:
    {!Error_exn} carries one already; {!Fault_injected} is a simulated
    crash; [Failure]/[Invalid_argument]/[Not_found] from legacy code are
    wrapped under [kind]; [Sys_error] and [Unix.Unix_error] (EPIPE on a
    closed peer, ECONNREFUSED, …) become typed [Io] errors.
    Asynchronous and truly unexpected exceptions still propagate. *)
