(** Named fault-injection points.

    Production code calls {!trip} (raising transport, simulates a crash)
    or {!check} (result transport) at the registered points.  With
    nothing armed both are near-free: one branch on a global.

    Two arming modes, usable together: {!arm_nth} (deterministic
    one-shot) and {!arm_seeded} (pseudo-random schedule fully determined
    by a seed).  The registry {!all_points} keeps tests honest: a suite
    can iterate it and prove every hook actually fires. *)

val all_points : string list
(** Every point compiled into the engine: [storage.write],
    [heap.append], [persist.rename], [persist.write], [exec.next],
    [opt.testfd], [opt.cost], [wal.append], [wal.fsync],
    [wal.truncate], [wal.replay], [wal.group_commit], [server.accept],
    [server.read], [repl.send], [repl.recv], [backup.copy],
    [repl.lease], [server.election], [wal.epoch], [clock.jump],
    [wal.slow_fsync]. *)

val reset : unit -> unit
(** Disarm everything and zero the counters. *)

val arm_seeded : seed:int -> rate:float -> ?points:string list -> unit -> unit
(** Every hit of an enabled point (default: all) fires with probability
    [rate], driven by a [Random.State] so [seed] fully determines the
    schedule. *)

val arm_nth : string -> int -> unit
(** [arm_nth point n] fires on the n-th subsequent hit of [point], then
    disarms itself.  @raise Invalid_argument if [n <= 0]. *)

val hit_count : string -> int
(** Hits (fired or not) of a point since the last {!reset}. *)

val fired_count : unit -> int
val armed : unit -> bool

val trip : string -> unit
(** Raise {!Err.Fault_injected} if this hit fires. *)

val check : string -> (unit, Err.t) result
(** Result-transport variant of {!trip}. *)

val hit : string -> bool
(** Boolean transport: true iff this hit fires.  For hooks that alter
    behaviour instead of failing — a dropped lease grant, a backwards
    clock sample.  Near-free when nothing is armed (one branch). *)

val lag : ?ms:float -> string -> unit
(** Sleep [ms] (default 150) iff this hit fires — injected latency for
    slow-disk schedules. *)

val with_seeded :
  seed:int -> rate:float -> ?points:string list -> (unit -> 'a) -> 'a
(** Run [f] with a schedule armed, always disarming afterwards. *)
