(* The session server: one accept thread, one commit thread, one thread
   per session.

   Write path: session threads never touch the WAL or the database
   directly — they enqueue statement runs on the commit queue and block
   on an ivar.  The commit thread drains the whole queue each wake-up
   and commits every drained run with ONE fsync (Durable.exec_grouped),
   which is where group commit amortization comes from: concurrency in
   the arrival process directly becomes batching in the log.

   Read path: session threads take the commit lock just long enough to
   stamp an LSN and obtain a frozen snapshot (Snapshot.get), then run
   the query with zero shared mutable state.  Writers committing
   concurrently are invisible to an in-flight reader by construction. *)

open Eager_storage
open Eager_exec
open Eager_core
open Eager_opt
open Eager_parser
open Eager_durable
open Eager_robust

type listen = L_unix of string | L_tcp of string * int

type role = Primary | Standby of { primary : Client.addr; repl_seed : int }

type config = {
  listen : listen;
  admission : Admission.config;
  read_timeout_ms : float;
  db_dir : string option;
  storage : Database.storage_config option;
      (* paged engine: buffer pool + pager files behind every heap *)
  checkpoint_every : int option;
  die_on_broken_wal : bool;
  role : role;
  repl_retain : int;
  peers : Client.addr list;
  lease_ms : float;
  auto_failover : bool;
}

let default_config listen =
  {
    listen;
    admission = Admission.default_config;
    read_timeout_ms = 30_000.;
    db_dir = None;
    storage = None;
    checkpoint_every = None;
    die_on_broken_wal = false;
    role = Primary;
    repl_retain = 1024;
    peers = [];
    lease_ms = 1_000.;
    auto_failover = true;
  }

(* how long a standby waits between heartbeats before declaring the
   stream dead; senders heartbeat at a quarter of this *)
let repl_heartbeat_ms = 250.

(* Failover is armed only when the operator names the rest of the
   cluster: a peerless server never elects, never fences itself for a
   lapsed lease, and never holds commits for a standby ack — exactly
   the pre-failover behaviour. *)
let failover_active cfg = cfg.auto_failover && cfg.peers <> []

(* The skew margin a standby adds past its lease-observation deadline
   before electing: the primary self-suspends at [lease_ms] after the
   send-instant of the last grant a standby ACKNOWLEDGED, and the
   standby observed that grant at or after the send, so by
   [deadline + skew] a live-but-slow primary has already stopped
   acking writes (see DESIGN.md §15 for the timing argument). *)
let skew_margin_ms cfg = Float.max 100. (cfg.lease_ms /. 2.)

(* How long a granted ballot binds its voter.  It must comfortably
   outlast one election round — every probe timing out, plus the
   winner's promotion fsync — or a voter could back a second candidate
   while the first is still mid-promotion; it must also expire, or a
   winner that died between collecting grants and promoting would wedge
   the cluster on its stale ballots. *)
let vote_window_ms cfg =
  let probe = Float.max 250. (cfg.lease_ms /. 2.) in
  (2. *. cfg.lease_ms) +. (float_of_int (List.length cfg.peers) *. probe)

(* a write-once cell the commit thread fills and a session thread waits on *)
module Ivar = struct
  type 'a t = { mu : Mutex.t; cv : Condition.t; mutable v : 'a option }

  let create () = { mu = Mutex.create (); cv = Condition.create (); v = None }

  let fill t v =
    Mutex.lock t.mu;
    t.v <- Some v;
    Condition.broadcast t.cv;
    Mutex.unlock t.mu

  let read t =
    Mutex.lock t.mu;
    while Option.is_none t.v do
      Condition.wait t.cv t.mu
    done;
    let v = Option.get t.v in
    Mutex.unlock t.mu;
    v
end

type write_req =
  | W_batch of Ast.statement list * (Binder.outcome, Err.t) result list Ivar.t
      (** a contiguous run of loggable writes from one request *)
  | W_checkpoint of (Binder.outcome, Err.t) result Ivar.t
  | W_backup of string * (Binder.outcome, Err.t) result Ivar.t
      (** online hot backup: a commit-queue barrier, so the snapshot and
          WAL tail it seals describe one quiesced instant — without ever
          blocking readers, who run on frozen snapshots anyway *)

type backend =
  | Durable of Durable.t
  | Mem of { db : Database.t; mutable mem_lsn : int }

(* A primary that lost its place in the cluster: it keeps serving reads
   on its last-known history, but every write refuses with a typed
   [Fenced] error, and only a restart (re-seeded from the new history)
   clears the state.  [leader] fills in as the successor is
   discovered. *)
type fenced = { at_epoch : int; new_epoch : int; leader : string option }

type t = {
  cfg : config;
  backend : backend;
  adm : Admission.t;
  tel : Telemetry.t;
  snaps : Snapshot.t;
  commit_mu : Mutex.t;  (* apply vs snapshot exclusion *)
  q_mu : Mutex.t;
  q_cv : Condition.t;
  queue : write_req Queue.t;
  mutable shutdown : bool;
  mutable fatal : Err.t option;
  listen_fd : Unix.file_descr;
  addr_str : string;
  sess_mu : Mutex.t;
  mutable session_fds : Unix.file_descr list;
  mutable session_threads : Thread.t list;
  mutable core_threads : Thread.t list;  (* commit + accept *)
  fin_mu : Mutex.t;
  mutable finalized : bool;
  (* replication *)
  hub : Repl.hub option;  (* Some iff the backend is durable *)
  role_mu : Mutex.t;  (* guards the fields below *)
  mutable is_standby : bool;
  mutable applier : Repl.applier option;
  mutable senders : Repl.sender_stats list;  (* live outbound streams *)
  (* failover *)
  mutable fenced : fenced option;
  mutable primary_addr : Client.addr option;  (* current upstream (standby) *)
  mutable elections : int;
  mutable grace_until_ms : float;
      (* lease grace after start/promotion: no suspension, no election *)
  (* the ballot ledger: at most one candidate granted per target epoch
     per window (all under role_mu).  In-memory only — a restart forgets
     it — but the window it needs to hold is one election round, and a
     restart takes longer than that. *)
  mutable voted_epoch : int;
  mutable voted_for : string;
  mutable voted_at_ms : float;
}

let bound_addr t = t.addr_str
let db_of t = match t.backend with Durable d -> Durable.db d | Mem m -> m.db

let current_lsn t =
  match t.backend with Durable d -> Durable.lsn d | Mem m -> m.mem_lsn

let epoch_of t = match t.backend with Durable d -> Durable.epoch d | Mem _ -> 0

let standby_now t =
  Mutex.lock t.role_mu;
  let v = t.is_standby in
  Mutex.unlock t.role_mu;
  v

let is_fenced t =
  Mutex.lock t.role_mu;
  let v = Option.is_some t.fenced in
  Mutex.unlock t.role_mu;
  v

(* ---------- fencing ---------- *)

(* Fence this primary out of the cluster: a higher epoch exists, so some
   standby won an election past us.  Reads keep serving (the data up to
   our last commit is real history), writes refuse from here on, and the
   hub closes so every outbound stream — which would be shipping grants
   for a lease we no longer hold — dies now.  Idempotent; later calls
   may fill in a newly discovered leader or a higher epoch. *)
let fence t ~new_epoch ~leader =
  Mutex.lock t.role_mu;
  let first = Option.is_none t.fenced && not t.is_standby in
  (match t.fenced with
  | Some f ->
      let leader = if Option.is_some leader then leader else f.leader in
      t.fenced <- Some { f with new_epoch = max f.new_epoch new_epoch; leader }
  | None ->
      if not t.is_standby then
        t.fenced <- Some { at_epoch = epoch_of t; new_epoch; leader });
  Mutex.unlock t.role_mu;
  if first then
    match t.hub with Some hub -> Repl.close_hub hub | None -> ()

let fenced_err t ~what =
  Mutex.lock t.role_mu;
  let f = t.fenced in
  Mutex.unlock t.role_mu;
  match f with
  | None -> None
  | Some f ->
      Some
        (Err.fenced
           "%s refused: this node was fenced at epoch %d (the cluster moved \
            on to epoch %d)%s"
           what f.at_epoch f.new_epoch
           (match f.leader with
           | Some l -> Printf.sprintf " — the new primary is redirect=%s" l
           | None -> ""))

(* The primary holds its lease iff SOME standby ACKNOWLEDGED a recent
   grant — or we are inside the startup/promotion grace, when no
   standby has had time to connect yet.  A local socket write proves
   nothing (a partition's TCP buffers absorb frames indefinitely), so
   the lease reads [lease_anchor_ms]: the send-instant of the last
   grant a standby echoed back in an RACK.  The standby observed that
   grant AT OR AFTER the anchor, so its observation window always
   outlives this reckoning — delivery failure lapses both sides, the
   primary first.  Reads race benignly with the sender threads: a
   stale read errs toward giving the lease up early, never toward
   keeping it. *)
let holds_lease t =
  let now = Clock.now_ms () in
  Mutex.lock t.role_mu;
  let grace = t.grace_until_ms in
  let anchor =
    List.fold_left
      (fun acc (s : Repl.sender_stats) -> Float.max acc s.lease_anchor_ms)
      0. t.senders
  in
  Mutex.unlock t.role_mu;
  now <= grace || (anchor > 0. && now -. anchor <= t.cfg.lease_ms)

(* Semi-synchronous acknowledgement, failover mode only: a batch is
   reported committed only once some standby ACKNOWLEDGED applying the
   records (its RACK covers the batch's LSN) — a record sitting in
   this node's socket buffer dies with it under a partition, so a
   local write success counts for nothing.  Bounded by the lease
   window; on timeout the batch IS durable locally, but it is answered
   with a typed error telling the client to treat it as failed (if the
   cluster moves on, the epoch fence erases it; if this node survives,
   the write stands — the classic semi-sync ambiguity, scoped to a
   window the operator chose). *)
let await_ship t d =
  if not (failover_active t.cfg) || standby_now t then Ok ()
  else begin
    let target = Durable.lsn d in
    let deadline = Clock.now_ms () +. t.cfg.lease_ms in
    let acked () =
      Mutex.lock t.role_mu;
      let v =
        List.fold_left
          (fun acc (s : Repl.sender_stats) -> max acc s.acked_lsn)
          (-1) t.senders
      in
      Mutex.unlock t.role_mu;
      v
    in
    let rec wait () =
      if acked () >= target then Ok ()
      else if Clock.now_ms () >= deadline then
        Error
          (Err.io
             "commit is durable on this node but no standby acknowledged it \
              within the %.0f ms lease window; treat the statement as failed \
              — if the cluster elects a new primary this write will be \
              fenced away with this node"
             t.cfg.lease_ms)
      else begin
        Clock.sleep_ms 2.;
        wait ()
      end
    in
    wait ()
  end

(* ---------- shutdown plumbing ---------- *)

(* idempotent, join-free: safe to call from the commit thread itself *)
let initiate_shutdown t =
  Mutex.lock t.q_mu;
  let first = not t.shutdown in
  t.shutdown <- true;
  Condition.broadcast t.q_cv;
  Mutex.unlock t.q_mu;
  if first then begin
    (* nudge every live session off its blocking select *)
    Mutex.lock t.sess_mu;
    List.iter
      (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      t.session_fds;
    Mutex.unlock t.sess_mu;
    (* wake outbound replication streams and stop the inbound one *)
    (match t.hub with Some hub -> Repl.close_hub hub | None -> ());
    Mutex.lock t.role_mu;
    let applier = t.applier in
    t.applier <- None;
    Mutex.unlock t.role_mu;
    match applier with Some a -> Repl.stop_applier a | None -> ()
  end

let set_fatal t e =
  Mutex.lock t.q_mu;
  if Option.is_none t.fatal then t.fatal <- Some e;
  Mutex.unlock t.q_mu;
  initiate_shutdown t

(* ---------- commit thread ---------- *)

let rec take n l =
  if n = 0 then ([], l)
  else
    match l with
    | [] -> ([], [])
    | x :: rest ->
        let a, b = take (n - 1) rest in
        (x :: a, b)

(* Commit the drained batches in arrival order; contiguous W_batch runs
   share one group commit, W_checkpoint acts as a barrier.  [commit_mu]
   is held only around the backend mutations (apply vs snapshot
   exclusion) — NOT across the semi-sync wait, which can last a whole
   lease window: a reader stamping a snapshot, or a reconnecting
   standby's handshake reading the LSN under the same lock, must never
   be held hostage by a commit that is waiting for that very standby's
   ack. *)
let process_drain t reqs =
  let locked f =
    Mutex.lock t.commit_mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.commit_mu) f
  in
  let flush_batches = function
    | [] -> ()
    | batches -> (
        match fenced_err t ~what:"write" with
        | Some e ->
            (* the commit queue is poisoned: runs that were enqueued
               before the fence landed refuse without touching the WAL —
               the fenced node must not extend a superseded history *)
            Telemetry.fenced_refused t.tel;
            List.iter
              (fun (stmts, iv) ->
                Ivar.fill iv (List.map (fun _ -> Error e) stmts))
              batches
        | None ->
        let all = List.concat_map fst batches in
        let results =
          match t.backend with
          | Durable d ->
              let rs = locked (fun () -> Durable.exec_grouped d all) in
              Telemetry.group_commit t.tel ~statements:(List.length all);
              (match await_ship t d with
              | Ok () -> rs
              | Error e ->
                  (* committed locally, never acked: downgrade every
                     success to the typed never-acked error; statement
                     refusals stay what they were *)
                  List.map (function Ok _ -> Error e | r -> r) rs)
          | Mem m ->
              locked (fun () ->
                  List.map
                    (fun s ->
                      match
                        Err.of_msg Err.Bind (Binder.exec_statement m.db s)
                      with
                      | Ok o ->
                          m.mem_lsn <- m.mem_lsn + 1;
                          Ok o
                      | Error e -> Error e)
                    all)
        in
        let rec give rs = function
          | [] -> ()
          | (stmts, iv) :: rest ->
              let mine, rs' = take (List.length stmts) rs in
              Ivar.fill iv mine;
              give rs' rest
        in
        give results batches)
  in
  let rec go acc = function
    | [] -> flush_batches (List.rev acc)
    | W_batch (stmts, iv) :: rest -> go ((stmts, iv) :: acc) rest
    | W_checkpoint iv :: rest ->
        flush_batches (List.rev acc);
        let r =
          match t.backend with
          | Durable d ->
              locked (fun () ->
                  Result.map
                    (fun l -> Binder.Checkpointed l)
                    (Durable.checkpoint d))
          | Mem _ ->
              Error
                (Err.io "CHECKPOINT requires a durable server (serve --db DIR)")
        in
        Ivar.fill iv r;
        go [] rest
    | W_backup (dir, iv) :: rest ->
        flush_batches (List.rev acc);
        let r =
          match t.backend with
          | Durable d ->
              locked (fun () ->
                  Result.map
                    (fun lsn -> Binder.Backed_up { dir; lsn })
                    (Durable.backup d ~dir))
          | Mem _ ->
              Error (Err.io "BACKUP requires a durable server (serve --db DIR)")
        in
        Ivar.fill iv r;
        go [] rest
  in
  go [] reqs

let commit_loop t =
  let rec loop () =
    Mutex.lock t.q_mu;
    while Queue.is_empty t.queue && not t.shutdown do
      Condition.wait t.q_cv t.q_mu
    done;
    let drained = List.of_seq (Queue.to_seq t.queue) in
    Queue.clear t.queue;
    let stopping = t.shutdown && drained = [] in
    Mutex.unlock t.q_mu;
    if stopping then ()
    else begin
      process_drain t drained;
      (match t.backend with
      | Durable d when t.cfg.die_on_broken_wal && Durable.wal_broken d ->
          set_fatal t
            (Err.io
               "write-ahead log poisoned mid-commit; halting (die-on-broken-wal)")
      | _ -> ());
      loop ()
    end
  in
  loop ()

(* Refuse new work once shutdown has begun.  The commit thread exits
   as soon as (shutdown && queue empty) holds under [q_mu]; an enqueue
   racing past that check would park its session on an ivar nobody will
   ever fill, and [wait] (which joins session threads) would deadlock.
   Checking the flag under the same mutex closes the race: either the
   commit thread sees our request before exiting, or we see the flag. *)
let enqueue t req =
  Mutex.lock t.q_mu;
  if t.shutdown then begin
    Mutex.unlock t.q_mu;
    Error (Err.io "server is shutting down; statement not executed")
  end
  else begin
    Queue.add req t.queue;
    Condition.signal t.q_cv;
    Mutex.unlock t.q_mu;
    Ok ()
  end

(* ---------- query rendering (the server-side twin of bin's printer) ---------- *)

let render_table buf heap =
  let schema = Heap.schema heap in
  let headers =
    Array.map (fun (c, _) -> Eager_schema.Colref.to_string c)
      (Eager_schema.Schema.cols schema)
  in
  let rows =
    Heap.to_list heap
    |> List.map (fun row -> Array.map Eager_value.Value.to_string row)
  in
  let ncols = Array.length headers in
  let widths = Array.map String.length headers in
  List.iter
    (fun row ->
      Array.iteri (fun i s -> widths.(i) <- max widths.(i) (String.length s)) row)
    rows;
  let line cells =
    String.concat " | "
      (List.init ncols (fun i ->
           let s = if i < Array.length cells then cells.(i) else "" in
           s ^ String.make (widths.(i) - String.length s) ' '))
  in
  let out s =
    Buffer.add_string buf s;
    Buffer.add_char buf '\n'
  in
  out (line headers);
  out
    (String.concat "-+-"
       (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
  List.iter (fun r -> out (line r)) rows;
  Buffer.add_string buf (Printf.sprintf "(%d rows)\n" (List.length rows))

type show = Results | Explain | Explain_analyze

let run_query_buf db (q : Binder.bound_query) ~governor ~order ~show buf =
  let ( let* ) = Err.( let* ) in
  let bprintf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let options =
    { Exec.default_options with governor; spill = Spill.for_db db }
  in
  let io = Cost.default_io db in
  let checked plan k =
    let* heap, stats = Exec.run_checked ~options db plan in
    k (heap, stats);
    Ok ()
  in
  let analyze plan =
    let t0 = Clock.now_ms () in
    checked (Binder.apply_order order plan) (fun (heap, stats) ->
        bprintf "%s(%d rows in %.2f ms)\n" (Optree.to_string stats)
          (Heap.length heap)
          (Clock.now_ms () -. t0))
  in
  let finish plan =
    match show with
    | Explain ->
        bprintf "%s\n"
          (Eager_algebra.Plan.to_string (Binder.apply_order order plan));
        Ok ()
    | Explain_analyze -> analyze plan
    | Results ->
        checked (Binder.apply_order order plan) (fun (heap, _) ->
            render_table buf heap)
  in
  match q with
  | Binder.Grouped input -> (
      match Canonical.of_input db input with
      | Ok cq -> (
          let* decision = Planner.decide ~governor ?io db cq in
          match show with
          | Explain ->
              Buffer.add_string buf (Explain.text db decision);
              if order <> [] then bprintf "-- final output sorted per ORDER BY\n";
              Ok ()
          | Explain_analyze ->
              bprintf "-- plan: %s\n"
                (Planner.kind_to_string decision.Planner.chosen_kind);
              analyze decision.Planner.chosen
          | Results ->
              let plan = Binder.apply_order order decision.Planner.chosen in
              checked plan (fun (heap, _) ->
                  render_table buf heap;
                  bprintf "-- plan: %s\n"
                    (Planner.kind_to_string decision.Planner.chosen_kind)))
      | Error reason -> (
          match Binder.to_plan db q with
          | Ok plan ->
              if show <> Results then
                bprintf "-- not in the transformable class: %s\n" reason;
              finish plan
          | Error msg -> Error (Err.bind "%s" msg)))
  | _ -> (
      match Binder.to_plan db q with
      | Ok plan -> finish plan
      | Error msg -> Error (Err.bind "%s" msg))

(* ---------- per-request statement execution ---------- *)

let is_loggable_write = function
  | Ast.S_create_table _ | Ast.S_create_domain _ | Ast.S_create_view _
  | Ast.S_create_index _ | Ast.S_insert _ | Ast.S_update _ | Ast.S_delete _ ->
      true
  | Ast.S_select _ | Ast.S_explain _ | Ast.S_checkpoint | Ast.S_status
  | Ast.S_backup _ | Ast.S_promote ->
      false

let rec span p = function
  | x :: rest when p x ->
      let a, b = span p rest in
      (x :: a, b)
  | l -> ([], l)

let describe_outcome buf = function
  | Binder.Created msg -> Buffer.add_string buf (msg ^ "\n")
  | Binder.Inserted n -> Buffer.add_string buf (Printf.sprintf "%d row(s) inserted\n" n)
  | Binder.Updated n -> Buffer.add_string buf (Printf.sprintf "%d row(s) updated\n" n)
  | Binder.Deleted n -> Buffer.add_string buf (Printf.sprintf "%d row(s) deleted\n" n)
  | Binder.Checkpointed lsn ->
      Buffer.add_string buf (Printf.sprintf "checkpointed at wal lsn %d\n" lsn)
  | Binder.Backed_up { dir; lsn } ->
      Buffer.add_string buf
        (Printf.sprintf "backup written to %s at wal lsn %d\n" dir lsn)
  | Binder.Promoted lsn ->
      Buffer.add_string buf
        (Printf.sprintf "promoted to primary at wal lsn %d\n" lsn)
  | Binder.Query _ | Binder.Explained _ -> ()

(* a frozen reader view stamped with the current LSN; the commit lock is
   held only for the stamp-and-copy, never during query execution *)
let reader_snapshot t =
  Mutex.lock t.commit_mu;
  let lsn = current_lsn t in
  let view = Snapshot.get t.snaps ~lsn ~db:(db_of t) in
  Mutex.unlock t.commit_mu;
  view

let run_read t sess ~governor buf stmt =
  let ( let* ) = Err.( let* ) in
  let view = reader_snapshot t in
  let rows0 = Governor.rows_charged governor in
  let batches0 = Governor.batches_charged governor in
  let* outcome = Err.of_msg Err.Bind (Binder.exec_statement view stmt) in
  let* () =
    match outcome with
    | Binder.Query (q, order) ->
        run_query_buf view q ~governor ~order ~show:Results buf
    | Binder.Explained (q, order, an) ->
        let* () =
          run_query_buf view q ~governor ~order
            ~show:(if an then Explain_analyze else Explain)
            buf
        in
        Buffer.add_string buf ("-- " ^ Telemetry.session_line sess ^ "\n");
        Ok ()
    | other ->
        (* unreachable: writes are routed to the commit queue *)
        describe_outcome buf other;
        Ok ()
  in
  Telemetry.query_served t.tel sess
    ~rows_pulled:(Governor.rows_charged governor - rows0)
    ~batches:(Governor.batches_charged governor - batches0);
  Ok ()

(* the replication line of STATUS: role, LSN positions, lag *)
let repl_line t =
  match t.hub with
  | None -> None
  | Some hub ->
      Mutex.lock t.role_mu;
      let line =
        match (t.is_standby, t.applier) with
        | true, Some a ->
            let primary =
              match t.primary_addr with
              | Some a -> Client.addr_to_string a
              | None -> "?"
            in
            Repl.standby_line (Repl.applier_stats a) ~primary
        | true, None ->
            (* mid-retarget (or a failed promotion): still a standby,
               just between streams — never claim to be a primary *)
            Printf.sprintf "repl: role=standby primary=%s connected=no"
              (match t.primary_addr with
              | Some a -> Client.addr_to_string a
              | None -> "?")
        | false, _ ->
            let hub_lsn = Repl.hub_last_seq hub in
            let shipped =
              List.fold_left
                (fun acc (s : Repl.sender_stats) -> min acc s.shipped_lsn)
                hub_lsn t.senders
            in
            let acked =
              List.fold_left
                (fun acc (s : Repl.sender_stats) -> min acc s.acked_lsn)
                hub_lsn t.senders
            in
            Printf.sprintf
              "repl: role=primary peers=%d shipped_lsn=%d acked_lsn=%d \
               hub_lsn=%d lag_records=%d retain=%d"
              (List.length t.senders) shipped acked hub_lsn (hub_lsn - shipped)
              t.cfg.repl_retain
      in
      Mutex.unlock t.role_mu;
      Some line

(* the failover line of STATUS: epoch, who holds the lease and for how
   much longer, how many election rounds this node has run *)
let failover_line t =
  match t.backend with
  | Mem _ -> None
  | Durable d ->
      if not (failover_active t.cfg) && Durable.epoch d = 0 && not (is_fenced t)
      then None
      else begin
        let now = Clock.now_ms () in
        Mutex.lock t.role_mu;
        let fenced = t.fenced in
        let standby = t.is_standby in
        let elections = t.elections in
        let primary = t.primary_addr in
        let grace = t.grace_until_ms in
        let applier = t.applier in
        let anchor =
          List.fold_left
            (fun acc (s : Repl.sender_stats) -> Float.max acc s.lease_anchor_ms)
            0. t.senders
        in
        Mutex.unlock t.role_mu;
        let role, holder, remaining =
          match fenced with
          | Some f ->
              ("fenced", Option.value f.leader ~default:"?", 0.)
          | None ->
              if standby then begin
                let deadline =
                  match applier with
                  | Some a ->
                      let st = Repl.applier_stats a in
                      Mutex.lock st.Repl.smu;
                      let v = st.Repl.lease_deadline_ms in
                      Mutex.unlock st.Repl.smu;
                      v
                  | None -> 0.
                in
                let holder =
                  if deadline > now then
                    match primary with
                    | Some a -> Client.addr_to_string a
                    | None -> "?"
                  else "-"
                in
                ("standby", holder, Float.max 0. (deadline -. now))
              end
              else
                let remaining =
                  Float.max (grace -. now)
                    (if anchor > 0. then t.cfg.lease_ms -. (now -. anchor)
                     else 0.)
                in
                let holder = if remaining > 0. then t.addr_str else "-" in
                ("primary", holder, Float.max 0. remaining)
        in
        Some
          (Printf.sprintf
             "failover: epoch=%d role=%s lease_holder=%s \
              lease_remaining_ms=%.0f elections=%d peers=%d lease_ms=%.0f"
             (Durable.epoch d) role holder remaining elections
             (List.length t.cfg.peers) t.cfg.lease_ms)
      end

let pool_line t =
  match Database.pool_stats (db_of t) with
  | None -> None
  | Some s ->
      let open Buffer_pool in
      Some
        (Printf.sprintf
           "buffer_pool: cap=%s resident=%d pinned=%d peak_pinned=%d dirty=%d \
            hit_rate=%.2f hits=%d misses=%d evictions=%d page_reads=%d \
            page_writes=%d"
           (match Database.storage_config (db_of t) with
           | Some { Database.pool_pages = Some c; _ } -> string_of_int c
           | _ -> "unbounded")
           s.resident s.pinned s.peak_pinned s.dirty (hit_rate s) s.hits
           s.misses s.evictions s.page_reads s.page_writes)

let status_report t =
  let repl =
    match (repl_line t, failover_line t) with
    | None, None -> None
    | Some a, None -> Some a
    | None, Some b -> Some b
    | Some a, Some b -> Some (a ^ "\n" ^ b)
  in
  Telemetry.render ?repl ?pool:(pool_line t) t.tel
    ~snapshot_lsn:(current_lsn t) ~sessions:(Admission.sessions t.adm)
    ~active:(Admission.active t.adm) ~queued:(Admission.queued t.adm)

let run_write_batch t sess buf run =
  let ( let* ) = Err.( let* ) in
  let iv = Ivar.create () in
  let* () = enqueue t (W_batch (run, iv)) in
  let results = Ivar.read iv in
  Err.iter_result
    (fun (stmt, result) ->
      let* outcome = result in
      describe_outcome buf outcome;
      Telemetry.write_committed t.tel sess
        ~wal_bytes:(String.length (Ast.statement_to_string stmt));
      Ok ())
    (List.combine run results)

(* Promotion: stop the inbound stream, durably bump the cluster epoch,
   flip the role.  The hub and commit tap have been live since start (a
   standby publishes what it ingests), so the moment the flag flips this
   node serves writes and REPL streams with no further wiring.  The
   epoch bump happens BEFORE the first write is accepted: every record
   this primary commits carries the new epoch, which is what fences the
   old primary's zombie stream out of the rest of the cluster. *)
let promote t =
  match t.backend with
  | Mem _ -> Error (Err.io "PROMOTE requires a durable server (serve --db DIR)")
  | Durable d ->
      Mutex.lock t.role_mu;
      if Option.is_some t.fenced then begin
        Mutex.unlock t.role_mu;
        Error
          (Err.io
             "this node was fenced out of the cluster; re-seed it from a \
              fresh backup before promoting it")
      end
      else if not t.is_standby then begin
        Mutex.unlock t.role_mu;
        Error (Err.io "already primary; PROMOTE is a standby operation")
      end
      else begin
        let applier = t.applier in
        t.applier <- None;
        Mutex.unlock t.role_mu;
        (match applier with Some a -> Repl.stop_applier a | None -> ());
        (* the applier is joined: the LSN is quiescent until writes
           start.  Flip the role only after the bump persists — on
           failure the node stays a read-only standby (its monitor will
           retry the election) rather than becoming a primary whose
           records are indistinguishable from the dead one's. *)
        match Durable.bump_epoch d with
        | Error e ->
            Error (Err.add_context "promotion aborted before taking writes" e)
        | Ok _new_epoch ->
            Mutex.lock t.role_mu;
            t.is_standby <- false;
            t.primary_addr <- None;
            t.grace_until_ms <- Clock.now_ms () +. (2. *. t.cfg.lease_ms);
            Mutex.unlock t.role_mu;
            Ok (Durable.lsn d)
      end

(* The write-refusal ladder, checked before anything is enqueued:
   fenced beats standby beats a lapsed lease.  The first two refuse with
   a typed [Fenced] error whose [redirect=<addr>] token lets [Client.run]
   re-aim the statement at the real primary (duplicate-safe: refusal
   precedes execution); the lease case is a [Resource] suspension — this
   node is still the primary, it just cannot prove it right now, so it
   degrades to read-only instead of risking a split brain. *)
let refuse_writes t what =
  match fenced_err t ~what with
  | Some e ->
      Telemetry.fenced_refused t.tel;
      Error e
  | None ->
      if standby_now t then begin
        Telemetry.fenced_refused t.tel;
        Mutex.lock t.role_mu;
        let primary = t.primary_addr in
        Mutex.unlock t.role_mu;
        Error
          (Err.fenced
             "%s refused: this node is a read-only standby (PROMOTE it, or \
              address the primary)%s"
             what
             (match primary with
             | Some a ->
                 Printf.sprintf " — the primary is redirect=%s"
                   (Client.addr_to_string a)
             | None -> ""))
      end
      else if failover_active t.cfg && not (holds_lease t) then
        Error
          (Err.resource
             "%s suspended: no standby acknowledged this primary within the \
              %.0f ms lease window, so it degrades to read-only rather than \
              risk a split brain; retry once a standby reconnects"
             what t.cfg.lease_ms)
      else Ok ()

(* execute one parsed request under one admission ticket, rendering into
   [buf]; the first failing statement stops the request *)
let run_statements t sess ~governor buf stmts =
  let ( let* ) = Err.( let* ) in
  let rec go = function
    | [] -> Ok ()
    | (s :: _ as l) when is_loggable_write s ->
        let* () = refuse_writes t "write" in
        let run, rest = span is_loggable_write l in
        let* () = run_write_batch t sess buf run in
        go rest
    | Ast.S_checkpoint :: rest ->
        let* () = refuse_writes t "CHECKPOINT" in
        let iv = Ivar.create () in
        let* () = enqueue t (W_checkpoint iv) in
        let* outcome = Ivar.read iv in
        describe_outcome buf outcome;
        go rest
    | Ast.S_backup dir :: rest ->
        let* () = refuse_writes t "BACKUP" in
        let iv = Ivar.create () in
        let* () = enqueue t (W_backup (dir, iv)) in
        let* outcome = Ivar.read iv in
        describe_outcome buf outcome;
        go rest
    | Ast.S_promote :: rest ->
        let* lsn = promote t in
        describe_outcome buf (Binder.Promoted lsn);
        go rest
    | Ast.S_status :: rest ->
        Buffer.add_string buf (status_report t);
        go rest
    | stmt :: rest ->
        let* () = run_read t sess ~governor buf stmt in
        go rest
  in
  go stmts

let parse_request payload =
  match Parser.parse_script payload with
  | exception Parser.Parse_error m -> Error (Err.parse "%s" m)
  | stmts -> Ok stmts

(* handle one STMT frame; Error means the socket write failed and the
   session should end — statement failures are answered in-band *)
let handle_request t sess conn payload =
  match parse_request payload with
  | Error e ->
      Telemetry.errored t.tel sess;
      Wire.err conn ~kind:(Err.kind_to_string (Err.kind e)) (Err.to_string e)
  | Ok stmts -> (
      match Admission.admit t.adm with
      | Error (r : Admission.refusal) ->
          (* shed load: typed refusal, nothing was executed, safe retry *)
          Telemetry.budget_refused t.tel sess;
          Wire.busy conn ~retry_after_ms:r.retry_after_ms
            (Err.to_string r.reason)
      | Ok ticket ->
          let buf = Buffer.create 256 in
          let outcome =
            Fun.protect
              ~finally:(fun () -> Admission.release t.adm ticket)
              (fun () ->
                run_statements t sess
                  ~governor:(Admission.governor ticket)
                  buf stmts)
          in
          (match outcome with
          | Ok () -> Wire.ok conn (Buffer.contents buf)
          | Error e ->
              if Err.kind e = Err.Resource then Telemetry.degraded t.tel sess
              else Telemetry.errored t.tel sess;
              Buffer.add_string buf ("error: " ^ Err.to_string e ^ "\n");
              Wire.err conn
                ~kind:(Err.kind_to_string (Err.kind e))
                (Buffer.contents buf)))

(* ---------- session + accept threads ---------- *)

let unregister_session t fd =
  Mutex.lock t.sess_mu;
  t.session_fds <- List.filter (fun f -> f != fd) t.session_fds;
  Mutex.unlock t.sess_mu

(* One REPL handshake turns this session into an outbound replication
   stream; the session ends when the stream does.  Split-brain stance:
   a standby announcing an LSN ahead of ours is the fingerprint of a
   diverged history (it was promoted, took writes, and is now talking
   to the old primary) — serving it would silently fork the data, so
   the handshake is refused with a typed error and this node keeps
   running untouched. *)
let handle_repl t conn args =
  let refuse ?(kind = "Io") msg =
    ignore (Wire.err conn ~kind msg : (unit, Err.t) result)
  in
  match (t.backend, t.hub) with
  | Mem _, _ | _, None ->
      refuse "replication requires a durable server (serve --db DIR)"
  | Durable d, Some hub -> (
      match fenced_err t ~what:"replication" with
      | Some e ->
          (* a fenced primary must not ship its superseded history (or
             grants for a lease it no longer holds); the redirect sends
             the standby to the real primary *)
          refuse ~kind:"Fenced" (Err.to_string e)
      | None ->
      if standby_now t then
        refuse
          "this node is a standby; cascading replication is not supported — \
           connect to the primary"
      else
        match args with
        | lsn_s :: rest -> (
            let peer_epoch =
              match rest with
              | e :: _ -> Option.value (int_of_string_opt e) ~default:0
              | [] -> 0
            in
            match int_of_string_opt lsn_s with
            | Some peer_lsn when peer_lsn >= 0 -> (
                Mutex.lock t.commit_mu;
                let my_lsn = Durable.lsn d in
                Mutex.unlock t.commit_mu;
                let my_epoch = Durable.epoch d in
                if peer_epoch > my_epoch then begin
                  (* the peer lives in a later epoch: an election went
                     past us while we were not looking.  Fence first,
                     then refuse — this handshake is the zombie's wake-up
                     call. *)
                  fence t ~new_epoch:peer_epoch ~leader:None;
                  refuse ~kind:"Fenced"
                    (Printf.sprintf
                       "split-brain refused: peer speaks from epoch %d but \
                        this node is still at epoch %d — this node has been \
                        superseded and is now fenced"
                       peer_epoch my_epoch)
                end
                else if peer_lsn > my_lsn then
                  refuse
                    (Printf.sprintf
                       "split-brain refused: peer is at lsn %d, ahead of this \
                        primary at lsn %d — it has a diverged history and \
                        must be re-seeded, not replicated to"
                       peer_lsn my_lsn)
                else
                  match
                    Wire.write_frame conn ~verb:"OK"
                      ~args:[ string_of_int my_epoch ]
                      (Printf.sprintf "streaming from %d" my_lsn)
                  with
                  | Error _ -> ()
                  | Ok () ->
                      let stats =
                        {
                          Repl.shipped_lsn = peer_lsn;
                          last_send_ms = Clock.now_ms ();
                          (* the handshake LSN is the standby's own
                             statement of what it has — seed the
                             semi-sync watermark there; the lease
                             anchor stays 0 until a grant is echoed *)
                          acked_lsn = peer_lsn;
                          lease_anchor_ms = 0.;
                        }
                      in
                      Mutex.lock t.role_mu;
                      t.senders <- stats :: t.senders;
                      Mutex.unlock t.role_mu;
                      Fun.protect
                        ~finally:(fun () ->
                          Mutex.lock t.role_mu;
                          t.senders <-
                            List.filter (fun s -> s != stats) t.senders;
                          Mutex.unlock t.role_mu)
                        (fun () ->
                          match
                            Repl.sender_loop ~hub
                              ~wal_path:(Wal.path ~dir:(Durable.dir d))
                              ~conn ~heartbeat_ms:(repl_heartbeat_ms /. 4.)
                              ~stats ~cursor:peer_lsn
                              ~epoch_now:(fun () -> Durable.epoch d)
                              ~lease_ms:
                                (if failover_active t.cfg then t.cfg.lease_ms
                                 else 0.)
                          with
                          | Ok () -> ()
                          | Error e ->
                              (* a typed end of stream (unservable gap,
                                 injected repl.send fault): tell the peer
                                 if the pipe still works, then drop *)
                              ignore
                                (Wire.err conn
                                   ~kind:(Err.kind_to_string (Err.kind e))
                                   (Err.to_string e)
                                  : (unit, Err.t) result)))
            | _ -> refuse "REPL handshake needs a non-negative lsn argument")
        | [] -> refuse "REPL handshake needs a non-negative lsn argument")

(* Answer an election probe with the bare facts — our address, applied
   LSN, epoch, role — plus one BALLOT: whether this node grants the
   prober its vote for the probe's target epoch.  The ledger grants at
   most one candidate per target epoch per window, which is what makes
   "two candidates both conclude Won off racing LSN snapshots"
   impossible: a quorum of grants can only assemble behind one of them
   (any two quorums share a voter, and that voter granted once).  The
   facts are answered either way — candidates rank every response, but
   count only grants toward quorum.  Ballots expire after
   [vote_window_ms] so a winner that died between collecting grants
   and promoting cannot wedge the cluster.  See DESIGN.md §15. *)
let handle_elec t conn args =
  let req_epoch, req_lsn, req_addr, req_candidate =
    match args with
    | e :: l :: a :: rest ->
        ( Option.value (int_of_string_opt e) ~default:0,
          Option.value (int_of_string_opt l) ~default:(-1),
          a,
          (* pre-flag peers always probed as candidates *)
          match rest with "f" :: _ -> false | _ -> true )
    | _ -> (0, -1, "", false)
  in
  let my_epoch = epoch_of t in
  let my_lsn = current_lsn t in
  let now = Clock.now_ms () in
  Mutex.lock t.role_mu;
  let role =
    if Option.is_some t.fenced then "fenced"
    else if t.is_standby then "standby"
    else "primary"
  in
  (* Ranked voting: the ballot goes only to a candidate this node could
     not beat itself.  The prober's history lives one epoch below its
     target; compare by (epoch, lsn, address) — the same total order
     run_election uses to rank candidates — so grants always point at
     the deterministic winner.  A stale-history candidate collects
     facts, never ballots; and when this node is not an eligible rival
     (it is the primary, or fenced) the address tie-break is waived. *)
  let hist_epoch = req_epoch - 1 in
  let outranks_me =
    hist_epoch > my_epoch
    || (hist_epoch = my_epoch
       && (req_lsn > my_lsn
          || (req_lsn = my_lsn
             && (req_addr < t.addr_str || role <> "standby"))))
  in
  let granted =
    req_addr <> "" && req_candidate
    (* an election into an epoch the cluster already reached must never
       count *)
    && req_epoch > my_epoch
    && outranks_me
    && (req_epoch > t.voted_epoch
       || (req_epoch = t.voted_epoch && req_addr = t.voted_for)
       || now -. t.voted_at_ms > vote_window_ms t.cfg)
  in
  if granted then begin
    t.voted_epoch <- req_epoch;
    t.voted_for <- req_addr;
    t.voted_at_ms <- now
  end;
  Mutex.unlock t.role_mu;
  Wire.vote conn ~addr:t.addr_str ~lsn:my_lsn ~epoch:my_epoch ~role ~granted

let session_loop t fd =
  let conn = Wire.of_fd fd in
  let sess = Telemetry.connect t.tel in
  let finish () =
    Telemetry.disconnect t.tel sess;
    unregister_session t fd;
    Wire.close conn
  in
  match Admission.open_session t.adm with
  | Error (r : Admission.refusal) ->
      Telemetry.budget_refused t.tel sess;
      ignore
        (Wire.busy conn ~retry_after_ms:r.retry_after_ms
           (Err.to_string r.reason));
      finish ()
  | Ok () ->
      Fun.protect
        ~finally:(fun () ->
          Admission.close_session t.adm;
          finish ())
        (fun () ->
          let rec loop () =
            if t.shutdown then ()
            else
              match
                Wire.read_frame ~fault:"server.read" conn
                  ~timeout_ms:t.cfg.read_timeout_ms
              with
              | Ok None -> ()
              | Ok (Some { Wire.verb = "PING"; _ }) -> (
                  match Wire.ok conn "pong" with
                  | Ok () -> loop ()
                  | Error _ -> ())
              | Ok (Some { Wire.verb = "STMT"; payload; _ }) -> (
                  match handle_request t sess conn payload with
                  | Ok () -> loop ()
                  | Error _ -> () (* peer gone *))
              | Ok (Some { Wire.verb = "ELEC"; args; _ }) -> (
                  (* an election probe (or a primary's prober): answer
                     with our position and keep the session alive *)
                  match handle_elec t conn args with
                  | Ok () -> loop ()
                  | Error _ -> ())
              | Ok (Some { Wire.verb = "REPL"; args; _ }) ->
                  (* the session becomes an outbound replication stream
                     and ends with it — no loop back to the verb reader *)
                  handle_repl t conn args
              | Ok (Some { Wire.verb; _ }) -> (
                  match
                    Wire.err conn ~kind:"Io"
                      (Printf.sprintf "unknown verb %S" verb)
                  with
                  | Ok () -> loop ()
                  | Error _ -> ())
              | Error e ->
                  (* read timeout, torn frame, or injected server.read
                     fault: answer if the pipe still works, then drop
                     the session — never hang it *)
                  Telemetry.errored t.tel sess;
                  ignore
                    (Wire.err conn
                       ~kind:(Err.kind_to_string (Err.kind e))
                       (Err.to_string e))
          in
          loop ())

(* The shutdown flag is checked under [sess_mu], the same mutex
   initiate_shutdown's one-time nudge pass takes: either this fd makes
   the list before the pass (and gets nudged), or we see the flag and
   refuse — a late-accepted session can never sit in read_frame waiting
   out the full read timeout before noticing shutdown. *)
let spawn_session t fd =
  Mutex.lock t.sess_mu;
  if t.shutdown then begin
    Mutex.unlock t.sess_mu;
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ()
  end
  else begin
    t.session_fds <- fd :: t.session_fds;
    let th = Thread.create (fun () -> session_loop t fd) () in
    t.session_threads <- th :: t.session_threads;
    Mutex.unlock t.sess_mu
  end

let accept_loop t =
  let rec loop () =
    if t.shutdown then begin
      (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
      match t.cfg.listen with
      | L_unix path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
      | L_tcp _ -> ()
    end
    else
      (* short select so shutdown is noticed without a connection *)
      match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | exception Unix.Unix_error _ -> loop ()
      | [], _, _ -> loop ()
      | _ -> (
          match Fault.check "server.accept" with
          | Error _ ->
              (* injected accept failure: shed this connection (the
                 client sees EOF and retries), keep serving *)
              (try
                 let fd, _ = Unix.accept t.listen_fd in
                 Unix.close fd
               with Unix.Unix_error _ -> ());
              loop ()
          | Ok () -> (
              match Unix.accept t.listen_fd with
              | exception Unix.Unix_error _ -> loop ()
              | fd, _ ->
                  spawn_session t fd;
                  loop ()))
  in
  loop ()

(* ---------- the failover monitor ---------- *)

(* Spawn (or re-point) the inbound replication stream.  Guarded against
   a racing shutdown: an applier created after [initiate_shutdown]'s
   stop pass already ran would never be stopped, so re-check under
   [role_mu] — either the stop pass sees the applier we set, or we see
   the flag and stop it ourselves. *)
let spawn_applier t d ~addr =
  let seed =
    match t.cfg.role with
    | Standby { repl_seed; _ } -> repl_seed
    | Primary -> 1
  in
  let ingest r =
    Mutex.lock t.commit_mu;
    let res = Durable.ingest d r in
    Mutex.unlock t.commit_mu;
    res
  in
  let a =
    Repl.start_applier ~addr ~read_timeout_ms:(repl_heartbeat_ms *. 20.)
      ~backoff_ms:25. ~seed ~lsn:(Durable.lsn d) ~ingest
      ~epoch_now:(fun () -> Durable.epoch d)
      ~observe:(fun ~epoch ~lease_ms:_ ->
        (* every grant ratchets this node's durable epoch floor, so a
           zombie stream is refused even before it ships a record *)
        if epoch > Durable.epoch d then
          ignore (Durable.set_epoch d epoch : (unit, Err.t) result))
      ~on_error:(fun _ -> ())
  in
  Mutex.lock t.role_mu;
  let racing_shutdown = t.shutdown in
  if not racing_shutdown then begin
    t.applier <- Some a;
    t.primary_addr <- Some addr
  end;
  Mutex.unlock t.role_mu;
  if racing_shutdown then Repl.stop_applier a

(* Re-point the inbound stream at a newly discovered primary.  A no-op
   when we already follow that address. *)
let retarget t d ~addr =
  Mutex.lock t.role_mu;
  let same = t.primary_addr = Some addr in
  let applier = if same then None else t.applier in
  if not same then t.applier <- None;
  Mutex.unlock t.role_mu;
  if not same then begin
    (match applier with Some a -> Repl.stop_applier a | None -> ());
    spawn_applier t d ~addr
  end

let bump_grace t ms =
  Mutex.lock t.role_mu;
  t.grace_until_ms <- Float.max t.grace_until_ms (Clock.now_ms () +. ms);
  Mutex.unlock t.role_mu

(* One election round, run on the failover thread after the lease
   observation window lapsed past the skew margin.  Deterministic:
   probe every peer, rank candidates by (epoch, applied LSN, address) —
   the newest epoch's history outranks any LSN from an older one (an
   old primary restarted on its stale WAL must never resurrect fenced
   history), then highest LSN, ties to the smallest address — and
   promote only if this node is the unique maximum AND holds a quorum
   of the full cluster's GRANTED ballots (self included).  Each peer
   grants one ballot per target epoch per window, so two candidates
   racing on shifting LSN snapshots can never both reach quorum.  A
   live primary at our epoch or above aborts the round (the lapse was
   a stall or a healed partition, not a death). *)
let run_election t d ~self =
  let now = Clock.now_ms () in
  let my_epoch = Durable.epoch d in
  let my_lsn = Durable.lsn d in
  let target = my_epoch + 1 in
  Mutex.lock t.role_mu;
  t.elections <- t.elections + 1;
  (* claim our own ballot first: granting it to a peer and then running
     as a candidate in the same window would be voting for both sides *)
  let can_self =
    target > t.voted_epoch
    || (target = t.voted_epoch && t.voted_for = self)
    || now -. t.voted_at_ms > vote_window_ms t.cfg
  in
  if can_self then begin
    t.voted_epoch <- target;
    t.voted_for <- self;
    t.voted_at_ms <- now
  end;
  Mutex.unlock t.role_mu;
  (* a failed round must release our self-ballot: two standbys that
     lapse together would otherwise each hold their own ballot fresh
     forever and withhold from the other — a split-vote livelock.  The
     release is safe because a failed round's self-ballot was never
     part of any assembled quorum (only our own, which did not form). *)
  let release_self result =
    (match result with
    | `Won _ -> ()
    | `Lost | `No_quorum | `Primary_alive _ ->
        Mutex.lock t.role_mu;
        if t.voted_epoch = target && t.voted_for = self then
          t.voted_at_ms <- 0.;
        Mutex.unlock t.role_mu);
    result
  in
  (* Even without our own ballot we still sweep the peers: an
     abstaining standby must discover the new primary (to retarget) or
     the better-placed rival; but it announces itself as a fact-finder,
     not a candidate, so it cannot pin anyone's ledger. *)
  begin
    let attempt () =
    let votes =
      List.filter_map
        (fun addr ->
          match
            Repl.probe ~addr
              ~timeout_ms:(Float.max 250. (t.cfg.lease_ms /. 2.))
              ~epoch:target ~lsn:my_lsn ~self ~candidate:can_self
          with
          | Ok v -> Some v
          | Error _ -> None)
        t.cfg.peers
    in
    let live_primary =
      List.find_opt
        (fun (v : Repl.vote) -> v.v_role = "primary" && v.v_epoch >= my_epoch)
        votes
    in
    match live_primary with
    | Some v ->
        `Primary_alive (if v.v_epoch > my_epoch then Some v.v_addr else None)
    | None ->
        let cluster = List.length t.cfg.peers + 1 in
        let quorum = (cluster / 2) + 1 in
        if 1 + List.length votes < quorum then `No_quorum
        else
          let beats_me (v : Repl.vote) =
            v.v_role = "standby"
            && (v.v_epoch > my_epoch
               || (v.v_epoch = my_epoch
                  && (v.v_lsn > my_lsn
                     || (v.v_lsn = my_lsn && v.v_addr < self))))
          in
          let grants =
            (if can_self then 1 else 0)
            + List.length
                (List.filter (fun (v : Repl.vote) -> v.v_granted) votes)
          in
          if List.exists beats_me votes then `Lost
          else if (not can_self) || grants < quorum then `No_quorum
          else
            (* promote past every epoch observed in the round, not just
               our own: bump_epoch advances from the floor we set, so
               the new epoch is strictly greater than anything any
               responder has used *)
            `Won
              (List.fold_left
                 (fun acc (v : Repl.vote) -> max acc v.v_epoch)
                 my_epoch votes)
    in
    (* Two standbys that lapse together each self-vote before the
       other's probe lands, so the first sweep can find every ballot
       withheld.  The rival's round concludes [`Lost] against our
       ranked position within milliseconds and releases its ballot, so
       a short in-round re-probe collects it — one election, not a
       drawn-out series of [`No_quorum] rounds. *)
    let rec go n =
      match attempt () with
      | `No_quorum when can_self && n < 2 ->
          Thread.delay (Float.max 20. (t.cfg.lease_ms /. 10.) /. 1000.);
          go (n + 1)
      | result -> result
    in
    release_self (go 0)
  end

(* The standby side of one monitor tick: elect when the lease
   observation window (extended by every grant the stream carries) has
   lapsed past the skew margin. *)
let standby_tick t d ~self =
  let lease = t.cfg.lease_ms in
  let now = Clock.now_ms () in
  Mutex.lock t.role_mu;
  let applier = t.applier in
  let grace = t.grace_until_ms in
  Mutex.unlock t.role_mu;
  let observed =
    match applier with
    | Some a ->
        let st = Repl.applier_stats a in
        Mutex.lock st.Repl.smu;
        let v = st.Repl.lease_deadline_ms in
        Mutex.unlock st.Repl.smu;
        v
    | None -> 0.
  in
  let deadline = Float.max observed grace in
  if now > deadline +. skew_margin_ms t.cfg then begin
    match Fault.check "server.election" with
    | Error _ ->
        (* the injected fault forfeits this round; re-arm and retry at
           the next lapse *)
        bump_grace t lease
    | Ok () -> (
        match run_election t d ~self with
        | `Won max_seen -> (
            (* ratchet the epoch floor over everything the round saw
               BEFORE bumping: a re-minted epoch would let fenced
               history back in *)
            if max_seen > Durable.epoch d then
              (match Durable.set_epoch d max_seen with
              | Ok () -> ()
              | Error _ -> ());
            match promote t with Ok _ -> () | Error _ -> bump_grace t lease)
        | `Primary_alive (Some leader) ->
            (* a successor exists: follow it *)
            (match Client.parse_addr leader with
            | Ok addr -> retarget t d ~addr
            | Error _ -> ());
            bump_grace t lease
        | `Primary_alive None | `Lost | `No_quorum ->
            (* the healed primary's grants, or the winner's promotion,
               will show up on the stream; don't spin the cluster with
               back-to-back rounds in the meantime *)
            bump_grace t lease)
  end

(* The primary side of one monitor tick: probe one peer (round-robin)
   for evidence of a successor epoch.  A fenced or superseded primary
   learns its fate here even if no standby ever reconnects to tell it. *)
let primary_tick t d ~self ~round =
  match t.cfg.peers with
  | [] -> ()
  | peers -> (
      let addr = List.nth peers (round mod List.length peers) in
      let my_epoch = Durable.epoch d in
      let my_lsn = Durable.lsn d in
      match
        Repl.probe ~addr
          ~timeout_ms:(Float.max 250. (t.cfg.lease_ms /. 2.))
          ~epoch:my_epoch ~lsn:my_lsn ~self ~candidate:false
      with
      | Error _ -> ()
      | Ok v ->
          if v.Repl.v_epoch > my_epoch then
            fence t ~new_epoch:v.v_epoch
              ~leader:(if v.v_role = "primary" then Some v.v_addr else None)
          else if v.v_role = "primary" && v.v_epoch = my_epoch then
            (* two primaries inside one epoch — the state the lease is
               built to prevent; if it happens anyway (operator promoted
               by hand, clocks jumped), the deterministic (lsn, addr)
               tie-break fences the loser on both sides *)
            if v.v_lsn > my_lsn || (v.v_lsn = my_lsn && v.v_addr < self) then
              fence t ~new_epoch:my_epoch ~leader:(Some v.v_addr))

(* The monitor thread: poll at a tenth of the lease.  Standbys watch
   their lease-observation window; primaries probe for a successor
   roughly once per lease interval. *)
let failover_loop t =
  match t.backend with
  | Mem _ -> ()
  | Durable d ->
      let self = t.addr_str in
      let poll = Float.max 20. (t.cfg.lease_ms /. 10.) in
      let rec loop round =
        if t.shutdown then ()
        else begin
          (if standby_now t then standby_tick t d ~self
           else if (not (is_fenced t)) && round mod 10 = 0 then
             primary_tick t d ~self ~round:(round / 10));
          Clock.sleep_ms poll;
          loop (round + 1)
        end
      in
      loop 0

(* ---------- lifecycle ---------- *)

let bind_listener listen =
  Err.protect ~kind:Err.Io (fun () ->
      match listen with
      | L_unix path ->
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          (try Unix.unlink path with Unix.Unix_error _ -> ());
          Unix.bind fd (Unix.ADDR_UNIX path);
          Unix.listen fd 64;
          (fd, "unix:" ^ path)
      | L_tcp (host, port) ->
          let addr =
            match Wire.resolve_host host with
            | Ok a -> a
            | Error e -> Err.raise_ e
          in
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.setsockopt fd Unix.SO_REUSEADDR true;
          Unix.bind fd (Unix.ADDR_INET (addr, port));
          Unix.listen fd 64;
          let bound =
            match Unix.getsockname fd with
            | Unix.ADDR_INET (a, p) ->
                Printf.sprintf "tcp:%s:%d" (Unix.string_of_inet_addr a) p
            | _ -> Printf.sprintf "tcp:%s:%d" host port
          in
          (fd, bound))

let start cfg =
  let ( let* ) = Err.( let* ) in
  let* () =
    match (cfg.role, cfg.db_dir) with
    | Standby _, None ->
        Error
          (Err.io
             "a standby must be durable (standby --db DIR): it has no other \
              place to log the shipped records")
    | _ -> Ok ()
  in
  let* backend, recovery =
    match cfg.db_dir with
    | None ->
        Ok (Mem { db = Database.create ?storage:cfg.storage (); mem_lsn = 0 },
            None)
    | Some dir ->
        let* d, r =
          Durable.open_ ?checkpoint_every:cfg.checkpoint_every
            ?storage:cfg.storage ~dir ()
        in
        Ok (Durable d, Some r)
  in
  match bind_listener cfg.listen with
  | Error e ->
      (match backend with Durable d -> Durable.close d | Mem _ -> ());
      Error e
  | Ok (listen_fd, addr_str) ->
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
       with Invalid_argument _ -> ());
      (* Every durable node gets a hub and a commit tap, whatever its
         role: a standby publishes what it ingests, so at PROMOTE the
         outbound machinery is already warm, and a primary's hub starts
         covering records from its recovered LSN. *)
      let hub =
        match backend with
        | Durable d ->
            let hub =
              Repl.create_hub ~retain:cfg.repl_retain ~lsn:(Durable.lsn d)
            in
            Durable.set_commit_tap d (Some (Repl.publish hub));
            Some hub
        | Mem _ -> None
      in
      let t =
        {
          cfg;
          backend;
          hub;
          role_mu = Mutex.create ();
          is_standby = (match cfg.role with Standby _ -> true | Primary -> false);
          applier = None;
          senders = [];
          fenced = None;
          primary_addr =
            (match cfg.role with
            | Standby { primary; _ } -> Some primary
            | Primary -> None);
          elections = 0;
          (* boot grace: give the cluster 3 leases to find each other
             before anyone suspends writes or calls an election *)
          grace_until_ms = Clock.now_ms () +. (3. *. cfg.lease_ms);
          voted_epoch = 0;
          voted_for = "";
          voted_at_ms = 0.;
          adm = Admission.create cfg.admission;
          tel = Telemetry.create ();
          snaps = Snapshot.create ();
          commit_mu = Mutex.create ();
          q_mu = Mutex.create ();
          q_cv = Condition.create ();
          queue = Queue.create ();
          shutdown = false;
          fatal = None;
          listen_fd;
          addr_str;
          sess_mu = Mutex.create ();
          session_fds = [];
          session_threads = [];
          core_threads = [];
          fin_mu = Mutex.create ();
          finalized = false;
        }
      in
      (match (cfg.role, backend) with
      | Standby { primary; _ }, Durable d -> spawn_applier t d ~addr:primary
      | _ -> ());
      t.core_threads <-
        [ Thread.create commit_loop t; Thread.create accept_loop t ]
        @ (match backend with
          | Durable _ when failover_active cfg ->
              [ Thread.create failover_loop t ]
          | _ -> []);
      Ok (t, recovery)

let wait t =
  List.iter Thread.join t.core_threads;
  (* accept thread is gone: the session list can only shrink now *)
  Mutex.lock t.sess_mu;
  let sessions = t.session_threads in
  Mutex.unlock t.sess_mu;
  List.iter Thread.join sessions;
  Mutex.lock t.fin_mu;
  let first = not t.finalized in
  t.finalized <- true;
  Mutex.unlock t.fin_mu;
  if first then
    (match t.backend with Durable d -> Durable.close d | Mem _ -> ());
  match t.fatal with None -> Ok () | Some e -> Error e

let stop t =
  initiate_shutdown t;
  ignore (wait t)
