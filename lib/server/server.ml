(* The session server: one accept thread, one commit thread, one thread
   per session.

   Write path: session threads never touch the WAL or the database
   directly — they enqueue statement runs on the commit queue and block
   on an ivar.  The commit thread drains the whole queue each wake-up
   and commits every drained run with ONE fsync (Durable.exec_grouped),
   which is where group commit amortization comes from: concurrency in
   the arrival process directly becomes batching in the log.

   Read path: session threads take the commit lock just long enough to
   stamp an LSN and obtain a frozen snapshot (Snapshot.get), then run
   the query with zero shared mutable state.  Writers committing
   concurrently are invisible to an in-flight reader by construction. *)

open Eager_storage
open Eager_exec
open Eager_core
open Eager_opt
open Eager_parser
open Eager_durable
open Eager_robust

type listen = L_unix of string | L_tcp of string * int

type role = Primary | Standby of { primary : Client.addr; repl_seed : int }

type config = {
  listen : listen;
  admission : Admission.config;
  read_timeout_ms : float;
  db_dir : string option;
  checkpoint_every : int option;
  die_on_broken_wal : bool;
  role : role;
  repl_retain : int;
}

let default_config listen =
  {
    listen;
    admission = Admission.default_config;
    read_timeout_ms = 30_000.;
    db_dir = None;
    checkpoint_every = None;
    die_on_broken_wal = false;
    role = Primary;
    repl_retain = 1024;
  }

(* how long a standby waits between heartbeats before declaring the
   stream dead; senders heartbeat at a quarter of this *)
let repl_heartbeat_ms = 250.

(* a write-once cell the commit thread fills and a session thread waits on *)
module Ivar = struct
  type 'a t = { mu : Mutex.t; cv : Condition.t; mutable v : 'a option }

  let create () = { mu = Mutex.create (); cv = Condition.create (); v = None }

  let fill t v =
    Mutex.lock t.mu;
    t.v <- Some v;
    Condition.broadcast t.cv;
    Mutex.unlock t.mu

  let read t =
    Mutex.lock t.mu;
    while Option.is_none t.v do
      Condition.wait t.cv t.mu
    done;
    let v = Option.get t.v in
    Mutex.unlock t.mu;
    v
end

type write_req =
  | W_batch of Ast.statement list * (Binder.outcome, Err.t) result list Ivar.t
      (** a contiguous run of loggable writes from one request *)
  | W_checkpoint of (Binder.outcome, Err.t) result Ivar.t
  | W_backup of string * (Binder.outcome, Err.t) result Ivar.t
      (** online hot backup: a commit-queue barrier, so the snapshot and
          WAL tail it seals describe one quiesced instant — without ever
          blocking readers, who run on frozen snapshots anyway *)

type backend =
  | Durable of Durable.t
  | Mem of { db : Database.t; mutable mem_lsn : int }

type t = {
  cfg : config;
  backend : backend;
  adm : Admission.t;
  tel : Telemetry.t;
  snaps : Snapshot.t;
  commit_mu : Mutex.t;  (* apply vs snapshot exclusion *)
  q_mu : Mutex.t;
  q_cv : Condition.t;
  queue : write_req Queue.t;
  mutable shutdown : bool;
  mutable fatal : Err.t option;
  listen_fd : Unix.file_descr;
  addr_str : string;
  sess_mu : Mutex.t;
  mutable session_fds : Unix.file_descr list;
  mutable session_threads : Thread.t list;
  mutable core_threads : Thread.t list;  (* commit + accept *)
  fin_mu : Mutex.t;
  mutable finalized : bool;
  (* replication *)
  hub : Repl.hub option;  (* Some iff the backend is durable *)
  role_mu : Mutex.t;  (* guards the fields below *)
  mutable is_standby : bool;
  mutable applier : Repl.applier option;
  mutable senders : Repl.sender_stats list;  (* live outbound streams *)
}

let bound_addr t = t.addr_str
let db_of t = match t.backend with Durable d -> Durable.db d | Mem m -> m.db

let current_lsn t =
  match t.backend with Durable d -> Durable.lsn d | Mem m -> m.mem_lsn

(* ---------- shutdown plumbing ---------- *)

(* idempotent, join-free: safe to call from the commit thread itself *)
let initiate_shutdown t =
  Mutex.lock t.q_mu;
  let first = not t.shutdown in
  t.shutdown <- true;
  Condition.broadcast t.q_cv;
  Mutex.unlock t.q_mu;
  if first then begin
    (* nudge every live session off its blocking select *)
    Mutex.lock t.sess_mu;
    List.iter
      (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      t.session_fds;
    Mutex.unlock t.sess_mu;
    (* wake outbound replication streams and stop the inbound one *)
    (match t.hub with Some hub -> Repl.close_hub hub | None -> ());
    Mutex.lock t.role_mu;
    let applier = t.applier in
    t.applier <- None;
    Mutex.unlock t.role_mu;
    match applier with Some a -> Repl.stop_applier a | None -> ()
  end

let set_fatal t e =
  Mutex.lock t.q_mu;
  if Option.is_none t.fatal then t.fatal <- Some e;
  Mutex.unlock t.q_mu;
  initiate_shutdown t

(* ---------- commit thread ---------- *)

let rec take n l =
  if n = 0 then ([], l)
  else
    match l with
    | [] -> ([], [])
    | x :: rest ->
        let a, b = take (n - 1) rest in
        (x :: a, b)

(* commit the drained batches in arrival order; contiguous W_batch runs
   share one group commit, W_checkpoint acts as a barrier *)
let process_drain t reqs =
  Mutex.lock t.commit_mu;
  let flush_batches = function
    | [] -> ()
    | batches ->
        let all = List.concat_map fst batches in
        let results =
          match t.backend with
          | Durable d ->
              let rs = Durable.exec_grouped d all in
              Telemetry.group_commit t.tel ~statements:(List.length all);
              rs
          | Mem m ->
              List.map
                (fun s ->
                  match Err.of_msg Err.Bind (Binder.exec_statement m.db s) with
                  | Ok o ->
                      m.mem_lsn <- m.mem_lsn + 1;
                      Ok o
                  | Error e -> Error e)
                all
        in
        let rec give rs = function
          | [] -> ()
          | (stmts, iv) :: rest ->
              let mine, rs' = take (List.length stmts) rs in
              Ivar.fill iv mine;
              give rs' rest
        in
        give results batches
  in
  let rec go acc = function
    | [] -> flush_batches (List.rev acc)
    | W_batch (stmts, iv) :: rest -> go ((stmts, iv) :: acc) rest
    | W_checkpoint iv :: rest ->
        flush_batches (List.rev acc);
        let r =
          match t.backend with
          | Durable d ->
              Result.map (fun l -> Binder.Checkpointed l) (Durable.checkpoint d)
          | Mem _ ->
              Error
                (Err.io "CHECKPOINT requires a durable server (serve --db DIR)")
        in
        Ivar.fill iv r;
        go [] rest
    | W_backup (dir, iv) :: rest ->
        flush_batches (List.rev acc);
        let r =
          match t.backend with
          | Durable d ->
              Result.map
                (fun lsn -> Binder.Backed_up { dir; lsn })
                (Durable.backup d ~dir)
          | Mem _ ->
              Error (Err.io "BACKUP requires a durable server (serve --db DIR)")
        in
        Ivar.fill iv r;
        go [] rest
  in
  go [] reqs;
  Mutex.unlock t.commit_mu

let commit_loop t =
  let rec loop () =
    Mutex.lock t.q_mu;
    while Queue.is_empty t.queue && not t.shutdown do
      Condition.wait t.q_cv t.q_mu
    done;
    let drained = List.of_seq (Queue.to_seq t.queue) in
    Queue.clear t.queue;
    let stopping = t.shutdown && drained = [] in
    Mutex.unlock t.q_mu;
    if stopping then ()
    else begin
      process_drain t drained;
      (match t.backend with
      | Durable d when t.cfg.die_on_broken_wal && Durable.wal_broken d ->
          set_fatal t
            (Err.io
               "write-ahead log poisoned mid-commit; halting (die-on-broken-wal)")
      | _ -> ());
      loop ()
    end
  in
  loop ()

(* Refuse new work once shutdown has begun.  The commit thread exits
   as soon as (shutdown && queue empty) holds under [q_mu]; an enqueue
   racing past that check would park its session on an ivar nobody will
   ever fill, and [wait] (which joins session threads) would deadlock.
   Checking the flag under the same mutex closes the race: either the
   commit thread sees our request before exiting, or we see the flag. *)
let enqueue t req =
  Mutex.lock t.q_mu;
  if t.shutdown then begin
    Mutex.unlock t.q_mu;
    Error (Err.io "server is shutting down; statement not executed")
  end
  else begin
    Queue.add req t.queue;
    Condition.signal t.q_cv;
    Mutex.unlock t.q_mu;
    Ok ()
  end

(* ---------- query rendering (the server-side twin of bin's printer) ---------- *)

let render_table buf heap =
  let schema = Heap.schema heap in
  let headers =
    Array.map (fun (c, _) -> Eager_schema.Colref.to_string c)
      (Eager_schema.Schema.cols schema)
  in
  let rows =
    Heap.to_list heap
    |> List.map (fun row -> Array.map Eager_value.Value.to_string row)
  in
  let ncols = Array.length headers in
  let widths = Array.map String.length headers in
  List.iter
    (fun row ->
      Array.iteri (fun i s -> widths.(i) <- max widths.(i) (String.length s)) row)
    rows;
  let line cells =
    String.concat " | "
      (List.init ncols (fun i ->
           let s = if i < Array.length cells then cells.(i) else "" in
           s ^ String.make (widths.(i) - String.length s) ' '))
  in
  let out s =
    Buffer.add_string buf s;
    Buffer.add_char buf '\n'
  in
  out (line headers);
  out
    (String.concat "-+-"
       (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
  List.iter (fun r -> out (line r)) rows;
  Buffer.add_string buf (Printf.sprintf "(%d rows)\n" (List.length rows))

type show = Results | Explain | Explain_analyze

let run_query_buf db (q : Binder.bound_query) ~governor ~order ~show buf =
  let ( let* ) = Err.( let* ) in
  let bprintf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let options = { Exec.default_options with governor } in
  let checked plan k =
    let* heap, stats = Exec.run_checked ~options db plan in
    k (heap, stats);
    Ok ()
  in
  let analyze plan =
    let t0 = Clock.now_ms () in
    checked (Binder.apply_order order plan) (fun (heap, stats) ->
        bprintf "%s(%d rows in %.2f ms)\n" (Optree.to_string stats)
          (Heap.length heap)
          (Clock.now_ms () -. t0))
  in
  let finish plan =
    match show with
    | Explain ->
        bprintf "%s\n"
          (Eager_algebra.Plan.to_string (Binder.apply_order order plan));
        Ok ()
    | Explain_analyze -> analyze plan
    | Results ->
        checked (Binder.apply_order order plan) (fun (heap, _) ->
            render_table buf heap)
  in
  match q with
  | Binder.Grouped input -> (
      match Canonical.of_input db input with
      | Ok cq -> (
          let* decision = Planner.decide ~governor db cq in
          match show with
          | Explain ->
              Buffer.add_string buf (Explain.text db decision);
              if order <> [] then bprintf "-- final output sorted per ORDER BY\n";
              Ok ()
          | Explain_analyze ->
              bprintf "-- plan: %s\n"
                (Planner.kind_to_string decision.Planner.chosen_kind);
              analyze decision.Planner.chosen
          | Results ->
              let plan = Binder.apply_order order decision.Planner.chosen in
              checked plan (fun (heap, _) ->
                  render_table buf heap;
                  bprintf "-- plan: %s\n"
                    (Planner.kind_to_string decision.Planner.chosen_kind)))
      | Error reason -> (
          match Binder.to_plan db q with
          | Ok plan ->
              if show <> Results then
                bprintf "-- not in the transformable class: %s\n" reason;
              finish plan
          | Error msg -> Error (Err.bind "%s" msg)))
  | _ -> (
      match Binder.to_plan db q with
      | Ok plan -> finish plan
      | Error msg -> Error (Err.bind "%s" msg))

(* ---------- per-request statement execution ---------- *)

let is_loggable_write = function
  | Ast.S_create_table _ | Ast.S_create_domain _ | Ast.S_create_view _
  | Ast.S_create_index _ | Ast.S_insert _ | Ast.S_update _ | Ast.S_delete _ ->
      true
  | Ast.S_select _ | Ast.S_explain _ | Ast.S_checkpoint | Ast.S_status
  | Ast.S_backup _ | Ast.S_promote ->
      false

let rec span p = function
  | x :: rest when p x ->
      let a, b = span p rest in
      (x :: a, b)
  | l -> ([], l)

let describe_outcome buf = function
  | Binder.Created msg -> Buffer.add_string buf (msg ^ "\n")
  | Binder.Inserted n -> Buffer.add_string buf (Printf.sprintf "%d row(s) inserted\n" n)
  | Binder.Updated n -> Buffer.add_string buf (Printf.sprintf "%d row(s) updated\n" n)
  | Binder.Deleted n -> Buffer.add_string buf (Printf.sprintf "%d row(s) deleted\n" n)
  | Binder.Checkpointed lsn ->
      Buffer.add_string buf (Printf.sprintf "checkpointed at wal lsn %d\n" lsn)
  | Binder.Backed_up { dir; lsn } ->
      Buffer.add_string buf
        (Printf.sprintf "backup written to %s at wal lsn %d\n" dir lsn)
  | Binder.Promoted lsn ->
      Buffer.add_string buf
        (Printf.sprintf "promoted to primary at wal lsn %d\n" lsn)
  | Binder.Query _ | Binder.Explained _ -> ()

(* a frozen reader view stamped with the current LSN; the commit lock is
   held only for the stamp-and-copy, never during query execution *)
let reader_snapshot t =
  Mutex.lock t.commit_mu;
  let lsn = current_lsn t in
  let view = Snapshot.get t.snaps ~lsn ~db:(db_of t) in
  Mutex.unlock t.commit_mu;
  view

let run_read t sess ~governor buf stmt =
  let ( let* ) = Err.( let* ) in
  let view = reader_snapshot t in
  let rows0 = Governor.rows_charged governor in
  let batches0 = Governor.batches_charged governor in
  let* outcome = Err.of_msg Err.Bind (Binder.exec_statement view stmt) in
  let* () =
    match outcome with
    | Binder.Query (q, order) ->
        run_query_buf view q ~governor ~order ~show:Results buf
    | Binder.Explained (q, order, an) ->
        let* () =
          run_query_buf view q ~governor ~order
            ~show:(if an then Explain_analyze else Explain)
            buf
        in
        Buffer.add_string buf ("-- " ^ Telemetry.session_line sess ^ "\n");
        Ok ()
    | other ->
        (* unreachable: writes are routed to the commit queue *)
        describe_outcome buf other;
        Ok ()
  in
  Telemetry.query_served t.tel sess
    ~rows_pulled:(Governor.rows_charged governor - rows0)
    ~batches:(Governor.batches_charged governor - batches0);
  Ok ()

(* the replication line of STATUS: role, LSN positions, lag *)
let repl_line t =
  match t.hub with
  | None -> None
  | Some hub ->
      Mutex.lock t.role_mu;
      let line =
        match (t.is_standby, t.applier) with
        | true, Some a ->
            let primary =
              match t.cfg.role with
              | Standby { primary; _ } -> Client.addr_to_string primary
              | Primary -> "?"
            in
            Repl.standby_line (Repl.applier_stats a) ~primary
        | _ ->
            let hub_lsn = Repl.hub_last_seq hub in
            let shipped =
              List.fold_left
                (fun acc (s : Repl.sender_stats) -> min acc s.shipped_lsn)
                hub_lsn t.senders
            in
            Printf.sprintf
              "repl: role=primary peers=%d shipped_lsn=%d hub_lsn=%d \
               lag_records=%d retain=%d"
              (List.length t.senders) shipped hub_lsn (hub_lsn - shipped)
              t.cfg.repl_retain
      in
      Mutex.unlock t.role_mu;
      Some line

let status_report t =
  Telemetry.render ?repl:(repl_line t) t.tel ~snapshot_lsn:(current_lsn t)
    ~sessions:(Admission.sessions t.adm) ~active:(Admission.active t.adm)
    ~queued:(Admission.queued t.adm)

let run_write_batch t sess buf run =
  let ( let* ) = Err.( let* ) in
  let iv = Ivar.create () in
  let* () = enqueue t (W_batch (run, iv)) in
  let results = Ivar.read iv in
  Err.iter_result
    (fun (stmt, result) ->
      let* outcome = result in
      describe_outcome buf outcome;
      Telemetry.write_committed t.tel sess
        ~wal_bytes:(String.length (Ast.statement_to_string stmt));
      Ok ())
    (List.combine run results)

(* Promotion: stop the inbound stream, flip the role.  The hub and
   commit tap have been live since start (a standby publishes what it
   ingests), so the moment the flag flips this node serves writes and
   REPL streams with no further wiring. *)
let promote t =
  match t.backend with
  | Mem _ -> Error (Err.io "PROMOTE requires a durable server (serve --db DIR)")
  | Durable d ->
      Mutex.lock t.role_mu;
      if not t.is_standby then begin
        Mutex.unlock t.role_mu;
        Error (Err.io "already primary; PROMOTE is a standby operation")
      end
      else begin
        let applier = t.applier in
        t.applier <- None;
        t.is_standby <- false;
        Mutex.unlock t.role_mu;
        (match applier with Some a -> Repl.stop_applier a | None -> ());
        (* the applier is joined: the LSN is quiescent until writes start *)
        Ok (Durable.lsn d)
      end

let standby_now t =
  Mutex.lock t.role_mu;
  let v = t.is_standby in
  Mutex.unlock t.role_mu;
  v

let refuse_on_standby t what =
  if standby_now t then
    Error
      (Err.io "%s refused: this node is a read-only standby (PROMOTE it, or \
               address the primary)"
         what)
  else Ok ()

(* execute one parsed request under one admission ticket, rendering into
   [buf]; the first failing statement stops the request *)
let run_statements t sess ~governor buf stmts =
  let ( let* ) = Err.( let* ) in
  let rec go = function
    | [] -> Ok ()
    | (s :: _ as l) when is_loggable_write s ->
        let* () = refuse_on_standby t "write" in
        let run, rest = span is_loggable_write l in
        let* () = run_write_batch t sess buf run in
        go rest
    | Ast.S_checkpoint :: rest ->
        let* () = refuse_on_standby t "CHECKPOINT" in
        let iv = Ivar.create () in
        let* () = enqueue t (W_checkpoint iv) in
        let* outcome = Ivar.read iv in
        describe_outcome buf outcome;
        go rest
    | Ast.S_backup dir :: rest ->
        let* () = refuse_on_standby t "BACKUP" in
        let iv = Ivar.create () in
        let* () = enqueue t (W_backup (dir, iv)) in
        let* outcome = Ivar.read iv in
        describe_outcome buf outcome;
        go rest
    | Ast.S_promote :: rest ->
        let* lsn = promote t in
        describe_outcome buf (Binder.Promoted lsn);
        go rest
    | Ast.S_status :: rest ->
        Buffer.add_string buf (status_report t);
        go rest
    | stmt :: rest ->
        let* () = run_read t sess ~governor buf stmt in
        go rest
  in
  go stmts

let parse_request payload =
  match Parser.parse_script payload with
  | exception Parser.Parse_error m -> Error (Err.parse "%s" m)
  | stmts -> Ok stmts

(* handle one STMT frame; Error means the socket write failed and the
   session should end — statement failures are answered in-band *)
let handle_request t sess conn payload =
  match parse_request payload with
  | Error e ->
      Telemetry.errored t.tel sess;
      Wire.err conn ~kind:(Err.kind_to_string (Err.kind e)) (Err.to_string e)
  | Ok stmts -> (
      match Admission.admit t.adm with
      | Error (r : Admission.refusal) ->
          (* shed load: typed refusal, nothing was executed, safe retry *)
          Telemetry.budget_refused t.tel sess;
          Wire.busy conn ~retry_after_ms:r.retry_after_ms
            (Err.to_string r.reason)
      | Ok ticket ->
          let buf = Buffer.create 256 in
          let outcome =
            Fun.protect
              ~finally:(fun () -> Admission.release t.adm ticket)
              (fun () ->
                run_statements t sess
                  ~governor:(Admission.governor ticket)
                  buf stmts)
          in
          (match outcome with
          | Ok () -> Wire.ok conn (Buffer.contents buf)
          | Error e ->
              if Err.kind e = Err.Resource then Telemetry.degraded t.tel sess
              else Telemetry.errored t.tel sess;
              Buffer.add_string buf ("error: " ^ Err.to_string e ^ "\n");
              Wire.err conn
                ~kind:(Err.kind_to_string (Err.kind e))
                (Buffer.contents buf)))

(* ---------- session + accept threads ---------- *)

let unregister_session t fd =
  Mutex.lock t.sess_mu;
  t.session_fds <- List.filter (fun f -> f != fd) t.session_fds;
  Mutex.unlock t.sess_mu

(* One REPL handshake turns this session into an outbound replication
   stream; the session ends when the stream does.  Split-brain stance:
   a standby announcing an LSN ahead of ours is the fingerprint of a
   diverged history (it was promoted, took writes, and is now talking
   to the old primary) — serving it would silently fork the data, so
   the handshake is refused with a typed error and this node keeps
   running untouched. *)
let handle_repl t conn args =
  let refuse msg = ignore (Wire.err conn ~kind:"Io" msg : (unit, Err.t) result) in
  match (t.backend, t.hub) with
  | Mem _, _ | _, None ->
      refuse "replication requires a durable server (serve --db DIR)"
  | Durable d, Some hub -> (
      if standby_now t then
        refuse
          "this node is a standby; cascading replication is not supported — \
           connect to the primary"
      else
        match args with
        | lsn_s :: _ -> (
            match int_of_string_opt lsn_s with
            | Some peer_lsn when peer_lsn >= 0 -> (
                Mutex.lock t.commit_mu;
                let my_lsn = Durable.lsn d in
                Mutex.unlock t.commit_mu;
                if peer_lsn > my_lsn then
                  refuse
                    (Printf.sprintf
                       "split-brain refused: peer is at lsn %d, ahead of this \
                        primary at lsn %d — it has a diverged history and \
                        must be re-seeded, not replicated to"
                       peer_lsn my_lsn)
                else
                  match Wire.ok conn (Printf.sprintf "streaming from %d" my_lsn) with
                  | Error _ -> ()
                  | Ok () ->
                      let stats = { Repl.shipped_lsn = peer_lsn } in
                      Mutex.lock t.role_mu;
                      t.senders <- stats :: t.senders;
                      Mutex.unlock t.role_mu;
                      Fun.protect
                        ~finally:(fun () ->
                          Mutex.lock t.role_mu;
                          t.senders <-
                            List.filter (fun s -> s != stats) t.senders;
                          Mutex.unlock t.role_mu)
                        (fun () ->
                          match
                            Repl.sender_loop ~hub
                              ~wal_path:(Wal.path ~dir:(Durable.dir d))
                              ~conn ~heartbeat_ms:(repl_heartbeat_ms /. 4.)
                              ~stats ~cursor:peer_lsn
                          with
                          | Ok () -> ()
                          | Error e ->
                              (* a typed end of stream (unservable gap,
                                 injected repl.send fault): tell the peer
                                 if the pipe still works, then drop *)
                              ignore
                                (Wire.err conn
                                   ~kind:(Err.kind_to_string (Err.kind e))
                                   (Err.to_string e)
                                  : (unit, Err.t) result)))
            | _ -> refuse "REPL handshake needs a non-negative lsn argument")
        | [] -> refuse "REPL handshake needs a non-negative lsn argument")

let session_loop t fd =
  let conn = Wire.of_fd fd in
  let sess = Telemetry.connect t.tel in
  let finish () =
    Telemetry.disconnect t.tel sess;
    unregister_session t fd;
    Wire.close conn
  in
  match Admission.open_session t.adm with
  | Error (r : Admission.refusal) ->
      Telemetry.budget_refused t.tel sess;
      ignore
        (Wire.busy conn ~retry_after_ms:r.retry_after_ms
           (Err.to_string r.reason));
      finish ()
  | Ok () ->
      Fun.protect
        ~finally:(fun () ->
          Admission.close_session t.adm;
          finish ())
        (fun () ->
          let rec loop () =
            if t.shutdown then ()
            else
              match
                Wire.read_frame ~fault:"server.read" conn
                  ~timeout_ms:t.cfg.read_timeout_ms
              with
              | Ok None -> ()
              | Ok (Some { Wire.verb = "PING"; _ }) -> (
                  match Wire.ok conn "pong" with
                  | Ok () -> loop ()
                  | Error _ -> ())
              | Ok (Some { Wire.verb = "STMT"; payload; _ }) -> (
                  match handle_request t sess conn payload with
                  | Ok () -> loop ()
                  | Error _ -> () (* peer gone *))
              | Ok (Some { Wire.verb = "REPL"; args; _ }) ->
                  (* the session becomes an outbound replication stream
                     and ends with it — no loop back to the verb reader *)
                  handle_repl t conn args
              | Ok (Some { Wire.verb; _ }) -> (
                  match
                    Wire.err conn ~kind:"Io"
                      (Printf.sprintf "unknown verb %S" verb)
                  with
                  | Ok () -> loop ()
                  | Error _ -> ())
              | Error e ->
                  (* read timeout, torn frame, or injected server.read
                     fault: answer if the pipe still works, then drop
                     the session — never hang it *)
                  Telemetry.errored t.tel sess;
                  ignore
                    (Wire.err conn
                       ~kind:(Err.kind_to_string (Err.kind e))
                       (Err.to_string e))
          in
          loop ())

(* The shutdown flag is checked under [sess_mu], the same mutex
   initiate_shutdown's one-time nudge pass takes: either this fd makes
   the list before the pass (and gets nudged), or we see the flag and
   refuse — a late-accepted session can never sit in read_frame waiting
   out the full read timeout before noticing shutdown. *)
let spawn_session t fd =
  Mutex.lock t.sess_mu;
  if t.shutdown then begin
    Mutex.unlock t.sess_mu;
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ()
  end
  else begin
    t.session_fds <- fd :: t.session_fds;
    let th = Thread.create (fun () -> session_loop t fd) () in
    t.session_threads <- th :: t.session_threads;
    Mutex.unlock t.sess_mu
  end

let accept_loop t =
  let rec loop () =
    if t.shutdown then begin
      (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
      match t.cfg.listen with
      | L_unix path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
      | L_tcp _ -> ()
    end
    else
      (* short select so shutdown is noticed without a connection *)
      match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | exception Unix.Unix_error _ -> loop ()
      | [], _, _ -> loop ()
      | _ -> (
          match Fault.check "server.accept" with
          | Error _ ->
              (* injected accept failure: shed this connection (the
                 client sees EOF and retries), keep serving *)
              (try
                 let fd, _ = Unix.accept t.listen_fd in
                 Unix.close fd
               with Unix.Unix_error _ -> ());
              loop ()
          | Ok () -> (
              match Unix.accept t.listen_fd with
              | exception Unix.Unix_error _ -> loop ()
              | fd, _ ->
                  spawn_session t fd;
                  loop ()))
  in
  loop ()

(* ---------- lifecycle ---------- *)

let bind_listener listen =
  Err.protect ~kind:Err.Io (fun () ->
      match listen with
      | L_unix path ->
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          (try Unix.unlink path with Unix.Unix_error _ -> ());
          Unix.bind fd (Unix.ADDR_UNIX path);
          Unix.listen fd 64;
          (fd, "unix:" ^ path)
      | L_tcp (host, port) ->
          let addr =
            match Wire.resolve_host host with
            | Ok a -> a
            | Error e -> Err.raise_ e
          in
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.setsockopt fd Unix.SO_REUSEADDR true;
          Unix.bind fd (Unix.ADDR_INET (addr, port));
          Unix.listen fd 64;
          let bound =
            match Unix.getsockname fd with
            | Unix.ADDR_INET (a, p) ->
                Printf.sprintf "tcp:%s:%d" (Unix.string_of_inet_addr a) p
            | _ -> Printf.sprintf "tcp:%s:%d" host port
          in
          (fd, bound))

let start cfg =
  let ( let* ) = Err.( let* ) in
  let* () =
    match (cfg.role, cfg.db_dir) with
    | Standby _, None ->
        Error
          (Err.io
             "a standby must be durable (standby --db DIR): it has no other \
              place to log the shipped records")
    | _ -> Ok ()
  in
  let* backend, recovery =
    match cfg.db_dir with
    | None -> Ok (Mem { db = Database.create (); mem_lsn = 0 }, None)
    | Some dir ->
        let* d, r =
          Durable.open_ ?checkpoint_every:cfg.checkpoint_every ~dir ()
        in
        Ok (Durable d, Some r)
  in
  match bind_listener cfg.listen with
  | Error e ->
      (match backend with Durable d -> Durable.close d | Mem _ -> ());
      Error e
  | Ok (listen_fd, addr_str) ->
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
       with Invalid_argument _ -> ());
      (* Every durable node gets a hub and a commit tap, whatever its
         role: a standby publishes what it ingests, so at PROMOTE the
         outbound machinery is already warm, and a primary's hub starts
         covering records from its recovered LSN. *)
      let hub =
        match backend with
        | Durable d ->
            let hub =
              Repl.create_hub ~retain:cfg.repl_retain ~lsn:(Durable.lsn d)
            in
            Durable.set_commit_tap d (Some (Repl.publish hub));
            Some hub
        | Mem _ -> None
      in
      let t =
        {
          cfg;
          backend;
          hub;
          role_mu = Mutex.create ();
          is_standby = (match cfg.role with Standby _ -> true | Primary -> false);
          applier = None;
          senders = [];
          adm = Admission.create cfg.admission;
          tel = Telemetry.create ();
          snaps = Snapshot.create ();
          commit_mu = Mutex.create ();
          q_mu = Mutex.create ();
          q_cv = Condition.create ();
          queue = Queue.create ();
          shutdown = false;
          fatal = None;
          listen_fd;
          addr_str;
          sess_mu = Mutex.create ();
          session_fds = [];
          session_threads = [];
          core_threads = [];
          fin_mu = Mutex.create ();
          finalized = false;
        }
      in
      (match (cfg.role, backend) with
      | Standby { primary; repl_seed }, Durable d ->
          let ingest r =
            Mutex.lock t.commit_mu;
            let res = Durable.ingest d r in
            Mutex.unlock t.commit_mu;
            res
          in
          t.applier <-
            Some
              (Repl.start_applier ~addr:primary
                 ~read_timeout_ms:(repl_heartbeat_ms *. 20.)
                 ~backoff_ms:25. ~seed:repl_seed ~lsn:(Durable.lsn d) ~ingest
                 ~on_error:(fun _ -> ()))
      | _ -> ());
      t.core_threads <-
        [ Thread.create commit_loop t; Thread.create accept_loop t ];
      Ok (t, recovery)

let wait t =
  List.iter Thread.join t.core_threads;
  (* accept thread is gone: the session list can only shrink now *)
  Mutex.lock t.sess_mu;
  let sessions = t.session_threads in
  Mutex.unlock t.sess_mu;
  List.iter Thread.join sessions;
  Mutex.lock t.fin_mu;
  let first = not t.finalized in
  t.finalized <- true;
  Mutex.unlock t.fin_mu;
  if first then
    (match t.backend with Durable d -> Durable.close d | Mem _ -> ());
  match t.fatal with None -> Ok () | Some e -> Error e

let stop t =
  initiate_shutdown t;
  ignore (wait t)
