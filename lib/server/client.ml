open Eager_robust

type addr = A_unix of string | A_tcp of string * int

let parse_addr s =
  let starts_with p = String.length s > String.length p
                      && String.sub s 0 (String.length p) = p in
  let after p = String.sub s (String.length p) (String.length s - String.length p) in
  if starts_with "unix:" then Ok (A_unix (after "unix:"))
  else if starts_with "tcp:" then
    match String.rindex_opt (after "tcp:") ':' with
    | None -> Error (Printf.sprintf "tcp address %S needs HOST:PORT" s)
    | Some i ->
        let hp = after "tcp:" in
        let host = String.sub hp 0 i in
        let port_s = String.sub hp (i + 1) (String.length hp - i - 1) in
        (* port 0 is legal on the listen side: the kernel picks a free
           port and serve prints the chosen one *)
        (match int_of_string_opt port_s with
        | Some port when port >= 0 && port < 65536 -> Ok (A_tcp (host, port))
        | _ -> Error (Printf.sprintf "bad port in %S" s))
  else if s <> "" then Ok (A_unix s)
  else Error "empty address"

let addr_to_string = function
  | A_unix p -> "unix:" ^ p
  | A_tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

type config = {
  addr : addr;
  timeout_ms : float;
  retries : int;
  backoff_ms : float;
  seed : int;
  redirects : int;
}

let config ?(timeout_ms = 30_000.) ?(retries = 5) ?(backoff_ms = 25.)
    ?(seed = 1) ?(redirects = 2) addr =
  { addr; timeout_ms; retries; backoff_ms; seed; redirects }

type response =
  | Ok_text of string
  | Refused of { retry_after_ms : int; msg : string }
  | Failed of { kind : string; msg : string }

type conn = { wire : Wire.conn; timeout_ms : float }

(* a write to a server that died mid-request must surface as a typed
   [Io] error (EPIPE through [Err.protect]), not kill the client *)
let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ())

let connect cfg =
  Lazy.force ignore_sigpipe;
  Err.protect ~kind:Err.Io (fun () ->
      let fd =
        match cfg.addr with
        | A_unix path ->
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            (try Unix.connect fd (Unix.ADDR_UNIX path)
             with e -> Unix.close fd; raise e);
            fd
        | A_tcp (host, port) ->
            let a =
              match Wire.resolve_host host with
              | Ok a -> a
              | Error e -> Err.raise_ e
            in
            let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            (try Unix.connect fd (Unix.ADDR_INET (a, port))
             with e -> Unix.close fd; raise e);
            fd
      in
      { wire = Wire.of_fd fd; timeout_ms = cfg.timeout_ms })

let close c = Wire.close c.wire

let read_response c =
  let ( let* ) = Err.( let* ) in
  let* frame = Wire.read_frame c.wire ~timeout_ms:c.timeout_ms in
  match frame with
  | None -> Error (Err.io "server closed the connection")
  | Some { Wire.verb = "OK"; payload; _ } -> Ok (Ok_text payload)
  | Some { Wire.verb = "ERR"; args = kind :: _; payload } ->
      Ok (Failed { kind; msg = payload })
  | Some { Wire.verb = "ERR"; args = []; payload } ->
      Ok (Failed { kind = "Io"; msg = payload })
  | Some { Wire.verb = "BUSY"; args; payload } ->
      let hint =
        match args with a :: _ -> Option.value (int_of_string_opt a) ~default:0 | [] -> 0
      in
      Ok (Refused { retry_after_ms = hint; msg = payload })
  | Some { Wire.verb; _ } -> Error (Err.io "unexpected server verb %S" verb)

let request c sql =
  let ( let* ) = Err.( let* ) in
  let* () = Wire.write_frame c.wire ~verb:"STMT" sql in
  read_response c

let ping c =
  let ( let* ) = Err.( let* ) in
  let* () = Wire.write_frame c.wire ~verb:"PING" "" in
  let* r = read_response c in
  match r with
  | Ok_text _ -> Ok ()
  | Refused { msg; _ } | Failed { msg; _ } -> Error (Err.io "ping refused: %s" msg)

(* jittered exponential backoff; an explicit PRNG state because the
   global Random is banned repo-wide (determinism under test) *)
let run cfg sql =
  let rng = Random.State.make [| cfg.seed; 0x5eed |] in
  let backoff attempt hint_ms =
    let ms =
      if hint_ms > 0 then
        (* a typed [Resource] refusal carries the server's own estimate
           of when capacity frees up; sleep that (lightly jittered
           against a thundering herd) instead of walking the
           exponential ladder, which over- or under-shoots the hint on
           every rung *)
        float_of_int hint_ms *. (0.9 +. Random.State.float rng 0.4)
      else
        cfg.backoff_ms
        *. (2. ** float_of_int attempt)
        *. (0.5 +. Random.State.float rng 1.0)
    in
    Clock.sleep_ms ms
  in
  (* Retry discipline: an attempt is retried only when the server
     cannot have executed the script.  Safe: connect failures (nothing
     sent), incomplete sends (a torn request frame never parses, so the
     server answers ERR without executing), and BUSY refusals (shed
     before execution by contract).  NOT safe: any failure after the
     request frame was fully written — a read timeout or lost
     connection there may postdate the commit, and blindly re-running
     the script would apply non-idempotent writes twice. *)
  let attempt cfg =
    match connect cfg with
    | Error e -> `Unsent e
    | Ok c ->
        Fun.protect
          ~finally:(fun () -> close c)
          (fun () ->
            match Wire.write_frame c.wire ~verb:"STMT" sql with
            | Error e -> `Unsent e
            | Ok () -> (
                match read_response c with
                | Ok r -> `Response r
                | Error e -> `Sent e))
  in
  let rec go cfg hops n =
    match attempt cfg with
    | `Response (Failed { kind = "Fenced"; msg } as r) -> (
        (* the node we asked lost (or never held) the write lease; a
           [redirect=<addr>] token names the new primary.  Following it
           is duplicate-safe: a fenced node refuses BEFORE executing,
           so the statement has not run anywhere yet. *)
        match Err.redirect_of_msg msg with
        | Some target when hops < cfg.redirects -> (
            match parse_addr target with
            | Ok addr -> go { cfg with addr } (hops + 1) 0
            | Error _ -> Ok r)
        | _ -> Ok r)
    | `Response (Ok_text _ as r) | `Response (Failed _ as r) -> Ok r
    | `Response (Refused { retry_after_ms; _ } as r) ->
        if n >= cfg.retries then Ok r
        else begin
          backoff n retry_after_ms;
          go cfg hops (n + 1)
        end
    | `Unsent e ->
        if n >= cfg.retries then Error e
        else begin
          backoff n 0;
          go cfg hops (n + 1)
        end
    | `Sent e ->
        Error
          (Err.add_context
             "request was sent and the server may have executed it; not \
              retrying"
             e)
  in
  go cfg 0 0
