(** The wire protocol: length-prefixed text frames with deadlines.

    {v
    frame  := <verb> (' ' <arg>)* ' ' <len> '\n' <len payload bytes>
    v}

    Client → server verbs: [STMT] (payload: a SQL script), [PING],
    [REPL <lsn> <epoch>] — the replication handshake that turns the
    session into an outbound WAL stream — and [ELEC <epoch> <lsn>
    <addr>] — an election probe from a standby candidate (or the
    primary's own prober).  Server → client verbs: [OK] (payload:
    rendered result text; on a replication handshake the first arg is
    the primary's epoch), [ERR <kind>] (payload: message), [BUSY
    <retry_after_ms>] (payload: message) — the shed-load response
    carrying its client-visible back-off hint — [VOTE <addr> <lsn>
    <epoch> <role>] answering an election probe, and, on a replication
    stream, [RECD <seq> <kind> <primary_lsn> <pub_ms> <epoch>
    <lease_ms>] (payload: the record) and [RHB <primary_lsn> <now_ms>
    <epoch> <lease_ms>] heartbeats — the trailing epoch + lease args
    piggyback the failover lease grant on the existing stream, and
    pre-failover peers simply ignore them (arg lists are matched by
    prefix).

    Every read is deadline-bounded: the reader multiplexes
    [Unix.select] with a budget, so a stalled or malicious peer can
    never hang a session thread — the lint rule banning naked blocking
    reads in [lib/server] is discharged here, once, behind this
    interface.  Writes push whole frames and treat [EPIPE]/short
    writes as typed [Io] errors (the server ignores [SIGPIPE]). *)

open Eager_robust

val resolve_host : string -> (Unix.inet_addr, Err.t) result
(** ["localhost"], a dotted-quad literal, or any name resolvable via
    [getaddrinfo] (DNS, /etc/hosts) → an IPv4 address; a typed [Io]
    error when the name does not resolve.  Shared by the server's
    listener bind and the client's connect. *)

type conn
(** A connection with its private read buffer.  Not thread-safe; each
    session thread owns exactly one. *)

val of_fd : Unix.file_descr -> conn
val close : conn -> unit

type frame = { verb : string; args : string list; payload : string }

val read_frame :
  ?fault:string -> conn -> timeout_ms:float -> (frame option, Err.t) result
(** The next frame; [Ok None] on an orderly EOF at a frame boundary.
    [fault] names a fault-injection point checked before touching the
    socket ([server.read] on the server side).  Timeouts, torn frames,
    oversized headers/payloads and mid-frame EOF are typed [Io]
    errors. *)

val write_frame :
  conn -> verb:string -> ?args:string list -> string -> (unit, Err.t) result

(** {1 Shorthands} *)

val ok : conn -> string -> (unit, Err.t) result
val err : conn -> kind:string -> string -> (unit, Err.t) result
val busy : conn -> retry_after_ms:int -> string -> (unit, Err.t) result

val elec :
  conn -> epoch:int -> lsn:int -> addr:string -> (unit, Err.t) result
(** An election probe: "[addr] proposes to take epoch [epoch] at lsn
    [lsn] — who are you and where do you stand?" *)

val vote :
  conn -> addr:string -> lsn:int -> epoch:int -> role:string ->
  (unit, Err.t) result
(** The answer to {!elec}: this node's listen address, applied LSN,
    cluster epoch and role (["primary"]/["standby"]/["fenced"]).  The
    caller ranks candidates by (lsn, addr) and aborts if a live primary
    at an equal or higher epoch answers. *)
