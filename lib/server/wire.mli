(** The wire protocol: length-prefixed text frames with deadlines.

    {v
    frame  := <verb> (' ' <arg>)* ' ' <len> '\n' <len payload bytes>
    v}

    Client → server verbs: [STMT] (payload: a SQL script), [PING],
    [REPL <lsn> <epoch>] — the replication handshake that turns the
    session into an outbound WAL stream — and [ELEC <epoch> <lsn>
    <addr> <candidate>] — an election probe, where [candidate] is
    ["c"] for a real candidacy (may collect a ballot) or ["f"] for a
    fact-finding sweep (facts only: the primary's successor check, an
    abstaining standby's leader search).  Server → client verbs: [OK] (payload:
    rendered result text; on a replication handshake the first arg is
    the primary's epoch), [ERR <kind>] (payload: message), [BUSY
    <retry_after_ms>] (payload: message) — the shed-load response
    carrying its client-visible back-off hint — [VOTE <addr> <lsn>
    <epoch> <role> <granted>] answering an election probe, and, on a
    replication stream, [RECD <seq> <kind> <primary_lsn> <pub_ms>
    <epoch> <lease_ms> <sent_ms>] (payload: the record) and [RHB
    <primary_lsn> <sent_ms> <epoch> <lease_ms>] heartbeats — the
    trailing epoch + lease args piggyback the failover lease grant on
    the existing stream, and pre-failover peers simply ignore them
    (arg lists are matched by prefix).  The stream is duplex: the
    standby answers every frame with [RACK <applied_lsn>
    <grant_echo>], the cumulative ack that advances the primary's
    semi-sync watermark and (when [grant_echo] repeats a grant's
    [sent_ms]) renews its lease.

    Every read is deadline-bounded: the reader multiplexes
    [Unix.select] with a budget, so a stalled or malicious peer can
    never hang a session thread — the lint rule banning naked blocking
    reads in [lib/server] is discharged here, once, behind this
    interface.  Writes push whole frames and treat [EPIPE]/short
    writes as typed [Io] errors (the server ignores [SIGPIPE]). *)

open Eager_robust

val resolve_host : string -> (Unix.inet_addr, Err.t) result
(** ["localhost"], a dotted-quad literal, or any name resolvable via
    [getaddrinfo] (DNS, /etc/hosts) → an IPv4 address; a typed [Io]
    error when the name does not resolve.  Shared by the server's
    listener bind and the client's connect. *)

type conn
(** A connection with its private read buffer.  Not thread-safe; each
    session thread owns exactly one. *)

val of_fd : Unix.file_descr -> conn
val close : conn -> unit

type frame = { verb : string; args : string list; payload : string }

val read_frame :
  ?fault:string -> conn -> timeout_ms:float -> (frame option, Err.t) result
(** The next frame; [Ok None] on an orderly EOF at a frame boundary.
    [fault] names a fault-injection point checked before touching the
    socket ([server.read] on the server side).  Timeouts, torn frames,
    oversized headers/payloads and mid-frame EOF are typed [Io]
    errors. *)

val write_frame :
  conn -> verb:string -> ?args:string list -> string -> (unit, Err.t) result

val readable : conn -> bool
(** A zero-timeout peek: true when bytes are already buffered or
    pending on the socket, so a [read_frame] is very unlikely to
    block.  Lets a duplex peer (the replication sender draining acks)
    read opportunistically without stalling its write path. *)

(** {1 Shorthands} *)

val ok : conn -> string -> (unit, Err.t) result
val err : conn -> kind:string -> string -> (unit, Err.t) result
val busy : conn -> retry_after_ms:int -> string -> (unit, Err.t) result

val elec :
  conn -> epoch:int -> lsn:int -> addr:string -> candidate:bool ->
  (unit, Err.t) result
(** An election probe: "[addr] proposes to take epoch [epoch] at lsn
    [lsn] — who are you and where do you stand?"  [candidate] is the
    trailing ["c"]/["f"] flag: only a real candidacy may collect
    ballots; a fact-finding sweep (a primary checking for a successor,
    an abstaining standby looking for the new leader) gets facts
    only. *)

val vote :
  conn -> addr:string -> lsn:int -> epoch:int -> role:string ->
  granted:bool -> (unit, Err.t) result
(** The answer to {!elec}: this node's listen address, applied LSN,
    cluster epoch and role (["primary"]/["standby"]/["fenced"]), plus
    one ballot — whether this node grants the prober its vote for the
    probe's target epoch (at most one candidate per epoch per window).
    The caller ranks candidates by (epoch, lsn, addr), needs a quorum
    of grants to promote, and aborts if a live primary at an equal or
    higher epoch answers. *)

val rack : conn -> lsn:int -> grant:string -> (unit, Err.t) result
(** A standby's per-frame replication ack: its applied LSN (cumulative,
    the primary's semi-sync watermark) and the echoed [sent_ms] of the
    lease grant the acked frame carried (["-"] when it carried none) —
    echoing a grant is what renews the primary's lease. *)
