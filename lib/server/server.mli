(** The concurrent multi-session front end.

    One thread per session, one commit thread, one accept thread.
    Readers run against immutable LSN-stamped snapshots ({!Snapshot});
    writers are serialized through a commit queue whose drain is a
    group commit — every writer waiting at the moment the commit
    thread wakes shares a single WAL fsync ([Durable.exec_grouped]).
    Admission control ({!Admission}) bounds sessions, concurrent
    statements, queue depth and the aggregate row budget; every
    refusal is a typed [Resource] error carried to the client as a
    [BUSY] frame with a retry-after hint.

    Degradation ladder, mildest first:
    + per-statement budget breach → that request fails typed, session
      lives;
    + admission refusal → [BUSY] + retry-after, nothing executed;
    + session cap → refused at accept;
    + poisoned WAL (a log write failed) → writes refuse typed, reads
      keep serving — unless [die_on_broken_wal] is set, in which case
      the server stops with the error (the crash-test matrix uses this
      to simulate a kill at an injected wal fault).

    The server never calls [exit]; {!wait} returns and the caller
    decides. *)

open Eager_robust
open Eager_storage
open Eager_durable

type listen = L_unix of string | L_tcp of string * int

type role =
  | Primary
  | Standby of { primary : Client.addr; repl_seed : int }
      (** follow [primary]'s WAL stream, serving reads only.  [repl_seed]
          drives the reconnect jitter (the global [Random] is banned). *)

type config = {
  listen : listen;
  admission : Admission.config;
  read_timeout_ms : float;
      (** per-frame read deadline — also the idle-session timeout *)
  db_dir : string option;
      (** WAL-backed ([Durable]) when set; in-memory otherwise *)
  storage : Database.storage_config option;
      (** run the database on the paged engine: heaps on checksummed
          pages behind a shared buffer pool, executor breakers spilling
          to the scratch pager, the planner costing page IO.  [None]
          keeps the RAM engine *)
  checkpoint_every : int option;
  die_on_broken_wal : bool;
  role : role;
  repl_retain : int;
      (** committed records kept in memory for replication catch-up;
          standbys further behind are served from the on-disk WAL, and
          past that told to re-seed from a backup *)
  peers : Client.addr list;
      (** the OTHER nodes of the cluster.  Non-empty (with
          [auto_failover]) arms lease-based failover: the primary
          piggybacks lease grants on its replication stream and
          suspends writes when no standby acknowledges it within
          [lease_ms]; a standby whose lease observation lapses runs a
          deterministic election among the peers (highest applied LSN
          wins, ties to the smallest address; quorum is a majority of
          the full cluster) and self-promotes, bumping the cluster
          epoch that fences the old primary out.  Empty = the
          pre-failover behaviour, exactly. *)
  lease_ms : float;  (** the write lease window (and semi-sync ack bound) *)
  auto_failover : bool;
      (** [false] disarms elections, fencing-by-lease and semi-sync
          acks even when [peers] is set — replication keeps flowing,
          promotion stays manual (PROMOTE / SIGUSR1) *)
}

val default_config : listen -> config

type t

val start : config -> (t * Durable.recovery option, Err.t) result
(** Bind the listener, run recovery (WAL mode), spawn the accept and
    commit threads.  [Error] if the address cannot be bound or
    recovery fails. *)

val wait : t -> (unit, Err.t) result
(** Block until {!stop} or a fatal condition; returns the fatal error
    if there was one. *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, wake and drain the commit
    queue, nudge every live session off its socket, join the threads,
    close the durable session.  Writes and checkpoints that arrive
    after shutdown begins are refused with a typed [Io] error rather
    than queued (nobody would ever commit them).  Idempotent. *)

val bound_addr : t -> string
(** Human-readable listening address (for "listening on ..." lines). *)

val promote : t -> (int, Err.t) result
(** Promote a standby to primary: stop and join the inbound replication
    applier, then start accepting writes and serving [REPL] streams at
    the returned LSN.  A typed error on a node that is already primary
    or has no durable backend.  Also reachable in-band as the [PROMOTE]
    statement; this entry point exists for the operator signal path. *)
