(** MVCC-lite: LSN-stamped immutable snapshots for readers.

    The server keeps one frozen copy of the database per commit point.
    A reader asks for the snapshot at the current LSN; if the cache
    already holds that version it is shared (snapshots are never
    mutated), otherwise one [Database.snapshot] deep copy is taken and
    cached — so the copy cost is paid once per committed batch, not
    once per query.  Readers receive a private [Database.reader_view]
    over the frozen copy, so concurrent readers share row storage but
    never share mutable cache state.

    Isolation rule: a reader observes exactly the state at its
    snapshot's LSN for its whole statement, regardless of writers
    committing meanwhile; uncommitted or torn writes are unobservable
    because snapshots are only ever taken under the commit lock, at a
    batch boundary. *)

open Eager_storage

type t

val create : unit -> t

val get : t -> lsn:int -> db:Database.t -> Database.t
(** The reader view for the snapshot stamped [lsn], copying [db] first
    if the cached version is older.  MUST be called with the server's
    commit lock held (writers quiesced), so the copy observes a
    committed batch boundary. *)

val cached_lsn : t -> int option
val copies : t -> int
(** Deep copies taken so far — the denominator of snapshot reuse. *)
