(** The Governor promoted to an admission controller.

    PR 1's governor bounds one statement; a server must also bound the
    {e sum} of its sessions.  This module owns three budgets:

    - {b session slots}: at most [max_sessions] connections at once —
      the cheapest place to shed load is before a session exists;
    - {b statement slots}: at most [max_active] statements executing
      concurrently, with a fair FIFO queue of at most [max_queued]
      waiters, each waiting at most [max_wait_ms];
    - {b a global row pool} ([global_rows]): the aggregate row budget
      across every executing statement, charged per batch at cursor
      boundaries through each ticket's {!Eager_robust.Governor}, so
      over-budget load degrades mid-stream instead of stalling.

    Every refusal is typed ([Err.Resource]) and carries a
    [retry_after_ms] hint sized to the current queue depth — the
    graceful-degradation contract: shed load visibly, never stall or
    crash.  Fairness is FIFO: waiters are admitted strictly in arrival
    order, so no session can starve another. *)

open Eager_robust

type config = {
  max_sessions : int;  (** concurrent connections *)
  max_active : int;  (** statements executing at once *)
  max_queued : int;  (** waiting statements before shedding *)
  max_wait_ms : float;  (** queue-wait budget before refusal *)
  global_rows : int option;
      (** aggregate row budget across all executing statements *)
  statement_limits : Governor.limits;  (** per-statement budgets *)
}

val default_config : config
(** 64 sessions, 8 active, 32 queued, 2000 ms wait, no global row cap,
    no per-statement limits. *)

type t

val create : config -> t
val config : t -> config

type refusal = { reason : Err.t; retry_after_ms : int }
(** A typed shed-load decision: [reason] has kind [Resource]; the hint
    tells the client how long to back off before retrying. *)

val open_session : t -> (unit, refusal) result
val close_session : t -> unit

type ticket
(** One admitted statement: holds a statement slot and a governor
    attached to the global row pool. *)

val admit : t -> (ticket, refusal) result
(** Take a statement slot, waiting fairly (FIFO) behind earlier
    arrivals for at most [max_wait_ms].  Refuses — without blocking
    further — when the queue is full or the wait budget lapses. *)

val governor : ticket -> Governor.t
(** Fresh per admitted statement; budget breaches inside execution
    surface as typed [Resource] errors through the normal exec path. *)

val release : t -> ticket -> unit
(** Return the slot and the ticket's pool charge; idempotent. *)

(** {1 Gauges} (for [STATUS]) *)

val sessions : t -> int
val active : t -> int
val queued : t -> int
val pool_in_use : t -> int
(** Rows currently charged to the global pool (0 without one). *)
