(** Per-session and server-wide telemetry counters.

    Every counter is monotone and guarded by one registry-wide mutex, so
    sessions on different threads can bump them without tearing.  The
    [STATUS] statement renders the registry; EXPLAIN responses append
    the asking session's line so a client can watch its own budget
    consumption query by query. *)

type session
(** Counters for one connected session. *)

type t
(** The registry: global counters plus every live session. *)

val create : unit -> t

val connect : t -> session
(** Register a new session and return its counter block; session ids
    are dense and never reused within a server's lifetime. *)

val disconnect : t -> session -> unit
(** Drop the session from the live set (its contribution to the global
    aggregates survives). *)

val session_id : session -> int

(** {1 Bumping} — each takes the registry so global aggregates stay in
    step with the per-session counts. *)

val query_served : t -> session -> rows_pulled:int -> batches:int -> unit
val write_committed : t -> session -> wal_bytes:int -> unit
val budget_refused : t -> session -> unit
(** An admission refusal (queue full, too many sessions, wait too
    long). *)

val degraded : t -> session -> unit
(** A statement answered with a typed [Resource] error mid-execution —
    the graceful-degradation path. *)

val errored : t -> session -> unit

val fenced_refused : t -> unit
(** A write refused because this node is fenced out of the cluster (or
    is a standby redirecting the client) — counted globally because the
    refusal is a property of the node, not of the asking session. *)

val group_commit : t -> statements:int -> unit
(** One WAL sync covering [statements] logged statements. *)

(** {1 Rendering} *)

val session_line : session -> string
(** ["session 3: queries=12 rows_pulled=480 ..."] — appended to EXPLAIN
    responses and printed per session by [STATUS]. *)

val render :
  ?repl:string ->
  ?pool:string ->
  t ->
  snapshot_lsn:int ->
  sessions:int ->
  active:int ->
  queued:int ->
  string
(** The full [STATUS] report: a global line (with the caller-supplied
    admission gauges and WAL position), the buffer-pool line when the
    caller supplies one ([pool], a paged server), the replication line
    when the caller supplies one, then one line per live session. *)
