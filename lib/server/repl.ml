(* WAL-shipping replication: the hub (primary side), the sender loop
   that streams a hub to one standby, and the applier loop (standby
   side) that feeds shipped records into [Durable.ingest].

   The standby sends one [REPL <last_lsn>] handshake, then the stream
   is duplex: records ship down in strict sequence order as [RECD]
   frames ([RHB] heartbeats when idle), and the standby answers every
   frame with a cumulative [RACK] carrying its applied LSN and the
   echoed send-timestamp of the last lease grant it observed.  Those
   acks — never the local write success — are what advance the
   primary's semi-sync watermark and renew its lease: a partition
   whose TCP buffers keep absorbing frames stops producing acks, so
   the primary's lease lapses on schedule even though its sends keep
   "succeeding".  A standby that falls behind the hub's retention
   window is caught up from the primary's on-disk WAL; one that falls
   behind the WAL itself (a checkpoint truncated the records) is
   refused with a typed error telling it to re-seed from a fresh
   backup — shipping a snapshot inline is a different protocol, not a
   silent fallback. *)

open Eager_robust
open Eager_durable

let ( let* ) = Err.( let* )

(* ---------- the hub: committed records fanned out to senders ---------- *)

type entry = { record : Wal.record; pub_ms : float }

type hub = {
  mu : Mutex.t;
  cv : Condition.t;
  retain : int;
  entries : entry Queue.t;  (* oldest first, bounded by [retain] *)
  mutable last_seq : int;  (* highest seq ever published (or the LSN at creation) *)
  mutable closed : bool;
}

let create_hub ~retain ~lsn =
  {
    mu = Mutex.create ();
    cv = Condition.create ();
    retain = max 1 retain;
    entries = Queue.create ();
    last_seq = lsn;
    closed = false;
  }

let hub_last_seq hub =
  Mutex.lock hub.mu;
  let v = hub.last_seq in
  Mutex.unlock hub.mu;
  v

let publish hub records =
  let now = Clock.now_ms () in
  Mutex.lock hub.mu;
  List.iter
    (fun (r : Wal.record) ->
      Queue.add { record = r; pub_ms = now } hub.entries;
      hub.last_seq <- max hub.last_seq r.seq;
      if Queue.length hub.entries > hub.retain then
        ignore (Queue.pop hub.entries))
    records;
  Condition.broadcast hub.cv;
  Mutex.unlock hub.mu

let close_hub hub =
  Mutex.lock hub.mu;
  hub.closed <- true;
  Condition.broadcast hub.cv;
  Mutex.unlock hub.mu

type wait_result =
  | Records of entry list  (* every retained entry with seq > the cursor *)
  | Gap  (* entries past the cursor exist but were evicted *)
  | Idle  (* nothing newer; send a heartbeat *)
  | Closed

(* [Condition.wait] has no deadline, so the idle path polls: waiters
   wake at worst [poll_ms] after a publish.  Replication lag is bounded
   by the poll interval, not the load. *)
let wait_since hub ~seq ~timeout_ms =
  let poll_ms = 20. in
  let deadline = Clock.now_ms () +. timeout_ms in
  let rec look () =
    if hub.closed then Closed
    else if hub.last_seq <= seq then
      if Clock.now_ms () >= deadline then Idle
      else begin
        Mutex.unlock hub.mu;
        Clock.sleep_ms poll_ms;
        Mutex.lock hub.mu;
        look ()
      end
    else
      let fresh =
        Queue.fold
          (fun acc e -> if e.record.Wal.seq > seq then e :: acc else acc)
          [] hub.entries
        |> List.rev
      in
      match fresh with
      | [] -> Gap
      | { record = { Wal.seq = first; _ }; _ } :: _ ->
          if first > seq + 1 then Gap else Records fresh
  in
  Mutex.lock hub.mu;
  let r = look () in
  Mutex.unlock hub.mu;
  r

(* ---------- frame encoding ---------- *)

let kind_to_wire = function Wal.Stmt -> "stmt" | Wal.Abort -> "abort"

let kind_of_wire = function
  | "stmt" -> Ok Wal.Stmt
  | "abort" -> Ok Wal.Abort
  | s -> Error (Err.io "replication stream: unknown record kind %S" s)

(* The lease grant rides every RECD/RHB frame as two trailing args
   (<epoch> <lease_ms>) the pre-failover protocol simply ignores —
   pattern matches on the standby side take a prefix.  A grant of 0 ms
   is "no lease" (failover disabled, or the [repl.lease] fault ate the
   grant); the standby then lets its observation window lapse. *)
let lease_grant ~lease_ms =
  if lease_ms > 0. && Fault.hit "repl.lease" then 0. else lease_ms

let send_record conn ~primary_lsn ~lease_ms (e : entry) =
  let* () = Fault.check "repl.send" in
  Wire.write_frame conn ~verb:"RECD"
    ~args:
      [
        string_of_int e.record.Wal.seq;
        kind_to_wire e.record.Wal.kind;
        string_of_int primary_lsn;
        Printf.sprintf "%.0f" e.pub_ms;
        (* the record's OWN epoch, not the primary's current one: ingest
           re-logs it verbatim so the two WALs stay byte-identical *)
        string_of_int e.record.Wal.epoch;
        Printf.sprintf "%.0f" (lease_grant ~lease_ms);
        (* the grant's send time, echoed back in the standby's RACK —
           the lease renews from THIS instant, so the primary's
           reckoning is always at or before the standby's observation *)
        Printf.sprintf "%.0f" (Clock.now_ms ());
      ]
    e.record.Wal.payload

let send_heartbeat conn ~primary_lsn ~epoch ~lease_ms =
  Wire.write_frame conn ~verb:"RHB"
    ~args:
      [
        string_of_int primary_lsn;
        Printf.sprintf "%.0f" (Clock.now_ms ());
        string_of_int epoch;
        Printf.sprintf "%.0f" (lease_grant ~lease_ms);
      ]
    ""

(* ---------- the sender: one per connected standby session ---------- *)

type sender_stats = {
  mutable shipped_lsn : int;  (* last record seq written to this peer *)
  mutable last_send_ms : float;
      (* when the last frame (record or heartbeat) reached this peer's
         socket — telemetry only: a local write proves nothing about
         delivery, so neither the lease nor semi-sync ever reads it *)
  mutable acked_lsn : int;
      (* highest applied LSN the standby has ACKNOWLEDGED ([RACK]) —
         the semi-sync watermark: a commit is reported shipped only
         once some sender's acked_lsn covers it *)
  mutable lease_anchor_ms : float;
      (* send-timestamp of the last lease grant the standby echoed
         back — what the primary's lease check reads: the lease is
         held iff now - anchor <= lease_ms for SOME sender.  Anchoring
         at the grant's SEND time (not the ack's arrival) keeps the
         timing argument one-sided: the standby observed that grant at
         or after the anchor, so its observation window always
         outlives the primary's own reckoning (DESIGN.md §15) *)
}

(* Drain whatever RACK frames the standby has pushed back up the
   stream.  Never blocks on a quiet socket ([Wire.readable] is a
   zero-timeout peek); a closed or misbehaving peer ends the session
   with a typed error, exactly like a failed send. *)
let drain_acks ~conn ~(stats : sender_stats) =
  let rec go () =
    if not (Wire.readable conn) then Ok ()
    else
      let* frame = Wire.read_frame conn ~timeout_ms:1_000. in
      match frame with
      | None -> Error (Err.io "standby closed the replication stream")
      | Some { Wire.verb = "RACK"; args = lsn :: rest; _ } -> (
          match int_of_string_opt lsn with
          | Some l ->
              if l > stats.acked_lsn then stats.acked_lsn <- l;
              (match rest with
              | g :: _ when g <> "-" -> (
                  match float_of_string_opt g with
                  | Some a ->
                      (* clamp to now: a garbled echo from the future
                         must not mint a lease longer than lease_ms *)
                      let a = Float.min a (Clock.now_ms ()) in
                      if a > stats.lease_anchor_ms then
                        stats.lease_anchor_ms <- a
                  | None -> ())
              | _ -> ());
              go ()
          | None -> Error (Err.io "replication ack: bad lsn %S" lsn))
      | Some { Wire.verb; _ } ->
          Error
            (Err.io "replication stream: unexpected inbound verb %S" verb)
  in
  go ()

(* Catch a standby up from the on-disk WAL when the hub has evicted the
   records it needs.  The scan races benignly with the commit thread's
   appends: a record mid-write shows up as a torn tail (ignored — the
   hub covers everything that recent), and a concurrent truncate swaps
   the file under a private fd.  Returns the records in (cursor, end],
   or a typed error when the file starts past the cursor — those
   records were checkpointed away and only a fresh backup can re-seed
   the standby. *)
let catch_up_from_file ~wal_path ~cursor =
  let* records, _tail = Wal.scan wal_path in
  let fresh = List.filter (fun (r : Wal.record) -> r.seq > cursor) records in
  match fresh with
  | { Wal.seq = first; _ } :: _ when first > cursor + 1 ->
      Error
        (Err.io
           "standby at lsn %d is behind the primary's oldest available \
            record #%d (checkpoint truncated the gap); re-seed it from a \
            fresh backup"
           cursor first)
  | fresh -> Ok fresh

(* Stream records to one standby until the peer drops, the hub closes,
   or an error (including an injected [repl.send] fault) ends the
   session.  [heartbeat_ms] bounds how long the peer waits to learn the
   primary is alive; [stats] is live telemetry for STATUS. *)
let sender_loop ~hub ~wal_path ~conn ~heartbeat_ms ~stats ~cursor ~epoch_now
    ~lease_ms =
  let sent r =
    match r with
    | Ok () ->
        stats.last_send_ms <- Clock.now_ms ();
        Ok ()
    | Error _ as e -> e
  in
  let rec go cursor =
    stats.shipped_lsn <- cursor;
    let* () = drain_acks ~conn ~stats in
    (* an outstanding ack shortens the idle wait: the RACK for what we
       just shipped is on the wire and a semi-sync commit is spinning
       on [acked_lsn] — don't make it wait out a full heartbeat *)
    let wait_ms =
      if stats.acked_lsn < cursor then Float.min heartbeat_ms 10.
      else heartbeat_ms
    in
    match wait_since hub ~seq:cursor ~timeout_ms:wait_ms with
    | Closed -> Ok ()
    | Idle ->
        let* () =
          sent
            (send_heartbeat conn ~primary_lsn:(hub_last_seq hub)
               ~epoch:(epoch_now ()) ~lease_ms)
        in
        go cursor
    | Records entries ->
        let primary_lsn = hub_last_seq hub in
        let* cursor =
          List.fold_left
            (fun acc e ->
              let* _ = acc in
              let* () = sent (send_record conn ~primary_lsn ~lease_ms e) in
              Ok e.record.Wal.seq)
            (Ok cursor) entries
        in
        go cursor
    | Gap -> (
        let* fresh = catch_up_from_file ~wal_path ~cursor in
        match fresh with
        | [] ->
            (* the WAL has nothing past the cursor either, yet the hub
               says newer records exist: they are gone entirely *)
            Error
              (Err.io
                 "standby at lsn %d needs records the primary no longer \
                  retains; re-seed it from a fresh backup"
                 cursor)
        | fresh ->
            let primary_lsn = hub_last_seq hub in
            let now = Clock.now_ms () in
            let* cursor =
              List.fold_left
                (fun acc r ->
                  let* _ = acc in
                  let* () =
                    sent
                      (send_record conn ~primary_lsn ~lease_ms
                         { record = r; pub_ms = now })
                  in
                  Ok r.Wal.seq)
                (Ok cursor) fresh
            in
            go cursor)
  in
  go cursor

(* ---------- the applier: the standby's ingest thread ---------- *)

type standby_stats = {
  smu : Mutex.t;
  mutable connected : bool;
  mutable applied_lsn : int;
  mutable primary_lsn : int;  (* last value the stream reported *)
  mutable lag_ms : float;  (* apply time minus publish time, last record *)
  mutable reconnects : int;
  mutable stream_epoch : int;  (* highest epoch the stream has carried *)
  mutable lease_ms : float;  (* size of the last non-zero grant *)
  mutable lease_deadline_ms : float;
      (* when the lease observation window lapses (monotonised clock);
         0 = no grant ever observed on this connection *)
}

let standby_stats ~lsn =
  {
    smu = Mutex.create ();
    connected = false;
    applied_lsn = lsn;
    primary_lsn = lsn;
    lag_ms = 0.;
    reconnects = 0;
    stream_epoch = 0;
    lease_ms = 0.;
    lease_deadline_ms = 0.;
  }

let standby_line st ~primary =
  Mutex.lock st.smu;
  let lease_remaining = Float.max 0. (st.lease_deadline_ms -. Clock.now_ms ()) in
  let line =
    Printf.sprintf
      "repl: role=standby primary=%s connected=%s applied_lsn=%d \
       primary_lsn=%d lag_records=%d lag_ms=%.0f reconnects=%d \
       stream_epoch=%d lease_remaining_ms=%.0f"
      primary
      (if st.connected then "yes" else "no")
      st.applied_lsn st.primary_lsn
      (max 0 (st.primary_lsn - st.applied_lsn))
      st.lag_ms st.reconnects st.stream_epoch lease_remaining
  in
  Mutex.unlock st.smu;
  line

type applier = {
  amu : Mutex.t;
  mutable stop : bool;
  mutable live_fd : Unix.file_descr option;
  mutable thread : Thread.t option;
  stats : standby_stats;
}

let applier_stopped a =
  Mutex.lock a.amu;
  let v = a.stop in
  Mutex.unlock a.amu;
  v

(* register/clear the live socket so [stop_applier] can yank a blocked
   read; returns false when stop won the race and the fd must not be
   used *)
let applier_track a fd =
  Mutex.lock a.amu;
  let usable = not a.stop in
  a.live_fd <- (if usable then Some fd else None);
  Mutex.unlock a.amu;
  usable

let applier_untrack a =
  Mutex.lock a.amu;
  a.live_fd <- None;
  Mutex.unlock a.amu

(* Connect with a deadline.  A TCP connect to an unreachable peer can
   block for the kernel's own timeout — tens of seconds, far past any
   lease — which would park the single failover monitor thread and
   stall elections, so the attempt goes non-blocking and waits for
   writability under the same [timeout_ms] budget as the reads.
   Unix-domain connects complete (or refuse) immediately and keep the
   plain path. *)
let connect_primary ~timeout_ms addr =
  Err.protect ~kind:Err.Io (fun () ->
      match addr with
      | Client.A_unix path ->
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          (try Unix.connect fd (Unix.ADDR_UNIX path)
           with e ->
             Unix.close fd;
             raise e);
          fd
      | Client.A_tcp (host, port) ->
          let a =
            match Wire.resolve_host host with
            | Ok a -> a
            | Error e -> Err.raise_ e
          in
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          (try
             Unix.set_nonblock fd;
             (try Unix.connect fd (Unix.ADDR_INET (a, port))
              with Unix.Unix_error (Unix.EINPROGRESS, _, _) -> (
                match
                  Unix.select [] [ fd ] []
                    (Float.max 0.001 (timeout_ms /. 1000.))
                with
                | _, [], _ ->
                    raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))
                | _ -> (
                    match Unix.getsockopt_error fd with
                    | None -> ()
                    | Some err ->
                        raise (Unix.Unix_error (err, "connect", "")))));
             Unix.clear_nonblock fd;
             fd
           with e ->
             Unix.close fd;
             raise e))

(* ---------- election probes ---------- *)

type vote = {
  v_addr : string;
  v_lsn : int;
  v_epoch : int;
  v_role : string;
  v_granted : bool;
}

(* One ELEC round-trip on a throwaway connection: connect, probe, read
   the VOTE, close.  Used by a standby candidate ranking the cluster
   and by a primary's prober sniffing for a successor epoch after a
   partition heals.  Both the connect and the read are bounded by
   [timeout_ms] — an unreachable TCP peer must not park the failover
   monitor for the kernel's connect timeout. *)
let probe ~addr ~timeout_ms ~epoch ~lsn ~self ~candidate =
  let* fd = connect_primary ~timeout_ms addr in
  let conn = Wire.of_fd fd in
  Fun.protect
    ~finally:(fun () -> Wire.close conn)
    (fun () ->
      let* () = Wire.elec conn ~epoch ~lsn ~addr:self ~candidate in
      let* frame = Wire.read_frame conn ~timeout_ms in
      match frame with
      | Some { Wire.verb = "VOTE"; args = a :: l :: e :: r :: rest; _ } -> (
          match (int_of_string_opt l, int_of_string_opt e) with
          | Some v_lsn, Some v_epoch ->
              (* a missing ballot reads as withheld: quorum errs toward
                 NOT promoting *)
              let v_granted = match rest with g :: _ -> g = "y" | [] -> false in
              Ok { v_addr = a; v_lsn; v_epoch; v_role = r; v_granted }
          | _ -> Error (Err.io "election probe: malformed VOTE from %s" a))
      | Some { Wire.verb = "ERR"; payload; _ } ->
          Error (Err.io "election probe refused: %s" payload)
      | Some { Wire.verb; _ } ->
          Error (Err.io "election probe: unexpected verb %S" verb)
      | None -> Error (Err.io "election probe: peer closed without voting"))

(* One connection's lifetime: handshake from the current LSN and
   epoch, then apply RECD frames until the stream breaks.  [ingest] is
   the server's closure (it takes the commit lock and feeds
   [Durable.ingest]); [lsn_now]/[epoch_now] read the standby's own LSN
   and cluster-epoch floor; [observe] reports every epoch + lease grant
   the stream carries back to the server (the failover monitor's food).
   Ok completed = orderly end (stop or primary shutdown), with
   [completed] recording whether the handshake's OK ever arrived — a
   primary that accepts then immediately drops ends Ok false, and the
   caller must keep escalating backoff or it hot-loops.  Error = broken
   stream, caller decides on retry. *)
let applier_once ~addr ~read_timeout_ms ~ingest ~lsn_now ~epoch_now ~observe
    (a : applier) =
  let* fd = connect_primary ~timeout_ms:read_timeout_ms addr in
  if not (applier_track a fd) then begin
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Ok false
  end
  else
    let conn = Wire.of_fd fd in
    let handshook = ref false in
    Fun.protect
      ~finally:(fun () ->
        applier_untrack a;
        Mutex.lock a.stats.smu;
        a.stats.connected <- false;
        Mutex.unlock a.stats.smu;
        Wire.close conn)
      (fun () ->
        let* () =
          Wire.write_frame conn ~verb:"REPL"
            ~args:
              [ string_of_int (lsn_now ()); string_of_int (epoch_now ()) ]
            ""
        in
        (* every grant extends the lease observation window; every epoch
           ratchets the stream's high-water mark *)
        let note_grant ~epoch ~lease =
          Mutex.lock a.stats.smu;
          if epoch > a.stats.stream_epoch then a.stats.stream_epoch <- epoch;
          if lease > 0. then begin
            a.stats.lease_ms <- lease;
            a.stats.lease_deadline_ms <- Clock.now_ms () +. lease
          end;
          Mutex.unlock a.stats.smu;
          observe ~epoch ~lease_ms:lease
        in
        (* a stream speaking from a lower epoch than ours is a zombie
           primary: refuse it even when it ships nothing (record-level
           fencing in [Durable.ingest] never sees an idle stream) *)
        let guard_epoch epoch =
          if epoch < epoch_now () then
            Error
              (Err.fenced
                 "replication stream speaks from stale epoch %d but this \
                  node is at epoch %d"
                 epoch (epoch_now ()))
          else Ok ()
        in
        let int_arg ?(default = 0) s =
          match int_of_string_opt s with Some v -> v | None -> default
        in
        let float_arg ?(default = 0.) s =
          match float_of_string_opt s with Some v -> v | None -> default
        in
        (* acknowledge the frame just processed: cumulative applied LSN
           plus the echoed send-timestamp of its lease grant ("-" when
           it carried none) — the primary renews its lease and reports
           semi-sync commits only off these, never off its own sends *)
        let ack ~grant =
          Mutex.lock a.stats.smu;
          let lsn = a.stats.applied_lsn in
          Mutex.unlock a.stats.smu;
          Wire.rack conn ~lsn ~grant
        in
        let rec pump () =
          if applier_stopped a then Ok !handshook
          else
            let* frame = Wire.read_frame conn ~timeout_ms:read_timeout_ms in
            match frame with
            | None ->
                Ok !handshook  (* primary closed the stream in an orderly way *)
            | Some { Wire.verb = "OK"; args; _ } ->
                (* handshake accepted; the reply names the primary's
                   current epoch *)
                let epoch =
                  match args with
                  | e :: _ -> int_arg ~default:(epoch_now ()) e
                  | [] -> epoch_now ()
                in
                let* () = guard_epoch epoch in
                handshook := true;
                Mutex.lock a.stats.smu;
                a.stats.connected <- true;
                Mutex.unlock a.stats.smu;
                note_grant ~epoch ~lease:0.;
                let* () = ack ~grant:"-" in
                pump ()
            | Some { Wire.verb = "ERR"; payload; _ } ->
                (* typed refusal from the primary: split-brain or an
                   unservable gap.  Not retryable — surface it. *)
                Error (Err.io "primary refused replication: %s" payload)
            | Some { Wire.verb = "RHB"; args = plsn :: rest; _ } ->
                let epoch, lease, token =
                  match rest with
                  | sent :: e :: l :: _ ->
                      let lease = float_arg l in
                      ( int_arg ~default:(epoch_now ()) e,
                        lease,
                        (* the heartbeat's own timestamp IS its send
                           time — echo it iff a grant rode along *)
                        if lease > 0. then sent else "-" )
                  | _ -> (epoch_now (), 0., "-")
                in
                let* () = guard_epoch epoch in
                Mutex.lock a.stats.smu;
                (match int_of_string_opt plsn with
                | Some l ->
                    a.stats.primary_lsn <- max a.stats.primary_lsn l;
                    if a.stats.applied_lsn >= l then a.stats.lag_ms <- 0.
                | None -> ());
                Mutex.unlock a.stats.smu;
                note_grant ~epoch ~lease;
                let* () = ack ~grant:token in
                pump ()
            | Some
                {
                  Wire.verb = "RECD";
                  args = seq :: kind :: plsn :: pub :: rest;
                  payload;
                } -> (
                match (int_of_string_opt seq, kind_of_wire kind) with
                | Some seq, Ok kind ->
                    let epoch, lease, token =
                      match rest with
                      | e :: l :: sent :: _ ->
                          let lease = float_arg l in
                          (int_arg e, lease, if lease > 0. then sent else "-")
                      | e :: l :: [] -> (int_arg e, float_arg l, "-")
                      | _ -> (0, 0., "-")
                    in
                    let record = { Wal.seq; kind; payload; epoch } in
                    (* a stale-epoch record dies inside ingest (typed
                       Fenced), so the zombie fence holds even if the
                       stream's heartbeats lied *)
                    let* () = ingest record in
                    Mutex.lock a.stats.smu;
                    a.stats.applied_lsn <- seq;
                    (match int_of_string_opt plsn with
                    | Some l -> a.stats.primary_lsn <- max a.stats.primary_lsn l
                    | None -> ());
                    (match float_of_string_opt pub with
                    | Some pub_ms ->
                        a.stats.lag_ms <- Float.max 0. (Clock.now_ms () -. pub_ms)
                    | None -> ());
                    Mutex.unlock a.stats.smu;
                    note_grant ~epoch ~lease;
                    let* () = ack ~grant:token in
                    pump ()
                | None, _ ->
                    Error (Err.io "replication stream: bad seq %S" seq)
                | _, (Error _ as e) -> e)
            | Some { Wire.verb; _ } ->
                Error (Err.io "replication stream: unexpected verb %S" verb)
        in
        pump ())

(* Reconnect forever with jittered exponential backoff (explicit PRNG —
   the global [Random] is banned repo-wide) until [stop_applier].  A
   broken stream is logged to [on_error] and retried; only [stop] ends
   the loop, because a standby's whole job is to outlive its primary's
   bad days.  The ladder resets only after a COMPLETED handshake: a
   primary that accepts the connection and immediately drops it (a
   listener up but a hub wedged, a proxy half-open) used to reset the
   ladder on every connect and hot-loop the standby at the base
   interval. *)
let applier_loop ~addr ~read_timeout_ms ~backoff_ms ~seed ~ingest ~lsn_now
    ~epoch_now ~observe ~on_error (a : applier) =
  let rng = Random.State.make [| seed; 0x9eb1 |] in
  let count_reconnect () =
    Mutex.lock a.stats.smu;
    a.stats.reconnects <- a.stats.reconnects + 1;
    Mutex.unlock a.stats.smu
  in
  let rec go attempt =
    if applier_stopped a then ()
    else
      match
        applier_once ~addr ~read_timeout_ms ~ingest ~lsn_now ~epoch_now
          ~observe a
      with
      | Ok true ->
          (* orderly close after a real session: the primary shut down
             (or we are stopping); retry from a fresh backoff ladder *)
          if not (applier_stopped a) then begin
            pause 0;
            go 1
          end
      | Ok false ->
          (* accept-then-drop without an OK: treat like a broken stream
             and keep escalating, or a flapping primary hot-loops us *)
          if not (applier_stopped a) then begin
            count_reconnect ();
            pause attempt;
            go (min (attempt + 1) 8)
          end
      | Error e ->
          on_error e;
          if not (applier_stopped a) then begin
            count_reconnect ();
            pause attempt;
            go (min (attempt + 1) 8)
          end
  and pause attempt =
    let base = backoff_ms *. (2. ** float_of_int attempt) in
    let jitter = 0.5 +. Random.State.float rng 1.0 in
    Clock.sleep_ms (Float.min (base *. jitter) 2_000.)
  in
  go 0

let start_applier ~addr ~read_timeout_ms ~backoff_ms ~seed ~lsn ~ingest
    ~epoch_now ~observe ~on_error =
  let a =
    {
      amu = Mutex.create ();
      stop = false;
      live_fd = None;
      thread = None;
      stats = standby_stats ~lsn;
    }
  in
  a.thread <-
    Some
      (Thread.create
         (fun () ->
           applier_loop ~addr ~read_timeout_ms ~backoff_ms ~seed ~ingest
             ~lsn_now:(fun () ->
               Mutex.lock a.stats.smu;
               let l = a.stats.applied_lsn in
               Mutex.unlock a.stats.smu;
               l)
             ~epoch_now ~observe ~on_error a)
         ());
  a

let stop_applier a =
  Mutex.lock a.amu;
  a.stop <- true;
  (match a.live_fd with
  | Some fd -> (
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
  | None -> ());
  let th = a.thread in
  a.thread <- None;
  Mutex.unlock a.amu;
  match th with Some th -> Thread.join th | None -> ()

let applier_stats a = a.stats
