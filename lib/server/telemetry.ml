(* Per-session and server-wide telemetry counters.  One mutex guards the
   whole registry: contention is negligible (a handful of increments per
   statement) and a single lock keeps the global aggregates exactly the
   sum of what the sessions reported. *)

type session = {
  id : int;
  mutable queries : int; (* statements answered successfully *)
  mutable rows_pulled : int; (* governor row charge across its queries *)
  mutable batches : int; (* batches pulled through cursor boundaries *)
  mutable wal_bytes : int; (* log bytes this session's writes produced *)
  mutable refusals : int; (* admission refusals (shed load) *)
  mutable degradations : int; (* typed Resource errors mid-execution *)
  mutable errors : int; (* every other typed error *)
}

type t = {
  mu : Mutex.t;
  mutable next_id : int;
  mutable live : session list;
  (* global aggregates, including contributions of departed sessions *)
  mutable g_queries : int;
  mutable g_rows : int;
  mutable g_wal_bytes : int;
  mutable g_refusals : int;
  mutable g_degradations : int;
  mutable g_errors : int;
  mutable g_group_commits : int;
  mutable g_grouped_stmts : int;
  mutable g_connected : int; (* sessions ever accepted *)
  mutable g_fenced : int; (* writes refused because the node is fenced/standby *)
}

let create () =
  {
    mu = Mutex.create ();
    next_id = 0;
    live = [];
    g_queries = 0;
    g_rows = 0;
    g_wal_bytes = 0;
    g_refusals = 0;
    g_degradations = 0;
    g_errors = 0;
    g_group_commits = 0;
    g_grouped_stmts = 0;
    g_connected = 0;
    g_fenced = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let connect t =
  locked t (fun () ->
      t.next_id <- t.next_id + 1;
      t.g_connected <- t.g_connected + 1;
      let s =
        {
          id = t.next_id;
          queries = 0;
          rows_pulled = 0;
          batches = 0;
          wal_bytes = 0;
          refusals = 0;
          degradations = 0;
          errors = 0;
        }
      in
      t.live <- s :: t.live;
      s)

let disconnect t s =
  locked t (fun () -> t.live <- List.filter (fun x -> x.id <> s.id) t.live)

let session_id s = s.id

let query_served t s ~rows_pulled ~batches =
  locked t (fun () ->
      s.queries <- s.queries + 1;
      s.rows_pulled <- s.rows_pulled + rows_pulled;
      s.batches <- s.batches + batches;
      t.g_queries <- t.g_queries + 1;
      t.g_rows <- t.g_rows + rows_pulled)

let write_committed t s ~wal_bytes =
  locked t (fun () ->
      s.wal_bytes <- s.wal_bytes + wal_bytes;
      t.g_wal_bytes <- t.g_wal_bytes + wal_bytes)

let budget_refused t s =
  locked t (fun () ->
      s.refusals <- s.refusals + 1;
      t.g_refusals <- t.g_refusals + 1)

let degraded t s =
  locked t (fun () ->
      s.degradations <- s.degradations + 1;
      t.g_degradations <- t.g_degradations + 1)

let errored t s =
  locked t (fun () ->
      s.errors <- s.errors + 1;
      t.g_errors <- t.g_errors + 1)

let fenced_refused t = locked t (fun () -> t.g_fenced <- t.g_fenced + 1)

let group_commit t ~statements =
  locked t (fun () ->
      t.g_group_commits <- t.g_group_commits + 1;
      t.g_grouped_stmts <- t.g_grouped_stmts + statements)

let session_line s =
  Printf.sprintf
    "session %d: queries=%d rows_pulled=%d batches=%d wal_bytes=%d \
     refusals=%d degraded=%d errors=%d"
    s.id s.queries s.rows_pulled s.batches s.wal_bytes s.refusals
    s.degradations s.errors

let render ?repl ?pool t ~snapshot_lsn ~sessions ~active ~queued =
  locked t (fun () ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf
        (Printf.sprintf
           "server: sessions=%d (ever %d) active=%d queued=%d queries=%d \
            rows_pulled=%d wal_bytes=%d group_commits=%d grouped_stmts=%d \
            refusals=%d degraded=%d errors=%d fenced_refused=%d \
            snapshot_lsn=%d\n"
           sessions t.g_connected active queued t.g_queries t.g_rows
           t.g_wal_bytes t.g_group_commits t.g_grouped_stmts t.g_refusals
           t.g_degradations t.g_errors t.g_fenced snapshot_lsn);
      (match pool with
      | Some line ->
          Buffer.add_string buf line;
          Buffer.add_char buf '\n'
      | None -> ());
      (match repl with
      | Some line ->
          Buffer.add_string buf line;
          Buffer.add_char buf '\n'
      | None -> ());
      List.iter
        (fun s ->
          Buffer.add_string buf (session_line s);
          Buffer.add_char buf '\n')
        (List.sort (fun a b -> compare a.id b.id) t.live);
      Buffer.contents buf)
