(** WAL-shipping replication: hub, sender, applier.

    The primary's commit tap {!publish}es each fsynced batch into a
    bounded in-memory {!hub}; one {!sender_loop} per connected standby
    streams records out as [RECD] frames (heartbeating with [RHB] when
    idle), catching up from the on-disk WAL when the hub's retention
    window has moved on, and refusing with a typed error when a
    checkpoint truncated the records a standby needs — that standby
    must re-seed from a fresh backup.  The stream is duplex: the
    standby acknowledges every frame with a cumulative [RACK], and
    those acks — never local write success — are what advance the
    primary's semi-sync watermark ([acked_lsn]) and renew its lease
    ([lease_anchor_ms]).

    The standby side is an {!applier}: a thread that connects to the
    primary, handshakes with a single [REPL <last_lsn> <epoch>] frame,
    feeds every shipped record to an [ingest] closure (the server wraps
    [Durable.ingest] in its commit lock), and reconnects with jittered
    exponential backoff whenever the stream breaks — the ladder resets
    only after a {e completed} handshake, so an accept-then-drop
    primary cannot hot-loop the standby.  Only {!stop_applier}
    (promotion or shutdown) ends it.

    Failover rides this stream: every [RECD]/[RHB] frame carries two
    trailing args [<epoch> <lease_ms>] — the cluster epoch and a lease
    grant the standby's failover monitor watches (see DESIGN.md §15).
    A stream speaking from a lower epoch than the standby's is refused
    with a typed [Fenced] error (the zombie fence for idle streams;
    stale {e records} die inside [Durable.ingest]).

    Fault points: [repl.send] fires before each outbound record frame;
    [repl.lease] eats an outbound lease grant; [repl.recv] fires inside
    [Durable.ingest]. *)

open Eager_robust
open Eager_durable

(** {1 Primary side} *)

type hub

val create_hub : retain:int -> lsn:int -> hub
(** A hub whose coverage starts at [lsn] (the primary's LSN at server
    start) and which retains the most recent [retain] records. *)

val publish : hub -> Wal.record list -> unit
(** Called by the commit tap with each fsynced batch, on the commit
    thread.  Never blocks beyond a queue push. *)

val close_hub : hub -> unit
(** Wake every sender with [Closed]; part of server shutdown. *)

val hub_last_seq : hub -> int

type entry = { record : Wal.record; pub_ms : float }
(** A retained record plus the commit-tap publication time — the
    standby's lag_ms is [now - pub_ms] of the last applied record. *)

type wait_result =
  | Records of entry list  (** contiguous records after the cursor *)
  | Gap
      (** the hub's retention window moved past the cursor; catch up
          from the on-disk WAL *)
  | Idle  (** nothing new within the timeout — heartbeat time *)
  | Closed  (** server shutting down *)

val wait_since : hub -> seq:int -> timeout_ms:float -> wait_result
(** Everything published after [seq], blocking up to [timeout_ms]. *)

type sender_stats = {
  mutable shipped_lsn : int;
  mutable last_send_ms : float;
      (** when the last frame reached this peer's socket — telemetry
          only; delivery is proven by acks, not writes *)
  mutable acked_lsn : int;
      (** highest applied LSN the standby acknowledged — the semi-sync
          watermark *)
  mutable lease_anchor_ms : float;
      (** send-timestamp of the last lease grant the standby echoed:
          the primary holds its lease iff [now - anchor <= lease_ms]
          for {e some} sender.  Anchored at the grant's send (not the
          ack's arrival) so the standby's observation window always
          outlives the primary's reckoning — see DESIGN.md §15 *)
}

val sender_loop :
  hub:hub ->
  wal_path:string ->
  conn:Wire.conn ->
  heartbeat_ms:float ->
  stats:sender_stats ->
  cursor:int ->
  epoch_now:(unit -> int) ->
  lease_ms:float ->
  (unit, Err.t) result
(** Stream to one standby from [cursor] (its handshake LSN) until the
    hub closes ([Ok ()]), the peer drops, or a typed error (injected
    [repl.send] fault, unservable gap) ends the session.  Each frame
    carries [epoch_now ()] (records carry their own stamped epoch) and
    a [lease_ms] grant; pass [lease_ms = 0.] when failover is off. *)

(** {1 Elections} *)

type vote = {
  v_addr : string;
  v_lsn : int;
  v_epoch : int;
  v_role : string;
  v_granted : bool;
      (** the responder's ballot for the probe's target epoch: each
          peer grants at most one candidate per epoch per window, so
          two racing candidates can never both assemble a quorum *)
}
(** A peer's answer to an election probe: its listen address, applied
    LSN, cluster epoch, role (["primary"]/["standby"]/["fenced"]) and
    ballot. *)

val probe :
  addr:Client.addr ->
  timeout_ms:float ->
  epoch:int ->
  lsn:int ->
  self:string ->
  candidate:bool ->
  (vote, Err.t) result
(** One [ELEC]/[VOTE] round-trip on a throwaway connection; both the
    connect and the read are bounded by [timeout_ms].  [epoch] and
    [lsn] announce the prober's position; [self] its address;
    [candidate] whether this probe may collect a ballot (false for
    fact-finding sweeps — a primary checking for a successor, an
    abstaining standby looking for the leader).  The caller ranks
    candidates by (epoch, LSN, address) — newest history wins, then
    highest LSN, ties to the smallest address — needs a quorum of
    granted ballots to promote, and treats a live primary at an equal
    or higher epoch as an abort. *)

(** {1 Standby side} *)

type standby_stats = {
  smu : Mutex.t;
  mutable connected : bool;
  mutable applied_lsn : int;
  mutable primary_lsn : int;
  mutable lag_ms : float;
  mutable reconnects : int;
  mutable stream_epoch : int;  (** highest epoch the stream has carried *)
  mutable lease_ms : float;  (** size of the last non-zero grant *)
  mutable lease_deadline_ms : float;
      (** when the lease observation window lapses (monotonised clock);
          0 = no grant ever observed *)
}

val standby_line : standby_stats -> primary:string -> string
(** The STATUS line: role, connection state, applied/primary LSN, lag
    in records and milliseconds, reconnect count, stream epoch and
    remaining lease. *)

type applier

val start_applier :
  addr:Client.addr ->
  read_timeout_ms:float ->
  backoff_ms:float ->
  seed:int ->
  lsn:int ->
  ingest:(Wal.record -> (unit, Err.t) result) ->
  epoch_now:(unit -> int) ->
  observe:(epoch:int -> lease_ms:float -> unit) ->
  on_error:(Err.t -> unit) ->
  applier
(** Spawn the applier thread.  [lsn] is the standby's recovered LSN
    (the first handshake value); [ingest] must be thread-safe against
    the server's readers (take the commit lock); [epoch_now] is the
    node's cluster-epoch floor (handshake arg + zombie-stream guard);
    [observe] is called with every epoch/lease the stream carries, on
    the applier thread — it must not block.  [on_error] observes each
    broken-stream error before the reconnect backoff. *)

val stop_applier : applier -> unit
(** Stop, yank any blocked read, join the thread.  Idempotent in
    effect; the handle is dead afterwards. *)

val applier_stats : applier -> standby_stats
