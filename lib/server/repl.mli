(** WAL-shipping replication: hub, sender, applier.

    Asynchronous, ack-free log shipping.  The primary's commit tap
    {!publish}es each fsynced batch into a bounded in-memory {!hub};
    one {!sender_loop} per connected standby streams records out as
    [RECD] frames (heartbeating with [RHB] when idle), catching up from
    the on-disk WAL when the hub's retention window has moved on, and
    refusing with a typed error when a checkpoint truncated the records
    a standby needs — that standby must re-seed from a fresh backup.

    The standby side is an {!applier}: a thread that connects to the
    primary, handshakes with a single [REPL <last_lsn>] frame, feeds
    every shipped record to an [ingest] closure (the server wraps
    [Durable.ingest] in its commit lock), and reconnects with jittered
    exponential backoff whenever the stream breaks.  Only
    {!stop_applier} (promotion or shutdown) ends it.

    Fault points: [repl.send] fires before each outbound record frame;
    [repl.recv] fires inside [Durable.ingest]. *)

open Eager_robust
open Eager_durable

(** {1 Primary side} *)

type hub

val create_hub : retain:int -> lsn:int -> hub
(** A hub whose coverage starts at [lsn] (the primary's LSN at server
    start) and which retains the most recent [retain] records. *)

val publish : hub -> Wal.record list -> unit
(** Called by the commit tap with each fsynced batch, on the commit
    thread.  Never blocks beyond a queue push. *)

val close_hub : hub -> unit
(** Wake every sender with [Closed]; part of server shutdown. *)

val hub_last_seq : hub -> int

type entry = { record : Wal.record; pub_ms : float }
(** A retained record plus the commit-tap publication time — the
    standby's lag_ms is [now - pub_ms] of the last applied record. *)

type wait_result =
  | Records of entry list  (** contiguous records after the cursor *)
  | Gap
      (** the hub's retention window moved past the cursor; catch up
          from the on-disk WAL *)
  | Idle  (** nothing new within the timeout — heartbeat time *)
  | Closed  (** server shutting down *)

val wait_since : hub -> seq:int -> timeout_ms:float -> wait_result
(** Everything published after [seq], blocking up to [timeout_ms]. *)

type sender_stats = { mutable shipped_lsn : int }

val sender_loop :
  hub:hub ->
  wal_path:string ->
  conn:Wire.conn ->
  heartbeat_ms:float ->
  stats:sender_stats ->
  cursor:int ->
  (unit, Err.t) result
(** Stream to one standby from [cursor] (its handshake LSN) until the
    hub closes ([Ok ()]), the peer drops, or a typed error (injected
    [repl.send] fault, unservable gap) ends the session. *)

(** {1 Standby side} *)

type standby_stats = {
  smu : Mutex.t;
  mutable connected : bool;
  mutable applied_lsn : int;
  mutable primary_lsn : int;
  mutable lag_ms : float;
  mutable reconnects : int;
}

val standby_line : standby_stats -> primary:string -> string
(** The STATUS line: role, connection state, applied/primary LSN, lag
    in records and milliseconds, reconnect count. *)

type applier

val start_applier :
  addr:Client.addr ->
  read_timeout_ms:float ->
  backoff_ms:float ->
  seed:int ->
  lsn:int ->
  ingest:(Wal.record -> (unit, Err.t) result) ->
  on_error:(Err.t -> unit) ->
  applier
(** Spawn the applier thread.  [lsn] is the standby's recovered LSN
    (the first handshake value); [ingest] must be thread-safe against
    the server's readers (take the commit lock).  [on_error] observes
    each broken-stream error before the reconnect backoff. *)

val stop_applier : applier -> unit
(** Stop, yank any blocked read, join the thread.  Idempotent in
    effect; the handle is dead afterwards. *)

val applier_stats : applier -> standby_stats
