(* Length-prefixed frames over a file descriptor, every read bounded by
   a deadline.  The only blocking primitives in lib/server live in
   [recv_chunk] below, behind a [Unix.select] with a remaining-budget
   timeout — which is what the lint rule banning naked blocking reads
   in this library is checking for. *)

open Eager_robust

let max_header = 256
let max_payload = 16 * 1024 * 1024

(* The loopback shortcut and dotted-quad literals resolve without a
   syscall; any other name goes through getaddrinfo (DNS, /etc/hosts) —
   so tcp:db.internal:7070 works, not just IP literals. *)
let resolve_host host =
  if host = "localhost" then Ok Unix.inet_addr_loopback
  else
    match Unix.inet_addr_of_string host with
    | a -> Ok a
    | exception Failure _ -> (
        let infos =
          try
            Unix.getaddrinfo host ""
              [ Unix.AI_FAMILY Unix.PF_INET; Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
          with Unix.Unix_error _ | Not_found -> []
        in
        match
          List.find_map
            (fun ai ->
              match ai.Unix.ai_addr with
              | Unix.ADDR_INET (a, _) -> Some a
              | _ -> None)
            infos
        with
        | Some a -> Ok a
        | None -> Error (Err.io "cannot resolve host %S" host))

type conn = { fd : Unix.file_descr; buf : Buffer.t }

let of_fd fd = { fd; buf = Buffer.create 4096 }

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

type frame = { verb : string; args : string list; payload : string }

(* pull one chunk off the socket within the remaining budget; returns
   the number of bytes read (0 = EOF) *)
let recv_chunk c ~deadline =
  let remaining = (deadline -. Clock.now_ms ()) /. 1000. in
  if remaining <= 0. then Error (Err.io "read timed out")
  else
    match Unix.select [ c.fd ] [] [] remaining with
    | [], _, _ -> Error (Err.io "read timed out")
    | _ :: _, _, _ ->
        Err.protect ~kind:Err.Io (fun () ->
            let bytes = Bytes.create 8192 in
            let n = Unix.read c.fd bytes 0 8192 in (* timeout-ok: bounded by the select above *)
            if n > 0 then Buffer.add_subbytes c.buf bytes 0 n;
            n)
    | exception Unix.Unix_error (e, _, _) ->
        Error (Err.io "select: %s" (Unix.error_message e))

(* index of '\n' in the buffered bytes, if any *)
let newline_pos c =
  let s = Buffer.contents c.buf in
  String.index_opt s '\n'

let parse_header line =
  match String.split_on_char ' ' (String.trim line) with
  | [] | [ "" ] -> Error (Err.io "empty frame header")
  | parts -> (
      let rec split_last acc = function
        | [ last ] -> (List.rev acc, last)
        | x :: rest -> split_last (x :: acc) rest
        | [] -> assert false
      in
      let head, len_s = split_last [] parts in
      match (head, int_of_string_opt len_s) with
      | verb :: args, Some len when len >= 0 && len <= max_payload ->
          Ok (verb, args, len)
      | _, Some len when len > max_payload ->
          Error (Err.io "frame payload of %d bytes exceeds the %d limit" len
                   max_payload)
      | _ -> Error (Err.io "malformed frame header %S" line))

let read_frame ?fault c ~timeout_ms =
  let ( let* ) = Err.( let* ) in
  let* () = match fault with None -> Ok () | Some point -> Fault.check point in
  let deadline = Clock.now_ms () +. timeout_ms in
  (* phase 1: a complete header line *)
  let rec header_loop () =
    match newline_pos c with
    | Some i -> Ok (Some i)
    | None ->
        if Buffer.length c.buf > max_header then
          Error (Err.io "frame header exceeds %d bytes" max_header)
        else
          let* n = recv_chunk c ~deadline in
          if n = 0 then
            if Buffer.length c.buf = 0 then Ok None (* orderly EOF *)
            else Error (Err.io "connection closed mid-frame")
          else header_loop ()
  in
  let* nl = header_loop () in
  match nl with
  | None -> Ok None
  | Some nl ->
      let line = String.sub (Buffer.contents c.buf) 0 nl in
      let* verb, args, len = parse_header line in
      (* phase 2: the payload *)
      let rec payload_loop () =
        if Buffer.length c.buf >= nl + 1 + len then begin
          let all = Buffer.contents c.buf in
          let payload = String.sub all (nl + 1) len in
          Buffer.clear c.buf;
          (* keep any bytes of the next frame already received *)
          let rest_start = nl + 1 + len in
          Buffer.add_substring c.buf all rest_start
            (String.length all - rest_start);
          Ok (Some { verb; args; payload })
        end
        else
          let* n = recv_chunk c ~deadline in
          if n = 0 then Error (Err.io "connection closed mid-frame")
          else payload_loop ()
      in
      payload_loop ()

(* a zero-timeout peek: bytes already buffered, or pending on the
   socket — how a duplex peer (the replication sender draining RACKs)
   reads opportunistically without ever blocking its write path *)
let readable c =
  Buffer.length c.buf > 0
  ||
  match Unix.select [ c.fd ] [] [] 0. with
  | [], _, _ -> false
  | _ -> true
  | exception Unix.Unix_error _ -> false

let write_all fd s =
  Err.protect ~kind:Err.Io (fun () ->
      let b = Bytes.of_string s in
      let total = Bytes.length b in
      let sent = ref 0 in
      while !sent < total do
        let n = Unix.write fd b !sent (total - !sent) in
        if n <= 0 then raise (Sys_error "short write");
        sent := !sent + n
      done)

let write_frame c ~verb ?(args = []) payload =
  let header =
    String.concat " " ((verb :: args) @ [ string_of_int (String.length payload) ])
  in
  write_all c.fd (header ^ "\n" ^ payload)

let ok c payload = write_frame c ~verb:"OK" payload
let err c ~kind payload = write_frame c ~verb:"ERR" ~args:[ kind ] payload

(* election frames: a candidate probes with ELEC, a peer answers VOTE.
   The trailing flag separates a real candidacy ("c" — may collect
   ballots) from a fact-finding sweep ("f" — a primary checking for a
   successor, or an abstaining standby looking for the new leader);
   granting a ballot to a fact-finder would pin the voter's ledger to a
   node that is not even running. *)
let elec c ~epoch ~lsn ~addr ~candidate =
  write_frame c ~verb:"ELEC"
    ~args:
      [ string_of_int epoch; string_of_int lsn; addr;
        (if candidate then "c" else "f");
      ]
    ""

let vote c ~addr ~lsn ~epoch ~role ~granted =
  write_frame c ~verb:"VOTE"
    ~args:
      [
        addr;
        string_of_int lsn;
        string_of_int epoch;
        role;
        (if granted then "y" else "n");
      ]
    ""

(* replication ack, standby → primary: the applied LSN plus the echoed
   send-timestamp of the last observed lease grant ("-" when the frame
   carried none) — what actually renews the primary's lease *)
let rack c ~lsn ~grant =
  write_frame c ~verb:"RACK" ~args:[ string_of_int lsn; grant ] ""

let busy c ~retry_after_ms payload =
  write_frame c ~verb:"BUSY" ~args:[ string_of_int retry_after_ms ] payload
