(* Admission control: session slots, fair-FIFO statement slots, and a
   shared global row pool.

   Waiting is implemented by polling under the lock with short sleeps
   rather than a condition variable: OCaml's [Condition] has no timed
   wait, and the wait budget ([max_wait_ms]) is a hard part of the
   degradation contract — a waiter must be able to give up on schedule
   even if no release ever happens.  The poll interval (2 ms) costs
   nothing at this scale and keeps the implementation free of helper
   threads.  Fairness: each waiter takes a dense arrival number; only
   the waiter whose number is at the head of the queue may take a freed
   slot, so admission is strictly arrival-ordered. *)

open Eager_robust

type config = {
  max_sessions : int;
  max_active : int;
  max_queued : int;
  max_wait_ms : float;
  global_rows : int option;
  statement_limits : Governor.limits;
}

let default_config =
  {
    max_sessions = 64;
    max_active = 8;
    max_queued = 32;
    max_wait_ms = 2000.;
    global_rows = None;
    statement_limits = Governor.no_limits;
  }

type refusal = { reason : Err.t; retry_after_ms : int }

type t = {
  cfg : config;
  mu : Mutex.t;
  pool : Governor.pool option;
  mutable n_sessions : int;
  mutable n_active : int;
  mutable next_arrival : int;
  waiting : int Queue.t; (* arrival numbers, head = next to admit *)
}

let create cfg =
  {
    cfg;
    mu = Mutex.create ();
    pool = Option.map (fun cap -> Governor.pool ~cap) cfg.global_rows;
    n_sessions = 0;
    n_active = 0;
    next_arrival = 0;
    waiting = Queue.create ();
  }

let config t = t.cfg

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* back-off hint sized to the load we are shedding: the fuller the
   queue, the longer the client should stay away *)
let retry_hint t =
  25 * (1 + t.n_active + Queue.length t.waiting)

let refuse t fmt =
  Printf.ksprintf
    (fun msg ->
      Error { reason = Err.make Err.Resource msg; retry_after_ms = retry_hint t })
    fmt

let open_session t =
  locked t (fun () ->
      if t.n_sessions >= t.cfg.max_sessions then
        refuse t "server full: %d sessions connected, limit %d" t.n_sessions
          t.cfg.max_sessions
      else begin
        t.n_sessions <- t.n_sessions + 1;
        Ok ()
      end)

let close_session t =
  locked t (fun () -> t.n_sessions <- max 0 (t.n_sessions - 1))

type ticket = { gov : Governor.t; mutable released : bool }

let governor tk = tk.gov

let make_ticket t =
  { gov = Governor.create ?pool:t.pool t.cfg.statement_limits; released = false }

(* remove one occurrence of [x] from the queue, preserving order *)
let queue_remove q x =
  let keep = Queue.create () in
  Queue.iter (fun y -> if y <> x then Queue.add y keep) q;
  Queue.clear q;
  Queue.transfer keep q

let admit t =
  Mutex.lock t.mu;
  if t.n_active < t.cfg.max_active && Queue.is_empty t.waiting then begin
    t.n_active <- t.n_active + 1;
    let tk = make_ticket t in
    Mutex.unlock t.mu;
    Ok tk
  end
  else if Queue.length t.waiting >= t.cfg.max_queued then begin
    let r =
      refuse t "server overloaded: %d executing, %d queued (queue limit %d)"
        t.n_active
        (Queue.length t.waiting)
        t.cfg.max_queued
    in
    Mutex.unlock t.mu;
    r
  end
  else begin
    let me = t.next_arrival in
    t.next_arrival <- t.next_arrival + 1;
    Queue.add me t.waiting;
    let deadline = Clock.now_ms () +. t.cfg.max_wait_ms in
    let rec wait () =
      if t.n_active < t.cfg.max_active && Queue.peek_opt t.waiting = Some me
      then begin
        ignore (Queue.pop t.waiting);
        t.n_active <- t.n_active + 1;
        let tk = make_ticket t in
        Mutex.unlock t.mu;
        Ok tk
      end
      else if Clock.now_ms () >= deadline then begin
        queue_remove t.waiting me;
        let r =
          refuse t
            "admission wait exceeded %.0f ms (%d executing, %d queued)"
            t.cfg.max_wait_ms t.n_active
            (Queue.length t.waiting)
        in
        Mutex.unlock t.mu;
        r
      end
      else begin
        Mutex.unlock t.mu;
        Clock.sleep_ms 2.;
        Mutex.lock t.mu;
        wait ()
      end
    in
    wait ()
  end

let release t tk =
  if not tk.released then begin
    tk.released <- true;
    Governor.finish tk.gov;
    locked t (fun () -> t.n_active <- max 0 (t.n_active - 1))
  end

let sessions t = locked t (fun () -> t.n_sessions)
let active t = locked t (fun () -> t.n_active)
let queued t = locked t (fun () -> Queue.length t.waiting)

let pool_in_use t =
  match t.pool with None -> 0 | Some p -> Governor.pool_in_use p
