(* One cached frozen copy of the database, stamped with the LSN of the
   last committed batch.  [get] is called under the server's commit
   lock, so the copy it takes is a clean batch boundary; everything a
   reader then does happens against private structures (see
   Database.reader_view) with zero locking. *)

open Eager_storage

type t = {
  mu : Mutex.t;
  mutable cached : (int * Database.t) option;
  mutable copies : int;
}

let create () = { mu = Mutex.create (); cached = None; copies = 0 }

let get t ~lsn ~db =
  Mutex.lock t.mu;
  let frozen =
    match t.cached with
    | Some (l, snap) when l = lsn -> snap
    | _ ->
        let snap = Database.snapshot db in
        t.cached <- Some (lsn, snap);
        t.copies <- t.copies + 1;
        snap
  in
  Mutex.unlock t.mu;
  Database.reader_view frozen

let cached_lsn t =
  Mutex.lock t.mu;
  let l = Option.map fst t.cached in
  Mutex.unlock t.mu;
  l

let copies t =
  Mutex.lock t.mu;
  let n = t.copies in
  Mutex.unlock t.mu;
  n
