(** The client half of the wire protocol, with bounded retries.

    A {!request} is one [STMT] frame and one response frame, every read
    deadline-bounded.  {!run} adds the resilience policy: reconnect and
    retry, sleeping the server's [retry_after_ms] hint (lightly
    jittered) when a typed [Resource] refusal carries one, and falling
    back to jittered exponential backoff only when there is no hint —
    but retrying only on failures where the server cannot have executed
    the script: connect
    failures, incomplete sends (a torn request frame never parses),
    and server-shed [BUSY] responses (shed {e before} execution by
    contract).  A failure {e after} the request frame was fully
    written (response-read timeout, connection lost) is surfaced to
    the caller instead of retried: the loss may postdate the commit,
    and silently re-running non-idempotent writes would apply them
    twice.  Statement errors ([ERR] frames) are returned immediately —
    retrying a refused statement is pointless. *)

open Eager_robust

type addr = A_unix of string | A_tcp of string * int

val parse_addr : string -> (addr, string) result
(** ["unix:PATH"], ["tcp:HOST:PORT"], or a bare path (unix socket). *)

val addr_to_string : addr -> string

type config = {
  addr : addr;
  timeout_ms : float;  (** per-response read deadline *)
  retries : int;  (** additional attempts after the first *)
  backoff_ms : float;  (** base backoff, doubled per attempt, jittered *)
  seed : int;  (** jitter seed — explicit so tests are reproducible *)
  redirects : int;
      (** [Fenced] redirects {!run} follows before giving up; 0 pins the
          client to its configured node (a probe that must not wander) *)
}

val config : ?timeout_ms:float -> ?retries:int -> ?backoff_ms:float ->
  ?seed:int -> ?redirects:int -> addr -> config
(** Defaults: 30 s timeout, 5 retries, 25 ms base backoff, seed 1,
    2 redirects. *)

type response =
  | Ok_text of string  (** rendered result text *)
  | Refused of { retry_after_ms : int; msg : string }
      (** the server shed this request before executing it *)
  | Failed of { kind : string; msg : string }
      (** a typed statement error; not retryable *)

type conn

val connect : config -> (conn, Err.t) result
val close : conn -> unit

val request : conn -> string -> (response, Err.t) result
(** Send one SQL script, read one response.  [Error] means the
    connection itself failed (refused, timed out, torn) — the caller
    should reconnect. *)

val ping : conn -> (unit, Err.t) result

val run : config -> string -> (response, Err.t) result
(** Connect, {!request}, close — retrying duplicate-safe failures
    (connect errors, incomplete sends, [Refused] responses) up to
    [retries] times with jittered backoff.  Returns the last refusal
    or error if the budget is exhausted; a post-send transport error
    is returned without retrying (the server may have executed the
    script — the error's context says so).

    A [Fenced] failure naming a new primary ([redirect=<addr>] in the
    message) is followed transparently, up to [redirects] hops: a
    fenced node refuses {e before} executing, so re-running the script
    at the named primary cannot double-apply it. *)
