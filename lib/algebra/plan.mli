(** Logical query plans — the paper's algebra (Section 4.1).

    [G[GA]] is {!constructor:Group} (with the aggregation [F[AA]] fused in,
    as every execution engine does — the paper's [F[AA] πA[GA AA] G[GA]]
    pipeline), [σ[C]] is {!constructor:Select}, [πA/πD[B]] is
    {!constructor:Project} with [dedup] false/true, [×] is
    {!constructor:Product}, and [Join] abbreviates [σ[C](L × R)]. *)

open Eager_schema
open Eager_expr

type t =
  | Scan of { table : string; rel : string; schema : Schema.t }
  | Select of { pred : Expr.t; input : t }
  | Project of { dedup : bool; cols : Colref.t list; input : t }
  | Product of t * t
  | Join of { pred : Expr.t; left : t; right : t }
  | Group of {
      by : Colref.t list;
      aggs : Agg.t list;
      scalar : bool;
          (** Distinguishes two semantics that coincide except on empty
              input.  [scalar = false] is the paper's [F[AA] G[GA]]: an
              empty input has no groups and yields no rows — {i even when
              [by] is empty} (this arises in E2 when [GA1+] is empty,
              paper Theorem 1 Case 1).  [scalar = true] is SQL aggregation
              without GROUP BY: always exactly one row; requires
              [by = []]. *)
      unique_groups : bool;
          (** An optimizer promise that [by] functionally determines the
              whole input row (it contains a derived key), so every group
              is a singleton: the executor skips hashing/sorting and maps
              rows directly — Klug's observation with Dayal's key
              condition, generalised to derived keys (paper Section 2).
              Set by [Eager_opt.Unique_group.mark]; unsound if the promise
              is false. *)
      input : t;
    }
  | Partial_group of {
      by : Colref.t list;
      aggs : Agg.t list;
      cap : int;
          (** Flush threshold: the executor's group table never holds more
              than about [cap] live groups — when it fills, the current
              (group, partial-accumulator) rows are emitted and the table
              is cleared, so the same group may appear several times in
              the output stream. *)
      input : t;
    }
      (** Partial pre-aggregation (the eager-aggregation generalization
          and the memory-efficient multi-way aggregation technique): like
          {!constructor:Group} with [scalar = false], except the operator
          is free to emit {i several} partial rows per group.  Only sound
          under a finalizing [Group] whose aggregates re-combine the
          partials (see [Eager_algebra.Agg.decompose]); the planner never
          emits it bare. *)
  | Sort of { by : (Colref.t * bool) list; input : t }
      (** ORDER BY; the flag is [true] for DESC.  NULLs sort first on
          ascending columns (the [Value.compare_total] order). *)
  | Map of { items : (Colref.t * Expr.t) list; input : t }
      (** Generalised projection: each output column is a named scalar
          expression over the input row (SELECT a, price * qty AS total).
          Never eliminates duplicates. *)

val scan : table:string -> rel:string -> Schema.t -> t
(** [Schema.t] here is the base-table schema qualified by [rel]. *)

val select : Expr.t -> t -> t
(** Identity when the predicate is trivially true. *)

val sort : (Colref.t * bool) list -> t -> t
(** Identity when the column list is empty. *)

val map_items : (Colref.t * Expr.t) list -> t -> t

val project : ?dedup:bool -> Colref.t list -> t -> t
val join : Expr.t -> t -> t -> t
val group :
  ?scalar:bool ->
  ?unique_groups:bool ->
  by:Colref.t list ->
  aggs:Agg.t list ->
  t ->
  t
(** [scalar] and [unique_groups] default to [false]; raises
    [Invalid_argument] if [scalar] is set with non-empty [by]. *)

val partial_group : by:Colref.t list -> aggs:Agg.t list -> cap:int -> t -> t
(** Raises [Invalid_argument] when [cap < 1]. *)

val schema_of : t -> Schema.t
(** Raises [Failure] on ill-formed plans (unknown columns etc.). *)

val relations : t -> string list
(** Range variables introduced by scans, left to right. *)

val label : t -> string
(** One-line description of the root operator (no children). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val pp_annotated : note:(t -> string option) -> Format.formatter -> t -> unit
(** Tree printer with a per-node annotation — used to render the
    cardinality-labelled plans of Figures 1 and 8. *)
