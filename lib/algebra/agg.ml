open Eager_value
open Eager_schema
open Eager_expr

type func =
  | Count_star
  | Count of Expr.t
  | Count_distinct of Expr.t
  | Sum of Expr.t
  | Min of Expr.t
  | Max of Expr.t
  | Avg of Expr.t

type calc =
  | Const of Value.t
  | Call of func
  | Arith of Expr.binop * calc * calc
  | Neg of calc

type t = { name : Colref.t; calc : calc }

let make name calc = { name; calc }
let count_star name = make name (Call Count_star)
let count name e = make name (Call (Count e))
let count_distinct name e = make name (Call (Count_distinct e))
let sum name e = make name (Call (Sum e))
let min_ name e = make name (Call (Min e))
let max_ name e = make name (Call (Max e))
let avg name e = make name (Call (Avg e))

let func_operand = function
  | Count_star -> None
  | Count e | Count_distinct e | Sum e | Min e | Max e | Avg e -> Some e

let columns t =
  let rec go acc = function
    | Const _ -> acc
    | Call f -> (
        match func_operand f with
        | None -> acc
        | Some e -> Colref.Set.union acc (Expr.columns e))
    | Arith (_, a, b) -> go (go acc a) b
    | Neg a -> go acc a
  in
  go Colref.Set.empty t.calc

let equal_func a b =
  match a, b with
  | Count_star, Count_star -> true
  | Count x, Count y
  | Count_distinct x, Count_distinct y
  | Sum x, Sum y | Min x, Min y | Max x, Max y | Avg x, Avg y ->
      Expr.equal x y
  | _ -> false

let rec equal_calc a b =
  match a, b with
  | Const x, Const y -> Eager_value.Value.equal x y
  | Call f, Call g -> equal_func f g
  | Arith (o1, x1, y1), Arith (o2, x2, y2) ->
      o1 = o2 && equal_calc x1 x2 && equal_calc y1 y2
  | Neg x, Neg y -> equal_calc x y
  | _ -> false

let operand_type schema e =
  match Expr.infer schema e with Ok t -> t | Error _ -> Ctype.Float

let rec out_type schema = function
  | Const Value.Null -> Ctype.Int
  | Const (Value.Int _) -> Ctype.Int
  | Const (Value.Float _) -> Ctype.Float
  | Const (Value.Str _) -> Ctype.String
  | Const (Value.Bool _) -> Ctype.Bool
  | Call Count_star | Call (Count _) | Call (Count_distinct _) -> Ctype.Int
  | Call (Avg _) -> Ctype.Float
  | Call (Sum e) | Call (Min e) | Call (Max e) -> operand_type schema e
  | Arith (_, a, b) ->
      let ta = out_type schema a and tb = out_type schema b in
      if Ctype.equal ta tb then ta else Ctype.Float
  | Neg a -> out_type schema a

(* Partial/final decomposition for eager (partial) pre-aggregation.

   Each aggregate-function call is replaced by a combining call over a
   fresh partial column: COUNT-like calls pre-count and re-SUM, SUM
   re-SUMs, MIN/MAX re-apply themselves, and AVG splits into a partial
   SUM and COUNT pair divided at the top (the numerator is multiplied by
   1.0 so an integer operand column cannot fall into integer division —
   AVG's output is always a float).  COUNT(DISTINCT _) is not
   decomposable: partial duplicate elimination cannot be re-combined
   without the full value sets. *)
exception Not_decomposable of string

let decompose (aggs : t list) : (t list * t list, string) result =
  let partials = ref [] in
  let n = ref 0 in
  let fresh_partial calc =
    let name = Colref.make "" (Printf.sprintf "p$%d" !n) in
    incr n;
    partials := make name calc :: !partials;
    Expr.Col name
  in
  let rec final (c : calc) : calc =
    match c with
    | Const v -> Const v
    | Neg a -> Neg (final a)
    | Arith (op, a, b) -> Arith (op, final a, final b)
    | Call f -> (
        match f with
        | Count_star -> Call (Sum (fresh_partial (Call Count_star)))
        | Count e -> Call (Sum (fresh_partial (Call (Count e))))
        | Sum e -> Call (Sum (fresh_partial (Call (Sum e))))
        | Min e -> Call (Min (fresh_partial (Call (Min e))))
        | Max e -> Call (Max (fresh_partial (Call (Max e))))
        | Avg e ->
            let psum = fresh_partial (Call (Sum e)) in
            let pcount = fresh_partial (Call (Count e)) in
            Arith
              ( Expr.Div,
                Arith (Expr.Mul, Call (Sum psum), Const (Value.Float 1.0)),
                Call (Sum pcount) )
        | Count_distinct _ ->
            raise
              (Not_decomposable
                 "COUNT(DISTINCT _) is not decomposable into partial \
                  aggregates"))
  in
  match List.map (fun a -> { a with calc = final a.calc }) aggs with
  | finals -> Ok (List.rev !partials, finals)
  | exception Not_decomposable msg -> Error msg

let decomposable aggs = Result.is_ok (decompose aggs)

let func_to_string = function
  | Count_star -> "COUNT(*)"
  | Count e -> Printf.sprintf "COUNT(%s)" (Expr.to_string e)
  | Count_distinct e -> Printf.sprintf "COUNT(DISTINCT %s)" (Expr.to_string e)
  | Sum e -> Printf.sprintf "SUM(%s)" (Expr.to_string e)
  | Min e -> Printf.sprintf "MIN(%s)" (Expr.to_string e)
  | Max e -> Printf.sprintf "MAX(%s)" (Expr.to_string e)
  | Avg e -> Printf.sprintf "AVG(%s)" (Expr.to_string e)

let rec calc_to_string = function
  | Const v -> Value.to_string v
  | Call f -> func_to_string f
  | Arith (op, a, b) ->
      let ops =
        match op with
        | Expr.Add -> "+"
        | Expr.Sub -> "-"
        | Expr.Mul -> "*"
        | Expr.Div -> "/"
      in
      Printf.sprintf "(%s %s %s)" (calc_to_string a) ops (calc_to_string b)
  | Neg a -> Printf.sprintf "(-%s)" (calc_to_string a)

let to_string t =
  Printf.sprintf "%s AS %s" (calc_to_string t.calc) (Colref.to_string t.name)

let pp ppf t = Format.pp_print_string ppf (to_string t)
