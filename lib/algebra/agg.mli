(** Aggregation expressions — the paper's [F[AA]].

    Each output column of a group-by is an arithmetic expression over
    aggregate-function calls, e.g. [COUNT(A1) + SUM(A2 + A3)] (Section 4.1).
    SQL2 NULL rules apply: [Count_star] counts rows, COUNT(e)/SUM/MIN/MAX/AVG
    ignore rows where the operand is NULL, and SUM/MIN/MAX/AVG of an
    all-NULL group is NULL. *)

open Eager_value
open Eager_schema
open Eager_expr

type func =
  | Count_star
  | Count of Expr.t
  | Count_distinct of Expr.t
      (** duplicate-sensitive, yet still pushable: when FD1/FD2 hold, an E1
          group and its E2 counterpart contain matching rows with equal
          R1-column values (Main Theorem proof), so any function of that
          multiset — including DISTINCT aggregates — agrees *)
  | Sum of Expr.t
  | Min of Expr.t
  | Max of Expr.t
  | Avg of Expr.t

type calc =
  | Const of Value.t
  | Call of func
  | Arith of Expr.binop * calc * calc
  | Neg of calc

type t = { name : Colref.t; calc : calc }
(** A named output column of the aggregation. *)

val make : Colref.t -> calc -> t
val count_star : Colref.t -> t
val count : Colref.t -> Expr.t -> t
val count_distinct : Colref.t -> Expr.t -> t
val sum : Colref.t -> Expr.t -> t
val min_ : Colref.t -> Expr.t -> t
val max_ : Colref.t -> Expr.t -> t
val avg : Colref.t -> Expr.t -> t

val columns : t -> Colref.Set.t
(** The aggregation columns [AA] referenced by this expression. *)

val equal_calc : calc -> calc -> bool
(** Structural equality (used to match HAVING aggregates against the
    SELECT list). *)

val out_type : Schema.t -> calc -> Ctype.t
(** Result type given the input schema: COUNT is [Int], AVG is [Float],
    SUM/MIN/MAX take the operand's type. *)

val decompose : t list -> (t list * t list, string) result
(** [decompose aggs] splits a list of aggregates into
    [(partials, finals)] for eager partial pre-aggregation below a join:
    [partials] are computed by a {!Eager_algebra.Plan.Partial_group}
    below, each under a fresh reserved ["p$<i>"] output name, and
    [finals] re-combine those partial columns in a finalizing group above
    (COUNT/COUNT(e) → SUM of partial counts, SUM → SUM, MIN/MAX →
    MIN/MAX, AVG → partial SUM and COUNT divided at the top).  The
    [finals] keep the original output names, so everything above the
    finalizing group is unchanged.  [Error] when any aggregate contains
    [COUNT(DISTINCT _)], which has no partial form. *)

val decomposable : t list -> bool

val func_to_string : func -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit
