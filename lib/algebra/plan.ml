open Eager_schema
open Eager_expr

type t =
  | Scan of { table : string; rel : string; schema : Schema.t }
  | Select of { pred : Expr.t; input : t }
  | Project of { dedup : bool; cols : Colref.t list; input : t }
  | Product of t * t
  | Join of { pred : Expr.t; left : t; right : t }
  | Group of {
      by : Colref.t list;
      aggs : Agg.t list;
      scalar : bool;
      unique_groups : bool;
      input : t;
    }
  | Partial_group of {
      by : Colref.t list;
      aggs : Agg.t list;
      cap : int;
      input : t;
    }
  | Sort of { by : (Colref.t * bool) list; input : t }
  | Map of { items : (Colref.t * Expr.t) list; input : t }

let scan ~table ~rel schema = Scan { table; rel; schema }

let select pred input =
  if Expr.equal pred Expr.etrue then input else Select { pred; input }

let project ?(dedup = false) cols input = Project { dedup; cols; input }
let join pred left right = Join { pred; left; right }
let sort by input = if by = [] then input else Sort { by; input }
let map_items items input = Map { items; input }

let group ?(scalar = false) ?(unique_groups = false) ~by ~aggs input =
  if scalar && by <> [] then
    invalid_arg "Plan.group: scalar aggregation cannot have grouping columns";
  Group { by; aggs; scalar; unique_groups; input }

let partial_group ~by ~aggs ~cap input =
  if cap < 1 then
    invalid_arg "Plan.partial_group: the flush cap must be at least 1";
  Partial_group { by; aggs; cap; input }

let rec schema_of = function
  | Scan { schema; _ } -> schema
  | Select { input; _ } | Sort { input; _ } -> schema_of input
  | Map { items; input } ->
      let inner = schema_of input in
      Schema.make
        (List.map
           (fun (c, e) ->
             let ty =
               match Expr.infer inner e with
               | Ok t -> t
               | Error msg ->
                   failwith
                     (Printf.sprintf "Map item %s: %s" (Colref.to_string c) msg)
             in
             (c, ty))
           items)
  | Project { cols; input; _ } -> Schema.project (schema_of input) cols
  | Product (a, b) -> Schema.concat (schema_of a) (schema_of b)
  | Join { left; right; _ } -> Schema.concat (schema_of left) (schema_of right)
  | Group { by; aggs; input; _ } | Partial_group { by; aggs; input; _ } ->
      let inner = schema_of input in
      let by_cols = List.map (fun c -> (c, Schema.type_of inner c)) by in
      let agg_cols =
        List.map
          (fun (a : Agg.t) -> (a.Agg.name, Agg.out_type inner a.Agg.calc))
          aggs
      in
      Schema.make (by_cols @ agg_cols)

let rec relations = function
  | Scan { rel; _ } -> [ rel ]
  | Select { input; _ } | Project { input; _ } | Group { input; _ }
  | Partial_group { input; _ } | Sort { input; _ } | Map { input; _ } ->
      relations input
  | Product (a, b) | Join { left = a; right = b; _ } ->
      relations a @ relations b

let node_label = function
  | Scan { table; rel; _ } ->
      if String.equal table rel then Printf.sprintf "Scan %s" table
      else Printf.sprintf "Scan %s AS %s" table rel
  | Select { pred; _ } -> Printf.sprintf "Select [%s]" (Expr.to_string pred)
  | Project { dedup; cols; _ } ->
      Printf.sprintf "Project%s [%s]"
        (if dedup then " DISTINCT" else "")
        (String.concat ", " (List.map Colref.to_string cols))
  | Product _ -> "Product"
  | Join { pred; _ } -> Printf.sprintf "Join [%s]" (Expr.to_string pred)
  | Map { items; _ } ->
      Printf.sprintf "Map [%s]"
        (String.concat ", "
           (List.map
              (fun (c, e) ->
                Printf.sprintf "%s AS %s" (Expr.to_string e) (Colref.to_string c))
              items))
  | Sort { by; _ } ->
      Printf.sprintf "Sort [%s]"
        (String.concat ", "
           (List.map
              (fun (c, desc) ->
                Colref.to_string c ^ if desc then " DESC" else "")
              by))
  | Group { by; aggs; unique_groups; _ } ->
      Printf.sprintf "GroupBy%s [%s]%s"
        (if unique_groups then " (unique)" else "")
        (String.concat ", " (List.map Colref.to_string by))
        (match aggs with
        | [] -> ""
        | _ -> " " ^ String.concat ", " (List.map Agg.to_string aggs))
  | Partial_group { by; aggs; cap; _ } ->
      Printf.sprintf "PartialGroupBy [%s]%s (cap %d)"
        (String.concat ", " (List.map Colref.to_string by))
        (match aggs with
        | [] -> ""
        | _ -> " " ^ String.concat ", " (List.map Agg.to_string aggs))
        cap

let children = function
  | Scan _ -> []
  | Select { input; _ } | Project { input; _ } | Group { input; _ }
  | Partial_group { input; _ } | Sort { input; _ } | Map { input; _ } ->
      [ input ]
  | Product (a, b) | Join { left = a; right = b; _ } -> [ a; b ]

let label = node_label

let pp_annotated ~note ppf plan =
  let rec go indent p =
    let label = node_label p in
    let annot = match note p with Some s -> "   -- " ^ s | None -> "" in
    Format.fprintf ppf "%s%s%s@," indent label annot;
    List.iter (go (indent ^ "  ")) (children p)
  in
  Format.fprintf ppf "@[<v>";
  go "" plan;
  Format.fprintf ppf "@]"

let pp ppf plan = pp_annotated ~note:(fun _ -> None) ppf plan
let to_string plan = Format.asprintf "%a" pp plan
