(** Replayable regression corpus for the fuzz harness.

    Entries are plain SQL (written by {!write} from a shrunk failing
    case): a comment header with provenance and the [-- r1: ...]
    partition hint, DDL, data, and the SELECT under test.  {!replay_sql}
    pushes an entry through the real parser/binder/canonicaliser and
    re-runs the full {!Oracle.check_instance}. *)

open Eager_schema

val write :
  dir:string -> seed:int -> iteration:int -> reason:string ->
  Qgen.case -> string
(** Serialise the case under [dir] (created if missing); returns the
    path.  File name encodes seed, iteration and reason. *)

val write_multiway :
  dir:string -> seed:int -> iteration:int -> reason:string ->
  Mgen.case -> string
(** {!write} for a multi-way (3–4 relation) case; the file name gains a
    [multiway-] prefix. *)

val write_raw : dir:string -> filename:string -> string -> string
(** Write an already-rendered SQL entry verbatim; returns the path. *)

val r1_hint_of : string -> string list
(** Parse the [-- r1: R, ...] header line (empty list when absent). *)

val replay_sql :
  ?equal:(Row.t list -> Row.t list -> bool) ->
  ?faults:bool ->
  ?fault_seed:int ->
  string ->
  (int, string) result
(** Replay one corpus entry given as SQL text; [Ok n] is the number of
    SELECTs that passed the oracle ([Error] if there were none). *)

val replay_file :
  ?equal:(Row.t list -> Row.t list -> bool) ->
  ?faults:bool ->
  ?fault_seed:int ->
  string ->
  (int, string) result

val queries_of_sql :
  string -> (Eager_storage.Database.t * Eager_core.Canonical.t list, string) result
(** Bind a corpus script without running the oracle: execute its DDL/DML
    into a fresh database and canonicalise each SELECT.  Used by the
    batch-size differential tests, which run the resulting plans through
    both the pipeline executor and the naive reference evaluator. *)

val queries_of_file :
  string -> (Eager_storage.Database.t * Eager_core.Canonical.t list, string) result

val replay_dir :
  ?equal:(Row.t list -> Row.t list -> bool) ->
  ?faults:bool ->
  ?fault_seed:int ->
  string ->
  (int * int, string) result
(** Replay every [*.sql] under the directory in name order; [Ok (files,
    selects)].  A missing directory replays vacuously as [Ok (0, 0)]. *)
