(** Seeded generator of Yan/Larson-form instances: schema (keys,
    nullable columns), skewed NULL-heavy data, and a query drawn from
    the canonical class [SELECT ga, AGG(R.v) FROM R, S WHERE C1 ∧ C0 ∧
    C2 GROUP BY ga], including the Theorem 2 DISTINCT/subset-projection
    variants.

    Everything is a function of the supplied {!Eager_workload.Gen.t};
    the record {!case} is deliberately concrete so the shrinker can
    propose structural simplifications. *)

open Eager_value
open Eager_storage
open Eager_core
open Eager_parser
open Eager_workload

type s_key = No_key | Primary_x | Unique_x
(** Key declared on [S(x, y)]: none, PRIMARY KEY (x), or UNIQUE (x) —
    the declaration TestFD consults for FD2. *)

type case = {
  s_key : s_key;
  r_rows : (Value.t * Value.t * Value.t) list;  (** R(a, b, v) *)
  s_rows : (Value.t * Value.t) list;  (** S(x, y) *)
  c1 : int;  (** R-only predicate: 0 none, 1 [b >= 1], 2 [b = 1] *)
  c0 : int;  (** join predicate: 0 none, 1 [a = x], 2 [a = x AND b = y] *)
  c2 : int;  (** S-only predicate: 0 none, 1 [y <= 2], 2 [y = 2] *)
  ga1_b : bool;  (** group by R.b *)
  ga2_x : bool;  (** group by S.x *)
  ga2_y : bool;  (** group by S.y *)
  agg : int;  (** 0..6: COUNT, SUM, MIN, MAX, AVG, COUNT DISTINCT, COUNT star *)
  distinct_subset : bool;
      (** Theorem 2 variant: SELECT DISTINCT over a strict subset of the
          grouping columns *)
}

val agg_kinds : int

val generate : Gen.t -> case
(** Draw a case; always has at least one grouping column. *)

val build :
  ?storage:Database.storage_config ->
  case ->
  (Database.t * Canonical.t, string) result
(** Materialise the instance and canonicalise the query; [storage]
    builds it over the paged engine so the oracle sweeps exercise the
    buffer pool and spill paths. *)

val to_sql : ?header:string list -> case -> string
(** The case as a replayable SQL script (via the AST printer, so the
    text re-parses verbatim); [header] lines become leading comments,
    followed by the [-- r1: R] partition hint. *)

val statements : case -> Ast.statement list
val size : case -> int
(** Total row count, the shrinker's progress measure. *)

val pp : Format.formatter -> case -> unit
val to_string : case -> string
