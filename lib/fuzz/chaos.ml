(* Deterministic chaos harness for lease-based failover: each schedule
   boots a REAL 3-node cluster (three eagerdb processes over unix
   sockets), drives seeded writer load through a redirect-following
   client, injects one fault from the schedule's template — SIGKILL the
   primary, SIGSTOP/SIGCONT partition, backwards clock jumps
   (clock.jump), slow fsyncs (wal.slow_fsync) — and then checks three
   invariants:

     1. exactly one node accepts writes;
     2. every acked write is present on the final primary;
     3. the live standbys converge to a byte-identical WAL.

   Everything is derived from the schedule seed (an explicit
   [Random.State]; the global [Random] is banned repo-wide), so a
   failing schedule replays exactly. *)

open Eager_robust
open Eager_server

type template = Kill | Partition | Clockjump | Slowdisk

let template_name = function
  | Kill -> "kill"
  | Partition -> "partition"
  | Clockjump -> "clock-jump"
  | Slowdisk -> "slow-disk"

let templates = [| Kill; Partition; Clockjump; Slowdisk |]

(* ------------------------- small utilities ------------------------ *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go k = k + m <= n && (String.sub s k m = sub || go (k + 1)) in
  go 0

(* "applied_lsn=17" -> 17; the first occurrence of [key]= wins *)
let field_int st key =
  let pat = key ^ "=" in
  let pl = String.length pat in
  let n = String.length st in
  let rec find i =
    if i + pl > n then None
    else if String.sub st i pl = pat then
      let j = ref (i + pl) in
      while !j < n && st.[!j] >= '0' && st.[!j] <= '9' do
        incr j
      done;
      if !j > i + pl then int_of_string_opt (String.sub st (i + pl) (!j - i - pl))
      else None
    else find (i + 1)
  in
  find 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* ------------------------------ nodes ----------------------------- *)

type node = {
  name : string;
  sock : string;
  dir : string; (* the CURRENT db dir; a revive re-seeds into a fresh one *)
  log : string;
  mutable db_gen : int;
  mutable pid : int option;
}

let client ?(redirects = 2) n =
  Client.config ~timeout_ms:4000. ~retries:0 ~redirects
    (Client.A_unix n.sock)

let sql n stmt =
  match Client.run (client n) stmt with
  | Ok r -> r
  | Error e -> Client.Failed { kind = "Io"; msg = Err.to_string e }

let status_of n =
  match n.pid with
  | None -> ""
  | Some _ -> (
      match sql n "STATUS;" with Client.Ok_text s -> s | _ -> "")

let db_dir n = Printf.sprintf "%s.%d" n.dir n.db_gen

let spawn ~exe n args =
  (try Sys.remove n.sock with Sys_error _ -> ());
  let out =
    Unix.openfile n.log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  let argv = Array.of_list (exe :: args) in
  let pid = Unix.create_process exe argv Unix.stdin out out in
  Unix.close out;
  n.pid <- Some pid

let signal_node n s =
  match n.pid with
  | None -> ()
  | Some pid -> ( try Unix.kill pid s with Unix.Unix_error _ -> ())

let reap n =
  match n.pid with
  | None -> ()
  | Some pid ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      n.pid <- None

let wait_for ?(timeout_ms = 20_000.) what pred =
  let deadline = Clock.now_ms () +. timeout_ms in
  let rec go () =
    if pred () then Ok ()
    else if Clock.now_ms () > deadline then
      Error (Printf.sprintf "timed out waiting for %s" what)
    else begin
      Clock.sleep_ms 50.;
      go ()
    end
  in
  go ()

(* ---------------------- one chaos schedule ------------------------ *)

type outcome = { mutable acked : int list }

let lease_ms = 300.

let peer_args others =
  List.concat_map (fun o -> [ "--peers"; "unix:" ^ o.sock ]) others

let common_args =
  [ "--read-timeout-ms"; "5000"; "--lease-ms"; string_of_float lease_ms ]

let spawn_primary ~exe ?faults n ~others =
  let fargs =
    match faults with
    | None -> []
    | Some (points, seed, rate) ->
        [
          "--fault-seed"; string_of_int seed;
          "--fault-rate"; string_of_float rate;
          "--fault-points"; points;
        ]
  in
  spawn ~exe n
    ([ "serve"; "--listen"; "unix:" ^ n.sock; "--db"; db_dir n ]
    @ peer_args others @ common_args @ fargs)

let spawn_standby ~exe ?faults n ~primary ~others ~seed =
  let fargs =
    match faults with
    | None -> []
    | Some (points, fseed, rate) ->
        [
          "--fault-seed"; string_of_int fseed;
          "--fault-rate"; string_of_float rate;
          "--fault-points"; points;
        ]
  in
  spawn ~exe n
    ([
       "standby"; "--listen"; "unix:" ^ n.sock; "--db"; db_dir n;
       "--primary"; "unix:" ^ primary.sock;
       "--repl-seed"; string_of_int seed;
     ]
    @ peer_args others @ common_args @ fargs)

let wait_sock n =
  wait_for ~timeout_ms:10_000. (n.name ^ " socket")
      (fun () -> Sys.file_exists n.sock)

(* insert [id], trying every live node; the redirect-following client
   turns a standby's refusal into a hop to the primary, so which node we
   START at does not matter — that is the availability story under
   test.  Returns true iff some node acked. *)
let try_insert nodes id =
  let stmt = Printf.sprintf "INSERT INTO t VALUES (%d);" id in
  List.exists
    (fun n ->
      match n.pid with
      | None -> false
      | Some _ -> (
          match sql n stmt with
          | Client.Ok_text out -> contains out "inserted"
          | _ -> false))
    nodes

(* a burst of writes; every acked id goes into the oracle *)
let write_burst nodes out ~base ~count =
  for k = 1 to count do
    let id = base + k in
    if try_insert nodes id then out.acked <- id :: out.acked
  done

let live_nodes nodes = List.filter (fun n -> n.pid <> None) nodes

let find_primary nodes =
  List.find_opt
    (fun n ->
      let st = status_of n in
      contains st "failover: epoch=" && contains st "role=primary")
    (live_nodes nodes)

(* invariant 1: exactly one live node accepts a write (no redirects) *)
let check_one_writable nodes probe_id =
  let writable =
    List.filter
      (fun n ->
        match n.pid with
        | None -> false
        | Some _ -> (
            match
              Client.run
                (client ~redirects:0 n)
                (Printf.sprintf "INSERT INTO t VALUES (%d);" probe_id)
            with
            | Ok (Client.Ok_text out) -> contains out "inserted"
            | _ -> false))
      nodes
  in
  match writable with
  | [ _ ] -> Ok ()
  | l ->
      Error
        (Printf.sprintf "%d writable nodes (%s), expected exactly 1"
           (List.length l)
           (String.concat "," (List.map (fun n -> n.name) l)))

(* invariant 2: every acked id is a row on the final primary *)
let check_acked_present primary out =
  match sql primary "SELECT t.a FROM t;" with
  | Client.Ok_text rows ->
      let present = Hashtbl.create 512 in
      List.iter
        (fun line ->
          match int_of_string_opt (String.trim line) with
          | Some id -> Hashtbl.replace present id ()
          | None -> ())
        (String.split_on_char '\n' rows);
      let missing =
        List.filter (fun id -> not (Hashtbl.mem present id)) out.acked
      in
      if missing = [] then Ok ()
      else
        Error
          (Printf.sprintf "%d acked writes missing on %s (first: %d)"
             (List.length missing) primary.name (List.hd missing))
  | r ->
      Error
        (Printf.sprintf "reading back rows on %s failed: %s" primary.name
           (match r with
           | Client.Failed { msg; _ } -> msg
           | _ -> "unexpected response"))

(* invariant 3: once every live standby reports zero lag, the WALs of
   all live nodes are byte-identical (standbys re-log shipped records
   verbatim, epochs included) *)
let check_convergence nodes primary =
  let hub =
    match field_int (status_of primary) "hub_lsn" with Some v -> v | None -> -1
  in
  let standbys =
    List.filter (fun n -> n.pid <> None && n.name <> primary.name) nodes
  in
  let caught (n : node) =
    let st = status_of n in
    match field_int st "applied_lsn" with Some l -> l = hub | None -> false
  in
  match
    wait_for ~timeout_ms:15_000. "standby convergence" (fun () ->
        List.for_all caught standbys)
  with
  | Error m -> Error m
  | Ok () -> (
      let wal n = Filename.concat (db_dir n) "wal.eagerdb" in
      let pw = read_file (wal primary) in
      match
        List.find_opt (fun n -> read_file (wal n) <> pw) standbys
      with
      | Some n ->
          Error
            (Printf.sprintf "%s's WAL diverges from %s's after convergence"
               n.name primary.name)
      | None -> Ok ())

let ( let* ) = Result.bind

(* the schedule body: returns Ok () or Error reason *)
let run_schedule ~exe ~tmp ~index ~seed ~template =
  let rng = Random.State.make [| seed; index; 0xc4a05 |] in
  let node name =
    {
      name;
      sock = Filename.concat tmp (Printf.sprintf "s%d_%s.sock" index name);
      dir = Filename.concat tmp (Printf.sprintf "s%d_%s.db" index name);
      log = Filename.concat tmp (Printf.sprintf "s%d_%s.log" index name);
      db_gen = 0;
      pid = None;
    }
  in
  let a = node "a" and b = node "b" and c = node "c" in
  let nodes = [ a; b; c ] in
  let out = { acked = [] } in
  let fault_seed = Random.State.int rng 1_000_000 in
  Fun.protect
    ~finally:(fun () -> List.iter reap nodes)
    (fun () ->
      (* clock-jump arms the fault on a standby (its lease observation
         must absorb the jump); slow-disk arms on the primary (its
         fsyncs stall but the lease must survive) *)
      let pfaults =
        if template = Slowdisk then Some ("wal.slow_fsync", fault_seed, 0.05)
        else None
      in
      let sfaults =
        if template = Clockjump then Some ("clock.jump", fault_seed, 0.2)
        else None
      in
      spawn_primary ~exe ?faults:pfaults a ~others:[ b; c ];
      let* () = wait_sock a in
      spawn_standby ~exe ?faults:sfaults b ~primary:a ~others:[ a; c ]
        ~seed:(seed + index);
      spawn_standby ~exe c ~primary:a ~others:[ a; b ]
        ~seed:(seed + index + 1);
      let* () = wait_sock b in
      let* () = wait_sock c in
      (* both standbys must be granted leases before semi-sync writes
         can ack *)
      let* () =
        wait_for "standbys connected" (fun () ->
            match field_int (status_of a) "peers" with
            | Some p -> p >= 2
            | None -> false)
      in
      let* () =
        wait_for "schema created" (fun () ->
            match sql a "CREATE TABLE t (a INT);" with
            | Client.Ok_text _ -> true
            | _ -> false)
      in
      let base = (index + 1) * 1_000_000 in
      write_burst nodes out ~base ~count:(20 + Random.State.int rng 10);
      if out.acked = [] then Error "no write acked before the fault"
      else begin
        (* ---- the fault ---- *)
        let* () =
          match template with
          | Kill ->
              signal_node a Sys.sigkill;
              reap a;
              let* () =
                wait_for "post-kill promotion" (fun () ->
                    find_primary nodes <> None)
              in
              (* revive the dead node as a freshly-seeded standby of the
                 winner: it must catch up from lsn 0 and converge *)
              let winner =
                match find_primary nodes with Some w -> w | None -> assert false
              in
              let loser =
                List.find (fun n -> n.name <> winner.name && n.name <> "a")
                  nodes
              in
              a.db_gen <- a.db_gen + 1;
              spawn_standby ~exe a ~primary:winner ~others:[ winner; loser ]
                ~seed:(seed + index + 2);
              wait_sock a
          | Partition ->
              signal_node a Sys.sigstop;
              let* () =
                wait_for "post-partition promotion" (fun () ->
                    find_primary nodes <> None
                    && (match find_primary nodes with
                       | Some w -> w.name <> "a"
                       | None -> false))
              in
              (* heal: the zombie comes back, probes the cluster, and
                 must fence itself *)
              signal_node a Sys.sigcont;
              let* () =
                wait_for "zombie fences itself" (fun () ->
                    contains (status_of a) "role=fenced")
              in
              (* a fenced node is out of the cluster for good: reap it
                 so the convergence check ranges over live nodes only
                 (its WAL legitimately holds unacked superseded
                 records) *)
              reap a;
              Ok ()
          | Clockjump | Slowdisk ->
              (* no process dies: the cluster must simply ride it out
                 without a spurious election *)
              Clock.sleep_ms (3. *. lease_ms);
              let st = List.map status_of (live_nodes nodes) in
              if List.exists (fun s -> contains s "epoch=1") st then
                Error "spurious failover under an absorbed fault"
              else Ok ()
        in
        (* ---- more load after the fault ---- *)
        let* () =
          wait_for "a primary settles" (fun () -> find_primary nodes <> None)
        in
        let primary =
          match find_primary nodes with Some p -> p | None -> assert false
        in
        (* semi-sync: the primary cannot ack until a standby is streaming
           again, so wait for one connected sender before the burst *)
        let* () =
          wait_for "primary regains a connected standby" (fun () ->
              match field_int (status_of primary) "peers" with
              | Some p -> p >= 1
              | None -> false)
        in
        write_burst nodes out
          ~base:(base + 100_000)
          ~count:(20 + Random.State.int rng 10);
        let* () =
          match template with
          | Kill | Partition ->
              if primary.name = "a" then
                Error "the faulted primary is still primary"
              else Ok ()
          | Clockjump | Slowdisk ->
              if primary.name <> "a" then
                Error "spurious promotion under an absorbed fault"
              else Ok ()
        in
        (* ---- invariants ---- *)
        let* () = check_acked_present primary out in
        let* () = check_convergence nodes primary in
        let* () = check_one_writable nodes (base + 999_999) in
        Ok ()
      end)

(* --------------------------- the sweep ---------------------------- *)

let run ~exe ~seed ~schedules ~max_seconds ~quiet =
  let tmp =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "eagerdb_chaos_%d" (Unix.getpid ()))
  in
  rm_rf tmp;
  Unix.mkdir tmp 0o755;
  (* EAGERDB_CHAOS_KEEP=1 preserves the temp dir (sockets, db dirs,
     per-node logs) for post-mortem on a failing schedule *)
  let keep = Sys.getenv_opt "EAGERDB_CHAOS_KEEP" <> None in
  let started = Clock.now_ms () in
  let say fmt = Printf.ksprintf (fun s -> print_endline ("chaos: " ^ s)) fmt in
  let failures = ref 0 in
  let ran = ref 0 in
  Fun.protect
    ~finally:(fun () -> if keep then print_endline ("chaos: kept " ^ tmp) else rm_rf tmp)
    (fun () ->
      (try
         for i = 0 to schedules - 1 do
           let budget_left =
             match max_seconds with
             | None -> true
             | Some s -> Clock.now_ms () -. started < s *. 1000.
           in
           if budget_left then begin
             let template = templates.(i mod Array.length templates) in
             incr ran;
             match run_schedule ~exe ~tmp ~index:i ~seed ~template with
             | Ok () ->
                 if not quiet then
                   say "schedule %d (%s) seed=%d OK" i
                     (template_name template) seed
             | Error reason ->
                 incr failures;
                 say "schedule %d (%s) seed=%d FAIL: %s" i
                   (template_name template) seed reason
           end
         done
       with e ->
         incr failures;
         say "driver exception: %s" (Printexc.to_string e));
      say "%d/%d schedules passed%s" (!ran - !failures) !ran
        (match max_seconds with
        | Some s when !ran < schedules ->
            Printf.sprintf " (wall-clock cap %.0fs reached after %d)" s !ran
        | _ -> "");
      if !failures = 0 then 0 else 1)
