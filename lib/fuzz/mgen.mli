(** Seeded generator of {i multi-way} (3–4 relation) instances for the
    placement fuzzer: chain and star join graphs over an aggregated
    relation [R], NULL-heavy Int-only data, optional keys on the
    dimension relations, and a query from the N-ary canonical class
    [SELECT ga, AGG(R.v) FROM R, S, T(, U) WHERE joins ∧ locals GROUP
    BY ga].

    Everything is a function of the supplied {!Eager_workload.Gen.t}.
    Cases are born small (a handful of rows per relation), so there is
    no shrinker — a failing case is already close to minimal. *)

open Eager_value
open Eager_storage
open Eager_core
open Eager_parser
open Eager_workload

type shape = Chain | Star
(** Chain: [R.a = S.x AND S.y = T.u (AND T.w = U.p)].
    Star: [R.a = S.x AND R.b = T.u (AND R.c = U.p)] — [R] is the hub. *)

type case = {
  shape : shape;
  nrels : int;  (** 3 or 4 — whether [U] participates *)
  s_keyed : bool;  (** PRIMARY KEY (x) on [S] *)
  t_keyed : bool;  (** PRIMARY KEY (u) on [T] *)
  u_keyed : bool;  (** PRIMARY KEY (p) on [U] *)
  r_rows : (Value.t * Value.t * Value.t * Value.t) list;  (** R(a, b, c, v) *)
  s_rows : (Value.t * Value.t) list;  (** S(x, y) *)
  t_rows : (Value.t * Value.t) list;  (** T(u, w) *)
  u_rows : (Value.t * Value.t) list;  (** U(p, q) *)
  ga_rb : bool;  (** group by R.b *)
  ga_sx : bool;
      (** group by S.x — a (possibly keyed) join column, which is what
          lets FD2 chain across the far side and TestFD answer YES *)
  ga_sy : bool;  (** group by S.y *)
  ga_tu : bool;  (** group by T.u (ditto) *)
  ga_tw : bool;  (** group by T.w *)
  ga_uq : bool;  (** group by U.q (forced off when [nrels = 3]) *)
  c_r : bool;  (** local predicate [R.b >= 1] *)
  c_s : bool;  (** local predicate [S.y <= 2] *)
  agg : int;
      (** 0..6: COUNT, SUM, MIN, MAX, AVG, COUNT DISTINCT, COUNT star —
          same coding as {!Qgen.case} *)
}

val generate : Gen.t -> case
(** Draw a case; always has at least one grouping column. *)

val build : case -> (Database.t * Canonical.t, string) result
(** Materialise the instance and canonicalise the query with
    [r1_hint = ["R"]]. *)

val to_sql : ?header:string list -> case -> string
(** The case as a replayable SQL script (via the AST printer, so the
    text re-parses verbatim); [header] lines become leading comments,
    followed by the [-- r1: R] partition hint. *)

val statements : case -> Ast.statement list
val size : case -> int
(** Total row count across all relations. *)

val pp : Format.formatter -> case -> unit
val to_string : case -> string
