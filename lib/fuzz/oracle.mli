(** The Main Theorem as an executable oracle.

    Executes one instance three ways — forced E1, forced E2, planner's
    choice — and cross-checks the results under bag semantics with
    NULL-aware grouping, enforcing only directions that are theorems:

    - (a) TestFD YES ⇒ all three executions are bag-equal; TestFD NO ⇒
      forcing E2 yields a typed [Planner] refusal.
    - (b) TestFD YES ⇒ FD1/FD2 hold on the instance; both FDs holding ⇒
      raw E1 ≡ raw E2 on the instance (instance-wise sufficiency).
    - (c) Under injected [exec.next] faults each plan is fail-stop
      (typed [Exec] error or the exact fault-free bag); governor row
      budgets are a sharp threshold (exact charge passes, one less is a
      typed [Resource] refusal).
    - (d) Every aggregation placement over the join graph — full
      group-by or partial pre-aggregation forced below any admissible
      cut — returns the same bag as forced E1; partial placements run
      under a tiny operator cap (so flush epochs repeat groups) and are
      additionally cross-checked against the naive reference evaluator.
      A full placement may be refused (typed [Planner]) when TestFD
      says NO at that cut; a partial placement may be refused only for
      non-decomposable aggregates (COUNT DISTINCT). *)

open Eager_storage
open Eager_core
open Eager_schema

type violation = { tag : string; detail : string }
(** [tag] names the broken invariant ("e2-mismatch", "fd-contradiction",
    "fault", "budget", …); [detail] is the human-readable evidence. *)

val violation_to_string : violation -> string

type outcome = {
  verdict : Testfd.verdict option;
      (** [None] only when the case failed before TestFD ran *)
  fd_holds : bool;  (** both instance-level FDs hold *)
  violation : violation option;
}

val check_instance :
  ?equal:(Row.t list -> Row.t list -> bool) ->
  ?faults:bool ->
  ?fault_seed:int ->
  Database.t ->
  Canonical.t ->
  outcome
(** [equal] defaults to {!Eager_exec.Exec.multiset_equal}; it is
    injectable so the mutation smoke-test can plant a deliberately
    broken comparator and prove the harness catches it.  [faults]
    (default true) enables the injected-fault and governor-budget
    checks.  Always leaves the fault registry disarmed. *)

val check :
  ?equal:(Row.t list -> Row.t list -> bool) ->
  ?faults:bool ->
  ?fault_seed:int ->
  ?storage:Database.storage_config ->
  Qgen.case ->
  outcome
(** Materialise the case ({!Qgen.build}, over the paged engine when
    [storage] is given) and run {!check_instance}. *)
