(* The Main Theorem as an executable oracle.

   Each instance is executed three ways — forced E1, forced E2 (when
   admissible), planner's choice — and the results are cross-checked
   under SQL2 bag semantics with NULL-aware grouping.  Only directions
   that are actual theorems are enforced:

   (a) TestFD = YES  ⇒  forced E1, forced E2 and the planner's unforced
       choice are bag-equal; TestFD = NO ⇒ forcing E2 is refused with a
       typed [Planner] error.
   (b) TestFD = YES  ⇒  FD1 and FD2 hold on the instance (TestFD
       certifies all instances, so a single failing instance is a
       soundness bug).  Conversely, when both FDs hold on the instance
       the raw E1/E2 plans must agree on it (the sufficiency direction
       is instance-wise).  TestFD = NO with the FDs holding is the
       conservative gap the paper predicts — counted, never an error.
   (c) Fail-stop under injected faults: with a fault schedule armed on
       the executor, every run either fails with a typed [Exec] error or
       returns exactly the fault-free baseline — no partial or divergent
       results; when both plans fail under the same schedule their error
       kinds agree.  Governor budgets behave as a sharp threshold: the
       exact row charge succeeds, one row less is a typed [Resource]
       refusal. *)

open Eager_schema
open Eager_core
open Eager_exec
open Eager_opt
open Eager_robust

type violation = { tag : string; detail : string }

let violation_to_string v = Printf.sprintf "[%s] %s" v.tag v.detail

exception Violation of violation

let viol tag fmt =
  Printf.ksprintf (fun detail -> raise (Violation { tag; detail })) fmt

type outcome = {
  verdict : Testfd.verdict option;
      (** [None] only when the case failed before TestFD ran *)
  fd_holds : bool;  (** both instance-level FDs hold *)
  violation : violation option;
}

let rows_to_string rows =
  Printf.sprintf "{%s}" (String.concat "; " (List.map Row.to_string rows))

let run ?(governor = Governor.unlimited) db plan =
  (* on a paged database the breakers run with a fresh spill budget, so
     the sweeps exercise external sorts and grace partitioning too *)
  Exec.run_rows_checked
    ~options:
      { Exec.default_options with Exec.governor; spill = Spill.for_db db }
    db plan

let run_exn ~tag ~what db plan =
  match run db plan with
  | Ok rows -> rows
  | Error e -> viol tag "%s failed: %s" what (Err.to_string e)

(* ------------------------------------------------------------------ *)
(* invariant (c): fail-stop under one armed schedule                   *)

let fail_stop ~equal ~what ~baseline db plan =
  Fun.protect ~finally:Fault.reset (fun () ->
      match run db plan with
      | Ok rows ->
          if not (equal baseline rows) then
            viol "fault" "%s: run under faults neither failed nor matched \
                          the fault-free baseline: got %s, want %s"
              what (rows_to_string rows) (rows_to_string baseline)
      | Error e -> (
          (* executor faults surface as [Exec]; paged-IO faults
             (storage.page_read/write, exec.spill) surface as [Storage] —
             both are fail-stop *)
          match Err.kind e with
          | Err.Exec | Err.Storage -> ()
          | k ->
              viol "fault"
                "%s: faulted failure has kind %s, expected Exec or Storage \
                 (%s)"
                what (Err.kind_to_string k) (Err.to_string e)))

let fault_checks ~equal ~fault_seed db plans =
  List.iter
    (fun (what, plan, baseline) ->
      List.iter
        (fun n ->
          Fault.reset ();
          Fault.arm_nth "exec.next" n;
          fail_stop ~equal
            ~what:(Printf.sprintf "%s, exec.next fault #%d" what n)
            ~baseline db plan)
        [ 1; 2; 5 ];
      List.iter
        (fun rate ->
          Fault.reset ();
          Fault.arm_seeded ~seed:fault_seed ~rate ~points:[ "exec.next" ] ();
          fail_stop ~equal
            ~what:(Printf.sprintf "%s, seeded schedule rate=%g" what rate)
            ~baseline db plan)
        [ 0.05; 0.5 ];
      (* IO fault sweep: on a RAM database these points never fire (the
         run trivially matches the baseline); on a paged database they
         hit the pager and spill paths *)
      List.iter
        (fun rate ->
          Fault.reset ();
          Fault.arm_seeded ~seed:fault_seed ~rate
            ~points:
              [ "storage.page_read"; "storage.page_write"; "exec.spill" ]
            ();
          fail_stop ~equal
            ~what:(Printf.sprintf "%s, seeded IO schedule rate=%g" what rate)
            ~baseline db plan)
        [ 0.05; 0.5 ])
    plans

(* invariant (c), governor half: budgets are a sharp, typed threshold *)

let budget_checks ~equal db plans =
  List.iter
    (fun (what, plan, baseline) ->
      (* measure the charge: counting on, cap effectively infinite
         ([Governor.unlimited] shortcircuits and would count nothing) *)
      let meter =
        Governor.create { Governor.no_limits with Governor.max_rows = Some max_int }
      in
      (match run ~governor:meter db plan with
      | Ok rows ->
          if not (equal baseline rows) then
            viol "budget" "%s: metered run diverged from baseline" what
      | Error e ->
          viol "budget" "%s: metered run failed: %s" what (Err.to_string e));
      let charge = Governor.rows_charged meter in
      let with_cap cap =
        run
          ~governor:
            (Governor.create
               { Governor.no_limits with Governor.max_rows = Some cap })
          db plan
      in
      (match with_cap charge with
      | Ok rows ->
          if not (equal baseline rows) then
            viol "budget" "%s: run under the exact budget (%d rows) diverged"
              what charge
      | Error e ->
          viol "budget" "%s: exact budget of %d rows was refused: %s" what
            charge (Err.to_string e));
      if charge > 0 then
        match with_cap (charge - 1) with
        | Ok _ ->
            viol "budget"
              "%s: budget %d under a %d-row charge did not trip" what
              (charge - 1) charge
        | Error e -> (
            match Err.kind e with
            | Err.Resource -> ()
            | k ->
                viol "budget" "%s: budget breach has kind %s, expected \
                               Resource (%s)"
                  what (Err.kind_to_string k) (Err.to_string e)))
    plans

(* ------------------------------------------------------------------ *)
(* invariant (d): every aggregation placement the planner can emit —
   full or partial, at any admissible cut of the join graph — returns
   the same bag as forced E1, and the partial-operator pipeline agrees
   with the reference evaluator.  Partial placements run under a tiny
   operator cap so the flush-epoch path (repeated partial groups) is
   exercised on every instance. *)

let placement_checks ~equal db q rows1 =
  match Qgraph.of_canonical db q with
  | Error msg -> viol "qgraph" "join-graph construction failed: %s" msg
  | Ok g ->
      let decomposable = Eager_algebra.Agg.decomposable q.Canonical.aggs in
      List.iter
        (fun cut ->
          let below = String.concat ", " cut in
          (match
             Planner.decide
               ~force:(Planner.Force_placement { below = cut; partial = false })
               db q
           with
          | Ok d ->
              let rows =
                run_exn ~tag:"placement-run"
                  ~what:
                    (Printf.sprintf "forced full placement below {%s}" below)
                  db d.Planner.chosen
              in
              if not (equal rows1 rows) then
                viol "placement-mismatch"
                  "full placement below {%s} diverges from forced E1: got %s, \
                   want %s"
                  below (rows_to_string rows) (rows_to_string rows1)
          | Error e -> (
              (* a typed Planner refusal is TestFD answering NO at this
                 cut — legitimate; anything else is a harness bug *)
              match Err.kind e with
              | Err.Planner -> ()
              | k ->
                  viol "placement-reject"
                    "forced full placement below {%s} refused with kind %s, \
                     expected Planner (%s)"
                    below (Err.kind_to_string k) (Err.to_string e)));
          match
            Planner.decide ~partial_cap:2
              ~force:(Planner.Force_placement { below = cut; partial = true })
              db q
          with
          | Ok d ->
              let what =
                Printf.sprintf "forced partial placement below {%s}" below
              in
              let rows = run_exn ~tag:"partial-run" ~what db d.Planner.chosen in
              if not (equal rows1 rows) then
                viol "partial-mismatch"
                  "partial placement below {%s} diverges from forced E1: got \
                   %s, want %s"
                  below (rows_to_string rows) (rows_to_string rows1);
              (match
                 Err.protect ~kind:Err.Exec (fun () ->
                     Ref_eval.eval db d.Planner.chosen)
               with
              | Error e ->
                  viol "partial-ref" "%s: reference evaluation failed: %s" what
                    (Err.to_string e)
              | Ok ref_rows ->
                  if not (equal ref_rows rows) then
                    viol "partial-ref-mismatch"
                      "partial placement below {%s}: pipeline and reference \
                       evaluator disagree: exec=%s ref=%s"
                      below (rows_to_string rows) (rows_to_string ref_rows))
          | Error e -> (
              match (Err.kind e, decomposable) with
              | Err.Planner, false -> ()
                  (* COUNT(DISTINCT) is not decomposable — typed refusal
                     is the specified behavior *)
              | Err.Planner, true ->
                  viol "partial-reject"
                    "partial placement below {%s} refused although the \
                     aggregates are decomposable: %s"
                    below (Err.to_string e)
              | k, _ ->
                  viol "partial-reject"
                    "forced partial placement below {%s} refused with kind %s \
                     (%s)"
                    below (Err.kind_to_string k) (Err.to_string e)))
        (Qgraph.cuts g)

(* ------------------------------------------------------------------ *)

let check_instance ?(equal = Exec.multiset_equal) ?(faults = true)
    ?(fault_seed = 1) db q =
  Fault.reset ();
  try
    (* forced E1 is the reference execution *)
    let d1 =
      match Planner.decide ~force:Planner.E1 db q with
      | Ok d -> d
      | Error e -> viol "e1-plan" "forced E1 refused: %s" (Err.to_string e)
    in
    let rows1 = run_exn ~tag:"e1-run" ~what:"forced E1" db d1.Planner.chosen in
    let verdict = d1.Planner.verdict in
    (* (a): forced E2 agrees when TestFD certifies; refused (typed) when
       it does not *)
    let e2_info =
      match (Planner.decide ~force:Planner.E2 db q, verdict) with
      | Ok d2, Testfd.Yes ->
          let rows2 =
            run_exn ~tag:"e2-run" ~what:"forced E2" db d2.Planner.chosen
          in
          if not (equal rows1 rows2) then
            viol "e2-mismatch"
              "TestFD=YES but forced E1 and forced E2 disagree: E1=%s E2=%s"
              (rows_to_string rows1) (rows_to_string rows2);
          Some (d2.Planner.chosen, rows2)
      | Ok _, Testfd.No reason ->
          viol "e2-accept" "forced E2 accepted although TestFD said NO (%s)"
            reason
      | Error e, Testfd.Yes ->
          viol "e2-reject" "forced E2 refused although TestFD said YES: %s"
            (Err.to_string e)
      | Error e, Testfd.No _ -> (
          match Err.kind e with
          | Err.Planner -> None
          | k ->
              viol "e2-reject"
                "forced-E2 refusal has kind %s, expected Planner (%s)"
                (Err.kind_to_string k) (Err.to_string e))
    in
    (* (a) continued: the unforced planner picks either strategy, but its
       answer must be the same bag *)
    (match Planner.decide db q with
    | Ok dc ->
        let rc =
          run_exn ~tag:"choice-run" ~what:"planner's choice" db
            dc.Planner.chosen
        in
        if not (equal rows1 rc) then
          viol "choice-mismatch"
            "planner's unforced choice (%s) diverges from forced E1: \
             got %s, want %s"
            (Planner.kind_to_string dc.Planner.chosen_kind)
            (rows_to_string rc) (rows_to_string rows1)
    | Error e ->
        viol "choice-plan" "unforced planning failed: %s" (Err.to_string e));
    (* (b): the instance-level FD check against TestFD's verdict *)
    let fd = Theorem.check db q in
    let fd_holds = fd.Theorem.fd1 && fd.Theorem.fd2 in
    (match verdict with
    | Testfd.Yes when not fd_holds ->
        viol "fd-contradiction"
          "TestFD answered YES but the instance FDs fail (fd1=%b, fd2=%b)"
          fd.Theorem.fd1 fd.Theorem.fd2
    | _ -> ());
    if fd_holds then (
      (* sufficiency, instance-wise: both FDs hold ⇒ the raw plans agree
         on this instance even when TestFD was conservatively NO *)
      match
        (* the theorem check runs the raw two-sided plans on purpose,
           bypassing the planner under test *)
        Err.protect ~kind:Err.Planner (fun () ->
            Plans.e2 db q (* legacy-plan-ok: theorem check *))
      with
      | Error e ->
          viol "fd-sufficiency"
            "instance FDs hold but the raw E2 plan failed to build: %s"
            (Err.to_string e)
      | Ok p2 ->
          let raw1 =
            run_exn ~tag:"fd-sufficiency" ~what:"raw E1" db
              (Plans.e1 db q (* legacy-plan-ok: theorem check *))
          in
          if not (equal rows1 raw1) then
            viol "expand-mismatch"
              "forced E1 (with predicate expansion) disagrees with the raw \
               E1 plan: %s vs %s"
              (rows_to_string rows1) (rows_to_string raw1);
          let raw2 = run_exn ~tag:"fd-sufficiency" ~what:"raw E2" db p2 in
          if not (equal raw1 raw2) then
            viol "fd-sufficiency"
              "both instance FDs hold but raw E1 and raw E2 disagree: \
               E1=%s E2=%s"
              (rows_to_string raw1) (rows_to_string raw2));
    (* (d): the full placement sweep over the join graph *)
    placement_checks ~equal db q rows1;
    (* (c): fail-stop under injected faults and sharp governor budgets *)
    if faults then (
      let plans =
        ("forced E1", d1.Planner.chosen, rows1)
        ::
        (match e2_info with
        | Some (p, r) -> [ ("forced E2", p, r) ]
        | None -> [])
      in
      fault_checks ~equal ~fault_seed db plans;
      budget_checks ~equal db plans);
    { verdict = Some verdict; fd_holds; violation = None }
  with Violation v ->
    Fault.reset ();
    { verdict = None; fd_holds = false; violation = Some v }

let check ?equal ?faults ?fault_seed ?storage (c : Qgen.case) =
  match Qgen.build ?storage c with
  | Error msg ->
      {
        verdict = None;
        fd_holds = false;
        violation = Some { tag = "build"; detail = msg };
      }
  | Ok (db, q) -> check_instance ?equal ?faults ?fault_seed db q
