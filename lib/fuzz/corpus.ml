(* Replayable regression corpus.

   A corpus entry is plain SQL produced by {!Qgen.to_sql}: comment
   header (provenance plus the [-- r1: ...] partition hint the binder
   cannot reconstruct for aggregate-only selects), CREATE TABLEs,
   INSERTs, and the SELECT under test.  Replay pushes the text through
   the real front door — parser, binder, canonicaliser — and re-runs the
   full oracle, so a checked-in entry is a permanent regression test. *)

open Eager_core
open Eager_storage
open Eager_parser
open Eager_robust

(* ------------------------------------------------------------------ *)
(* writing *)

let sanitize s =
  String.map
    (fun ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> ch
      | _ -> '-')
    s

let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let write_raw ~dir ~filename sql =
  ensure_dir dir;
  let path = Filename.concat dir filename in
  let oc = open_out path in
  output_string oc sql;
  close_out oc;
  path

let repro_header ~seed ~iteration ~reason =
  [
    "eagerdb fuzz corpus: minimal repro (delta-debugged)";
    Printf.sprintf "seed: %d  iteration: %d" seed iteration;
    Printf.sprintf "reason: %s" reason;
    "replay: eagerdb fuzz --replay <this directory>";
  ]

let write ~dir ~seed ~iteration ~reason (c : Qgen.case) =
  write_raw ~dir
    ~filename:
      (Printf.sprintf "seed%d-iter%04d-%s.sql" seed iteration (sanitize reason))
    (Qgen.to_sql ~header:(repro_header ~seed ~iteration ~reason) c)

let write_multiway ~dir ~seed ~iteration ~reason (c : Mgen.case) =
  write_raw ~dir
    ~filename:
      (Printf.sprintf "multiway-seed%d-iter%04d-%s.sql" seed iteration
         (sanitize reason))
    (Mgen.to_sql ~header:(repro_header ~seed ~iteration ~reason) c)

(* ------------------------------------------------------------------ *)
(* replay *)

(* the [-- r1: R] header names the tables of the grouped side; the binder
   leaves the partition open (empty hint) for selects whose aggregates
   mention no table, e.g. a bare COUNT star *)
let r1_hint_of sql =
  let prefix = "-- r1:" in
  let plen = String.length prefix in
  String.split_on_char '\n' sql
  |> List.find_map (fun line ->
         let line = String.trim line in
         if String.length line >= plen && String.sub line 0 plen = prefix then
           Some
             (String.sub line plen (String.length line - plen)
             |> String.split_on_char ','
             |> List.map String.trim
             |> List.filter (fun s -> s <> ""))
         else None)
  |> Option.value ~default:[]

let replay_sql ?equal ?faults ?fault_seed sql =
  let hint = r1_hint_of sql in
  match Err.protect ~kind:Err.Parse (fun () -> Parser.parse_script sql) with
  | Error e -> Error (Err.to_string e)
  | Ok stmts ->
      let db = Database.create () in
      let rec go checked = function
        | [] ->
            if checked = 0 then Error "corpus entry contains no SELECT"
            else Ok checked
        | Ast.S_select sel :: rest -> (
            match Binder.bind_select db sel with
            | Error msg -> Error ("bind: " ^ msg)
            | Ok (Binder.Grouped input) -> (
                let input = { input with Canonical.r1_hint = hint } in
                match Canonical.of_input db input with
                | Error msg -> Error ("canonicalise: " ^ msg)
                | Ok q -> (
                    let o =
                      Oracle.check_instance ?equal ?faults ?fault_seed db q
                    in
                    match o.Oracle.violation with
                    | Some v -> Error (Oracle.violation_to_string v)
                    | None -> go (checked + 1) rest))
            | Ok _ ->
                Error "corpus SELECT did not bind to a grouped query")
        | st :: rest -> (
            match Binder.exec_statement db st with
            | Error msg -> Error msg
            | Ok _ -> go checked rest)
      in
      go 0 stmts

(* Bind a corpus script without running the oracle: execute the DDL and
   DML, canonicalise each SELECT against the database state at its
   position, and hand back the loaded database with the queries.  The
   batch-size differential tests use this to run the same corpus plans
   through both the pipeline and the reference evaluator. *)
let queries_of_sql sql =
  let hint = r1_hint_of sql in
  match Err.protect ~kind:Err.Parse (fun () -> Parser.parse_script sql) with
  | Error e -> Error (Err.to_string e)
  | Ok stmts ->
      let db = Database.create () in
      let rec go acc = function
        | [] ->
            if acc = [] then Error "corpus entry contains no SELECT"
            else Ok (db, List.rev acc)
        | Ast.S_select sel :: rest -> (
            match Binder.bind_select db sel with
            | Error msg -> Error ("bind: " ^ msg)
            | Ok (Binder.Grouped input) -> (
                let input = { input with Canonical.r1_hint = hint } in
                match Canonical.of_input db input with
                | Error msg -> Error ("canonicalise: " ^ msg)
                | Ok q -> go (q :: acc) rest)
            | Ok _ -> Error "corpus SELECT did not bind to a grouped query")
        | st :: rest -> (
            match Binder.exec_statement db st with
            | Error msg -> Error msg
            | Ok _ -> go acc rest)
      in
      go [] stmts

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let queries_of_file path =
  match queries_of_sql (read_file path) with
  | Ok v -> Ok v
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)

let replay_file ?equal ?faults ?fault_seed path =
  match replay_sql ?equal ?faults ?fault_seed (read_file path) with
  | Ok n -> Ok n
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)

let replay_dir ?equal ?faults ?fault_seed dir =
  if not (Sys.file_exists dir) then Ok (0, 0)
  else
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".sql")
      |> List.sort String.compare
      |> List.map (Filename.concat dir)
    in
    let rec go nfiles nselects = function
      | [] -> Ok (nfiles, nselects)
      | f :: rest -> (
          match replay_file ?equal ?faults ?fault_seed f with
          | Ok n -> go (nfiles + 1) (nselects + n) rest
          | Error msg -> Error msg)
    in
    go 0 0 files
