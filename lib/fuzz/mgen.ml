(* Multi-way (3-4 relation) instance generator for the placement fuzzer.

   The aggregated relation is always R; S, T and (in 4-relation cases) U
   are dimension relations joined in a chain (R-S-T-U) or a star (R is
   the hub).  Data is Int-only on purpose: partial pre-aggregation
   re-associates SUM/AVG accumulation, and float rounding would make
   bag-comparison against the reference evaluator flaky. *)

open Eager_value
open Eager_schema
open Eager_expr
open Eager_catalog
open Eager_storage
open Eager_core
open Eager_algebra
open Eager_parser
open Eager_workload

type shape = Chain | Star

type case = {
  shape : shape;
  nrels : int;
  s_keyed : bool;
  t_keyed : bool;
  u_keyed : bool;
  r_rows : (Value.t * Value.t * Value.t * Value.t) list;
  s_rows : (Value.t * Value.t) list;
  t_rows : (Value.t * Value.t) list;
  u_rows : (Value.t * Value.t) list;
  ga_rb : bool;
  ga_sx : bool;
  ga_sy : bool;
  ga_tu : bool;
  ga_tw : bool;
  ga_uq : bool;
  c_r : bool;
  c_s : bool;
  agg : int;
}

let cr = Colref.make

(* ------------------------------------------------------------------ *)
(* generation: the same skewed NULL-heavy small domains as Qgen, so
   NULL join keys, NULL groups and empty intermediate joins all appear
   within a few hundred iterations *)

let small_val ?(null_p = 0.25) g =
  if Gen.bool g null_p then Value.Null
  else Value.Int (1 + Gen.skewed g 3)

(* a dimension relation: when keyed, the join column is a dense
   non-NULL PRIMARY KEY; otherwise it is drawn from the small skewed
   domain like everything else *)
let dim_rows g ~keyed ~max_rows =
  List.init (Gen.int g max_rows) (fun i ->
      let k = if keyed then Value.Int (i + 1) else small_val g in
      (k, small_val g))

let generate g =
  let nrels = if Gen.bool g 0.5 then 3 else 4 in
  let shape = if Gen.bool g 0.5 then Chain else Star in
  let s_keyed = Gen.bool g 0.5 in
  let t_keyed = Gen.bool g 0.5 in
  let u_keyed = Gen.bool g 0.5 in
  let r_rows =
    List.init (Gen.int g 8) (fun _ ->
        (small_val g, small_val g, small_val g, small_val g))
  in
  let s_rows = dim_rows g ~keyed:s_keyed ~max_rows:5 in
  let t_rows = dim_rows g ~keyed:t_keyed ~max_rows:5 in
  let u_rows = if nrels = 4 then dim_rows g ~keyed:u_keyed ~max_rows:4 else [] in
  let ga_rb = Gen.bool g 0.4 in
  (* grouping by the keyed join columns (S.x, T.u) is what lets FD2
     chain across the far side, so TestFD-YES cuts actually appear *)
  let ga_sx = Gen.bool g 0.4 in
  let ga_sy = Gen.bool g 0.4 in
  let ga_tu = Gen.bool g 0.3 in
  let ga_tw = Gen.bool g 0.4 in
  let ga_uq = nrels = 4 && Gen.bool g 0.4 in
  (* the canonical class requires at least one grouping column *)
  let ga_sy =
    if not (ga_rb || ga_sx || ga_sy || ga_tu || ga_tw || ga_uq) then true
    else ga_sy
  in
  {
    shape;
    nrels;
    s_keyed;
    t_keyed;
    u_keyed;
    r_rows;
    s_rows;
    t_rows;
    u_rows;
    ga_rb;
    ga_sx;
    ga_sy;
    ga_tu;
    ga_tw;
    ga_uq;
    c_r = Gen.bool g 0.33;
    c_s = Gen.bool g 0.33;
    agg = Gen.int g Qgen.agg_kinds;
  }

(* ------------------------------------------------------------------ *)
(* materialisation *)

let coldef name : Table_def.column_def =
  { Table_def.cname = name; ctype = Ctype.Int; domain = None }

let key cols keyed = if keyed then [ Constr.Primary_key cols ] else []

let db_of (c : case) =
  let db = Database.create () in
  Database.create_table db
    (Table_def.make "S" [ coldef "x"; coldef "y" ] (key [ "x" ] c.s_keyed));
  Database.create_table db
    (Table_def.make "T" [ coldef "u"; coldef "w" ] (key [ "u" ] c.t_keyed));
  if c.nrels = 4 then
    Database.create_table db
      (Table_def.make "U" [ coldef "p"; coldef "q" ] (key [ "p" ] c.u_keyed));
  Database.create_table db
    (Table_def.make "R" [ coldef "a"; coldef "b"; coldef "c"; coldef "v" ] []);
  List.iter
    (fun (a, b, cc, v) -> Database.insert_exn db "R" [ a; b; cc; v ])
    c.r_rows;
  List.iter (fun (x, y) -> Database.insert_exn db "S" [ x; y ]) c.s_rows;
  List.iter (fun (u, w) -> Database.insert_exn db "T" [ u; w ]) c.t_rows;
  if c.nrels = 4 then
    List.iter (fun (p, q) -> Database.insert_exn db "U" [ p; q ]) c.u_rows;
  db

let join_conjuncts (c : case) =
  match c.shape with
  | Chain ->
      [
        Expr.eq (Expr.col "R" "a") (Expr.col "S" "x");
        Expr.eq (Expr.col "S" "y") (Expr.col "T" "u");
      ]
      @
      if c.nrels = 4 then
        [ Expr.eq (Expr.col "T" "w") (Expr.col "U" "p") ]
      else []
  | Star ->
      [
        Expr.eq (Expr.col "R" "a") (Expr.col "S" "x");
        Expr.eq (Expr.col "R" "b") (Expr.col "T" "u");
      ]
      @
      if c.nrels = 4 then
        [ Expr.eq (Expr.col "R" "c") (Expr.col "U" "p") ]
      else []

let where_conjuncts (c : case) =
  (if c.c_r then [ Expr.Cmp (Expr.Ge, Expr.col "R" "b", Expr.int 1) ] else [])
  @ (if c.c_s then [ Expr.Cmp (Expr.Le, Expr.col "S" "y", Expr.int 2) ] else [])
  @ join_conjuncts c

let group_by (c : case) =
  (if c.ga_rb then [ cr "R" "b" ] else [])
  @ (if c.ga_sx then [ cr "S" "x" ] else [])
  @ (if c.ga_sy then [ cr "S" "y" ] else [])
  @ (if c.ga_tu then [ cr "T" "u" ] else [])
  @ (if c.ga_tw then [ cr "T" "w" ] else [])
  @ if c.ga_uq then [ cr "U" "q" ] else []

let agg_of (c : case) =
  let v = Expr.col "R" "v" in
  let name = cr "" "agg" in
  match c.agg with
  | 0 -> Agg.count name v
  | 1 -> Agg.sum name v
  | 2 -> Agg.min_ name v
  | 3 -> Agg.max_ name v
  | 4 -> Agg.avg name v
  | 5 -> Agg.count_distinct name v
  | _ -> Agg.count_star name

let sources (c : case) =
  [
    { Canonical.table = "R"; rel = "R" };
    { Canonical.table = "S"; rel = "S" };
    { Canonical.table = "T"; rel = "T" };
  ]
  @ if c.nrels = 4 then [ { Canonical.table = "U"; rel = "U" } ] else []

let input_of (c : case) : Canonical.input =
  {
    Canonical.sources = sources c;
    where = Expr.conj (where_conjuncts c);
    group_by = group_by c;
    select_cols = group_by c;
    select_aggs = [ agg_of c ];
    select_distinct = false;
    select_having = None;
    r1_hint = [ "R" ];
  }

let build (c : case) =
  let db = db_of c in
  match Canonical.of_input db (input_of c) with
  | Ok q -> Ok (db, q)
  | Error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* SQL emission, via the AST printer so the text re-parses verbatim *)

let texpr_of_value = function
  | Value.Null -> Ast.E_null
  | Value.Int n -> Ast.E_int n
  | Value.Float f -> Ast.E_float f
  | Value.Str s -> Ast.E_str s
  | Value.Bool b -> Ast.E_bool b

let statements (c : case) =
  let int_ty = { Ast.tybase = "INTEGER"; tyarg = None } in
  let col name = Ast.It_column { name; ty = int_ty; constraints = [] } in
  let dim_table name k kcol keyed =
    Ast.S_create_table
      (name, [ col kcol; col k ] @ if keyed then [ Ast.It_primary [ kcol ] ] else [])
  in
  let tables =
    [
      dim_table "S" "y" "x" c.s_keyed;
      dim_table "T" "w" "u" c.t_keyed;
    ]
    @ (if c.nrels = 4 then [ dim_table "U" "q" "p" c.u_keyed ] else [])
    @ [ Ast.S_create_table ("R", [ col "a"; col "b"; col "c"; col "v" ]) ]
  in
  let insert name rows =
    match rows with
    | [] -> []
    | rows -> [ Ast.S_insert (name, List.map (List.map texpr_of_value) rows) ]
  in
  let inserts =
    insert "R" (List.map (fun (a, b, cc, v) -> [ a; b; cc; v ]) c.r_rows)
    @ insert "S" (List.map (fun (x, y) -> [ x; y ]) c.s_rows)
    @ insert "T" (List.map (fun (u, w) -> [ u; w ]) c.t_rows)
    @
    if c.nrels = 4 then insert "U" (List.map (fun (p, q) -> [ p; q ]) c.u_rows)
    else []
  in
  let ecol (r : Colref.t) = Ast.E_col (Some r.Colref.rel, r.Colref.name) in
  let agg_item =
    let v = Ast.E_col (Some "R", "v") in
    let call =
      match c.agg with
      | 0 -> Ast.E_call ("COUNT", [ v ])
      | 1 -> Ast.E_call ("SUM", [ v ])
      | 2 -> Ast.E_call ("MIN", [ v ])
      | 3 -> Ast.E_call ("MAX", [ v ])
      | 4 -> Ast.E_call ("AVG", [ v ])
      | 5 -> Ast.E_call ("COUNT_DISTINCT", [ v ])
      | _ -> Ast.E_call ("COUNT", [ Ast.E_star ])
    in
    (call, Some "agg")
  in
  let where =
    let rec conj = function
      | [] -> None
      | [ e ] -> Some e
      | e :: rest -> (
          match conj rest with
          | None -> Some e
          | Some r -> Some (Ast.E_bin ("AND", e, r)))
    in
    let atom (e : Expr.t) =
      match e with
      | Expr.Cmp (op, Expr.Col a, Expr.Col b) ->
          let op =
            match op with
            | Expr.Eq -> "="
            | Expr.Ge -> ">="
            | Expr.Le -> "<="
            | Expr.Lt -> "<"
            | Expr.Gt -> ">"
            | Expr.Ne -> "<>"
          in
          Ast.E_bin (op, ecol a, ecol b)
      | Expr.Cmp (op, Expr.Col a, Expr.Const (Value.Int n)) ->
          let op =
            match op with
            | Expr.Eq -> "="
            | Expr.Ge -> ">="
            | Expr.Le -> "<="
            | Expr.Lt -> "<"
            | Expr.Gt -> ">"
            | Expr.Ne -> "<>"
          in
          Ast.E_bin (op, ecol a, Ast.E_int n)
      | _ ->
          Eager_robust.Err.failf Eager_robust.Err.Planner
            "mgen: unexpected predicate shape %s" (Expr.to_string e)
    in
    conj (List.map atom (where_conjuncts c))
  in
  let select =
    Ast.S_select
      {
        Ast.distinct = false;
        items =
          List.map (fun cref -> (ecol cref, None)) (group_by c) @ [ agg_item ];
        from =
          List.map (fun (s : Canonical.source) -> (s.Canonical.table, None))
            (sources c);
        where;
        group_by =
          List.map (fun (r : Colref.t) -> (Some r.Colref.rel, r.Colref.name))
            (group_by c);
        having = None;
        order_by = [];
      }
  in
  tables @ inserts @ [ select ]

let to_sql ?(header = []) (c : case) =
  let b = Buffer.create 512 in
  List.iter (fun line -> Buffer.add_string b ("-- " ^ line ^ "\n")) header;
  Buffer.add_string b "-- r1: R\n";
  List.iter
    (fun st -> Buffer.add_string b (Ast.statement_to_string st ^ ";\n"))
    (statements c);
  Buffer.contents b

(* ------------------------------------------------------------------ *)

let size (c : case) =
  List.length c.r_rows + List.length c.s_rows + List.length c.t_rows
  + List.length c.u_rows

let to_string (c : case) =
  let v = Value.to_string in
  let pair (a, b) = Printf.sprintf "(%s,%s)" (v a) (v b) in
  let lines =
    [
      Printf.sprintf "%s over %d relations"
        (match c.shape with Chain -> "chain" | Star -> "star")
        c.nrels;
      Printf.sprintf "R = [%s]"
        (String.concat "; "
           (List.map
              (fun (a, b, cc, vv) ->
                Printf.sprintf "(%s,%s,%s,%s)" (v a) (v b) (v cc) (v vv))
              c.r_rows));
      Printf.sprintf "S = [%s]%s"
        (String.concat "; " (List.map pair c.s_rows))
        (if c.s_keyed then " (PRIMARY KEY (x))" else "");
      Printf.sprintf "T = [%s]%s"
        (String.concat "; " (List.map pair c.t_rows))
        (if c.t_keyed then " (PRIMARY KEY (u))" else "");
    ]
    @ (if c.nrels = 4 then
         [
           Printf.sprintf "U = [%s]%s"
             (String.concat "; " (List.map pair c.u_rows))
             (if c.u_keyed then " (PRIMARY KEY (p))" else "");
         ]
       else [])
    @ [
        Printf.sprintf
          "ga: rb=%b sx=%b sy=%b tu=%b tw=%b uq=%b  locals: c_r=%b c_s=%b  \
           agg=%d"
          c.ga_rb c.ga_sx c.ga_sy c.ga_tu c.ga_tw c.ga_uq c.c_r c.c_s c.agg;
      ]
  in
  String.concat "\n" lines

let pp ppf c = Format.pp_print_string ppf (to_string c)
