(** The differential fuzzing loop: seeded generation, the three-way
    oracle, shrinking, corpus output.

    Fully deterministic: iteration [i] of seed [s] draws from the
    independent stream [Gen.make2 s i], and fault schedules derive from
    [s + i] — the same config always produces the same summary. *)

open Eager_schema

type config = {
  seed : int;
  iters : int;
  faults : bool;  (** run the injected-fault and governor budget checks *)
  corpus_dir : string option;
      (** where to write shrunk repros; [None] keeps them in memory *)
  log : string -> unit;
}

val default_config : config
(** seed 20260806, 500 iterations, faults on, no corpus dir, silent. *)

type failure = {
  iteration : int;
  violation : Oracle.violation;
  shrunk : Qgen.case;
  corpus_path : string option;
}

type summary = {
  iterations : int;
  yes : int;  (** TestFD said YES *)
  no : int;  (** TestFD said NO *)
  fd_held : int;  (** instances where both FDs held *)
  failures : failure list;
}

val summary_to_string : summary -> string

val run : ?equal:(Row.t list -> Row.t list -> bool) -> config -> summary
(** [equal] is the bag comparator handed to the oracle — injectable so
    the mutation smoke-test can plant a broken one and watch the harness
    catch and shrink it. *)

type multiway_failure = {
  mw_iteration : int;
  mw_violation : Oracle.violation;
  mw_case : Mgen.case;
      (** multi-way cases are born small; there is no shrinker *)
  mw_corpus_path : string option;
}

type multiway_summary = {
  mw_iterations : int;
  mw_yes : int;  (** TestFD said YES on the default cut *)
  mw_no : int;
  mw_fd_held : int;
  mw_failures : multiway_failure list;
}

val multiway_summary_to_string : multiway_summary -> string

val run_multiway :
  ?equal:(Row.t list -> Row.t list -> bool) -> config -> multiway_summary
(** The same loop over {!Mgen} instances: 3–4 relation chain/star join
    graphs, each swept through {i every} forced aggregation placement
    (full and partial at each admissible cut) by the oracle's invariant
    (d), with partial plans cross-checked against the reference
    evaluator. *)
