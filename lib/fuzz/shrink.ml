(* Greedy delta-debugging over {!Qgen.case}.

   Candidates are proposed in a fixed order — drop a single R row, drop a
   single S row, clear a grouping column (keeping at least one, the
   canonical class requires it), clear a predicate, drop the DISTINCT
   subset projection, demote the aggregate to COUNT — and the first
   candidate that still fails restarts the scan from the smaller case
   (first-improvement to a fixpoint).  Everything is deterministic: same
   case + same checker ⇒ same minimum. *)

let drop_nth i xs = List.filteri (fun j _ -> j <> i) xs

let candidates (c : Qgen.case) : Qgen.case list =
  let rows =
    List.init (List.length c.r_rows) (fun i ->
        { c with Qgen.r_rows = drop_nth i c.r_rows })
    @ List.init (List.length c.s_rows) (fun i ->
          { c with Qgen.s_rows = drop_nth i c.s_rows })
  in
  let grouping =
    (* clear one grouping flag at a time, never going below one column *)
    let live =
      (if c.Qgen.ga1_b then 1 else 0)
      + (if c.Qgen.ga2_x then 1 else 0)
      + if c.Qgen.ga2_y then 1 else 0
    in
    if live <= 1 then []
    else
      (if c.Qgen.ga1_b then [ { c with Qgen.ga1_b = false } ] else [])
      @ (if c.Qgen.ga2_x then [ { c with Qgen.ga2_x = false } ] else [])
      @ if c.Qgen.ga2_y then [ { c with Qgen.ga2_y = false } ] else []
  in
  let predicates =
    (if c.Qgen.c1 <> 0 then [ { c with Qgen.c1 = 0 } ] else [])
    @ (if c.Qgen.c0 <> 0 then [ { c with Qgen.c0 = 0 } ] else [])
    @ if c.Qgen.c2 <> 0 then [ { c with Qgen.c2 = 0 } ] else []
  in
  let shape =
    (if c.Qgen.distinct_subset then
       [ { c with Qgen.distinct_subset = false } ]
     else [])
    @ (if c.Qgen.agg <> 0 then [ { c with Qgen.agg = 0 } ] else [])
    @
    match c.Qgen.s_key with
    | Qgen.No_key -> []
    | _ -> [ { c with Qgen.s_key = Qgen.No_key } ]
  in
  rows @ grouping @ predicates @ shape

let default_budget = 2000

let minimize ?(budget = default_budget) ~check (c : Qgen.case) =
  match check c with
  | None -> invalid_arg "Shrink.minimize: the starting case does not fail"
  | Some f0 ->
      let budget = ref budget in
      let rec fixpoint c f =
        let rec scan = function
          | [] -> (c, f)
          | cand :: rest ->
              if !budget <= 0 then (c, f)
              else (
                decr budget;
                match check cand with
                | Some f' -> fixpoint cand f'
                | None -> scan rest)
        in
        scan (candidates c)
      in
      fixpoint c f0
