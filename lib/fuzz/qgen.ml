open Eager_value
open Eager_schema
open Eager_expr
open Eager_catalog
open Eager_storage
open Eager_core
open Eager_algebra
open Eager_parser
open Eager_workload

type s_key = No_key | Primary_x | Unique_x

type case = {
  s_key : s_key;
  r_rows : (Value.t * Value.t * Value.t) list;
  s_rows : (Value.t * Value.t) list;
  c1 : int;
  c0 : int;
  c2 : int;
  ga1_b : bool;
  ga2_x : bool;
  ga2_y : bool;
  agg : int;
  distinct_subset : bool;
}

let agg_kinds = 7

let cr = Colref.make

(* ------------------------------------------------------------------ *)
(* generation: skewed, NULL-heavy small domains so collisions, NULL
   groups and empty joins all appear within a few hundred iterations *)

let small_val ?(null_p = 0.25) g =
  if Gen.bool g null_p then Value.Null
  else Value.Int (1 + Gen.skewed g 3)

let generate g =
  let s_key =
    match Gen.int g 3 with 0 -> No_key | 1 -> Primary_x | _ -> Unique_x
  in
  let r_rows =
    List.init (Gen.int g 11) (fun _ -> (small_val g, small_val g, small_val g))
  in
  let s_rows =
    List.init (Gen.int g 6) (fun i ->
        let x =
          match s_key with
          | Primary_x -> Value.Int (i + 1)
          | Unique_x ->
              (* distinct when non-NULL; NULLs may repeat — SQL2 UNIQUE *)
              if Gen.int g 3 = 0 then Value.Null else Value.Int (i + 1)
          | No_key -> small_val g
        in
        (x, small_val g))
  in
  let ga1_b = Gen.bool g 0.5 in
  let ga2_x = Gen.bool g 0.5 in
  let ga2_y = Gen.bool g 0.5 in
  (* the canonical class requires at least one grouping column *)
  let ga2_x = if (not ga1_b) && (not ga2_x) && not ga2_y then true else ga2_x in
  {
    s_key;
    r_rows;
    s_rows;
    c1 = Gen.int g 3;
    c0 = (if Gen.int g 4 = 0 then 0 else 1 + Gen.int g 2);
    c2 = Gen.int g 3;
    ga1_b;
    ga2_x;
    ga2_y;
    agg = Gen.int g agg_kinds;
    distinct_subset = Gen.int g 4 = 0;
  }

(* ------------------------------------------------------------------ *)
(* materialisation *)

let coldef name : Table_def.column_def =
  { Table_def.cname = name; ctype = Ctype.Int; domain = None }

let db_of ?storage (c : case) =
  let db = Database.create ?storage () in
  Database.create_table db
    (Table_def.make "S"
       [ coldef "x"; coldef "y" ]
       (match c.s_key with
       | Primary_x -> [ Constr.Primary_key [ "x" ] ]
       | Unique_x -> [ Constr.Unique [ "x" ] ]
       | No_key -> []));
  Database.create_table db
    (Table_def.make "R" [ coldef "a"; coldef "b"; coldef "v" ] []);
  List.iter (fun (a, b, v) -> Database.insert_exn db "R" [ a; b; v ]) c.r_rows;
  (* the generator respects the S key, but a shrunk case may not: dropping
     an S row never creates a duplicate, yet stay refusal-safe anyway *)
  List.iter (fun (x, y) -> ignore (Database.insert db "S" [ x; y ])) c.s_rows;
  db

let where_conjuncts (c : case) =
  (match c.c1 with
  | 1 -> [ Expr.Cmp (Expr.Ge, Expr.col "R" "b", Expr.int 1) ]
  | 2 -> [ Expr.eq (Expr.col "R" "b") (Expr.int 1) ]
  | _ -> [])
  @ (match c.c0 with
    | 1 -> [ Expr.eq (Expr.col "R" "a") (Expr.col "S" "x") ]
    | 2 ->
        [
          Expr.eq (Expr.col "R" "a") (Expr.col "S" "x");
          Expr.eq (Expr.col "R" "b") (Expr.col "S" "y");
        ]
    | _ -> [])
  @
  match c.c2 with
  | 1 -> [ Expr.Cmp (Expr.Le, Expr.col "S" "y", Expr.int 2) ]
  | 2 -> [ Expr.eq (Expr.col "S" "y") (Expr.int 2) ]
  | _ -> []

let group_by (c : case) =
  (if c.ga1_b then [ cr "R" "b" ] else [])
  @ (if c.ga2_x then [ cr "S" "x" ] else [])
  @ if c.ga2_y then [ cr "S" "y" ] else []

let agg_of (c : case) =
  let v = Expr.col "R" "v" in
  let name = cr "" "agg" in
  match c.agg with
  | 0 -> Agg.count name v
  | 1 -> Agg.sum name v
  | 2 -> Agg.min_ name v
  | 3 -> Agg.max_ name v
  | 4 -> Agg.avg name v
  | 5 -> Agg.count_distinct name v
  | _ -> Agg.count_star name

let select_cols (c : case) =
  let ga = group_by c in
  if c.distinct_subset then
    (* Theorem 2: DISTINCT over a strict subset of the grouping columns
       (when there is more than one to drop from) *)
    match ga with _ :: (_ :: _ as rest) -> rest | all -> all
  else ga

let input_of (c : case) : Canonical.input =
  {
    Canonical.sources =
      [
        { Canonical.table = "R"; rel = "R" };
        { Canonical.table = "S"; rel = "S" };
      ];
    where = Expr.conj (where_conjuncts c);
    group_by = group_by c;
    select_cols = select_cols c;
    select_aggs = [ agg_of c ];
    select_distinct = c.distinct_subset;
    select_having = None;
    r1_hint = [ "R" ];
  }

let build ?storage (c : case) =
  let db = db_of ?storage c in
  match Canonical.of_input db (input_of c) with
  | Ok q -> Ok (db, q)
  | Error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* SQL emission, via the AST printer so the text re-parses verbatim *)

let texpr_of_value = function
  | Value.Null -> Ast.E_null
  | Value.Int n -> Ast.E_int n
  | Value.Float f -> Ast.E_float f
  | Value.Str s -> Ast.E_str s
  | Value.Bool b -> Ast.E_bool b

let statements (c : case) =
  let int_ty = { Ast.tybase = "INTEGER"; tyarg = None } in
  let col name = Ast.It_column { name; ty = int_ty; constraints = [] } in
  let s_table =
    Ast.S_create_table
      ( "S",
        [ col "x"; col "y" ]
        @
        match c.s_key with
        | Primary_x -> [ Ast.It_primary [ "x" ] ]
        | Unique_x -> [ Ast.It_unique [ "x" ] ]
        | No_key -> [] )
  in
  let r_table = Ast.S_create_table ("R", [ col "a"; col "b"; col "v" ]) in
  let inserts =
    (match c.r_rows with
    | [] -> []
    | rows ->
        [
          Ast.S_insert
            ( "R",
              List.map
                (fun (a, b, v) -> List.map texpr_of_value [ a; b; v ])
                rows );
        ])
    @
    match c.s_rows with
    | [] -> []
    | rows ->
        [
          Ast.S_insert
            ("S", List.map (fun (x, y) -> List.map texpr_of_value [ x; y ]) rows);
        ]
  in
  let ecol (r : Colref.t) = Ast.E_col (Some r.Colref.rel, r.Colref.name) in
  let agg_item =
    let v = Ast.E_col (Some "R", "v") in
    let call =
      match c.agg with
      | 0 -> Ast.E_call ("COUNT", [ v ])
      | 1 -> Ast.E_call ("SUM", [ v ])
      | 2 -> Ast.E_call ("MIN", [ v ])
      | 3 -> Ast.E_call ("MAX", [ v ])
      | 4 -> Ast.E_call ("AVG", [ v ])
      | 5 -> Ast.E_call ("COUNT_DISTINCT", [ v ])
      | _ -> Ast.E_call ("COUNT", [ Ast.E_star ])
    in
    (call, Some "agg")
  in
  let where =
    let rec conj = function
      | [] -> None
      | [ e ] -> Some e
      | e :: rest -> (
          match conj rest with
          | None -> Some e
          | Some r -> Some (Ast.E_bin ("AND", e, r)))
    in
    let atom (e : Expr.t) =
      match e with
      | Expr.Cmp (op, Expr.Col a, Expr.Col b) ->
          let op =
            match op with
            | Expr.Eq -> "="
            | Expr.Ge -> ">="
            | Expr.Le -> "<="
            | Expr.Lt -> "<"
            | Expr.Gt -> ">"
            | Expr.Ne -> "<>"
          in
          Ast.E_bin (op, ecol a, ecol b)
      | Expr.Cmp (op, Expr.Col a, Expr.Const (Value.Int n)) ->
          let op =
            match op with
            | Expr.Eq -> "="
            | Expr.Ge -> ">="
            | Expr.Le -> "<="
            | Expr.Lt -> "<"
            | Expr.Gt -> ">"
            | Expr.Ne -> "<>"
          in
          Ast.E_bin (op, ecol a, Ast.E_int n)
      | _ -> Eager_robust.Err.failf Eager_robust.Err.Planner
               "qgen: unexpected predicate shape %s" (Expr.to_string e)
    in
    conj (List.map atom (where_conjuncts c))
  in
  let select =
    Ast.S_select
      {
        Ast.distinct = c.distinct_subset;
        items =
          List.map (fun cref -> (ecol cref, None)) (select_cols c)
          @ [ agg_item ];
        from = [ ("R", None); ("S", None) ];
        where;
        group_by =
          List.map (fun (r : Colref.t) -> (Some r.Colref.rel, r.Colref.name))
            (group_by c);
        having = None;
        order_by = [];
      }
  in
  (s_table :: r_table :: inserts) @ [ select ]

let to_sql ?(header = []) (c : case) =
  let b = Buffer.create 512 in
  List.iter (fun line -> Buffer.add_string b ("-- " ^ line ^ "\n")) header;
  Buffer.add_string b "-- r1: R\n";
  List.iter
    (fun st -> Buffer.add_string b (Ast.statement_to_string st ^ ";\n"))
    (statements c);
  Buffer.contents b

(* ------------------------------------------------------------------ *)

let size (c : case) = List.length c.r_rows + List.length c.s_rows

let pp ppf (c : case) =
  let v = Value.to_string in
  Format.fprintf ppf
    "@[<v>R = [%s]@,S = [%s] (%s)@,c1=%d c0=%d c2=%d  ga1_b=%b ga2_x=%b \
     ga2_y=%b  agg=%d distinct_subset=%b@]"
    (String.concat "; "
       (List.map
          (fun (a, b, c) -> Printf.sprintf "(%s,%s,%s)" (v a) (v b) (v c))
          c.r_rows))
    (String.concat "; "
       (List.map (fun (x, y) -> Printf.sprintf "(%s,%s)" (v x) (v y)) c.s_rows))
    (match c.s_key with
    | No_key -> "no key"
    | Primary_x -> "PRIMARY KEY (x)"
    | Unique_x -> "UNIQUE (x)")
    c.c1 c.c0 c.c2 c.ga1_b c.ga2_x c.ga2_y c.agg c.distinct_subset

let to_string c = Format.asprintf "%a" pp c
