(** Deterministic chaos harness for lease-based automated failover.

    Each schedule boots a real 3-node cluster (three [eagerdb]
    processes over unix sockets in a private temp dir), drives seeded
    writer load through a redirect-following client, injects one fault
    from the schedule's template — SIGKILL the primary, a
    SIGSTOP/SIGCONT partition, backwards clock jumps ([clock.jump]) or
    slow fsyncs ([wal.slow_fsync]) armed via the seeded fault CLI — and
    checks three invariants:

    + exactly one node accepts writes (probed with redirect-following
      disabled, so a refusal cannot masquerade as an ack elsewhere);
    + every acked write is a row on the final primary;
    + once every live standby reports the primary's LSN, the WALs of
      all live nodes are byte-identical.

    All randomness threads an explicit seeded [Random.State], and fault
    schedules inside the spawned servers are themselves seeded, so a
    failing schedule replays exactly from [(seed, index)]. *)

val run :
  exe:string ->
  seed:int ->
  schedules:int ->
  max_seconds:float option ->
  quiet:bool ->
  int
(** Run [schedules] schedules (templates cycle round-robin), stopping
    early once [max_seconds] of wall clock have elapsed (started
    schedules always finish).  Prints one line per schedule plus a
    summary; returns the process exit code: 0 iff every schedule that
    ran passed. *)
