(* The differential fuzzing loop.

   Iteration [i] of a run with seed [s] draws its whole instance from
   the independent stream [Gen.make2 s i], so a failing iteration
   regenerates standalone — no need to replay its predecessors.  A
   violation is shrunk to a local minimum and (optionally) serialised to
   the corpus as a replayable [.sql] repro. *)

open Eager_core
open Eager_workload

type config = {
  seed : int;
  iters : int;
  faults : bool;  (** run the injected-fault and governor budget checks *)
  corpus_dir : string option;
      (** where to write shrunk repros; [None] keeps them in memory *)
  log : string -> unit;
}

let default_config =
  { seed = 20260806; iters = 500; faults = true; corpus_dir = None;
    log = ignore }

type failure = {
  iteration : int;
  violation : Oracle.violation;
  shrunk : Qgen.case;
  corpus_path : string option;
}

type summary = {
  iterations : int;
  yes : int;  (** TestFD said YES *)
  no : int;  (** TestFD said NO *)
  fd_held : int;  (** instances where both FDs held *)
  failures : failure list;
}

let summary_to_string s =
  Printf.sprintf
    "%d iterations: TestFD yes=%d no=%d, instance FDs held on %d, %d \
     violation%s"
    s.iterations s.yes s.no s.fd_held
    (List.length s.failures)
    (if List.length s.failures = 1 then "" else "s")

let run ?equal (cfg : config) =
  let yes = ref 0 and no = ref 0 and fd = ref 0 in
  let failures = ref [] in
  for i = 0 to cfg.iters - 1 do
    let case = Qgen.generate (Gen.make2 cfg.seed i) in
    let fault_seed = cfg.seed + i in
    let o = Oracle.check ?equal ~faults:cfg.faults ~fault_seed case in
    (match o.Oracle.verdict with
    | Some Testfd.Yes -> incr yes
    | Some (Testfd.No _) -> incr no
    | None -> ());
    if o.Oracle.fd_holds then incr fd;
    match o.Oracle.violation with
    | None -> ()
    | Some v ->
        cfg.log
          (Printf.sprintf "iteration %d FAILED: %s" i
             (Oracle.violation_to_string v));
        let check c =
          (Oracle.check ?equal ~faults:cfg.faults ~fault_seed c)
            .Oracle.violation
        in
        let shrunk, v' = Shrink.minimize ~check case in
        cfg.log
          (Printf.sprintf "shrunk to %d rows: %s" (Qgen.size shrunk)
             (Qgen.to_string shrunk));
        let corpus_path =
          Option.map
            (fun dir ->
              let path =
                Corpus.write ~dir ~seed:cfg.seed ~iteration:i
                  ~reason:v'.Oracle.tag shrunk
              in
              cfg.log (Printf.sprintf "repro written to %s" path);
              path)
            cfg.corpus_dir
        in
        failures :=
          { iteration = i; violation = v'; shrunk; corpus_path } :: !failures
  done;
  {
    iterations = cfg.iters;
    yes = !yes;
    no = !no;
    fd_held = !fd;
    failures = List.rev !failures;
  }

(* ------------------------------------------------------------------ *)
(* the multi-way placement loop: 3-4 relation chain/star instances,
   each swept through every forced aggregation placement by the oracle.
   Cases are born small, so failures are reported (and serialised)
   unshrunk. *)

type multiway_failure = {
  mw_iteration : int;
  mw_violation : Oracle.violation;
  mw_case : Mgen.case;
  mw_corpus_path : string option;
}

type multiway_summary = {
  mw_iterations : int;
  mw_yes : int;
  mw_no : int;
  mw_fd_held : int;
  mw_failures : multiway_failure list;
}

let multiway_summary_to_string s =
  Printf.sprintf
    "%d multi-way iterations: TestFD yes=%d no=%d, instance FDs held on %d, \
     %d violation%s"
    s.mw_iterations s.mw_yes s.mw_no s.mw_fd_held
    (List.length s.mw_failures)
    (if List.length s.mw_failures = 1 then "" else "s")

let run_multiway ?equal (cfg : config) =
  let yes = ref 0 and no = ref 0 and fd = ref 0 in
  let failures = ref [] in
  for i = 0 to cfg.iters - 1 do
    let case = Mgen.generate (Gen.make2 cfg.seed i) in
    let fault_seed = cfg.seed + i in
    let o =
      match Mgen.build case with
      | Error msg ->
          {
            Oracle.verdict = None;
            fd_holds = false;
            violation = Some { Oracle.tag = "build"; detail = msg };
          }
      | Ok (db, q) ->
          Oracle.check_instance ?equal ~faults:cfg.faults ~fault_seed db q
    in
    (match o.Oracle.verdict with
    | Some Testfd.Yes -> incr yes
    | Some (Testfd.No _) -> incr no
    | None -> ());
    if o.Oracle.fd_holds then incr fd;
    match o.Oracle.violation with
    | None -> ()
    | Some v ->
        cfg.log
          (Printf.sprintf "multi-way iteration %d FAILED: %s" i
             (Oracle.violation_to_string v));
        cfg.log (Mgen.to_string case);
        let mw_corpus_path =
          Option.map
            (fun dir ->
              let path =
                Corpus.write_multiway ~dir ~seed:cfg.seed ~iteration:i
                  ~reason:v.Oracle.tag case
              in
              cfg.log (Printf.sprintf "repro written to %s" path);
              path)
            cfg.corpus_dir
        in
        failures :=
          { mw_iteration = i; mw_violation = v; mw_case = case; mw_corpus_path }
          :: !failures
  done;
  {
    mw_iterations = cfg.iters;
    mw_yes = !yes;
    mw_no = !no;
    mw_fd_held = !fd;
    mw_failures = List.rev !failures;
  }
