(** Greedy delta-debugging minimizer for failing fuzz cases.

    Shrink order: drop single R rows, drop single S rows, clear grouping
    columns (keeping at least one), clear predicates, drop the DISTINCT
    subset projection, demote the aggregate to COUNT, drop the S key.
    First-improvement, restarted to a fixpoint; fully deterministic. *)

val candidates : Qgen.case -> Qgen.case list
(** One-step simplifications, in shrink order. *)

val default_budget : int

val minimize :
  ?budget:int ->
  check:(Qgen.case -> 'f option) ->
  Qgen.case ->
  Qgen.case * 'f
(** [minimize ~check c] greedily shrinks [c] while [check] keeps
    returning [Some failure]; returns the fixpoint case and its failure.
    [budget] caps the number of [check] calls (default
    {!default_budget}).

    @raise Invalid_argument if [check c] is [None]. *)
