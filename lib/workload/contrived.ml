open Eager_value
open Eager_schema
open Eager_expr
open Eager_catalog
open Eager_storage
open Eager_algebra
open Eager_core

type t = { db : Database.t; query : Canonical.t }

let setup ?storage ?(seed = 11) ?(a_rows = 10_000) ?(b_rows = 100)
    ?(matched_rows = 50) ?(matched_groups = 10) ?(a_groups = 9_000) () =
  if matched_groups > b_rows then invalid_arg "matched_groups > b_rows";
  if matched_rows > a_rows then invalid_arg "matched_rows > a_rows";
  if a_groups < matched_groups || a_groups > a_rows then
    invalid_arg "a_groups out of range";
  let g = Gen.make seed in
  let db = Database.create ?storage () in
  Database.create_table db
    (Table_def.make "B"
       [
         { Table_def.cname = "k"; ctype = Ctype.Int; domain = None };
         { Table_def.cname = "tag"; ctype = Ctype.String; domain = None };
       ]
       [ Constr.Primary_key [ "k" ] ]);
  Database.create_table db
    (Table_def.make "A"
       [
         { Table_def.cname = "aid"; ctype = Ctype.Int; domain = None };
         { Table_def.cname = "j"; ctype = Ctype.Int; domain = None };
         { Table_def.cname = "v"; ctype = Ctype.Int; domain = None };
       ]
       [ Constr.Primary_key [ "aid" ] ]);
  (* B keys are 1..b_rows; matched A rows use j in 1..matched_groups, the
     rest use values above b_rows so they never join. *)
  for k = 1 to b_rows do
    Database.insert_exn db "B" [ Value.Int k; Value.Str (Gen.name g) ]
  done;
  let unmatched_rows = a_rows - matched_rows in
  let unmatched_groups = a_groups - matched_groups in
  let aid = ref 0 in
  let add j =
    incr aid;
    Database.insert_exn db "A"
      [ Value.Int !aid; Value.Int j; Value.Int (Gen.int g 1000) ]
  in
  for i = 0 to matched_rows - 1 do
    add (1 + (i mod matched_groups))
  done;
  (* spread unmatched rows over exactly [unmatched_groups] distinct values *)
  for i = 0 to unmatched_rows - 1 do
    let group = i mod unmatched_groups in
    add (b_rows + 1 + group)
  done;
  let query =
    Canonical.of_input_exn db
      {
        Canonical.sources =
          [
            { Canonical.table = "A"; rel = "A" };
            { Canonical.table = "B"; rel = "B" };
          ];
        where = Expr.eq (Expr.col "A" "j") (Expr.col "B" "k");
        group_by = [ Colref.make "A" "j" ];
        select_cols = [ Colref.make "A" "j" ];
        select_aggs = [ Agg.sum (Colref.make "" "total_v") (Expr.col "A" "v") ];
        select_distinct = false;
        select_having = None;
        r1_hint = [];
      }
  in
  { db; query }
