(** Example 4 / Figure 8 workload: valid but disadvantageous.

    Table [A] (10 000 rows) groups into ~9 000 groups on its join column
    [j]; table [B] (100 rows, key [k]) matches only 50 [A]-rows, which fall
    into 10 groups.  The transformation is valid ([GA1 = GA1+ = {A.j}];
    [A.j = B.k] with [k] the key of [B] gives FD2), yet eager grouping
    processes 10 000 rows into 9 000 groups before a 9 000×100 join, while
    the lazy plan joins down to 50 rows and groups those into 10. *)

open Eager_storage
open Eager_core

type t = { db : Database.t; query : Canonical.t }

val setup :
  ?storage:Database.storage_config ->
  ?seed:int ->
  ?a_rows:int ->
  ?b_rows:int ->
  ?matched_rows:int ->
  ?matched_groups:int ->
  ?a_groups:int ->
  unit ->
  t
(** Defaults reproduce the figure: [a_rows = 10_000], [b_rows = 100],
    [matched_rows = 50], [matched_groups = 10], [a_groups = 9_000]. *)
