open Eager_value
open Eager_schema
open Eager_expr
open Eager_catalog
open Eager_storage
open Eager_algebra
open Eager_core

type t = { db : Database.t; query : Canonical.t }

let setup ?storage ?(seed = 23) ?(parts = 10_000) ?(suppliers = 50)
    ?(regions = 5) () =
  let g = Gen.make seed in
  let db = Database.create ?storage () in
  Database.create_table db
    (Table_def.make "Region"
       [
         { Table_def.cname = "RegionNo"; ctype = Ctype.Int; domain = None };
         { Table_def.cname = "RegionName"; ctype = Ctype.String; domain = None };
       ]
       [ Constr.Primary_key [ "RegionNo" ] ]);
  Database.create_table db
    (Table_def.make "Supplier"
       [
         { Table_def.cname = "SupplierNo"; ctype = Ctype.Int; domain = None };
         { Table_def.cname = "Name"; ctype = Ctype.String; domain = None };
         { Table_def.cname = "RegionNo"; ctype = Ctype.Int; domain = None };
       ]
       [
         Constr.Primary_key [ "SupplierNo" ];
         Constr.Foreign_key
           {
             cols = [ "RegionNo" ];
             ref_table = "Region";
             ref_cols = [ "RegionNo" ];
           };
       ]);
  Database.create_table db
    (Table_def.make "Part"
       [
         { Table_def.cname = "PartNo"; ctype = Ctype.Int; domain = None };
         { Table_def.cname = "SupplierNo"; ctype = Ctype.Int; domain = None };
         { Table_def.cname = "Qty"; ctype = Ctype.Int; domain = None };
       ]
       []);
  for r = 1 to regions do
    Database.insert_exn db "Region"
      [ Value.Int r; Value.Str (Printf.sprintf "Region-%s" (Gen.name g)) ]
  done;
  for s = 1 to suppliers do
    Database.insert_exn db "Supplier"
      [ Value.Int s; Value.Str (Gen.name g); Value.Int (1 + Gen.int g regions) ]
  done;
  for p = 1 to parts do
    let supplier =
      if Gen.bool g 0.05 then Value.Null
      else Value.Int (1 + Gen.int g suppliers)
    in
    let qty =
      if Gen.bool g 0.05 then Value.Null else Value.Int (1 + Gen.int g 100)
    in
    Database.insert_exn db "Part" [ Value.Int p; supplier; qty ]
  done;
  let query =
    Canonical.of_input_exn db
      {
        Canonical.sources =
          [
            { Canonical.table = "Part"; rel = "P" };
            { Canonical.table = "Supplier"; rel = "S" };
            { Canonical.table = "Region"; rel = "G" };
          ];
        where =
          Expr.conj
            [
              Expr.eq (Expr.col "P" "SupplierNo") (Expr.col "S" "SupplierNo");
              Expr.eq (Expr.col "S" "RegionNo") (Expr.col "G" "RegionNo");
            ];
        group_by = [ Colref.make "G" "RegionName" ];
        select_cols = [ Colref.make "G" "RegionName" ];
        select_aggs =
          [
            Agg.sum (Colref.make "" "total_qty") (Expr.col "P" "Qty");
            Agg.count (Colref.make "" "parts") (Expr.col "P" "PartNo");
          ];
        select_distinct = false;
        select_having = None;
        r1_hint = [ "P" ];
      }
  in
  { db; query }

let sql _ =
  "SELECT G.RegionName, SUM(P.Qty) AS total_qty, COUNT(P.PartNo) AS parts \
   FROM Part P, Supplier S, Region G \
   WHERE P.SupplierNo = S.SupplierNo AND S.RegionNo = G.RegionNo \
   GROUP BY G.RegionName"
