(** Three-relation star workload: Part → Supplier → Region.

    {v
    Region(RegionNo, RegionName)                  PK RegionNo
    Supplier(SupplierNo, Name, RegionNo)          PK SupplierNo
    Part(PartNo, SupplierNo, Qty)                 (no key; Qty nullable)
    v}

    The canonical query aggregates parts per region name:

    {v
    SELECT G.RegionName, SUM(P.Qty) AS total_qty, COUNT(P.PartNo) AS parts
    FROM Part P, Supplier S, Region G
    WHERE P.SupplierNo = S.SupplierNo AND S.RegionNo = G.RegionNo
    GROUP BY G.RegionName
    v}

    This is the N-way scenario the two-relation form cannot express:
    the full eager push at cut [{P}] is invalid (many suppliers share a
    region, so grouping Part by SupplierNo yields one row per supplier,
    not per region — TestFD says NO), but the {i partial} placement
    pre-aggregates ~[parts] rows down to ~[suppliers] partial groups
    below both joins and lets the finalizing group above merge them per
    region.  The cost model should therefore pick an eager-partial
    placement unforced. *)

open Eager_storage
open Eager_core

type t = { db : Database.t; query : Canonical.t }

val setup :
  ?storage:Database.storage_config ->
  ?seed:int ->
  ?parts:int ->
  ?suppliers:int ->
  ?regions:int ->
  unit ->
  t
(** Defaults: [seed 23], [parts 10_000], [suppliers 50], [regions 5].
    ~5% of parts have a NULL SupplierNo (they join nothing) and ~5% a
    NULL Qty (ignored by SUM, counted by neither aggregate).  The
    canonical partition hint puts [P] alone on the aggregated side. *)

val sql : t -> string
(** The query as SQL text (for EXPLAIN demos and docs). *)
