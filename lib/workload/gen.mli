(** Deterministic data-generation helpers (seeded, reproducible).

    All randomness in the repository is drawn from an explicit state
    created by {!make}/{!make2}; the implicit global generator and
    [Random.self_init] are forbidden (enforced by [tools/lint.sh]), so a
    seed replays bit-for-bit. *)

type t

val make : int -> t
(** Seeded generator. *)

val make2 : int -> int -> t
(** [make2 major minor]: an independent stream per [(run seed, iteration)]
    pair — a failing fuzz case regenerates from its pair alone. *)

val split : t -> t
(** An independent sub-stream (consumes one draw from the parent). *)

val int : t -> int -> int
(** [int g n] is uniform in [0, n). *)

val skewed : t -> int -> int
(** [skewed g n] is in [0, n) with half the mass on 0 — produces the
    duplicate-heavy distributions the fuzzer wants. *)

val pick : t -> 'a array -> 'a
val name : t -> string
(** A pronounceable pseudo-name. *)

val bool : t -> float -> bool
(** [bool g p] is true with probability [p]. *)
