(* Every random choice in the repository flows through an explicit
   [Random.State.t] created here from caller-supplied seeds — never the
   implicit global generator, never self-initialisation (the lint
   forbids both).  This is what lets the fuzz harness replay a failing
   iteration bit-for-bit from its [(seed, iteration)] pair. *)

type t = Random.State.t

let make seed = Random.State.make [| seed; 0x9e3779b9 |]

(* two-part seed: stream [minor] of run [major] — used per fuzz iteration
   so one failing case regenerates without replaying its predecessors *)
let make2 major minor = Random.State.make [| major; minor; 0x9e3779b9 |]

(* an independent sub-stream: consumes one draw from [g], so sibling
   splits diverge, but the child is insulated from how many draws the
   parent makes afterwards *)
let split g = Random.State.make [| Random.State.bits g; 0x85ebca6b |]

let int g n = if n <= 0 then 0 else Random.State.int g n

(* skewed toward 0: half the mass on 0, the rest uniform — the cheap
   Zipf stand-in that makes duplicate join keys and repeated group keys
   common in fuzzed instances *)
let skewed g n = if n <= 0 then 0 else if Random.State.bool g then 0 else int g n

let pick g arr = arr.(int g (Array.length arr))

let syllables =
  [| "ka"; "ro"; "mi"; "ta"; "ve"; "lu"; "san"; "der"; "el"; "ni"; "go"; "ra" |]

let name g =
  let n = 2 + int g 2 in
  let b = Buffer.create 8 in
  for i = 0 to n - 1 do
    let s = pick g syllables in
    Buffer.add_string b (if i = 0 then String.capitalize_ascii s else s)
  done;
  Buffer.contents b

let bool g p = Random.State.float g 1.0 < p
