open Eager_value
open Eager_schema
open Eager_expr
open Eager_catalog
open Eager_storage
open Eager_algebra
open Eager_core

type t = { db : Database.t; query : Canonical.t }

let regions = [| "north"; "south"; "east"; "west" |]

let setup ?storage ?(seed = 99) ?(customers = 200) ?(orders = 8_000)
    ?revenue_at_least () =
  let g = Gen.make seed in
  let db = Database.create ?storage () in
  Database.create_table db
    (Table_def.make "Customer"
       [
         { Table_def.cname = "CustID"; ctype = Ctype.Int; domain = None };
         { Table_def.cname = "Name"; ctype = Ctype.String; domain = None };
         { Table_def.cname = "Region"; ctype = Ctype.String; domain = None };
       ]
       [ Constr.Primary_key [ "CustID" ]; Constr.Not_null "Name" ]);
  Database.create_table db
    (Table_def.make "Orders"
       [
         { Table_def.cname = "OrderID"; ctype = Ctype.Int; domain = None };
         { Table_def.cname = "CustID"; ctype = Ctype.Int; domain = None };
         { Table_def.cname = "Amount"; ctype = Ctype.Int; domain = None };
         { Table_def.cname = "Qty"; ctype = Ctype.Int; domain = None };
       ]
       [
         Constr.Primary_key [ "OrderID" ];
         Constr.Check
           (Expr.Cmp (Expr.Ge, Expr.Col (Colref.make "" "Amount"), Expr.int 0));
         Constr.Foreign_key
           { cols = [ "CustID" ]; ref_table = "Customer"; ref_cols = [ "CustID" ] };
       ]);
  for c = 1 to customers do
    Database.insert_exn db "Customer"
      [ Value.Int c; Value.Str (Gen.name g); Value.Str (Gen.pick g regions) ]
  done;
  for o = 1 to orders do
    let cust =
      (* a few anonymous (NULL-customer) orders *)
      if Gen.bool g 0.02 then Value.Null
      else Value.Int (1 + Gen.int g customers)
    in
    Database.insert_exn db "Orders"
      [ Value.Int o; cust; Value.Int (Gen.int g 500); Value.Int (1 + Gen.int g 9) ]
  done;
  let having =
    Option.map
      (fun n ->
        Expr.Cmp (Expr.Ge, Expr.Col (Colref.make "" "revenue"), Expr.int n))
      revenue_at_least
  in
  let query =
    Canonical.of_input_exn db
      {
        Canonical.sources =
          [
            { Canonical.table = "Orders"; rel = "O" };
            { Canonical.table = "Customer"; rel = "C" };
          ];
        where = Expr.eq (Expr.col "O" "CustID") (Expr.col "C" "CustID");
        group_by = [ Colref.make "C" "CustID"; Colref.make "C" "Name" ];
        select_cols = [ Colref.make "C" "CustID"; Colref.make "C" "Name" ];
        select_aggs =
          [
            Agg.sum (Colref.make "" "revenue") (Expr.col "O" "Amount");
            Agg.count (Colref.make "" "order_count") (Expr.col "O" "OrderID");
          ];
        select_distinct = false;
        select_having = having;
        r1_hint = [];
      }
  in
  { db; query }
