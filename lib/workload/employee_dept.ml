open Eager_value
open Eager_schema
open Eager_expr
open Eager_catalog
open Eager_storage
open Eager_algebra
open Eager_core

type t = { db : Database.t; query : Canonical.t }

let setup ?storage ?(seed = 42) ?(employees = 10_000) ?(departments = 100)
    ?(null_dept_fraction = 0.0) () =
  let g = Gen.make seed in
  let db = Database.create ?storage () in
  Database.create_table db
    (Table_def.make "Department"
       [
         { Table_def.cname = "DeptID"; ctype = Ctype.Int; domain = None };
         { Table_def.cname = "Name"; ctype = Ctype.String; domain = None };
       ]
       [ Constr.Primary_key [ "DeptID" ] ]);
  Database.create_table db
    (Table_def.make "Employee"
       [
         { Table_def.cname = "EmpID"; ctype = Ctype.Int; domain = None };
         { Table_def.cname = "LastName"; ctype = Ctype.String; domain = None };
         { Table_def.cname = "FirstName"; ctype = Ctype.String; domain = None };
         { Table_def.cname = "DeptID"; ctype = Ctype.Int; domain = None };
       ]
       [
         Constr.Primary_key [ "EmpID" ];
         Constr.Foreign_key
           { cols = [ "DeptID" ]; ref_table = "Department"; ref_cols = [ "DeptID" ] };
       ]);
  for d = 1 to departments do
    Database.insert_exn db "Department"
      [ Value.Int d; Value.Str (Printf.sprintf "Dept-%s-%d" (Gen.name g) d) ]
  done;
  for e = 1 to employees do
    let dept =
      if Gen.bool g null_dept_fraction then Value.Null
      else Value.Int (1 + Gen.int g departments)
    in
    Database.insert_exn db "Employee"
      [ Value.Int e; Value.Str (Gen.name g); Value.Str (Gen.name g); dept ]
  done;
  let query =
    Canonical.of_input_exn db
      {
        Canonical.sources =
          [
            { Canonical.table = "Employee"; rel = "E" };
            { Canonical.table = "Department"; rel = "D" };
          ];
        where = Expr.eq (Expr.col "E" "DeptID") (Expr.col "D" "DeptID");
        group_by = [ Colref.make "D" "DeptID"; Colref.make "D" "Name" ];
        select_cols = [ Colref.make "D" "DeptID"; Colref.make "D" "Name" ];
        select_aggs =
          [ Agg.count (Colref.make "" "emp_count") (Expr.col "E" "EmpID") ];
        select_distinct = false;
        select_having = None;
        r1_hint = [];
      }
  in
  { db; query }
