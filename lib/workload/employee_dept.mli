(** Example 1 / Figure 1 workload: Employee ⋈ Department with COUNT.

    {v
    SELECT   D.DeptID, D.Name, COUNT(E.EmpID)
    FROM     Employee E, Department D
    WHERE    E.DeptID = D.DeptID
    GROUP BY D.DeptID, D.Name
    v}

    With the paper's sizes (10 000 employees, 100 departments) the lazy plan
    joins 10 000×100 and groups 10 000 rows, while the eager plan groups
    10 000 rows into 100 and joins 100×100. *)

open Eager_storage
open Eager_core

type t = { db : Database.t; query : Canonical.t }

val setup :
  ?storage:Database.storage_config ->
  ?seed:int ->
  ?employees:int ->
  ?departments:int ->
  ?null_dept_fraction:float ->
  unit ->
  t
(** [null_dept_fraction] employees get a NULL DeptID (they match no
    department — exercises the NULL semantics of the join). *)
