(** A small order-processing workload: the kind of rollup the paper's
    introduction motivates (aggregate a large fact table per entity of a
    small dimension table).

    {v
    Customer(CustID, Name, Region)        PK CustID
    Orders(OrderID, CustID, Amount, Qty)  PK OrderID, FK CustID → Customer
    v}

    The query sums revenue per customer; optionally with a HAVING threshold
    on the revenue (exercising the HAVING extension end to end). *)

open Eager_storage
open Eager_core

type t = { db : Database.t; query : Canonical.t }

val setup :
  ?storage:Database.storage_config ->
  ?seed:int ->
  ?customers:int ->
  ?orders:int ->
  ?revenue_at_least:int ->
  unit ->
  t
(** [revenue_at_least] adds [HAVING revenue >= n]. *)
