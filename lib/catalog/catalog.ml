open Eager_schema
open Eager_expr

type domain_def = { dname : string; dtype : Ctype.t; dcheck : Expr.t option }
type view_def = { vname : string; vsql : string }
type index_def = { iname : string; itable : string; icols : string list }

module Smap = Map.Make (String)

type t = {
  tabs : Table_def.t Smap.t;
  doms : domain_def Smap.t;
  views : view_def Smap.t;
  idxs : index_def Smap.t;
}

let empty =
  { tabs = Smap.empty; doms = Smap.empty; views = Smap.empty; idxs = Smap.empty }

let name_taken t name =
  Smap.mem name t.tabs || Smap.mem name t.views

let add_table t (td : Table_def.t) =
  if name_taken t td.Table_def.tname then
    failwith (Printf.sprintf "name %s already defined" td.Table_def.tname);
  List.iter
    (fun (c : Table_def.column_def) ->
      match c.Table_def.domain with
      | None -> ()
      | Some d -> (
          match Smap.find_opt d t.doms with
          | None -> failwith (Printf.sprintf "unknown domain %s" d)
          | Some dd ->
              if not (Ctype.equal dd.dtype c.Table_def.ctype) then
                failwith
                  (Printf.sprintf "column %s: type differs from domain %s"
                     c.Table_def.cname d)))
    td.Table_def.columns;
  { t with tabs = Smap.add td.Table_def.tname td t.tabs }

let add_domain t d =
  if Smap.mem d.dname t.doms then
    failwith (Printf.sprintf "domain %s already defined" d.dname);
  { t with doms = Smap.add d.dname d t.doms }

let add_view t v =
  if name_taken t v.vname then
    failwith (Printf.sprintf "name %s already defined" v.vname);
  { t with views = Smap.add v.vname v t.views }

let add_index t (i : index_def) =
  if Smap.mem i.iname t.idxs || name_taken t i.iname then
    failwith (Printf.sprintf "name %s already defined" i.iname);
  (match Smap.find_opt i.itable t.tabs with
  | None -> failwith (Printf.sprintf "unknown table %s" i.itable)
  | Some td ->
      List.iter
        (fun c ->
          if not (Table_def.has_column td c) then
            failwith
              (Printf.sprintf "index %s: unknown column %s" i.iname c))
        i.icols);
  if i.icols = [] then failwith "an index needs at least one column";
  { t with idxs = Smap.add i.iname i t.idxs }

(* Remove a table and every index declared on it.  Views referencing the
   table are left in place: they re-bind lazily and fail with a clean
   bind error if used afterwards. *)
let remove_table t name =
  {
    t with
    tabs = Smap.remove name t.tabs;
    idxs = Smap.filter (fun _ i -> not (String.equal i.itable name)) t.idxs;
  }

let find_table t name = Smap.find_opt name t.tabs
let find_domain t name = Smap.find_opt name t.doms
let find_view t name = Smap.find_opt name t.views
let tables t = Smap.bindings t.tabs |> List.map snd
let domains t = Smap.bindings t.doms |> List.map snd
let views t = Smap.bindings t.views |> List.map snd
let indexes t = Smap.bindings t.idxs |> List.map snd

let indexes_on t table =
  indexes t |> List.filter (fun i -> String.equal i.itable table)

let check_predicates t ~rel (td : Table_def.t) =
  let checks =
    Constr.checks td.Table_def.constraints |> List.map (Constr.requalify rel)
  in
  let domain_checks =
    List.filter_map
      (fun (c : Table_def.column_def) ->
        match c.Table_def.domain with
        | None -> None
        | Some d -> (
            match Smap.find_opt d t.doms with
            | Some { dcheck = Some e; _ } ->
                (* substitute the pseudo-column VALUE by the actual column *)
                let rec subst (e : Expr.t) : Expr.t =
                  match e with
                  | Expr.Col _ -> Expr.Col (Colref.make rel c.Table_def.cname)
                  | Expr.Const _ | Expr.Param _ -> e
                  | Expr.Neg a -> Expr.Neg (subst a)
                  | Expr.Not a -> Expr.Not (subst a)
                  | Expr.Is_null a -> Expr.Is_null (subst a)
                  | Expr.Is_not_null a -> Expr.Is_not_null (subst a)
                  | Expr.Like { negated; arg; pattern } ->
                      Expr.Like { negated; arg = subst arg; pattern }
                  | Expr.Case { branches; else_ } ->
                      Expr.Case
                        {
                          branches = List.map (fun (c, v) -> (subst c, subst v)) branches;
                          else_ = Option.map subst else_;
                        }
                  | Expr.Arith (op, a, b) -> Expr.Arith (op, subst a, subst b)
                  | Expr.Cmp (op, a, b) -> Expr.Cmp (op, subst a, subst b)
                  | Expr.And (a, b) -> Expr.And (subst a, subst b)
                  | Expr.Or (a, b) -> Expr.Or (subst a, subst b)
                in
                Some (subst e)
            | _ -> None))
      td.Table_def.columns
  in
  checks @ domain_checks

let table_checks t ~rel (td : Table_def.t) =
  let not_null = Table_def.not_null td in
  let is_not_null name = List.mem name not_null in
  let weaken e =
    let nullable =
      Colref.Set.filter
        (fun c -> not (is_not_null c.Colref.name))
        (Expr.columns e)
    in
    if Colref.Set.is_empty nullable then e
    else
      Expr.disj
        (e
        :: (Colref.Set.elements nullable
           |> List.map (fun c -> Expr.Is_null (Expr.Col c))))
  in
  let checks = List.map weaken (check_predicates t ~rel td) in
  let not_nulls =
    not_null
    |> List.map (fun c -> Expr.Is_not_null (Expr.Col (Colref.make rel c)))
  in
  checks @ not_nulls
