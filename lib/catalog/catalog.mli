(** The catalog: tables, domains and views known to the system. *)

open Eager_schema
open Eager_expr

type domain_def = {
  dname : string;
  dtype : Ctype.t;
  dcheck : Expr.t option;
      (** check over the pseudo-column [VALUE] (a [Colref] with empty rel) *)
}

type view_def = {
  vname : string;
  vsql : string;  (** the defining SELECT, parsed lazily by the binder *)
}

type index_def = {
  iname : string;
  itable : string;
  icols : string list;  (** equality-lookup key, in declaration order *)
}

type t

val empty : t
val add_table : t -> Table_def.t -> t
(** Raises [Failure] if the name is taken or a declared column domain is
    unknown/mistyped. *)

val add_domain : t -> domain_def -> t
val add_view : t -> view_def -> t
val add_index : t -> index_def -> t
(** Raises [Failure] when the name is taken or the table/columns are
    unknown. *)

val remove_table : t -> string -> t
(** Remove a table and every index declared on it; a no-op for unknown
    names.  Views over the table are kept and fail at re-bind time. *)

val find_table : t -> string -> Table_def.t option
val find_domain : t -> string -> domain_def option
val find_view : t -> string -> view_def option
val tables : t -> Table_def.t list
val domains : t -> domain_def list
val views : t -> view_def list
val indexes : t -> index_def list
val indexes_on : t -> string -> index_def list
(** Indexes declared on the given table. *)

val check_predicates : t -> rel:string -> Table_def.t -> Expr.t list
(** Raw CHECK constraints plus domain checks instantiated at each column
    declared over the domain, qualified by [rel].  Per SQL2, these are
    enforced as "not false": a row whose check evaluates to {i unknown}
    (because a participating column is NULL) is accepted. *)

val table_checks : t -> rel:string -> Table_def.t -> Expr.t list
(** The single-table predicates [T] of the paper — statements guaranteed to
    evaluate to {i true} on every stored row, suitable as premises for
    Theorem 3 / TestFD.  A CHECK whose columns are all NOT NULL is emitted
    as-is; otherwise it is weakened to [check OR col IS NULL OR ...], since
    SQL2's "not false" enforcement admits NULLs.  NOT NULL constraints are
    emitted as [IS NOT NULL] predicates. *)
