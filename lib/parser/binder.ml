open Eager_value
open Eager_schema
open Eager_expr
open Eager_catalog
open Eager_storage
open Eager_core
open Eager_algebra

type bound_query =
  | Grouped of Canonical.input
  | Scalar of {
      sources : Canonical.source list;
      where : Expr.t;
      aggs : Agg.t list;
    }
  | Simple of {
      sources : Canonical.source list;
      where : Expr.t;
      cols : Colref.t list;
      distinct : bool;
    }
  | Computed of {
      sources : Canonical.source list;
      where : Expr.t;
      items : (Colref.t * Expr.t) list;
          (** at least one SELECT item is a scalar expression *)
      distinct : bool;
    }

type outcome =
  | Created of string
  | Inserted of int
  | Updated of int
  | Deleted of int
  | Checkpointed of int
  | Backed_up of { dir : string; lsn : int }
  | Promoted of int
  | Query of bound_query * (Colref.t * bool) list
  | Explained of bound_query * (Colref.t * bool) list * bool

let ( let* ) = Result.bind

let rec result_map f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = result_map f rest in
      Ok (y :: ys)

(* ---------------- types ---------------- *)

let bind_type db (ty : Ast.type_ast) :
    (Ctype.t * string option (* domain *), string) result =
  match String.uppercase_ascii ty.Ast.tybase with
  | "INT" | "INTEGER" | "SMALLINT" | "BIGINT" -> Ok (Ctype.Int, None)
  | "FLOAT" | "REAL" | "DOUBLE" | "DOUBLE PRECISION" | "NUMERIC" | "DECIMAL" ->
      Ok (Ctype.Float, None)
  | "CHAR" | "CHARACTER" | "VARCHAR" | "CHARACTER VARYING" | "TEXT" ->
      Ok (Ctype.String, None)
  | "BOOLEAN" | "BOOL" -> Ok (Ctype.Bool, None)
  | _ -> (
      match Catalog.find_domain (Database.catalog db) ty.Ast.tybase with
      | Some d -> Ok (d.Catalog.dtype, Some d.Catalog.dname)
      | None -> Error (Printf.sprintf "unknown type or domain %s" ty.Ast.tybase))

(* ---------------- expressions ---------------- *)

type env = (string * Schema.t) list

let unqualified_hits (env : env) name =
  List.filter_map
    (fun (rel, schema) ->
      let c = Colref.make rel name in
      if Schema.mem schema c then Some c else None)
    env

(* every candidate is named, so fixing the query on a wide FROM list
   (three or more relations) needs no trial and error *)
let ambiguous name candidates =
  Error
    (Printf.sprintf "ambiguous column %s (candidates: %s)" name
       (String.concat ", " (List.map Colref.to_string candidates)))

let resolve_col (env : env) qualifier name : (Colref.t, string) result =
  match qualifier with
  | Some q -> (
      match List.assoc_opt q env with
      | None -> Error (Printf.sprintf "unknown range variable %s" q)
      | Some schema ->
          let c = Colref.make q name in
          if Schema.mem schema c then Ok c
          else Error (Printf.sprintf "unknown column %s.%s" q name))
  | None -> (
      match unqualified_hits env name with
      | [ c ] -> Ok c
      | [] -> Error (Printf.sprintf "unknown column %s" name)
      | hits -> ambiguous name hits)

let binop_of_string = function
  | "+" -> Ok (`Arith Expr.Add)
  | "-" -> Ok (`Arith Expr.Sub)
  | "*" -> Ok (`Arith Expr.Mul)
  | "/" -> Ok (`Arith Expr.Div)
  | "=" -> Ok (`Cmp Expr.Eq)
  | "<>" -> Ok (`Cmp Expr.Ne)
  | "<" -> Ok (`Cmp Expr.Lt)
  | "<=" -> Ok (`Cmp Expr.Le)
  | ">" -> Ok (`Cmp Expr.Gt)
  | ">=" -> Ok (`Cmp Expr.Ge)
  | "AND" -> Ok `And
  | "OR" -> Ok `Or
  | op -> Error (Printf.sprintf "unknown operator %s" op)

let rec bind_expr (env : env) (e : Ast.texpr) : (Expr.t, string) result =
  match e with
  | Ast.E_int n -> Ok (Expr.Const (Value.Int n))
  | Ast.E_float f -> Ok (Expr.Const (Value.Float f))
  | Ast.E_str s -> Ok (Expr.Const (Value.Str s))
  | Ast.E_bool b -> Ok (Expr.Const (Value.Bool b))
  | Ast.E_null -> Ok (Expr.Const Value.Null)
  | Ast.E_param p -> Ok (Expr.Param p)
  | Ast.E_col (q, name) ->
      let* c = resolve_col env q name in
      Ok (Expr.Col c)
  | Ast.E_star -> Error "'*' is only valid inside COUNT(...)"
  | Ast.E_call (f, _) ->
      Error (Printf.sprintf "aggregate %s is not allowed in this context" f)
  | Ast.E_neg a ->
      let* a = bind_expr env a in
      Ok (Expr.Neg a)
  | Ast.E_not a ->
      let* a = bind_expr env a in
      Ok (Expr.Not a)
  | Ast.E_is_null { negated; arg } ->
      let* a = bind_expr env arg in
      Ok (if negated then Expr.Is_not_null a else Expr.Is_null a)
  | Ast.E_like { negated; arg; pattern } ->
      let* a = bind_expr env arg in
      Ok (Expr.Like { negated; arg = a; pattern })
  | Ast.E_case { branches; else_ } ->
      let* branches =
        result_map
          (fun (c, v) ->
            let* c = bind_expr env c in
            let* v = bind_expr env v in
            Ok (c, v))
          branches
      in
      let* else_ =
        match else_ with
        | None -> Ok None
        | Some e ->
            let* e = bind_expr env e in
            Ok (Some e)
      in
      Ok (Expr.Case { branches; else_ })
  | Ast.E_bin (op, a, b) -> (
      let* a = bind_expr env a in
      let* b = bind_expr env b in
      let* op = binop_of_string op in
      match op with
      | `Arith o -> Ok (Expr.Arith (o, a, b))
      | `Cmp o -> Ok (Expr.Cmp (o, a, b))
      | `And -> Ok (Expr.And (a, b))
      | `Or -> Ok (Expr.Or (a, b)))

let rec contains_agg (e : Ast.texpr) =
  match e with
  | Ast.E_call _ -> true
  | Ast.E_bin (_, a, b) -> contains_agg a || contains_agg b
  | Ast.E_neg a | Ast.E_not a -> contains_agg a
  | Ast.E_is_null { arg; _ } | Ast.E_like { arg; _ } -> contains_agg arg
  | Ast.E_case { branches; else_ } ->
      List.exists (fun (c, v) -> contains_agg c || contains_agg v) branches
      || (match else_ with None -> false | Some e -> contains_agg e)
  | _ -> false

let rec bind_agg_calc (env : env) (e : Ast.texpr) : (Agg.calc, string) result =
  match e with
  | Ast.E_int n -> Ok (Agg.Const (Value.Int n))
  | Ast.E_float f -> Ok (Agg.Const (Value.Float f))
  | Ast.E_call (f, args) -> (
      let operand () =
        match args with
        | [ Ast.E_star ] -> Error "'*' is only valid in COUNT(*)"
        | [ a ] -> bind_expr env a
        | _ -> Error (Printf.sprintf "%s takes exactly one argument" f)
      in
      match f with
      | "COUNT" -> (
          match args with
          | [ Ast.E_star ] -> Ok (Agg.Call Agg.Count_star)
          | _ ->
              let* a = operand () in
              Ok (Agg.Call (Agg.Count a)))
      | "COUNT_DISTINCT" ->
          let* a = operand () in
          Ok (Agg.Call (Agg.Count_distinct a))
      | "SUM" ->
          let* a = operand () in
          Ok (Agg.Call (Agg.Sum a))
      | "MIN" ->
          let* a = operand () in
          Ok (Agg.Call (Agg.Min a))
      | "MAX" ->
          let* a = operand () in
          Ok (Agg.Call (Agg.Max a))
      | "AVG" ->
          let* a = operand () in
          Ok (Agg.Call (Agg.Avg a))
      | _ -> Error (Printf.sprintf "unknown aggregate function %s" f))
  | Ast.E_bin (op, a, b) -> (
      let* a = bind_agg_calc env a in
      let* b = bind_agg_calc env b in
      let* op = binop_of_string op in
      match op with
      | `Arith o -> Ok (Agg.Arith (o, a, b))
      | _ -> Error "only arithmetic is allowed between aggregates")
  | Ast.E_neg a ->
      let* a = bind_agg_calc env a in
      Ok (Agg.Neg a)
  | Ast.E_col (q, name) ->
      Error
        (Printf.sprintf
           "column %s%s mixed into an aggregate expression — SELECT items \
            must be either grouping columns or pure aggregate expressions"
           (match q with Some q -> q ^ "." | None -> "")
           name)
  | _ -> Error "unsupported aggregate expression"

(* ---------------- FROM resolution and simple-view inlining ---------------- *)

type from_parts = {
  sources : Canonical.source list;
  env : env;
  extra_where : Expr.t list;
  (* view-column renaming: (alias, visible name) -> underlying column *)
  renames : (string * string, Colref.t) Hashtbl.t;
}

let schema_of_table db name rel =
  match Catalog.find_table (Database.catalog db) name with
  | Some td -> Ok (Table_def.schema ~rel td)
  | None -> Error (Printf.sprintf "unknown table or view %s" name)

let rec resolve_from db (from : (string * string option) list) :
    (from_parts, string) result =
  let renames = Hashtbl.create 8 in
  let* parts =
    result_map
      (fun (name, alias) ->
        let rel = Option.value alias ~default:name in
        match Catalog.find_view (Database.catalog db) name with
        | None ->
            let* schema = schema_of_table db name rel in
            Ok
              ( [ { Canonical.table = name; rel } ],
                [ (rel, schema) ],
                [],
                [] )
        | Some v -> inline_view db rel v)
      from
  in
  let sources = List.concat_map (fun (s, _, _, _) -> s) parts in
  let env = List.concat_map (fun (_, e, _, _) -> e) parts in
  let extra_where = List.concat_map (fun (_, _, w, _) -> w) parts in
  List.iter
    (fun (_, _, _, rn) -> List.iter (fun (k, v) -> Hashtbl.replace renames k v) rn)
    parts;
  (* duplicate range variables? *)
  let rels = List.map (fun s -> s.Canonical.rel) sources in
  if List.length (List.sort_uniq String.compare rels) <> List.length rels then
    Error "duplicate range variables in FROM clause"
  else Ok { sources; env; extra_where; renames }

and inline_view db alias (v : Catalog.view_def) :
    ( Canonical.source list
      * env
      * Expr.t list
      * ((string * string) * Colref.t) list,
      string )
    result =
  let* body =
    match Parser.parse_select v.Catalog.vsql with
    | b -> Ok b
    | exception Parser.Parse_error msg ->
        Error (Printf.sprintf "view %s: %s" v.Catalog.vname msg)
  in
  if body.Ast.group_by <> [] || List.exists (fun (e, _) -> contains_agg e) body.Ast.items
  then
    Error
      (Printf.sprintf
         "view %s is an aggregated view; FROM-clause merging of aggregated \
          views is the reverse transformation of Section 8 — write the \
          flattened query instead (see Eager_core.Reverse)"
         v.Catalog.vname)
  else begin
    (* inline, re-qualifying inner range variables as <alias>_<rel> *)
    let prefix rel = alias ^ "_" ^ rel in
    let* inner = resolve_from db body.Ast.from in
    if Hashtbl.length inner.renames > 0 then
      Error
        (Printf.sprintf "view %s: views over views are not supported"
           v.Catalog.vname)
    else
      let sources =
        List.map
          (fun s -> { s with Canonical.rel = prefix s.Canonical.rel })
          inner.sources
      in
      let env =
        List.map (fun (rel, sch) -> (prefix rel, Schema.rename_rel (prefix rel) sch))
          inner.env
      in
      (* bind the view's WHERE against the prefixed environment *)
      let prefixed_env_for_bind =
        (* inner names must resolve against prefixed rels; rebuild an env
           whose rels are the *original* inner rels mapped to prefixed
           colrefs via renaming after binding *)
        inner.env
      in
      let* where_inner =
        match body.Ast.where with
        | None -> Ok []
        | Some w ->
            let* e = bind_expr prefixed_env_for_bind w in
            Ok [ e ]
      in
      let reprefix (e : Expr.t) : Expr.t =
        Constr.requalify "" e |> ignore;
        (* re-qualify each colref with the prefix *)
        let rec go (e : Expr.t) : Expr.t =
          match e with
          | Expr.Col c -> Expr.Col (Colref.make (prefix c.Colref.rel) c.Colref.name)
          | Expr.Const _ | Expr.Param _ -> e
          | Expr.Neg a -> Expr.Neg (go a)
          | Expr.Not a -> Expr.Not (go a)
          | Expr.Is_null a -> Expr.Is_null (go a)
          | Expr.Is_not_null a -> Expr.Is_not_null (go a)
          | Expr.Like { negated; arg; pattern } ->
              Expr.Like { negated; arg = go arg; pattern }
          | Expr.Case { branches; else_ } ->
              Expr.Case
                {
                  branches = List.map (fun (c, v) -> (go c, go v)) branches;
                  else_ = Option.map go else_;
                }
          | Expr.Arith (op, a, b) -> Expr.Arith (op, go a, go b)
          | Expr.Cmp (op, a, b) -> Expr.Cmp (op, go a, go b)
          | Expr.And (a, b) -> Expr.And (go a, go b)
          | Expr.Or (a, b) -> Expr.Or (go a, go b)
        in
        go e
      in
      let where = List.map reprefix where_inner in
      (* visible columns of the view: each item must be a bare column *)
      let* renames =
        result_map
          (fun (item, item_alias) ->
            match item with
            | Ast.E_col (q, name) ->
                let* c = resolve_col inner.env q name in
                let visible = Option.value item_alias ~default:name in
                Ok
                  ( (alias, visible),
                    Colref.make (prefix c.Colref.rel) c.Colref.name )
            | _ ->
                Error
                  (Printf.sprintf
                     "view %s: only plain column items are supported in \
                      simple views"
                     v.Catalog.vname))
          body.Ast.items
      in
      Ok (sources, env, where, renames)
  end

(* resolve a column reference, honouring view renames first *)
let resolve_col_renamed (parts : from_parts) qualifier name =
  match qualifier with
  | Some q when Hashtbl.mem parts.renames (q, name) ->
      Ok (Hashtbl.find parts.renames (q, name))
  | Some _ -> resolve_col parts.env qualifier name
  | None -> (
      let view_hits =
        Hashtbl.fold
          (fun (_, vis) c acc -> if vis = name then c :: acc else acc)
          parts.renames []
      in
      let env_hits = unqualified_hits parts.env name in
      match view_hits, env_hits with
      | [], [ c ] -> Ok c
      | [], [] -> Error (Printf.sprintf "unknown column %s" name)
      | [], hits -> ambiguous name hits
      | [ c ], [] -> Ok c
      | [ c ], _ :: _ :: _ ->
          (* a unique view rename shadows an ambiguity among base tables *)
          Ok c
      | _ -> ambiguous name (view_hits @ env_hits))

(* bind an expression against a from_parts (with view renames) *)
let bind_expr_renamed (parts : from_parts) e =
  (* reuse bind_expr by first rewriting view-column references *)
  let rec rewrite (e : Ast.texpr) : (Ast.texpr, string) result =
    match e with
    | Ast.E_col (q, name) -> (
        match resolve_col_renamed parts q name with
        | Ok c -> Ok (Ast.E_col (Some c.Colref.rel, c.Colref.name))
        | Error msg -> Error msg)
    | Ast.E_bin (op, a, b) ->
        let* a = rewrite a in
        let* b = rewrite b in
        Ok (Ast.E_bin (op, a, b))
    | Ast.E_neg a ->
        let* a = rewrite a in
        Ok (Ast.E_neg a)
    | Ast.E_not a ->
        let* a = rewrite a in
        Ok (Ast.E_not a)
    | Ast.E_is_null { negated; arg } ->
        let* arg = rewrite arg in
        Ok (Ast.E_is_null { negated; arg })
    | Ast.E_like { negated; arg; pattern } ->
        let* arg = rewrite arg in
        Ok (Ast.E_like { negated; arg; pattern })
    | Ast.E_case { branches; else_ } ->
        let* branches =
          result_map
            (fun (c, v) ->
              let* c = rewrite c in
              let* v = rewrite v in
              Ok (c, v))
            branches
        in
        let* else_ =
          match else_ with
          | None -> Ok None
          | Some e ->
              let* e = rewrite e in
              Ok (Some e)
        in
        Ok (Ast.E_case { branches; else_ })
    | Ast.E_call (f, args) ->
        let* args = result_map rewrite args in
        Ok (Ast.E_call (f, args))
    | _ -> Ok e
  in
  let* e = rewrite e in
  bind_expr parts.env e

(* ---------------- SELECT ---------------- *)

let synth_agg_name (calc : Agg.calc) i =
  let base =
    match calc with
    | Agg.Call Agg.Count_star | Agg.Call (Agg.Count _) -> "count"
    | Agg.Call (Agg.Sum _) -> "sum"
    | Agg.Call (Agg.Min _) -> "min"
    | Agg.Call (Agg.Max _) -> "max"
    | Agg.Call (Agg.Avg _) -> "avg"
    | _ -> "agg"
  in
  Printf.sprintf "%s_%d" base i

(* rewrite view-exported column references to the underlying base columns,
   structurally, so the result can be bound against the plain environment *)
let rewrite_view_cols parts (e : Ast.texpr) : (Ast.texpr, string) result =
  let rec rw (e : Ast.texpr) : (Ast.texpr, string) result =
    match e with
    | Ast.E_col (q, name) -> (
        match resolve_col_renamed parts q name with
        | Ok c -> Ok (Ast.E_col (Some c.Colref.rel, c.Colref.name))
        | Error msg -> Error msg)
    | Ast.E_bin (op, a, b) ->
        let* a = rw a in
        let* b = rw b in
        Ok (Ast.E_bin (op, a, b))
    | Ast.E_neg a ->
        let* a = rw a in
        Ok (Ast.E_neg a)
    | Ast.E_not a ->
        let* a = rw a in
        Ok (Ast.E_not a)
    | Ast.E_is_null { negated; arg } ->
        let* arg = rw arg in
        Ok (Ast.E_is_null { negated; arg })
    | Ast.E_like { negated; arg; pattern } ->
        let* arg = rw arg in
        Ok (Ast.E_like { negated; arg; pattern })
    | Ast.E_case { branches; else_ } ->
        let* branches =
          result_map
            (fun (c, v) ->
              let* c = rw c in
              let* v = rw v in
              Ok (c, v))
            branches
        in
        let* else_ =
          match else_ with
          | None -> Ok None
          | Some e ->
              let* e = rw e in
              Ok (Some e)
        in
        Ok (Ast.E_case { branches; else_ })
    | Ast.E_call (f, args) ->
        let* args = result_map rw args in
        Ok (Ast.E_call (f, args))
    | _ -> Ok e
  in
  rw e

(* HAVING: references to grouping columns bind normally; an aggregate alias
   binds to the aggregate's output column; an aggregate expression must
   match (structurally) an aggregate of the SELECT list, whose output
   column it becomes. *)
let bind_having parts (aggs : Agg.t list) (h : Ast.texpr) :
    (Expr.t, string) result =
  let is_alias name =
    List.exists
      (fun (a : Agg.t) ->
        a.Agg.name.Colref.rel = "" && String.equal a.Agg.name.Colref.name name)
      aggs
  in
  let rec go (e : Ast.texpr) : (Expr.t, string) result =
    if contains_agg e then begin
      let whole =
        let* e' = rewrite_view_cols parts e in
        bind_agg_calc parts.env e'
      in
      match whole with
      | Ok calc -> (
          match
            List.find_opt (fun (a : Agg.t) -> Agg.equal_calc a.Agg.calc calc) aggs
          with
          | Some a -> Ok (Expr.Col a.Agg.name)
          | None ->
              Error
                (Printf.sprintf
                   "HAVING aggregate %s must also appear in the SELECT list"
                   (Ast.texpr_to_string e)))
      | Error _ -> (
          match e with
          | Ast.E_bin (op, a, b) -> (
              let* a = go a in
              let* b = go b in
              let* op = binop_of_string op in
              match op with
              | `Arith o -> Ok (Expr.Arith (o, a, b))
              | `Cmp o -> Ok (Expr.Cmp (o, a, b))
              | `And -> Ok (Expr.And (a, b))
              | `Or -> Ok (Expr.Or (a, b)))
          | Ast.E_not a ->
              let* a = go a in
              Ok (Expr.Not a)
          | Ast.E_neg a ->
              let* a = go a in
              Ok (Expr.Neg a)
          | Ast.E_is_null { negated; arg } ->
              let* a = go arg in
              Ok (if negated then Expr.Is_not_null a else Expr.Is_null a)
          | _ ->
              Error
                (Printf.sprintf "unsupported HAVING expression %s"
                   (Ast.texpr_to_string e)))
    end
    else
      match e with
      | Ast.E_col (None, name) when is_alias name ->
          Ok (Expr.Col (Colref.make "" name))
      | Ast.E_bin (op, a, b) -> (
          let* a = go a in
          let* b = go b in
          let* op = binop_of_string op in
          match op with
          | `Arith o -> Ok (Expr.Arith (o, a, b))
          | `Cmp o -> Ok (Expr.Cmp (o, a, b))
          | `And -> Ok (Expr.And (a, b))
          | `Or -> Ok (Expr.Or (a, b)))
      | Ast.E_not a ->
          let* a = go a in
          Ok (Expr.Not a)
      | Ast.E_neg a ->
          let* a = go a in
          Ok (Expr.Neg a)
      | Ast.E_is_null { negated; arg } ->
          let* a = go arg in
          Ok (if negated then Expr.Is_not_null a else Expr.Is_null a)
      | _ -> bind_expr_renamed parts e
  in
  go h

let bind_select db (s : Ast.select_ast) : (bound_query, string) result =
  let* parts = resolve_from db s.Ast.from in
  let* where =
    match s.Ast.where with
    | None -> Ok Expr.etrue
    | Some w -> bind_expr_renamed parts w
  in
  let where = Expr.conj (Expr.conjuncts where @ parts.extra_where) in
  (* classify items: plain columns, aggregate expressions, or scalar
     expressions (the last only legal without GROUP BY / aggregates) *)
  let* classified =
    result_map
      (fun (i, (item, alias)) ->
        if contains_agg item then begin
          let* calc =
            let* item = rewrite_view_cols parts item in
            bind_agg_calc parts.env item
          in
          let name =
            Colref.make ""
              (match alias with Some a -> a | None -> synth_agg_name calc i)
          in
          Ok (`Agg (Agg.make name calc))
        end
        else
          match item with
          | Ast.E_col (q, name) ->
              let* c = resolve_col_renamed parts q name in
              Ok (`Col c)
          | _ ->
              let* e = bind_expr_renamed parts item in
              let name =
                Colref.make ""
                  (match alias with
                  | Some a -> a
                  | None -> Printf.sprintf "expr_%d" i)
              in
              Ok (`Expr (name, e)))
      (List.mapi (fun i it -> (i, it)) s.Ast.items)
  in
  let cols = List.filter_map (function `Col c -> Some c | _ -> None) classified in
  let aggs = List.filter_map (function `Agg a -> Some a | _ -> None) classified in
  let exprs =
    List.filter_map (function `Expr (n, e) -> Some (n, e) | _ -> None) classified
  in
  let* group_by =
    result_map (fun (q, name) -> resolve_col_renamed parts q name) s.Ast.group_by
  in
  let* having =
    match s.Ast.having with
    | None -> Ok None
    | Some h ->
        let* bound = bind_having parts aggs h in
        Ok (Some bound)
  in
  match group_by, aggs with
  | _ when exprs <> [] && (group_by <> [] || aggs <> []) ->
      Error
        "scalar expressions in the SELECT list are not supported together \
         with GROUP BY or aggregates"
  | [], [] when exprs <> [] ->
      (* keep the SELECT-list order: columns become identity items *)
      let items =
        List.map
          (function
            | `Col c -> (c, Expr.Col c)
            | `Expr (n, e) -> (n, e)
            | `Agg _ -> assert false)
          classified
      in
      Ok
        (Computed
           { sources = parts.sources; where; items; distinct = s.Ast.distinct })
  | [], [] ->
      Ok
        (Simple
           { sources = parts.sources; where; cols; distinct = s.Ast.distinct })
  | [], _ ->
      if cols <> [] then
        Error
          "SELECT mixes aggregates and plain columns without GROUP BY"
      else Ok (Scalar { sources = parts.sources; where; aggs })
  | _, _ ->
      Ok
        (Grouped
           {
             Canonical.sources = parts.sources;
             where;
             group_by;
             select_cols = cols;
             select_aggs = aggs;
             select_distinct = s.Ast.distinct;
             select_having = having;
             r1_hint = [];
           })

let bind_select_checked db s =
  Eager_robust.Err.of_msg Eager_robust.Err.Bind (bind_select db s)

(* ---------------- ORDER BY ---------------- *)

let output_columns (q : bound_query) : Colref.t list =
  match q with
  | Simple { cols; _ } -> cols
  | Computed { items; _ } -> List.map fst items
  | Scalar { aggs; _ } -> List.map (fun (a : Agg.t) -> a.Agg.name) aggs
  | Grouped input ->
      input.Canonical.select_cols
      @ List.map (fun (a : Agg.t) -> a.Agg.name) input.Canonical.select_aggs

let bind_order (q : bound_query) order :
    ((Colref.t * bool) list, string) result =
  let outputs = output_columns q in
  let resolve (qual, name) =
    let hits =
      List.filter
        (fun (c : Colref.t) ->
          String.equal c.Colref.name name
          && match qual with Some r -> String.equal c.Colref.rel r | None -> true)
        outputs
    in
    match hits with
    | [ c ] -> Ok c
    | [] ->
        Error
          (Printf.sprintf "ORDER BY column %s%s is not an output column"
             (match qual with Some r -> r ^ "." | None -> "")
             name)
    | _ -> Error (Printf.sprintf "ambiguous ORDER BY column %s" name)
  in
  result_map
    (fun (col, desc) ->
      let* c = resolve col in
      Ok (c, desc))
    order

let apply_order order plan = Plan.sort order plan

(* ---------------- plans ---------------- *)

let to_plan db (q : bound_query) : (Plan.t, string) result =
  match q with
  | Simple { sources; where; cols; distinct } ->
      if sources = [] then Error "empty FROM clause"
      else
        let tree = Plans.join_tree db sources (Expr.conjuncts where) in
        Ok (Plan.project ~dedup:distinct cols tree)
  | Computed { sources; where; items; distinct } ->
      if sources = [] then Error "empty FROM clause"
      else begin
        let tree = Plans.join_tree db sources (Expr.conjuncts where) in
        let mapped = Plan.map_items items tree in
        Ok
          (if distinct then
             Plan.project ~dedup:true (List.map fst items) mapped
           else mapped)
      end
  | Scalar { sources; where; aggs } ->
      let tree = Plans.join_tree db sources (Expr.conjuncts where) in
      Ok (Plan.group ~scalar:true ~by:[] ~aggs tree)
  | Grouped input -> (
      (* Even queries outside the canonical class (e.g. aggregates on every
         table) are executable: build the straightforward plan directly. *)
      match Canonical.of_input db input with
      (* naive fallback for statements the planner is never offered —
         correctness baseline, not a planned path *)
      | Ok q -> Ok (Plans.e1 db q) (* legacy-plan-ok: naive fallback *)
      | Error _ ->
          let tree =
            Plans.join_tree db input.Canonical.sources
              (Expr.conjuncts input.Canonical.where)
          in
          let grouped =
            Plan.group ~by:input.Canonical.group_by
              ~aggs:input.Canonical.select_aggs tree
          in
          let filtered =
            match input.Canonical.select_having with
            | None -> grouped
            | Some h -> Plan.select h grouped
          in
          let cols =
            input.Canonical.select_cols
            @ List.map (fun (a : Agg.t) -> a.Agg.name) input.Canonical.select_aggs
          in
          Ok (Plan.project ~dedup:input.Canonical.select_distinct cols filtered))

(* ---------------- statements ---------------- *)

let bind_create_table db name items : (Table_def.t, string) result =
  let* columns =
    result_map
      (fun item ->
        match item with
        | Ast.It_column { name = cname; ty; constraints = _ } ->
            let* ctype, domain = bind_type db ty in
            Ok [ { Table_def.cname; ctype; domain } ]
        | _ -> Ok [])
      items
    |> Result.map List.concat
  in
  let col_env : env =
    [ ("", Schema.make (List.map (fun (c : Table_def.column_def) ->
          (Colref.make "" c.Table_def.cname, c.Table_def.ctype)) columns)) ]
  in
  let bind_check e =
    (* CHECK expressions reference the table's own columns, unqualified *)
    bind_expr col_env e
  in
  let* constraints =
    result_map
      (fun item ->
        match item with
        | Ast.It_column { name = cname; constraints; _ } ->
            result_map
              (fun c ->
                match c with
                | Ast.Cc_not_null -> Ok (Constr.Not_null cname)
                | Ast.Cc_unique -> Ok (Constr.Unique [ cname ])
                | Ast.Cc_primary -> Ok (Constr.Primary_key [ cname ])
                | Ast.Cc_check e ->
                    let* e = bind_check e in
                    Ok (Constr.Check e)
                | Ast.Cc_references (t, cols) ->
                    let ref_cols = if cols = [] then [ cname ] else cols in
                    Ok
                      (Constr.Foreign_key
                         { cols = [ cname ]; ref_table = t; ref_cols }))
              constraints
        | Ast.It_primary cols -> Ok [ Constr.Primary_key cols ]
        | Ast.It_unique cols -> Ok [ Constr.Unique cols ]
        | Ast.It_check e ->
            let* e = bind_check e in
            Ok [ Constr.Check e ]
        | Ast.It_foreign { cols; ref_table; ref_cols } ->
            let ref_cols = if ref_cols = [] then cols else ref_cols in
            Ok [ Constr.Foreign_key { cols; ref_table; ref_cols } ])
      items
    |> Result.map List.concat
  in
  match Table_def.make name columns constraints with
  | td -> Ok td
  | exception Failure msg -> Error msg

let literal_value (e : Ast.texpr) : (Value.t, string) result =
  let* bound = bind_expr [] e in
  match Expr.eval (Schema.make []) bound [||] with
  | v -> Ok v
  | exception Failure msg -> Error msg

let exec_statement db (stmt : Ast.statement) : (outcome, string) result =
  match stmt with
  | Ast.S_create_table (name, items) -> (
      let* td = bind_create_table db name items in
      match Database.create_table db td with
      | () -> Ok (Created (Printf.sprintf "table %s created" name))
      | exception Failure msg -> Error msg)
  | Ast.S_create_domain (name, ty, check) -> (
      let* dtype, domain = bind_type db ty in
      let* () =
        if domain <> None then Error "domains cannot be defined over domains"
        else Ok ()
      in
      let* dcheck =
        match check with
        | None -> Ok None
        | Some e ->
            (* the pseudo-column VALUE, unqualified *)
            let env : env =
              [ ("", Schema.make [ (Colref.make "" "VALUE", dtype) ]) ]
            in
            let* e = bind_expr env e in
            Ok (Some e)
      in
      match
        Database.create_domain db { Catalog.dname = name; dtype; dcheck }
      with
      | () -> Ok (Created (Printf.sprintf "domain %s created" name))
      | exception Failure msg -> Error msg)
  | Ast.S_create_view { name; body_sql; body } -> (
      (* validate that the body binds *)
      let* _ = bind_select db body in
      match
        Database.create_view db { Catalog.vname = name; vsql = body_sql }
      with
      | () -> Ok (Created (Printf.sprintf "view %s created" name))
      | exception Failure msg -> Error msg)
  | Ast.S_insert (name, rows) ->
      (* evaluate every row first, then load atomically: a multi-row
         INSERT either fully lands or leaves the table untouched, which
         is the statement-level atomicity the write-ahead log relies on *)
      let* values = result_map (result_map literal_value) rows in
      let* () = Eager_robust.Err.to_msg (Database.load_result db name values) in
      Ok (Inserted (List.length values))
  | Ast.S_create_index { name; table; cols } ->
      let* () = Database.create_index db ~name ~table ~cols in
      Ok (Created (Printf.sprintf "index %s created" name))
  | Ast.S_update { table; set; where } ->
      let* env =
        match schema_of_table db table table with
        | Ok schema -> Ok [ (table, schema) ]
        | Error msg -> Error msg
      in
      let* set =
        result_map
          (fun (c, e) ->
            let* e = bind_expr env e in
            Ok (c, e))
          set
      in
      let* where =
        match where with
        | None -> Ok Expr.etrue
        | Some w -> bind_expr env w
      in
      let* n = Eager_robust.Err.to_msg (Database.update db table ~set ~where ()) in
      Ok (Updated n)
  | Ast.S_delete { table; where } ->
      let* env =
        match schema_of_table db table table with
        | Ok schema -> Ok [ (table, schema) ]
        | Error msg -> Error msg
      in
      let* where =
        match where with
        | None -> Ok Expr.etrue
        | Some w -> bind_expr env w
      in
      let* n = Eager_robust.Err.to_msg (Database.delete db table ~where ()) in
      Ok (Deleted n)
  | Ast.S_select s ->
      let* q = bind_select db s in
      let* order = bind_order q s.Ast.order_by in
      Ok (Query (q, order))
  | Ast.S_explain { analyze; body } ->
      let* q = bind_select db body in
      let* order = bind_order q body.Ast.order_by in
      Ok (Explained (q, order, analyze))
  | Ast.S_checkpoint ->
      (* performed by the durable session wrapper (Eager_durable.Durable),
         which intercepts the statement before it reaches here *)
      Error "CHECKPOINT requires a write-ahead-logged session (run with --wal)"
  | Ast.S_status ->
      (* answered by the server front end (Eager_server.Server), which
         intercepts the statement and reports its telemetry counters *)
      Error "STATUS requires a server session (connect to eagerdb serve)"
  | Ast.S_backup _ ->
      (* performed by the durable session wrapper, which owns the WAL
         file the backup must copy *)
      Error "BACKUP requires a write-ahead-logged session (run with --wal)"
  | Ast.S_promote ->
      (* answered by the server front end: only a server has a
         replication role to change *)
      Error "PROMOTE requires a server session (connect to eagerdb serve)"

let parse_script_safe src =
  match Parser.parse_script src with
  | s -> Ok s
  | exception Parser.Parse_error msg -> Error msg
  | exception Lexer.Lex_error msg -> Error msg

let run_script db src : (outcome list, string) result =
  let* stmts = parse_script_safe src in
  result_map (exec_statement db) stmts

let run_script_with db src ~f : (unit, string) result =
  let* stmts = parse_script_safe src in
  List.fold_left
    (fun acc stmt ->
      let* () = acc in
      let* outcome = exec_statement db stmt in
      f outcome;
      Ok ())
    (Ok ()) stmts
