open Eager_value
open Eager_schema
open Eager_expr
open Eager_catalog
open Eager_storage
open Eager_robust

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* DDL generation *)

let type_sql (c : Table_def.column_def) =
  match c.Table_def.domain with
  | Some d -> d
  | None -> (
      match c.Table_def.ctype with
      | Ctype.Int -> "INTEGER"
      | Ctype.Float -> "FLOAT"
      | Ctype.String -> "VARCHAR(255)"
      | Ctype.Bool -> "BOOLEAN")

let ddl_of_domain (d : Catalog.domain_def) =
  let base =
    match d.Catalog.dtype with
    | Ctype.Int -> "INTEGER"
    | Ctype.Float -> "FLOAT"
    | Ctype.String -> "VARCHAR(255)"
    | Ctype.Bool -> "BOOLEAN"
  in
  match d.Catalog.dcheck with
  | None -> Printf.sprintf "CREATE DOMAIN %s %s;" d.Catalog.dname base
  | Some e ->
      Printf.sprintf "CREATE DOMAIN %s %s CHECK (%s);" d.Catalog.dname base
        (Expr.to_string e)

let ddl_of_table (td : Table_def.t) =
  let cols =
    List.map
      (fun (c : Table_def.column_def) ->
        Printf.sprintf "  %s %s" c.Table_def.cname (type_sql c))
      td.Table_def.columns
  in
  let constraints =
    List.map
      (fun c ->
        match c with
        | Constr.Primary_key k ->
            Printf.sprintf "  PRIMARY KEY (%s)" (String.concat ", " k)
        | Constr.Unique k ->
            Printf.sprintf "  UNIQUE (%s)" (String.concat ", " k)
        | Constr.Not_null col -> Printf.sprintf "  %s NOT NULL" col
        | Constr.Check e ->
            Printf.sprintf "  CHECK (%s)" (Expr.to_string e)
        | Constr.Foreign_key { cols; ref_table; ref_cols } ->
            Printf.sprintf "  FOREIGN KEY (%s) REFERENCES %s (%s)"
              (String.concat ", " cols) ref_table
              (String.concat ", " ref_cols))
      td.Table_def.constraints
  in
  (* NOT NULL is expressed as a column suffix in our grammar *)
  let not_null_cols =
    List.filter_map
      (function Constr.Not_null c -> Some c | _ -> None)
      td.Table_def.constraints
  in
  let cols =
    List.map2
      (fun line (c : Table_def.column_def) ->
        if List.mem c.Table_def.cname not_null_cols then line ^ " NOT NULL"
        else line)
      cols td.Table_def.columns
  in
  let constraints =
    List.filter
      (fun line ->
        (* drop the standalone NOT NULL lines now folded into columns *)
        not
          (List.exists
             (fun c -> line = Printf.sprintf "  %s NOT NULL" c)
             not_null_cols))
      constraints
  in
  Printf.sprintf "CREATE TABLE %s (\n%s);" td.Table_def.tname
    (String.concat ",\n" (cols @ constraints))

let ddl_of_view (v : Catalog.view_def) =
  Printf.sprintf "CREATE VIEW %s AS %s;" v.Catalog.vname v.Catalog.vsql

let ddl_of_index (i : Catalog.index_def) =
  Printf.sprintf "CREATE INDEX %s ON %s (%s);" i.Catalog.iname
    i.Catalog.itable
    (String.concat ", " i.Catalog.icols)

let ddl_of_database db =
  let cat = Database.catalog db in
  String.concat "\n"
    (List.map ddl_of_domain (Catalog.domains cat)
    @ List.map ddl_of_table (Catalog.tables cat)
    @ List.map ddl_of_view (Catalog.views cat)
    @ List.map ddl_of_index (Catalog.indexes cat))

(* ------------------------------------------------------------------ *)
(* CSV encoding *)

let encode_value = function
  | Value.Null -> "NULL"
  | Value.Int n -> string_of_int n
  | Value.Float f -> Printf.sprintf "%h" f
  | Value.Bool b -> if b then "TRUE" else "FALSE"
  | Value.Str s ->
      if String.contains s '\n' then
        Err.failf Err.Io "cannot persist a string containing a newline";
      let buf = Buffer.create (String.length s + 2) in
      Buffer.add_char buf '"';
      String.iter
        (fun c ->
          if c = '"' then Buffer.add_string buf "\"\""
          else Buffer.add_char buf c)
        s;
      Buffer.add_char buf '"';
      Buffer.contents buf

let encode_row row =
  String.concat "," (Array.to_list (Array.map encode_value row))

(* split one CSV line into raw fields, honouring quotes *)
let split_fields line =
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let n = String.length line in
  let rec go i in_quotes =
    if i >= n then begin
      fields := Buffer.contents buf :: !fields;
      Ok ()
    end
    else
      let c = line.[i] in
      if in_quotes then
        if c = '"' then
          if i + 1 < n && line.[i + 1] = '"' then begin
            Buffer.add_char buf '"';
            go (i + 2) true
          end
          else begin
            Buffer.add_char buf '"';
            go (i + 1) false
          end
        else begin
          Buffer.add_char buf c;
          go (i + 1) true
        end
      else if c = ',' then begin
        fields := Buffer.contents buf :: !fields;
        Buffer.clear buf;
        go (i + 1) false
      end
      else begin
        Buffer.add_char buf c;
        go (i + 1) (c = '"')
      end
  in
  let* () = go 0 false in
  Ok (List.rev !fields)

let decode_value raw : (Value.t, string) result =
  let n = String.length raw in
  if raw = "NULL" then Ok Value.Null
  else if raw = "TRUE" then Ok (Value.Bool true)
  else if raw = "FALSE" then Ok (Value.Bool false)
  else if n >= 2 && raw.[0] = '"' && raw.[n - 1] = '"' then
    Ok (Value.Str (String.sub raw 1 (n - 2)))
  else
    match int_of_string_opt raw with
    | Some i -> Ok (Value.Int i)
    | None -> (
        match float_of_string_opt raw with
        | Some f -> Ok (Value.Float f)
        | None -> Error (Printf.sprintf "cannot decode CSV field %S" raw))

(* ------------------------------------------------------------------ *)
(* Crash-safe snapshot persistence.

   The whole database is serialised into a single [snapshot.eagerdb]
   file: a version header, the DDL, one section per table, an [\[end\]]
   sentinel, and a trailing MD5 checksum line covering everything above
   it.  The save path is write-to-temp → fsync → atomic rename, so a
   crash (or injected fault) at any moment leaves either the previous
   snapshot or the new one — never a torn file that parses.  The load
   path refuses anything whose checksum does not verify, so a torn or
   corrupted file yields a typed [Error] and no half-loaded database. *)

let snapshot_file = "snapshot.eagerdb"
let snapshot_magic = "eagerdb snapshot v1"
let checksum_prefix = "#checksum:"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let snapshot_body ?(wal_lsn = 0) db =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf snapshot_magic;
  Buffer.add_char buf '\n';
  (* the WAL position this snapshot reflects: on recovery, log records
     with LSN <= this are already folded in and must not replay.  Written
     only for durable sessions so plain snapshots keep their old shape. *)
  if wal_lsn > 0 then
    Buffer.add_string buf (Printf.sprintf "[wal-lsn %d]\n" wal_lsn);
  Buffer.add_string buf "[schema]\n";
  Buffer.add_string buf (ddl_of_database db);
  Buffer.add_char buf '\n';
  List.iter
    (fun (td : Table_def.t) ->
      let h = Database.heap db td.Table_def.tname in
      Buffer.add_string buf
        (Printf.sprintf "[table %s]\n" td.Table_def.tname);
      Buffer.add_string buf (String.concat "," (Table_def.column_names td));
      Buffer.add_char buf '\n';
      Heap.iter
        (fun row ->
          Buffer.add_string buf (encode_row row);
          Buffer.add_char buf '\n')
        h)
    (Catalog.tables (Database.catalog db));
  Buffer.add_string buf "[end]\n";
  Buffer.contents buf

let save ?wal_lsn db ~dir =
  Err.protect ~kind:Err.Io (fun () ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let body = snapshot_body ?wal_lsn db in
      let content =
        body ^ checksum_prefix ^ Digest.to_hex (Digest.string body) ^ "\n"
      in
      let final = Filename.concat dir snapshot_file in
      let tmp = final ^ ".tmp" in
      let committed = ref false in
      Fun.protect
        ~finally:(fun () ->
          (* a failed attempt must not leave its temp file behind *)
          if (not !committed) && Sys.file_exists tmp then
            try Sys.remove tmp with Sys_error _ -> ())
        (fun () ->
          let oc = open_out_bin tmp in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () ->
              (* the fault point sits mid-write: if it fires, the temp
                 file is torn — exactly what a real crash leaves *)
              let half = String.length content / 2 in
              output_substring oc content 0 half;
              Fault.trip "persist.write";
              output_substring oc content half (String.length content - half);
              flush oc;
              Unix.fsync (Unix.descr_of_out_channel oc));
          Fault.trip "persist.rename";
          Sys.rename tmp final;
          committed := true))

(* ------------------------------------------------------------------ *)
(* legacy directory layout (schema.sql + one CSV per table), still
   readable so databases saved by older builds keep loading *)

let load_legacy ?storage ~dir () =
  let db = Database.create ?storage () in
  let schema_path = Filename.concat dir "schema.sql" in
  if not (Sys.file_exists schema_path) then
    Error (Err.io "%s: no snapshot or schema.sql found" dir)
  else begin
    let* _ =
      match Binder.run_script db (read_file schema_path) with
      | Ok _ -> Ok ()
      | Error msg -> Error (Err.io "schema.sql: %s" msg)
    in
    let* () =
      Err.iter_result
        (fun (td : Table_def.t) ->
          let path = Filename.concat dir (td.Table_def.tname ^ ".csv") in
          if not (Sys.file_exists path) then
            Error (Err.io "%s not found" path)
          else begin
            let lines =
              String.split_on_char '\n' (read_file path)
              |> List.filter (fun l -> String.trim l <> "")
            in
            match lines with
            | [] -> Error (Err.io "%s: missing header" path)
            | _header :: rows ->
                let h = Database.heap db td.Table_def.tname in
                Err.iter_result
                  (fun line ->
                    let* fields = Err.of_msg Err.Io (split_fields line) in
                    let* values =
                      Err.map_result
                        (fun f -> Err.of_msg Err.Io (decode_value f))
                        fields
                    in
                    (* trusted dump: straight into the heap *)
                    match Heap.insert h (Array.of_list values) with
                    | () -> Ok ()
                    | exception Invalid_argument msg -> Error (Err.io "%s" msg))
                  rows
          end)
        (Catalog.tables (Database.catalog db))
    in
    Ok db
  end

(* ------------------------------------------------------------------ *)
(* snapshot parsing *)

let verify_checksum content =
  (* the checksum line has a fixed shape: prefix + 32 hex chars + \n *)
  let tail_len = String.length checksum_prefix + 32 + 1 in
  let n = String.length content in
  if n < tail_len then Error (Err.io "snapshot torn: too short to carry a checksum")
  else
    let body = String.sub content 0 (n - tail_len) in
    let tail = String.sub content (n - tail_len) tail_len in
    if
      (not (String.length tail = tail_len))
      || (not (String.sub tail 0 (String.length checksum_prefix) = checksum_prefix))
      || tail.[tail_len - 1] <> '\n'
    then Error (Err.io "snapshot torn: missing checksum trailer")
    else
      let recorded = String.sub tail (String.length checksum_prefix) 32 in
      let actual = Digest.to_hex (Digest.string body) in
      if String.equal recorded actual then Ok body
      else
        Error
          (Err.io "snapshot rejected: checksum mismatch (stored %s, computed %s)"
             recorded actual)

(* split the verified body into the WAL position, the schema text and
   per-table row lines *)
let parse_sections body =
  let lines = String.split_on_char '\n' body in
  let* wal_lsn, lines =
    match lines with
    | magic :: l :: rest
      when String.equal magic snapshot_magic
           && String.length l > 9
           && String.sub l 0 9 = "[wal-lsn " -> (
        if l.[String.length l - 1] <> ']' then
          Error (Err.io "snapshot torn: malformed section %S" l)
        else
          match
            int_of_string_opt (String.sub l 9 (String.length l - 10))
          with
          | Some n when n >= 0 -> Ok (n, magic :: rest)
          | _ -> Error (Err.io "snapshot rejected: bad wal-lsn %S" l))
    | _ -> Ok (0, lines)
  in
  match lines with
  | magic :: "[schema]" :: rest when String.equal magic snapshot_magic ->
      let is_section l =
        String.length l >= 1 && l.[0] = '['
        && (String.equal l "[end]"
           || (String.length l > 7 && String.sub l 0 7 = "[table "))
      in
      let rec take_until acc = function
        | [] -> (List.rev acc, [])
        | l :: _ as rest when is_section l -> (List.rev acc, rest)
        | l :: rest -> take_until (l :: acc) rest
      in
      let schema_lines, rest = take_until [] rest in
      let rec tables acc = function
        | [ "[end]" ] | [ "[end]"; "" ] -> Ok (List.rev acc)
        | l :: rest when String.length l > 7 && String.sub l 0 7 = "[table " ->
            let name = String.sub l 7 (String.length l - 8) in
            if String.length l < 9 || l.[String.length l - 1] <> ']' then
              Error (Err.io "snapshot torn: malformed section %S" l)
            else
              let body_lines, rest = take_until [] rest in
              (match body_lines with
              | [] -> Error (Err.io "snapshot torn: table %s missing header" name)
              | _header :: rows -> tables ((name, rows) :: acc) rest)
        | l :: _ -> Error (Err.io "snapshot torn: unexpected line %S" l)
        | [] -> Error (Err.io "snapshot torn: missing [end] sentinel")
      in
      let* tabs = tables [] rest in
      Ok (wal_lsn, String.concat "\n" schema_lines, tabs)
  | _ -> Error (Err.io "unrecognized snapshot header")

let load_snapshot ?storage path =
  let* content =
    match read_file path with
    | content -> Ok content
    | exception Sys_error msg -> Error (Err.io "%s" msg)
  in
  let* body = verify_checksum content in
  let* wal_lsn, schema_text, tabs = parse_sections body in
  let db = Database.create ?storage () in
  let* _ =
    match Binder.run_script db schema_text with
    | Ok _ -> Ok ()
    | Error msg -> Error (Err.io "snapshot schema: %s" msg)
  in
  let* () =
    Err.iter_result
      (fun (name, rows) ->
        match Database.heap_opt db name with
        | None -> Error (Err.io "snapshot names unknown table %s" name)
        | Some h ->
            Err.iter_result
              (fun line ->
                if String.trim line = "" then Ok ()
                else
                  let* fields = Err.of_msg Err.Io (split_fields line) in
                  let* values =
                    Err.map_result
                      (fun f -> Err.of_msg Err.Io (decode_value f))
                      fields
                  in
                  (* trusted dump: straight into the heap *)
                  match Heap.insert h (Array.of_list values) with
                  | () -> Ok ()
                  | exception Invalid_argument msg -> Error (Err.io "%s" msg))
              rows)
      tabs
  in
  Ok (db, wal_lsn)

let load_with_lsn ?storage ~dir () =
  let path = Filename.concat dir snapshot_file in
  let result =
    if Sys.file_exists path then
      (* contain even unexpected raises from a hostile file *)
      Result.join
        (Err.protect ~kind:Err.Io (fun () -> load_snapshot ?storage path))
    else
      let* db = load_legacy ?storage ~dir () in
      Ok (db, 0)
  in
  Err.with_context (Printf.sprintf "loading %s" dir) result

let load ?storage ~dir () = Result.map fst (load_with_lsn ?storage ~dir ())
