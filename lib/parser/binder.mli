(** Name resolution and semantic analysis: AST → catalog objects, bound
    queries and executable actions.

    Simple (non-aggregated) views are inlined into the FROM clause; their
    inner range variables are re-qualified as [<alias>_<inner rel>].
    Aggregated views in a FROM clause are rejected with a pointer to the
    Section 8 flattening (module [Eager_core.Reverse]) — merging them
    automatically is exactly the reverse transformation, which the caller
    must opt into by writing the flattened query. *)

open Eager_schema
open Eager_expr
open Eager_storage
open Eager_core
open Eager_algebra

type bound_query =
  | Grouped of Canonical.input
      (** has GROUP BY — candidate for the transformation *)
  | Scalar of {
      sources : Canonical.source list;
      where : Expr.t;
      aggs : Agg.t list;
    }  (** aggregates without GROUP BY: one output row *)
  | Simple of {
      sources : Canonical.source list;
      where : Expr.t;
      cols : Colref.t list;
      distinct : bool;
    }
  | Computed of {
      sources : Canonical.source list;
      where : Expr.t;
      items : (Colref.t * Expr.t) list;
          (** at least one SELECT item is a scalar expression *)
      distinct : bool;
    }

type outcome =
  | Created of string  (** DDL succeeded; message *)
  | Inserted of int  (** number of rows *)
  | Updated of int
  | Deleted of int
  | Checkpointed of int
      (** a durable session flushed its WAL; the snapshot's LSN.  Only
          produced by [Eager_durable.Durable] — [exec_statement] itself
          rejects CHECKPOINT because it has no log to truncate *)
  | Backed_up of { dir : string; lsn : int }
      (** an online hot backup landed in [dir], consistent as of [lsn].
          Only produced by [Eager_durable.Durable] — [exec_statement]
          itself rejects BACKUP because it has no WAL to copy *)
  | Promoted of int
      (** a standby took over as primary at the given LSN.  Only produced
          by the server front end ([Eager_server.Server]) *)
  | Query of bound_query * (Colref.t * bool) list
      (** query plus its resolved ORDER BY (empty when none) *)
  | Explained of bound_query * (Colref.t * bool) list * bool
      (** the flag is EXPLAIN ANALYZE: the consumer should also execute the
          plan and report actual cardinalities *)

val bind_select : Database.t -> Ast.select_ast -> (bound_query, string) result
(** An ambiguous unqualified column is rejected with an error naming
    {i every} candidate relation ("ambiguous column c (candidates: A.c,
    B.c, G.c)") — with three or more relations in FROM, pointing at just
    one pair would send the user hunting. *)

val bind_select_checked :
  Database.t -> Ast.select_ast -> (bound_query, Eager_robust.Err.t) result
(** {!bind_select} with failures lifted to the typed error channel
    (kind [Bind]). *)

val to_plan : Database.t -> bound_query -> (Plan.t, string) result
(** The straightforward (lazy) plan for any bound query. *)

val output_columns : bound_query -> Colref.t list
(** The query's output columns, in SELECT order (aggregate outputs carry an
    empty range variable). *)

val bind_order :
  bound_query ->
  ((string option * string) * bool) list ->
  ((Colref.t * bool) list, string) result
(** Resolve an ORDER BY list against the query's output columns. *)

val apply_order : (Colref.t * bool) list -> Plan.t -> Plan.t

val exec_statement : Database.t -> Ast.statement -> (outcome, string) result
(** Applies DDL/DML side effects to [db]; queries are returned bound but
    not executed. *)

val run_script : Database.t -> string -> (outcome list, string) result
(** Parse and execute every statement in the script, collecting the
    outcomes.  Caveat: [Query]/[Explained] outcomes carry {i bound but
    unexecuted} queries — if the caller executes them after this returns,
    they observe the database state at the {i end} of the script.  Scripts
    that interleave SELECTs with DML should use {!run_script_with}. *)

val run_script_with :
  Database.t -> string -> f:(outcome -> unit) -> (unit, string) result
(** Like {!run_script} but invokes [f] on each outcome immediately after
    its statement executes, so a consumer that runs queries inside [f]
    observes the database state at that point of the script. *)
