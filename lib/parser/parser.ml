open Lexer

exception Parse_error of string

type state = { toks : token array; mutable pos : int }

let peek st = st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let fail st msg =
  raise
    (Parse_error
       (Printf.sprintf "%s (at %s)" msg (token_to_string (peek st))))

let is_kw st kw =
  match peek st with
  | Tident s -> String.uppercase_ascii s = kw
  | _ -> false

let accept_kw st kw =
  if is_kw st kw then begin
    advance st;
    true
  end
  else false

let expect_kw st kw =
  if not (accept_kw st kw) then fail st (Printf.sprintf "expected %s" kw)

let accept_sym st s =
  match peek st with
  | Tsym s' when s = s' ->
      advance st;
      true
  | _ -> false

let expect_sym st s =
  if not (accept_sym st s) then fail st (Printf.sprintf "expected '%s'" s)

let keywords =
  [
    "SELECT"; "FROM"; "WHERE"; "GROUP"; "BY"; "AS"; "AND"; "OR"; "NOT";
    "NULL"; "IS"; "DISTINCT"; "ALL"; "CREATE"; "TABLE"; "DOMAIN"; "VIEW";
    "INSERT"; "INTO"; "VALUES"; "PRIMARY"; "KEY"; "UNIQUE"; "CHECK";
    "FOREIGN"; "REFERENCES"; "EXPLAIN"; "TRUE"; "FALSE"; "HAVING"; "ORDER";
    "ASC"; "DESC"; "LIKE"; "BETWEEN"; "IN"; "UPDATE"; "SET"; "DELETE";
    "INDEX"; "ON"; "CASE"; "WHEN"; "THEN"; "ELSE"; "END"; "ANALYZE";
    "CHECKPOINT"; "STATUS"; "BACKUP"; "PROMOTE";
  ]

let ident st =
  match peek st with
  | Tident s when not (List.mem (String.uppercase_ascii s) keywords) ->
      advance st;
      s
  | _ -> fail st "expected identifier"

let ident_list st =
  let rec go acc =
    let i = ident st in
    if accept_sym st "," then go (i :: acc) else List.rev (i :: acc)
  in
  go []

(* ---------------- expressions ---------------- *)

let agg_names = [ "COUNT"; "SUM"; "MIN"; "MAX"; "AVG" ]

let rec parse_or st =
  let a = parse_and st in
  if accept_kw st "OR" then Ast.E_bin ("OR", a, parse_or st) else a

and parse_and st =
  let a = parse_not st in
  if accept_kw st "AND" then Ast.E_bin ("AND", a, parse_and st) else a

and parse_not st =
  if accept_kw st "NOT" then Ast.E_not (parse_not st) else parse_predicate st

and parse_predicate st =
  let a = parse_additive st in
  (* the suffix predicates LIKE / BETWEEN / IN, possibly prefixed by NOT *)
  let suffix negated =
    if accept_kw st "LIKE" then begin
      match peek st with
      | Tstring pattern ->
          advance st;
          Some (Ast.E_like { negated; arg = a; pattern })
      | _ -> fail st "LIKE expects a string literal pattern"
    end
    else if accept_kw st "BETWEEN" then begin
      (* a BETWEEN lo AND hi  ≡  a >= lo AND a <= hi; the bounds are
         additive expressions so the AND is unambiguous *)
      let lo = parse_additive st in
      expect_kw st "AND";
      let hi = parse_additive st in
      let between =
        Ast.E_bin ("AND", Ast.E_bin (">=", a, lo), Ast.E_bin ("<=", a, hi))
      in
      Some (if negated then Ast.E_not between else between)
    end
    else if accept_kw st "IN" then begin
      expect_sym st "(";
      let rec go acc =
        let e = parse_or st in
        if accept_sym st "," then go (e :: acc) else List.rev (e :: acc)
      in
      let values = go [] in
      expect_sym st ")";
      (* a IN (v1, ..., vn)  ≡  a = v1 OR ... OR a = vn — exactly, in 3VL *)
      let disj =
        match List.map (fun v -> Ast.E_bin ("=", a, v)) values with
        | [] -> fail st "IN requires at least one value"
        | first :: rest ->
            List.fold_left (fun acc e -> Ast.E_bin ("OR", acc, e)) first rest
      in
      Some (if negated then Ast.E_not disj else disj)
    end
    else None
  in
  match peek st with
  | Tsym (("=" | "<>" | "<" | "<=" | ">" | ">=") as op) ->
      advance st;
      Ast.E_bin (op, a, parse_additive st)
  | Tident s when String.uppercase_ascii s = "IS" ->
      advance st;
      let negated = accept_kw st "NOT" in
      expect_kw st "NULL";
      Ast.E_is_null { negated; arg = a }
  | Tident s
    when String.uppercase_ascii s = "NOT"
         && (match st.toks.(st.pos + 1) with
            | Tident k ->
                List.mem (String.uppercase_ascii k) [ "LIKE"; "BETWEEN"; "IN" ]
            | _ -> false) -> (
      advance st;
      match suffix true with Some e -> e | None -> fail st "expected predicate")
  | _ -> ( match suffix false with Some e -> e | None -> a)

and parse_additive st =
  let rec go a =
    if accept_sym st "+" then go (Ast.E_bin ("+", a, parse_multiplicative st))
    else if accept_sym st "-" then
      go (Ast.E_bin ("-", a, parse_multiplicative st))
    else a
  in
  go (parse_multiplicative st)

and parse_multiplicative st =
  let rec go a =
    if accept_sym st "*" then go (Ast.E_bin ("*", a, parse_unary st))
    else if accept_sym st "/" then go (Ast.E_bin ("/", a, parse_unary st))
    else a
  in
  go (parse_unary st)

and parse_unary st =
  if accept_sym st "-" then Ast.E_neg (parse_unary st) else parse_primary st

and parse_primary st =
  match peek st with
  | Tint n ->
      advance st;
      Ast.E_int n
  | Tfloat f ->
      advance st;
      Ast.E_float f
  | Tstring s ->
      advance st;
      Ast.E_str s
  | Tparam p ->
      advance st;
      Ast.E_param p
  | Tsym "(" ->
      advance st;
      let e = parse_or st in
      expect_sym st ")";
      e
  | Tident s when String.uppercase_ascii s = "CASE" ->
      advance st;
      let rec whens acc =
        if accept_kw st "WHEN" then begin
          let c = parse_or st in
          expect_kw st "THEN";
          let v = parse_or st in
          whens ((c, v) :: acc)
        end
        else List.rev acc
      in
      let branches = whens [] in
      if branches = [] then fail st "CASE needs at least one WHEN";
      let else_ = if accept_kw st "ELSE" then Some (parse_or st) else None in
      expect_kw st "END";
      Ast.E_case { branches; else_ }
  | Tident s when String.uppercase_ascii s = "NULL" ->
      advance st;
      Ast.E_null
  | Tident s when String.uppercase_ascii s = "TRUE" ->
      advance st;
      Ast.E_bool true
  | Tident s when String.uppercase_ascii s = "FALSE" ->
      advance st;
      Ast.E_bool false
  | Tident s when List.mem (String.uppercase_ascii s) agg_names -> (
      advance st;
      match peek st with
      | Tsym "(" ->
          advance st;
          let fname = String.uppercase_ascii s in
          let fname =
            (* COUNT(DISTINCT e) *)
            if fname = "COUNT" && accept_kw st "DISTINCT" then
              "COUNT_DISTINCT"
            else fname
          in
          let args =
            if accept_sym st "*" then [ Ast.E_star ]
            else
              let rec go acc =
                let e = parse_or st in
                if accept_sym st "," then go (e :: acc)
                else List.rev (e :: acc)
              in
              go []
          in
          expect_sym st ")";
          Ast.E_call (fname, args)
      | _ -> parse_column_rest st s)
  | Tident s when not (List.mem (String.uppercase_ascii s) keywords) ->
      advance st;
      parse_column_rest st s
  | _ -> fail st "expected expression"

and parse_column_rest st first =
  if accept_sym st "." then
    let col = ident st in
    Ast.E_col (Some first, col)
  else Ast.E_col (None, first)

(* ---------------- SELECT ---------------- *)

let parse_select_body st : Ast.select_ast =
  expect_kw st "SELECT";
  let distinct =
    if accept_kw st "DISTINCT" then true
    else begin
      ignore (accept_kw st "ALL");
      false
    end
  in
  let parse_item () =
    let e = parse_or st in
    let alias =
      if accept_kw st "AS" then Some (ident st)
      else
        match peek st with
        | Tident s
          when not (List.mem (String.uppercase_ascii s) keywords) ->
            advance st;
            Some s
        | _ -> None
    in
    (e, alias)
  in
  let rec items acc =
    let it = parse_item () in
    if accept_sym st "," then items (it :: acc) else List.rev (it :: acc)
  in
  let items = items [] in
  expect_kw st "FROM";
  let parse_from () =
    let t = ident st in
    let alias =
      if accept_kw st "AS" then Some (ident st)
      else
        match peek st with
        | Tident s
          when not (List.mem (String.uppercase_ascii s) keywords) ->
            advance st;
            Some s
        | _ -> None
    in
    (t, alias)
  in
  let rec froms acc =
    let f = parse_from () in
    if accept_sym st "," then froms (f :: acc) else List.rev (f :: acc)
  in
  let from = froms [] in
  let where = if accept_kw st "WHERE" then Some (parse_or st) else None in
  let group_by =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      let parse_gcol () =
        let a = ident st in
        if accept_sym st "." then (Some a, ident st) else (None, a)
      in
      let rec go acc =
        let c = parse_gcol () in
        if accept_sym st "," then go (c :: acc) else List.rev (c :: acc)
      in
      go []
    end
    else []
  in
  let having = if accept_kw st "HAVING" then Some (parse_or st) else None in
  if having <> None && group_by = [] then
    fail st "HAVING requires a GROUP BY clause";
  let order_by =
    if accept_kw st "ORDER" then begin
      expect_kw st "BY";
      let parse_ocol () =
        let a = ident st in
        let col = if accept_sym st "." then (Some a, ident st) else (None, a) in
        let desc =
          if accept_kw st "DESC" then true
          else begin
            ignore (accept_kw st "ASC");
            false
          end
        in
        (col, desc)
      in
      let rec go acc =
        let c = parse_ocol () in
        if accept_sym st "," then go (c :: acc) else List.rev (c :: acc)
      in
      go []
    end
    else []
  in
  { Ast.distinct; items; from; where; group_by; having; order_by }

(* ---------------- DDL / DML ---------------- *)

let parse_type st : Ast.type_ast =
  let base = ident st in
  (* CHARACTER VARYING / DOUBLE PRECISION style two-word types *)
  let base =
    match peek st with
    | Tident s
      when (not (List.mem (String.uppercase_ascii s) keywords))
           && List.mem
                (String.uppercase_ascii base ^ " " ^ String.uppercase_ascii s)
                [ "CHARACTER VARYING"; "DOUBLE PRECISION" ] ->
        advance st;
        base ^ " " ^ s
    | _ -> base
  in
  let arg =
    if accept_sym st "(" then begin
      let n = match peek st with
        | Tint n ->
            advance st;
            n
        | _ -> fail st "expected length"
      in
      expect_sym st ")";
      Some n
    end
    else None
  in
  { Ast.tybase = base; tyarg = arg }

let parse_col_constraints st =
  let rec go acc =
    if accept_kw st "NOT" then begin
      expect_kw st "NULL";
      go (Ast.Cc_not_null :: acc)
    end
    else if accept_kw st "UNIQUE" then go (Ast.Cc_unique :: acc)
    else if accept_kw st "PRIMARY" then begin
      expect_kw st "KEY";
      go (Ast.Cc_primary :: acc)
    end
    else if accept_kw st "CHECK" then begin
      expect_sym st "(";
      let e = parse_or st in
      expect_sym st ")";
      go (Ast.Cc_check e :: acc)
    end
    else if accept_kw st "REFERENCES" then begin
      let t = ident st in
      let cols =
        if accept_sym st "(" then begin
          let l = ident_list st in
          expect_sym st ")";
          l
        end
        else []
      in
      go (Ast.Cc_references (t, cols) :: acc)
    end
    else List.rev acc
  in
  go []

let parse_table_item st : Ast.table_item =
  if accept_kw st "PRIMARY" then begin
    expect_kw st "KEY";
    expect_sym st "(";
    let cols = ident_list st in
    expect_sym st ")";
    Ast.It_primary cols
  end
  else if accept_kw st "UNIQUE" then begin
    expect_sym st "(";
    let cols = ident_list st in
    expect_sym st ")";
    Ast.It_unique cols
  end
  else if accept_kw st "CHECK" then begin
    expect_sym st "(";
    let e = parse_or st in
    expect_sym st ")";
    Ast.It_check e
  end
  else if accept_kw st "FOREIGN" then begin
    expect_kw st "KEY";
    expect_sym st "(";
    let cols = ident_list st in
    expect_sym st ")";
    expect_kw st "REFERENCES";
    let t = ident st in
    let ref_cols =
      if accept_sym st "(" then begin
        let l = ident_list st in
        expect_sym st ")";
        l
      end
      else []
    in
    Ast.It_foreign { cols; ref_table = t; ref_cols }
  end
  else begin
    let name = ident st in
    let ty = parse_type st in
    let constraints = parse_col_constraints st in
    Ast.It_column { name; ty; constraints }
  end

let parse_statement_at st : Ast.statement =
  if accept_kw st "CREATE" then begin
    if accept_kw st "TABLE" then begin
      let name = ident st in
      expect_sym st "(";
      let rec go acc =
        let item = parse_table_item st in
        if accept_sym st "," then go (item :: acc) else List.rev (item :: acc)
      in
      let items = go [] in
      expect_sym st ")";
      Ast.S_create_table (name, items)
    end
    else if accept_kw st "DOMAIN" then begin
      let name = ident st in
      let ty = parse_type st in
      let check =
        if accept_kw st "CHECK" then
          (* the paper writes both CHECK (expr) and bare CHECK expr *)
          if accept_sym st "(" then begin
            let e = parse_or st in
            expect_sym st ")";
            Some e
          end
          else Some (parse_or st)
        else None
      in
      Ast.S_create_domain (name, ty, check)
    end
    else if accept_kw st "VIEW" then begin
      let name = ident st in
      (* optional column list is not supported: views rename via AS *)
      expect_kw st "AS";
      let body = parse_select_body st in
      Ast.S_create_view
        { name; body_sql = Ast.select_to_string body; body }
    end
    else if accept_kw st "INDEX" then begin
      let name = ident st in
      expect_kw st "ON";
      let table = ident st in
      expect_sym st "(";
      let cols = ident_list st in
      expect_sym st ")";
      Ast.S_create_index { name; table; cols }
    end
    else fail st "expected TABLE, DOMAIN, VIEW or INDEX after CREATE"
  end
  else if accept_kw st "INSERT" then begin
    expect_kw st "INTO";
    let name = ident st in
    expect_kw st "VALUES";
    let parse_row () =
      expect_sym st "(";
      let rec go acc =
        let e = parse_or st in
        if accept_sym st "," then go (e :: acc) else List.rev (e :: acc)
      in
      let row = go [] in
      expect_sym st ")";
      row
    in
    let rec rows acc =
      let r = parse_row () in
      if accept_sym st "," then rows (r :: acc) else List.rev (r :: acc)
    in
    Ast.S_insert (name, rows [])
  end
  else if accept_kw st "UPDATE" then begin
    let table = ident st in
    expect_kw st "SET";
    let parse_assign () =
      let c = ident st in
      expect_sym st "=";
      let e = parse_or st in
      (c, e)
    in
    let rec assigns acc =
      let a = parse_assign () in
      if accept_sym st "," then assigns (a :: acc) else List.rev (a :: acc)
    in
    let set = assigns [] in
    let where = if accept_kw st "WHERE" then Some (parse_or st) else None in
    Ast.S_update { table; set; where }
  end
  else if accept_kw st "DELETE" then begin
    expect_kw st "FROM";
    let table = ident st in
    let where = if accept_kw st "WHERE" then Some (parse_or st) else None in
    Ast.S_delete { table; where }
  end
  else if accept_kw st "EXPLAIN" then begin
    let analyze = accept_kw st "ANALYZE" in
    Ast.S_explain { analyze; body = parse_select_body st }
  end
  else if accept_kw st "CHECKPOINT" then Ast.S_checkpoint
  else if accept_kw st "STATUS" then Ast.S_status
  else if accept_kw st "BACKUP" then begin
    match peek st with
    | Tstring dir when dir <> "" ->
        advance st;
        Ast.S_backup dir
    | _ -> fail st "BACKUP needs a non-empty 'directory' string literal"
  end
  else if accept_kw st "PROMOTE" then Ast.S_promote
  else if is_kw st "SELECT" then Ast.S_select (parse_select_body st)
  else fail st "expected a statement"

let of_string src = { toks = Array.of_list (tokenize src); pos = 0 }

let expect_eof st =
  match peek st with
  | Teof -> ()
  | _ -> fail st "trailing tokens after statement"

let parse_statement src =
  let st = of_string src in
  let s = parse_statement_at st in
  ignore (accept_sym st ";");
  expect_eof st;
  s

let parse_script src =
  let st = of_string src in
  let rec go acc =
    match peek st with
    | Teof -> List.rev acc
    | Tsym ";" ->
        advance st;
        go acc
    | _ ->
        let s = parse_statement_at st in
        (match peek st with
        | Tsym ";" | Teof -> ()
        | _ -> fail st "expected ';' between statements");
        go (s :: acc)
  in
  go []

let parse_select src =
  let st = of_string src in
  let s = parse_select_body st in
  ignore (accept_sym st ";");
  expect_eof st;
  s

let parse_expr src =
  let st = of_string src in
  let e = parse_or st in
  expect_eof st;
  e
