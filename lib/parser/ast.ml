type texpr =
  | E_int of int
  | E_float of float
  | E_str of string
  | E_bool of bool
  | E_null
  | E_param of string
  | E_col of string option * string
  | E_star
  | E_call of string * texpr list
  | E_bin of string * texpr * texpr
  | E_neg of texpr
  | E_not of texpr
  | E_is_null of { negated : bool; arg : texpr }
  | E_like of { negated : bool; arg : texpr; pattern : string }
  | E_case of { branches : (texpr * texpr) list; else_ : texpr option }

type type_ast = { tybase : string; tyarg : int option }

type col_constraint =
  | Cc_not_null
  | Cc_unique
  | Cc_primary
  | Cc_check of texpr
  | Cc_references of string * string list

type table_item =
  | It_column of { name : string; ty : type_ast; constraints : col_constraint list }
  | It_primary of string list
  | It_unique of string list
  | It_check of texpr
  | It_foreign of { cols : string list; ref_table : string; ref_cols : string list }

type select_ast = {
  distinct : bool;
  items : (texpr * string option) list;
  from : (string * string option) list;
  where : texpr option;
  group_by : (string option * string) list;
  having : texpr option;
  order_by : ((string option * string) * bool) list;
}

type statement =
  | S_create_table of string * table_item list
  | S_create_domain of string * type_ast * texpr option
  | S_create_view of { name : string; body_sql : string; body : select_ast }
  | S_create_index of { name : string; table : string; cols : string list }
  | S_insert of string * texpr list list
  | S_update of { table : string; set : (string * texpr) list; where : texpr option }
  | S_delete of { table : string; where : texpr option }
  | S_select of select_ast
  | S_explain of { analyze : bool; body : select_ast }
  | S_checkpoint
  | S_status
  | S_backup of string
  | S_promote

(* a string literal the lexer reads back verbatim: quotes double *)
let string_literal s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '\'';
  String.iter
    (fun c ->
      if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '\'';
  Buffer.contents buf

(* a float literal the lexer reads back as the same float: shortest
   exact decimal, forced to carry a '.' or exponent so it cannot lex as
   an integer *)
let float_literal f =
  let exact s = float_of_string_opt s = Some f in
  let s =
    let short = Printf.sprintf "%.12g" f in
    if exact short then short else Printf.sprintf "%.17g" f
  in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
  else s ^ ".0"

let rec pp_texpr ppf = function
  | E_int n -> Format.pp_print_int ppf n
  | E_float f -> Format.pp_print_string ppf (float_literal f)
  | E_str s -> Format.pp_print_string ppf (string_literal s)
  | E_bool b -> Format.pp_print_bool ppf b
  | E_null -> Format.pp_print_string ppf "NULL"
  | E_param p -> Format.fprintf ppf ":%s" p
  | E_col (None, c) -> Format.pp_print_string ppf c
  | E_col (Some q, c) -> Format.fprintf ppf "%s.%s" q c
  | E_star -> Format.pp_print_string ppf "*"
  | E_call ("COUNT_DISTINCT", [ arg ]) ->
      (* the parser's internal name for COUNT(DISTINCT e); print the
         surface syntax so the text re-parses *)
      Format.fprintf ppf "COUNT(DISTINCT %a)" pp_texpr arg
  | E_call (f, args) ->
      Format.fprintf ppf "%s(%a)" f
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_texpr)
        args
  | E_bin (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp_texpr a op pp_texpr b
  | E_neg a -> Format.fprintf ppf "(-%a)" pp_texpr a
  | E_not a -> Format.fprintf ppf "(NOT %a)" pp_texpr a
  | E_is_null { negated; arg } ->
      Format.fprintf ppf "%a IS %sNULL" pp_texpr arg
        (if negated then "NOT " else "")
  | E_like { negated; arg; pattern } ->
      Format.fprintf ppf "%a %sLIKE %s" pp_texpr arg
        (if negated then "NOT " else "")
        (string_literal pattern)
  | E_case { branches; else_ } ->
      Format.fprintf ppf "CASE";
      List.iter
        (fun (c, v) ->
          Format.fprintf ppf " WHEN %a THEN %a" pp_texpr c pp_texpr v)
        branches;
      (match else_ with
      | None -> ()
      | Some e -> Format.fprintf ppf " ELSE %a" pp_texpr e);
      Format.fprintf ppf " END"

let texpr_to_string e = Format.asprintf "%a" pp_texpr e

let select_to_string (s : select_ast) =
  let items =
    String.concat ", "
      (List.map
         (fun (e, alias) ->
           texpr_to_string e
           ^ match alias with Some a -> " AS " ^ a | None -> "")
         s.items)
  in
  let from =
    String.concat ", "
      (List.map
         (fun (t, alias) ->
           t ^ match alias with Some a -> " " ^ a | None -> "")
         s.from)
  in
  let where =
    match s.where with
    | None -> ""
    | Some e -> " WHERE " ^ texpr_to_string e
  in
  let group =
    match s.group_by with
    | [] -> ""
    | cols ->
        " GROUP BY "
        ^ String.concat ", "
            (List.map
               (fun (q, c) ->
                 match q with Some q -> q ^ "." ^ c | None -> c)
               cols)
  in
  let having =
    match s.having with
    | None -> ""
    | Some e -> " HAVING " ^ texpr_to_string e
  in
  let order =
    match s.order_by with
    | [] -> ""
    | cols ->
        " ORDER BY "
        ^ String.concat ", "
            (List.map
               (fun ((q, c), desc) ->
                 (match q with Some q -> q ^ "." ^ c | None -> c)
                 ^ if desc then " DESC" else "")
               cols)
  in
  Printf.sprintf "SELECT %s%s FROM %s%s%s%s%s"
    (if s.distinct then "DISTINCT " else "")
    items from where group having order

(* ------------------------------------------------------------------ *)
(* Statement → SQL.  The output re-parses to the same tree (modulo the
   desugarings the parser applies anyway), which is what lets the WAL
   store statements as SQL text and replay them through the front door. *)

let type_ast_to_string (t : type_ast) =
  match t.tyarg with
  | None -> t.tybase
  | Some n -> Printf.sprintf "%s(%d)" t.tybase n

let col_constraint_to_string = function
  | Cc_not_null -> "NOT NULL"
  | Cc_unique -> "UNIQUE"
  | Cc_primary -> "PRIMARY KEY"
  | Cc_check e -> Printf.sprintf "CHECK (%s)" (texpr_to_string e)
  | Cc_references (t, cols) ->
      Printf.sprintf "REFERENCES %s%s" t
        (match cols with
        | [] -> ""
        | cols -> Printf.sprintf " (%s)" (String.concat ", " cols))

let table_item_to_string = function
  | It_column { name; ty; constraints } ->
      String.concat " "
        (name :: type_ast_to_string ty
        :: List.map col_constraint_to_string constraints)
  | It_primary cols ->
      Printf.sprintf "PRIMARY KEY (%s)" (String.concat ", " cols)
  | It_unique cols -> Printf.sprintf "UNIQUE (%s)" (String.concat ", " cols)
  | It_check e -> Printf.sprintf "CHECK (%s)" (texpr_to_string e)
  | It_foreign { cols; ref_table; ref_cols } ->
      Printf.sprintf "FOREIGN KEY (%s) REFERENCES %s%s"
        (String.concat ", " cols)
        ref_table
        (match ref_cols with
        | [] -> ""
        | cols -> Printf.sprintf " (%s)" (String.concat ", " cols))

let statement_to_string = function
  | S_create_table (name, items) ->
      Printf.sprintf "CREATE TABLE %s (%s)" name
        (String.concat ", " (List.map table_item_to_string items))
  | S_create_domain (name, ty, check) ->
      Printf.sprintf "CREATE DOMAIN %s %s%s" name (type_ast_to_string ty)
        (match check with
        | None -> ""
        | Some e -> Printf.sprintf " CHECK (%s)" (texpr_to_string e))
  | S_create_view { name; body_sql; body = _ } ->
      Printf.sprintf "CREATE VIEW %s AS %s" name body_sql
  | S_create_index { name; table; cols } ->
      Printf.sprintf "CREATE INDEX %s ON %s (%s)" name table
        (String.concat ", " cols)
  | S_insert (name, rows) ->
      Printf.sprintf "INSERT INTO %s VALUES %s" name
        (String.concat ", "
           (List.map
              (fun row ->
                Printf.sprintf "(%s)"
                  (String.concat ", " (List.map texpr_to_string row)))
              rows))
  | S_update { table; set; where } ->
      Printf.sprintf "UPDATE %s SET %s%s" table
        (String.concat ", "
           (List.map
              (fun (c, e) -> Printf.sprintf "%s = %s" c (texpr_to_string e))
              set))
        (match where with
        | None -> ""
        | Some e -> " WHERE " ^ texpr_to_string e)
  | S_delete { table; where } ->
      Printf.sprintf "DELETE FROM %s%s" table
        (match where with
        | None -> ""
        | Some e -> " WHERE " ^ texpr_to_string e)
  | S_select s -> select_to_string s
  | S_explain { analyze; body } ->
      Printf.sprintf "EXPLAIN %s%s"
        (if analyze then "ANALYZE " else "")
        (select_to_string body)
  | S_checkpoint -> "CHECKPOINT"
  | S_status -> "STATUS"
  | S_backup dir -> Printf.sprintf "BACKUP %s" (string_literal dir)
  | S_promote -> "PROMOTE"
