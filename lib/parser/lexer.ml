type token =
  | Tident of string
  | Tint of int
  | Tfloat of float
  | Tstring of string
  | Tparam of string
  | Tsym of string
  | Teof

exception Lex_error of string

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let read_while p =
    let start = !pos in
    while !pos < n && p src.[!pos] do
      advance ()
    done;
    String.sub src start (!pos - start)
  in
  let rec skip_ws_and_comments () =
    (match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws_and_comments ()
    | Some '-' when !pos + 1 < n && src.[!pos + 1] = '-' ->
        while !pos < n && src.[!pos] <> '\n' do
          advance ()
        done;
        skip_ws_and_comments ()
    | _ -> ())
  in
  let read_string () =
    advance () (* opening quote *);
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> raise (Lex_error "unterminated string literal")
      | Some '\'' ->
          advance ();
          (* '' escapes a quote *)
          if peek () = Some '\'' then begin
            Buffer.add_char buf '\'';
            advance ();
            go ()
          end
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let read_number () =
    let whole = read_while is_digit in
    let frac =
      if peek () = Some '.' && !pos + 1 < n && is_digit src.[!pos + 1] then begin
        advance ();
        Some (read_while is_digit)
      end
      else None
    in
    (* exponent: [eE][+-]?digits, only when digits actually follow — so
       [1 elephant] still lexes as a number and an identifier *)
    let expo =
      match peek () with
      | Some ('e' | 'E')
        when (!pos + 1 < n && is_digit src.[!pos + 1])
             || !pos + 2 < n
                && (src.[!pos + 1] = '+' || src.[!pos + 1] = '-')
                && is_digit src.[!pos + 2] ->
          advance ();
          let sign =
            match peek () with
            | Some (('+' | '-') as c) ->
                advance ();
                String.make 1 c
            | _ -> ""
          in
          Some (sign ^ read_while is_digit)
      | _ -> None
    in
    match (frac, expo) with
    | None, None -> Tint (int_of_string whole)
    | _ ->
        let frac = match frac with Some f -> "." ^ f | None -> "" in
        let expo = match expo with Some e -> "e" ^ e | None -> "" in
        Tfloat (float_of_string (whole ^ frac ^ expo))
  in
  let rec loop () =
    skip_ws_and_comments ();
    match peek () with
    | None -> ()
    | Some c when is_ident_start c ->
        emit (Tident (read_while is_ident_char));
        loop ()
    | Some c when is_digit c ->
        emit (read_number ());
        loop ()
    | Some '\'' ->
        emit (Tstring (read_string ()));
        loop ()
    | Some '"' ->
        (* delimited identifier *)
        advance ();
        let ident = read_while (fun c -> c <> '"') in
        if peek () <> Some '"' then raise (Lex_error "unterminated identifier");
        advance ();
        emit (Tident ident);
        loop ()
    | Some ':' ->
        advance ();
        let name = read_while is_ident_char in
        if name = "" then raise (Lex_error "expected parameter name after ':'");
        emit (Tparam name);
        loop ()
    | Some '<' ->
        advance ();
        (match peek () with
        | Some '=' ->
            advance ();
            emit (Tsym "<=")
        | Some '>' ->
            advance ();
            emit (Tsym "<>")
        | _ -> emit (Tsym "<"));
        loop ()
    | Some '>' ->
        advance ();
        (match peek () with
        | Some '=' ->
            advance ();
            emit (Tsym ">=")
        | _ -> emit (Tsym ">"));
        loop ()
    | Some '!' ->
        advance ();
        if peek () = Some '=' then begin
          advance ();
          emit (Tsym "<>")
        end
        else raise (Lex_error "unexpected '!'");
        loop ()
    | Some (('(' | ')' | ',' | '.' | ';' | '=' | '+' | '-' | '*' | '/') as c) ->
        advance ();
        emit (Tsym (String.make 1 c));
        loop ()
    | Some c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c))
  in
  loop ();
  List.rev (Teof :: !tokens)

let token_to_string = function
  | Tident s -> s
  | Tint n -> string_of_int n
  | Tfloat f -> string_of_float f
  | Tstring s -> "'" ^ s ^ "'"
  | Tparam p -> ":" ^ p
  | Tsym s -> s
  | Teof -> "<eof>"
