(** Recursive-descent parser for the SQL subset.

    Supported statements: CREATE TABLE (with column/table constraints),
    CREATE DOMAIN (with CHECK), CREATE VIEW, INSERT ... VALUES,
    UPDATE, DELETE, CHECKPOINT,
    SELECT [ALL|DISTINCT] ... FROM ... [WHERE ...] [GROUP BY ...],
    and EXPLAIN SELECT.  Keywords are case-insensitive. *)

exception Parse_error of string

val parse_statement : string -> Ast.statement
val parse_script : string -> Ast.statement list
(** Statements separated by [;]; [--] line comments allowed. *)

val parse_select : string -> Ast.select_ast
val parse_expr : string -> Ast.texpr
