(** Crash-safe database persistence.

    A database is saved as a single [snapshot.eagerdb] file inside [dir]:
    a version header, the regenerated DDL (re-parsed on load, so the
    persisted schema is itself a test of the SQL round-trip), one section
    of CSV rows per base table, an [\[end\]] sentinel, and a trailing MD5
    checksum line covering everything above it.

    Durability protocol: the snapshot is written to a temp file, fsynced,
    and atomically renamed over the previous one.  A crash — or an
    injected fault at the [persist.write] / [persist.rename] points — at
    any instant leaves either the complete previous snapshot or the
    complete new one; [load] verifies the checksum and rejects torn or
    corrupted files with a typed error instead of half-loading.

    CSV encoding: fields separated by commas; strings double-quoted with
    [""] escaping; NULL is the bare token [NULL]; booleans are
    [TRUE]/[FALSE].  Rows are loaded back through the raw heap (the dump
    is trusted; constraints were enforced when the data was first
    inserted, and re-checking FKs would impose a table ordering).

    Directories written by older builds (schema.sql + one CSV per table)
    are still readable. *)

open Eager_storage
open Eager_robust

val save : ?wal_lsn:int -> Database.t -> dir:string -> (unit, Err.t) result
(** Creates [dir] if needed and atomically replaces its snapshot.  On
    [Error] the previous snapshot, if any, is intact and loadable.
    [wal_lsn] stamps the snapshot with the write-ahead-log position it
    reflects (a [\[wal-lsn N\]] line under the magic header, covered by
    the checksum); recovery replays only log records beyond it.  When
    omitted or [0] the line is not written and the snapshot has the
    same shape as before WAL support existed. *)

val load :
  ?storage:Database.storage_config ->
  dir:string ->
  unit ->
  (Database.t, Err.t) result
(** Returns a fully loaded database or a typed [Error] — never a
    partially populated instance. *)

val load_with_lsn :
  ?storage:Database.storage_config ->
  dir:string ->
  unit ->
  (Database.t * int, Err.t) result
(** {!load}, also returning the snapshot's WAL position ([0] for
    snapshots written without one, including legacy directories). *)

val ddl_of_database : Database.t -> string
(** The DDL text embedded in the snapshot, exposed for tests. *)
