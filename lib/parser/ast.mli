(** Parse trees for the SQL subset (unresolved names). *)

type texpr =
  | E_int of int
  | E_float of float
  | E_str of string
  | E_bool of bool
  | E_null
  | E_param of string  (** host variable [:name] *)
  | E_col of string option * string  (** optional qualifier *)
  | E_star  (** only valid as the argument of COUNT *)
  | E_call of string * texpr list  (** function call, e.g. SUM(x) *)
  | E_bin of string * texpr * texpr  (** +,-,*,/,=,<>,<,<=,>,>=,AND,OR *)
  | E_neg of texpr
  | E_not of texpr
  | E_is_null of { negated : bool; arg : texpr }
  | E_like of { negated : bool; arg : texpr; pattern : string }
      (** IN and BETWEEN are desugared by the parser into [E_bin] trees; LIKE
          needs its own node because pattern matching is not expressible in
          the comparison algebra. *)
  | E_case of { branches : (texpr * texpr) list; else_ : texpr option }

type type_ast = { tybase : string; tyarg : int option }  (** e.g. VARCHAR(30) *)

type col_constraint =
  | Cc_not_null
  | Cc_unique
  | Cc_primary
  | Cc_check of texpr
  | Cc_references of string * string list

type table_item =
  | It_column of { name : string; ty : type_ast; constraints : col_constraint list }
  | It_primary of string list
  | It_unique of string list
  | It_check of texpr
  | It_foreign of { cols : string list; ref_table : string; ref_cols : string list }

type select_ast = {
  distinct : bool;
  items : (texpr * string option) list;  (** expression, optional alias *)
  from : (string * string option) list;  (** table/view name, optional alias *)
  where : texpr option;
  group_by : (string option * string) list;
  having : texpr option;
      (** may reference grouping columns and aggregate aliases, or repeat an
          aggregate expression from the SELECT list *)
  order_by : ((string option * string) * bool) list;
      (** output-column references; [true] means DESC *)
}

type statement =
  | S_create_table of string * table_item list
  | S_create_domain of string * type_ast * texpr option
  | S_create_view of { name : string; body_sql : string; body : select_ast }
  | S_create_index of { name : string; table : string; cols : string list }
  | S_insert of string * texpr list list
  | S_update of { table : string; set : (string * texpr) list; where : texpr option }
  | S_delete of { table : string; where : texpr option }
  | S_select of select_ast
  | S_explain of { analyze : bool; body : select_ast }
  | S_checkpoint
      (** flush a durable session: snapshot the database and truncate its
          write-ahead log (rejected outside a WAL session) *)
  | S_status
      (** server-session telemetry report; outside a server the binder
          rejects it *)
  | S_backup of string
      (** [BACKUP 'dir'] — online hot backup: write a checksummed,
          LSN-stamped snapshot plus the WAL tail into a fresh directory
          (rejected outside a WAL session) *)
  | S_promote
      (** promote a standby to a read-write primary (rejected outside a
          server session) *)

val pp_texpr : Format.formatter -> texpr -> unit
val texpr_to_string : texpr -> string
val select_to_string : select_ast -> string

val statement_to_string : statement -> string
(** SQL text that re-parses to the same tree — string literals quote by
    doubling, float literals always carry a ['.'] or exponent.  This is
    the encoding the write-ahead log stores and replays. *)
