open Eager_schema
open Eager_expr
open Eager_catalog
open Eager_storage
open Eager_fd

type verdict = Yes | No of string

type trace = {
  clauses_kept : int;
  clauses_dropped : int;
  disjuncts : int;
  closures : (string list * bool * bool) list;
}

let verdict_to_string = function
  | Yes -> "YES"
  | No reason -> "NO (" ^ reason ^ ")"

let source_constraints db (s : Canonical.source) =
  match Catalog.find_table (Database.catalog db) s.Canonical.table with
  | None -> []
  | Some td -> Catalog.table_checks (Database.catalog db) ~rel:s.Canonical.rel td

(* tables the test cannot resolve — verification is impossible, which per
   the soundness contract means "do not rewrite", never a crash *)
let unknown_tables db (q : Canonical.t) =
  List.filter_map
    (fun (s : Canonical.source) ->
      match Catalog.find_table (Database.catalog db) s.Canonical.table with
      | None -> Some s.Canonical.table
      | Some _ -> None)
    (q.Canonical.r1 @ q.Canonical.r2)

let source_key_fds db (s : Canonical.source) =
  match Catalog.find_table (Database.catalog db) s.Canonical.table with
  | None -> []
  | Some td -> From_catalog.key_fds ~rel:s.Canonical.rel td

let source_key_sets db (s : Canonical.source) =
  match Catalog.find_table (Database.catalog db) s.Canonical.table with
  | None -> []
  | Some td -> From_catalog.key_sets ~rel:s.Canonical.rel td

let test_traced ?(strict = false) ?(dnf_cap = 64) db (q : Canonical.t) =
  let empty_trace =
    { clauses_kept = 0; clauses_dropped = 0; disjuncts = 0; closures = [] }
  in
  match unknown_tables db q with
  | t :: _ ->
      (* cannot verify the FD conditions → refuse the rewrite *)
      ( No (Printf.sprintf "unknown table %s: cannot verify, not rewriting" t),
        empty_trace )
  | [] ->
  (* T1 and T2: single-table semantic constraints of both sides *)
  let t1 = List.concat_map (source_constraints db) q.Canonical.r1 in
  let t2 = List.concat_map (source_constraints db) q.Canonical.r2 in
  (* Step 1: CNF of C1 ∧ C0 ∧ C2 ∧ T1 ∧ T2 *)
  let c =
    Expr.conj (q.Canonical.c1 @ q.Canonical.c0 @ q.Canonical.c2 @ t1 @ t2)
  in
  let clauses = Expr.cnf c in
  (* Step 2: drop clauses containing a non-equality atom *)
  let kept, dropped =
    List.partition (fun clause -> Mine.all_equality_atoms clause) clauses
  in
  let base_trace =
    {
      empty_trace with
      clauses_kept = List.length kept;
      clauses_dropped = List.length dropped;
    }
  in
  (* Step 3: DNF *)
  let disjuncts =
    if kept = [] then if strict then None else Some [ [] ]
    else
      match Expr.dnf_of_cnf ~cap:dnf_cap kept with
      | None -> None
      | Some [] ->
          (* the retained condition is unsatisfiable; conservatively say NO
             rather than reasoning from an inconsistent premise *)
          Some [ [] ]
      | Some ds -> Some ds
  in
  match disjuncts with
  | None ->
      if kept = [] then
        (No "no equality conditions remain (strict mode)", base_trace)
      else (No "DNF blow-up beyond cap", base_trace)
  | Some ds ->
      let key_fds =
        List.concat_map (source_key_fds db) (q.Canonical.r1 @ q.Canonical.r2)
      in
      let ga = Colref.set_of_list (q.Canonical.ga1 @ q.Canonical.ga2) in
      let ga1_plus = Colref.set_of_list (Canonical.ga1_plus q) in
      let r2_keys_per_table =
        List.map (fun s -> source_key_sets db s) q.Canonical.r2
      in
      (* Step 4, one iteration per disjunct *)
      let rec go acc_closures = function
        | [] ->
            ( Yes,
              {
                base_trace with
                disjuncts = List.length ds;
                closures = List.rev acc_closures;
              } )
        | atoms :: rest ->
            let mined = Mine.of_atoms atoms in
            let closure =
              Closure.compute ~start:ga ~constants:mined.Mine.constants
                ~equalities:mined.Mine.equalities ~fds:key_fds
            in
            (* (d) every R2-side table must have a candidate key in S *)
            let r2_ok =
              List.for_all
                (fun keys ->
                  keys <> []
                  && List.exists (fun k -> Colref.Set.subset k closure) keys)
                r2_keys_per_table
            in
            (* (h) GA1+ must be in S *)
            let ga1_ok = Colref.Set.subset ga1_plus closure in
            let entry =
              ( List.map Colref.to_string (Colref.Set.elements closure),
                r2_ok,
                ga1_ok )
            in
            if not r2_ok then
              ( No "no candidate key of the R2 side is implied (FD2)",
                {
                  base_trace with
                  disjuncts = List.length ds;
                  closures = List.rev (entry :: acc_closures);
                } )
            else if not ga1_ok then
              ( No "GA1+ is not functionally determined by (GA1,GA2) (FD1)",
                {
                  base_trace with
                  disjuncts = List.length ds;
                  closures = List.rev (entry :: acc_closures);
                } )
            else go (entry :: acc_closures) rest
      in
      go [] ds

let test ?strict ?dnf_cap db q = fst (test_traced ?strict ?dnf_cap db q)
