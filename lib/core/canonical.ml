open Eager_schema
open Eager_expr
open Eager_catalog
open Eager_storage
open Eager_algebra

type source = { table : string; rel : string }

type t = {
  r1 : source list;
  r2 : source list;
  schema1 : Schema.t;
  schema2 : Schema.t;
  c1 : Expr.t list;
  c0 : Expr.t list;
  c2 : Expr.t list;
  ga1 : Colref.t list;
  ga2 : Colref.t list;
  sga1 : Colref.t list;
  sga2 : Colref.t list;
  aggs : Agg.t list;
  distinct : bool;
  having : Expr.t option;
}

type input = {
  sources : source list;
  where : Expr.t;
  group_by : Colref.t list;
  select_cols : Colref.t list;
  select_aggs : Agg.t list;
  select_distinct : bool;
  select_having : Expr.t option;
  r1_hint : string list;
}

let source_schema db (s : source) =
  match Catalog.find_table (Database.catalog db) s.table with
  | None -> Error (Printf.sprintf "unknown table %s" s.table)
  | Some td -> Ok (Table_def.schema ~rel:s.rel td)

let concat_schemas = function
  | [] -> Schema.make []
  | s :: rest -> List.fold_left Schema.concat s rest

let of_input db (q : input) : (t, string) result =
  let ( let* ) = Result.bind in
  (* resolve sources *)
  let* resolved =
    List.fold_left
      (fun acc s ->
        let* acc = acc in
        let* sch = source_schema db s in
        Ok ((s, sch) :: acc))
      (Ok []) q.sources
    |> Result.map List.rev
  in
  let rels = List.map (fun (s, _) -> s.rel) resolved in
  let* () =
    if List.length (List.sort_uniq String.compare rels) <> List.length rels
    then Error "duplicate range variables in FROM clause"
    else Ok ()
  in
  (* aggregation columns AA *)
  let aa =
    List.fold_left
      (fun acc a -> Colref.Set.union acc (Agg.columns a))
      Colref.Set.empty q.select_aggs
  in
  (* partition the sources: tables holding aggregation columns (or hinted)
     form R1, the rest form R2 *)
  let holds_agg (s, sch) =
    List.mem s.rel q.r1_hint
    || Colref.Set.exists (fun c -> Schema.mem sch c) aa
  in
  let r1_resolved, r2_resolved = List.partition holds_agg resolved in
  let* () =
    if r1_resolved = [] then
      Error
        "cannot partition: no table carries an aggregation column \
         (use r1_hint to designate the R1 side)"
    else if r2_resolved = [] then
      Error "cannot partition: every table carries an aggregation column"
    else Ok ()
  in
  let schema1 = concat_schemas (List.map snd r1_resolved) in
  let schema2 = concat_schemas (List.map snd r2_resolved) in
  let side1 = Schema.colset schema1 and side2 = Schema.colset schema2 in
  (* aggregation columns must all live on the R1 side *)
  let* () =
    if Colref.Set.subset aa side1 then Ok ()
    else
      Error
        (Printf.sprintf "aggregation column %s is not on the R1 side"
           (Colref.to_string (Colref.Set.choose (Colref.Set.diff aa side1))))
  in
  (* split WHERE *)
  let* c1, c0, c2 =
    match Expr.split_conjuncts ~left:side1 ~right:side2 q.where with
    | parts -> Ok parts
    | exception Failure msg -> Error msg
  in
  (* grouping columns by side *)
  let* ga1, ga2 =
    List.fold_left
      (fun acc g ->
        let* ga1, ga2 = acc in
        if Colref.Set.mem g side1 then Ok (g :: ga1, ga2)
        else if Colref.Set.mem g side2 then Ok (ga1, g :: ga2)
        else Error (Printf.sprintf "unknown grouping column %s" (Colref.to_string g)))
      (Ok ([], [])) q.group_by
  in
  let ga1 = List.rev ga1 and ga2 = List.rev ga2 in
  let* () =
    if ga1 = [] && ga2 = [] then
      Error "the query has no grouping columns (not in the considered class)"
    else Ok ()
  in
  (* selection columns must be a subset of the grouping columns, per SQL2 *)
  let* sga1, sga2 =
    List.fold_left
      (fun acc c ->
        let* sga1, sga2 = acc in
        if List.exists (Colref.equal c) ga1 then Ok (c :: sga1, sga2)
        else if List.exists (Colref.equal c) ga2 then Ok (sga1, c :: sga2)
        else
          Error
            (Printf.sprintf "selection column %s is not a grouping column"
               (Colref.to_string c)))
      (Ok ([], [])) q.select_cols
  in
  let sga1 = List.rev sga1 and sga2 = List.rev sga2 in
  (* aggregate output names must not clash with source columns *)
  let* () =
    List.fold_left
      (fun acc (a : Agg.t) ->
        let* () = acc in
        if Schema.mem schema1 a.Agg.name || Schema.mem schema2 a.Agg.name then
          Error
            (Printf.sprintf "aggregate output name %s clashes with a column"
               (Colref.to_string a.Agg.name))
        else Ok ())
      (Ok ()) q.select_aggs
  in
  (* HAVING may reference grouping columns and aggregate output names *)
  let* () =
    match q.select_having with
    | None -> Ok ()
    | Some h ->
        let allowed =
          Colref.Set.union
            (Colref.set_of_list (ga1 @ ga2))
            (Colref.set_of_list
               (List.map (fun (a : Agg.t) -> a.Agg.name) q.select_aggs))
        in
        let bad = Colref.Set.diff (Expr.columns h) allowed in
        if Colref.Set.is_empty bad then Ok ()
        else
          Error
            (Printf.sprintf
               "HAVING references %s, which is neither a grouping column \
                nor an aggregate output"
               (Colref.to_string (Colref.Set.choose bad)))
  in
  Ok
    {
      r1 = List.map fst r1_resolved;
      r2 = List.map fst r2_resolved;
      schema1;
      schema2;
      c1;
      c0;
      c2;
      ga1;
      ga2;
      sga1;
      sga2;
      aggs = q.select_aggs;
      distinct = q.select_distinct;
      having = q.select_having;
    }

let of_input_exn db q =
  match of_input db q with
  | Ok t -> t
  | Error msg -> Eager_robust.Err.failf Eager_robust.Err.Bind "%s" msg

let add_predicates t ~side1 ~side2 =
  let check cols_ok e =
    if not (Colref.Set.subset (Expr.columns e) cols_ok) then
      Eager_robust.Err.failf Eager_robust.Err.Planner
        "add_predicates: %s crosses sides" (Expr.to_string e)
  in
  List.iter (check (Schema.colset t.schema1)) side1;
  List.iter (check (Schema.colset t.schema2)) side2;
  { t with c1 = t.c1 @ side1; c2 = t.c2 @ side2 }

let dedup_keep_order cols =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun c ->
      if Hashtbl.mem seen c then false
      else begin
        Hashtbl.add seen c ();
        true
      end)
    cols

let c0_cols t =
  List.fold_left
    (fun acc e -> Colref.Set.union acc (Expr.columns e))
    Colref.Set.empty t.c0

let ga1_plus t =
  let side1 = Schema.colset t.schema1 in
  let joins = Colref.Set.inter (c0_cols t) side1 in
  dedup_keep_order (t.ga1 @ Colref.Set.elements joins)

let ga2_plus t =
  let side2 = Schema.colset t.schema2 in
  let joins = Colref.Set.inter (c0_cols t) side2 in
  dedup_keep_order (t.ga2 @ Colref.Set.elements joins)

let agg_names t = List.map (fun (a : Agg.t) -> a.Agg.name) t.aggs
let side1_cols t = Schema.colset t.schema1
let side2_cols t = Schema.colset t.schema2

let pp ppf t =
  let cols l = String.concat ", " (List.map Colref.to_string l) in
  let pred l =
    match l with
    | [] -> "TRUE"
    | _ -> String.concat " AND " (List.map Expr.to_string l)
  in
  let items =
    List.map Colref.to_string (t.sga1 @ t.sga2)
    @ List.map Agg.to_string t.aggs
  in
  Format.fprintf ppf
    "@[<v>SELECT %s%s@,FROM %s@,WHERE %s@,GROUP BY %s%s@,\
     -- R1 = {%s}  R2 = {%s}@,-- C1: %s@,-- C0: %s@,-- C2: %s@,\
     -- GA1+ = [%s]  GA2+ = [%s]@]"
    (if t.distinct then "DISTINCT " else "")
    (String.concat ", " items)
    (String.concat ", "
       (List.map
          (fun s ->
            if s.table = s.rel then s.table else s.table ^ " " ^ s.rel)
          (t.r1 @ t.r2)))
    (pred (t.c1 @ t.c0 @ t.c2))
    (cols (t.ga1 @ t.ga2))
    (match t.having with
    | None -> ""
    | Some h -> " HAVING " ^ Expr.to_string h)
    (String.concat "," (List.map (fun s -> s.rel) t.r1))
    (String.concat "," (List.map (fun s -> s.rel) t.r2))
    (pred t.c1) (pred t.c0) (pred t.c2)
    (cols (ga1_plus t))
    (cols (ga2_plus t))
