(** Building the two competing plans of the paper.

    [e1] is the standard plan — join everything, then group (Plan 1 of
    Figure 1).  [e2] is the transformed plan — group the R1 side on [GA1+]
    first, then join (Plan 2 of Figure 1).  Both push the single-side
    selections [C1]/[C2] below the join, as the paper's own expressions do
    (E1 is evaluated as [σC0 (σC1 R1 × σC2 R2)], which is literally
    [σ(C1∧C0∧C2)(R1×R2)]). *)

open Eager_storage
open Eager_algebra

val join_tree :
  Database.t -> Canonical.source list -> Eager_expr.Expr.t list -> Plan.t
(** Greedy left-deep join tree over arbitrary sources: per-source conjuncts
    become selections on the scans, cross-source conjuncts become join
    predicates as soon as both ends are in scope, leftovers end up in a
    final selection.  Raises [Failure] on an empty source list. *)

val side1 : Database.t -> Canonical.t -> Plan.t
(** [σC1](R1-side), built as a greedy join tree over the side's sources
    using the applicable conjuncts of C1. *)

val side2 : Database.t -> Canonical.t -> Plan.t

val e1 : Database.t -> Canonical.t -> Plan.t
val e2 : Database.t -> Canonical.t -> Plan.t

val e1_with : Canonical.t -> side1:Plan.t -> side2:Plan.t -> Plan.t
(** E1 over externally-built side plans (e.g. [Eager_opt.Join_order]'s
    DP-enumerated trees).  The side plans must compute [σC1(R1)] /
    [σC2(R2)] with the side's schemas. *)

val e2_with : Canonical.t -> side1:Plan.t -> side2:Plan.t -> Plan.t

val eager_partial_with :
  Canonical.t -> cap:int -> side1:Plan.t -> side2:Plan.t ->
  (Plan.t, string) result
(** The eager {i partial} pre-aggregation plan: a bounded
    [Partial_group] on [GA1+] below the join (flushing at [cap] live
    groups) and a finalizing [Group] on [GA1 ∪ GA2] above it, with the
    aggregates split by {!Eager_algebra.Agg.decompose}.  Sound with no
    FD check for any decomposable aggregate list — [GA1+] covers all
    R1-side join columns, so a partial group's rows join identically and
    re-combining partials reproduces E1's duplication.  [Error] when an
    aggregate is not decomposable (COUNT(DISTINCT _)). *)

val e2_r1_prime : Database.t -> Canonical.t -> Plan.t
(** The sub-plan [R1' = F[AA] G[GA1+] σC1 R1] of E2 — exposed because the
    reverse transformation of Section 8 materialises exactly this plan as
    an aggregated view. *)
