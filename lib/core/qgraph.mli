(** The general join-graph IR behind N-way eager-aggregation placement.

    {!Canonical.t} fixes one two-sided partition of the FROM list — the
    paper's R1/R2 — chosen by where the aggregation columns live.  For
    N-way join trees that partition is just {i one} of several legal
    "cuts": any subset [P] of the relations that contains every
    aggregation-column relation can play the R1 role, with the grouping
    pushed below the joins to the rest.  [Qgraph.t] keeps the query in
    unpartitioned form — relations, predicate conjuncts, grouping and
    aggregation — and materialises a {!Canonical.t} view per candidate
    cut on demand, so the whole existing TestFD / plan-building machinery
    applies cut by cut.

    When the query has exactly two relations there is a single candidate
    cut and {!canonical_at} recovers the classic R1/R2 form — the
    compatibility path every pre-existing caller exercises. *)

open Eager_schema
open Eager_expr
open Eager_storage

type t = private {
  input : Canonical.input;  (** the original, unpartitioned query *)
  rels : string list;  (** range variables in FROM order *)
  schemas : (string * Schema.t) list;  (** per-relation resolved schema *)
  conjuncts : Expr.t list;  (** WHERE split into conjuncts *)
  agg_rels : string list;
      (** relations that must sit below every cut: those carrying an
          aggregation column, plus any [r1_hint] designations *)
}

val of_input : Database.t -> Canonical.input -> (t, string) result
(** Resolve sources against the catalog and collect the aggregation
    relations.  Unlike {!Canonical.of_input} this does not partition and
    so accepts queries whose aggregation columns span every relation
    (they merely admit no cut). *)

val input_of_canonical : Canonical.t -> Canonical.input
(** Reconstruct the unpartitioned input from an already-canonicalised
    query: sources are [r1 @ r2], the WHERE clause is [C1 ∧ C0 ∧ C2],
    and the hint pins [r1]'s relations below the cut.  Composing with
    {!of_input} lifts a {!Canonical.t} into the graph form. *)

val of_canonical : Database.t -> Canonical.t -> (t, string) result
(** [of_input db (input_of_canonical q)]. *)

val n_relations : t -> int

val default_cut : t -> string list
(** The cut {!Canonical.of_input}'s own partition would pick: exactly
    the aggregation relations (in FROM order). *)

val cuts : ?max_cuts:int -> t -> string list list
(** All candidate cuts, deterministically ordered (small cuts first,
    FROM-order within a size): every [P] with [agg_rels ⊆ P ⊊ rels],
    [P] non-empty.  Returns [[]] when the aggregation relations already
    cover the whole FROM list.  At most [max_cuts] (default 64) are
    returned; the count is exponential in the free relations, so the
    truncation is announced by the planner, not silent here. *)

val canonical_at : Database.t -> t -> string list -> (Canonical.t, string) result
(** The two-sided view at one cut: re-canonicalise with [r1_hint = P],
    so R1 is exactly [P] and R2 the remaining relations.  Errors when
    [P] is not a candidate cut ([agg_rels ⊈ P], unknown relation, empty
    either side) or the underlying validation fails. *)

val pp : Format.formatter -> t -> unit
