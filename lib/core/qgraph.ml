open Eager_schema
open Eager_expr
open Eager_catalog
open Eager_storage
open Eager_algebra

type t = {
  input : Canonical.input;
  rels : string list;
  schemas : (string * Schema.t) list;
  conjuncts : Expr.t list;
  agg_rels : string list;
}

let of_input db (q : Canonical.input) : (t, string) result =
  let ( let* ) = Result.bind in
  let* schemas =
    List.fold_left
      (fun acc (s : Canonical.source) ->
        let* acc = acc in
        match Catalog.find_table (Database.catalog db) s.Canonical.table with
        | None -> Error (Printf.sprintf "unknown table %s" s.Canonical.table)
        | Some td ->
            Ok ((s.Canonical.rel, Table_def.schema ~rel:s.Canonical.rel td)
                :: acc))
      (Ok []) q.Canonical.sources
    |> Result.map List.rev
  in
  let rels = List.map fst schemas in
  let* () =
    if List.length (List.sort_uniq String.compare rels) <> List.length rels
    then Error "duplicate range variables in FROM clause"
    else Ok ()
  in
  let aa =
    List.fold_left
      (fun acc a -> Colref.Set.union acc (Agg.columns a))
      Colref.Set.empty q.Canonical.select_aggs
  in
  let agg_rels =
    List.filter
      (fun r ->
        List.mem r q.Canonical.r1_hint
        || Colref.Set.exists
             (fun c -> Schema.mem (List.assoc r schemas) c)
             aa)
      rels
  in
  Ok
    {
      input = q;
      rels;
      schemas;
      conjuncts = Expr.conjuncts q.Canonical.where;
      agg_rels;
    }

let input_of_canonical (q : Canonical.t) : Canonical.input =
  {
    Canonical.sources = q.Canonical.r1 @ q.Canonical.r2;
    where = Expr.conj (q.Canonical.c1 @ q.Canonical.c0 @ q.Canonical.c2);
    group_by = q.Canonical.ga1 @ q.Canonical.ga2;
    select_cols = q.Canonical.sga1 @ q.Canonical.sga2;
    select_aggs = q.Canonical.aggs;
    select_distinct = q.Canonical.distinct;
    select_having = q.Canonical.having;
    r1_hint = List.map (fun (s : Canonical.source) -> s.Canonical.rel)
        q.Canonical.r1;
  }

let of_canonical db q = of_input db (input_of_canonical q)
let n_relations t = List.length t.rels
let default_cut t = t.agg_rels

(* Subsets of the free (non-aggregation) relations, smallest first; the
   cut is [agg_rels ∪ subset].  The mask space is exponential, so the
   free list is clipped to 16 relations — far beyond the join-order DP's
   own 12-relation ceiling — before enumeration. *)
let cuts ?(max_cuts = 64) t =
  let required = t.agg_rels in
  let free =
    List.filter (fun r -> not (List.mem r required)) t.rels
  in
  let free = List.filteri (fun i _ -> i < 16) free in
  let free = Array.of_list free in
  let k = Array.length free in
  if k = 0 then []
  else begin
    let full = (1 lsl k) - 1 in
    let masks = ref [] in
    for mask = full - 1 downto 0 do
      (* mask < full keeps P ⊊ rels; an empty P needs at least one rel *)
      if mask > 0 || required <> [] then masks := mask :: !masks
    done;
    let popcount m =
      let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
      go m 0
    in
    let ordered =
      List.stable_sort
        (fun a b -> compare (popcount a, a) (popcount b, b))
        !masks
    in
    let take =
      List.filteri (fun i _ -> i < max_cuts) ordered
    in
    List.map
      (fun mask ->
        let chosen = ref [] in
        for i = k - 1 downto 0 do
          if mask land (1 lsl i) <> 0 then chosen := free.(i) :: !chosen
        done;
        (* back to FROM order *)
        List.filter
          (fun r -> List.mem r required || List.mem r !chosen)
          t.rels)
      take
  end

let canonical_at db t cut =
  let ( let* ) = Result.bind in
  let* () =
    match List.find_opt (fun r -> not (List.mem r t.rels)) cut with
    | Some r -> Error (Printf.sprintf "cut names unknown relation %s" r)
    | None -> Ok ()
  in
  let* () =
    match List.find_opt (fun r -> not (List.mem r cut)) t.agg_rels with
    | Some r ->
        Error
          (Printf.sprintf
             "cut must contain aggregation relation %s (its columns feed \
              the aggregates)"
             r)
    | None -> Ok ()
  in
  let* () =
    if cut = [] then Error "cut is empty"
    else if List.for_all (fun r -> List.mem r cut) t.rels then
      Error "cut covers the whole FROM list (nothing to join against)"
    else Ok ()
  in
  Canonical.of_input db { t.input with Canonical.r1_hint = cut }

let pp ppf t =
  Format.fprintf ppf "@[<v>join graph over {%s}@,agg rels: {%s}@,conjuncts: %s@]"
    (String.concat ", " t.rels)
    (String.concat ", " t.agg_rels)
    (match t.conjuncts with
    | [] -> "TRUE"
    | cs -> String.concat " AND " (List.map Expr.to_string cs))
