open Eager_schema
open Eager_expr
open Eager_catalog
open Eager_storage
open Eager_algebra
open Eager_robust

let scan_of db (s : Canonical.source) =
  match Catalog.find_table (Database.catalog db) s.Canonical.table with
  | None -> Err.failf Err.Planner "unknown table %s" s.Canonical.table
  | Some td ->
      Plan.scan ~table:s.Canonical.table ~rel:s.Canonical.rel
        (Table_def.schema ~rel:s.Canonical.rel td)

(* Greedy join tree over one side: per-source conjuncts become selections on
   the scans, cross-source conjuncts become join predicates as soon as both
   ends are in scope, leftovers end up in a final selection. *)
let join_side db sources conjuncts =
  match sources with
  | [] -> Err.failf Err.Planner "join_side: empty side"
  | first :: rest ->
      let remaining = ref conjuncts in
      let take_covered schema =
        let covered, rest =
          List.partition
            (fun e -> Colref.Set.subset (Expr.columns e) (Schema.colset schema))
            !remaining
        in
        remaining := rest;
        covered
      in
      let scan_with_filter s =
        let scan = scan_of db s in
        Plan.select (Expr.conj (take_covered (Plan.schema_of scan))) scan
      in
      let init = scan_with_filter first in
      let tree =
        List.fold_left
          (fun acc s ->
            let right = scan_with_filter s in
            let joint =
              Schema.concat (Plan.schema_of acc) (Plan.schema_of right)
            in
            let usable =
              let covered, rest =
                List.partition
                  (fun e ->
                    Colref.Set.subset (Expr.columns e) (Schema.colset joint))
                  !remaining
              in
              remaining := rest;
              covered
            in
            match usable with
            | [] -> Plan.Product (acc, right)
            | _ -> Plan.join (Expr.conj usable) acc right)
          init rest
      in
      Plan.select (Expr.conj !remaining) tree

let join_tree = join_side
let side1 db (q : Canonical.t) = join_side db q.Canonical.r1 q.Canonical.c1
let side2 db (q : Canonical.t) = join_side db q.Canonical.r2 q.Canonical.c2

let join_sides q left right =
  match q.Canonical.c0 with
  | [] -> Plan.Product (left, right)
  | c0 -> Plan.join (Expr.conj c0) left right

(* The HAVING filter commutes with the group↔joined-row bijection that FD1
   and FD2 establish: in E1 it sits above the Group, in E2 above the Join —
   in both cases every column it may reference (grouping columns and
   aggregate outputs) is in scope with the same value. *)
let apply_having (q : Canonical.t) inner =
  match q.Canonical.having with
  | None -> inner
  | Some h -> Plan.select h inner

let final_project (q : Canonical.t) inner =
  let cols =
    q.Canonical.sga1 @ q.Canonical.sga2 @ Canonical.agg_names q
  in
  Plan.project ~dedup:q.Canonical.distinct cols (apply_having q inner)

let e1_with (q : Canonical.t) ~side1 ~side2 =
  let joined = join_sides q side1 side2 in
  let grouped =
    Plan.group
      ~by:(q.Canonical.ga1 @ q.Canonical.ga2)
      ~aggs:q.Canonical.aggs joined
  in
  final_project q grouped

let e2_with (q : Canonical.t) ~side1 ~side2 =
  let r1' = Plan.group ~by:(Canonical.ga1_plus q) ~aggs:q.Canonical.aggs side1 in
  let r2' = Plan.project (Canonical.ga2_plus q) side2 in
  final_project q (join_sides q r1' r2')

(* Eager partial pre-aggregation: a bounded Partial_group on GA1+ below
   the join, a finalizing Group on GA1 ∪ GA2 above it.  Unlike E2 this
   needs no FD verification: GA1+ contains every R1-side column C0
   references, so all rows of one partial group have identical join
   behaviour (equal join-column values, including the all-NULL case,
   which fails every comparison identically), and summing the partial
   counts/sums across the join reproduces exactly E1's per-row
   duplication.  The price is the extra finalizing Group — soundness
   traded against a strictly taller plan, arbitrated by cost. *)
let eager_partial_with (q : Canonical.t) ~cap ~side1 ~side2 =
  match Agg.decompose q.Canonical.aggs with
  | Error msg -> Error msg
  | Ok (partials, finals) ->
      let r1' =
        Plan.partial_group ~by:(Canonical.ga1_plus q) ~aggs:partials ~cap
          side1
      in
      let r2' = Plan.project (Canonical.ga2_plus q) side2 in
      let joined = join_sides q r1' r2' in
      let grouped =
        Plan.group
          ~by:(q.Canonical.ga1 @ q.Canonical.ga2)
          ~aggs:finals joined
      in
      Ok (final_project q grouped)

let e1 db (q : Canonical.t) =
  e1_with q ~side1:(side1 db q) ~side2:(side2 db q)

let e2_r1_prime db (q : Canonical.t) =
  Plan.group ~by:(Canonical.ga1_plus q) ~aggs:q.Canonical.aggs (side1 db q)

let e2 db (q : Canonical.t) =
  e2_with q ~side1:(side1 db q) ~side2:(side2 db q)
