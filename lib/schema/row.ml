open Eager_value

type t = Value.t array

let concat = Array.append
let project idxs row = Array.map (fun i -> row.(i)) idxs

let null_eq_on idxs a b =
  Array.for_all (fun i -> Value.null_eq a.(i) b.(i)) idxs

let compare_on idxs a b =
  let n = Array.length idxs in
  let rec go k =
    if k >= n then 0
    else
      let c = Value.compare_total a.(idxs.(k)) b.(idxs.(k)) in
      if c <> 0 then c else go (k + 1)
  in
  go 0

(* Normalise whole floats to ints so that the structural key respects
   numeric [=ⁿ] across Int/Float.  The cutoff is [Value.canonical_num]'s
   2^53 exact-conversion bound — an ad-hoc smaller cutoff (1e15, say)
   would put [Int 10^15] and [Float 1e15] in different group-by buckets
   even though [compare_total] calls them equal. *)
let normalise = Value.canonical_num

let key_on idxs row = Array.to_list (Array.map (fun i -> normalise row.(i)) idxs)

let equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Value.null_eq x y) a b

let to_string row =
  "("
  ^ String.concat ", " (Array.to_list (Array.map Value.to_string row))
  ^ ")"

let pp ppf row = Format.pp_print_string ppf (to_string row)
