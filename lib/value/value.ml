type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

let is_null = function Null -> true | _ -> false

(* Numeric comparison with Int/Float coercion; None when incomparable types
   meet (we treat that as unknown rather than crashing — the binder should
   have rejected ill-typed queries already). *)
let cmp_non_null a b =
  match a, b with
  | Int x, Int y -> Some (compare x y)
  | Float x, Float y -> Some (compare x y)
  | Int x, Float y -> Some (compare (float_of_int x) y)
  | Float x, Int y -> Some (compare x (float_of_int y))
  | Str x, Str y -> Some (compare x y)
  | Bool x, Bool y -> Some (compare x y)
  | Null, _ | _, Null -> None
  | _ -> None

let null_eq a b =
  match a, b with
  | Null, Null -> true
  | Null, _ | _, Null -> false
  | _ -> ( match cmp_non_null a b with Some 0 -> true | _ -> false)

let lift3 rel a b : Tbool.t =
  match a, b with
  | Null, _ | _, Null -> Unknown
  | _ -> (
      match cmp_non_null a b with
      | Some c -> Tbool.of_bool (rel c)
      | None -> Unknown)

let cmp_eq = lift3 (fun c -> c = 0)
let cmp_ne = lift3 (fun c -> c <> 0)
let cmp_lt = lift3 (fun c -> c < 0)
let cmp_le = lift3 (fun c -> c <= 0)
let cmp_gt = lift3 (fun c -> c > 0)
let cmp_ge = lift3 (fun c -> c >= 0)

let type_tag = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 2 (* numeric types share a tag so coercion stays consistent *)
  | Str _ -> 3

let compare_total a b =
  match a, b with
  | Null, Null -> 0
  | Null, _ -> -1
  | _, Null -> 1
  | _ -> (
      match cmp_non_null a b with
      | Some c -> c
      | None -> compare (type_tag a) (type_tag b))

(* 2^53: the largest magnitude below which int<->float round-trips are
   exact.  [cmp_non_null] settles mixed Int/Float comparisons by
   coercing the int to float, so within this range an integral Float and
   the equal Int must share one canonical form.  Beyond it no coherent
   canonicalization exists — [compare_total] distinguishes huge Ints
   exactly while equating each with its rounded Float — so values there
   are left untouched rather than collapsed. *)
let max_exact_int_float = 9007199254740992.

let canonical_num = function
  | Float f when Float.is_integer f && Float.abs f <= max_exact_int_float ->
      Int (int_of_float f)
  | v -> v

let arith fi ff a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> fi x y
  | Float x, Float y -> ff x y
  | Int x, Float y -> ff (float_of_int x) y
  | Float x, Int y -> ff x (float_of_int y)
  | _ -> Null

let add = arith (fun x y -> Int (x + y)) (fun x y -> Float (x +. y))
let sub = arith (fun x y -> Int (x - y)) (fun x y -> Float (x -. y))
let mul = arith (fun x y -> Int (x * y)) (fun x y -> Float (x *. y))

let div =
  arith
    (fun x y -> if y = 0 then Null else Int (x / y))
    (fun x y -> if y = 0. then Null else Float (x /. y))

let neg = function
  | Null -> Null
  | Int x -> Int (-x)
  | Float x -> Float (-.x)
  | v -> v

let equal (a : t) (b : t) =
  match a, b with Float x, Float y -> x = y | _ -> a = b

let hash = function
  | Null -> 0
  | Int x -> Hashtbl.hash x
  | Float x -> if Float.is_integer x then Hashtbl.hash (int_of_float x) else Hashtbl.hash x
  | Str s -> Hashtbl.hash s
  | Bool b -> Hashtbl.hash b

let to_string = function
  | Null -> "NULL"
  | Int x -> string_of_int x
  | Float x -> string_of_float x
  | Str s -> "'" ^ s ^ "'"
  | Bool b -> if b then "TRUE" else "FALSE"

let pp ppf v = Format.pp_print_string ppf (to_string v)
