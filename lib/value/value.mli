(** SQL values, including NULL.

    The comparison operators implement the two equality notions the paper
    distinguishes (Section 4.2):

    - search-condition comparison ([cmp_eq], [cmp_lt], ...) returns a
      three-valued result and yields [Unknown] as soon as either operand is
      NULL;
    - duplicate comparison [null_eq] (the paper's [=ⁿ]) is two-valued and
      treats NULL as equal to NULL — the semantics of GROUP BY, DISTINCT,
      UNION, EXCEPT and INTERSECT. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

val is_null : t -> bool

val null_eq : t -> t -> bool
(** [=ⁿ]: both NULL, or both non-NULL and equal (with numeric coercion). *)

val cmp_eq : t -> t -> Tbool.t
val cmp_ne : t -> t -> Tbool.t
val cmp_lt : t -> t -> Tbool.t
val cmp_le : t -> t -> Tbool.t
val cmp_gt : t -> t -> Tbool.t
val cmp_ge : t -> t -> Tbool.t

val compare_total : t -> t -> int
(** Total order used for sorting (sort-merge join, sort-based grouping).
    NULLs sort first and compare equal to each other, matching [null_eq]
    classes.  Cross-type comparisons order by type tag. *)

val max_exact_int_float : float
(** [2^53], the largest magnitude below which int<->float conversion is
    exact — the range where [compare_total]'s numeric coercion is a
    genuine equivalence. *)

val canonical_num : t -> t
(** Canonical representative of a value's [compare_total] equality
    class: integral [Float]s with magnitude at most
    {!max_exact_int_float} become the equal [Int]; everything else is
    unchanged.  Structural keys (grouping, DISTINCT, hash joins) hash
    the canonical form so bucketing agrees with [compare_total]. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Arithmetic: NULL-propagating; [Int]/[Float] coerce to [Float] when mixed.
    [div] of two [Int]s is integer division; division by zero yields NULL
    (we model it as missing information rather than a runtime error). *)

val neg : t -> t

val equal : t -> t -> bool
(** Structural equality — same as [null_eq] except that [Int 1] and
    [Float 1.] are distinct.  Used by tests. *)

val hash : t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
