(* Spill-to-disk paths for the pipeline breakers.

   Every breaker (sort buffer, aggregation table, hash-join build) gets a
   per-operator memory budget expressed in buffer-pool pages.  State
   within budget is *reserved* against the pool — it competes with
   cached pages for capacity and counts into the pinned telemetry, so
   "peak pinned pages" measures an execution's true working set.  State
   over budget goes to *runs*: sequences of checksummed pages on the
   scratch pager, written write-through and read back uncached (a run is
   written once and read once; caching it would pollute the hot set).

   Three algorithms share the run machinery:

   - [sort]: classic external merge sort — sorted runs of [budget] rows,
     then k-way merges at fan-in [budget_pages - 1] (one page buffer per
     input run) until one streaming merge remains;

   - [hash_agg]: adaptive spilling hash aggregation — groups absorb into
     the table until it reaches the budget; rows of non-resident keys
     spill to hash-partitioned runs, and each partition recurses with a
     re-salted hash.  A key's rows are either all absorbed or all in one
     partition, so the algorithm is correct for non-decomposable
     aggregates; depth is capped, with an unbounded in-memory fallback
     at the bottom for adversarial key distributions;

   - [grace_join]: grace hash join — the build side absorbs until
     budget, then degrades to partitioning (dumping the table first),
     the probe side partitions the same way, and each partition pair
     recurses like [hash_agg].

   A [config] is per-statement: it tracks the pages it reserved so
   [cleanup] (run from the executor's unwind path) can return them to
   the pool even when a governor aborts the query mid-spill. *)

open Eager_value
open Eager_schema
open Eager_storage
open Eager_robust

type row_stream = unit -> Row.t option

type config = {
  pool : Buffer_pool.t;
  scratch : Pager.t;
  budget_pages : int; (* per-operator in-memory budget, in pages *)
  page_rows : int; (* nominal rows per page, for rows<->pages *)
  mutable held_pages : int; (* pool pages currently reserved *)
  mutable run_pages_written : int; (* spill telemetry *)
}

let make ~pool ~scratch ~budget_pages ~page_rows =
  if budget_pages < 2 then invalid_arg "Spill.make: budget_pages must be >= 2";
  {
    pool;
    scratch;
    budget_pages;
    page_rows = max 1 page_rows;
    held_pages = 0;
    run_pages_written = 0;
  }

(* One spill config per statement over a paged database: the budget
   defaults to half the pool (so two spilling operators can coexist), or
   64 pages when the pool is unbounded. *)
let for_db ?budget_pages db =
  match Database.scratch db with
  | None -> None
  | Some (pool, scratch) ->
      let budget =
        match budget_pages with
        | Some b -> max 2 b
        | None -> (
            match Buffer_pool.cap pool with
            | Some c -> max 2 (c / 2)
            | None -> 64)
      in
      Some
        (make ~pool ~scratch ~budget_pages:budget
           ~page_rows:(Database.page_rows db))

let rows_budget cfg = cfg.budget_pages * cfg.page_rows
let run_pages cfg = cfg.run_pages_written
let budget_pages cfg = cfg.budget_pages
let pages_of_rows cfg n = (n + cfg.page_rows - 1) / cfg.page_rows

let reserve ?gov cfg n =
  Buffer_pool.reserve ?gov cfg.pool n;
  cfg.held_pages <- cfg.held_pages + n

let release_pages cfg n =
  Buffer_pool.release cfg.pool n;
  cfg.held_pages <- cfg.held_pages - n

let cleanup cfg =
  if cfg.held_pages > 0 then begin
    Buffer_pool.release cfg.pool cfg.held_pages;
    cfg.held_pages <- 0
  end

(* A hold resizes one structure's reservation as it grows or shrinks,
   clamped so the statement's TOTAL reservation never exceeds the
   budget: the budget is shared by every breaker of the statement
   (pipelined plans run several at once — a grace join feeding a
   spilling aggregation), which guarantees the other half of the pool
   stays available for pinned scan frames.  The max-depth fallbacks may
   hold more rows than the clamp admits; honest accounting up to the
   clamp keeps them runnable rather than failing the query on a
   reservation the pool cannot grant. *)
type hold = { hcfg : config; mutable hpages : int }

let hold cfg = { hcfg = cfg; hpages = 0 }

let hold_rows ?gov h n =
  let others = h.hcfg.held_pages - h.hpages in
  let target =
    min (pages_of_rows h.hcfg n) (max 0 (h.hcfg.budget_pages - others))
  in
  if target > h.hpages then begin
    reserve ?gov h.hcfg (target - h.hpages);
    h.hpages <- target
  end
  else if target < h.hpages then begin
    release_pages h.hcfg (h.hpages - target);
    h.hpages <- target
  end

let hold_drop h = hold_rows h 0

(* ---------------- spill runs ---------------- *)

type run = {
  mutable pids : int list; (* newest first *)
  mutable tail : Row.t list; (* newest first; always under one page *)
  mutable tail_rows : int;
  mutable tail_bytes : int;
  mutable total : int;
}

let run_create () =
  { pids = []; tail = []; tail_rows = 0; tail_bytes = 0; total = 0 }

let run_rows r = r.total

let run_flush_tail ?gov cfg r =
  if r.tail_rows > 0 then begin
    (* the fault point fires before the page lands, so an injected IO
       failure leaves a clean (shorter) run *)
    Fault.trip "exec.spill";
    let page = Array.of_list (List.rev r.tail) in
    let pid = Buffer_pool.append_page ?gov cfg.pool cfg.scratch page in
    cfg.run_pages_written <- cfg.run_pages_written + 1;
    r.pids <- pid :: r.pids;
    r.tail <- [];
    r.tail_rows <- 0;
    r.tail_bytes <- 0
  end

let run_add ?gov cfg r row =
  let rb = Page.row_bytes row in
  let cap = Page.capacity ~page_size:(Pager.page_size cfg.scratch) in
  if rb > cap then
    Err.failf Err.Storage
      "spilled row needs %d bytes, a page holds %d (use a larger \
       --page-size)"
      rb cap;
  if r.tail_rows >= cfg.page_rows || r.tail_bytes + rb > cap then
    run_flush_tail ?gov cfg r;
  r.tail <- row :: r.tail;
  r.tail_rows <- r.tail_rows + 1;
  r.tail_bytes <- r.tail_bytes + rb;
  r.total <- r.total + 1

(* Seal the run and stream it back page by page (one page of rows live
   at a time, read uncached). *)
let run_stream ?gov cfg r : row_stream =
  run_flush_tail ?gov cfg r;
  let pids = ref (List.rev r.pids) in
  let page = ref [||] in
  let i = ref 0 in
  let rec next () =
    if !i < Array.length !page then begin
      let row = (!page).(!i) in
      incr i;
      Some row
    end
    else
      match !pids with
      | [] -> None
      | pid :: rest ->
          pids := rest;
          page := Buffer_pool.read_page ?gov cfg.pool cfg.scratch pid;
          i := 0;
          next ()
  in
  next

(* re-salted partition hash: each recursion depth splits keys
   differently, so a partition that overflowed at depth d spreads out at
   depth d+1 *)
let partition_of ~depth ~nparts key =
  Hashtbl.seeded_hash ((depth * 31) + 17) key mod nparts

let max_depth = 6

let nparts_of cfg = max 2 (min 32 (cfg.budget_pages - 1))

(* ---------------- external merge sort ---------------- *)

let merge_streams cmp streams : row_stream =
  let heads = Array.of_list (List.map (fun s -> (ref (s ()), s)) streams) in
  let next () =
    let best = ref (-1) in
    Array.iteri
      (fun i (p, _) ->
        match !p with
        | None -> ()
        | Some r -> (
            if !best < 0 then best := i
            else
              let pb, _ = heads.(!best) in
              match !pb with
              | Some rb when cmp rb r <= 0 -> ()
              | _ -> best := i))
      heads;
    if !best < 0 then None
    else begin
      let p, s = heads.(!best) in
      let row = Option.get !p in
      p := s ();
      Some row
    end
  in
  next

let sort cfg ?gov ?(acquire = ignore) ?(release = ignore) ~cmp
    (input : row_stream) : row_stream =
  let budget = rows_budget cfg in
  let h = hold cfg in
  let buf = ref [] in
  let n = ref 0 in
  let runs = ref [] in
  let flush_chunk () =
    if !n > 0 then begin
      let arr = Array.of_list (List.rev !buf) in
      Array.stable_sort cmp arr;
      let r = run_create () in
      Array.iter (fun row -> run_add ?gov cfg r row) arr;
      runs := r :: !runs;
      release !n;
      buf := [];
      n := 0
    end
  in
  let rec load () =
    match input () with
    | None -> ()
    | Some row ->
        buf := row :: !buf;
        incr n;
        acquire 1;
        hold_rows ?gov h !n;
        if !n >= budget then flush_chunk ();
        load ()
  in
  load ();
  if !runs = [] then begin
    (* everything fit: one in-memory sort, streamed out *)
    let arr = Array.of_list (List.rev !buf) in
    Array.stable_sort cmp arr;
    buf := [];
    let i = ref 0 in
    let closed = ref false in
    fun () ->
      if !i < Array.length arr then begin
        let row = arr.(!i) in
        incr i;
        Some row
      end
      else begin
        if not !closed then begin
          closed := true;
          release (Array.length arr);
          hold_drop h
        end;
        None
      end
  end
  else begin
    flush_chunk ();
    hold_drop h;
    let fan = max 2 (cfg.budget_pages - 1) in
    (* intermediate passes until one streaming merge remains *)
    let rec reduce runs =
      if List.length runs <= fan then runs
      else begin
        let batch = List.filteri (fun i _ -> i < fan) runs in
        let rest = List.filteri (fun i _ -> i >= fan) runs in
        let out = run_create () in
        let s =
          merge_streams cmp (List.map (fun r -> run_stream ?gov cfg r) batch)
        in
        let rec go () =
          match s () with
          | None -> ()
          | Some row ->
              run_add ?gov cfg out row;
              go ()
        in
        go ();
        reduce (rest @ [ out ])
      end
    in
    let final = reduce (List.rev !runs) in
    (* one page buffer per surviving run during the streaming merge *)
    let hm = hold cfg in
    hold_rows ?gov hm (List.length final * cfg.page_rows);
    let s =
      merge_streams cmp (List.map (fun r -> run_stream ?gov cfg r) final)
    in
    let closed = ref false in
    fun () ->
      match s () with
      | Some row -> Some row
      | None ->
          if not !closed then begin
            closed := true;
            hold_drop hm
          end;
          None
  end

(* ---------------- adaptive spilling hash aggregation ---------------- *)

let hash_agg (type st) cfg ?gov ?(acquire = ignore) ?(release = ignore)
    ?(on_groups = ignore) ~key ~(fresh : unit -> st)
    ~(absorb : st -> Row.t -> unit) ~(emit : Row.t -> st -> Row.t)
    (input : row_stream) : row_stream =
  let budget = rows_budget cfg in
  let nparts = nparts_of cfg in
  let rec process depth (input : row_stream) : row_stream =
    let table : (Value.t list, Row.t * st) Hashtbl.t = Hashtbl.create 256 in
    let order = ref [] in
    let h = hold cfg in
    let parts = ref None in
    let part_of k =
      let arr =
        match !parts with
        | Some a -> a
        | None ->
            let a = Array.init nparts (fun _ -> run_create ()) in
            parts := Some a;
            a
      in
      arr.(partition_of ~depth ~nparts k)
    in
    let unbounded = depth >= max_depth in
    let rec load () =
      match input () with
      | None -> ()
      | Some row ->
          let k = key row in
          (match Hashtbl.find_opt table k with
          | Some (_, st) -> absorb st row
          | None ->
              if unbounded || Hashtbl.length table < budget then begin
                let st = fresh () in
                absorb st row;
                Hashtbl.add table k (row, st);
                order := k :: !order;
                acquire 1;
                hold_rows ?gov h (Hashtbl.length table);
                on_groups (Hashtbl.length table)
              end
              else
                (* non-resident key: its rows all go to one partition *)
                run_add ?gov cfg (part_of k) row);
          load ()
    in
    load ();
    (* resident groups stream out in first-seen order; spilled
       partitions follow, so no global order is promised *)
    let keys = Array.of_list (List.rev !order) in
    let ki = ref 0 in
    let dropped = ref false in
    let pending =
      ref
        (match !parts with
        | None -> []
        | Some a -> Array.to_list a |> List.filter (fun r -> run_rows r > 0))
    in
    let sub = ref None in
    let rec next () =
      if !ki < Array.length keys then begin
        let k = keys.(!ki) in
        incr ki;
        let repr, st = Hashtbl.find table k in
        Some (emit repr st)
      end
      else begin
        if not !dropped then begin
          dropped := true;
          release (Hashtbl.length table);
          Hashtbl.reset table;
          hold_drop h
        end;
        match !sub with
        | Some s -> (
            match s () with
            | Some row -> Some row
            | None ->
                sub := None;
                next ())
        | None -> (
            match !pending with
            | [] -> None
            | r :: rest ->
                pending := rest;
                sub := Some (process (depth + 1) (run_stream ?gov cfg r));
                next ())
      end
    in
    next
  in
  process 0 input

(* ---------------- grace hash join ---------------- *)

let dummy_row : Row.t = [||]

let grace_join cfg ?gov ?(acquire = ignore) ?(release = ignore) ~lkey ~rkey
    ~combine ~(left : row_stream) ~(right : row_stream) () : row_stream =
  let budget = rows_budget cfg in
  let nparts = nparts_of cfg in
  let rec process depth (left : row_stream) (right : row_stream) : row_stream =
    let table : (Value.t list, Row.t) Hashtbl.t = Hashtbl.create 1024 in
    let count = ref 0 in
    let h = hold cfg in
    let grace = ref false in
    let lparts = Array.init nparts (fun _ -> run_create ()) in
    let part k = lparts.(partition_of ~depth ~nparts k) in
    let unbounded = depth >= max_depth in
    let rec build () =
      match left () with
      | None -> ()
      | Some row ->
          (match lkey row with
          | None -> () (* NULL join key: inner join drops the row *)
          | Some k ->
              if (not !grace) && (unbounded || !count < budget) then begin
                Hashtbl.add table k row;
                incr count;
                acquire 1;
                hold_rows ?gov h !count
              end
              else begin
                if not !grace then begin
                  (* budget breached: degrade to partitioning, dumping
                     the resident build rows first *)
                  grace := true;
                  Hashtbl.iter (fun k row -> run_add ?gov cfg (part k) row)
                    table;
                  Hashtbl.reset table;
                  release !count;
                  count := 0;
                  hold_drop h
                end;
                run_add ?gov cfg (part k) row
              end);
          build ()
    in
    build ();
    if not !grace then begin
      (* build fits: stream the probe against the resident table *)
      let pending = ref [] in
      let cur = ref dummy_row in
      let closed = ref false in
      let rec next () =
        match !pending with
        | l :: rest -> (
            pending := rest;
            match combine l !cur with Some row -> Some row | None -> next ())
        | [] -> (
            match right () with
            | None ->
                if not !closed then begin
                  closed := true;
                  release !count;
                  Hashtbl.reset table;
                  hold_drop h
                end;
                None
            | Some r -> (
                match rkey r with
                | None -> next ()
                | Some k ->
                    cur := r;
                    pending := Hashtbl.find_all table k;
                    next ()))
      in
      next
    end
    else begin
      (* partition the probe with the same salted hash, then join each
         partition pair recursively *)
      let rparts = Array.init nparts (fun _ -> run_create ()) in
      let rec split () =
        match right () with
        | None -> ()
        | Some r ->
            (match rkey r with
            | None -> ()
            | Some k ->
                run_add ?gov cfg rparts.(partition_of ~depth ~nparts k) r);
            split ()
      in
      split ();
      let pairs =
        ref
          (List.init nparts (fun i -> (lparts.(i), rparts.(i)))
          |> List.filter (fun (l, r) -> run_rows l > 0 && run_rows r > 0))
      in
      let sub = ref None in
      let rec next () =
        match !sub with
        | Some s -> (
            match s () with
            | Some row -> Some row
            | None ->
                sub := None;
                next ())
        | None -> (
            match !pairs with
            | [] -> None
            | (lr, rr) :: rest ->
                pairs := rest;
                sub :=
                  Some
                    (process (depth + 1)
                       (run_stream ?gov cfg lr)
                       (run_stream ?gov cfg rr));
                next ())
      in
      next
    end
  in
  process 0 left right
