(** Spill-to-disk machinery for the pipeline breakers.

    A {!config} gives one statement's breakers (sort buffers,
    aggregation tables, hash-join builds) a shared memory budget
    measured in buffer-pool pages.  In-memory breaker state is
    {i reserved} against the pool — it competes with cached heap pages
    and shows up in the pinned-page telemetry — while overflow goes to
    {i runs} of checksummed pages on the scratch pager, written and read
    back uncached (each run page is written once and read once).  The
    statement's total reservation is clamped to [budget_pages], so even
    with several breakers live at once (a grace join feeding a spilling
    aggregation) the other half of the pool stays free for pinned scan
    frames — a 4-page pool still runs a join-plus-group plan.

    All three algorithms take and return plain row streams; the
    executor adapts its batched cursors at the boundary.  None of them
    promises any output order. *)

open Eager_value
open Eager_schema
open Eager_storage
open Eager_robust

type row_stream = unit -> Row.t option

type config

val make :
  pool:Buffer_pool.t ->
  scratch:Pager.t ->
  budget_pages:int ->
  page_rows:int ->
  config
(** A per-statement spill context.  [budget_pages] must be at least 2.
    Not safe to share between concurrently executing statements. *)

val for_db : ?budget_pages:int -> Database.t -> config option
(** [None] on a RAM database.  The default budget is half the pool
    capacity (at least 2), or 64 pages when the pool is unbounded. *)

val rows_budget : config -> int
(** The per-operator budget translated to rows. *)

val budget_pages : config -> int

val run_pages : config -> int
(** Spill-run pages written so far under this config (telemetry). *)

val cleanup : config -> unit
(** Return every pool page this config still holds.  The executor runs
    this on its unwind path so a mid-spill abort (governor trip, fault)
    cannot leak pool reservations across statements. *)

val sort :
  config ->
  ?gov:Governor.t ->
  ?acquire:(int -> unit) ->
  ?release:(int -> unit) ->
  cmp:(Row.t -> Row.t -> int) ->
  row_stream ->
  row_stream
(** External merge sort: sorted runs of [rows_budget] rows, k-way merged
    at fan-in [budget_pages - 1].  Fully in-memory (and stable) when the
    input fits the budget.  [acquire]/[release] report live in-memory
    rows to the executor's profiler. *)

val hash_agg :
  config ->
  ?gov:Governor.t ->
  ?acquire:(int -> unit) ->
  ?release:(int -> unit) ->
  ?on_groups:(int -> unit) ->
  key:(Row.t -> Value.t list) ->
  fresh:(unit -> 'st) ->
  absorb:('st -> Row.t -> unit) ->
  emit:(Row.t -> 'st -> Row.t) ->
  row_stream ->
  row_stream
(** Adaptive spilling hash aggregation.  Groups are absorbed into an
    in-memory table until it reaches the budget; rows of non-resident
    keys spill to hash partitions which recurse with a re-salted hash
    (bounded depth, unbounded in-memory fallback at the bottom).  A
    key's rows are either all absorbed or all in one partition, so any
    aggregate — decomposable or not — is computed over its full row
    set.  [emit repr st] maps a group's first-seen row and final state
    to an output row; [on_groups] reports the resident-table size after
    each insertion (how the governor's group budget is charged). *)

val grace_join :
  config ->
  ?gov:Governor.t ->
  ?acquire:(int -> unit) ->
  ?release:(int -> unit) ->
  lkey:(Row.t -> Value.t list option) ->
  rkey:(Row.t -> Value.t list option) ->
  combine:(Row.t -> Row.t -> Row.t option) ->
  left:row_stream ->
  right:row_stream ->
  unit ->
  row_stream
(** Grace hash join (build = left, probe = right).  The build side
    absorbs in memory until the budget, then degrades to hash
    partitioning (dumping the resident rows first); the probe side is
    partitioned the same way and each pair recurses like {!hash_agg}.
    [lkey]/[rkey] return [None] for NULL join keys (dropped, inner-join
    semantics); [combine l r] concatenates and applies the residual
    predicate, returning [None] to filter the pair out. *)
