(** A batch: the unit of data flow in the pull-based pipeline.

    A fixed-capacity array of rows sharing one schema.  Operators pull
    batches from their children, transform them, and push rows into an
    output batch; only pipeline breakers (hash-build sides, sorts, final
    aggregation) ever hold more than a couple of batches alive.  Batches
    are reused across [next] calls by the operator that owns them, so a
    consumer must not retain a batch across pulls — copy rows out
    (they are immutable and safely shared) if they must survive. *)

open Eager_schema

type t

val default_rows : int
(** Default batch capacity (rows), used when options don't override it. *)

val max_capacity : int
(** Hard cap on a single batch's capacity; requests above it are clamped
    (so [batch_rows = max_int] emulates full materialization without a
    max_int-sized allocation). *)

val clamp_capacity : int -> int

val create : ?capacity:int -> Schema.t -> t
val schema : t -> Schema.t
val length : t -> int
val capacity : t -> int
val is_empty : t -> bool
val is_full : t -> bool
val clear : t -> unit
(** Reset to length 0 for refilling; does not free the row slots. *)

val add : t -> Row.t -> unit
(** Raises [Invalid_argument] when full — check {!is_full} first. *)

val get : t -> int -> Row.t
val iter : (Row.t -> unit) -> t -> unit
val fold : ('a -> Row.t -> 'a) -> 'a -> t -> 'a

val of_array : Schema.t -> Row.t array -> t
(** Wrap an array as a full batch (no copy). *)

val to_array : t -> Row.t array
(** Copy the live prefix out. *)
