(** Per-operator execution statistics, mirroring the plan tree.

    These are the numbers printed next to the plan edges in the paper's
    Figures 1 and 8: how many rows each operator consumed and produced. *)

type t = { label : string; out_rows : int; children : t list }

val leaf : string -> int -> t
val node : string -> int -> t list -> t

val boundary : Eager_robust.Governor.t -> string -> int -> t list -> t
(** [node], plus operator-boundary enforcement: fires the [exec.next]
    fault point and charges [out_rows] against the governor.  Raises
    [Err.Error_exn] with kind [Resource] on a budget or deadline breach. *)

val in_rows : t -> int list
(** Output cardinalities of the children, i.e. this operator's input sizes. *)

val total_produced : t -> int
(** Sum of [out_rows] over the whole tree — a crude work measure. *)

val find : prefix:string -> t -> t option
(** First node (pre-order) whose label starts with [prefix]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
