(** Per-operator execution statistics, mirroring the plan tree.

    These are the numbers printed next to the plan edges in the paper's
    Figures 1 and 8: how many rows each operator consumed and produced,
    plus how many batches it emitted through the pull pipeline (a
    pipelined operator's batch count tracks its input; a pipeline
    breaker re-batches its materialized state). *)

type t = { label : string; out_rows : int; batches : int; children : t list }

val leaf : ?batches:int -> string -> int -> t
val node : ?batches:int -> string -> int -> t list -> t

val in_rows : t -> int list
(** Output cardinalities of the children, i.e. this operator's input sizes. *)

val total_produced : t -> int
(** Sum of [out_rows] over the whole tree — a crude work measure. *)

val find : prefix:string -> t -> t option
(** First node (pre-order) whose label starts with [prefix].  When
    several nodes match — both inputs of a self-join, say — use
    {!find_all}; [find] commits to traversal order. *)

val find_all : prefix:string -> t -> t list
(** Every node whose label starts with [prefix], in pre-order (parents
    first, left subtree before right). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
