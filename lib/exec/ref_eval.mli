(** Naive whole-relation reference evaluator.

    The materialized oracle the batched pull pipeline is differentially
    tested against: every operator builds its complete output list
    before the parent sees it, joins are always nested loops, grouping
    is always generic (the [unique_groups] fast path is ignored).  Slow
    and simple on purpose — it shares no operator algorithm with
    {!Exec}, so the two agreeing on every fuzz-corpus query at every
    batch size is meaningful evidence. *)

open Eager_schema
open Eager_expr
open Eager_storage
open Eager_algebra

val eval : ?params:Expr.env -> Database.t -> Plan.t -> Row.t list
(** Rows of [plan]'s result, in an unspecified order (compare with
    {!Exec.multiset_equal}).  May raise on malformed plans — wrap in
    [Err.protect] if a typed error is needed. *)
