open Eager_value
open Eager_schema
open Eager_expr
open Eager_storage
open Eager_algebra
open Eager_robust

type join_algo = Nested_loop | Hash_join | Merge_join | Auto
type group_algo = Hash_group | Sort_group

type options = {
  join_algo : join_algo;
  group_algo : group_algo;
  params : Expr.env;
  use_indexes : bool;
  governor : Governor.t;
}

let default_options =
  {
    join_algo = Auto;
    group_algo = Hash_group;
    params = Expr.no_params;
    use_indexes = true;
    governor = Governor.unlimited;
  }

let split_equijoin lsch rsch pred =
  let conjs = Expr.conjuncts pred in
  List.partition_map
    (fun c ->
      match Expr.classify_atom c with
      | Expr.Col_eq_col (a, b) when Schema.mem lsch a && Schema.mem rsch b ->
          Either.Left (a, b)
      | Expr.Col_eq_col (a, b) when Schema.mem lsch b && Schema.mem rsch a ->
          Either.Left (b, a)
      | _ -> Either.Right c)
    conjs

let all_non_null idxs (row : Row.t) =
  Array.for_all (fun i -> not (Value.is_null row.(i))) idxs

(* is [keys] a prefix of the known sort order [order]? *)
let covered_by_order keys order =
  let rec go ks os =
    match ks, os with
    | [], _ -> true
    | _, [] -> false
    | k :: ks, o :: os -> Colref.equal k o && go ks os
  in
  go keys order

(* Nested-loop join/product with an optional residual predicate compiled
   over the concatenated schema. *)
let nested_loop out pred_opt lrows rrows =
  List.iter
    (fun l ->
      List.iter
        (fun r ->
          let row = Row.concat l r in
          match pred_opt with
          | Some p when not (Tbool.holds (p row)) -> ()
          | _ -> Heap.insert out row)
        rrows)
    lrows

let hash_join out pred_opt lrows rrows lidx ridx =
  let table = Hashtbl.create (List.length rrows * 2 + 1) in
  List.iter
    (fun r -> if all_non_null ridx r then Hashtbl.add table (Row.key_on ridx r) r)
    rrows;
  List.iter
    (fun l ->
      if all_non_null lidx l then
        let matches = Hashtbl.find_all table (Row.key_on lidx l) in
        List.iter
          (fun r ->
            let row = Row.concat l r in
            match pred_opt with
            | Some p when not (Tbool.holds (p row)) -> ()
            | _ -> Heap.insert out row)
          matches)
    lrows

(* [lsorted]/[rsorted]: the caller proved the input is already sorted on
   the key columns, so the sort is skipped (Section 7 exploitation). *)
let merge_join out pred_opt lrows rrows lidx ridx ~lsorted ~rsorted =
  let l = Array.of_list (List.filter (all_non_null lidx) lrows) in
  let r = Array.of_list (List.filter (all_non_null ridx) rrows) in
  if not lsorted then Array.sort (Row.compare_on lidx) l;
  if not rsorted then Array.sort (Row.compare_on ridx) r;
  let key_cmp (a : Row.t) (b : Row.t) =
    let n = Array.length lidx in
    let rec go k =
      if k >= n then 0
      else
        let c = Value.compare_total a.(lidx.(k)) b.(ridx.(k)) in
        if c <> 0 then c else go (k + 1)
    in
    go 0
  in
  let nl = Array.length l and nr = Array.length r in
  let i = ref 0 and j = ref 0 in
  while !i < nl && !j < nr do
    let c = key_cmp l.(!i) r.(!j) in
    if c < 0 then incr i
    else if c > 0 then incr j
    else begin
      (* find the extent of the equal-key runs on both sides *)
      let i2 = ref !i in
      while !i2 < nl && Row.compare_on lidx l.(!i) l.(!i2) = 0 do
        incr i2
      done;
      let j2 = ref !j in
      while !j2 < nr && Row.compare_on ridx r.(!j) r.(!j2) = 0 do
        incr j2
      done;
      for a = !i to !i2 - 1 do
        for b = !j to !j2 - 1 do
          let row = Row.concat l.(a) r.(b) in
          match pred_opt with
          | Some p when not (Tbool.holds (p row)) -> ()
          | _ -> Heap.insert out row
        done
      done;
      i := !i2;
      j := !j2
    end
  done

(* longest prefix of [order] whose columns all appear in [cols] *)
let order_through_projection order cols =
  let colset = Colref.set_of_list cols in
  let rec go = function
    | c :: rest when Colref.Set.mem c colset -> c :: go rest
    | _ -> []
  in
  go order

let run_ordered ?(options = default_options) db plan =
  let params = options.params in
  let gov = options.governor in
  (* operator boundary: budget enforcement + the [exec.next] fault hook *)
  let bnode label rows children = Optree.boundary gov label rows children in
  let rec eval (p : Plan.t) : Heap.t * Optree.t * Colref.t list =
    let label = Plan.label p in
    match p with
    | Plan.Scan { table; schema; _ } ->
        let src = Database.heap db table in
        if Schema.arity schema <> Schema.arity (Heap.schema src) then
          Err.failf Err.Exec
            "scan of %s: schema arity mismatch (plan expects %d columns, \
             stored table has %d)"
            table (Schema.arity schema)
            (Schema.arity (Heap.schema src));
        let out = Heap.create schema in
        Heap.iter (Heap.insert out) src;
        (out, bnode label (Heap.length out) [], [])
    | Plan.Select { pred; input } -> (
        (* point-lookup path: a [col = const] conjunct over a base-table
           scan with a declared single-column index *)
        let index_path () =
          match input with
          | Plan.Scan { table; schema; rel = _; _ } when options.use_indexes ->
              List.find_map
                (fun atom ->
                  let resolved =
                    match Expr.classify_atom atom with
                    | Expr.Col_eq_const (c, v) -> Some (c, v)
                    | Expr.Col_eq_param (c, pname) -> Some (c, params pname)
                    | _ -> None
                  in
                  match resolved with
                  | Some (c, v)
                    when Schema.mem schema c && not (Value.is_null v) -> (
                      match
                        Database.find_equality_index db ~table
                          ~col:c.Colref.name
                      with
                      | Some def -> Some (def, v)
                      | None -> None)
                  | _ -> None)
                (Expr.conjuncts pred)
              |> Option.map (fun (def, v) -> (def, v, schema, table))
          | _ -> None
        in
        match index_path () with
        | Some (def, v, schema, table) ->
            let candidates = Database.index_lookup db def [ v ] in
            let test = Expr.compile_pred ~params schema pred in
            let out = Heap.create schema in
            List.iter
              (fun row -> if Tbool.holds (test row) then Heap.insert out row)
              candidates;
            let leaf =
              Optree.leaf
                (Printf.sprintf "IndexScan %s via %s" table def.Eager_catalog.Catalog.iname)
                (List.length candidates)
            in
            (out, bnode label (Heap.length out) [ leaf ], [])
        | None ->
            let h, st, order = eval input in
            let test = Expr.compile_pred ~params (Heap.schema h) pred in
            let out = Heap.create (Heap.schema h) in
            Heap.iter
              (fun row -> if Tbool.holds (test row) then Heap.insert out row)
              h;
            (out, bnode label (Heap.length out) [ st ], order))
    | Plan.Project { dedup; cols; input } ->
        let h, st, order = eval input in
        let schema = Heap.schema h in
        let idxs = Schema.indices schema cols in
        let out = Heap.create (Schema.project schema cols) in
        if dedup then begin
          let seen = Hashtbl.create 256 in
          Heap.iter
            (fun row ->
              let key = Row.key_on idxs row in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.add seen key ();
                Heap.insert out (Row.project idxs row)
              end)
            h
        end
        else Heap.iter (fun row -> Heap.insert out (Row.project idxs row)) h;
        ( out,
          bnode label (Heap.length out) [ st ],
          order_through_projection order cols )
    | Plan.Map { items; input } ->
        let h, st, order = eval input in
        let in_schema = Heap.schema h in
        let fns =
          List.map (fun (_, e) -> Expr.compile ~params in_schema e) items
        in
        let out = Heap.create (Plan.schema_of p) in
        Heap.iter
          (fun row ->
            Heap.insert out (Array.of_list (List.map (fun f -> f row) fns)))
          h;
        (* identity items keep their column's position in the sort order *)
        let identity =
          List.filter_map
            (fun (c, e) ->
              match e with
              | Expr.Col src when Colref.equal src c -> Some c
              | _ -> None)
            items
        in
        let out_order =
          let idset = Colref.set_of_list identity in
          let rec prefix = function
            | c :: rest when Colref.Set.mem c idset -> c :: prefix rest
            | _ -> []
          in
          prefix order
        in
        (out, bnode label (Heap.length out) [ st ], out_order)
    | Plan.Sort { by; input } ->
        let h, st, _ = eval input in
        let schema = Heap.schema h in
        let keys =
          List.map (fun (c, desc) -> (Schema.index_of schema c, desc)) by
        in
        let cmp (a : Row.t) (b : Row.t) =
          let rec go = function
            | [] -> 0
            | (i, desc) :: rest ->
                let c = Value.compare_total a.(i) b.(i) in
                if c <> 0 then if desc then -c else c else go rest
          in
          go keys
        in
        let sorted = List.stable_sort cmp (Heap.to_list h) in
        let out = Heap.create schema in
        List.iter (Heap.insert out) sorted;
        (* the known (ascending) order is the prefix before the first DESC *)
        let rec asc_prefix = function
          | (c, false) :: rest -> c :: asc_prefix rest
          | _ -> []
        in
        (out, bnode label (Heap.length out) [ st ], asc_prefix by)
    | Plan.Product (a, b) ->
        let ha, sa, order_a = eval a in
        let hb, sb, _ = eval b in
        let out = Heap.create (Schema.concat (Heap.schema ha) (Heap.schema hb)) in
        nested_loop out None (Heap.to_list ha) (Heap.to_list hb);
        (* outer-loop order: the left order survives *)
        (out, bnode label (Heap.length out) [ sa; sb ], order_a)
    | Plan.Join { pred; left; right } ->
        let hl, sl, order_l = eval left in
        let hr, sr, order_r = eval right in
        let lsch = Heap.schema hl and rsch = Heap.schema hr in
        let out_schema = Schema.concat lsch rsch in
        let out = Heap.create out_schema in
        let keys, residual = split_equijoin lsch rsch pred in
        let lrows = Heap.to_list hl and rrows = Heap.to_list hr in
        let residual_pred =
          match residual with
          | [] -> None
          | conjs -> Some (Expr.compile_pred ~params out_schema (Expr.conj conjs))
        in
        let algo =
          match options.join_algo with
          | Auto -> if keys = [] then Nested_loop else Hash_join
          | a -> a
        in
        let lkeys = List.map fst keys and rkeys = List.map snd keys in
        let out_order, presorted =
          match algo, keys with
          | (Nested_loop | Hash_join), _ | _, [] -> (order_l, 0)
          | (Merge_join | Auto), _ ->
              (* merge join emits rows in join-key order *)
              let ls = covered_by_order lkeys order_l in
              let rs = covered_by_order rkeys order_r in
              (lkeys, (if ls then 1 else 0) + if rs then 1 else 0)
        in
        (match algo, keys with
        | Nested_loop, _ | _, [] ->
            let full = Expr.compile_pred ~params out_schema pred in
            nested_loop out (Some full) lrows rrows
        | Hash_join, _ ->
            let lidx = Schema.indices lsch lkeys in
            let ridx = Schema.indices rsch rkeys in
            hash_join out residual_pred lrows rrows lidx ridx
        | Merge_join, _ ->
            let lidx = Schema.indices lsch lkeys in
            let ridx = Schema.indices rsch rkeys in
            merge_join out residual_pred lrows rrows lidx ridx
              ~lsorted:(covered_by_order lkeys order_l)
              ~rsorted:(covered_by_order rkeys order_r)
        | Auto, _ -> assert false);
        let label =
          if presorted > 0 then
            Printf.sprintf "%s (%d presorted input%s)" label presorted
              (if presorted > 1 then "s" else "")
          else label
        in
        (out, bnode label (Heap.length out) [ sl; sr ], out_order)
    | Plan.Group { by; aggs; scalar; unique_groups; input } ->
        let h, st, in_order = eval input in
        let in_schema = Heap.schema h in
        let by_idx = Schema.indices in_schema by in
        let compiled = Agg_exec.compile ~params in_schema aggs in
        let out = Heap.create (Plan.schema_of p) in
        let emit repr state =
          let key_vals = Row.project by_idx repr in
          Heap.insert out
            (Array.append key_vals (Agg_exec.finalize compiled state))
        in
        let out_order =
          if unique_groups then order_through_projection in_order by
          else
            match options.group_algo with
            | Sort_group -> by
            | Hash_group ->
                (* first-seen emission: sorted input stays sorted *)
                if covered_by_order by in_order then by else []
        in
        (if unique_groups then
           Heap.iter
             (fun row ->
               let state = Agg_exec.fresh compiled in
               Agg_exec.update compiled state row;
               emit row state)
             h
         else
           match options.group_algo with
           | Hash_group ->
               let groups : (Value.t list, Row.t * Agg_exec.group_state) Hashtbl.t
                   =
                 Hashtbl.create 256
               in
               let order = ref [] in
               Heap.iter
                 (fun row ->
                   let key = Row.key_on by_idx row in
                   match Hashtbl.find_opt groups key with
                   | Some (_, state) -> Agg_exec.update compiled state row
                   | None ->
                       let state = Agg_exec.fresh compiled in
                       Agg_exec.update compiled state row;
                       Hashtbl.add groups key (row, state);
                       (* bound the aggregation hash table while it grows,
                          not only at the operator boundary *)
                       Governor.charge_groups gov (Hashtbl.length groups);
                       order := key :: !order)
                 h;
               List.iter
                 (fun key ->
                   let repr, state = Hashtbl.find groups key in
                   emit repr state)
                 (List.rev !order)
           | Sort_group ->
               let rows = Array.of_list (Heap.to_list h) in
               if not (covered_by_order by in_order) then
                 Array.sort (Row.compare_on by_idx) rows;
               let n = Array.length rows in
               let i = ref 0 in
               while !i < n do
                 let state = Agg_exec.fresh compiled in
                 let repr = rows.(!i) in
                 let j = ref !i in
                 while !j < n && Row.compare_on by_idx repr rows.(!j) = 0 do
                   Agg_exec.update compiled state rows.(!j);
                   incr j
                 done;
                 emit repr state;
                 i := !j
               done);
        (* SQL scalar aggregation yields one row even for empty input; the
           paper's G[GA] (scalar = false) yields zero groups instead *)
        if scalar && Heap.length out = 0 then begin
          let state = Agg_exec.fresh compiled in
          Heap.insert out (Agg_exec.finalize compiled state)
        end;
        (out, bnode label (Heap.length out) [ st ], out_order)
  in
  eval plan

let run ?options db plan =
  let h, st, _ = run_ordered ?options db plan in
  (h, st)

let run_rows ?options db plan =
  let h, _ = run ?options db plan in
  Heap.to_list h

(* The typed-error boundary: a query either completes or yields an
   [Error] — budget breaches, injected faults, missing tables and legacy
   raises all surface here as values.  Base tables are never mutated by
   evaluation, so an abort leaves the database consistent. *)
let run_checked ?options db plan =
  Err.protect ~kind:Err.Exec (fun () -> run ?options db plan)

let run_rows_checked ?options db plan =
  Result.map (fun (h, _) -> Heap.to_list h) (run_checked ?options db plan)

let multiset_equal a b =
  let tally rows =
    let t = Hashtbl.create 64 in
    List.iter
      (fun row ->
        let key = Row.key_on (Array.init (Array.length row) Fun.id) row in
        let n = Option.value (Hashtbl.find_opt t key) ~default:0 in
        Hashtbl.replace t key (n + 1))
      rows;
    t
  in
  List.length a = List.length b
  &&
  let ta = tally a and tb = tally b in
  Hashtbl.length ta = Hashtbl.length tb
  && Hashtbl.fold (fun k n acc -> acc && Hashtbl.find_opt tb k = Some n) ta true
