open Eager_value
open Eager_schema
open Eager_expr
open Eager_storage
open Eager_algebra
open Eager_robust

type join_algo = Nested_loop | Hash_join | Merge_join | Auto
type group_algo = Hash_group | Sort_group

type options = {
  join_algo : join_algo;
  group_algo : group_algo;
  params : Expr.env;
  use_indexes : bool;
  governor : Governor.t;
  batch_rows : int;
  spill : Spill.config option;
}

let default_options =
  {
    join_algo = Auto;
    group_algo = Hash_group;
    params = Expr.no_params;
    use_indexes = true;
    governor = Governor.unlimited;
    batch_rows = Batch.default_rows;
    spill = None;
  }

type profile = { peak_live_rows : int; batch_rows : int }

let split_equijoin lsch rsch pred =
  let conjs = Expr.conjuncts pred in
  List.partition_map
    (fun c ->
      match Expr.classify_atom c with
      | Expr.Col_eq_col (a, b) when Schema.mem lsch a && Schema.mem rsch b ->
          Either.Left (a, b)
      | Expr.Col_eq_col (a, b) when Schema.mem lsch b && Schema.mem rsch a ->
          Either.Left (b, a)
      | _ -> Either.Right c)
    conjs

let all_non_null idxs (row : Row.t) =
  Array.for_all (fun i -> not (Value.is_null row.(i))) idxs

(* is [keys] a prefix of the known sort order [order]? *)
let covered_by_order keys order =
  let rec go ks os =
    match ks, os with
    | [], _ -> true
    | _, [] -> false
    | k :: ks, o :: os -> Colref.equal k o && go ks os
  in
  go keys order

(* longest prefix of [order] whose columns all appear in [cols] *)
let order_through_projection order cols =
  let colset = Colref.set_of_list cols in
  let rec go = function
    | c :: rest when Colref.Set.mem c colset -> c :: go rest
    | _ -> []
  in
  go order

(* ------------------------------------------------------------------ *)
(* pull-pipeline infrastructure                                        *)

(* A cursor yields batches until exhausted.  The batch an operator
   returns is owned by that operator and reused on the next pull, so
   consumers process it before pulling again (rows themselves are
   immutable and may be retained). *)
type cursor = unit -> Batch.t option

(* Live intermediate-row accounting: pipeline breakers [acquire] rows
   when they materialize state (hash-build sides, sort buffers, group
   tables) and [release] them when their output is drained.  [peak] is
   the high-water mark the bench sweep reports — the number that shrinks
   when early aggregation shrinks a join's build side. *)
type tracker = { mutable live : int; mutable peak : int }

let acquire tr n =
  tr.live <- tr.live + n;
  if tr.live > tr.peak then tr.peak <- tr.live

let release tr n = tr.live <- tr.live - n

(* Per-operator statistics, mutated as batches flow and realized into an
   [Optree.t] once the root cursor is drained. *)
type opstat = {
  mutable label : string;
  mutable rows_out : int;
  mutable batches_out : int;
  kids : opstat list;
}

let opstat label kids = { label; rows_out = 0; batches_out = 0; kids }

let rec realize st =
  Optree.node ~batches:st.batches_out st.label st.rows_out
    (List.map realize st.kids)

(* Stats-only wrapper (IndexScan leaves: counted but, as before the
   refactor, neither charged nor a fault point). *)
let observe st (next : cursor) : cursor =
 fun () ->
  match next () with
  | None -> None
  | Some b ->
      st.rows_out <- st.rows_out + Batch.length b;
      st.batches_out <- st.batches_out + 1;
      Some b

(* The operator boundary of the pull pipeline: every batch crossing it
   fires the [exec.next] fault point and is charged against the
   governor, so budgets and injected crashes trip mid-stream while the
   data flows, not after an operator has materialized its output. *)
let boundary gov st (next : cursor) : cursor =
 fun () ->
  Fault.trip "exec.next";
  match next () with
  | None -> None
  | Some b ->
      let n = Batch.length b in
      Governor.charge_batch gov ~rows:n;
      st.rows_out <- st.rows_out + n;
      st.batches_out <- st.batches_out + 1;
      Some b

(* Defer a breaker's build work to the first pull so the whole pipeline
   stays demand-driven. *)
let deferred (init : unit -> cursor) : cursor =
  let built = ref None in
  fun () ->
    (match !built with
    | Some c -> c
    | None ->
        let c = init () in
        built := Some c;
        c)
      ()

let dummy_row : Row.t = [||]

(* Drain a child cursor into an array, keeping only rows satisfying
   [keep]; the breaker's footprint is registered with the tracker as it
   grows (the caller releases it when done). *)
let drain_where tr keep (child : cursor) =
  let buf = ref (Array.make 64 dummy_row) in
  let len = ref 0 in
  let push row =
    if !len >= Array.length !buf then begin
      let bigger = Array.make (2 * Array.length !buf) dummy_row in
      Array.blit !buf 0 bigger 0 !len;
      buf := bigger
    end;
    !buf.(!len) <- row;
    incr len;
    acquire tr 1
  in
  let rec go () =
    match child () with
    | None -> ()
    | Some b ->
        Batch.iter (fun row -> if keep row then push row) b;
        go ()
  in
  go ();
  Array.sub !buf 0 !len

let drain tr child = drain_where tr (fun _ -> true) child

(* Stream a materialized array back out in batches, releasing [held]
   tracked rows once the array is fully drained. *)
let array_source ~batch_rows ~tr ~held schema (arr : Row.t array) : cursor =
  let pos = ref 0 in
  let n = Array.length arr in
  let closed = ref false in
  fun () ->
    if !pos >= n then begin
      if not !closed then begin
        closed := true;
        release tr held
      end;
      None
    end
    else begin
      let k = min batch_rows (n - !pos) in
      let b = Batch.of_array schema (Array.sub arr !pos k) in
      pos := !pos + k;
      Some b
    end

(* Adapters between the batched pull pipeline and the row streams the
   spill algorithms speak. *)
let rows_of_cursor (c : cursor) : Spill.row_stream =
  let batch = ref None in
  let i = ref 0 in
  let rec next () =
    match !batch with
    | Some b when !i < Batch.length b ->
        let row = Batch.get b !i in
        incr i;
        Some row
    | _ -> (
        match c () with
        | None -> None
        | Some b ->
            batch := Some b;
            i := 0;
            next ())
  in
  next

let cursor_of_rows ~batch_rows schema (s : Spill.row_stream) : cursor =
  let out = Batch.create ~capacity:batch_rows schema in
  fun () ->
    Batch.clear out;
    let rec fill () =
      if not (Batch.is_full out) then
        match s () with
        | None -> ()
        | Some row ->
            Batch.add out row;
            fill ()
    in
    fill ();
    if Batch.is_empty out then None else Some out

(* ------------------------------------------------------------------ *)
(* streaming (non-breaking) operators                                  *)

let filter_cursor ~batch_rows schema test (child : cursor) : cursor =
  let out = Batch.create ~capacity:batch_rows schema in
  fun () ->
    Batch.clear out;
    let result = ref None in
    let go = ref true in
    while !go do
      match child () with
      | None ->
          go := false;
          if not (Batch.is_empty out) then result := Some out
      | Some b ->
          Batch.iter
            (fun row -> if Tbool.holds (test row) then Batch.add out row)
            b;
          if not (Batch.is_empty out) then begin
            go := false;
            result := Some out
          end
    done;
    !result

(* one output row per input row *)
let map_cursor ~batch_rows schema f (child : cursor) : cursor =
  let out = Batch.create ~capacity:batch_rows schema in
  fun () ->
    match child () with
    | None -> None
    | Some b ->
        Batch.clear out;
        Batch.iter (fun row -> Batch.add out (f row)) b;
        Some out

(* DISTINCT projection streams first occurrences; the seen-key table is
   the only state it holds (one entry per retained row). *)
let dedup_cursor ~batch_rows ~tr schema idxs (child : cursor) : cursor =
  let seen = Hashtbl.create 256 in
  let out = Batch.create ~capacity:batch_rows schema in
  let closed = ref false in
  fun () ->
    if !closed then None
    else begin
      Batch.clear out;
      let result = ref None in
      let go = ref true in
      while !go do
        match child () with
        | None ->
            go := false;
            closed := true;
            release tr (Hashtbl.length seen);
            if not (Batch.is_empty out) then result := Some out
        | Some b ->
            Batch.iter
              (fun row ->
                let key = Row.key_on idxs row in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.add seen key ();
                  acquire tr 1;
                  Batch.add out (Row.project idxs row)
                end)
              b;
            if not (Batch.is_empty out) then begin
              go := false;
              result := Some out
            end
      done;
      !result
    end

(* ------------------------------------------------------------------ *)
(* joins                                                               *)

(* Nested loop: the inner (right) side is the pipeline breaker; the
   outer streams batch by batch, so output order follows the outer. *)
let nested_loop_cursor ~batch_rows ~tr schema pred_opt (lchild : cursor)
    (rchild : cursor) : cursor =
  deferred (fun () ->
      let inner = drain tr rchild in
      let ninner = Array.length inner in
      let out = Batch.create ~capacity:batch_rows schema in
      let lbatch = ref None in
      let li = ref 0 in
      let ri = ref 0 in
      let closed = ref false in
      fun () ->
        if !closed then None
        else begin
          Batch.clear out;
          let result = ref None in
          let go = ref true in
          while !go do
            if Batch.is_full out then begin
              go := false;
              result := Some out
            end
            else
              match !lbatch with
              | Some b when !li < Batch.length b ->
                  if ninner = 0 then lbatch := None
                  else begin
                    let row = Row.concat (Batch.get b !li) inner.(!ri) in
                    (match pred_opt with
                    | Some p when not (Tbool.holds (p row)) -> ()
                    | _ -> Batch.add out row);
                    incr ri;
                    if !ri >= ninner then begin
                      ri := 0;
                      incr li
                    end
                  end
              | _ -> (
                  match lchild () with
                  | Some b ->
                      lbatch := Some b;
                      li := 0;
                      ri := 0
                  | None ->
                      go := false;
                      closed := true;
                      release tr ninner;
                      if not (Batch.is_empty out) then result := Some out)
          done;
          !result
        end)

(* Hash join builds on the LEFT input and streams the probe from the
   right — the Volcano convention.  This is what makes the eager rewrite
   visible in memory, not just time: in E2 the build side is the
   already-aggregated [R1'], so the hash table holds one row per group
   instead of one per base row.  Output order follows the probe side. *)
let hash_join_cursor ~batch_rows ~tr schema residual lidx ridx
    (lchild : cursor) (rchild : cursor) : cursor =
  deferred (fun () ->
      let build : (Value.t list, Row.t) Hashtbl.t = Hashtbl.create 1024 in
      let count = ref 0 in
      let rec load () =
        match lchild () with
        | None -> ()
        | Some b ->
            Batch.iter
              (fun l ->
                if all_non_null lidx l then begin
                  Hashtbl.add build (Row.key_on lidx l) l;
                  incr count;
                  acquire tr 1
                end)
              b;
            load ()
      in
      load ();
      let out = Batch.create ~capacity:batch_rows schema in
      let pending = ref [] in
      let cur = ref dummy_row in
      let pbatch = ref None in
      let pi = ref 0 in
      let closed = ref false in
      fun () ->
        if !closed then None
        else begin
          Batch.clear out;
          let result = ref None in
          let go = ref true in
          while !go do
            if Batch.is_full out then begin
              go := false;
              result := Some out
            end
            else
              match !pending with
              | l :: rest ->
                  pending := rest;
                  let row = Row.concat l !cur in
                  (match residual with
                  | Some p when not (Tbool.holds (p row)) -> ()
                  | _ -> Batch.add out row)
              | [] -> (
                  match !pbatch with
                  | Some b when !pi < Batch.length b ->
                      let r = Batch.get b !pi in
                      incr pi;
                      if all_non_null ridx r then begin
                        cur := r;
                        pending := Hashtbl.find_all build (Row.key_on ridx r)
                      end
                  | _ -> (
                      match rchild () with
                      | Some b ->
                          pbatch := Some b;
                          pi := 0
                      | None ->
                          go := false;
                          closed := true;
                          release tr !count;
                          if not (Batch.is_empty out) then result := Some out))
          done;
          !result
        end)

(* Merge join breaks both sides (sorting is skipped for an input whose
   known order covers the keys — Section 7), then streams the merge. *)
let merge_join_cursor ~batch_rows ~tr schema residual lidx ridx ~lsorted
    ~rsorted (lchild : cursor) (rchild : cursor) : cursor =
  deferred (fun () ->
      let l = drain_where tr (all_non_null lidx) lchild in
      let r = drain_where tr (all_non_null ridx) rchild in
      if not lsorted then Array.sort (Row.compare_on lidx) l;
      if not rsorted then Array.sort (Row.compare_on ridx) r;
      let key_cmp (a : Row.t) (b : Row.t) =
        let n = Array.length lidx in
        let rec go k =
          if k >= n then 0
          else
            let c = Value.compare_total a.(lidx.(k)) b.(ridx.(k)) in
            if c <> 0 then c else go (k + 1)
        in
        go 0
      in
      let nl = Array.length l in
      let nr = Array.length r in
      let held = nl + nr in
      let i = ref 0 and j = ref 0 in
      let i2 = ref 0 and j2 = ref 0 in
      let a = ref 0 and b = ref 0 in
      let in_run = ref false in
      let out = Batch.create ~capacity:batch_rows schema in
      let closed = ref false in
      fun () ->
        if !closed then None
        else begin
          Batch.clear out;
          let result = ref None in
          let go = ref true in
          while !go do
            if Batch.is_full out then begin
              go := false;
              result := Some out
            end
            else if !in_run then begin
              let row = Row.concat l.(!a) r.(!b) in
              (match residual with
              | Some p when not (Tbool.holds (p row)) -> ()
              | _ -> Batch.add out row);
              incr b;
              if !b >= !j2 then begin
                b := !j;
                incr a;
                if !a >= !i2 then begin
                  in_run := false;
                  i := !i2;
                  j := !j2
                end
              end
            end
            else if !i < nl && !j < nr then begin
              let c = key_cmp l.(!i) r.(!j) in
              if c < 0 then incr i
              else if c > 0 then incr j
              else begin
                let x = ref !i in
                while !x < nl && Row.compare_on lidx l.(!i) l.(!x) = 0 do
                  incr x
                done;
                let y = ref !j in
                while !y < nr && Row.compare_on ridx r.(!j) r.(!y) = 0 do
                  incr y
                done;
                i2 := !x;
                j2 := !y;
                a := !i;
                b := !j;
                in_run := true
              end
            end
            else begin
              go := false;
              closed := true;
              release tr held;
              if not (Batch.is_empty out) then result := Some out
            end
          done;
          !result
        end)

(* ------------------------------------------------------------------ *)
(* grouping                                                            *)

(* Hash aggregation: the group table (one repr row + accumulators per
   group) is the breaker state; input rows stream through and are never
   retained.  Emission is in first-seen order, so sorted input produces
   sorted output. *)
let hash_group_cursor ~batch_rows ~tr ~gov schema by_idx compiled
    (child : cursor) : cursor =
  deferred (fun () ->
      let groups : (Value.t list, Row.t * Agg_exec.group_state) Hashtbl.t =
        Hashtbl.create 256
      in
      let order = ref [] in
      let rec load () =
        match child () with
        | None -> ()
        | Some b ->
            Batch.iter
              (fun row ->
                let key = Row.key_on by_idx row in
                match Hashtbl.find_opt groups key with
                | Some (_, state) -> Agg_exec.update compiled state row
                | None ->
                    let state = Agg_exec.fresh compiled in
                    Agg_exec.update compiled state row;
                    Hashtbl.add groups key (row, state);
                    acquire tr 1;
                    (* bound the aggregation hash table while it grows,
                       not only at the cursor boundary *)
                    Governor.charge_groups gov (Hashtbl.length groups);
                    order := key :: !order)
              b;
            load ()
      in
      load ();
      let held = Hashtbl.length groups in
      let rows =
        List.rev !order
        |> List.map (fun key ->
               let repr, state = Hashtbl.find groups key in
               Array.append (Row.project by_idx repr)
                 (Agg_exec.finalize compiled state))
        |> Array.of_list
      in
      array_source ~batch_rows ~tr ~held schema rows)

(* Partial pre-aggregation: a bounded group table that flushes its
   (group, partial-accumulator) rows whenever it reaches [cap] live
   groups, so memory stays O(cap + one batch) no matter how many groups
   the input holds — the memory-efficient aggregation technique for
   multi-way joins.  The output stream may therefore contain several
   rows per group (one per flush epoch); it is only correct under a
   finalizing [Group] that re-combines them, which is the only way the
   planner emits this operator. *)
let partial_group_cursor ~batch_rows ~tr ~gov schema by_idx compiled ~cap
    (child : cursor) : cursor =
  let cap = max 1 cap in
  let groups : (Value.t list, Row.t * Agg_exec.group_state) Hashtbl.t =
    Hashtbl.create (min cap 256)
  in
  let order = ref [] in
  let pending = ref [] in
  let finished = ref false in
  let flush () =
    let rows =
      (* [!order] is latest-first; rev_map restores first-seen order *)
      List.rev_map
        (fun key ->
          let repr, state = Hashtbl.find groups key in
          Array.append (Row.project by_idx repr)
            (Agg_exec.finalize compiled state))
        !order
    in
    release tr (Hashtbl.length groups);
    Hashtbl.reset groups;
    order := [];
    pending := rows
  in
  let absorb b =
    Batch.iter
      (fun row ->
        let key = Row.key_on by_idx row in
        match Hashtbl.find_opt groups key with
        | Some (_, state) -> Agg_exec.update compiled state row
        | None ->
            let state = Agg_exec.fresh compiled in
            Agg_exec.update compiled state row;
            Hashtbl.add groups key (row, state);
            acquire tr 1;
            Governor.charge_groups gov (Hashtbl.length groups);
            order := key :: !order)
      b
  in
  let out = Batch.create ~capacity:batch_rows schema in
  fun () ->
    Batch.clear out;
    let eof = ref false in
    while (not !eof) && not (Batch.is_full out) do
      match !pending with
      | row :: rest ->
          Batch.add out row;
          pending := rest
      | [] ->
          if !finished then eof := true
          else begin
            (* refill until the cap trips (a whole input batch is always
               absorbed, so the table can overshoot by one batch) or the
               child is exhausted *)
            let rec pull () =
              if Hashtbl.length groups < cap then
                match child () with
                | Some b ->
                    absorb b;
                    pull ()
                | None -> finished := true
            in
            pull ();
            if Hashtbl.length groups = 0 then eof := true else flush ()
          end
    done;
    if Batch.is_empty out then None else Some out

(* Sort aggregation: the sort buffer is the breaker state. *)
let sort_group_cursor ~batch_rows ~tr schema by_idx compiled ~presorted
    (child : cursor) : cursor =
  deferred (fun () ->
      let rows = drain tr child in
      if not presorted then Array.sort (Row.compare_on by_idx) rows;
      let n = Array.length rows in
      let out = ref [] in
      let i = ref 0 in
      while !i < n do
        let state = Agg_exec.fresh compiled in
        let repr = rows.(!i) in
        let j = ref !i in
        while !j < n && Row.compare_on by_idx repr rows.(!j) = 0 do
          Agg_exec.update compiled state rows.(!j);
          incr j
        done;
        out :=
          Array.append (Row.project by_idx repr)
            (Agg_exec.finalize compiled state)
          :: !out;
        i := !j
      done;
      array_source ~batch_rows ~tr ~held:n schema
        (Array.of_list (List.rev !out)))

(* SQL scalar aggregation yields one row even for empty input; the
   paper's G[GA] (scalar = false) yields zero groups instead. *)
let scalar_fallback compiled schema (inner : cursor) : cursor =
  let emitted = ref false in
  let done_ = ref false in
  fun () ->
    match inner () with
    | Some b ->
        emitted := true;
        Some b
    | None ->
        if !emitted || !done_ then None
        else begin
          done_ := true;
          let state = Agg_exec.fresh compiled in
          Some (Batch.of_array schema [| Agg_exec.finalize compiled state |])
        end

(* ------------------------------------------------------------------ *)
(* compilation: plan -> cursor tree                                    *)

let run_profiled ?(options = default_options) db plan =
  let params = options.params in
  let gov = options.governor in
  let batch_rows = Batch.clamp_capacity options.batch_rows in
  let tr = { live = 0; peak = 0 } in
  let rec compile (p : Plan.t) : cursor * Schema.t * opstat * Colref.t list =
    let label = Plan.label p in
    match p with
    | Plan.Scan { table; schema; _ } ->
        let src = Database.heap db table in
        if Schema.arity schema <> Schema.arity (Heap.schema src) then
          Err.failf Err.Exec
            "scan of %s: schema arity mismatch (plan expects %d columns, \
             stored table has %d)"
            table (Schema.arity schema)
            (Schema.arity (Heap.schema src));
        let st = opstat label [] in
        (* a paged heap charges the governor's page-IO budget at pin
           time, through this handle *)
        let hc = Heap.cursor ~batch_rows ~gov src in
        let cur () =
          match Heap.cursor_next hc with
          | None -> None
          | Some slice -> Some (Batch.of_array schema slice)
        in
        (boundary gov st cur, schema, st, [])
    | Plan.Select { pred; input } -> (
        (* point-lookup path: a [col = const] conjunct over a base-table
           scan with a declared single-column index *)
        let index_path () =
          match input with
          | Plan.Scan { table; schema; rel = _; _ } when options.use_indexes ->
              List.find_map
                (fun atom ->
                  let resolved =
                    match Expr.classify_atom atom with
                    | Expr.Col_eq_const (c, v) -> Some (c, v)
                    | Expr.Col_eq_param (c, pname) -> Some (c, params pname)
                    | _ -> None
                  in
                  match resolved with
                  | Some (c, v)
                    when Schema.mem schema c && not (Value.is_null v) -> (
                      match
                        Database.find_equality_index db ~table
                          ~col:c.Colref.name
                      with
                      | Some def -> Some (def, v)
                      | None -> None)
                  | _ -> None)
                (Expr.conjuncts pred)
              |> Option.map (fun (def, v) -> (def, v, schema, table))
          | _ -> None
        in
        match index_path () with
        | Some (def, v, schema, table) ->
            let candidates =
              Array.of_list (Database.index_lookup db def [ v ])
            in
            acquire tr (Array.length candidates);
            let leaf =
              opstat
                (Printf.sprintf "IndexScan %s via %s" table
                   def.Eager_catalog.Catalog.iname)
                []
            in
            let src =
              observe leaf
                (array_source ~batch_rows ~tr
                   ~held:(Array.length candidates) schema candidates)
            in
            let test = Expr.compile_pred ~params schema pred in
            let st = opstat label [ leaf ] in
            ( boundary gov st (filter_cursor ~batch_rows schema test src),
              schema,
              st,
              [] )
        | None ->
            let child, schema, cst, order = compile input in
            let test = Expr.compile_pred ~params schema pred in
            let st = opstat label [ cst ] in
            ( boundary gov st (filter_cursor ~batch_rows schema test child),
              schema,
              st,
              order ))
    | Plan.Project { dedup; cols; input } ->
        let child, in_schema, cst, order = compile input in
        let idxs = Schema.indices in_schema cols in
        let schema = Schema.project in_schema cols in
        let st = opstat label [ cst ] in
        let cur =
          match (dedup, options.spill) with
          | true, Some sp ->
              (* DISTINCT as a degenerate spilling aggregation: state-less
                 groups whose repr row is the projected output *)
              deferred (fun () ->
                  cursor_of_rows ~batch_rows schema
                    (Spill.hash_agg sp ~gov ~acquire:(acquire tr)
                       ~release:(release tr) ~key:(Row.key_on idxs)
                       ~fresh:(fun () -> ())
                       ~absorb:(fun () _ -> ())
                       ~emit:(fun repr () -> Row.project idxs repr)
                       (rows_of_cursor child)))
          | true, None -> dedup_cursor ~batch_rows ~tr schema idxs child
          | false, _ ->
              map_cursor ~batch_rows schema (fun row -> Row.project idxs row)
                child
        in
        let out_order =
          if dedup && options.spill <> None then []
          else order_through_projection order cols
        in
        (boundary gov st cur, schema, st, out_order)
    | Plan.Map { items; input } ->
        let child, in_schema, cst, order = compile input in
        let schema = Plan.schema_of p in
        let fns =
          List.map (fun (_, e) -> Expr.compile ~params in_schema e) items
        in
        let st = opstat label [ cst ] in
        let cur =
          map_cursor ~batch_rows schema
            (fun row -> Array.of_list (List.map (fun f -> f row) fns))
            child
        in
        (* identity items keep their column's position in the sort order *)
        let identity =
          List.filter_map
            (fun (c, e) ->
              match e with
              | Expr.Col src when Colref.equal src c -> Some c
              | _ -> None)
            items
        in
        let out_order =
          let idset = Colref.set_of_list identity in
          let rec prefix = function
            | c :: rest when Colref.Set.mem c idset -> c :: prefix rest
            | _ -> []
          in
          prefix order
        in
        (boundary gov st cur, schema, st, out_order)
    | Plan.Sort { by; input } ->
        let child, schema, cst, _ = compile input in
        let keys =
          List.map (fun (c, desc) -> (Schema.index_of schema c, desc)) by
        in
        let cmp (a : Row.t) (b : Row.t) =
          let rec go = function
            | [] -> 0
            | (i, desc) :: rest ->
                let c = Value.compare_total a.(i) b.(i) in
                if c <> 0 then if desc then -c else c else go rest
          in
          go keys
        in
        let st = opstat label [ cst ] in
        let cur =
          match options.spill with
          | Some sp ->
              deferred (fun () ->
                  cursor_of_rows ~batch_rows schema
                    (Spill.sort sp ~gov ~acquire:(acquire tr)
                       ~release:(release tr) ~cmp (rows_of_cursor child)))
          | None ->
              deferred (fun () ->
                  let rows = drain tr child in
                  Array.stable_sort cmp rows;
                  array_source ~batch_rows ~tr ~held:(Array.length rows)
                    schema rows)
        in
        (* the known (ascending) order is the prefix before the first DESC *)
        let rec asc_prefix = function
          | (c, false) :: rest -> c :: asc_prefix rest
          | _ -> []
        in
        (boundary gov st cur, schema, st, asc_prefix by)
    | Plan.Product (a, b) ->
        let lcur, lsch, sa, order_a = compile a in
        let rcur, rsch, sb, _ = compile b in
        let schema = Schema.concat lsch rsch in
        let st = opstat label [ sa; sb ] in
        let cur = nested_loop_cursor ~batch_rows ~tr schema None lcur rcur in
        (* outer-loop order: the left order survives *)
        (boundary gov st cur, schema, st, order_a)
    | Plan.Join { pred; left; right } ->
        let lcur, lsch, sl, order_l = compile left in
        let rcur, rsch, sr, order_r = compile right in
        let out_schema = Schema.concat lsch rsch in
        let keys, residual = split_equijoin lsch rsch pred in
        let residual_pred =
          match residual with
          | [] -> None
          | conjs ->
              Some (Expr.compile_pred ~params out_schema (Expr.conj conjs))
        in
        let algo =
          match options.join_algo with
          | Auto -> if keys = [] then Nested_loop else Hash_join
          | a -> a
        in
        let lkeys = List.map fst keys and rkeys = List.map snd keys in
        let out_order, presorted =
          match algo, keys with
          | Nested_loop, _ | _, [] -> (order_l, 0)
          | Hash_join, _ ->
              (* the probe (right) side streams, so its order survives —
                 unless the join may degrade to grace partitioning *)
              ((if options.spill = None then order_r else []), 0)
          | (Merge_join | Auto), _ ->
              (* merge join emits rows in join-key order *)
              let ls = covered_by_order lkeys order_l in
              let rs = covered_by_order rkeys order_r in
              (lkeys, (if ls then 1 else 0) + if rs then 1 else 0)
        in
        let cur =
          match algo, keys with
          | Nested_loop, _ | _, [] ->
              let full = Expr.compile_pred ~params out_schema pred in
              nested_loop_cursor ~batch_rows ~tr out_schema (Some full) lcur
                rcur
          | Hash_join, _ -> (
              let lidx = Schema.indices lsch lkeys in
              let ridx = Schema.indices rsch rkeys in
              match options.spill with
              | Some sp ->
                  let lkey row =
                    if all_non_null lidx row then Some (Row.key_on lidx row)
                    else None
                  in
                  let rkey row =
                    if all_non_null ridx row then Some (Row.key_on ridx row)
                    else None
                  in
                  let combine l r =
                    let row = Row.concat l r in
                    match residual_pred with
                    | Some p when not (Tbool.holds (p row)) -> None
                    | _ -> Some row
                  in
                  deferred (fun () ->
                      cursor_of_rows ~batch_rows out_schema
                        (Spill.grace_join sp ~gov ~acquire:(acquire tr)
                           ~release:(release tr) ~lkey ~rkey ~combine
                           ~left:(rows_of_cursor lcur)
                           ~right:(rows_of_cursor rcur) ()))
              | None ->
                  hash_join_cursor ~batch_rows ~tr out_schema residual_pred
                    lidx ridx lcur rcur)
          | Merge_join, _ ->
              let lidx = Schema.indices lsch lkeys in
              let ridx = Schema.indices rsch rkeys in
              merge_join_cursor ~batch_rows ~tr out_schema residual_pred lidx
                ridx
                ~lsorted:(covered_by_order lkeys order_l)
                ~rsorted:(covered_by_order rkeys order_r)
                lcur rcur
          | Auto, _ -> assert false
        in
        let label =
          if presorted > 0 then
            Printf.sprintf "%s (%d presorted input%s)" label presorted
              (if presorted > 1 then "s" else "")
          else label
        in
        let st = opstat label [ sl; sr ] in
        (boundary gov st cur, out_schema, st, out_order)
    | Plan.Group { by; aggs; scalar; unique_groups; input } ->
        let child, in_schema, cst, in_order = compile input in
        let by_idx = Schema.indices in_schema by in
        let compiled = Agg_exec.compile ~params in_schema aggs in
        let schema = Plan.schema_of p in
        let st = opstat label [ cst ] in
        let out_order =
          if unique_groups then order_through_projection in_order by
          else
            match options.group_algo with
            | Sort_group -> by
            | Hash_group ->
                (* first-seen emission: sorted input stays sorted — but a
                   spilling table may emit partitions out of line *)
                if options.spill = None && covered_by_order by in_order then
                  by
                else []
        in
        let inner =
          if unique_groups then
            (* every group is a single row (Klug/Dayal fast path): pure
               streaming, no breaker state at all *)
            map_cursor ~batch_rows schema
              (fun row ->
                let state = Agg_exec.fresh compiled in
                Agg_exec.update compiled state row;
                Array.append (Row.project by_idx row)
                  (Agg_exec.finalize compiled state))
              child
          else
            match options.group_algo, options.spill with
            | Hash_group, Some sp ->
                deferred (fun () ->
                    cursor_of_rows ~batch_rows schema
                      (Spill.hash_agg sp ~gov ~acquire:(acquire tr)
                         ~release:(release tr)
                         ~on_groups:(Governor.charge_groups gov)
                         ~key:(Row.key_on by_idx)
                         ~fresh:(fun () -> Agg_exec.fresh compiled)
                         ~absorb:(fun st row -> Agg_exec.update compiled st row)
                         ~emit:(fun repr st ->
                           Array.append (Row.project by_idx repr)
                             (Agg_exec.finalize compiled st))
                         (rows_of_cursor child)))
            | Hash_group, None ->
                hash_group_cursor ~batch_rows ~tr ~gov schema by_idx compiled
                  child
            | Sort_group, Some sp ->
                (* external sort, then stream one group at a time off the
                   sorted run *)
                deferred (fun () ->
                    let cmp = Row.compare_on by_idx in
                    let sorted =
                      if covered_by_order by in_order then rows_of_cursor child
                      else
                        Spill.sort sp ~gov ~acquire:(acquire tr)
                          ~release:(release tr) ~cmp (rows_of_cursor child)
                    in
                    let pending = ref None in
                    let next_group () =
                      let first =
                        match !pending with
                        | Some _ as r ->
                            pending := None;
                            r
                        | None -> sorted ()
                      in
                      match first with
                      | None -> None
                      | Some repr ->
                          let state = Agg_exec.fresh compiled in
                          Agg_exec.update compiled state repr;
                          let rec fill () =
                            match sorted () with
                            | Some r when cmp repr r = 0 ->
                                Agg_exec.update compiled state r;
                                fill ()
                            | leftover -> pending := leftover
                          in
                          fill ();
                          Some
                            (Array.append (Row.project by_idx repr)
                               (Agg_exec.finalize compiled state))
                    in
                    cursor_of_rows ~batch_rows schema next_group)
            | Sort_group, None ->
                sort_group_cursor ~batch_rows ~tr schema by_idx compiled
                  ~presorted:(covered_by_order by in_order)
                  child
        in
        let cur =
          if scalar then scalar_fallback compiled schema inner else inner
        in
        (boundary gov st cur, schema, st, out_order)
    | Plan.Partial_group { by; aggs; cap; input } ->
        let child, in_schema, cst, _ = compile input in
        (* unify the partial-aggregation overflow cap onto the same
           per-operator page budget the spilling breakers use *)
        let cap =
          match options.spill with
          | Some sp -> min cap (Spill.rows_budget sp)
          | None -> cap
        in
        let by_idx = Schema.indices in_schema by in
        let compiled = Agg_exec.compile ~params in_schema aggs in
        let schema = Plan.schema_of p in
        let st = opstat label [ cst ] in
        let cur =
          partial_group_cursor ~batch_rows ~tr ~gov schema by_idx compiled
            ~cap child
        in
        (* flush epochs may repeat groups, so no order survives *)
        (boundary gov st cur, schema, st, [])
  in
  (* Pool reservations are cross-statement state: release whatever the
     spill paths still hold even when a governor abort or injected fault
     unwinds mid-stream. *)
  let finally () =
    match options.spill with Some sp -> Spill.cleanup sp | None -> ()
  in
  Fun.protect ~finally (fun () ->
      let cur, schema, st, order = compile plan in
      let out = Heap.create schema in
      let rec drain_root () =
        match cur () with
        | None -> ()
        | Some b ->
            Batch.iter (Heap.insert out) b;
            drain_root ()
      in
      drain_root ();
      (out, realize st, order, { peak_live_rows = tr.peak; batch_rows }))

let run_ordered ?options db plan =
  let h, st, order, _ = run_profiled ?options db plan in
  (h, st, order)

let run ?options db plan =
  let h, st, _, _ = run_profiled ?options db plan in
  (h, st)

let run_rows ?options db plan =
  let h, _ = run ?options db plan in
  Heap.to_list h (* breaker-ok: API conversion of the final result *)

(* The typed-error boundary: a query either completes or yields an
   [Error] — budget breaches, injected faults, missing tables and legacy
   raises all surface here as values.  Base tables are never mutated by
   evaluation, so an abort leaves the database consistent. *)
let run_checked ?options db plan =
  Err.protect ~kind:Err.Exec (fun () -> run ?options db plan)

let run_rows_checked ?options db plan =
  Result.map
    (fun (h, _) ->
      Heap.to_list h (* breaker-ok: API conversion of the final result *))
    (run_checked ?options db plan)

let multiset_equal a b =
  let tally rows =
    let t = Hashtbl.create 64 in
    List.iter
      (fun row ->
        let key = Row.key_on (Array.init (Array.length row) Fun.id) row in
        let n = Option.value (Hashtbl.find_opt t key) ~default:0 in
        Hashtbl.replace t key (n + 1))
      rows;
    t
  in
  List.length a = List.length b
  &&
  let ta = tally a and tb = tally b in
  Hashtbl.length ta = Hashtbl.length tb
  && Hashtbl.fold (fun k n acc -> acc && Hashtbl.find_opt tb k = Some n) ta true
