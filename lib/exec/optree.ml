type t = { label : string; out_rows : int; batches : int; children : t list }

let leaf ?(batches = 0) label out_rows = { label; out_rows; batches; children = [] }
let node ?(batches = 0) label out_rows children =
  { label; out_rows; batches; children }

let in_rows t = List.map (fun c -> c.out_rows) t.children

let rec total_produced t =
  t.out_rows + List.fold_left (fun acc c -> acc + total_produced c) 0 t.children

let has_prefix ~prefix t =
  String.length t.label >= String.length prefix
  && String.sub t.label 0 (String.length prefix) = prefix

let rec find ~prefix t =
  if has_prefix ~prefix t then Some t
  else List.find_map (find ~prefix) t.children

let find_all ~prefix t =
  (* pre-order, so parents come before their subtrees and the left join
     input is listed before the right one *)
  let rec go acc t =
    let acc = if has_prefix ~prefix t then t :: acc else acc in
    List.fold_left go acc t.children
  in
  List.rev (go [] t)

let pp ppf t =
  let rec go indent n =
    Format.fprintf ppf "%s%s   -- %d rows (%d batch%s)@," indent n.label
      n.out_rows n.batches
      (if n.batches = 1 then "" else "es");
    List.iter (go (indent ^ "  ")) n.children
  in
  Format.fprintf ppf "@[<v>";
  go "" t;
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t
