open Eager_robust

type t = { label : string; out_rows : int; children : t list }

let leaf label out_rows = { label; out_rows; children = [] }
let node label out_rows children = { label; out_rows; children }

(* Operator-boundary bookkeeping: every operator finishes by building its
   statistics node, so this is where per-query budgets are enforced and
   where the [exec.next] fault hook lives.  Raises [Err.Error_exn] (kind
   [Resource]) on a budget breach — the query unwinds having touched only
   its own output heaps. *)
let boundary gov label out_rows children =
  Fault.trip "exec.next";
  Governor.charge_rows gov out_rows;
  node label out_rows children
let in_rows t = List.map (fun c -> c.out_rows) t.children

let rec total_produced t =
  t.out_rows + List.fold_left (fun acc c -> acc + total_produced c) 0 t.children

let rec find ~prefix t =
  if String.length t.label >= String.length prefix
     && String.sub t.label 0 (String.length prefix) = prefix
  then Some t
  else List.find_map (find ~prefix) t.children

let pp ppf t =
  let rec go indent n =
    Format.fprintf ppf "%s%s   -- %d rows@," indent n.label n.out_rows;
    List.iter (go (indent ^ "  ")) n.children
  in
  Format.fprintf ppf "@[<v>";
  go "" t;
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t
