(** Runtime evaluation of aggregation expressions.

    A compiled aggregate owns mutable accumulator state per group; [update]
    folds one input row in and [finalize] evaluates the arithmetic shell over
    the accumulated aggregate-function results.

    Accumulators are constant-size per group, which is what lets the batched
    pull pipeline's grouping operators buffer one [group_state] per group
    rather than the grouped input itself (see DESIGN.md §11). *)

open Eager_value
open Eager_schema
open Eager_algebra

type compiled

val compile : ?params:Eager_expr.Expr.env -> Schema.t -> Agg.t list -> compiled

type group_state

val fresh : compiled -> group_state
val update : compiled -> group_state -> Row.t -> unit
val finalize : compiled -> group_state -> Value.t array
(** One value per aggregate, in declaration order. *)
