(* Reference evaluator: the deliberately naive, whole-relation
   materializing interpreter the batched pipeline is differentially
   tested against.

   Every operator builds its complete output as a list before the parent
   looks at it — exactly the execution model the pull pipeline replaced.
   It shares only the leaf machinery with [Exec] (expression compilation,
   aggregate accumulators, [Row.key_on] grouping keys) and none of the
   operator algorithms: joins are always nested loops over full
   predicates, grouping is always generic list-bucketed hashing (the
   [unique_groups] fast path is ignored), and no order is tracked.  An
   agreement bug in [Exec] therefore cannot hide here.

   This file is exempt from the lint ban on whole-relation
   materialization in lib/exec — materializing is its entire point. *)

open Eager_value
open Eager_schema
open Eager_expr
open Eager_storage
open Eager_algebra

let eval ?(params = Expr.no_params) db (plan : Plan.t) : Row.t list =
  let rec go (p : Plan.t) : Schema.t * Row.t list =
    match p with
    | Plan.Scan { table; schema; _ } ->
        let src = Database.heap db table in
        if Schema.arity schema <> Schema.arity (Heap.schema src) then
          invalid_arg "Ref_eval: scan arity mismatch";
        (schema, Heap.to_list src (* breaker-ok: reference semantics *))
    | Plan.Select { pred; input } ->
        let schema, rows = go input in
        let test = Expr.compile_pred ~params schema pred in
        (schema, List.filter (fun r -> Tbool.holds (test r)) rows)
    | Plan.Project { dedup; cols; input } ->
        let in_schema, rows = go input in
        let idxs = Schema.indices in_schema cols in
        let schema = Schema.project in_schema cols in
        let projected = List.map (Row.project idxs) rows in
        if not dedup then (schema, projected)
        else begin
          let seen = Hashtbl.create 64 in
          let all = Array.init (List.length cols) Fun.id in
          ( schema,
            List.filter
              (fun r ->
                let key = Row.key_on all r in
                if Hashtbl.mem seen key then false
                else begin
                  Hashtbl.add seen key ();
                  true
                end)
              projected )
        end
    | Plan.Map { items; input } ->
        let in_schema, rows = go input in
        let fns =
          List.map (fun (_, e) -> Expr.compile ~params in_schema e) items
        in
        ( Plan.schema_of p,
          List.map
            (fun r -> Array.of_list (List.map (fun f -> f r) fns))
            rows )
    | Plan.Sort { by; input } ->
        let schema, rows = go input in
        let keys =
          List.map (fun (c, desc) -> (Schema.index_of schema c, desc)) by
        in
        let cmp (a : Row.t) (b : Row.t) =
          let rec loop = function
            | [] -> 0
            | (i, desc) :: rest ->
                let c = Value.compare_total a.(i) b.(i) in
                if c <> 0 then if desc then -c else c else loop rest
          in
          loop keys
        in
        (schema, List.stable_sort cmp rows)
    | Plan.Product (a, b) ->
        let lsch, ls = go a in
        let rsch, rs = go b in
        ( Schema.concat lsch rsch,
          List.concat_map (fun l -> List.map (Row.concat l) rs) ls )
    | Plan.Join { pred; left; right } ->
        let lsch, ls = go left in
        let rsch, rs = go right in
        let schema = Schema.concat lsch rsch in
        let test = Expr.compile_pred ~params schema pred in
        ( schema,
          List.concat_map
            (fun l ->
              List.filter_map
                (fun r ->
                  let row = Row.concat l r in
                  if Tbool.holds (test row) then Some row else None)
                rs)
            ls )
    | Plan.Group { by; aggs; scalar; unique_groups = _; input } ->
        let in_schema, rows = go input in
        let by_idx = Schema.indices in_schema by in
        let compiled = Agg_exec.compile ~params in_schema aggs in
        let groups = Hashtbl.create 64 in
        let order = ref [] in
        List.iter
          (fun row ->
            let key = Row.key_on by_idx row in
            match Hashtbl.find_opt groups key with
            | Some (_, state) -> Agg_exec.update compiled state row
            | None ->
                let state = Agg_exec.fresh compiled in
                Agg_exec.update compiled state row;
                Hashtbl.add groups key (row, state);
                order := key :: !order)
          rows;
        let out =
          (* [!order] is latest-first, so rev_map restores first-seen order *)
          List.rev_map
            (fun key ->
              let repr, state = Hashtbl.find groups key in
              Array.append (Row.project by_idx repr)
                (Agg_exec.finalize compiled state))
            !order
        in
        let out =
          if scalar && out = [] then
            [ Agg_exec.finalize compiled (Agg_exec.fresh compiled) ]
          else out
        in
        (Plan.schema_of p, out)
    | Plan.Partial_group { by; aggs; cap = _; input } ->
        (* A full group table is a valid partial aggregation (the flush
           cap was simply never reached), so the reference semantics are
           plain grouping — one (group, partial) row per group. *)
        go (Plan.Group { by; aggs; scalar = false; unique_groups = false;
                         input })
  in
  snd (go plan)
