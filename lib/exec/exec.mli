(** Plan interpreter.

    Evaluates a logical plan against a database instance, materialising each
    operator's output and recording per-operator cardinalities.  Join and
    group-by algorithms are selectable; [`Auto] uses a hash join whenever the
    predicate contains an equi-join conjunct and falls back to nested loops
    otherwise.

    Semantics notes:
    - selections and join predicates keep a row only when the condition
      {i holds} (3VL, unknown = false), so NULL join keys never match;
    - DISTINCT projection and grouping use [=ⁿ] (NULL equals NULL);
    - a [Group] marked [scalar] produces exactly one row even for empty
      input (SQL aggregation without GROUP BY); a non-scalar [Group] over
      an empty input yields zero rows even when [by] is empty — the
      paper's [F[AA] G[GA]] semantics, which E2 relies on when [GA1+] is
      empty. *)

open Eager_schema
open Eager_expr
open Eager_storage
open Eager_algebra
open Eager_robust

type join_algo = Nested_loop | Hash_join | Merge_join | Auto
type group_algo = Hash_group | Sort_group

type options = {
  join_algo : join_algo;
  group_algo : group_algo;
  params : Expr.env;
  use_indexes : bool;
      (** when a selection over a base-table scan contains a [col = const]
          conjunct and a single-column index is declared on [col], fetch
          the candidates through the index instead of scanning (the
          statistics tree shows an [IndexScan] leaf) *)
  governor : Governor.t;
      (** per-query resource budgets, enforced at every operator boundary
          and inside hash aggregation; defaults to
          {!Eager_robust.Governor.unlimited} *)
}

val default_options : options

val run : ?options:options -> Database.t -> Plan.t -> Heap.t * Optree.t
(** May raise [Err.Error_exn] (budget breach, missing table, arity
    mismatch); use {!run_checked} for the value-level error channel. *)

val run_rows : ?options:options -> Database.t -> Plan.t -> Row.t list
(** [run] then [Heap.to_list], discarding statistics. *)

val run_checked :
  ?options:options -> Database.t -> Plan.t -> (Heap.t * Optree.t, Err.t) result
(** The fault-tolerant entry point: every failure mode of evaluation —
    resource-budget breaches, injected faults, unknown tables, arity
    mismatches, legacy [Failure]/[Invalid_argument] raises — comes back
    as a typed [Error].  Evaluation writes only to fresh output heaps, so
    an aborted query leaves no observable mutation. *)

val run_rows_checked :
  ?options:options -> Database.t -> Plan.t -> (Row.t list, Err.t) result

val run_ordered :
  ?options:options -> Database.t -> Plan.t -> Heap.t * Optree.t * Colref.t list
(** Like [run], also returning the column list the output is {i known} to
    be sorted on (ascending, [Value.compare_total] order; [[]] when
    unknown).  This implements the paper's Section 7 observation: sort-based
    grouping leaves its output sorted on the grouping columns, selections
    and joins preserve their outer input's order, and a merge join skips
    re-sorting an input whose known order covers the join keys (the
    [sorted_inputs] count in the join's statistics label records this). *)

val split_equijoin :
  Schema.t -> Schema.t -> Expr.t -> (Colref.t * Colref.t) list * Expr.t list
(** Partition a join predicate's conjuncts into equi-join column pairs
    (left column, right column) and residual conjuncts. *)

val multiset_equal : Row.t list -> Row.t list -> bool
(** Multiset equality under [=ⁿ] — the equivalence the Main Theorem is
    stated in.  Exposed for tests and the theorem checker. *)
