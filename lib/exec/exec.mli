(** Plan interpreter: a batched, pull-based operator pipeline.

    Evaluates a logical plan against a database instance by compiling it
    to a tree of cursors that stream fixed-size {!Batch} slices upward on
    demand.  Scans, selections, projections, maps and the probe side of
    hash joins are fully pipelined; only true pipeline breakers
    materialize rows (hash-join build side, nested-loop inner, sort
    buffers, merge-join inputs, aggregation tables).  Per-operator row
    and batch counts are recorded into an {!Optree.t}, and the peak
    number of simultaneously live intermediate rows is tracked — the
    memory axis on which the paper's eager transformation pays off.
    Join and group-by algorithms are selectable; [`Auto] uses a hash
    join whenever the predicate contains an equi-join conjunct and falls
    back to nested loops otherwise.  Hash joins build on the {i left}
    input and stream the right (Volcano convention), so E2's join builds
    over the already-aggregated side.

    Semantics notes:
    - selections and join predicates keep a row only when the condition
      {i holds} (3VL, unknown = false), so NULL join keys never match;
    - DISTINCT projection and grouping use [=ⁿ] (NULL equals NULL);
    - a [Group] marked [scalar] produces exactly one row even for empty
      input (SQL aggregation without GROUP BY); a non-scalar [Group] over
      an empty input yields zero rows even when [by] is empty — the
      paper's [F[AA] G[GA]] semantics, which E2 relies on when [GA1+] is
      empty. *)

open Eager_schema
open Eager_expr
open Eager_storage
open Eager_algebra
open Eager_robust

type join_algo = Nested_loop | Hash_join | Merge_join | Auto
type group_algo = Hash_group | Sort_group

type options = {
  join_algo : join_algo;
  group_algo : group_algo;
  params : Expr.env;
  use_indexes : bool;
      (** when a selection over a base-table scan contains a [col = const]
          conjunct and a single-column index is declared on [col], fetch
          the candidates through the index instead of scanning (the
          statistics tree shows an [IndexScan] leaf) *)
  governor : Governor.t;
      (** per-query resource budgets, charged per batch at every cursor
          boundary and inside hash aggregation; defaults to
          {!Eager_robust.Governor.unlimited} *)
  batch_rows : int;
      (** rows per batch in the pull pipeline (default
          {!Batch.default_rows}); values below 1 are rejected and values
          above {!Batch.max_capacity} are clamped, so [batch_rows =
          max_int] emulates operator-at-a-time materialization *)
  spill : Spill.config option;
      (** when set, every pipeline breaker runs against a per-operator
          page budget: sorts become external merge sorts, hash
          aggregation and DISTINCT spill non-resident keys to hash
          partitions, hash joins degrade to grace partitioning, and
          [Partial_group] caps its table at the same budget.  In-budget
          state is reserved against the buffer pool (visible in the
          pinned-page telemetry); overflow goes to runs on the scratch
          pager.  Spilling operators promise no output order.  [None]
          (the default) keeps every breaker fully in memory, exactly as
          before *)
}

val default_options : options

type profile = {
  peak_live_rows : int;
      (** high-water mark of simultaneously live intermediate rows held
          by pipeline breakers (hash builds, sort buffers, group tables,
          index candidate lists); the final output heap is excluded *)
  batch_rows : int;  (** the clamped batch size actually used *)
}

val run_profiled :
  ?options:options ->
  Database.t ->
  Plan.t ->
  Heap.t * Optree.t * Colref.t list * profile
(** [run_ordered] plus the execution profile; the bench sweep uses the
    profile to show that E2's peak intermediate footprint sits strictly
    below E1's on group-reducing workloads. *)

val run : ?options:options -> Database.t -> Plan.t -> Heap.t * Optree.t
(** May raise [Err.Error_exn] (budget breach, missing table, arity
    mismatch); use {!run_checked} for the value-level error channel. *)

val run_rows : ?options:options -> Database.t -> Plan.t -> Row.t list
(** [run] then [Heap.to_list], discarding statistics. *)

val run_checked :
  ?options:options -> Database.t -> Plan.t -> (Heap.t * Optree.t, Err.t) result
(** The fault-tolerant entry point: every failure mode of evaluation —
    resource-budget breaches, injected faults, unknown tables, arity
    mismatches, legacy [Failure]/[Invalid_argument] raises — comes back
    as a typed [Error].  Evaluation writes only to fresh output heaps, so
    an aborted query leaves no observable mutation. *)

val run_rows_checked :
  ?options:options -> Database.t -> Plan.t -> (Row.t list, Err.t) result

val run_ordered :
  ?options:options -> Database.t -> Plan.t -> Heap.t * Optree.t * Colref.t list
(** Like [run], also returning the column list the output is {i known} to
    be sorted on (ascending, [Value.compare_total] order; [[]] when
    unknown).  This implements the paper's Section 7 observation: sort-based
    grouping leaves its output sorted on the grouping columns, selections
    and joins preserve their outer input's order, and a merge join skips
    re-sorting an input whose known order covers the join keys (the
    [sorted_inputs] count in the join's statistics label records this). *)

val split_equijoin :
  Schema.t -> Schema.t -> Expr.t -> (Colref.t * Colref.t) list * Expr.t list
(** Partition a join predicate's conjuncts into equi-join column pairs
    (left column, right column) and residual conjuncts. *)

val multiset_equal : Row.t list -> Row.t list -> bool
(** Multiset equality under [=ⁿ] — the equivalence the Main Theorem is
    stated in.  Exposed for tests and the theorem checker. *)
