open Eager_schema

type t = {
  schema : Schema.t;
  rows : Row.t array; (* capacity-sized; slots >= len are garbage *)
  mutable len : int;
}

let default_rows = 1024

(* Capacities are clamped so that a caller asking for "one huge batch"
   (e.g. batch_rows = max_int to emulate full materialization) does not
   allocate a max_int-sized array up front. *)
let max_capacity = 65_536

let clamp_capacity n = if n < 1 then 1 else min n max_capacity

let dummy_row : Row.t = [||]

let create ?(capacity = default_rows) schema =
  let capacity = clamp_capacity capacity in
  { schema; rows = Array.make capacity dummy_row; len = 0 }

let schema b = b.schema
let length b = b.len
let capacity b = Array.length b.rows
let is_empty b = b.len = 0
let is_full b = b.len >= Array.length b.rows

let clear b = b.len <- 0

let add b row =
  (* callers check [is_full] before adding; a full batch is a bug in the
     operator, not a data condition *)
  if is_full b then invalid_arg "Batch.add: batch is full";
  b.rows.(b.len) <- row;
  b.len <- b.len + 1

let get b i =
  if i < 0 || i >= b.len then invalid_arg "Batch.get: out of bounds";
  b.rows.(i)

let iter f b =
  for i = 0 to b.len - 1 do
    f b.rows.(i)
  done

let fold f init b =
  let acc = ref init in
  for i = 0 to b.len - 1 do
    acc := f !acc b.rows.(i)
  done;
  !acc

let of_array schema rows = { schema; rows; len = Array.length rows }

let to_array b = Array.sub b.rows 0 b.len
