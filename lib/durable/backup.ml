(* Online hot backup: a checksummed, LSN-stamped snapshot plus the WAL
   tail, copied into a fresh directory and sealed by a manifest.  See
   backup.mli for the trust model; the invariant that matters here is
   that [verify] must refuse a backup in which ANY byte of any file
   changed — a backup is an archival artifact, so even damage a live
   recovery would shrug off (a torn WAL tail) is corruption. *)

open Eager_robust
open Eager_parser

let ( let* ) = Err.( let* )

let manifest_name = "backup.eagerdb"
let snapshot_name = "snapshot.eagerdb"
let manifest_magic = "eagerdb backup v1"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* write [content] to [path] in two halves with [fault] tripped between
   them, then fsync — so an injected crash mid-copy deterministically
   leaves a torn file that [verify] rejects *)
let write_file ?fault path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let half = String.length content / 2 in
      output_substring oc content 0 half;
      (match fault with None -> () | Some point -> Fault.trip point);
      output_substring oc content half (String.length content - half);
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc))

(* a backup lands only in a fresh directory: never silently clobber an
   existing database or an earlier backup *)
let ensure_fresh_dir dir =
  if Sys.file_exists dir then
    if not (Sys.is_directory dir) then
      Error (Err.io "backup target %s exists and is not a directory" dir)
    else if Sys.readdir dir <> [||] then
      Error (Err.io "backup target %s exists and is not empty" dir)
    else Ok ()
  else Err.protect ~kind:Err.Io (fun () -> Unix.mkdir dir 0o755)

let write ~db ~lsn ~epoch ~wal_path ~dir =
  let result =
    let* () = ensure_fresh_dir dir in
    (* the caller holds the commit barrier, so the snapshot and the WAL
       tail describe the same instant: every record in the tail is at or
       below [lsn] and already folded into the snapshot *)
    let* () = Persist.save ~wal_lsn:lsn db ~dir in
    let* snapshot_bytes =
      Err.protect ~kind:Err.Io (fun () ->
          read_file (Filename.concat dir snapshot_name))
    in
    (* copy only the valid prefix of the WAL: a torn tail on the primary
       (a poisoned handle's half-written record) was never acknowledged
       and must not ride into an archive that [verify] will hold to a
       stricter standard *)
    let* wal_bytes =
      if not (Sys.file_exists wal_path) then Ok "eagerdb wal v1\n"
      else
        let* _records, tail = Wal.scan wal_path in
        let* content = Err.protect ~kind:Err.Io (fun () -> read_file wal_path) in
        match tail with
        | Wal.Complete -> Ok content
        | Wal.Torn { valid_len; _ } -> Ok (String.sub content 0 valid_len)
    in
    let* () =
      Err.protect ~kind:Err.Io (fun () ->
          write_file ~fault:"backup.copy"
            (Filename.concat dir Wal.file_name)
            wal_bytes)
    in
    (* the manifest seals the backup: written last, so a crash at any
       earlier instant leaves a directory [verify] refuses outright *)
    let body =
      Printf.sprintf "%s\nlsn %d\nepoch %d\nsnapshot %s\nwal %s\n"
        manifest_magic lsn epoch
        (Digest.to_hex (Digest.string snapshot_bytes))
        (Digest.to_hex (Digest.string wal_bytes))
    in
    (* the seal line checksums the manifest itself, so fields the file
       checksums cannot vouch for (the epoch) are still tamper-evident *)
    let manifest =
      body ^ Printf.sprintf "seal %s\n" (Digest.to_hex (Digest.string body))
    in
    let* () =
      Err.protect ~kind:Err.Io (fun () ->
          write_file (Filename.concat dir manifest_name) manifest)
    in
    Ok lsn
  in
  Err.with_context (Printf.sprintf "backup to %s" dir) result

(* manifests written before failover lack the epoch and seal lines and
   parse as epoch 0 — the same back-compat rule as 5-field WAL headers.
   Epoch-bearing manifests must carry a valid seal: the epoch is the one
   field no file checksum vouches for. *)
let parse_manifest content =
  let lines_epoch =
    match String.split_on_char '\n' content with
    | [ magic; lsn_line; epoch_line; snap_line; wal_line; seal_line; "" ]
      when String.equal magic manifest_magic ->
        let body =
          String.concat "\n"
            [ magic; lsn_line; epoch_line; snap_line; wal_line; "" ]
        in
        if String.equal seal_line ("seal " ^ Digest.to_hex (Digest.string body))
        then Some ((lsn_line, snap_line, wal_line), Some epoch_line)
        else None
    | [ magic; lsn_line; snap_line; wal_line; "" ]
      when String.equal magic manifest_magic ->
        Some ((lsn_line, snap_line, wal_line), None)
    | _ -> None
  in
  match lines_epoch with
  | Some ((lsn_line, snap_line, wal_line), epoch_line) -> (
      let field prefix line =
        let p = prefix ^ " " in
        let pl = String.length p in
        if String.length line > pl && String.sub line 0 pl = p then
          Some (String.sub line pl (String.length line - pl))
        else None
      in
      let epoch =
        match epoch_line with
        | None -> Some 0
        | Some line ->
            Option.bind (field "epoch" line) int_of_string_opt
      in
      match
        ( field "lsn" lsn_line,
          epoch,
          field "snapshot" snap_line,
          field "wal" wal_line )
      with
      | Some lsn_s, Some epoch, Some snap_md5, Some wal_md5 -> (
          match int_of_string_opt lsn_s with
          | Some lsn
            when lsn >= 0 && epoch >= 0
                 && String.length snap_md5 = 32
                 && String.length wal_md5 = 32 ->
              Ok (lsn, epoch, snap_md5, wal_md5)
          | _ -> Error (Err.io "backup manifest rejected: malformed fields"))
      | _ -> Error (Err.io "backup manifest rejected: malformed fields"))
  | None -> Error (Err.io "backup manifest rejected: not an eagerdb backup")

let verify ~dir =
  let result =
    let must_read name =
      let path = Filename.concat dir name in
      if not (Sys.file_exists path) then
        Error (Err.io "backup incomplete: %s is missing" name)
      else Err.protect ~kind:Err.Io (fun () -> read_file path)
    in
    let* manifest = must_read manifest_name in
    let* lsn, epoch, snap_md5, wal_md5 = parse_manifest manifest in
    let check name content recorded =
      let actual = Digest.to_hex (Digest.string content) in
      if String.equal actual recorded then Ok ()
      else
        Error
          (Err.io
             "backup rejected: %s fails its manifest checksum (stored %s, \
              computed %s)"
             name recorded actual)
    in
    let* snapshot_bytes = must_read snapshot_name in
    let* () = check snapshot_name snapshot_bytes snap_md5 in
    let* wal_bytes = must_read Wal.file_name in
    let* () = check Wal.file_name wal_bytes wal_md5 in
    (* belt and braces beyond the manifest: the snapshot's own trailer
       must verify, and the WAL must scan clean end to end — in an
       archive even a torn tail is corruption, not crash residue *)
    let* db_lsn = Persist.load_with_lsn ~dir () in
    let* records, tail = Wal.scan (Filename.concat dir Wal.file_name) in
    let* () =
      match tail with
      | Wal.Complete -> Ok ()
      | Wal.Torn { dropped; _ } ->
          Error
            (Err.io "backup rejected: WAL tail is torn (%d trailing byte(s))"
               dropped)
    in
    let* () =
      match List.rev records with
      | { Wal.seq; _ } :: _ when seq > lsn ->
          Error
            (Err.io
               "backup rejected: WAL reaches record #%d beyond the manifest \
                lsn %d"
               seq lsn)
      | _ -> Ok ()
    in
    let* () =
      match
        List.find_opt (fun (r : Wal.record) -> r.epoch > epoch) records
      with
      | Some r ->
          Error
            (Err.io
               "backup rejected: record #%d carries epoch %d beyond the \
                manifest epoch %d"
               r.seq r.epoch epoch)
      | None -> Ok ()
    in
    let _db, snap_lsn = db_lsn in
    if snap_lsn <> lsn then
      Error
        (Err.io "backup rejected: snapshot is stamped lsn %d, manifest says %d"
           snap_lsn lsn)
    else Ok lsn
  in
  Err.with_context (Printf.sprintf "verifying backup %s" dir) result

let restore ~from_dir ~to_dir =
  let result =
    let* lsn = verify ~dir:from_dir in
    let* manifest =
      Err.protect ~kind:Err.Io (fun () ->
          read_file (Filename.concat from_dir manifest_name))
    in
    let* _lsn, epoch, _snap_md5, _wal_md5 = parse_manifest manifest in
    let* () = ensure_fresh_dir to_dir in
    let copy name =
      Err.protect ~kind:Err.Io (fun () ->
          write_file (Filename.concat to_dir name)
            (read_file (Filename.concat from_dir name)))
    in
    let* () = copy snapshot_name in
    let* () = copy Wal.file_name in
    (* re-seed the epoch file so the restored node rejoins the cluster
       at the epoch the backup was taken under, not at 0 *)
    let* () =
      if epoch > 0 then Wal.persist_epoch ~dir:to_dir epoch else Ok ()
    in
    Ok lsn
  in
  Err.with_context
    (Printf.sprintf "restoring %s into %s" from_dir to_dir)
    result
