(** Checksummed, length-prefixed write-ahead log.

    One [wal.eagerdb] file per database directory.  Layout:

    {v
    file   := "eagerdb wal v1\n" record*
    record := "#rec <seq> <kind> <len> <md5hex> <epoch>\n" <payload> "\n"
    kind   := "stmt" | "abort"
    v}

    [seq] numbers are strictly contiguous: every record — statement or
    abort marker — consumes the next integer.  [len] is the payload's
    byte length and [md5hex] its MD5 digest, so a record is
    self-validating without trusting anything after it.  A [stmt]
    payload is the SQL text of one committed statement; an [abort]
    payload is the decimal [seq] of an earlier [stmt] record whose
    apply step failed after logging — replay must skip the victim.

    [epoch] is the cluster epoch the record was committed under (see
    failover in DESIGN.md §15): it only ever ratchets up within a file —
    a decrease is rejected as corruption, since promotions bump the
    epoch and fencing stops a stale primary from appending.  Logs
    written before the field existed carry 5-field headers and parse as
    epoch 0.

    Torn-tail rule: damage confined to the final bytes of the file
    (half-written header line, short payload, missing terminator, bad
    checksum on the last record) is the expected residue of a crash
    mid-append and is reported as {!Torn} so recovery can truncate it
    away.  The same damage {i followed by more records} can only be bit
    rot or tampering and is rejected with a typed [Io] error, as is any
    sequence gap. *)

open Eager_robust

val file_name : string
(** ["wal.eagerdb"]. *)

val path : dir:string -> string

type kind = Stmt | Abort

type record = { seq : int; kind : kind; payload : string; epoch : int }

type tail =
  | Complete
  | Torn of { valid_len : int; dropped : int }
      (** the file is good up to byte [valid_len]; [dropped] trailing
          bytes belong to a record that never finished *)

val scan : string -> (record list * tail, Err.t) result
(** Read and validate the whole log.  A missing file is an empty
    complete log.  Mid-log corruption is an [Error]; a torn tail is
    data. *)

val truncate_to : string -> int -> (unit, Err.t) result
(** Chop a torn tail: shorten the file to the [valid_len] reported by
    {!scan}. *)

type t
(** An open append handle.  After any failed write the handle is
    {e poisoned} — every later operation refuses with a typed error —
    because the on-disk suffix is no longer known to match what the
    caller believes was logged.  Recovery (re-scan) is the only way
    back. *)

val open_append :
  path:string ->
  next_seq:int ->
  ?epoch:int ->
  ?rec_epoch:int ->
  unit ->
  (t, Err.t) result
(** Open for appending, creating the file (with its header) if absent.
    The caller must have {!scan}ned first and pass the sequence number
    the next record should carry; [epoch] (default 0) is stamped into
    subsequent local appends, and [rec_epoch] (default 0) is the epoch
    of the log's last existing record — the monotonicity floor for
    appends. *)

val next_seq : t -> int
val broken : t -> bool

val epoch : t -> int
(** The epoch stamped into local appends — the node's fencing floor. *)

val rec_epoch : t -> int
(** The epoch of the last record appended (or recovered): the log's
    high-water mark.  Lags {!epoch} on a standby that has observed a
    promotion but not yet applied the new primary's records; an append
    below it is refused (scan would flag the file as corrupt). *)

val set_epoch : t -> int -> unit
(** Raise the handle's epoch (lower values are ignored — epochs only
    ratchet up). *)

val pending : t -> int
(** Records flushed to the OS but not yet covered by an fsync — the
    group-commit window.  Zero after {!append}, {!sync} or
    {!truncate}. *)

val bytes_logged : t -> int
(** Cumulative bytes appended through this handle since it was opened
    (telemetry; survives nothing — it is not persisted). *)

val append_buffered : ?epoch:int -> t -> kind:kind -> string -> (int, Err.t) result
(** Log one record {e without} fsyncing: the record is fully written and
    flushed to the OS but is {b not committed} until a later {!sync}
    (or {!append}) fsyncs the file.  The building block of group
    commit: a writer batch is appended buffered, then one {!sync}
    commits the lot with a single fsync.  The [wal.append] fault hook
    fires mid-record exactly as for {!append}.  [?epoch] overrides the
    handle's epoch stamp — a standby ingesting shipped records passes
    the record's own epoch so its log stays byte-identical to the
    primary's. *)

val sync : t -> (unit, Err.t) result
(** The group-commit point: one fsync covering every record appended
    since the last sync.  The [wal.group_commit] fault hook fires after
    the batch is flushed but before the fsync, so a simulated crash
    there leaves a suffix of uncommitted (possibly torn) records that
    recovery truncates or replays per the torn-tail rule — committed
    statements are exactly those acknowledged after a sync. *)

val append : ?epoch:int -> t -> kind:kind -> string -> (int, Err.t) result
(** Log one record and return its sequence number.  The record is fully
    written, flushed and fsynced before [Ok] — the fsync is the commit
    point.  Fault hooks: [wal.append] fires after only half the record
    bytes reached the OS (a crash here leaves a torn tail and the record
    is {e not} committed); [wal.fsync] fires after the full record is
    flushed but before fsync (the record survives an orderly OS, so
    recovery replays it). *)

val truncate : t -> (unit, Err.t) result
(** Reset the log to header-only — called after a checkpoint has made
    every record redundant.  A fresh file is written and fsynced beside
    the log, then atomically renamed over it; the [wal.truncate] fault
    point fires between fsync and rename, so a crash there leaves the
    old log intact (recovery detects it is fully covered by the
    snapshot's LSN and finishes the job).  Sequence numbering continues;
    it never restarts. *)

val close : t -> unit

(** {1 Epoch persistence}

    The cluster epoch must survive a checkpoint (which truncates every
    record, and with them the only in-log trace of the epoch), so it
    lives in its own one-line file [epoch.eagerdb], rewritten atomically
    on every ratchet.  A missing file reads as epoch 0. *)

val epoch_file_name : string
(** ["epoch.eagerdb"]. *)

val load_epoch : dir:string -> (int, Err.t) result

val persist_epoch : dir:string -> int -> (unit, Err.t) result
(** Durably record [e]: temp write + fsync + atomic rename.  The
    [wal.epoch] fault point fires between fsync and rename — a crash
    there leaves the old epoch, which is safe because an epoch is only
    acted on after it is durably recorded. *)
