(* A write-ahead-logged database session.  See durable.mli for the
   protocol; the invariants that matter here:

   - the WAL fsync is the commit point: a statement is committed iff its
     record (header + payload + terminator) is fully on disk,
   - apply failures after logging leave an abort marker so replay skips
     the record instead of re-raising on a statement that never took,
   - a snapshot's [wal-lsn] stamp makes checkpointing a two-step
     protocol that is safe to interrupt anywhere: records at or below
     the stamp are redundant, never required. *)

open Eager_storage
open Eager_robust
open Eager_parser

let ( let* ) = Err.( let* )

type t = {
  db : Database.t;
  wal : Wal.t;
  dir : string;
  checkpoint_every : int option;
  mutable since_checkpoint : int;
  mutable tap : (Wal.record list -> unit) option;
      (* invoked with each batch of records immediately after the fsync
         that commits them — the replication feed *)
}

type recovery = {
  snapshot_lsn : int;
  replayed : int;
  skipped_aborted : int;
  skipped_failed : int;
  torn_bytes : int;
  finished_checkpoint : bool;
}

let db t = t.db
let dir t = t.dir
let lsn t = Wal.next_seq t.wal - 1
let wal_bytes t = Wal.bytes_logged t.wal
let wal_broken t = Wal.broken t.wal
let set_commit_tap t tap = t.tap <- tap

let committed t records =
  match (t.tap, records) with
  | None, _ | _, [] -> ()
  | Some tap, records -> tap records

let snapshot_exists ~dir =
  Sys.file_exists (Filename.concat dir "snapshot.eagerdb")
  || Sys.file_exists (Filename.concat dir "schema.sql")

(* abort payloads are the decimal seq of the victim record *)
let aborted_seqs records =
  List.fold_left
    (fun acc (r : Wal.record) ->
      let* acc = acc in
      match r.kind with
      | Wal.Stmt -> Ok acc
      | Wal.Abort -> (
          match int_of_string_opt r.payload with
          | Some victim when victim > 0 && victim < r.seq -> Ok (victim :: acc)
          | _ ->
              Error
                (Err.io "wal record #%d: malformed abort marker %S" r.seq
                   r.payload)))
    (Ok []) records

let replay db records ~lsn =
  let replayed = ref 0 and skipped_failed = ref 0 in
  let* aborted = aborted_seqs records in
  let* () =
    Err.iter_result
      (fun (r : Wal.record) ->
        if r.kind <> Wal.Stmt || r.seq <= lsn || List.mem r.seq aborted then
          Ok ()
        else
          let* () = Fault.check "wal.replay" in
          let* stmt =
            match Parser.parse_statement r.payload with
            | stmt -> Ok stmt
            | exception Parser.Parse_error msg ->
                (* checksummed payloads always re-parse unless the log
                   was written by an incompatible build *)
                Error (Err.io "wal record #%d does not re-parse: %s" r.seq msg)
            | exception Lexer.Lex_error msg ->
                Error (Err.io "wal record #%d does not re-lex: %s" r.seq msg)
          in
          match Binder.exec_statement db stmt with
          | Ok _ ->
              incr replayed;
              Ok ()
          | Error _ ->
              (* the original apply refused this statement and the crash
                 ate its abort marker; refusing again is the
                 deterministic replay of that history *)
              incr skipped_failed;
              Ok ())
      records
  in
  Ok (!replayed, !skipped_failed, List.length aborted)

let open_ ?checkpoint_every ?storage ~dir () =
  let result =
    let* () =
      Err.protect ~kind:Err.Io (fun () ->
          if not (Sys.file_exists dir) then Unix.mkdir dir 0o755)
    in
    let* db, lsn =
      if snapshot_exists ~dir then Persist.load_with_lsn ?storage ~dir ()
      else Ok (Database.create ?storage (), 0)
    in
    let wal_path = Wal.path ~dir in
    let* records, tail = Wal.scan wal_path in
    let* torn_bytes =
      match tail with
      | Wal.Complete -> Ok 0
      | Wal.Torn { valid_len; dropped } ->
          let* () = Wal.truncate_to wal_path valid_len in
          Ok dropped
    in
    let* () =
      match records with
      | { seq; _ } :: _ when seq > lsn + 1 ->
          Error
            (Err.io
               "wal starts at record #%d but the snapshot only covers up to \
                #%d — committed records are missing"
               seq lsn)
      | _ -> Ok ()
    in
    let* replayed, skipped_failed, skipped_aborted = replay db records ~lsn in
    let last_seq =
      List.fold_left (fun _ (r : Wal.record) -> r.seq) 0 records
    in
    let next_seq = max last_seq lsn + 1 in
    (* the cluster epoch is the max of the epoch file and what the log
       records carry; if the records are ahead (the epoch file write is
       atomic, but belt and braces) re-persist before trusting it *)
    let* file_epoch = Wal.load_epoch ~dir in
    let record_epoch =
      List.fold_left (fun acc (r : Wal.record) -> max acc r.epoch) 0 records
    in
    let epoch = max file_epoch record_epoch in
    let* () =
      if record_epoch > file_epoch then Wal.persist_epoch ~dir epoch
      else Ok ()
    in
    let* wal =
      Wal.open_append ~path:wal_path ~next_seq ~epoch ~rec_epoch:record_epoch
        ()
    in
    (* a log whose every record is covered by the snapshot is the
       residue of a checkpoint that crashed between snapshot and
       truncate; finish the job *)
    let* finished_checkpoint =
      if records <> [] && last_seq <= lsn then
        let* () = Wal.truncate wal in
        Ok true
      else Ok false
    in
    let t = { db; wal; dir; checkpoint_every; since_checkpoint = 0; tap = None } in
    let recovery =
      {
        snapshot_lsn = lsn;
        replayed;
        skipped_aborted;
        skipped_failed;
        torn_bytes;
        finished_checkpoint;
      }
    in
    Ok (t, recovery)
  in
  Err.with_context (Printf.sprintf "recovering %s" dir) result

let epoch t = Wal.epoch t.wal

(* Ratchet the cluster epoch: persist first, adopt in memory second, so
   a failure leaves us at the old epoch (safe: the caller refuses to
   promote / ingest) rather than acting on an epoch a crash would
   forget. *)
let set_epoch t e =
  if e <= epoch t then Ok ()
  else
    let* () = Wal.persist_epoch ~dir:t.dir e in
    Wal.set_epoch t.wal e;
    Ok ()

let bump_epoch t =
  let e = epoch t + 1 in
  let* () = set_epoch t e in
  Ok e

let checkpoint t =
  let lsn = Wal.next_seq t.wal - 1 in
  let result =
    (* flush-before-checkpoint barrier: a paged database writes every
       dirty page back before the snapshot reads the heaps, so the
       snapshot and the pager files agree *)
    let* () = Err.protect ~kind:Err.Io (fun () -> Database.flush t.db) in
    let* () = Persist.save ~wal_lsn:lsn t.db ~dir:t.dir in
    let* () = Wal.truncate t.wal in
    t.since_checkpoint <- 0;
    Ok lsn
  in
  Err.with_context "checkpoint" result

let backup t ~dir:target =
  Backup.write ~db:t.db ~lsn:(lsn t) ~epoch:(epoch t)
    ~wal_path:(Wal.path ~dir:t.dir) ~dir:target

(* Standby-side replication apply: log the shipped record verbatim (the
   fsync is the standby's commit point too), then apply statements.  The
   standby NEVER originates records of its own — an abort marker for an
   apply that failed on the primary arrives as the next stream record,
   and a statement that refuses locally refused on the primary too, so
   its marker is already in flight; synthesising one here would desync
   the two logs' sequence numbering and poison every later handshake. *)
let ingest t (r : Wal.record) =
  let* () = Fault.check "repl.recv" in
  let expected = Wal.next_seq t.wal in
  if r.seq <> expected then
    Error
      (Err.io "replication stream out of order: got record #%d, expected #%d"
         r.seq expected)
  else if r.epoch < Wal.rec_epoch t.wal then
    (* epoch fencing: a zombie primary that lost an election can never
       rewrite history — its records carry an epoch below the log's
       high-water mark and die here.  The fence is the RECORD epoch, not
       the node's floor: a standby that has observed a promotion (floor
       bumped) must still ingest the older-epoch backlog it is catching
       up through — the stream-level handshake guard is what keeps
       whole zombie streams out. *)
    Error
      (Err.fenced
         "record #%d carries stale epoch %d but this log is at epoch %d"
         r.seq r.epoch (Wal.rec_epoch t.wal))
  else
    let* () = set_epoch t r.epoch in
    let* stmt =
      match r.kind with
      | Wal.Abort -> Ok None
      | Wal.Stmt -> (
          match Parser.parse_statement r.payload with
          | stmt -> Ok (Some stmt)
          | exception Parser.Parse_error msg ->
              Error
                (Err.io "shipped record #%d does not re-parse: %s" r.seq msg)
          | exception Lexer.Lex_error msg ->
              Error (Err.io "shipped record #%d does not re-lex: %s" r.seq msg))
    in
    let* (_ : int) = Wal.append ~epoch:r.epoch t.wal ~kind:r.kind r.payload in
    committed t [ r ];
    (match stmt with
    | None -> ()
    | Some stmt -> (
        match Binder.exec_statement t.db stmt with
        | Ok _ -> t.since_checkpoint <- t.since_checkpoint + 1
        | Error _ ->
            (* the primary's apply refused this statement too; its abort
               marker is the next record in the stream *)
            ()));
    match t.checkpoint_every with
    | Some every when t.since_checkpoint >= every ->
        let* (_ : int) = checkpoint t in
        Ok ()
    | _ -> Ok ()

let exec t stmt =
  match stmt with
  | Ast.S_select _ | Ast.S_explain _ | Ast.S_status | Ast.S_promote ->
      (* reads never touch the log; STATUS and PROMOTE are answered by
         the server front end (or refused by the binder outside one) *)
      Err.of_msg Err.Exec (Binder.exec_statement t.db stmt)
  | Ast.S_checkpoint ->
      let* lsn = checkpoint t in
      Ok (Binder.Checkpointed lsn)
  | Ast.S_backup dir ->
      let* lsn = backup t ~dir in
      Ok (Binder.Backed_up { dir; lsn })
  | _ ->
      let sql = Ast.statement_to_string stmt in
      let* seq = Wal.append t.wal ~kind:Wal.Stmt sql in
      committed t
        [ { Wal.seq; kind = Wal.Stmt; payload = sql; epoch = epoch t } ];
      let applied = Binder.exec_statement t.db stmt in
      (match applied with
      | Ok outcome ->
          t.since_checkpoint <- t.since_checkpoint + 1;
          let* () =
            match t.checkpoint_every with
            | Some every when t.since_checkpoint >= every ->
                let* (_ : int) = checkpoint t in
                Ok ()
            | _ -> Ok ()
          in
          Ok outcome
      | Error msg ->
          (* logged but not applied: leave an abort marker so replay
             skips the record.  If even that write fails the handle is
             poisoned and the session refuses further statements. *)
          let marker = string_of_int seq in
          let aborted = Wal.append t.wal ~kind:Wal.Abort marker in
          let e = Err.exec "%s" msg in
          Error
            (match aborted with
            | Ok mseq ->
                committed t
                  [ { Wal.seq = mseq; kind = Wal.Abort; payload = marker;
                      epoch = epoch t } ];
                e
            | Error we ->
                Err.add_context
                  (Printf.sprintf "and the abort marker failed: %s"
                     (Err.to_string we))
                  e))

(* Group commit: log every statement of the batch buffered, commit the
   lot with ONE fsync, then apply each.  The single [Wal.sync] is the
   commit point for the whole batch — a crash before it loses every
   statement of the batch (none was acknowledged), a crash after it
   loses none.  Apply failures leave abort markers exactly as in [exec];
   the markers themselves are group-committed with a second sync.  The
   per-statement results come back in order; a batch-level log failure
   (poisoned handle, injected wal fault) replicates into every entry,
   because with the fsync never issued none of them committed. *)
let exec_grouped t stmts =
  let all_failed e = List.map (fun _ -> Error e) stmts in
  let loggable = function
    | Ast.S_select _ | Ast.S_explain _ | Ast.S_checkpoint | Ast.S_status
    | Ast.S_backup _ | Ast.S_promote ->
        false
    | _ -> true
  in
  if List.exists (fun s -> not (loggable s)) stmts then
    all_failed
      (Err.exec
         "exec_grouped: queries, CHECKPOINT, BACKUP and PROMOTE cannot ride \
          a group commit")
  else
    (* phase 1: buffered appends *)
    let sqls = List.map Ast.statement_to_string stmts in
    let seqs =
      List.map (fun sql -> Wal.append_buffered t.wal ~kind:Wal.Stmt sql) sqls
    in
    match List.find_opt Result.is_error seqs with
    | Some (Error e) -> all_failed e
    | Some (Ok _) (* unreachable *) | None -> (
        (* phase 2: the one fsync that commits the whole batch *)
        match Wal.sync t.wal with
        | Error e -> all_failed e
        | Ok () ->
            committed t
              (List.map2
                 (fun sql seq ->
                   { Wal.seq = Result.get_ok seq;
                     kind = Wal.Stmt;
                     payload = sql;
                     epoch = epoch t;
                   })
                 sqls seqs);
            (* phase 3: apply each committed statement *)
            let aborts = ref [] in
            let results =
              List.map2
                (fun stmt seq ->
                  let seq = Result.get_ok seq in
                  match Binder.exec_statement t.db stmt with
                  | Ok outcome ->
                      t.since_checkpoint <- t.since_checkpoint + 1;
                      Ok outcome
                  | Error msg ->
                      aborts := seq :: !aborts;
                      Error (Err.exec "%s" msg))
                stmts seqs
            in
            (* phase 4: group-commit the abort markers, if any *)
            let abort_failure =
              match !aborts with
              | [] -> None
              | victims -> (
                  let markers =
                    List.map
                      (fun victim ->
                        ( victim,
                          Wal.append_buffered t.wal ~kind:Wal.Abort
                            (string_of_int victim) ))
                      (List.rev victims)
                  in
                  let failed =
                    List.find_map
                      (fun (_, r) ->
                        match r with Ok _ -> None | Error e -> Some e)
                      markers
                  in
                  match failed with
                  | Some e -> Some e
                  | None -> (
                      match Wal.sync t.wal with
                      | Ok () ->
                          committed t
                            (List.map
                               (fun (victim, r) ->
                                 { Wal.seq = Result.get_ok r;
                                   kind = Wal.Abort;
                                   payload = string_of_int victim;
                                   epoch = epoch t;
                                 })
                               markers);
                          None
                      | Error e -> Some e))
            in
            let results =
              match abort_failure with
              | None -> results
              | Some we ->
                  (* the failed statements' markers may not be durable;
                     surface that on each failed entry so the caller
                     knows replay might re-refuse them instead *)
                  List.map
                    (function
                      | Ok _ as ok -> ok
                      | Error e ->
                          Error
                            (Err.add_context
                               (Printf.sprintf
                                  "and the abort marker failed: %s"
                                  (Err.to_string we))
                               e))
                    results
              in
            (* auto-checkpoint once per batch, after everything applied *)
            (match t.checkpoint_every with
            | Some every when t.since_checkpoint >= every ->
                ignore (checkpoint t : (int, Err.t) result)
            | _ -> ());
            results)

let run_script_with t src ~f =
  let* stmts =
    match Parser.parse_script src with
    | stmts -> Ok stmts
    | exception Parser.Parse_error msg -> Error (Err.parse "%s" msg)
    | exception Lexer.Lex_error msg -> Error (Err.parse "%s" msg)
  in
  Err.iter_result
    (fun stmt ->
      let* outcome = exec t stmt in
      f outcome;
      Ok ())
    stmts

let close t =
  Wal.close t.wal
