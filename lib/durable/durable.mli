(** A write-ahead-logged database session: log-then-apply with
    statement-level atomicity and checkpointed crash recovery.

    Every DML/DDL statement is serialised back to SQL
    ([Ast.statement_to_string]), appended to the {!Wal} and fsynced
    {e before} it touches the database — the fsync is the commit point.
    If the apply step then fails (constraint violation, injected storage
    fault), an abort marker naming the record is logged so recovery
    skips it; the statement itself is atomic either way
    ([Database.load_result] rolls back partial multi-row inserts).

    Recovery = load the last snapshot ([Persist.load_with_lsn]), then
    replay every log record beyond the snapshot's LSN.  A torn final
    record is the normal residue of a crash and is truncated away with a
    note in {!recovery}; anything worse — mid-log corruption, a sequence
    gap, a log that starts after the snapshot's LSN — is a typed [Io]
    error, because silently dropping committed work is the one thing a
    WAL must never do.

    Checkpointing writes a snapshot stamped with the current LSN
    ([Persist.save ~wal_lsn]) and only then truncates the log, so a
    crash between the two steps merely leaves redundant records that the
    LSN tells recovery to skip; the next open finishes the truncation. *)

open Eager_storage
open Eager_robust

type t

type recovery = {
  snapshot_lsn : int;  (** LSN carried by the snapshot (0 = none/legacy) *)
  replayed : int;  (** log records re-applied *)
  skipped_aborted : int;  (** records an abort marker told us to skip *)
  skipped_failed : int;
      (** records that refused to re-apply — a logged statement whose
          original apply failed after its abort marker was lost to the
          crash; re-refusal is the deterministic outcome *)
  torn_bytes : int;  (** bytes truncated from a torn tail *)
  finished_checkpoint : bool;
      (** the log was fully covered by the snapshot's LSN — an
          interrupted checkpoint — and has been truncated *)
}

val open_ :
  ?checkpoint_every:int ->
  ?storage:Database.storage_config ->
  dir:string ->
  unit ->
  (t * recovery, Err.t) result
(** Open (creating [dir] and an empty database if nothing is there) and
    run recovery.  [checkpoint_every] enables automatic checkpoints
    after that many logged statements.  [storage] opens the recovered
    database over the paged engine (buffer pool + pager files); the WAL
    and snapshot stay the durability story, and {!checkpoint} flushes
    the pool before snapshotting. *)

val db : t -> Database.t
val dir : t -> string

val lsn : t -> int
(** The sequence number of the last logged record — the LSN readers
    stamp their snapshots with under MVCC-lite. *)

val epoch : t -> int
(** The cluster epoch stamped into records this session commits.
    Recovered on open as the max of the [epoch.eagerdb] file and the
    log's records; 0 on a database that never failed over. *)

val set_epoch : t -> int -> (unit, Err.t) result
(** Ratchet the epoch to a higher value observed from the cluster,
    persisting it durably {e before} adopting it (a failure leaves the
    old epoch in force).  Lower or equal values are a no-op. *)

val bump_epoch : t -> (int, Err.t) result
(** Promotion: durably advance to (and return) the next epoch. *)

val wal_bytes : t -> int
(** Cumulative bytes appended to the log through this session
    (telemetry). *)

val wal_broken : t -> bool
(** The log handle is poisoned (a write failed); every further write
    refuses with a typed error and only a restart-with-recovery clears
    it.  The server uses this to degrade to read-only instead of
    crashing. *)

val exec : t -> Eager_parser.Ast.statement -> (Eager_parser.Binder.outcome, Err.t) result
(** Execute one statement with WAL semantics.  Queries bypass the log;
    [CHECKPOINT] triggers {!checkpoint} and reports [Checkpointed lsn];
    [BACKUP 'dir'] triggers {!backup} and reports [Backed_up];
    everything else is logged, fsynced, then applied. *)

val exec_grouped :
  t ->
  Eager_parser.Ast.statement list ->
  (Eager_parser.Binder.outcome, Err.t) result list
(** Group commit: append every statement of the batch to the log
    buffered, commit them all with {e one} fsync ([Wal.sync] — the
    [wal.group_commit] fault point), then apply each, leaving abort
    markers for applies that refuse.  Returns per-statement results in
    order.  A log failure before the sync fails the whole batch (none
    of it was committed).  Queries and [CHECKPOINT] are refused —
    route them around the group path. *)

val checkpoint : t -> (int, Err.t) result
(** Snapshot the database (stamped with the current LSN) and truncate
    the log.  Returns the LSN. *)

val backup : t -> dir:string -> (int, Err.t) result
(** Online hot backup: seal a checksummed, LSN-stamped copy of the
    session (snapshot + WAL tail + manifest, see {!Backup}) into the
    fresh directory [dir] and return the LSN it is consistent as of.
    The session itself is untouched — no truncation, no counter reset —
    so a backup is {e not} a checkpoint.  The caller must ensure no
    statement executes concurrently (the server takes its commit-queue
    barrier; a single-threaded session is always safe). *)

val set_commit_tap : t -> (Wal.record list -> unit) option -> unit
(** Install (or clear) the replication feed: called with each batch of
    records immediately after the fsync that commits them, on the
    committing thread.  The callback must not raise and must not call
    back into this session. *)

val ingest : t -> Wal.record -> (unit, Err.t) result
(** Apply one record shipped from a primary's commit tap: verify it
    carries exactly the next sequence number, log it verbatim (the
    fsync is the standby's commit point too), then apply it if it is a
    statement.  A statement that refuses to apply is tolerated — the
    primary's abort marker for it is the next record in the stream; the
    standby never originates records of its own, or the two logs'
    numbering would diverge.  An out-of-order or unparseable record is
    a typed [Io] error (the stream is broken; reconnect and re-handshake).
    A record carrying an epoch {e below} this node's is refused with a
    typed [Fenced] error — the epoch fence that stops a zombie primary
    from ever shipping history — while a higher epoch is durably adopted
    before the record lands, and the record is logged under its own
    epoch so the two logs stay byte-identical.  Fault point [repl.recv]
    fires before anything is written. *)

val run_script_with :
  t ->
  string ->
  f:(Eager_parser.Binder.outcome -> unit) ->
  (unit, Err.t) result
(** Parse a [;]-separated script and {!exec} each statement, passing
    outcomes to [f] as they happen.  Stops at the first error. *)

val close : t -> unit
