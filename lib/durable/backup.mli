(** Online hot backup and restore.

    A backup is a fresh directory holding three files: the LSN-stamped
    snapshot ([snapshot.eagerdb]), the WAL tail ([wal.eagerdb], valid
    prefix only), and a manifest ([backup.eagerdb]) recording the LSN,
    the cluster epoch, and an md5 of each of the other two.  The
    manifest is written last, so an interrupted backup is never
    mistaken for a complete one.  Manifests written before failover
    existed lack the epoch line and parse as epoch 0.

    The trust model is stricter than live recovery's: recovery forgives
    a torn WAL tail (crash residue), but a backup is an archival
    artifact, so {!verify} refuses the directory if {i any} byte of any
    file differs from what {!write} sealed — checksum mismatch, torn
    tail, missing file, or a manifest/snapshot LSN disagreement all
    yield a typed [Io] refusal, never a partial load. *)

open Eager_storage
open Eager_robust

val write :
  db:Database.t ->
  lsn:int ->
  epoch:int ->
  wal_path:string ->
  dir:string ->
  (int, Err.t) result
(** Seal a backup of [db] (consistent as of [lsn] under cluster epoch
    [epoch], with the WAL at [wal_path] describing exactly the records
    at or below [lsn]) into the fresh directory [dir]; returns [lsn].
    The caller must hold whatever barrier makes that consistency claim
    true — in the durable session that is simply "between statements",
    in the server the commit-queue barrier.  Refuses a non-empty [dir].
    Fault point [backup.copy] fires mid-way through the WAL copy. *)

val verify : dir:string -> (int, Err.t) result
(** Check every file of the backup in [dir] against its manifest (plus
    the snapshot's own checksum trailer and a full WAL scan); returns
    the backup's LSN.  Read-only. *)

val restore : from_dir:string -> to_dir:string -> (int, Err.t) result
(** {!verify} the backup in [from_dir], then copy it into the fresh
    directory [to_dir] (re-seeding [epoch.eagerdb] from the manifest so
    the restored node rejoins the cluster at the right epoch), ready
    for [Durable.open_].  Nothing is written unless verification
    passes, so a damaged backup never produces a partially-restored
    database. *)
