(* Checksummed, length-prefixed write-ahead log.  See wal.mli for the
   file format and the torn-vs-corrupt rules; the short version is that
   only damage touching the very end of the file can be blamed on a
   crash — everything else is rejected. *)

open Eager_robust

let ( let* ) = Err.( let* )
let file_name = "wal.eagerdb"
let path ~dir = Filename.concat dir file_name
let header_line = "eagerdb wal v1\n"

type kind = Stmt | Abort

let kind_name = function Stmt -> "stmt" | Abort -> "abort"

let kind_of_name = function
  | "stmt" -> Some Stmt
  | "abort" -> Some Abort
  | _ -> None

type record = { seq : int; kind : kind; payload : string; epoch : int }
type tail = Complete | Torn of { valid_len : int; dropped : int }

(* ------------------------------------------------------------------ *)
(* scanning *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* "#rec <seq> <kind> <len> <md5hex> [<epoch>]" — None on any
   malformation; the caller decides whether that means torn or corrupt.
   The epoch field arrived with lease-based failover; logs written
   before it carry 5-field headers and parse as epoch 0. *)
let parse_header line =
  let fields, epoch =
    match String.split_on_char ' ' line with
    | [ t; s; k; l; m; e ] -> (Some (t, s, k, l, m), int_of_string_opt e)
    | [ t; s; k; l; m ] -> (Some (t, s, k, l, m), Some 0)
    | _ -> (None, None)
  in
  match (fields, epoch) with
  | Some ("#rec", seq, kind, len, md5), Some epoch -> (
      match (int_of_string_opt seq, kind_of_name kind, int_of_string_opt len) with
      | Some seq, Some kind, Some len
        when seq > 0 && len >= 0 && epoch >= 0 && String.length md5 = 32 ->
          Some (seq, kind, len, md5, epoch)
      | _ -> None)
  | _ -> None

let scan path =
  if not (Sys.file_exists path) then Ok ([], Complete)
  else
    let* content = Err.protect ~kind:Err.Io (fun () -> read_file path) in
    let n = String.length content in
    let hlen = String.length header_line in
    if n = 0 then (* an empty file is a fresh, complete log *)
      Ok ([], Complete)
    else if n < hlen then
      (* even the header never finished: everything is droppable tail *)
      if String.sub header_line 0 n = content then
        Ok ([], Torn { valid_len = 0; dropped = n })
      else Error (Err.io "%s: not a write-ahead log" path)
    else if String.sub content 0 hlen <> header_line then
      Error (Err.io "%s: not a write-ahead log" path)
    else
      let torn pos = Ok (Torn { valid_len = pos; dropped = n - pos }) in
      let corrupt pos fmt =
        Printf.ksprintf
          (fun msg -> Error (Err.io "%s: corrupt record at byte %d: %s" path pos msg))
          fmt
      in
      let records = ref [] in
      let rec loop pos prev_seq prev_epoch =
        if pos = n then Ok Complete
        else
          match String.index_from_opt content pos '\n' with
          | None ->
              (* header line cut short by the crash *)
              torn pos
          | Some nl -> (
              let line = String.sub content pos (nl - pos) in
              match parse_header line with
              | None -> corrupt pos "bad record header %S" line
              | Some (seq, kind, len, md5, epoch) ->
                  let payload_start = nl + 1 in
                  let record_end = payload_start + len + 1 in
                  if record_end > n then torn pos
                  else
                    let payload = String.sub content payload_start len in
                    if content.[record_end - 1] <> '\n' then
                      if record_end = n then torn pos
                      else corrupt pos "record #%d missing terminator" seq
                    else if Digest.to_hex (Digest.string payload) <> md5 then
                      if record_end = n then torn pos
                      else corrupt pos "record #%d fails its checksum" seq
                    else if prev_seq > 0 && seq <> prev_seq + 1 then
                      corrupt pos "sequence jumps from #%d to #%d" prev_seq seq
                    else if epoch < prev_epoch then
                      (* epochs only ever ratchet up (a promotion bumps
                         them); a decrease means a stale primary's
                         records were spliced in — never crash residue *)
                      corrupt pos "epoch regresses from %d to %d at #%d"
                        prev_epoch epoch seq
                    else begin
                      records := { seq; kind; payload; epoch } :: !records;
                      loop record_end seq epoch
                    end)
      in
      let* tail = loop hlen 0 0 in
      Ok (List.rev !records, tail)

let truncate_to path valid_len =
  Err.protect ~kind:Err.Io (fun () -> Unix.truncate path valid_len)

(* ------------------------------------------------------------------ *)
(* appending *)

type t = {
  path : string;
  mutable oc : out_channel;
  mutable next : int;
  mutable broken : bool;
  mutable pending : int; (* records flushed to the OS but not yet fsynced *)
  mutable bytes : int; (* cumulative bytes appended since open (telemetry) *)
  mutable epoch : int; (* stamped into every record this handle appends *)
  mutable rec_epoch : int;
      (* epoch of the last record in the file — the log's high-water
         mark.  Distinct from [epoch], the node's fencing floor: a
         standby that has observed a promotion holds floor > high-water
         until the new primary's records arrive. *)
}

let poisoned t =
  Error (Err.io "write-ahead log %s is poisoned after a failed write; restart the session to recover" t.path)

let open_append ~path ~next_seq ?(epoch = 0) ?(rec_epoch = 0) () =
  Err.protect ~kind:Err.Io (fun () ->
      let fresh = (not (Sys.file_exists path)) || (Unix.stat path).Unix.st_size = 0 in
      let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
      if fresh then begin
        output_string oc header_line;
        flush oc;
        Unix.fsync (Unix.descr_of_out_channel oc)
      end;
      { path; oc; next = next_seq; broken = false; pending = 0; bytes = 0;
        epoch; rec_epoch })

let next_seq t = t.next
let broken t = t.broken
let pending t = t.pending
let bytes_logged t = t.bytes
let epoch t = t.epoch
let rec_epoch t = t.rec_epoch

let set_epoch t e = if e > t.epoch then t.epoch <- e

(* write one record and flush it to the OS — no fsync, so the record is
   NOT yet committed.  The building block behind both [append] (which
   fsyncs immediately) and group commit (many buffered appends, one
   [sync]). *)
let append_buffered ?epoch t ~kind payload =
  if t.broken then poisoned t
  else
    let seq = t.next in
    (* a standby ingesting shipped records passes the record's own epoch
       so its log stays byte-identical to the primary's; local appends
       stamp the handle's current epoch *)
    let epoch = match epoch with Some e -> e | None -> t.epoch in
    if epoch < t.rec_epoch then
      (* scan treats an in-file epoch decrease as corruption; refuse to
         write one rather than poison the log for the next recovery *)
      Error
        (Err.io
           "record #%d would regress the log's epoch from %d to %d" seq
           t.rec_epoch epoch)
    else
    let r =
      Err.protect ~kind:Err.Io (fun () ->
          let header =
            Printf.sprintf "#rec %d %s %d %s %d\n" seq (kind_name kind)
              (String.length payload)
              (Digest.to_hex (Digest.string payload))
              epoch
          in
          let record = header ^ payload ^ "\n" in
          let total = String.length record in
          (* flush the first half before the [wal.append] hook so a
             simulated crash there deterministically leaves a torn tail *)
          let half = total / 2 in
          output_substring t.oc record 0 half;
          flush t.oc;
          Fault.trip "wal.append";
          output_substring t.oc record half (total - half);
          flush t.oc;
          total)
    in
    match r with
    | Ok total ->
        t.next <- seq + 1;
        t.pending <- t.pending + 1;
        t.bytes <- t.bytes + total;
        t.rec_epoch <- epoch;
        Ok seq
    | Error e ->
        t.broken <- true;
        Error (Err.add_context (Printf.sprintf "wal append #%d" seq) e)

(* the group-commit point: one fsync covers every buffered record.  The
   [wal.group_commit] hook fires after the batch is flushed but before
   the fsync — a crash there loses (or keeps, at the OS's whim) the
   whole tail of uncommitted records, which recovery handles as a torn /
   unreplayed suffix. *)
let sync t =
  if t.broken then poisoned t
  else if t.pending = 0 then Ok ()
  else
    let r =
      Err.protect ~kind:Err.Io (fun () ->
          Fault.trip "wal.group_commit";
          Fault.lag "wal.slow_fsync";
          Unix.fsync (Unix.descr_of_out_channel t.oc))
    in
    match r with
    | Ok () ->
        t.pending <- 0;
        Ok ()
    | Error e ->
        t.broken <- true;
        Error
          (Err.add_context
             (Printf.sprintf "wal group commit (%d pending record(s))"
                t.pending)
             e)

let append ?epoch t ~kind payload =
  if t.broken then poisoned t
  else
    let seq = t.next in
    let r =
      let* (_ : int) = append_buffered ?epoch t ~kind payload in
      Err.protect ~kind:Err.Io (fun () ->
          Fault.trip "wal.fsync";
          Fault.lag "wal.slow_fsync";
          Unix.fsync (Unix.descr_of_out_channel t.oc))
    in
    match r with
    | Ok () ->
        t.pending <- 0;
        Ok seq
    | Error e ->
        t.broken <- true;
        Error (Err.add_context (Printf.sprintf "wal append #%d" seq) e)

let truncate t =
  if t.broken then poisoned t
  else
    let tmp = t.path ^ ".tmp" in
    let r =
      Err.protect ~kind:Err.Io (fun () ->
          close_out_noerr t.oc;
          let committed = ref false in
          Fun.protect
            ~finally:(fun () -> if not !committed then try Sys.remove tmp with Sys_error _ -> ())
            (fun () ->
              let oc = open_out_bin tmp in
              Fun.protect
                ~finally:(fun () -> close_out_noerr oc)
                (fun () ->
                  output_string oc header_line;
                  flush oc;
                  Unix.fsync (Unix.descr_of_out_channel oc));
              Fault.trip "wal.truncate";
              Sys.rename tmp t.path;
              committed := true);
          t.oc <- open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 t.path)
    in
    match r with
    | Ok () ->
        t.pending <- 0;
        Ok ()
    | Error e ->
        t.broken <- true;
        Error (Err.add_context "wal truncate" e)

let close t =
  t.broken <- true;
  close_out_noerr t.oc

(* ------------------------------------------------------------------ *)
(* epoch persistence.  The cluster epoch outlives the log itself — a
   checkpoint truncates every record, and with them the only on-disk
   trace of the epoch — so it gets its own tiny file, rewritten
   atomically (tmp + fsync + rename) on every ratchet. *)

let epoch_file_name = "epoch.eagerdb"
let epoch_path ~dir = Filename.concat dir epoch_file_name

let load_epoch ~dir =
  let p = epoch_path ~dir in
  if not (Sys.file_exists p) then Ok 0
  else
    let* content = Err.protect ~kind:Err.Io (fun () -> read_file p) in
    match int_of_string_opt (String.trim content) with
    | Some e when e >= 0 -> Ok e
    | _ -> Error (Err.io "%s: malformed epoch file %S" p content)

let persist_epoch ~dir e =
  let p = epoch_path ~dir in
  let tmp = p ^ ".tmp" in
  Err.protect ~kind:Err.Io (fun () ->
      let committed = ref false in
      Fun.protect
        ~finally:(fun () ->
          if not !committed then try Sys.remove tmp with Sys_error _ -> ())
        (fun () ->
          let oc = open_out_bin tmp in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () ->
              output_string oc (string_of_int e);
              output_char oc '\n';
              flush oc;
              Unix.fsync (Unix.descr_of_out_channel oc));
          (* a crash here leaves the old epoch on disk — safe, because
             an epoch is only acted on after it is durably recorded *)
          Fault.trip "wal.epoch";
          Sys.rename tmp p;
          committed := true))
