(* Tests for the schema layer: column references, schemas, rows, types. *)

open Eager_value
open Eager_schema

let cr = Colref.make
let i n = Value.Int n

(* ---------------- Colref ---------------- *)

let test_colref () =
  Alcotest.(check string) "qualified" "E.DeptID"
    (Colref.to_string (cr "E" "DeptID"));
  Alcotest.(check string) "unqualified (aggregate outputs)" "n"
    (Colref.to_string (cr "" "n"));
  Alcotest.(check bool) "equal" true (Colref.equal (cr "a" "b") (cr "a" "b"));
  Alcotest.(check bool) "rel distinguishes" false
    (Colref.equal (cr "a" "b") (cr "c" "b"));
  Alcotest.(check bool) "ordering is total" true
    (Colref.compare (cr "a" "b") (cr "a" "c") < 0
    && Colref.compare (cr "a" "z") (cr "b" "a") < 0);
  let s = Colref.set_of_list [ cr "a" "x"; cr "a" "x"; cr "b" "y" ] in
  Alcotest.(check int) "set dedups" 2 (Colref.Set.cardinal s);
  Alcotest.(check string) "pp_set" "{a.x, b.y}"
    (Format.asprintf "%a" Colref.pp_set s)

(* ---------------- Ctype ---------------- *)

let test_ctype () =
  Alcotest.(check bool) "int accepts int" true (Ctype.accepts Ctype.Int (i 1));
  Alcotest.(check bool) "int rejects string" false
    (Ctype.accepts Ctype.Int (Value.Str "x"));
  Alcotest.(check bool) "every type accepts NULL" true
    (List.for_all
       (fun t -> Ctype.accepts t Value.Null)
       [ Ctype.Int; Ctype.Float; Ctype.String; Ctype.Bool ]);
  Alcotest.(check bool) "float accepts int (widening)" true
    (Ctype.accepts Ctype.Float (i 1));
  Alcotest.(check bool) "int rejects float" false
    (Ctype.accepts Ctype.Int (Value.Float 1.5))

(* ---------------- Schema ---------------- *)

let abc =
  Schema.make
    [ (cr "R" "a", Ctype.Int); (cr "R" "b", Ctype.String);
      (cr "S" "a", Ctype.Int) ]

let test_schema_lookup () =
  Alcotest.(check int) "arity" 3 (Schema.arity abc);
  Alcotest.(check int) "index_of" 1 (Schema.index_of abc (cr "R" "b"));
  Alcotest.(check bool) "index_of_opt missing" true
    (Schema.index_of_opt abc (cr "R" "z") = None);
  (* unqualified resolution *)
  (match Schema.find_name abc "b" with
  | Some (1, c) -> Alcotest.(check string) "resolved" "R.b" (Colref.to_string c)
  | _ -> Alcotest.fail "find_name b");
  Alcotest.(check bool) "missing name" true (Schema.find_name abc "zz" = None);
  (* 'a' is ambiguous between R and S *)
  Alcotest.(check bool) "ambiguous raises" true
    (try
       ignore (Schema.find_name abc "a");
       false
     with Failure _ -> true);
  Alcotest.(check bool) "duplicate columns rejected" true
    (try
       ignore (Schema.make [ (cr "R" "a", Ctype.Int); (cr "R" "a", Ctype.Int) ]);
       false
     with Invalid_argument _ -> true)

let test_schema_ops () =
  let left = Schema.make [ (cr "L" "x", Ctype.Int) ] in
  let joined = Schema.concat left abc in
  Alcotest.(check int) "concat arity" 4 (Schema.arity joined);
  Alcotest.(check int) "left column first" 0 (Schema.index_of joined (cr "L" "x"));
  let proj = Schema.project abc [ cr "S" "a"; cr "R" "a" ] in
  Alcotest.(check int) "projection reorders" 0 (Schema.index_of proj (cr "S" "a"));
  let renamed = Schema.rename_rel "T" left in
  Alcotest.(check bool) "renamed" true (Schema.mem renamed (cr "T" "x"));
  Alcotest.(check bool) "old rel gone" false (Schema.mem renamed (cr "L" "x"));
  (* renaming a multi-relation schema with colliding names is rejected *)
  Alcotest.(check bool) "collision on rename rejected" true
    (try
       ignore (Schema.rename_rel "T" abc);
       false
     with Invalid_argument _ -> true);
  let idxs = Schema.indices abc [ cr "S" "a"; cr "R" "a" ] in
  Alcotest.(check (list int)) "indices in request order" [ 2; 0 ]
    (Array.to_list idxs)

(* ---------------- Row ---------------- *)

let test_row_ops () =
  let r1 = [| i 1; Value.Str "x"; Value.Null |] in
  let r2 = [| i 1; Value.Str "x"; Value.Null |] in
  let r3 = [| i 1; Value.Str "y"; Value.Null |] in
  Alcotest.(check bool) "equal under =ⁿ (incl. NULL)" true (Row.equal r1 r2);
  Alcotest.(check bool) "not equal" false (Row.equal r1 r3);
  Alcotest.(check bool) "null_eq_on subset" true
    (Row.null_eq_on [| 0; 2 |] r1 r3);
  let cat = Row.concat r1 [| i 9 |] in
  Alcotest.(check int) "concat length" 4 (Array.length cat);
  let p = Row.project [| 2; 0 |] r1 in
  Alcotest.(check string) "project reorders" "(NULL, 1)" (Row.to_string p);
  (* compare_on is consistent with null_eq_on *)
  Alcotest.(check int) "compare equal" 0 (Row.compare_on [| 0; 1 |] r1 r2);
  Alcotest.(check bool) "compare orders" true
    (Row.compare_on [| 1 |] r1 r3 < 0)

let test_row_key_normalisation () =
  (* Int 2 and Float 2.0 are =ⁿ-equal, so their keys must coincide *)
  let k1 = Row.key_on [| 0 |] [| i 2 |] in
  let k2 = Row.key_on [| 0 |] [| Value.Float 2.0 |] in
  Alcotest.(check bool) "2 and 2.0 share a key" true (k1 = k2);
  let k3 = Row.key_on [| 0 |] [| Value.Float 2.5 |] in
  Alcotest.(check bool) "2.5 differs" false (k1 = k3);
  (* NULL has its own key *)
  let kn = Row.key_on [| 0 |] [| Value.Null |] in
  Alcotest.(check bool) "NULL is its own class" false (kn = k1)

(* regression: the whole-float normalisation cutoff used to be 1e15, so
   [Int 10^15] and [Float 1e15] — equal under [compare_total] — landed
   in different group-by buckets.  The cutoff is now 2^53, the bound of
   exact int<->float conversion used by [Value.compare_total]'s
   coercion. *)
let test_row_key_large_numerics () =
  let key v = Row.key_on [| 0 |] [| v |] in
  let q = 1_000_000_000_000_000 (* 10^15, above the old 1e15 cutoff *) in
  Alcotest.(check int) "10^15 and 1e15 compare equal" 0
    (Value.compare_total (i q) (Value.Float 1e15));
  Alcotest.(check bool) "10^15 and 1e15 share a key" true
    (key (i q) = key (Value.Float 1e15));
  (* 2^53 is still within the exact range *)
  let m = 9007199254740992 in
  Alcotest.(check bool) "2^53 and 2^53. share a key" true
    (key (i m) = key (Value.Float 9007199254740992.));
  (* beyond 2^53 floats are left alone: the canonical form never
     manufactures an Int a float round-trip can't represent *)
  Alcotest.(check bool) "1e16 float stays a float" true
    (Value.canonical_num (Value.Float 1e16) = Value.Float 1e16);
  (* fractional floats are untouched *)
  Alcotest.(check bool) "2.5 not collapsed" true
    (Value.canonical_num (Value.Float 2.5) = Value.Float 2.5)

(* property: key equality ⇔ =ⁿ row equivalence *)
let value_gen =
  QCheck.Gen.(
    oneof
      [
        return Value.Null;
        map (fun n -> i n) (int_range 0 3);
        map (fun n -> Value.Float (float_of_int n)) (int_range 0 3);
        map (fun b -> Value.Bool b) bool;
      ])

let prop_key_iff_null_eq =
  QCheck.Test.make ~count:500 ~name:"key equality iff =ⁿ equivalence"
    (QCheck.make QCheck.Gen.(pair value_gen value_gen))
    (fun (a, b) ->
      let idx = [| 0 |] in
      Row.key_on idx [| a |] = Row.key_on idx [| b |] = Value.null_eq a b)

let () =
  Alcotest.run "schema"
    [
      ("colref", [ Alcotest.test_case "basics" `Quick test_colref ]);
      ("ctype", [ Alcotest.test_case "acceptance" `Quick test_ctype ]);
      ( "schema",
        [
          Alcotest.test_case "lookup" `Quick test_schema_lookup;
          Alcotest.test_case "concat/project/rename" `Quick test_schema_ops;
        ] );
      ( "row",
        [
          Alcotest.test_case "operations" `Quick test_row_ops;
          Alcotest.test_case "key normalisation" `Quick
            test_row_key_normalisation;
          Alcotest.test_case "large numeric keys" `Quick
            test_row_key_large_numerics;
          QCheck_alcotest.to_alcotest prop_key_iff_null_eq;
        ] );
    ]
