(* Storage tests: heap behaviour, statistics, and insert-time enforcement of
   every SQL2 constraint class. *)

open Eager_value
open Eager_schema
open Eager_expr
open Eager_catalog
open Eager_storage

let col name ctype : Table_def.column_def =
  { Table_def.cname = name; ctype; domain = None }

let simple_schema =
  Schema.make
    [ (Colref.make "T" "a", Ctype.Int); (Colref.make "T" "b", Ctype.String) ]

(* ---------------- heap ---------------- *)

let test_heap_basics () =
  let h = Heap.create simple_schema in
  Alcotest.(check int) "empty" 0 (Heap.length h);
  Heap.insert h [| Value.Int 1; Value.Str "x" |];
  Heap.insert h [| Value.Int 2; Value.Str "y" |];
  Alcotest.(check int) "two rows" 2 (Heap.length h);
  Alcotest.(check int) "get" 2
    (match (Heap.get h 1).(0) with Value.Int n -> n | _ -> -1);
  Alcotest.(check int) "fold" 3
    (Heap.fold
       (fun acc row -> acc + match row.(0) with Value.Int n -> n | _ -> 0)
       0 h);
  Alcotest.(check int) "to_list" 2 (List.length (Heap.to_list h));
  Alcotest.(check int) "to_seq" 2 (Seq.length (Heap.to_seq h));
  Alcotest.(check bool) "exists" true
    (Heap.exists (fun r -> Value.null_eq r.(0) (Value.Int 2)) h);
  Alcotest.(check bool) "generation grows" true (Heap.generation h > 0)

let test_heap_growth () =
  let h = Heap.create simple_schema in
  for i = 1 to 1000 do
    Heap.insert h [| Value.Int i; Value.Str "s" |]
  done;
  Alcotest.(check int) "1000 rows survive doubling" 1000 (Heap.length h);
  Alcotest.(check int) "last row intact" 1000
    (match (Heap.get h 999).(0) with Value.Int n -> n | _ -> -1)

let test_heap_arity_check () =
  let h = Heap.create simple_schema in
  Alcotest.(check bool) "arity mismatch rejected" true
    (try
       Heap.insert h [| Value.Int 1 |];
       false
     with Invalid_argument _ -> true)

(* ---------------- pages and the buffer pool ---------------- *)

open Eager_robust

let prow a b = [| Value.Int a; Value.Str b |]

let rows_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 Row.equal a b

let test_page_roundtrip () =
  let rows =
    [|
      [| Value.Int 1; Value.Str "x" |];
      [| Value.Null; Value.Float 2.5 |];
      [| Value.Bool true; Value.Str "" |];
    |]
  in
  let img = Page.encode ~page_size:512 ~id:7 rows in
  Alcotest.(check int) "image is page-sized" 512 (Bytes.length img);
  Alcotest.(check bool) "decode round-trips" true
    (rows_equal rows (Page.decode ~page_size:512 ~id:7 img));
  (* wrong id refused: a page read from the wrong offset must not decode *)
  Alcotest.(check bool) "wrong id refused" true
    (match Page.decode ~page_size:512 ~id:8 img with
    | _ -> false
    | exception Err.Error_exn e -> Err.kind e = Err.Storage)

(* every single byte of the image — header, payload, padding, checksum —
   is covered: flip it and the read must refuse with a typed Storage
   error; flip it back and the page must read cleanly again *)
let test_corruption_every_byte () =
  let page_size = 256 in
  let pool = Buffer_pool.create () in
  let pgr = Pager.create_mem ~page_size () in
  let id =
    Buffer_pool.append_page pool pgr [| prow 1 "hello"; prow 2 "world" |]
  in
  for pos = 0 to page_size - 1 do
    Pager.corrupt_byte pgr id ~pos;
    (match Buffer_pool.read_page pool pgr id with
    | _ -> Alcotest.failf "byte %d: corruption accepted" pos
    | exception Err.Error_exn e ->
        if Err.kind e <> Err.Storage then
          Alcotest.failf "byte %d: kind %s, want Storage" pos
            (Err.kind_to_string (Err.kind e)));
    (* XOR is an involution: restore and prove the refusal was the flip *)
    Pager.corrupt_byte pgr id ~pos
  done;
  Alcotest.(check bool) "intact again after restores" true
    (rows_equal
       [| prow 1 "hello"; prow 2 "world" |]
       (Buffer_pool.read_page pool pgr id))

let test_pinned_never_evicted () =
  let pool = Buffer_pool.create ~cap:2 () in
  let pgr = Pager.create_mem ~page_size:256 () in
  let a = Buffer_pool.alloc pool pgr [| prow 1 "a" |] in
  let b = Buffer_pool.alloc pool pgr [| prow 2 "b" |] in
  let rows_a = Buffer_pool.pin pool pgr a in
  Alcotest.(check bool) "pin sees the page" true
    (rows_equal [| prow 1 "a" |] rows_a);
  (* allocating a third page must evict the unpinned b, never pinned a *)
  let c = Buffer_pool.alloc pool pgr [| prow 3 "c" |] in
  let s = Buffer_pool.stats pool in
  Alcotest.(check int) "one eviction" 1 s.Buffer_pool.evictions;
  Alcotest.(check bool) "evicted page written back and readable" true
    (rows_equal [| prow 2 "b" |] (Buffer_pool.read_page pool pgr b));
  (* a stayed resident through the eviction: re-pin is a hit *)
  let hits0 = (Buffer_pool.stats pool).Buffer_pool.hits in
  ignore (Buffer_pool.pin pool pgr a);
  Buffer_pool.unpin pool pgr a;
  Alcotest.(check int) "re-pin of pinned page is a hit" (hits0 + 1)
    (Buffer_pool.stats pool).Buffer_pool.hits;
  (* with every frame pinned, a further pin is a typed Resource error *)
  ignore (Buffer_pool.pin pool pgr c);
  Alcotest.(check bool) "pool of pinned pages refuses with Resource" true
    (match Buffer_pool.pin pool pgr b with
    | _ -> false
    | exception Err.Error_exn e -> Err.kind e = Err.Resource);
  Buffer_pool.unpin pool pgr c;
  Buffer_pool.unpin pool pgr a;
  (* all unpinned again: the pin succeeds by evicting *)
  ignore (Buffer_pool.pin pool pgr b);
  Buffer_pool.unpin pool pgr b;
  let s = Buffer_pool.stats pool in
  Alcotest.(check bool) "peak pinned tracked" true
    (s.Buffer_pool.peak_pinned >= 2)

let test_lru_replacement () =
  let pool = Buffer_pool.create ~cap:3 () in
  let pgr = Pager.create_mem ~page_size:256 () in
  let ids = Array.init 3 (fun k -> Buffer_pool.alloc pool pgr [| prow k "p" |]) in
  (* touch page 0 so it is the most recently used *)
  ignore (Buffer_pool.with_page pool pgr ids.(0) Fun.id);
  (* force an eviction; the victim must not be page 0 *)
  ignore (Buffer_pool.alloc pool pgr [| prow 9 "q" |]);
  let misses0 = (Buffer_pool.stats pool).Buffer_pool.misses in
  ignore (Buffer_pool.with_page pool pgr ids.(0) Fun.id);
  Alcotest.(check int) "recently-used page survived the eviction" misses0
    (Buffer_pool.stats pool).Buffer_pool.misses;
  (* reservations compete with frames for the cap *)
  Alcotest.(check bool) "over-cap reservation refused with Resource" true
    (match Buffer_pool.reserve pool 4 with
    | () -> false
    | exception Err.Error_exn e -> Err.kind e = Err.Resource);
  Buffer_pool.reserve pool 2;
  let s = Buffer_pool.stats pool in
  Alcotest.(check int) "reserved pages counted" 2 s.Buffer_pool.reserved;
  Alcotest.(check bool) "reserved pages count into pinned" true
    (s.Buffer_pool.pinned >= 2);
  Buffer_pool.release pool 2;
  Alcotest.(check int) "release returns the pages" 0
    (Buffer_pool.stats pool).Buffer_pool.reserved

(* ---------------- stats ---------------- *)

let test_stats () =
  let h = Heap.create simple_schema in
  List.iter (Heap.insert h)
    [
      [| Value.Int 1; Value.Str "x" |];
      [| Value.Int 1; Value.Str "y" |];
      [| Value.Int 2; Value.Str "x" |];
      [| Value.Null; Value.Str "x" |];
    ];
  let s = Stats.collect h in
  Alcotest.(check int) "row count" 4 (Stats.row_count s);
  Alcotest.(check int) "ndv a" 2 (Stats.col s 0).Stats.ndv;
  Alcotest.(check int) "nulls a" 1 (Stats.col s 0).Stats.nulls;
  Alcotest.(check int) "ndv b" 2 (Stats.col s 1).Stats.ndv;
  Alcotest.(check bool) "min a" true
    (Value.null_eq (Stats.col s 0).Stats.min_v (Value.Int 1));
  Alcotest.(check bool) "max a" true
    (Value.null_eq (Stats.col s 0).Stats.max_v (Value.Int 2));
  (* distinct combinations: capped at row count *)
  Alcotest.(check int) "ndv over (a,b)" 4 (Stats.ndv_of_cols s [| 0; 1 |]);
  Alcotest.(check int) "ndv of no columns" 1 (Stats.ndv_of_cols s [||])

(* ---------------- database constraint enforcement ---------------- *)

let make_db () =
  let db = Database.create () in
  Database.create_domain db
    {
      Catalog.dname = "Pos";
      dtype = Ctype.Int;
      dcheck = Some (Expr.Cmp (Expr.Gt, Expr.col "" "VALUE", Expr.int 0));
    };
  Database.create_table db
    (Table_def.make "Parent"
       [ col "pk" Ctype.Int; col "label" Ctype.String ]
       [ Constr.Primary_key [ "pk" ] ]);
  Database.create_table db
    (Table_def.make "Child"
       [
         col "id" Ctype.Int;
         col "uniq" Ctype.Int;
         col "parent" Ctype.Int;
         { Table_def.cname = "amount"; ctype = Ctype.Int; domain = Some "Pos" };
         col "must" Ctype.String;
       ]
       [
         Constr.Primary_key [ "id" ];
         Constr.Unique [ "uniq" ];
         Constr.Not_null "must";
         Constr.Check (Expr.Cmp (Expr.Lt, Expr.col "" "amount", Expr.int 100));
         Constr.Foreign_key
           { cols = [ "parent" ]; ref_table = "Parent"; ref_cols = [ "pk" ] };
       ]);
  Database.insert_exn db "Parent" [ Value.Int 1; Value.Str "one" ];
  Database.insert_exn db "Parent" [ Value.Int 2; Value.Str "two" ];
  db

let ok_row ?(id = 10) ?(uniq = Value.Int 10) ?(parent = Value.Int 1)
    ?(amount = Value.Int 5) ?(must = Value.Str "m") () =
  [ Value.Int id; uniq; parent; amount; must ]

let expect_error db table row msg_part =
  match Database.insert db table row with
  | Ok () -> Alcotest.fail ("expected rejection: " ^ msg_part)
  | Error e ->
      let msg = Eager_robust.Err.to_string e in
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "error %S mentions %S" msg msg_part)
        true (contains msg msg_part)

let test_insert_ok () =
  let db = make_db () in
  Alcotest.(check bool) "clean insert" true
    (Result.is_ok (Database.insert db "Child" (ok_row ())));
  Alcotest.(check int) "row landed" 1 (Database.row_count db "Child")

let test_primary_key () =
  let db = make_db () in
  Database.insert_exn db "Child" (ok_row ());
  expect_error db "Child" (ok_row ~uniq:(Value.Int 11) ()) "duplicate key";
  (* PK columns are NOT NULL *)
  expect_error db "Child"
    [ Value.Null; Value.Int 12; Value.Int 1; Value.Int 5; Value.Str "m" ]
    "cannot be NULL"

let test_unique_null_semantics () =
  let db = make_db () in
  Database.insert_exn db "Child" (ok_row ~id:1 ~uniq:Value.Null ());
  (* SQL2 UNIQUE treats NULL as distinct from NULL: a second NULL is fine *)
  Alcotest.(check bool) "second NULL in UNIQUE column accepted" true
    (Result.is_ok (Database.insert db "Child" (ok_row ~id:2 ~uniq:Value.Null ())));
  Database.insert_exn db "Child" (ok_row ~id:3 ~uniq:(Value.Int 7) ());
  expect_error db "Child" (ok_row ~id:4 ~uniq:(Value.Int 7) ()) "duplicate key"

let test_not_null () =
  let db = make_db () in
  expect_error db "Child" (ok_row ~must:Value.Null ()) "cannot be NULL"

let test_check_constraints () =
  let db = make_db () in
  (* CHECK (amount < 100) *)
  expect_error db "Child" (ok_row ~amount:(Value.Int 150) ()) "constraint violated";
  (* domain check (amount > 0) *)
  expect_error db "Child" (ok_row ~amount:(Value.Int 0) ()) "constraint violated";
  (* SQL2: CHECK evaluating to unknown (NULL amount) is satisfied *)
  Alcotest.(check bool) "NULL passes CHECK" true
    (Result.is_ok (Database.insert db "Child" (ok_row ~amount:Value.Null ())))

let test_foreign_key () =
  let db = make_db () in
  expect_error db "Child" (ok_row ~parent:(Value.Int 99) ()) "foreign key";
  (* NULL foreign keys are always allowed *)
  Alcotest.(check bool) "NULL FK accepted" true
    (Result.is_ok (Database.insert db "Child" (ok_row ~parent:Value.Null ())));
  (* late parents work: the key index must refresh *)
  Database.insert_exn db "Parent" [ Value.Int 3; Value.Str "three" ];
  Alcotest.(check bool) "new parent visible" true
    (Result.is_ok
       (Database.insert db "Child" (ok_row ~id:11 ~uniq:(Value.Int 11)
          ~parent:(Value.Int 3) ())))

let test_type_checking () =
  let db = make_db () in
  expect_error db "Child"
    [ Value.Str "nope"; Value.Int 1; Value.Int 1; Value.Int 5; Value.Str "m" ]
    "does not fit type";
  expect_error db "Child" [ Value.Int 1 ] "arity mismatch";
  expect_error db "Nope" (ok_row ()) "unknown table"

let test_stats_cache () =
  let db = make_db () in
  Database.insert_exn db "Child" (ok_row ());
  let s1 = Database.stats db "Child" in
  Alcotest.(check int) "one row" 1 (Stats.row_count s1);
  Database.insert_exn db "Child" (ok_row ~id:20 ~uniq:(Value.Int 20) ());
  let s2 = Database.stats db "Child" in
  Alcotest.(check int) "cache invalidated on growth" 2 (Stats.row_count s2)

let test_histogram () =
  let schema = Schema.make [ (Colref.make "T" "v", Ctype.Int) ] in
  let h = Heap.create schema in
  (* skew: 90 values in [0,10), 10 values in [90,100) *)
  for i = 0 to 89 do
    Heap.insert h [| Value.Int (i mod 10) |]
  done;
  for i = 0 to 9 do
    Heap.insert h [| Value.Int (90 + i) |]
  done;
  let s = Stats.collect h in
  match (Stats.col s 0).Stats.hist with
  | None -> Alcotest.fail "numeric column should have a histogram"
  | Some hist ->
      Alcotest.(check int) "summarises all values" 100 hist.Stats.total;
      let below v = Stats.fraction_below hist v in
      Alcotest.(check bool)
        (Printf.sprintf "~90%% below 50 (got %.2f)" (below 50.))
        true
        (below 50. > 0.85 && below 50. < 0.95);
      Alcotest.(check (float 1e-9)) "nothing below min" 0. (below 0.);
      Alcotest.(check (float 1e-9)) "everything below max+1" 1. (below 100.);
      Alcotest.(check bool) "monotone" true (below 20. <= below 80.)

let test_histogram_absent_for_strings () =
  let schema = Schema.make [ (Colref.make "T" "s", Ctype.String) ] in
  let h = Heap.create schema in
  Heap.insert h [| Value.Str "x" |];
  let s = Stats.collect h in
  Alcotest.(check bool) "no histogram for strings" true
    ((Stats.col s 0).Stats.hist = None)

(* ---------------- DELETE / UPDATE ---------------- *)

let col_of tname name = Colref.make tname name

let test_delete () =
  let db = make_db () in
  Database.insert_exn db "Child" (ok_row ~id:1 ~uniq:(Value.Int 1) ());
  Database.insert_exn db "Child" (ok_row ~id:2 ~uniq:(Value.Int 2) ());
  Database.insert_exn db "Child" (ok_row ~id:3 ~uniq:(Value.Int 3) ~amount:Value.Null ());
  (* delete where id >= 2: the NULL-amount row with id 3 goes too *)
  let where = Expr.Cmp (Expr.Ge, Expr.Col (col_of "Child" "id"), Expr.int 2) in
  (match Database.delete db "Child" ~where () with
  | Ok n -> Alcotest.(check int) "two deleted" 2 n
  | Error e -> Alcotest.fail (Eager_robust.Err.to_string e));
  Alcotest.(check int) "one left" 1 (Database.row_count db "Child");
  (* unknown predicate keeps rows: amount = 5 is unknown for NULL amount *)
  Database.insert_exn db "Child" (ok_row ~id:9 ~uniq:(Value.Int 9) ~amount:Value.Null ());
  let where2 =
    Expr.Cmp (Expr.Ne, Expr.Col (col_of "Child" "amount"), Expr.int (-1))
  in
  (match Database.delete db "Child" ~where:where2 () with
  | Ok n -> Alcotest.(check int) "NULL amount row kept (unknown)" 1 n
  | Error e -> Alcotest.fail (Eager_robust.Err.to_string e));
  Alcotest.(check int) "NULL row survives" 1 (Database.row_count db "Child")

let test_delete_fk_restrict () =
  let db = make_db () in
  Database.insert_exn db "Child" (ok_row ~parent:(Value.Int 1) ());
  (* parent 1 is referenced: deleting it must fail *)
  let where = Expr.eq (Expr.Col (col_of "Parent" "pk")) (Expr.int 1) in
  (match Database.delete db "Parent" ~where () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "referenced parent must not be deletable");
  (* parent 2 is free *)
  let where2 = Expr.eq (Expr.Col (col_of "Parent" "pk")) (Expr.int 2) in
  (match Database.delete db "Parent" ~where:where2 () with
  | Ok 1 -> ()
  | Ok n -> Alcotest.fail (Printf.sprintf "expected 1, got %d" n)
  | Error e -> Alcotest.fail (Eager_robust.Err.to_string e));
  (* after deleting the child, parent 1 becomes deletable *)
  (match Database.delete db "Child" ~where:Expr.etrue () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Eager_robust.Err.to_string e));
  match Database.delete db "Parent" ~where () with
  | Ok 1 -> ()
  | _ -> Alcotest.fail "parent should now be deletable"

let test_update_basic () =
  let db = make_db () in
  Database.insert_exn db "Child" (ok_row ~id:1 ~uniq:(Value.Int 1) ~amount:(Value.Int 5) ());
  Database.insert_exn db "Child" (ok_row ~id:2 ~uniq:(Value.Int 2) ~amount:(Value.Int 7) ());
  (* amount := amount + 10 where id = 1 *)
  let set =
    [ ("amount",
       Expr.Arith (Expr.Add, Expr.Col (col_of "Child" "amount"), Expr.int 10)) ]
  in
  let where = Expr.eq (Expr.Col (col_of "Child" "id")) (Expr.int 1) in
  (match Database.update db "Child" ~set ~where () with
  | Ok n -> Alcotest.(check int) "one updated" 1 n
  | Error e -> Alcotest.fail (Eager_robust.Err.to_string e));
  let h = Database.heap db "Child" in
  let amount_of id =
    let schema = Heap.schema h in
    let idi = Schema.index_of schema (col_of "Child" "id") in
    let ida = Schema.index_of schema (col_of "Child" "amount") in
    let r =
      List.find (fun r -> Value.null_eq r.(idi) (Value.Int id)) (Heap.to_list h)
    in
    r.(ida)
  in
  Alcotest.(check bool) "updated to 15" true (Value.null_eq (amount_of 1) (Value.Int 15));
  Alcotest.(check bool) "other row untouched" true
    (Value.null_eq (amount_of 2) (Value.Int 7))

let test_update_constraint_enforcement () =
  let db = make_db () in
  Database.insert_exn db "Child" (ok_row ~id:1 ~uniq:(Value.Int 1) ());
  Database.insert_exn db "Child" (ok_row ~id:2 ~uniq:(Value.Int 2) ());
  let upd set where = Database.update db "Child" ~set ~where () in
  let id_eq n = Expr.eq (Expr.Col (col_of "Child" "id")) (Expr.int n) in
  (* CHECK violated *)
  (match upd [ ("amount", Expr.int 500) ] (id_eq 1) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "CHECK must reject 500");
  (* NOT NULL violated *)
  (match upd [ ("must", Expr.Const Value.Null) ] (id_eq 1) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "NOT NULL must reject");
  (* key collision *)
  (match upd [ ("id", Expr.int 2) ] (id_eq 1) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate PK must reject");
  (* FK violated *)
  (match upd [ ("parent", Expr.int 999) ] (id_eq 1) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown parent must reject");
  (* type violated *)
  (match upd [ ("amount", Expr.str "oops") ] (id_eq 1) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "type error must reject");
  (* a failing update leaves the table unchanged *)
  Alcotest.(check int) "no partial effects" 2 (Database.row_count db "Child")

let test_update_incoming_fk () =
  let db = make_db () in
  Database.insert_exn db "Child" (ok_row ~parent:(Value.Int 1) ());
  (* changing the referenced key away must fail... *)
  let set = [ ("pk", Expr.int 77) ] in
  let where = Expr.eq (Expr.Col (col_of "Parent" "pk")) (Expr.int 1) in
  (match Database.update db "Parent" ~set ~where () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "referenced key change must be rejected");
  (* ...but changing an unreferenced one is fine *)
  let where2 = Expr.eq (Expr.Col (col_of "Parent" "pk")) (Expr.int 2) in
  match Database.update db "Parent" ~set:[ ("pk", Expr.int 88) ] ~where:where2 () with
  | Ok 1 -> ()
  | _ -> Alcotest.fail "unreferenced key change should work"

let test_key_index_rebuild_after_delete () =
  let db = make_db () in
  Database.insert_exn db "Child" (ok_row ~id:1 ~uniq:(Value.Int 1) ());
  let where = Expr.eq (Expr.Col (col_of "Child" "id")) (Expr.int 1) in
  (match Database.delete db "Child" ~where () with
  | Ok 1 -> ()
  | _ -> Alcotest.fail "delete failed");
  (* the key index must have been invalidated: re-inserting id 1 works *)
  Alcotest.(check bool) "re-insert after delete" true
    (Result.is_ok (Database.insert db "Child" (ok_row ~id:1 ~uniq:(Value.Int 1) ())))

(* ---------------- secondary indexes ---------------- *)

let test_secondary_index () =
  let db = make_db () in
  (match Database.create_index db ~name:"child_by_parent" ~table:"Child"
           ~cols:[ "parent" ] with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  Database.insert_exn db "Child" (ok_row ~id:1 ~uniq:(Value.Int 1) ~parent:(Value.Int 1) ());
  Database.insert_exn db "Child" (ok_row ~id:2 ~uniq:(Value.Int 2) ~parent:(Value.Int 1) ());
  Database.insert_exn db "Child" (ok_row ~id:3 ~uniq:(Value.Int 3) ~parent:(Value.Int 2) ());
  Database.insert_exn db "Child" (ok_row ~id:4 ~uniq:(Value.Int 4) ~parent:Value.Null ());
  let def =
    Option.get (Database.find_equality_index db ~table:"Child" ~col:"parent")
  in
  Alcotest.(check int) "two rows for parent 1" 2
    (List.length (Database.index_lookup db def [ Value.Int 1 ]));
  Alcotest.(check int) "one row for parent 2" 1
    (List.length (Database.index_lookup db def [ Value.Int 2 ]));
  Alcotest.(check int) "nothing for parent 9" 0
    (List.length (Database.index_lookup db def [ Value.Int 9 ]));
  (* NULL lookups find nothing, and NULL keys are not indexed *)
  Alcotest.(check int) "NULL finds nothing" 0
    (List.length (Database.index_lookup db def [ Value.Null ]));
  (* index tracks later inserts *)
  Database.insert_exn db "Child" (ok_row ~id:5 ~uniq:(Value.Int 5) ~parent:(Value.Int 2) ());
  Alcotest.(check int) "insert visible" 2
    (List.length (Database.index_lookup db def [ Value.Int 2 ]));
  (* ... and rebuilds after a delete *)
  let where = Expr.eq (Expr.Col (Colref.make "Child" "id")) (Expr.int 2) in
  (match Database.delete db "Child" ~where () with
  | Ok 1 -> ()
  | _ -> Alcotest.fail "delete failed");
  Alcotest.(check int) "delete visible" 1
    (List.length (Database.index_lookup db def [ Value.Int 1 ]));
  (* errors *)
  Alcotest.(check bool) "duplicate index name" true
    (Result.is_error
       (Database.create_index db ~name:"child_by_parent" ~table:"Child"
          ~cols:[ "id" ]));
  Alcotest.(check bool) "unknown column" true
    (Result.is_error
       (Database.create_index db ~name:"i2" ~table:"Child" ~cols:[ "zzz" ]))

let () =
  Alcotest.run "storage"
    [
      ( "heap",
        [
          Alcotest.test_case "basics" `Quick test_heap_basics;
          Alcotest.test_case "growth" `Quick test_heap_growth;
          Alcotest.test_case "arity check" `Quick test_heap_arity_check;
        ] );
      ( "pages",
        [
          Alcotest.test_case "codec round-trip" `Quick test_page_roundtrip;
          Alcotest.test_case "every byte of corruption detected" `Quick
            test_corruption_every_byte;
          Alcotest.test_case "pinned pages never evicted" `Quick
            test_pinned_never_evicted;
          Alcotest.test_case "LRU replacement and reservations" `Quick
            test_lru_replacement;
        ] );
      ( "stats",
        [
          Alcotest.test_case "collect" `Quick test_stats;
          Alcotest.test_case "histograms" `Quick test_histogram;
          Alcotest.test_case "no histogram for strings" `Quick
            test_histogram_absent_for_strings;
        ] );
      ( "constraints",
        [
          Alcotest.test_case "clean insert" `Quick test_insert_ok;
          Alcotest.test_case "primary key" `Quick test_primary_key;
          Alcotest.test_case "UNIQUE with NULLs" `Quick test_unique_null_semantics;
          Alcotest.test_case "NOT NULL" `Quick test_not_null;
          Alcotest.test_case "CHECK and domains" `Quick test_check_constraints;
          Alcotest.test_case "foreign keys" `Quick test_foreign_key;
          Alcotest.test_case "types and arity" `Quick test_type_checking;
          Alcotest.test_case "stats cache" `Quick test_stats_cache;
        ] );
      ( "dml",
        [
          Alcotest.test_case "DELETE semantics" `Quick test_delete;
          Alcotest.test_case "DELETE is FK-restricted" `Quick
            test_delete_fk_restrict;
          Alcotest.test_case "UPDATE basics" `Quick test_update_basic;
          Alcotest.test_case "UPDATE enforcement" `Quick
            test_update_constraint_enforcement;
          Alcotest.test_case "UPDATE incoming FKs" `Quick test_update_incoming_fk;
          Alcotest.test_case "key index rebuild" `Quick
            test_key_index_rebuild_after_delete;
        ] );
      ( "indexes",
        [ Alcotest.test_case "secondary index" `Quick test_secondary_index ] );
    ]
