(* Server tests: the monotonised clock, admission control (slots, FIFO
   fairness, the global row pool), the wire protocol's deadline-bounded
   framing, LSN-stamped snapshot reuse, and end-to-end socket sessions —
   concurrent writers sharing group commits, BUSY shed responses with
   retry-after hints, typed mid-stream Resource degradation, STATUS
   telemetry, injected server.* faults, and die-on-broken-wal. *)

open Eager_storage
open Eager_parser
open Eager_durable
open Eager_robust
open Eager_server

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go k = k + m <= n && (String.sub s k m = sub || go (k + 1)) in
  go 0

let fresh_path =
  let n = ref 0 in
  fun name ext ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "eagerdb_srv_%s_%d_%d%s" name (Unix.getpid ()) !n ext)

let ok name = function
  | Ok v -> v
  | Error e -> Alcotest.fail (name ^ ": " ^ Err.to_string e)

(* ========================= monotonised clock ====================== *)

let test_clock () =
  let prev = ref (Clock.now_ms ()) in
  for _ = 1 to 1000 do
    let now = Clock.now_ms () in
    if now < !prev then Alcotest.fail "clock went backwards";
    prev := now
  done;
  let t0 = Clock.now_ms () in
  Clock.sleep_ms 20.;
  let dt = Clock.now_ms () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "sleep advances the clock (%.1f ms)" dt)
    true (dt >= 10.)

(* ========================= admission control ====================== *)

let adm_config =
  {
    Admission.max_sessions = 2;
    max_active = 1;
    max_queued = 0;
    max_wait_ms = 50.;
    global_rows = None;
    statement_limits = Eager_robust.Governor.no_limits;
  }

let test_admission_refusal () =
  let t = Admission.create adm_config in
  let k1 = match Admission.admit t with Ok k -> k | Error _ -> Alcotest.fail "first admit refused" in
  (match Admission.admit t with
  | Ok _ -> Alcotest.fail "over-cap admit accepted"
  | Error (r : Admission.refusal) ->
      Alcotest.(check bool) "typed Resource" true
        (Err.kind r.reason = Err.Resource);
      Alcotest.(check bool) "carries a retry hint" true (r.retry_after_ms > 0));
  Admission.release t k1;
  Admission.release t k1 (* idempotent *);
  (match Admission.admit t with
  | Ok k -> Admission.release t k
  | Error _ -> Alcotest.fail "slot not returned");
  (* session slots are independent of statement slots *)
  let open_ok tag =
    match Admission.open_session t with
    | Ok () -> ()
    | Error _ -> Alcotest.fail (tag ^ ": session refused under the cap")
  in
  open_ok "s1";
  open_ok "s2";
  (match Admission.open_session t with
  | Ok () -> Alcotest.fail "session cap ignored"
  | Error (r : Admission.refusal) ->
      Alcotest.(check bool) "typed Resource" true
        (Err.kind r.reason = Err.Resource));
  Admission.close_session t;
  Admission.close_session t;
  Alcotest.(check int) "sessions drained" 0 (Admission.sessions t)

let test_admission_fifo () =
  let cfg =
    { adm_config with max_queued = 4; max_wait_ms = 5000.; max_sessions = 8 }
  in
  let t = Admission.create cfg in
  let holder =
    match Admission.admit t with
    | Ok k -> k
    | Error _ -> Alcotest.fail "holder refused"
  in
  let mu = Mutex.create () in
  let order = ref [] in
  let spawn tag delay =
    Thread.create
      (fun () ->
        Thread.delay delay;
        match Admission.admit t with
        | Ok k ->
            Mutex.lock mu;
            order := tag :: !order;
            Mutex.unlock mu;
            Thread.delay 0.01;
            Admission.release t k
        | Error _ ->
            Mutex.lock mu;
            order := (tag ^ "!") :: !order;
            Mutex.unlock mu)
      ()
  in
  (* stagger arrivals so the queue order is unambiguous *)
  let a = spawn "a" 0. in
  let b = spawn "b" 0.08 in
  let c = spawn "c" 0.16 in
  Thread.delay 0.35;
  Admission.release t holder;
  List.iter Thread.join [ a; b; c ];
  Alcotest.(check (list string))
    "admitted strictly in arrival order" [ "a"; "b"; "c" ] (List.rev !order)

let test_global_pool () =
  let p = Governor.pool ~cap:10 in
  let g1 = Governor.create ~pool:p Governor.no_limits in
  Governor.charge_rows g1 6;
  Alcotest.(check int) "pool charged" 6 (Governor.pool_in_use p);
  let g2 = Governor.create ~pool:p Governor.no_limits in
  (match Governor.charge_rows g2 5 with
  | () -> Alcotest.fail "over-budget charge accepted"
  | exception Err.Error_exn e ->
      Alcotest.(check bool) "typed Resource" true (Err.kind e = Err.Resource);
      Alcotest.(check bool) "names the global budget" true
        (contains (Err.to_string e) "global row budget"));
  (* the breaching charge sticks until the statement unwinds *)
  Alcotest.(check int) "charge sticks" 11 (Governor.pool_in_use p);
  Governor.finish g2;
  Governor.finish g2;
  Alcotest.(check int) "g2 returned" 6 (Governor.pool_in_use p);
  Governor.finish g1;
  Alcotest.(check int) "drained" 0 (Governor.pool_in_use p)

(* =========================== wire framing ========================= *)

let test_wire_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let ca = Wire.of_fd a and cb = Wire.of_fd b in
  ok "w1" (Wire.write_frame ca ~verb:"STMT" ~args:[ "x"; "y" ] "line one\nline two");
  ok "w2" (Wire.write_frame ca ~verb:"PING" "");
  (match ok "r1" (Wire.read_frame cb ~timeout_ms:2000.) with
  | Some { Wire.verb = "STMT"; args = [ "x"; "y" ]; payload } ->
      Alcotest.(check string) "payload with newlines" "line one\nline two"
        payload
  | _ -> Alcotest.fail "first frame mangled");
  (* the second frame was already buffered by the first read *)
  (match ok "r2" (Wire.read_frame cb ~timeout_ms:2000.) with
  | Some { Wire.verb = "PING"; args = []; payload = "" } -> ()
  | _ -> Alcotest.fail "second frame mangled");
  (* no data: the read must time out, typed, never hang *)
  let t0 = Clock.now_ms () in
  (match Wire.read_frame cb ~timeout_ms:80. with
  | Error e ->
      Alcotest.(check bool) "typed Io" true (Err.kind e = Err.Io);
      Alcotest.(check bool) "says timeout" true
        (contains (Err.to_string e) "timed out")
  | Ok _ -> Alcotest.fail "read with no data did not time out");
  Alcotest.(check bool) "timed out promptly" true (Clock.now_ms () -. t0 < 2000.);
  (* orderly EOF at a frame boundary is Ok None *)
  Wire.close ca;
  (match ok "eof" (Wire.read_frame cb ~timeout_ms:2000.) with
  | None -> ()
  | Some _ -> Alcotest.fail "EOF should be Ok None");
  Wire.close cb

(* ======================= LSN-stamped snapshots ==================== *)

let stmt db sql = ignore (Binder.exec_statement db (Parser.parse_statement sql))

let test_snapshot_reuse () =
  let db = Database.create () in
  stmt db "CREATE TABLE t (a INT)";
  stmt db "INSERT INTO t VALUES (1)";
  let sn = Snapshot.create () in
  let v1 = Snapshot.get sn ~lsn:1 ~db in
  Alcotest.(check int) "snapshot sees one row" 1 (Database.row_count v1 "t");
  (* a later write is invisible to the stamped snapshot *)
  stmt db "INSERT INTO t VALUES (2)";
  let v1' = Snapshot.get sn ~lsn:1 ~db in
  Alcotest.(check int) "same-LSN reader reuses the frozen copy" 1
    (Database.row_count v1' "t");
  Alcotest.(check int) "one deep copy so far" 1 (Snapshot.copies sn);
  let v2 = Snapshot.get sn ~lsn:2 ~db in
  Alcotest.(check int) "new LSN sees the commit" 2 (Database.row_count v2 "t");
  Alcotest.(check int) "second copy taken" 2 (Snapshot.copies sn);
  Alcotest.(check (option int)) "cache holds the newest" (Some 2)
    (Snapshot.cached_lsn sn);
  (* the old view is immutable even as the live db moves on *)
  stmt db "INSERT INTO t VALUES (3)";
  Alcotest.(check int) "old view unchanged" 1 (Database.row_count v1 "t")

(* ====================== end-to-end socket tests =================== *)

let start_server ?(admission = Admission.default_config) ?db_dir
    ?(die_on_broken_wal = false) name =
  let sock = fresh_path name ".sock" in
  let cfg =
    {
      (Server.default_config (Server.L_unix sock)) with
      admission;
      db_dir;
      die_on_broken_wal;
      read_timeout_ms = 5000.;
    }
  in
  let t, _ = ok "server start" (Server.start cfg) in
  (t, Client.config ~timeout_ms:5000. ~retries:0 (Client.A_unix sock))

let run_ok ccfg sql =
  match ok "run" (Client.run ccfg sql) with
  | Client.Ok_text txt -> txt
  | Client.Refused { msg; _ } -> Alcotest.fail ("refused: " ^ msg)
  | Client.Failed { msg; kind } ->
      Alcotest.fail (Printf.sprintf "failed [%s]: %s" kind msg)

let test_end_to_end () =
  Fault.reset ();
  let srv, ccfg = start_server "e2e" in
  let out = run_ok ccfg "CREATE TABLE t (a INT, b INT); INSERT INTO t VALUES (1,10),(2,20),(1,30);" in
  Alcotest.(check bool) "insert acked" true (contains out "3 row(s) inserted");
  let out = run_ok ccfg "SELECT t.a, SUM(t.b) FROM t GROUP BY t.a;" in
  Alcotest.(check bool) "rows rendered" true (contains out "(2 rows)");
  let out = run_ok ccfg "STATUS;" in
  Alcotest.(check bool) "global line" true (contains out "server: sessions=");
  Alcotest.(check bool) "per-session line" true (contains out "session ");
  let out = run_ok ccfg "EXPLAIN SELECT t.a, SUM(t.b) FROM t GROUP BY t.a;" in
  Alcotest.(check bool) "explain carries telemetry" true
    (contains out "-- session ");
  (match ok "parse error" (Client.run ccfg "SELEKT;") with
  | Client.Failed { kind; _ } -> Alcotest.(check string) "typed" "Parse" kind
  | _ -> Alcotest.fail "bad SQL should fail typed");
  (* the session (and server) survived the failed statement *)
  let out = run_ok ccfg "SELECT t.a FROM t;" in
  Alcotest.(check bool) "still serving" true (contains out "(3 rows)");
  Server.stop srv

let test_session_cap_busy () =
  Fault.reset ();
  let admission = { Admission.default_config with max_sessions = 1 } in
  let srv, ccfg = start_server ~admission "busy" in
  let held = ok "connect" (Client.connect ccfg) in
  ok "held session serves" (Client.ping held);
  (* the slot is taken the moment the session opens, before any frame *)
  (match Client.run ccfg "STATUS;" with
  | Ok (Client.Refused { retry_after_ms; msg }) ->
      Alcotest.(check bool) "hint" true (retry_after_ms >= 0);
      Alcotest.(check bool) "typed Resource message" true
        (contains msg "Resource")
  | Error _ ->
      (* the shed session was torn down before the BUSY landed — an
         acceptable (transient, retryable) shape of the same refusal *)
      ()
  | Ok (Client.Ok_text _) -> Alcotest.fail "second session was not shed"
  | Ok (Client.Failed { msg; _ }) ->
      Alcotest.fail ("shed surfaced as a statement failure: " ^ msg));
  Client.close held;
  (* with retries the client rides out the release race *)
  let retrying = { ccfg with Client.retries = 10; backoff_ms = 20. } in
  let out = run_ok retrying "STATUS;" in
  Alcotest.(check bool) "slot freed" true (contains out "server:");
  Server.stop srv

let test_global_rows_degrade () =
  Fault.reset ();
  let admission = { Admission.default_config with global_rows = Some 5 } in
  let srv, ccfg = start_server ~admission "degrade" in
  ignore (run_ok ccfg "CREATE TABLE t (a INT); INSERT INTO t VALUES (1),(2),(3),(4),(5),(6),(7),(8),(9),(10);");
  (match ok "over budget" (Client.run ccfg "SELECT t.a FROM t;") with
  | Client.Failed { kind; msg } ->
      Alcotest.(check string) "typed Resource" "Resource" kind;
      Alcotest.(check bool) "names the global budget" true
        (contains msg "global row budget")
  | _ -> Alcotest.fail "over-budget read should degrade typed");
  (* degradation is per statement: the server keeps serving *)
  let out = run_ok ccfg "STATUS;" in
  Alcotest.(check bool) "degraded counted" true (contains out "degraded=1");
  Server.stop srv

let test_concurrent_writers_group_commit () =
  Fault.reset ();
  let dir = fresh_path "gc" ".db" in
  let srv, ccfg = start_server ~db_dir:dir "gc" in
  ignore (run_ok ccfg "CREATE TABLE t (id INT NOT NULL, v INT, PRIMARY KEY (id));");
  let n = 8 in
  let failures = ref [] in
  let mu = Mutex.create () in
  let writer i =
    Thread.create
      (fun () ->
        let sql = Printf.sprintf "INSERT INTO t VALUES (%d, %d);" i (i * 10) in
        match Client.run { ccfg with Client.retries = 5; backoff_ms = 10.; seed = i } sql with
        | Ok (Client.Ok_text out) when contains out "1 row(s) inserted" -> ()
        | r ->
            Mutex.lock mu;
            failures :=
              (match r with
              | Ok (Client.Failed { msg; _ }) -> msg
              | Ok (Client.Refused { msg; _ }) -> "refused: " ^ msg
              | Error e -> Err.to_string e
              | Ok (Client.Ok_text out) -> "odd ack: " ^ out)
              :: !failures;
            Mutex.unlock mu)
      ()
  in
  let threads = List.init n writer in
  List.iter Thread.join threads;
  (match !failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.fail
        (Printf.sprintf "%d/%d writers failed, e.g. %s" (List.length !failures)
           n f));
  let out = run_ok ccfg "SELECT t.id FROM t;" in
  Alcotest.(check bool) "every acked write visible" true
    (contains out (Printf.sprintf "(%d rows)" n));
  let status = run_ok ccfg "STATUS;" in
  Alcotest.(check bool) "group commits happened" true
    (contains status "group_commits=");
  Server.stop srv;
  (* every acked write is durable: reopen the directory directly *)
  let s, _ = ok "reopen" (Durable.open_ ~dir ()) in
  Alcotest.(check int) "acked rows survived restart" n
    (Database.row_count (Durable.db s) "t");
  Durable.close s

let test_server_read_fault () =
  Fault.reset ();
  let srv, ccfg = start_server "readfault" in
  ignore (run_ok ccfg "CREATE TABLE t (a INT);");
  (* let the finished session's thread drain past its last read_frame
     (which checks the fault point) before arming, so the one-shot fault
     deterministically hits the next session's first read *)
  Thread.delay 0.1;
  Fault.arm_nth "server.read" 1;
  (match Client.run ccfg "STATUS;" with
  | Ok (Client.Failed { kind; msg }) ->
      Alcotest.(check string) "typed Io" "Io" kind;
      Alcotest.(check bool) "names the fault" true
        (contains msg "server.read")
  | Ok _ -> Alcotest.fail "injected read fault should fail the request"
  | Error _ -> (* the server may drop the session before answering *) ());
  Fault.reset ();
  (* one session died; the server did not *)
  let out = run_ok ccfg "STATUS;" in
  Alcotest.(check bool) "server survived" true (contains out "server:");
  Server.stop srv

let test_resolve_host () =
  (match Wire.resolve_host "localhost" with
  | Ok a ->
      Alcotest.(check string) "loopback" "127.0.0.1"
        (Unix.string_of_inet_addr a)
  | Error e -> Alcotest.fail (Err.to_string e));
  (match Wire.resolve_host "192.0.2.7" with
  | Ok a ->
      Alcotest.(check string) "dotted-quad literal" "192.0.2.7"
        (Unix.string_of_inet_addr a)
  | Error e -> Alcotest.fail (Err.to_string e));
  match Wire.resolve_host "no-such-host.invalid" with
  | Ok _ -> Alcotest.fail "resolved an .invalid name"
  | Error e -> Alcotest.(check bool) "typed Io" true (Err.kind e = Err.Io)

(* regression: stopping the server while writers are mid-request used to
   race the commit thread's exit — a batch enqueued just after the final
   drain parked its session on an ivar nobody fills, and Server.stop
   (which joins session threads) deadlocked.  enqueue now refuses under
   the queue mutex once shutdown begins, so stop must return promptly
   and every writer must end with an ack or a typed error. *)
let test_stop_under_write_load () =
  Fault.reset ();
  let srv, ccfg = start_server "stopload" in
  ignore (run_ok ccfg "CREATE TABLE t (a INT);");
  let writers =
    List.init 4 (fun i ->
        Thread.create
          (fun () ->
            for k = 0 to 30 do
              ignore
                (Client.run
                   { ccfg with Client.retries = 0; seed = (i * 100) + k }
                   (Printf.sprintf "INSERT INTO t VALUES (%d);" ((i * 100) + k)))
            done)
          ())
  in
  Thread.delay 0.05;
  let mu = Mutex.create () in
  let stopped = ref false in
  let stopper =
    Thread.create
      (fun () ->
        Server.stop srv;
        Mutex.lock mu;
        stopped := true;
        Mutex.unlock mu)
      ()
  in
  let deadline = Clock.now_ms () +. 15_000. in
  let rec poll () =
    let done_ =
      Mutex.lock mu;
      let d = !stopped in
      Mutex.unlock mu;
      d
    in
    if done_ then ()
    else if Clock.now_ms () > deadline then
      Alcotest.fail "Server.stop wedged under concurrent write load"
    else begin
      Thread.delay 0.05;
      poll ()
    end
  in
  poll ();
  List.iter Thread.join writers;
  Thread.join stopper

(* ========================== replication =========================== *)

let mk_rec seq payload = { Wal.seq; kind = Wal.Stmt; payload; epoch = 0 }

let test_repl_hub () =
  let hub = Repl.create_hub ~retain:3 ~lsn:0 in
  (* fresh records are delivered in order *)
  Repl.publish hub [ mk_rec 1 "a"; mk_rec 2 "b" ];
  (match Repl.wait_since hub ~seq:0 ~timeout_ms:1000. with
  | Repl.Records es ->
      Alcotest.(check (list int)) "in order" [ 1; 2 ]
        (List.map (fun (e : Repl.entry) -> e.record.Wal.seq) es)
  | _ -> Alcotest.fail "expected fresh records");
  Alcotest.(check int) "hub tracks the tip" 2 (Repl.hub_last_seq hub);
  (* a caught-up sender waits out the timeout and gets Idle *)
  (match Repl.wait_since hub ~seq:2 ~timeout_ms:50. with
  | Repl.Idle -> ()
  | _ -> Alcotest.fail "caught-up sender should idle");
  (* eviction past the retention window turns into a Gap, not a skip *)
  Repl.publish hub [ mk_rec 3 "c"; mk_rec 4 "d"; mk_rec 5 "e"; mk_rec 6 "f" ];
  (match Repl.wait_since hub ~seq:2 ~timeout_ms:50. with
  | Repl.Gap -> ()
  | Repl.Records es ->
      Alcotest.fail
        (Printf.sprintf "evicted cursor got records starting at %d"
           (match es with e :: _ -> e.record.Wal.seq | [] -> -1))
  | _ -> Alcotest.fail "evicted cursor should see a gap");
  (* close wakes everyone with Closed *)
  Repl.close_hub hub;
  match Repl.wait_since hub ~seq:6 ~timeout_ms:1000. with
  | Repl.Closed -> ()
  | _ -> Alcotest.fail "closed hub should report Closed"

(* raw-wire REPL handshakes: an in-memory server refuses replication
   outright, and a durable primary refuses a standby claiming a FUTURE
   lsn — diverged history, the split-brain guard *)
let test_repl_handshake_refusals () =
  Fault.reset ();
  let raw_repl sock lsn =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX sock);
    let conn = Wire.of_fd fd in
    ok "handshake"
      (Wire.write_frame conn ~verb:"REPL" ~args:[ string_of_int lsn ] "");
    let frame = ok "reply" (Wire.read_frame conn ~timeout_ms:5000.) in
    Wire.close conn;
    match frame with
    | Some { Wire.verb; payload; _ } -> (verb, payload)
    | None -> Alcotest.fail "server closed without answering the handshake"
  in
  (* in-memory server: no WAL, nothing to ship *)
  let sock_mem = fresh_path "replmem" ".sock" in
  let cfg = { (Server.default_config (Server.L_unix sock_mem)) with read_timeout_ms = 5000. } in
  let srv, _ = ok "start mem" (Server.start cfg) in
  let verb, msg = raw_repl sock_mem 0 in
  Alcotest.(check string) "mem server refuses REPL" "ERR" verb;
  Alcotest.(check bool) "says why" true (contains msg "durable");
  Server.stop srv;
  (* durable primary at lsn 2: a peer claiming lsn 7 has a diverged log *)
  let dir = fresh_path "replsb" ".db" in
  let srv, ccfg = start_server ~db_dir:dir "replsb" in
  ignore (run_ok ccfg "CREATE TABLE t (a INT); INSERT INTO t VALUES (1);");
  let sock =
    match ccfg.Client.addr with Client.A_unix p -> p | _ -> assert false
  in
  let verb, msg = raw_repl sock 7 in
  Alcotest.(check string) "future lsn refused" "ERR" verb;
  Alcotest.(check bool) "names the divergence" true (contains msg "diverged");
  (* an honest handshake still streams *)
  let verb, msg = raw_repl sock 0 in
  Alcotest.(check string) "honest handshake accepted" "OK" verb;
  Alcotest.(check bool) "announces the stream" true (contains msg "streaming");
  Server.stop srv

let start_standby ~primary_sock name =
  let sock = fresh_path name ".sock" in
  let dir = fresh_path name ".db" in
  let cfg =
    {
      (Server.default_config (Server.L_unix sock)) with
      db_dir = Some dir;
      read_timeout_ms = 5000.;
      role =
        Server.Standby
          { primary = Client.A_unix primary_sock; repl_seed = 7 };
    }
  in
  let t, _ = ok "standby start" (Server.start cfg) in
  (t, Client.config ~timeout_ms:5000. ~retries:0 (Client.A_unix sock))

let await ?(timeout_ms = 10_000.) name pred =
  let deadline = Clock.now_ms () +. timeout_ms in
  let rec go () =
    if pred () then ()
    else if Clock.now_ms () > deadline then
      Alcotest.fail ("timed out waiting for " ^ name)
    else begin
      Thread.delay 0.05;
      go ()
    end
  in
  go ()

let test_replication_end_to_end () =
  Fault.reset ();
  let pdir = fresh_path "prim" ".db" in
  let prim, pcfg = start_server ~db_dir:pdir "prim" in
  let psock =
    match pcfg.Client.addr with Client.A_unix p -> p | _ -> assert false
  in
  ignore (run_ok pcfg "CREATE TABLE t (a INT); INSERT INTO t VALUES (1);");
  let stby, scfg = start_standby ~primary_sock:psock "stby" in
  (* the standby catches up from its handshake lsn and then follows *)
  ignore (run_ok pcfg "INSERT INTO t VALUES (2); INSERT INTO t VALUES (3);");
  await "standby catch-up" (fun () ->
      match Client.run scfg "SELECT t.a FROM t;" with
      | Ok (Client.Ok_text out) -> contains out "(3 rows)"
      | _ -> false);
  (* STATUS tells the whole replication story, on both sides *)
  let sstatus = run_ok scfg "STATUS;" in
  Alcotest.(check bool) "standby role line" true
    (contains sstatus "repl: role=standby");
  Alcotest.(check bool) "connected" true (contains sstatus "connected=yes");
  Alcotest.(check bool) "applied lsn" true (contains sstatus "applied_lsn=4");
  Alcotest.(check bool) "no lag" true (contains sstatus "lag_records=0");
  await "primary sees the peer ship lsn 4" (fun () ->
      let p = run_ok pcfg "STATUS;" in
      contains p "repl: role=primary peers=1" && contains p "shipped_lsn=4");
  (* a standby is read-only: writes, checkpoints and backups refuse with
     a typed [Fenced] error whose redirect token names the primary *)
  let noredir = { scfg with Client.redirects = 0 } in
  (match ok "write on standby" (Client.run noredir "INSERT INTO t VALUES (9);") with
  | Client.Failed { kind; msg } ->
      Alcotest.(check string) "typed Fenced" "Fenced" kind;
      Alcotest.(check bool) "names the standby" true
        (contains msg "read-only standby");
      (match Err.redirect_of_msg msg with
      | Some target ->
          Alcotest.(check string) "redirect names the primary"
            ("unix:" ^ psock) target
      | None -> Alcotest.fail "standby refusal carried no redirect token")
  | _ -> Alcotest.fail "standby accepted a write");
  (match ok "backup on standby" (Client.run noredir "CHECKPOINT;") with
  | Client.Failed { msg; _ } ->
      Alcotest.(check bool) "checkpoint refused" true
        (contains msg "read-only standby")
  | _ -> Alcotest.fail "standby accepted a checkpoint");
  (* the default client follows the redirect to the live primary, so the
     same statement sent at the standby lands as a primary commit *)
  ignore (run_ok scfg "INSERT INTO t VALUES (7);");
  await "standby applies the redirected write" (fun () ->
      match Client.run noredir "SELECT t.a FROM t;" with
      | Ok (Client.Ok_text out) -> contains out "(4 rows)"
      | _ -> false);
  (* failover: kill the primary, promote the standby, write through it *)
  Server.stop prim;
  (match Server.promote stby with
  | Ok lsn -> Alcotest.(check int) "promoted at the applied lsn" 5 lsn
  | Error e -> Alcotest.fail ("promote: " ^ Err.to_string e));
  (match Server.promote stby with
  | Ok _ -> Alcotest.fail "second promote should refuse"
  | Error e ->
      Alcotest.(check bool) "already primary" true
        (contains (Err.to_string e) "already primary"));
  let out = run_ok scfg "INSERT INTO t VALUES (4); SELECT t.a FROM t;" in
  Alcotest.(check bool) "promoted node accepts writes" true
    (contains out "(5 rows)");
  let sstatus = run_ok scfg "STATUS;" in
  Alcotest.(check bool) "role flipped" true
    (contains sstatus "repl: role=primary");
  Server.stop stby

(* a live BACKUP under concurrent writers cuts a consistent prefix:
   verify passes, and the restored database holds exactly the first
   [lsn] committed records — acked-but-later writes are absent, torn
   state never appears *)
let test_hot_backup_under_load () =
  Fault.reset ();
  let dir = fresh_path "hotbak" ".db" in
  let srv, ccfg = start_server ~db_dir:dir "hotbak" in
  ignore (run_ok ccfg "CREATE TABLE t (id INT NOT NULL, PRIMARY KEY (id));");
  let stop = ref false in
  let mu = Mutex.create () in
  let writers =
    List.init 4 (fun i ->
        Thread.create
          (fun () ->
            let k = ref 0 in
            let stopped () =
              Mutex.lock mu;
              let s = !stop in
              Mutex.unlock mu;
              s
            in
            while not (stopped ()) do
              ignore
                (Client.run
                   { ccfg with Client.retries = 2; seed = (i * 1000) + !k }
                   (Printf.sprintf "INSERT INTO t VALUES (%d);"
                      ((i * 100_000) + !k)));
              incr k
            done)
          ())
  in
  Thread.delay 0.1;
  let bdir = fresh_path "hotbak" ".bak" in
  let out = run_ok ccfg (Printf.sprintf "BACKUP '%s';" bdir) in
  Alcotest.(check bool) "backup acked with an lsn" true
    (contains out "backup written to");
  Mutex.lock mu;
  stop := true;
  Mutex.unlock mu;
  List.iter Thread.join writers;
  Server.stop srv;
  let blsn = ok "verify" (Backup.verify ~dir:bdir) in
  let rdir = fresh_path "hotbak" ".restored" in
  ignore (ok "restore" (Backup.restore ~from_dir:bdir ~to_dir:rdir));
  let r, _ = ok "reopen restored" (Durable.open_ ~dir:rdir ()) in
  Alcotest.(check int) "restored to the backup lsn" blsn (Durable.lsn r);
  (* lsn 1 was the CREATE TABLE; every later record is one insert *)
  Alcotest.(check int) "exactly the first lsn's rows" (blsn - 1)
    (Database.row_count (Durable.db r) "t");
  Durable.close r

(* the sql client sleeps the server's retry_after_ms hint instead of
   walking its exponential ladder: a shed with a large hint must delay
   the retry by at least (jitter floor x hint) even though the
   configured base backoff is a millisecond *)
let test_client_honors_retry_hint () =
  let sock = fresh_path "hint" ".sock" in
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX sock);
  Unix.listen lfd 4;
  let server =
    Thread.create
      (fun () ->
        (* first attempt: shed with a 150 ms hint; second: serve *)
        let serve reply =
          let fd, _ = Unix.accept lfd in
          let conn = Wire.of_fd fd in
          (match Wire.read_frame conn ~timeout_ms:5000. with
          | Ok (Some _) -> reply conn
          | _ -> ());
          Wire.close conn
        in
        serve (fun conn ->
            ignore (Wire.busy conn ~retry_after_ms:150 "shed for the test"));
        serve (fun conn -> ignore (Wire.ok conn "served")))
      ()
  in
  let cfg =
    Client.config ~timeout_ms:5000. ~retries:1 ~backoff_ms:1. ~seed:3
      (Client.A_unix sock)
  in
  let t0 = Clock.now_ms () in
  (match ok "run" (Client.run cfg "STATUS;") with
  | Client.Ok_text out -> Alcotest.(check string) "served" "served" out
  | _ -> Alcotest.fail "retry did not reach the second serve");
  let dt = Clock.now_ms () -. t0 in
  Thread.join server;
  Unix.close lfd;
  Alcotest.(check bool)
    (Printf.sprintf "slept the hint, not the 1 ms ladder (%.0f ms)" dt)
    true
    (dt >= 0.9 *. 150.)

let test_die_on_broken_wal () =
  Fault.reset ();
  let dir = fresh_path "die" ".db" in
  let srv, ccfg = start_server ~db_dir:dir ~die_on_broken_wal:true "die" in
  ignore (run_ok ccfg "CREATE TABLE t (a INT);");
  Thread.delay 0.1;
  Fault.arm_nth "wal.group_commit" 1;
  (match Client.run ccfg "INSERT INTO t VALUES (1);" with
  | Ok (Client.Failed _) | Error _ -> ()
  | Ok (Client.Ok_text _) -> Alcotest.fail "write was acked across a failed sync"
  | Ok (Client.Refused _) -> Alcotest.fail "unexpected shed");
  Fault.reset ();
  (match Server.wait srv with
  | Error e ->
      Alcotest.(check bool) "fatal is the poisoned WAL" true
        (contains (Err.to_string e) "die-on-broken-wal")
  | Ok () -> Alcotest.fail "server should stop fatally on a poisoned WAL")

(* ================== lease-based automated failover ================ *)

(* A 3-node cluster: kill the primary and exactly one standby
   self-promotes (deterministic election — equal LSNs, smallest address
   wins), bumping the epoch; the other retargets; a redirect-following
   client keeps writing through the transition; no acked write is
   lost. *)
let test_auto_promotion () =
  Fault.reset ();
  let psock = fresh_path "fo_p" ".sock" in
  let s1sock = fresh_path "fo_s1" ".sock" in
  let s2sock = fresh_path "fo_s2" ".sock" in
  let lease_ms = 250. in
  let mk ~sock ~db ~role ~peers =
    let cfg =
      {
        (Server.default_config (Server.L_unix sock)) with
        db_dir = Some (fresh_path db ".db");
        read_timeout_ms = 5000.;
        role;
        peers = List.map (fun p -> Client.A_unix p) peers;
        lease_ms;
      }
    in
    fst (ok ("start " ^ db) (Server.start cfg))
  in
  let prim =
    mk ~sock:psock ~db:"fo_p" ~role:Server.Primary ~peers:[ s1sock; s2sock ]
  in
  let pcfg = Client.config ~timeout_ms:5000. ~retries:0 (Client.A_unix psock) in
  let s1 =
    mk ~sock:s1sock ~db:"fo_s1"
      ~role:(Server.Standby { primary = Client.A_unix psock; repl_seed = 3 })
      ~peers:[ psock; s2sock ]
  in
  let s2 =
    mk ~sock:s2sock ~db:"fo_s2"
      ~role:(Server.Standby { primary = Client.A_unix psock; repl_seed = 4 })
      ~peers:[ psock; s1sock ]
  in
  let c1 = Client.config ~timeout_ms:5000. ~retries:0 (Client.A_unix s1sock) in
  let c2 = Client.config ~timeout_ms:5000. ~retries:0 (Client.A_unix s2sock) in
  await "both standbys connected" (fun () ->
      contains (run_ok pcfg "STATUS;") "peers=2");
  (* semi-sync in force: this ack means a standby has the records *)
  ignore (run_ok pcfg "CREATE TABLE t (a INT); INSERT INTO t VALUES (1);");
  let caught_up cfg =
    match Client.run cfg "SELECT t.a FROM t;" with
    | Ok (Client.Ok_text out) -> contains out "(1 rows)"
    | _ -> false
  in
  await "standbys caught up" (fun () -> caught_up c1 && caught_up c2);
  let pstatus = run_ok pcfg "STATUS;" in
  Alcotest.(check bool) "primary failover line" true
    (contains pstatus "failover: epoch=0 role=primary");
  Alcotest.(check bool) "primary holds the lease" true
    (contains pstatus ("lease_holder=unix:" ^ psock));
  (* kill the primary: the lease lapses and an election follows *)
  Server.stop prim;
  let status_of cfg =
    match Client.run cfg "STATUS;" with
    | Ok (Client.Ok_text out) -> out
    | _ -> ""
  in
  let promoted st = contains st "failover: epoch=1 role=primary" in
  await "one standby self-promotes" (fun () ->
      promoted (status_of c1) || promoted (status_of c2));
  let winner, wsock, loser =
    if promoted (status_of c1) then (c1, s1sock, c2) else (c2, s2sock, c1)
  in
  let wstatus = run_ok winner "STATUS;" in
  Alcotest.(check bool) "promotion bumped the epoch" true
    (contains wstatus "failover: epoch=1");
  Alcotest.(check bool) "election counted" true
    (contains wstatus "elections=1");
  Alcotest.(check bool) "no acked write lost" true
    (contains (run_ok winner "SELECT t.a FROM t;") "(1 rows)");
  (* exactly one node accepts writes *)
  let writable cfg =
    match
      Client.run { cfg with Client.redirects = 0 }
        "INSERT INTO t VALUES (2);"
    with
    | Ok (Client.Ok_text _) -> 1
    | _ -> 0
  in
  await "exactly one writable node" (fun () ->
      writable winner + writable loser = 1);
  (* the loser retargets to the new primary; a redirect-following client
     pointed at it keeps writing through the transition *)
  await "loser redirects to the winner" (fun () ->
      match Client.run loser "INSERT INTO t VALUES (3);" with
      | Ok (Client.Ok_text _) -> true
      | _ -> false);
  let wstatus = run_ok winner "STATUS;" in
  Alcotest.(check bool) "winner still holds the lease" true
    (contains wstatus ("lease_holder=unix:" ^ wsock));
  Server.stop s1;
  Server.stop s2

(* A primary greeted by a REPL handshake from a higher epoch has been
   superseded: it fences itself — reads keep serving, writes refuse with
   a typed [Fenced] error, PROMOTE refuses, STATUS says so. *)
let test_zombie_fencing () =
  Fault.reset ();
  let dir = fresh_path "zombie" ".db" in
  let srv, ccfg = start_server ~db_dir:dir "zombie" in
  ignore (run_ok ccfg "CREATE TABLE t (a INT); INSERT INTO t VALUES (1);");
  let sock =
    match ccfg.Client.addr with Client.A_unix p -> p | _ -> assert false
  in
  (* a peer speaking from epoch 5 is the zombie's wake-up call *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  let conn = Wire.of_fd fd in
  ok "handshake"
    (Wire.write_frame conn ~verb:"REPL" ~args:[ "0"; "5" ] "");
  (match ok "reply" (Wire.read_frame conn ~timeout_ms:5000.) with
  | Some { Wire.verb = "ERR"; args = kind :: _; payload } ->
      Alcotest.(check string) "typed Fenced on the wire" "Fenced" kind;
      Alcotest.(check bool) "names the epochs" true
        (contains payload "epoch 5")
  | _ -> Alcotest.fail "higher-epoch handshake not refused");
  Wire.close conn;
  (* fenced: reads live, writes refuse, PROMOTE refuses *)
  Alcotest.(check bool) "reads keep serving" true
    (contains (run_ok ccfg "SELECT t.a FROM t;") "(1 rows)");
  (match ok "fenced write" (Client.run ccfg "INSERT INTO t VALUES (2);") with
  | Client.Failed { kind; msg } ->
      Alcotest.(check string) "typed Fenced" "Fenced" kind;
      Alcotest.(check bool) "explains the supersession" true
        (contains msg "fenced at epoch 0")
  | _ -> Alcotest.fail "fenced node accepted a write");
  (match Server.promote srv with
  | Ok _ -> Alcotest.fail "fenced node allowed PROMOTE"
  | Error e ->
      Alcotest.(check bool) "promote names the remedy" true
        (contains (Err.to_string e) "re-seed"));
  let status = run_ok ccfg "STATUS;" in
  Alcotest.(check bool) "STATUS says fenced" true
    (contains status "role=fenced");
  Server.stop srv

(* Regression: a primary that accepts the connection and immediately
   drops it must NOT reset the reconnect ladder — that hot-looped the
   standby at the base interval.  The ladder resets only after a
   completed handshake. *)
let test_accept_drop_backoff () =
  Fault.reset ();
  let sock = fresh_path "flap" ".sock" in
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX sock);
  Unix.listen lfd 16;
  let amu = Mutex.create () in
  let accepts = ref 0 in
  let stop = ref false in
  let acceptor =
    Thread.create
      (fun () ->
        let rec go () =
          match Unix.accept lfd with
          | fd, _ ->
              Unix.close fd;
              Mutex.lock amu;
              incr accepts;
              let live = not !stop in
              Mutex.unlock amu;
              if live then go ()
          | exception Unix.Unix_error _ -> ()
        in
        go ())
      ()
  in
  let a =
    Repl.start_applier ~addr:(Client.A_unix sock) ~read_timeout_ms:1000.
      ~backoff_ms:25. ~seed:5 ~lsn:0
      ~ingest:(fun _ -> Ok ())
      ~epoch_now:(fun () -> 0)
      ~observe:(fun ~epoch:_ ~lease_ms:_ -> ())
      ~on_error:(fun _ -> ())
  in
  Thread.delay 1.5;
  Repl.stop_applier a;
  Mutex.lock amu;
  stop := true;
  let n = !accepts in
  Mutex.unlock amu;
  (* nudge the acceptor off its blocking accept, then tear down *)
  (try
     let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
     Unix.connect fd (Unix.ADDR_UNIX sock);
     Unix.close fd
   with Unix.Unix_error _ -> ());
  Thread.join acceptor;
  Unix.close lfd;
  Sys.remove sock;
  Alcotest.(check bool)
    (Printf.sprintf "ladder escalates (%d connects in 1.5s)" n)
    true
    (n >= 2 && n <= 15)

let () =
  Alcotest.run "server"
    [
      ("clock", [ Alcotest.test_case "monotone" `Quick test_clock ]);
      ( "admission",
        [
          Alcotest.test_case "typed refusals with hints" `Quick
            test_admission_refusal;
          Alcotest.test_case "FIFO fairness" `Quick test_admission_fifo;
          Alcotest.test_case "global row pool" `Quick test_global_pool;
        ] );
      ( "wire",
        [
          Alcotest.test_case "frames round-trip, reads bounded" `Quick
            test_wire_roundtrip;
          Alcotest.test_case "host resolution" `Quick test_resolve_host;
        ] );
      ( "snapshot",
        [ Alcotest.test_case "LSN-stamped reuse + immutability" `Quick
            test_snapshot_reuse ] );
      ( "sessions",
        [
          Alcotest.test_case "end-to-end statements" `Quick test_end_to_end;
          Alcotest.test_case "session cap sheds with BUSY" `Quick
            test_session_cap_busy;
          Alcotest.test_case "global budget degrades typed" `Quick
            test_global_rows_degrade;
          Alcotest.test_case "concurrent writers, one log" `Quick
            test_concurrent_writers_group_commit;
          Alcotest.test_case "server.read fault drops one session" `Quick
            test_server_read_fault;
          Alcotest.test_case "stop under concurrent write load" `Quick
            test_stop_under_write_load;
          Alcotest.test_case "die-on-broken-wal is fatal" `Quick
            test_die_on_broken_wal;
        ] );
      ( "replication",
        [
          Alcotest.test_case "hub: records, idle, gap, closed" `Quick
            test_repl_hub;
          Alcotest.test_case "handshake refusals (mem, split-brain)" `Quick
            test_repl_handshake_refusals;
          Alcotest.test_case "standby follows, refuses writes, promotes"
            `Quick test_replication_end_to_end;
          Alcotest.test_case "hot backup under write load" `Quick
            test_hot_backup_under_load;
          Alcotest.test_case "client sleeps the retry hint" `Quick
            test_client_honors_retry_hint;
        ] );
      ( "failover",
        [
          Alcotest.test_case "primary dies, a standby self-promotes" `Quick
            test_auto_promotion;
          Alcotest.test_case "higher-epoch handshake fences a zombie" `Quick
            test_zombie_fencing;
          Alcotest.test_case "accept-then-drop keeps escalating backoff"
            `Quick test_accept_drop_backoff;
        ] );
    ]
