(* The fuzz harness's own test suite: NULL-semantics comparator edge
   cases, the planted-comparator mutation smoke-test (the harness must
   catch a broken oracle and shrink the witness to a minimal repro),
   corpus round-tripping, and determinism. *)

open Eager_value
open Eager_schema
open Eager_exec
open Eager_core
open Eager_opt
open Eager_robust
open Eager_fuzz

let n = Value.Null
let i k = Value.Int k

(* ------------------------------------------------------------------ *)
(* comparator: multiset equality under =ⁿ *)

let test_multiset_null_semantics () =
  let eq = Exec.multiset_equal in
  let cases =
    [
      ("NULL equals NULL under =n", [ [| n |] ], [ [| n |] ], true);
      ("duplicates are significant", [ [| i 1 |]; [| i 1 |] ], [ [| i 1 |] ],
       false);
      ("order is not", [ [| i 1 |]; [| i 2 |] ], [ [| i 2 |]; [| i 1 |] ],
       true);
      ("NULL inside a wider row", [ [| n; i 1 |] ], [ [| n; i 1 |] ], true);
      ("NULL is not zero", [ [| n |] ], [ [| i 0 |] ], false);
      ("multiplicity of NULL rows", [ [| n |]; [| n |] ], [ [| n |] ], false);
    ]
  in
  List.iter
    (fun (what, a, b, want) -> Alcotest.(check bool) what want (eq a b))
    cases

(* ------------------------------------------------------------------ *)
(* engine-level NULL semantics, via hand-built cases *)

let base =
  {
    Qgen.s_key = Qgen.No_key;
    r_rows = [];
    s_rows = [ (i 1, i 1) ];
    c1 = 0;
    c0 = 0;
    c2 = 0;
    ga1_b = true;
    ga2_x = false;
    ga2_y = false;
    agg = 1 (* SUM *);
    distinct_subset = false;
  }

let e1_rows c =
  match Qgen.build c with
  | Error m -> Alcotest.failf "build: %s" m
  | Ok (db, q) -> Exec.run_rows db (Eager_core.Plans.e1 db q)

let check_rows what want got =
  Alcotest.(check bool)
    (Printf.sprintf "%s: want %s, got %s" what
       (String.concat ";" (List.map Row.to_string want))
       (String.concat ";" (List.map Row.to_string got)))
    true
    (Exec.multiset_equal want got)

let test_null_groups_merge () =
  (* NULL group keys compare equal under GROUP BY: both rows land in one
     group even though NULL = NULL is unknown in a WHERE *)
  let c = { base with Qgen.r_rows = [ (i 1, n, i 5); (i 1, n, i 7) ] } in
  check_rows "one NULL-keyed group" [ [| n; i 12 |] ] (e1_rows c)

let test_sum_ignores_null () =
  let c = { base with Qgen.r_rows = [ (i 1, i 1, n); (i 1, i 1, i 3) ] } in
  check_rows "SUM skips NULL inputs" [ [| i 1; i 3 |] ] (e1_rows c)

let test_sum_of_all_nulls_is_null () =
  let c = { base with Qgen.r_rows = [ (i 1, i 1, n) ] } in
  check_rows "SUM over only NULLs is NULL" [ [| i 1; n |] ] (e1_rows c)

let test_count_col_vs_count_star () =
  let rows = [ (i 1, i 1, n); (i 1, i 1, i 3) ] in
  check_rows "COUNT(col) ignores NULL"
    [ [| i 1; i 1 |] ]
    (e1_rows { base with Qgen.r_rows = rows; agg = 0 });
  check_rows "COUNT(*) counts NULL rows too"
    [ [| i 1; i 2 |] ]
    (e1_rows { base with Qgen.r_rows = rows; agg = 6 })

let test_avg_ignores_null () =
  let rows = [ (i 1, i 1, n); (i 1, i 1, i 3); (i 1, i 1, i 5) ] in
  check_rows "AVG over non-NULLs only"
    [ [| i 1; Value.Float 4.0 |] ]
    (e1_rows { base with Qgen.r_rows = rows; agg = 4 })

let test_empty_group_is_no_row () =
  (* grouped query over an empty input: zero rows, not one NULL row *)
  check_rows "empty input, grouped" [] (e1_rows { base with Qgen.r_rows = [] })

let test_distinct_subset_dedups () =
  (* group by (R.b, S.x); the Theorem 2 variant drops R.b from the
     SELECT.  Two groups with equal aggregate values become duplicate
     output rows: ALL keeps both, DISTINCT collapses them *)
  let rows = [ (i 1, i 1, i 5); (i 1, i 2, i 5) ] in
  let c = { base with Qgen.r_rows = rows; ga1_b = true; ga2_x = true } in
  check_rows "ALL keeps duplicate projected rows"
    [ [| i 1; i 1; i 5 |]; [| i 2; i 1; i 5 |] ]
    (e1_rows c);
  check_rows "DISTINCT subset collapses them"
    [ [| i 1; i 5 |] ]
    (e1_rows { c with Qgen.distinct_subset = true })

(* ------------------------------------------------------------------ *)
(* force hooks *)

let fixed_yes =
  (* S.x is a declared key and the join is a = x grouped on S.x: TestFD
     certifies the rewrite *)
  {
    base with
    Qgen.s_key = Qgen.Primary_x;
    r_rows = [ (i 1, i 1, i 5); (i 1, i 2, i 7); (i 2, i 1, i 9) ];
    s_rows = [ (i 1, i 1); (i 2, i 2) ];
    c0 = 1;
    ga1_b = false;
    ga2_x = true;
  }

let fixed_no =
  (* no key on S: FD2 is unverifiable, TestFD answers NO *)
  { fixed_yes with Qgen.s_key = Qgen.No_key }

let build_exn c =
  match Qgen.build c with
  | Ok (db, q) -> (db, q)
  | Error m -> Alcotest.failf "build: %s" m

let test_force_verdicts () =
  let db, q = build_exn fixed_yes in
  (match Planner.decide db q with
  | Ok d -> (
      match d.Planner.verdict with
      | Testfd.Yes -> ()
      | Testfd.No r -> Alcotest.failf "expected YES, got NO (%s)" r)
  | Error e -> Alcotest.failf "decide: %s" (Err.to_string e));
  let db', q' = build_exn fixed_no in
  match Planner.decide db' q' with
  | Ok d -> (
      match d.Planner.verdict with
      | Testfd.No _ -> ()
      | Testfd.Yes -> Alcotest.fail "expected NO on the keyless instance")
  | Error e -> Alcotest.failf "decide: %s" (Err.to_string e)

let test_force_e2_refused_when_invalid () =
  let db, q = build_exn fixed_no in
  match Planner.decide ~force:Planner.E2 db q with
  | Ok _ -> Alcotest.fail "forced E2 must be refused when TestFD says NO"
  | Error e ->
      Alcotest.(check string)
        "refusal is a typed Planner error" "Planner"
        (Err.kind_to_string (Err.kind e))

let test_force_explain_says_forced () =
  let db, q = build_exn fixed_yes in
  List.iter
    (fun force ->
      match Planner.decide ~force db q with
      | Error e -> Alcotest.failf "force: %s" (Err.to_string e)
      | Ok d ->
          let text = Explain.text db d in
          let has_forced =
            let needle = "forced" in
            let nl = String.length needle and tl = String.length text in
            let rec scan i =
              i + nl <= tl && (String.sub text i nl = needle || scan (i + 1))
            in
            scan 0
          in
          Alcotest.(check bool)
            (Printf.sprintf "explain mentions 'forced' for %s"
               (Planner.force_to_string force))
            true has_forced)
    [ Planner.E1; Planner.E2 ]

(* ------------------------------------------------------------------ *)
(* the oracle on fixed instances, faults and budgets included *)

let test_oracle_green_on_fixed_cases () =
  List.iter
    (fun (what, c) ->
      match (Oracle.check ~faults:true ~fault_seed:7 c).Oracle.violation with
      | None -> ()
      | Some v ->
          Alcotest.failf "%s: unexpected violation %s" what
            (Oracle.violation_to_string v))
    [ ("yes-case", fixed_yes); ("no-case", fixed_no) ]

(* the same oracle over the paged engine: a small pool pushes scans
   through the buffer pool and the breakers onto scratch runs, and no
   verdict may change — plus the seeded IO-fault schedules now have
   live storage points to trip *)
let test_oracle_green_on_paged_engine () =
  let storage =
    {
      Eager_storage.Database.pool_pages = Some 8;
      page_size = 1024;
      spill_dir = None;
    }
  in
  let cases =
    [ ("yes-case", fixed_yes); ("no-case", fixed_no) ]
    @ List.init 4 (fun k ->
          let seed = 4200 + k in
          ( Printf.sprintf "gen seed %d" seed,
            Qgen.generate (Eager_workload.Gen.make2 777 seed) ))
  in
  List.iter
    (fun (what, c) ->
      match
        (Oracle.check ~faults:true ~fault_seed:7 ~storage c).Oracle.violation
      with
      | None -> ()
      | Some v ->
          Alcotest.failf "%s (paged): unexpected violation %s" what
            (Oracle.violation_to_string v))
    cases

(* ------------------------------------------------------------------ *)
(* mutation smoke-test: a planted comparator bug must be caught and
   shrunk to a minimal repro *)

(* the planted bug: row equality via SQL WHERE-style 3VL, under which
   NULL never equals NULL — any result containing a NULL now "differs"
   from itself *)
let null_hostile_equal a b =
  let row_eq r1 r2 =
    Array.length r1 = Array.length r2
    && Array.for_all2 (fun v1 v2 -> v1 = v2 && v1 <> Value.Null) r1 r2
  in
  let rec remove_first r = function
    | [] -> None
    | r' :: rest ->
        if row_eq r r' then Some rest
        else Option.map (fun t -> r' :: t) (remove_first r rest)
  in
  let rec go xs ys =
    match (xs, ys) with
    | [], [] -> true
    | x :: xs', _ -> (
        match remove_first x ys with
        | Some ys' -> go xs' ys'
        | None -> false)
    | [], _ :: _ -> false
  in
  go a b

let corpus_tmp =
  Filename.concat (Filename.get_temp_dir_name ()) "eagerdb-fuzz-mutation"

let test_mutation_caught_and_shrunk () =
  let cfg =
    {
      Fuzz.default_config with
      Fuzz.seed = 42;
      iters = 60;
      faults = false;
      corpus_dir = Some corpus_tmp;
    }
  in
  let s = Fuzz.run ~equal:null_hostile_equal cfg in
  Alcotest.(check bool)
    "the planted comparator bug is caught" true
    (s.Fuzz.failures <> []);
  let f = List.hd s.Fuzz.failures in
  Alcotest.(check bool)
    (Printf.sprintf "shrunk to <= 3 rows per table, got R=%d S=%d: %s"
       (List.length f.Fuzz.shrunk.Qgen.r_rows)
       (List.length f.Fuzz.shrunk.Qgen.s_rows)
       (Qgen.to_string f.Fuzz.shrunk))
    true
    (List.length f.Fuzz.shrunk.Qgen.r_rows <= 3
    && List.length f.Fuzz.shrunk.Qgen.s_rows <= 3);
  (* the shrunk witness still trips the planted bug... *)
  (match
     (Oracle.check ~equal:null_hostile_equal ~faults:false f.Fuzz.shrunk)
       .Oracle.violation
   with
  | Some _ -> ()
  | None -> Alcotest.fail "shrunk case no longer fails the broken comparator");
  (* ...and is innocent under the real comparator: the bug is in the
     oracle's eye, not the engine *)
  (match (Oracle.check ~faults:false f.Fuzz.shrunk).Oracle.violation with
  | None -> ()
  | Some v ->
      Alcotest.failf "shrunk case fails the real oracle: %s"
        (Oracle.violation_to_string v));
  (* the repro was serialised and replays: red under the planted bug,
     green under the real oracle *)
  match f.Fuzz.corpus_path with
  | None -> Alcotest.fail "no corpus file written"
  | Some path -> (
      (match Corpus.replay_file ~equal:null_hostile_equal ~faults:false path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "replay under the planted bug should be red");
      match Corpus.replay_file path with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "replay under the real oracle: %s" msg)

(* ------------------------------------------------------------------ *)
(* corpus round-trip and checked-in regression anchors *)

let test_sql_round_trip () =
  (* SQL emission re-parses and re-binds to an instance the oracle still
     accepts, across a spread of generated shapes *)
  for seed = 0 to 19 do
    let case = Qgen.generate (Eager_workload.Gen.make2 777 seed) in
    match Corpus.replay_sql ~faults:false (Qgen.to_sql case) with
    | Ok 1 -> ()
    | Ok k -> Alcotest.failf "seed %d: %d selects, expected 1" seed k
    | Error msg -> Alcotest.failf "seed %d: %s" seed msg
  done

let test_checked_in_corpus_replays () =
  (* under `dune runtest` the cwd is _build/default/test and the glob
     dep materialises ../corpus; direct invocation runs from the root *)
  let dir = if Sys.file_exists "../corpus" then "../corpus" else "corpus" in
  match Corpus.replay_dir dir with
  | Ok (files, selects) ->
      Alcotest.(check bool)
        (Printf.sprintf "at least one anchor (%d files, %d selects)" files
           selects)
        true (files >= 1 && selects >= files)
  | Error msg -> Alcotest.failf "corpus replay: %s" msg

(* ------------------------------------------------------------------ *)
(* determinism: a config determines its summary exactly *)

let test_determinism () =
  let cfg = { Fuzz.default_config with Fuzz.seed = 9; iters = 40 } in
  let a = Fuzz.run cfg and b = Fuzz.run cfg in
  Alcotest.(check bool) "identical summaries" true (a = b);
  let c = Fuzz.run { cfg with Fuzz.seed = 10 } in
  Alcotest.(check bool) "a different seed explores differently" true
    (a.Fuzz.yes <> c.Fuzz.yes || a.Fuzz.no <> c.Fuzz.no || a = c)

(* the multi-way loop: green on a seeded window, and deterministic *)
let test_multiway_green_and_deterministic () =
  let cfg = { Fuzz.default_config with Fuzz.seed = 20260806; iters = 60 } in
  let a = Fuzz.run_multiway cfg in
  (match a.Fuzz.mw_failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "multi-way iteration %d: %s" f.Fuzz.mw_iteration
        (Oracle.violation_to_string f.Fuzz.mw_violation));
  Alcotest.(check int) "all iterations ran" 60 a.Fuzz.mw_iterations;
  Alcotest.(check bool) "verdicts were counted" true
    (a.Fuzz.mw_yes + a.Fuzz.mw_no = 60);
  let b = Fuzz.run_multiway cfg in
  Alcotest.(check bool) "identical summaries" true (a = b)

(* a multi-way case round-trips through the SQL front door: parse,
   bind the N-relation FROM, re-canonicalise under the header hint and
   pass the full oracle — the same path a corpus replay takes *)
let test_multiway_sql_round_trip () =
  let case = Mgen.generate (Eager_workload.Gen.make2 20260806 7) in
  match Corpus.replay_sql ~faults:false (Mgen.to_sql case) with
  | Ok n -> Alcotest.(check int) "one SELECT checked" 1 n
  | Error msg -> Alcotest.failf "multi-way round trip: %s" msg

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fuzz"
    [
      ( "comparator",
        [
          Alcotest.test_case "multiset =n semantics" `Quick
            test_multiset_null_semantics;
        ] );
      ( "null-semantics",
        [
          Alcotest.test_case "NULL group keys merge" `Quick
            test_null_groups_merge;
          Alcotest.test_case "SUM ignores NULL" `Quick test_sum_ignores_null;
          Alcotest.test_case "SUM of only NULLs" `Quick
            test_sum_of_all_nulls_is_null;
          Alcotest.test_case "COUNT col vs star" `Quick
            test_count_col_vs_count_star;
          Alcotest.test_case "AVG ignores NULL" `Quick test_avg_ignores_null;
          Alcotest.test_case "empty group yields no row" `Quick
            test_empty_group_is_no_row;
          Alcotest.test_case "DISTINCT subset dedups" `Quick
            test_distinct_subset_dedups;
        ] );
      ( "force-hooks",
        [
          Alcotest.test_case "verdicts on fixed cases" `Quick
            test_force_verdicts;
          Alcotest.test_case "forced E2 refused on NO" `Quick
            test_force_e2_refused_when_invalid;
          Alcotest.test_case "explain reports forcing" `Quick
            test_force_explain_says_forced;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "green on the paged engine (faults on)" `Quick
            test_oracle_green_on_paged_engine;
          Alcotest.test_case "green on fixed cases (faults on)" `Quick
            test_oracle_green_on_fixed_cases;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "planted comparator bug caught + shrunk" `Quick
            test_mutation_caught_and_shrunk;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "SQL round-trips through the front door" `Quick
            test_sql_round_trip;
          Alcotest.test_case "multi-way SQL round-trips too" `Quick
            test_multiway_sql_round_trip;
          Alcotest.test_case "checked-in anchors replay green" `Quick
            test_checked_in_corpus_replays;
        ] );
      ( "multiway",
        [
          Alcotest.test_case "placement sweep green + deterministic" `Quick
            test_multiway_green_and_deterministic;
        ] );
      ( "determinism",
        [ Alcotest.test_case "seed determines summary" `Quick test_determinism ];
      );
    ]
