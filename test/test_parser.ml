(* Parser and binder tests: lexing, expression precedence, every statement
   form (including the paper's Figure 5 DDL verbatim), and semantic
   analysis — ambiguity, classification of SELECT items, view inlining. *)

open Eager_schema
open Eager_expr
open Eager_storage
open Eager_core
open Eager_parser

(* ---------------- lexer ---------------- *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize "SELECT a1, 'it''s' <> 3.5 <= :host -- comment\n;" in
  let strs = List.map Lexer.token_to_string toks in
  Alcotest.(check (list string)) "token round-trip"
    [ "SELECT"; "a1"; ","; "'it's'"; "<>"; "3.5"; "<="; ":host"; ";"; "<eof>" ]
    strs

let test_lexer_errors () =
  Alcotest.(check bool) "unterminated string" true
    (try ignore (Lexer.tokenize "'abc"); false with Lexer.Lex_error _ -> true);
  Alcotest.(check bool) "stray character" true
    (try ignore (Lexer.tokenize "a ? b"); false with Lexer.Lex_error _ -> true);
  Alcotest.(check bool) "bang-equal becomes <>" true
    (List.mem (Lexer.Tsym "<>") (Lexer.tokenize "a != b"))

let test_lexer_quoted_ident () =
  match Lexer.tokenize "\"Weird Name\"" with
  | [ Lexer.Tident "Weird Name"; Lexer.Teof ] -> ()
  | _ -> Alcotest.fail "quoted identifier"

(* ---------------- expression parsing ---------------- *)

let expr_str s = Ast.texpr_to_string (Parser.parse_expr s)

let test_expr_precedence () =
  Alcotest.(check string) "mul binds tighter" "(1 + (2 * 3))"
    (expr_str "1 + 2 * 3");
  Alcotest.(check string) "AND over OR" "((a = 1) OR ((b = 2) AND (c = 3)))"
    (expr_str "a = 1 OR b = 2 AND c = 3");
  Alcotest.(check string) "NOT" "(NOT (a = 1))" (expr_str "NOT a = 1");
  Alcotest.(check string) "parens" "((1 + 2) * 3)" (expr_str "(1 + 2) * 3");
  Alcotest.(check string) "IS NOT NULL" "a.b IS NOT NULL"
    (expr_str "a.b IS NOT NULL");
  Alcotest.(check string) "unary minus" "((-1) + 2)" (expr_str "-1 + 2")

let test_expr_agg_calls () =
  Alcotest.(check string) "count star" "COUNT(*)" (expr_str "COUNT(*)");
  Alcotest.(check string) "agg arithmetic" "(COUNT(a) + SUM((b + c)))"
    (expr_str "COUNT(a) + SUM(b + c)")

(* ---------------- statements ---------------- *)

let fig5_sql =
  {|CREATE TABLE Department (
      EmpID INTEGER CHECK (EmpID > 0),
      EmpSID INTEGER UNIQUE,
      LastName CHARACTER(30) NOT NULL,
      FirstName CHARACTER(30),
      DeptID DepIdType CHECK (DeptID > 5),
      PRIMARY KEY (EmpID),
      FOREIGN KEY (DeptID) REFERENCES Dept (DeptID))|}

let test_parse_fig5 () =
  match Parser.parse_statement fig5_sql with
  | Ast.S_create_table (name, items) ->
      Alcotest.(check string) "table name" "Department" name;
      Alcotest.(check int) "5 columns + 2 table constraints" 7 (List.length items)
  | _ -> Alcotest.fail "expected CREATE TABLE"

let test_parse_domain () =
  (* the paper writes the check without parentheses *)
  match
    Parser.parse_statement
      "CREATE DOMAIN DepIdType SMALLINT CHECK VALUE > 0 AND VALUE < 100"
  with
  | Ast.S_create_domain ("DepIdType", ty, Some _) ->
      Alcotest.(check string) "base type" "SMALLINT" ty.Ast.tybase
  | _ -> Alcotest.fail "expected CREATE DOMAIN with CHECK"

let test_parse_insert () =
  match Parser.parse_statement "INSERT INTO t VALUES (1, 'a'), (2, NULL)" with
  | Ast.S_insert ("t", [ r1; r2 ]) ->
      Alcotest.(check int) "arity" 2 (List.length r1);
      Alcotest.(check int) "arity2" 2 (List.length r2)
  | _ -> Alcotest.fail "expected INSERT with two rows"

let test_parse_select_full () =
  match
    Parser.parse_select
      "SELECT DISTINCT D.DeptID, COUNT(E.EmpID) AS n FROM Employee E, \
       Department D WHERE E.DeptID = D.DeptID AND E.Sal > :floor GROUP BY \
       D.DeptID, D.Name"
  with
  | s ->
      Alcotest.(check bool) "distinct" true s.Ast.distinct;
      Alcotest.(check int) "2 items" 2 (List.length s.Ast.items);
      Alcotest.(check int) "2 sources" 2 (List.length s.Ast.from);
      Alcotest.(check int) "2 grouping columns" 2 (List.length s.Ast.group_by);
      Alcotest.(check bool) "where present" true (Option.is_some s.Ast.where)

let test_having () =
  (* HAVING is our extension beyond the paper's query class *)
  (match
     Parser.parse_select "SELECT a FROM t GROUP BY a HAVING COUNT(*) > 1"
   with
  | { Ast.having = Some _; _ } -> ()
  | _ -> Alcotest.fail "HAVING should parse");
  (* but it requires GROUP BY *)
  Alcotest.(check bool) "HAVING without GROUP BY rejected" true
    (try
       ignore (Parser.parse_select "SELECT a FROM t HAVING COUNT(*) > 1");
       false
     with Parser.Parse_error _ -> true)

let test_predicates_sugar () =
  (* IN desugars to a disjunction of equalities *)
  Alcotest.(check string) "IN" "((a = 1) OR (a = 2))" (expr_str "a IN (1, 2)");
  Alcotest.(check string) "NOT IN" "(NOT ((a = 1) OR (a = 2)))"
    (expr_str "a NOT IN (1, 2)");
  (* BETWEEN desugars to a conjunction of comparisons *)
  Alcotest.(check string) "BETWEEN" "((a >= 1) AND (a <= (2 + 3)))"
    (expr_str "a BETWEEN 1 AND 2 + 3");
  Alcotest.(check string) "NOT BETWEEN" "(NOT ((a >= 1) AND (a <= 2)))"
    (expr_str "a NOT BETWEEN 1 AND 2");
  (* LIKE keeps its own node *)
  Alcotest.(check string) "LIKE" "a LIKE 'x%'" (expr_str "a LIKE 'x%'");
  Alcotest.(check string) "NOT LIKE" "a NOT LIKE '_b'" (expr_str "a NOT LIKE '_b'");
  Alcotest.(check bool) "LIKE needs a literal" true
    (try ignore (Parser.parse_expr "a LIKE b"); false
     with Parser.Parse_error _ -> true)

let test_predicates_end_to_end () =
  let db = Eager_storage.Database.create () in
  (match
     Binder.run_script db
       {|CREATE TABLE p (name VARCHAR(20), qty INTEGER);
         INSERT INTO p VALUES ('bolt', 5), ('bracket', 20), ('nut', 7),
                              (NULL, 30), ('nail', NULL);|}
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  let count sql =
    match Binder.bind_select db (Parser.parse_select sql) with
    | Ok q -> (
        match Binder.to_plan db q with
        | Ok plan -> List.length (Eager_exec.Exec.run_rows db plan)
        | Error msg -> Alcotest.fail msg)
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check int) "LIKE 'b%'" 2
    (count "SELECT name FROM p T WHERE name LIKE 'b%'");
  Alcotest.(check int) "NOT LIKE drops NULL too" 2
    (count "SELECT name FROM p T WHERE name NOT LIKE 'b%'");
  Alcotest.(check int) "LIKE '_ut'" 1
    (count "SELECT name FROM p T WHERE name LIKE '_ut'");
  Alcotest.(check int) "BETWEEN" 2
    (count "SELECT name FROM p T WHERE qty BETWEEN 5 AND 10");
  Alcotest.(check int) "NOT BETWEEN drops NULL qty" 2
    (count "SELECT name FROM p T WHERE qty NOT BETWEEN 5 AND 10");
  Alcotest.(check int) "IN" 2
    (count "SELECT name FROM p T WHERE qty IN (5, 7, 100)")

let test_computed_items () =
  let db = Eager_storage.Database.create () in
  (match
     Binder.run_script db
       {|CREATE TABLE it (name VARCHAR(20), price INTEGER, qty INTEGER);
         INSERT INTO it VALUES ('a', 3, 100), ('b', 2, 50), ('c', 40, NULL);|}
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  (match
     Binder.bind_select db
       (Parser.parse_select
          "SELECT name, price * qty AS total FROM it I WHERE price > 1")
   with
  | Ok (Binder.Computed { items; _ }) -> (
      Alcotest.(check int) "two items" 2 (List.length items);
      Alcotest.(check string) "alias kept" "total"
        (Colref.to_string (fst (List.nth items 1)));
      match Binder.to_plan db (Binder.Computed { sources = []; where = Expr.etrue; items = []; distinct = false }) with
      | Error _ -> () (* empty FROM rejected *)
      | Ok _ -> Alcotest.fail "empty FROM must fail")
  | Ok _ -> Alcotest.fail "expected Computed"
  | Error msg -> Alcotest.fail msg);
  (* execution: NULL qty propagates *)
  (match
     Binder.bind_select db
       (Parser.parse_select "SELECT price * qty AS total FROM it I")
   with
  | Ok q -> (
      match Binder.to_plan db q with
      | Ok plan ->
          let rows = Eager_exec.Exec.run_rows db plan in
          let strs = List.sort compare (List.map Row.to_string rows) in
          Alcotest.(check (list string)) "computed values"
            [ "(100)"; "(300)"; "(NULL)" ] strs
      | Error msg -> Alcotest.fail msg)
  | Error msg -> Alcotest.fail msg);
  (* expressions are rejected alongside GROUP BY *)
  match
    Binder.bind_select db
      (Parser.parse_select
         "SELECT price + 1, COUNT(*) FROM it I GROUP BY price")
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expressions with GROUP BY must be rejected"

let test_count_distinct_sql () =
  let db = Eager_storage.Database.create () in
  (match
     Binder.run_script db
       {|CREATE TABLE Employee (
           EmpID INTEGER, LastName VARCHAR(30), DeptID INTEGER,
           Salary INTEGER, PRIMARY KEY (EmpID));
         CREATE TABLE Department (
           DeptID INTEGER, Name VARCHAR(30), PRIMARY KEY (DeptID));
         INSERT INTO Department VALUES (1, 'R'), (2, 'S');
         INSERT INTO Employee VALUES
           (1, 'a', 1, 100), (2, 'b', 1, 200), (3, 'c', 2, 50), (4, 'd', NULL, 10);|}
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  match
    Binder.bind_select db
      (Parser.parse_select
         "SELECT D.DeptID, COUNT(DISTINCT E.Salary) AS k FROM Employee E, \
          Department D WHERE E.DeptID = D.DeptID GROUP BY D.DeptID")
  with
  | Ok (Binder.Grouped input) -> (
      let q = Canonical.of_input_exn db input in
      (* still transformable *)
      (match Testfd.test db q with
      | Testfd.Yes -> ()
      | Testfd.No r -> Alcotest.fail r);
      let rows = Eager_exec.Exec.run_rows db (Plans.e2 db q) in
      let sorted = List.sort compare (List.map Row.to_string rows) in
      Alcotest.(check (list string)) "distinct salaries per dept"
        [ "(1, 2)"; "(2, 1)" ] sorted;
      match Theorem.equivalent db q with
      | true -> ()
      | false -> Alcotest.fail "E1 must agree")
  | Ok _ -> Alcotest.fail "expected Grouped"
  | Error msg -> Alcotest.fail msg

let test_case_sql () =
  Alcotest.(check string) "CASE parses and prints"
    "CASE WHEN (a > 1) THEN 'x' ELSE 'y' END"
    (expr_str "CASE WHEN a > 1 THEN 'x' ELSE 'y' END");
  Alcotest.(check bool) "CASE without WHEN rejected" true
    (try ignore (Parser.parse_expr "CASE ELSE 1 END"); false
     with Parser.Parse_error _ -> true);
  Alcotest.(check bool) "missing END rejected" true
    (try ignore (Parser.parse_expr "CASE WHEN a = 1 THEN 2"); false
     with Parser.Parse_error _ -> true)

let test_update_delete_sql () =
  let db = Eager_storage.Database.create () in
  (match
     Binder.run_script db
       {|CREATE TABLE acct (id INTEGER, bal INTEGER, PRIMARY KEY (id));
         INSERT INTO acct VALUES (1, 100), (2, 50), (3, NULL);
         UPDATE acct SET bal = bal + 10 WHERE id <= 2;
         DELETE FROM acct WHERE bal < 100;|}
   with
  | Ok outcomes ->
      let updated =
        List.exists (function Binder.Updated 2 -> true | _ -> false) outcomes
      in
      let deleted =
        (* only id 2 (bal 60): id 3 has NULL bal → unknown → kept *)
        List.exists (function Binder.Deleted 1 -> true | _ -> false) outcomes
      in
      Alcotest.(check bool) "2 updated" true updated;
      Alcotest.(check bool) "1 deleted (NULL kept)" true deleted
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check int) "two rows remain" 2
    (Eager_storage.Database.row_count db "acct");
  (* statement-level failures surface *)
  match
    Binder.run_script db "UPDATE acct SET nope = 1;"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown column must fail"

let test_order_by () =
  (match
     Parser.parse_select
       "SELECT a, b FROM t ORDER BY b DESC, t.a ASC"
   with
  | { Ast.order_by = [ ((None, "b"), true); ((Some "t", "a"), false) ]; _ } ->
      ()
  | _ -> Alcotest.fail "ORDER BY should parse with directions");
  (* end to end: sorted output through the binder *)
  let db = Eager_storage.Database.create () in
  (match
     Binder.run_script db
       "CREATE TABLE t (a INTEGER, b INTEGER); INSERT INTO t VALUES (1, 30), \
        (2, 10), (3, 20);"
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  match
    Binder.exec_statement db
      (Parser.parse_statement "SELECT a, b FROM t T ORDER BY b DESC")
  with
  | Ok (Binder.Query (q, order)) -> (
      Alcotest.(check int) "one order key" 1 (List.length order);
      match Binder.to_plan db q with
      | Ok plan ->
          let plan = Binder.apply_order order plan in
          let rows = Eager_exec.Exec.run_rows db plan in
          Alcotest.(check (list string)) "sorted by b desc"
            [ "(1, 30)"; "(3, 20)"; "(2, 10)" ]
            (List.map Row.to_string rows)
      | Error msg -> Alcotest.fail msg)
  | Ok _ -> Alcotest.fail "expected a query"
  | Error msg -> Alcotest.fail msg

let test_order_by_errors () =
  let db = Eager_storage.Database.create () in
  (match
     Binder.run_script db "CREATE TABLE t (a INTEGER, b INTEGER);"
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  match
    Binder.exec_statement db
      (Parser.parse_statement "SELECT a FROM t T ORDER BY b")
  with
  | Error _ -> () (* b is not an output column *)
  | Ok _ -> Alcotest.fail "ORDER BY over a non-output column must fail"

let test_parse_script () =
  let script = "CREATE TABLE t (a INTEGER);\nINSERT INTO t VALUES (1);\nSELECT a FROM t;" in
  Alcotest.(check int) "three statements" 3 (List.length (Parser.parse_script script));
  Alcotest.(check bool) "junk rejected" true
    (try ignore (Parser.parse_script "FOO BAR"); false
     with Parser.Parse_error _ -> true)

let test_parse_errors () =
  let bad s =
    try
      ignore (Parser.parse_statement s);
      false
    with Parser.Parse_error _ -> true
  in
  Alcotest.(check bool) "missing FROM" true (bad "SELECT a");
  Alcotest.(check bool) "trailing tokens" true (bad "SELECT a FROM t 1 2 3");
  Alcotest.(check bool) "bad CREATE" true (bad "CREATE INDEX i");
  Alcotest.(check bool) "keyword as identifier" true (bad "SELECT FROM FROM t")

(* ---------------- binder ---------------- *)

let setup_db () =
  let db = Database.create () in
  (match
     Binder.run_script db
       {|CREATE TABLE Employee (
           EmpID INTEGER, LastName VARCHAR(30), DeptID INTEGER,
           Salary INTEGER, PRIMARY KEY (EmpID));
         CREATE TABLE Department (
           DeptID INTEGER, Name VARCHAR(30), PRIMARY KEY (DeptID));
         INSERT INTO Department VALUES (1, 'R'), (2, 'S');
         INSERT INTO Employee VALUES
           (1, 'a', 1, 100), (2, 'b', 1, 200), (3, 'c', 2, 50), (4, 'd', NULL, 10);|}
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  db

let bind db sql =
  match Binder.bind_select db (Parser.parse_select sql) with
  | Ok q -> q
  | Error msg -> Alcotest.fail ("bind: " ^ msg)

let bind_err db sql =
  match Binder.bind_select db (Parser.parse_select sql) with
  | Ok _ -> Alcotest.fail "expected binder error"
  | Error msg -> msg

let test_bind_simple () =
  let db = setup_db () in
  match bind db "SELECT LastName FROM Employee E WHERE Salary > 100" with
  | Binder.Simple { cols; _ } ->
      Alcotest.(check int) "one column" 1 (List.length cols)
  | _ -> Alcotest.fail "expected Simple"

let test_bind_scalar () =
  let db = setup_db () in
  match bind db "SELECT COUNT(*) FROM Employee E" with
  | Binder.Scalar { aggs; _ } ->
      Alcotest.(check int) "one aggregate" 1 (List.length aggs)
  | _ -> Alcotest.fail "expected Scalar"

let test_bind_grouped () =
  let db = setup_db () in
  match
    bind db
      "SELECT D.DeptID, D.Name, COUNT(E.EmpID) FROM Employee E, Department D \
       WHERE E.DeptID = D.DeptID GROUP BY D.DeptID, D.Name"
  with
  | Binder.Grouped input ->
      Alcotest.(check int) "2 selection cols" 2
        (List.length input.Canonical.select_cols);
      Alcotest.(check int) "1 aggregate" 1
        (List.length input.Canonical.select_aggs);
      (* synthesized aggregate name *)
      let a = List.hd input.Canonical.select_aggs in
      Alcotest.(check string) "synth name" "count_2"
        (Colref.to_string a.Eager_algebra.Agg.name)
  | _ -> Alcotest.fail "expected Grouped"

let test_bind_unqualified_and_ambiguous () =
  let db = setup_db () in
  (* LastName is unambiguous across Employee/Department *)
  (match
     bind db
       "SELECT LastName FROM Employee E, Department D WHERE E.DeptID = D.DeptID"
   with
  | Binder.Simple _ -> ()
  | _ -> Alcotest.fail "expected Simple");
  (* DeptID is ambiguous *)
  let msg =
    bind_err db "SELECT DeptID FROM Employee E, Department D"
  in
  Alcotest.(check bool) "ambiguity reported" true
    (String.length msg > 0 && String.sub msg 0 9 = "ambiguous");
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "names E.DeptID" true (contains msg "E.DeptID");
  Alcotest.(check bool) "names D.DeptID" true (contains msg "D.DeptID")

let test_bind_ambiguous_three_way () =
  let db = setup_db () in
  (* with three relations in FROM the error must name every candidate, not
     just the first colliding pair *)
  let msg =
    bind_err db "SELECT DeptID FROM Employee E, Department D, Department D2"
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "ambiguity reported" true
    (String.length msg > 0 && String.sub msg 0 9 = "ambiguous");
  Alcotest.(check bool) "candidate list present" true (contains msg "candidates:");
  List.iter
    (fun c ->
      Alcotest.(check bool) (Printf.sprintf "names %s" c) true (contains msg c))
    [ "E.DeptID"; "D.DeptID"; "D2.DeptID" ];
  (* the typed channel classifies it as a binding failure *)
  match
    Binder.bind_select_checked db
      (Parser.parse_select
         "SELECT DeptID FROM Employee E, Department D, Department D2")
  with
  | Ok _ -> Alcotest.fail "expected a typed binder error"
  | Error e ->
      Alcotest.(check bool) "kind is Bind" true
        (e.Eager_robust.Err.kind = Eager_robust.Err.Bind);
      Alcotest.(check bool) "typed error names all candidates" true
        (contains (Eager_robust.Err.to_string e) "D2.DeptID")

let test_bind_errors () =
  let db = setup_db () in
  ignore (bind_err db "SELECT Nope FROM Employee E");
  ignore (bind_err db "SELECT E.LastName FROM Nope E");
  ignore (bind_err db "SELECT X.LastName FROM Employee E");
  (* aggregates mixed with bare columns without GROUP BY *)
  ignore (bind_err db "SELECT LastName, COUNT(*) FROM Employee E");
  (* column inside aggregate arithmetic *)
  ignore
    (bind_err db
       "SELECT Salary + COUNT(*) FROM Employee E GROUP BY Salary")

let test_exec_statement_roundtrip () =
  let db = setup_db () in
  let verdict sql =
    match Binder.exec_statement db (Parser.parse_statement sql) with
    | Ok (Binder.Query (Binder.Grouped input, _)) -> (
        match Canonical.of_input db input with
        | Ok q -> Testfd.test db q
        | Error msg -> Alcotest.fail msg)
    | Ok _ -> Alcotest.fail "expected grouped query"
    | Error msg -> Alcotest.fail msg
  in
  (* grouping on the key of Department: transformable *)
  (match
     verdict
       "SELECT D.DeptID, COUNT(E.EmpID) FROM Employee E, Department D WHERE \
        E.DeptID = D.DeptID GROUP BY D.DeptID"
   with
  | Testfd.Yes -> ()
  | Testfd.No r -> Alcotest.fail ("TestFD should accept: " ^ r));
  (* grouping on the non-key Name only: FD2 cannot be established *)
  match
    verdict
      "SELECT D.Name, COUNT(E.EmpID) FROM Employee E, Department D WHERE \
       E.DeptID = D.DeptID GROUP BY D.Name"
  with
  | Testfd.No _ -> ()
  | Testfd.Yes -> Alcotest.fail "TestFD must reject grouping on a non-key"

(* ---------------- views ---------------- *)

let test_simple_view_inlining () =
  let db = setup_db () in
  (match
     Binder.run_script db
       "CREATE VIEW BigEarners AS SELECT E.EmpID id, E.DeptID dept FROM \
        Employee E WHERE E.Salary > 50"
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  match bind db "SELECT B.id FROM BigEarners B" with
  | Binder.Simple { sources; where; cols; _ } ->
      Alcotest.(check int) "inlined to base table" 1 (List.length sources);
      Alcotest.(check string) "prefixed range variable" "B_E"
        (List.hd sources).Canonical.rel;
      Alcotest.(check string) "column mapped through" "B_E.EmpID"
        (Colref.to_string (List.hd cols));
      Alcotest.(check bool) "view predicate merged" true
        (Expr.conjuncts where <> [])
  | _ -> Alcotest.fail "expected Simple"

let test_aggregated_view_rejected () =
  let db = setup_db () in
  (match
     Binder.run_script db
       "CREATE VIEW DeptCount AS SELECT E.DeptID d, COUNT(E.EmpID) n FROM \
        Employee E GROUP BY E.DeptID"
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  let msg = bind_err db "SELECT D.d FROM DeptCount D" in
  let contains sub =
    let n = String.length msg and m = String.length sub in
    let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "points at Section 8" true (contains "Section 8")

(* end-to-end through the binder's plan *)
let test_bound_plan_executes () =
  let db = setup_db () in
  let q = bind db "SELECT DISTINCT E.DeptID FROM Employee E" in
  match Binder.to_plan db q with
  | Ok plan ->
      let rows = Eager_exec.Exec.run_rows db plan in
      (* DeptIDs 1, 2, NULL — distinct *)
      Alcotest.(check int) "3 distinct dept ids" 3 (List.length rows)
  | Error msg -> Alcotest.fail msg

let () =
  Alcotest.run "parser"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
          Alcotest.test_case "quoted identifiers" `Quick test_lexer_quoted_ident;
        ] );
      ( "expressions",
        [
          Alcotest.test_case "precedence" `Quick test_expr_precedence;
          Alcotest.test_case "aggregate calls" `Quick test_expr_agg_calls;
        ] );
      ( "statements",
        [
          Alcotest.test_case "Figure 5 DDL" `Quick test_parse_fig5;
          Alcotest.test_case "CREATE DOMAIN" `Quick test_parse_domain;
          Alcotest.test_case "INSERT" `Quick test_parse_insert;
          Alcotest.test_case "full SELECT" `Quick test_parse_select_full;
          Alcotest.test_case "HAVING" `Quick test_having;
          Alcotest.test_case "ORDER BY" `Quick test_order_by;
          Alcotest.test_case "ORDER BY errors" `Quick test_order_by_errors;
          Alcotest.test_case "IN/BETWEEN/LIKE sugar" `Quick
            test_predicates_sugar;
          Alcotest.test_case "UPDATE/DELETE" `Quick test_update_delete_sql;
          Alcotest.test_case "computed SELECT items" `Quick test_computed_items;
          Alcotest.test_case "CASE expressions" `Quick test_case_sql;
          Alcotest.test_case "COUNT(DISTINCT)" `Quick test_count_distinct_sql;
          Alcotest.test_case "predicates end to end" `Quick
            test_predicates_end_to_end;
          Alcotest.test_case "scripts" `Quick test_parse_script;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
        ] );
      ( "binder",
        [
          Alcotest.test_case "simple query" `Quick test_bind_simple;
          Alcotest.test_case "scalar aggregation" `Quick test_bind_scalar;
          Alcotest.test_case "grouped query" `Quick test_bind_grouped;
          Alcotest.test_case "name resolution" `Quick
            test_bind_unqualified_and_ambiguous;
          Alcotest.test_case "three-way ambiguity names all candidates" `Quick
            test_bind_ambiguous_three_way;
          Alcotest.test_case "binder errors" `Quick test_bind_errors;
          Alcotest.test_case "statement round trip" `Quick
            test_exec_statement_roundtrip;
          Alcotest.test_case "bound plan executes" `Quick test_bound_plan_executes;
        ] );
      ( "views",
        [
          Alcotest.test_case "simple view inlining" `Quick
            test_simple_view_inlining;
          Alcotest.test_case "aggregated view rejected" `Quick
            test_aggregated_view_rejected;
        ] );
    ]
