(* Backup/restore tests: the hot-backup artifact (manifest + snapshot +
   WAL tail) round-trips through verify/restore to the exact logical
   state, a backup taken at LSN L is byte-equivalent to a quiesced
   checkpoint of the first L committed records, and — the trust model —
   corrupting ANY single byte of any file in the backup turns restore
   into a typed refusal, never a partial load (a property checked over
   every byte offset of every file). *)

open Eager_storage
open Eager_parser
open Eager_durable
open Eager_robust

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go k = k + m <= n && (String.sub s k m = sub || go (k + 1)) in
  go 0

let fresh_dir =
  let n = ref 0 in
  fun name ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "eagerdb_backup_%s_%d_%d" name (Unix.getpid ()) !n)

let ok name = function
  | Ok v -> v
  | Error e -> Alcotest.fail (name ^ ": " ^ Err.to_string e)

let open_ok dir = ok ("open " ^ dir) (Durable.open_ ~dir ())
let exec_ok s sql = ignore (ok sql (Durable.exec s (Parser.parse_statement sql)))

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

(* Canonical digest of a database: regenerated DDL plus sorted rows. *)
let fingerprint db =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Persist.ddl_of_database db);
  Eager_catalog.Catalog.tables (Database.catalog db)
  |> List.map (fun (td : Eager_catalog.Table_def.t) -> td.Eager_catalog.Table_def.tname)
  |> List.sort compare
  |> List.iter (fun name ->
         Buffer.add_string buf ("== " ^ name ^ "\n");
         Heap.to_list (Database.heap db name)
         |> List.map (fun row ->
                String.concat ","
                  (Array.to_list
                     (Array.map Eager_value.Value.to_string row)))
         |> List.sort compare
         |> List.iter (fun r -> Buffer.add_string buf (r ^ "\n")));
  Buffer.contents buf

let script =
  [
    "CREATE TABLE t (id INT NOT NULL, v INT, PRIMARY KEY (id))";
    "INSERT INTO t VALUES (1, 10)";
    "INSERT INTO t VALUES (2, 20)";
    "INSERT INTO t VALUES (3, 30)";
  ]

let populated name =
  Fault.reset ();
  let s, _ = open_ok (fresh_dir name) in
  List.iter (exec_ok s) script;
  s

(* ========================== round trip ============================ *)

let test_roundtrip () =
  let s = populated "rt" in
  let bdir = fresh_dir "rt_bak" in
  (* through the statement surface, like a live session would *)
  (match
     ok "BACKUP" (Durable.exec s (Parser.parse_statement
                                    (Printf.sprintf "BACKUP '%s'" bdir)))
   with
  | Binder.Backed_up { dir; lsn } ->
      Alcotest.(check string) "echoes the dir" bdir dir;
      Alcotest.(check int) "stamped with the current lsn" (Durable.lsn s) lsn
  | _ -> Alcotest.fail "BACKUP returned the wrong outcome");
  let lsn = ok "verify" (Backup.verify ~dir:bdir) in
  Alcotest.(check int) "verify agrees on the lsn" (Durable.lsn s) lsn;
  let rdir = fresh_dir "rt_restored" in
  let rlsn = ok "restore" (Backup.restore ~from_dir:bdir ~to_dir:rdir) in
  Alcotest.(check int) "restore reports the lsn" lsn rlsn;
  let r, _ = open_ok rdir in
  Alcotest.(check string) "restored state equals the source"
    (fingerprint (Durable.db s))
    (fingerprint (Durable.db r));
  Durable.close r;
  Durable.close s

(* The cluster epoch rides the manifest and is re-seeded on restore, so
   a node rebuilt from a backup rejoins the cluster where it left off
   (a restored zombie at epoch 0 would accept a stale primary's
   stream). *)
let test_epoch_roundtrip () =
  let s = populated "ep" in
  ignore (ok "set epoch" (Durable.set_epoch s 4));
  exec_ok s "INSERT INTO t VALUES (4, 40)";
  let bdir = fresh_dir "ep_bak" in
  ignore (ok "backup" (Durable.backup s ~dir:bdir));
  Durable.close s;
  Alcotest.(check bool) "manifest carries the epoch" true
    (contains (read_file (Filename.concat bdir "backup.eagerdb")) "epoch 4");
  let rdir = fresh_dir "ep_restored" in
  ignore (ok "restore" (Backup.restore ~from_dir:bdir ~to_dir:rdir));
  let r, _ = open_ok rdir in
  Alcotest.(check int) "restored node rejoins at the backup's epoch" 4
    (Durable.epoch r);
  Durable.close r

(* A backup taken at LSN L, restored and checkpointed, produces the
   byte-identical snapshot a quiesced node would write after exactly
   the first L committed records — even though the source kept
   committing after the backup was cut. *)
let test_prefix_byte_equivalence () =
  let s = populated "px" in
  let cut = Durable.lsn s in
  let bdir = fresh_dir "px_bak" in
  let blsn = ok "backup" (Durable.backup s ~dir:bdir) in
  Alcotest.(check int) "cut at the live lsn" cut blsn;
  (* the source moves on; the backup must not *)
  exec_ok s "INSERT INTO t VALUES (4, 40)";
  exec_ok s "DELETE FROM t WHERE t.id = 1";
  let rdir = fresh_dir "px_restored" in
  ignore (ok "restore" (Backup.restore ~from_dir:bdir ~to_dir:rdir));
  let r, _ = open_ok rdir in
  Alcotest.(check int) "restored to the cut lsn" cut (Durable.lsn r);
  let _ = ok "checkpoint" (Durable.checkpoint r) in
  Durable.close r;
  (* the oracle: replay the first L statements on a fresh database and
     save it quiesced at the same lsn *)
  let refdb = Database.create () in
  List.iter
    (fun sql ->
      match Binder.exec_statement refdb (Parser.parse_statement sql) with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail (sql ^ ": " ^ msg))
    script;
  let refdir = fresh_dir "px_ref" in
  ignore (ok "save" (Persist.save ~wal_lsn:cut refdb ~dir:refdir));
  Alcotest.(check string) "snapshot bytes are identical"
    (read_file (Filename.concat refdir "snapshot.eagerdb"))
    (read_file (Filename.concat rdir "snapshot.eagerdb"));
  Durable.close s

(* ===================== the corruption property ==================== *)

let backup_files = [ "snapshot.eagerdb"; "wal.eagerdb"; "backup.eagerdb" ]

(* Flipping any single byte anywhere in the backup — snapshot, WAL
   tail, or the manifest itself — must turn verify into a typed
   refusal.  Exhaustive over every byte offset of every file. *)
let test_every_byte_corruption () =
  let s = populated "corrupt" in
  let bdir = fresh_dir "corrupt_bak" in
  ignore (ok "backup" (Durable.backup s ~dir:bdir));
  Durable.close s;
  ignore (ok "pristine verify" (Backup.verify ~dir:bdir));
  List.iter
    (fun file ->
      let path = Filename.concat bdir file in
      let pristine = read_file path in
      String.iteri
        (fun i b ->
          let corrupted = Bytes.of_string pristine in
          Bytes.set corrupted i (Char.chr (Char.code b lxor 1));
          write_file path (Bytes.to_string corrupted);
          (match Backup.verify ~dir:bdir with
          | Ok _ ->
              Alcotest.fail
                (Printf.sprintf "verify accepted %s with byte %d flipped"
                   file i)
          | Error e ->
              if Err.kind e <> Err.Io then
                Alcotest.fail
                  (Printf.sprintf "%s byte %d: refusal not typed Io: %s" file
                     i (Err.to_string e)));
          write_file path pristine)
        pristine;
      (* restoring a corrupted backup must also refuse, before writing
         anything usable into the target *)
      let corrupted = Bytes.of_string pristine in
      Bytes.set corrupted 0 (Char.chr (Char.code pristine.[0] lxor 1));
      write_file path (Bytes.to_string corrupted);
      let rdir = fresh_dir "corrupt_restored" in
      (match Backup.restore ~from_dir:bdir ~to_dir:rdir with
      | Ok _ -> Alcotest.fail ("restore accepted a corrupted " ^ file)
      | Error _ -> ());
      Alcotest.(check bool)
        ("no partial restore after corrupted " ^ file)
        false
        (Sys.file_exists (Filename.concat rdir "snapshot.eagerdb"));
      write_file path pristine)
    backup_files;
  ignore (ok "still pristine" (Backup.verify ~dir:bdir))

(* Growing or shrinking a file is as fatal as flipping a byte. *)
let test_truncation_and_growth () =
  let s = populated "trunc" in
  let bdir = fresh_dir "trunc_bak" in
  ignore (ok "backup" (Durable.backup s ~dir:bdir));
  Durable.close s;
  List.iter
    (fun file ->
      let path = Filename.concat bdir file in
      let pristine = read_file path in
      write_file path (String.sub pristine 0 (String.length pristine - 1));
      (match Backup.verify ~dir:bdir with
      | Ok _ -> Alcotest.fail ("verify accepted truncated " ^ file)
      | Error _ -> ());
      write_file path (pristine ^ "x");
      (match Backup.verify ~dir:bdir with
      | Ok _ -> Alcotest.fail ("verify accepted grown " ^ file)
      | Error _ -> ());
      write_file path pristine;
      Sys.remove path;
      (match Backup.verify ~dir:bdir with
      | Ok _ -> Alcotest.fail ("verify accepted missing " ^ file)
      | Error _ -> ());
      write_file path pristine)
    backup_files;
  ignore (ok "restored to pristine" (Backup.verify ~dir:bdir))

(* ====================== failure-path hygiene ====================== *)

let test_fresh_dir_refusal () =
  let s = populated "fresh" in
  let bdir = fresh_dir "fresh_bak" in
  ignore (ok "backup" (Durable.backup s ~dir:bdir));
  (match Durable.backup s ~dir:bdir with
  | Ok _ -> Alcotest.fail "backup overwrote an existing backup"
  | Error e ->
      Alcotest.(check bool) "names the non-empty target" true
        (contains (Err.to_string e) "not empty"));
  Durable.close s

let test_injected_copy_fault () =
  Fault.reset ();
  let s = populated "fault" in
  let bdir = fresh_dir "fault_bak" in
  Fault.arm_nth "backup.copy" 1;
  (match Durable.backup s ~dir:bdir with
  | Ok _ -> Alcotest.fail "backup succeeded across an injected copy fault"
  | Error e ->
      Alcotest.(check bool) "typed Io" true (Err.kind e = Err.Io));
  Fault.reset ();
  (* the torn artifact left behind must never verify: the manifest is
     written last, so a backup that did not finish has none *)
  (match Backup.verify ~dir:bdir with
  | Ok _ -> Alcotest.fail "a torn backup verified"
  | Error e ->
      Alcotest.(check bool) "refusal names the missing seal" true
        (contains (Err.to_string e) "incomplete"));
  (* and the source is unharmed: a clean retry into a fresh dir works *)
  let bdir2 = fresh_dir "fault_bak2" in
  ignore (ok "retry" (Durable.backup s ~dir:bdir2));
  ignore (ok "retry verifies" (Backup.verify ~dir:bdir2));
  Durable.close s

let () =
  Alcotest.run "backup"
    [
      ( "round trip",
        [
          Alcotest.test_case "backup → verify → restore → reopen" `Quick
            test_roundtrip;
          Alcotest.test_case "byte-equivalent to a quiesced checkpoint"
            `Quick test_prefix_byte_equivalence;
          Alcotest.test_case "cluster epoch rides the manifest" `Quick
            test_epoch_roundtrip;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "every flipped byte refuses typed" `Quick
            test_every_byte_corruption;
          Alcotest.test_case "truncated/grown/missing files refuse" `Quick
            test_truncation_and_growth;
        ] );
      ( "failure paths",
        [
          Alcotest.test_case "non-empty target refused" `Quick
            test_fresh_dir_refusal;
          Alcotest.test_case "injected backup.copy fault leaves no lie"
            `Quick test_injected_copy_fault;
        ] );
    ]
