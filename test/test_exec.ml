(* Executor tests: every operator, every join/group algorithm, and the SQL2
   semantics corners — unknown-is-false filtering, NULL join keys, =ⁿ
   duplicate elimination, NULL-aware aggregates. *)

open Eager_value
open Eager_schema
open Eager_expr
open Eager_catalog
open Eager_storage
open Eager_algebra
open Eager_exec

let cr = Colref.make
let i n = Value.Int n
let s x = Value.Str x

let coldef name ctype : Table_def.column_def =
  { Table_def.cname = name; ctype; domain = None }

(* A small database with NULLs and duplicates.
   T(a, b): (1,10) (1,10) (2,20) (NULL,30) (3,NULL)
   U(x, y): (1,'one') (2,'two') (NULL,'none') (9,'nine') *)
let make_db () =
  let db = Database.create () in
  Database.create_table db
    (Table_def.make "T" [ coldef "a" Ctype.Int; coldef "b" Ctype.Int ] []);
  Database.create_table db
    (Table_def.make "U" [ coldef "x" Ctype.Int; coldef "y" Ctype.String ] []);
  Database.load db "T"
    [ [ i 1; i 10 ]; [ i 1; i 10 ]; [ i 2; i 20 ]; [ Value.Null; i 30 ];
      [ i 3; Value.Null ] ];
  Database.load db "U"
    [ [ i 1; s "one" ]; [ i 2; s "two" ]; [ Value.Null; s "none" ];
      [ i 9; s "nine" ] ];
  db

let t_schema =
  Schema.make [ (cr "T" "a", Ctype.Int); (cr "T" "b", Ctype.Int) ]

let u_schema =
  Schema.make [ (cr "U" "x", Ctype.Int); (cr "U" "y", Ctype.String) ]

let scan_t = Plan.scan ~table:"T" ~rel:"T" t_schema
let scan_u = Plan.scan ~table:"U" ~rel:"U" u_schema

let rows db ?options plan = Exec.run_rows ?options db plan

let sorted_strings rs = List.sort compare (List.map Row.to_string rs)

let check_rows name expected actual =
  Alcotest.(check (list string)) name
    (List.sort compare expected)
    (sorted_strings actual)

(* ---------------- scan / select / project ---------------- *)

let test_scan () =
  let db = make_db () in
  Alcotest.(check int) "all rows" 5 (List.length (rows db scan_t))

let test_select_3vl () =
  let db = make_db () in
  (* a = 1: the NULL row is unknown → dropped *)
  let p = Plan.select (Expr.eq (Expr.col "T" "a") (Expr.int 1)) scan_t in
  Alcotest.(check int) "a=1 keeps 2" 2 (List.length (rows db p));
  (* a <> 1: NULL row still dropped (unknown), not kept *)
  let p2 =
    Plan.select (Expr.Cmp (Expr.Ne, Expr.col "T" "a", Expr.int 1)) scan_t
  in
  Alcotest.(check int) "a<>1 keeps 2 (not the NULL row)" 2
    (List.length (rows db p2));
  (* IS NULL finds exactly the NULL row *)
  let p3 = Plan.select (Expr.Is_null (Expr.col "T" "a")) scan_t in
  check_rows "IS NULL" [ "(NULL, 30)" ] (rows db p3)

let test_project_all_and_distinct () =
  let db = make_db () in
  let p = Plan.project [ cr "T" "a" ] scan_t in
  Alcotest.(check int) "πA keeps duplicates" 5 (List.length (rows db p));
  let pd = Plan.project ~dedup:true [ cr "T" "a" ] scan_t in
  (* distinct under =ⁿ: {1, 2, NULL, 3} — the two 1s merge, NULL kept once *)
  check_rows "πD dedups with NULL=NULL" [ "(1)"; "(2)"; "(3)"; "(NULL)" ]
    (rows db pd)

let test_distinct_null_pairs () =
  (* two (NULL, NULL) rows are duplicates of each other — SQL2 duplicate
     semantics (paper Section 4.2) *)
  let db = Database.create () in
  Database.create_table db
    (Table_def.make "N" [ coldef "p" Ctype.Int; coldef "q" Ctype.Int ] []);
  Database.load db "N"
    [ [ Value.Null; Value.Null ]; [ Value.Null; Value.Null ]; [ i 1; Value.Null ] ];
  let sc =
    Plan.scan ~table:"N" ~rel:"N"
      (Schema.make [ (cr "N" "p", Ctype.Int); (cr "N" "q", Ctype.Int) ])
  in
  let pd = Plan.project ~dedup:true [ cr "N" "p"; cr "N" "q" ] sc in
  Alcotest.(check int) "NULL rows merge" 2 (List.length (rows db pd))

(* ---------------- joins ---------------- *)

let join_pred = Expr.eq (Expr.col "T" "a") (Expr.col "U" "x")

let expected_join =
  (* T.a=U.x: (1,10,1,one) ×2, (2,20,2,two); NULLs never match *)
  [ "(1, 10, 1, 'one')"; "(1, 10, 1, 'one')"; "(2, 20, 2, 'two')" ]

let test_join_algorithms_agree () =
  let db = make_db () in
  let j = Plan.join join_pred scan_t scan_u in
  List.iter
    (fun (name, algo) ->
      let options = { Exec.default_options with join_algo = algo } in
      check_rows (name ^ " join result") expected_join (rows db ~options j))
    [
      ("nested-loop", Exec.Nested_loop);
      ("hash", Exec.Hash_join);
      ("merge", Exec.Merge_join);
      ("auto", Exec.Auto);
    ]

let test_join_null_keys_never_match () =
  let db = make_db () in
  let j = Plan.join join_pred scan_t scan_u in
  let out = rows db j in
  Alcotest.(check bool) "no NULL key in output" true
    (List.for_all (fun r -> not (Value.is_null r.(0))) out)

let test_join_residual_predicate () =
  let db = make_db () in
  (* equi key plus residual: T.b > 10 *)
  let pred =
    Expr.And (join_pred, Expr.Cmp (Expr.Gt, Expr.col "T" "b", Expr.int 10))
  in
  let j = Plan.join pred scan_t scan_u in
  List.iter
    (fun algo ->
      let options = { Exec.default_options with join_algo = algo } in
      check_rows "residual applied" [ "(2, 20, 2, 'two')" ] (rows db ~options j))
    [ Exec.Nested_loop; Exec.Hash_join; Exec.Merge_join ]

let test_theta_join_falls_back () =
  let db = make_db () in
  (* pure inequality join: only nested loops can run it; Auto must fall back *)
  let pred = Expr.Cmp (Expr.Lt, Expr.col "T" "a", Expr.col "U" "x") in
  let j = Plan.join pred scan_t scan_u in
  let n = List.length (rows db j) in
  (* pairs with a < x among non-null: a∈{1,1,2,3} x∈{1,2,9}:
     1<2,1<9 (×2 rows of a=1 → 4), 2<9 (1), 3<9 (1) → 6 *)
  Alcotest.(check int) "theta join count" 6 n

let test_product () =
  let db = make_db () in
  let p = Plan.Product (scan_t, scan_u) in
  Alcotest.(check int) "5×4 product" 20 (List.length (rows db p))

let test_split_equijoin () =
  let keys, residual = Exec.split_equijoin t_schema u_schema join_pred in
  Alcotest.(check int) "one key pair" 1 (List.length keys);
  Alcotest.(check int) "no residual" 0 (List.length residual);
  let keys2, residual2 =
    Exec.split_equijoin t_schema u_schema
      (Expr.And
         ( Expr.eq (Expr.col "U" "x") (Expr.col "T" "a"),
           Expr.Cmp (Expr.Lt, Expr.col "T" "b", Expr.col "U" "x") ))
  in
  Alcotest.(check int) "flipped equi key recognised" 1 (List.length keys2);
  let l, r = List.hd keys2 in
  Alcotest.(check string) "left side col" "T.a" (Colref.to_string l);
  Alcotest.(check string) "right side col" "U.x" (Colref.to_string r);
  Alcotest.(check int) "inequality is residual" 1 (List.length residual2)

(* ---------------- grouping and aggregates ---------------- *)

let test_group_null_key () =
  let db = make_db () in
  let g =
    Plan.group ~by:[ cr "T" "a" ]
      ~aggs:[ Agg.count_star (cr "" "n") ]
      scan_t
  in
  List.iter
    (fun algo ->
      let options = { Exec.default_options with group_algo = algo } in
      (* groups: 1 (2 rows), 2, NULL, 3 → 4 groups; NULL is its own group *)
      check_rows "groups incl. NULL"
        [ "(1, 2)"; "(2, 1)"; "(3, 1)"; "(NULL, 1)" ]
        (rows db ~options g))
    [ Exec.Hash_group; Exec.Sort_group ]

let test_aggregate_null_rules () =
  let db = make_db () in
  let aggs =
    [
      Agg.count_star (cr "" "cstar");
      Agg.count (cr "" "cb") (Expr.col "T" "b");
      Agg.sum (cr "" "sb") (Expr.col "T" "b");
      Agg.min_ (cr "" "mn") (Expr.col "T" "b");
      Agg.max_ (cr "" "mx") (Expr.col "T" "b");
      Agg.avg (cr "" "av") (Expr.col "T" "b");
    ]
  in
  let g = Plan.group ~by:[] ~aggs scan_t in
  match rows db g with
  | [ row ] ->
      (* b values: 10,10,20,30,NULL *)
      Alcotest.(check bool) "COUNT(*)=5" true (Value.null_eq row.(0) (i 5));
      Alcotest.(check bool) "COUNT(b)=4 skips NULL" true (Value.null_eq row.(1) (i 4));
      Alcotest.(check bool) "SUM(b)=70" true (Value.null_eq row.(2) (i 70));
      Alcotest.(check bool) "MIN(b)=10" true (Value.null_eq row.(3) (i 10));
      Alcotest.(check bool) "MAX(b)=30" true (Value.null_eq row.(4) (i 30));
      Alcotest.(check bool) "AVG(b)=17.5" true
        (Value.null_eq row.(5) (Value.Float 17.5))
  | other -> Alcotest.fail (Printf.sprintf "expected 1 row, got %d" (List.length other))

let test_aggregate_all_null_group () =
  let db = Database.create () in
  Database.create_table db
    (Table_def.make "Z" [ coldef "g" Ctype.Int; coldef "v" Ctype.Int ] []);
  Database.load db "Z" [ [ i 1; Value.Null ]; [ i 1; Value.Null ] ];
  let sc =
    Plan.scan ~table:"Z" ~rel:"Z"
      (Schema.make [ (cr "Z" "g", Ctype.Int); (cr "Z" "v", Ctype.Int) ])
  in
  let g =
    Plan.group ~by:[ cr "Z" "g" ]
      ~aggs:
        [
          Agg.sum (cr "" "s") (Expr.col "Z" "v");
          Agg.min_ (cr "" "m") (Expr.col "Z" "v");
          Agg.avg (cr "" "a") (Expr.col "Z" "v");
          Agg.count (cr "" "c") (Expr.col "Z" "v");
        ]
      sc
  in
  match rows db g with
  | [ row ] ->
      Alcotest.(check bool) "SUM of all-NULL is NULL" true (Value.is_null row.(1));
      Alcotest.(check bool) "MIN of all-NULL is NULL" true (Value.is_null row.(2));
      Alcotest.(check bool) "AVG of all-NULL is NULL" true (Value.is_null row.(3));
      Alcotest.(check bool) "COUNT of all-NULL is 0" true (Value.null_eq row.(4) (i 0))
  | _ -> Alcotest.fail "expected one group"

let test_scalar_agg_empty_input () =
  let db = make_db () in
  let empty = Plan.select (Expr.eq (Expr.col "T" "a") (Expr.int 999)) scan_t in
  let g =
    Plan.group ~scalar:true ~by:[]
      ~aggs:[ Agg.count_star (cr "" "n"); Agg.sum (cr "" "s") (Expr.col "T" "b") ]
      empty
  in
  (match rows db g with
  | [ row ] ->
      Alcotest.(check bool) "COUNT over empty = 0" true (Value.null_eq row.(0) (i 0));
      Alcotest.(check bool) "SUM over empty = NULL" true (Value.is_null row.(1))
  | _ -> Alcotest.fail "scalar aggregation must yield exactly one row");
  (* GROUP BY over empty input yields zero groups *)
  let g2 =
    Plan.group ~by:[ cr "T" "a" ] ~aggs:[ Agg.count_star (cr "" "n") ] empty
  in
  Alcotest.(check int) "grouped empty input: no rows" 0 (List.length (rows db g2));
  (* the paper's G[∅] over empty input also yields zero groups — the
     non-scalar / scalar distinction only matters here *)
  let g3 = Plan.group ~by:[] ~aggs:[ Agg.count_star (cr "" "n") ] empty in
  Alcotest.(check int) "non-scalar G[∅] over empty: no rows" 0
    (List.length (rows db g3));
  (* scalar with grouping columns is a construction error *)
  Alcotest.(check bool) "scalar with by rejected" true
    (try
       ignore (Plan.group ~scalar:true ~by:[ cr "T" "a" ] ~aggs:[] scan_t);
       false
     with Invalid_argument _ -> true)

let test_count_distinct () =
  let db = make_db () in
  (* b values: 10,10,20,30,NULL → 3 distinct non-NULL *)
  let g =
    Plan.group ~by:[]
      ~aggs:[ Agg.count_distinct (cr "" "d") (Expr.col "T" "b") ]
      scan_t
  in
  (match rows db g with
  | [ row ] ->
      Alcotest.(check bool) "3 distinct" true (Value.null_eq row.(0) (i 3))
  | _ -> Alcotest.fail "one row expected");
  (* per group, NULL-key group included *)
  let g2 =
    Plan.group ~by:[ cr "T" "a" ]
      ~aggs:[ Agg.count_distinct (cr "" "d") (Expr.col "T" "b") ]
      scan_t
  in
  check_rows "count distinct per group"
    [ "(1, 1)"; "(2, 1)"; "(3, 0)"; "(NULL, 1)" ]
    (rows db g2)

let test_agg_arith_expression () =
  let db = make_db () in
  (* COUNT(b) + SUM(b+0) over all rows: 4 + 70 = 74 *)
  let calc =
    Agg.Arith
      ( Expr.Add,
        Agg.Call (Agg.Count (Expr.col "T" "b")),
        Agg.Call (Agg.Sum (Expr.Arith (Expr.Add, Expr.col "T" "b", Expr.int 0)))
      )
  in
  let g = Plan.group ~by:[] ~aggs:[ Agg.make (cr "" "combo") calc ] scan_t in
  match rows db g with
  | [ row ] ->
      Alcotest.(check bool) "arith over aggregates" true
        (Value.null_eq row.(0) (i 74))
  | _ -> Alcotest.fail "one row expected"

(* ---------------- sort ---------------- *)

let test_sort () =
  let db = make_db () in
  (* ascending on a: NULL first, then 1,1,2,3 *)
  let p = Plan.sort [ (cr "T" "a", false) ] scan_t in
  let firsts = List.map (fun r -> r.(0)) (rows db p) in
  Alcotest.(check (list string)) "ascending, NULLs first"
    [ "NULL"; "1"; "1"; "2"; "3" ]
    (List.map Value.to_string firsts);
  (* descending *)
  let pd = Plan.sort [ (cr "T" "a", true) ] scan_t in
  let firsts_d = List.map (fun r -> r.(0)) (rows db pd) in
  Alcotest.(check (list string)) "descending, NULLs last"
    [ "3"; "2"; "1"; "1"; "NULL" ]
    (List.map Value.to_string firsts_d);
  (* stability: the two a=1 rows keep their scan order (b = 10 then 10 —
     use the two-key case instead: sort by b desc then check a order) *)
  let p2 = Plan.sort [ (cr "T" "b", false); (cr "T" "a", true) ] scan_t in
  Alcotest.(check int) "sort preserves multiset" 5 (List.length (rows db p2));
  (* empty order list is the identity constructor *)
  (match Plan.sort [] scan_t with
  | Plan.Scan _ -> ()
  | _ -> Alcotest.fail "empty sort should be elided");
  (* schema passes through *)
  Alcotest.(check int) "schema unchanged" 2
    (Schema.arity (Plan.schema_of p))

(* ---------------- order propagation (Section 7) ---------------- *)

let is_sorted_by schema cols rows =
  let idxs = Schema.indices schema cols in
  let rec go = function
    | a :: (b :: _ as rest) -> Row.compare_on idxs a b <= 0 && go rest
    | _ -> true
  in
  go rows

let test_order_propagation () =
  let db = make_db () in
  (* sort-based grouping leaves its output sorted on the grouping columns *)
  let g =
    Plan.group ~by:[ cr "T" "a" ] ~aggs:[ Agg.count_star (cr "" "n") ] scan_t
  in
  let options = { Exec.default_options with group_algo = Exec.Sort_group } in
  let h, _, order = Exec.run_ordered ~options db g in
  Alcotest.(check (list string)) "group claims its by-order" [ "T.a" ]
    (List.map Colref.to_string order);
  Alcotest.(check bool) "claimed order is physical" true
    (is_sorted_by (Heap.schema h) order (Heap.to_list h));
  (* Sort claims its ascending prefix *)
  let s = Plan.sort [ (cr "T" "a", false); (cr "T" "b", true) ] scan_t in
  let _, _, order_s = Exec.run_ordered db s in
  Alcotest.(check (list string)) "ascending prefix only" [ "T.a" ]
    (List.map Colref.to_string order_s);
  (* selection preserves order *)
  let sel = Plan.select (Expr.Is_not_null (Expr.col "T" "a")) s in
  let _, _, order_sel = Exec.run_ordered db sel in
  Alcotest.(check int) "select preserves order" 1 (List.length order_sel)

let test_merge_join_skips_presorted () =
  let db = make_db () in
  (* group T on its join column with sort-grouping, then merge-join with U:
     the left input arrives sorted on the key — the paper's Section 7
     "exploit the grouping order" observation *)
  let grouped =
    Plan.group ~by:[ cr "T" "a" ]
      ~aggs:[ Agg.sum (cr "" "s") (Expr.col "T" "b") ]
      scan_t
  in
  let joined =
    Plan.join (Expr.eq (Expr.col "T" "a") (Expr.col "U" "x")) grouped scan_u
  in
  let options =
    {
      Exec.default_options with
      group_algo = Exec.Sort_group;
      join_algo = Exec.Merge_join;
    }
  in
  let h, stats, order = Exec.run_ordered ~options db joined in
  (* the join recognised one presorted input *)
  (match Optree.find ~prefix:"Join" stats with
  | Some node ->
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "presorted input recognised (%s)" node.Optree.label)
        true
        (contains node.Optree.label "presorted")
  | None -> Alcotest.fail "no join node in stats");
  (* merge join output is itself key-ordered *)
  Alcotest.(check (list string)) "output ordered on the key" [ "T.a" ]
    (List.map Colref.to_string order);
  Alcotest.(check bool) "physically sorted" true
    (is_sorted_by (Heap.schema h) order (Heap.to_list h));
  (* and the result matches the hash join *)
  let rows_hash =
    Exec.run_rows
      ~options:{ Exec.default_options with group_algo = Exec.Sort_group }
      db joined
  in
  Alcotest.(check bool) "same result as hash join" true
    (Exec.multiset_equal rows_hash (Heap.to_list h))

let test_map_operator () =
  let db = make_db () in
  (* identity + computed items *)
  let m =
    Plan.map_items
      [
        (cr "T" "a", Expr.col "T" "a");
        (cr "" "doubled", Expr.Arith (Expr.Mul, Expr.col "T" "b", Expr.int 2));
      ]
      scan_t
  in
  let rows_out = rows db m in
  Alcotest.(check int) "row count preserved" 5 (List.length rows_out);
  Alcotest.(check bool) "NULL propagates through computation" true
    (List.exists (fun r -> Value.is_null r.(1)) rows_out);
  Alcotest.(check bool) "doubling works" true
    (List.exists (fun r -> Value.null_eq r.(1) (i 20)) rows_out);
  (* order propagation: identity prefix survives, computed tail does not *)
  let sorted_then_mapped =
    Plan.map_items
      [
        (cr "T" "a", Expr.col "T" "a");
        (cr "" "c", Expr.Arith (Expr.Add, Expr.col "T" "b", Expr.int 1));
      ]
      (Plan.sort [ (cr "T" "a", false) ] scan_t)
  in
  let _, _, order = Exec.run_ordered db sorted_then_mapped in
  Alcotest.(check (list string)) "identity item keeps the order" [ "T.a" ]
    (List.map Colref.to_string order);
  (* a renaming breaks the claim *)
  let renamed =
    Plan.map_items
      [ (cr "" "alias", Expr.col "T" "a") ]
      (Plan.sort [ (cr "T" "a", false) ] scan_t)
  in
  let _, _, order_r = Exec.run_ordered db renamed in
  Alcotest.(check int) "renamed column loses the order" 0 (List.length order_r)

(* property: any claimed order is physically true *)
let order_table_gen =
  QCheck.Gen.(
    list_size (int_range 0 12)
      (pair
         (oneof [ return Value.Null; map (fun n -> i n) (int_range 0 3) ])
         (oneof [ return Value.Null; map (fun n -> i n) (int_range 0 3) ])))

let prop_claimed_order_is_real =
  QCheck.Test.make ~count:150 ~name:"claimed sort orders are physical"
    (QCheck.make
       (QCheck.Gen.tup3 order_table_gen order_table_gen
          (QCheck.Gen.int_range 0 3)))
    (fun (trows, urows, variant) ->
      let db = Database.create () in
      Database.create_table db
        (Table_def.make "T" [ coldef "a" Ctype.Int; coldef "b" Ctype.Int ] []);
      Database.create_table db
        (Table_def.make "U" [ coldef "x" Ctype.Int; coldef "y" Ctype.Int ] []);
      Database.load db "T" (List.map (fun (a, b) -> [ a; b ]) trows);
      Database.load db "U" (List.map (fun (x, y) -> [ x; y ]) urows);
      let u_schema' =
        Schema.make [ (cr "U" "x", Ctype.Int); (cr "U" "y", Ctype.Int) ]
      in
      let scan_u' = Plan.scan ~table:"U" ~rel:"U" u_schema' in
      let grouped =
        Plan.group ~by:[ cr "T" "a" ]
          ~aggs:[ Agg.count_star (cr "" "n") ]
          scan_t
      in
      let plan =
        match variant with
        | 0 -> Plan.sort [ (cr "T" "a", false) ] scan_t
        | 1 -> grouped
        | 2 -> Plan.join (Expr.eq (Expr.col "T" "a") (Expr.col "U" "x")) grouped scan_u'
        | _ ->
            Plan.select
              (Expr.Is_not_null (Expr.col "T" "a"))
              (Plan.sort [ (cr "T" "a", false); (cr "T" "b", false) ] scan_t)
      in
      List.for_all
        (fun (ja, ga) ->
          let options =
            { Exec.default_options with join_algo = ja; group_algo = ga }
          in
          let h, _, order = Exec.run_ordered ~options db plan in
          is_sorted_by (Heap.schema h) order (Heap.to_list h))
        [
          (Exec.Auto, Exec.Hash_group);
          (Exec.Merge_join, Exec.Sort_group);
          (Exec.Nested_loop, Exec.Sort_group);
        ])

(* ---------------- operator statistics ---------------- *)

let test_optree () =
  let db = make_db () in
  let plan =
    Plan.group ~by:[ cr "T" "a" ]
      ~aggs:[ Agg.count_star (cr "" "n") ]
      (Plan.select (Expr.Is_not_null (Expr.col "T" "a")) scan_t)
  in
  let _, st = Exec.run db plan in
  (* shape: GroupBy over Select over Scan *)
  (match Optree.find ~prefix:"GroupBy" st with
  | Some g ->
      Alcotest.(check int) "group consumed the filtered rows" 4
        (List.hd (Optree.in_rows g));
      Alcotest.(check int) "group emitted 3 groups" 3 g.Optree.out_rows
  | None -> Alcotest.fail "no group node");
  (match Optree.find ~prefix:"Scan" st with
  | Some s -> Alcotest.(check int) "scan saw all rows" 5 s.Optree.out_rows
  | None -> Alcotest.fail "no scan node");
  Alcotest.(check bool) "missing prefix" true
    (Optree.find ~prefix:"Window" st = None);
  (* total work = 5 (scan) + 4 (select) + 3 (group) *)
  Alcotest.(check int) "total produced" 12 (Optree.total_produced st);
  (* the printer mentions each operator with its cardinality *)
  let text = Optree.to_string st in
  let contains sub =
    let n = String.length text and m = String.length sub in
    let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "printer shows cardinalities" true
    (contains "-- 4 rows" && contains "GroupBy");
  Alcotest.(check bool) "printer shows batch counts" true
    (contains "batch");
  (* per-operator batch counts at a small batch size: 5 rows in batches
     of 2 → the scan emits 3 batches; the select keeps 4 rows but still
     re-batches each nonempty input slice → 3; the group's 3 rows fit 2 *)
  let _, st2 =
    Exec.run ~options:{ Exec.default_options with batch_rows = 2 } db plan
  in
  let batches prefix =
    match Optree.find ~prefix st2 with
    | Some n -> n.Optree.batches
    | None -> Alcotest.failf "no %s node" prefix
  in
  Alcotest.(check int) "scan batches" 3 (batches "Scan");
  Alcotest.(check int) "select batches" 3 (batches "Select");
  Alcotest.(check int) "group batches" 2 (batches "GroupBy")

let test_optree_find_all () =
  let db = make_db () in
  let _, st = Exec.run db (Plan.Product (scan_t, scan_u)) in
  (* [find] commits to the first scan; [find_all] sees both, in order *)
  (match Optree.find_all ~prefix:"Scan" st with
  | [ l; r ] ->
      Alcotest.(check int) "left scan first (T: 5 rows)" 5 l.Optree.out_rows;
      Alcotest.(check int) "right scan second (U: 4 rows)" 4 r.Optree.out_rows;
      Alcotest.(check bool) "find returns the first of them" true
        (Optree.find ~prefix:"Scan" st = Some l)
  | other ->
      Alcotest.failf "expected exactly 2 scans, got %d" (List.length other));
  Alcotest.(check int) "no match is empty" 0
    (List.length (Optree.find_all ~prefix:"Window" st))

(* ---------------- batched pull pipeline ---------------- *)

(* the same plans must mean the same thing at every batch size; sweep a
   plan that exercises scan, select, join, group and project *)
let batch_sizes = [ 1; 2; 7; 1024; max_int ]

let algo_combos =
  [
    (Exec.Auto, Exec.Hash_group);
    (Exec.Nested_loop, Exec.Sort_group);
    (Exec.Merge_join, Exec.Sort_group);
    (Exec.Merge_join, Exec.Hash_group);
  ]

let check_against_reference ?(combos = algo_combos) name db plan =
  let reference = Eager_exec.Ref_eval.eval db plan in
  List.iter
    (fun batch_rows ->
      List.iter
        (fun (join_algo, group_algo) ->
          let options =
            { Exec.default_options with join_algo; group_algo; batch_rows }
          in
          let got = Exec.run_rows ~options db plan in
          Alcotest.(check bool)
            (Printf.sprintf "%s: batch=%d algos agree with reference" name
               (min batch_rows 99999))
            true
            (Exec.multiset_equal reference got))
        combos)
    batch_sizes

let test_batch_size_invariance () =
  let db = make_db () in
  let plan =
    Plan.project ~dedup:true
      [ cr "T" "a"; cr "" "n" ]
      (Plan.group ~by:[ cr "T" "a" ]
         ~aggs:[ Agg.count_star (cr "" "n") ]
         (Plan.join join_pred
            (Plan.select (Expr.Is_not_null (Expr.col "T" "b")) scan_t)
            scan_u))
  in
  check_against_reference "group-over-join" db plan;
  (* empty input through every operator *)
  let empty =
    Plan.group ~by:[ cr "T" "a" ]
      ~aggs:[ Agg.sum (cr "" "s") (Expr.col "T" "b") ]
      (Plan.select Expr.efalse scan_t)
  in
  check_against_reference "empty input" db empty

(* every checked-in fuzz-corpus query, replayed at several batch sizes
   against the naive whole-relation reference evaluator *)
let test_corpus_differential () =
  let dir = if Sys.file_exists "../corpus" then "../corpus" else "corpus" in
  let files =
    if Sys.file_exists dir then
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".sql")
      |> List.sort String.compare
      |> List.map (Filename.concat dir)
    else []
  in
  Alcotest.(check bool) "corpus present" true (files <> []);
  let checked = ref 0 in
  List.iter
    (fun path ->
      match Eager_fuzz.Corpus.queries_of_file path with
      | Error msg -> Alcotest.failf "corpus load: %s" msg
      | Ok (db, qs) ->
          List.iter
            (fun q ->
              let plans =
                (Filename.basename path ^ ":E1", Eager_core.Plans.e1 db q)
                ::
                (match
                   Eager_robust.Err.protect ~kind:Eager_robust.Err.Planner
                     (fun () -> Eager_core.Plans.e2 db q)
                 with
                | Ok p -> [ (Filename.basename path ^ ":E2", p) ]
                | Error _ -> [])
              in
              List.iter
                (fun (name, plan) ->
                  incr checked;
                  check_against_reference name db plan)
                plans)
            qs)
    files;
  Alcotest.(check bool) "at least one corpus plan checked" true (!checked > 0)

(* generated queries too: a slice of the fuzz space beyond the corpus *)
let test_generated_differential () =
  let seeds = List.init 12 (fun k -> 1000 + k) in
  List.iter
    (fun seed ->
      let case = Eager_fuzz.Qgen.generate (Eager_workload.Gen.make2 777 seed) in
      match Eager_fuzz.Qgen.build case with
      | Error m -> Alcotest.failf "qgen build (seed %d): %s" seed m
      | Ok (db, q) ->
          check_against_reference
            ~combos:[ (Exec.Auto, Exec.Hash_group);
                      (Exec.Merge_join, Exec.Sort_group) ]
            (Printf.sprintf "gen seed %d" seed)
            db
            (Eager_core.Plans.e1 db q))
    seeds

(* the profile's high-water mark: breakers account for what they hold,
   and the eager plan's smaller build side shows up as a lower peak *)
let test_profile_peak () =
  let db = make_db () in
  let j = Plan.join join_pred scan_t scan_u in
  let _, _, _, prof = Exec.run_profiled db j in
  (* hash join builds the left side's non-NULL-key rows: 4 of T's 5 *)
  Alcotest.(check bool)
    (Printf.sprintf "join build side tracked (peak %d)" prof.Exec.peak_live_rows)
    true
    (prof.Exec.peak_live_rows >= 4);
  let w = Eager_workload.Employee_dept.setup ~employees:400 ~departments:10 () in
  let wdb = w.Eager_workload.Employee_dept.db in
  let q = w.Eager_workload.Employee_dept.query in
  let peak plan =
    let _, _, _, p = Exec.run_profiled wdb plan in
    p.Exec.peak_live_rows
  in
  let p1 = peak (Eager_core.Plans.e1 wdb q) in
  let p2 = peak (Eager_core.Plans.e2 wdb q) in
  Alcotest.(check bool)
    (Printf.sprintf "E2 peak (%d) strictly below E1 peak (%d)" p2 p1)
    true (p2 < p1)

(* the paged engine, squeezed: each workload must agree with the naive
   reference at every pool size down to a handful of pages.  The
   smallest pool is far below each table's footprint, so scans fault
   pages in and out while the spill breakers (grace join, external
   sort, spilling aggregation) carry the build sides on scratch runs. *)
let test_paged_pool_sweep () =
  let workloads =
    [
      ( "fig1",
        fun storage () ->
          let w =
            Eager_workload.Employee_dept.setup ?storage ~employees:1000
              ~departments:10 ()
          in
          Eager_workload.Employee_dept.(w.db, w.query) );
      ( "sales",
        fun storage () ->
          let w =
            Eager_workload.Sales.setup ?storage ~customers:25 ~orders:800 ()
          in
          Eager_workload.Sales.(w.db, w.query) );
      ( "star",
        fun storage () ->
          let w =
            Eager_workload.Star.setup ?storage ~parts:800 ~suppliers:20
              ~regions:4 ()
          in
          Eager_workload.Star.(w.db, w.query) );
    ]
  in
  let pools = [ Some 4; Some 16; Some 64; None ] in
  List.iter
    (fun (name, build) ->
      (* reference: the RAM engine's whole-relation evaluator over the
         same data (workload seeds are fixed) *)
      let rdb, rq = build None () in
      let reference = Ref_eval.eval rdb (Eager_core.Plans.e1 rdb rq) in
      List.iter
        (fun pool_pages ->
          let storage =
            { Database.pool_pages; page_size = 1024; spill_dir = None }
          in
          let db, q = build (Some storage) () in
          Fun.protect
            ~finally:(fun () -> Database.close_storage db)
            (fun () ->
              let plans =
                ("E1", Eager_core.Plans.e1 db q)
                ::
                (* E2 only where TestFD admits it (star's region rollup
                   fails FD2: SupplierNo is finer than RegionName) *)
                (match Eager_core.Eager.transform db q with
                | Ok p -> [ ("E2", p) ]
                | Error _ -> [])
              in
              List.iter
                (fun (pname, plan) ->
                  List.iter
                    (fun group_algo ->
                      let options =
                        {
                          Exec.default_options with
                          group_algo;
                          spill = Spill.for_db db;
                        }
                      in
                      let got = Exec.run_rows ~options db plan in
                      Alcotest.(check bool)
                        (Printf.sprintf "%s %s pool=%s %s agrees with reference"
                           name pname
                           (match pool_pages with
                           | Some n -> string_of_int n
                           | None -> "unbounded")
                           (match group_algo with
                           | Exec.Hash_group -> "hash"
                           | _ -> "sort"))
                        true
                        (Exec.multiset_equal reference got))
                    [ Exec.Hash_group; Exec.Sort_group ])
                plans))
        pools)
    workloads

(* ---------------- multiset equality ---------------- *)

let test_multiset_equal () =
  let r1 = [ [| i 1 |]; [| i 2 |]; [| i 1 |] ] in
  let r2 = [ [| i 2 |]; [| i 1 |]; [| i 1 |] ] in
  let r3 = [ [| i 1 |]; [| i 2 |] ] in
  let r4 = [ [| i 1 |]; [| i 2 |]; [| i 2 |] ] in
  Alcotest.(check bool) "permutation equal" true (Exec.multiset_equal r1 r2);
  Alcotest.(check bool) "different length" false (Exec.multiset_equal r1 r3);
  Alcotest.(check bool) "different multiplicity" false (Exec.multiset_equal r1 r4);
  Alcotest.(check bool) "NULLs compare =ⁿ" true
    (Exec.multiset_equal [ [| Value.Null |] ] [ [| Value.Null |] ])

(* ---------------- property: join algorithms agree on random data -------- *)

let small_val = QCheck.Gen.(oneof [ return Value.Null; map (fun n -> i n) (int_range 0 3) ])

let table_gen =
  QCheck.Gen.(list_size (int_range 0 12) (pair small_val small_val))

let prop_join_algos_agree =
  QCheck.Test.make ~count:120 ~name:"NL, hash and merge joins agree"
    (QCheck.make (QCheck.Gen.pair table_gen table_gen))
    (fun (trows, urows) ->
      let db = Database.create () in
      Database.create_table db
        (Table_def.make "T" [ coldef "a" Ctype.Int; coldef "b" Ctype.Int ] []);
      Database.create_table db
        (Table_def.make "U" [ coldef "x" Ctype.Int; coldef "y" Ctype.Int ] []);
      Database.load db "T" (List.map (fun (a, b) -> [ a; b ]) trows);
      Database.load db "U" (List.map (fun (x, y) -> [ x; y ]) urows);
      let u_schema' =
        Schema.make [ (cr "U" "x", Ctype.Int); (cr "U" "y", Ctype.Int) ]
      in
      let j =
        Plan.join join_pred scan_t (Plan.scan ~table:"U" ~rel:"U" u_schema')
      in
      let run algo =
        rows db ~options:{ Exec.default_options with join_algo = algo } j
      in
      let nl = run Exec.Nested_loop in
      Exec.multiset_equal nl (run Exec.Hash_join)
      && Exec.multiset_equal nl (run Exec.Merge_join))

let prop_group_algos_agree =
  QCheck.Test.make ~count:120 ~name:"hash and sort grouping agree"
    (QCheck.make table_gen)
    (fun trows ->
      let db = Database.create () in
      Database.create_table db
        (Table_def.make "T" [ coldef "a" Ctype.Int; coldef "b" Ctype.Int ] []);
      Database.load db "T" (List.map (fun (a, b) -> [ a; b ]) trows);
      let g =
        Plan.group ~by:[ cr "T" "a" ]
          ~aggs:
            [
              Agg.count_star (cr "" "n");
              Agg.sum (cr "" "s") (Expr.col "T" "b");
              Agg.min_ (cr "" "m") (Expr.col "T" "b");
            ]
          scan_t
      in
      let run algo =
        rows db ~options:{ Exec.default_options with group_algo = algo } g
      in
      Exec.multiset_equal (run Exec.Hash_group) (run Exec.Sort_group))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "exec"
    [
      ( "relational",
        [
          Alcotest.test_case "scan" `Quick test_scan;
          Alcotest.test_case "select 3VL" `Quick test_select_3vl;
          Alcotest.test_case "project ALL/DISTINCT" `Quick
            test_project_all_and_distinct;
          Alcotest.test_case "DISTINCT merges NULL rows" `Quick
            test_distinct_null_pairs;
          Alcotest.test_case "product" `Quick test_product;
        ] );
      ( "joins",
        [
          Alcotest.test_case "algorithms agree" `Quick test_join_algorithms_agree;
          Alcotest.test_case "NULL keys never match" `Quick
            test_join_null_keys_never_match;
          Alcotest.test_case "residual predicates" `Quick
            test_join_residual_predicate;
          Alcotest.test_case "theta join fallback" `Quick
            test_theta_join_falls_back;
          Alcotest.test_case "equi-key extraction" `Quick test_split_equijoin;
        ] );
      ( "grouping",
        [
          Alcotest.test_case "NULL group keys" `Quick test_group_null_key;
          Alcotest.test_case "aggregate NULL rules" `Quick
            test_aggregate_null_rules;
          Alcotest.test_case "all-NULL group" `Quick test_aggregate_all_null_group;
          Alcotest.test_case "scalar agg on empty input" `Quick
            test_scalar_agg_empty_input;
          Alcotest.test_case "arithmetic over aggregates" `Quick
            test_agg_arith_expression;
          Alcotest.test_case "COUNT(DISTINCT)" `Quick test_count_distinct;
        ] );
      ("sort", [ Alcotest.test_case "ORDER BY semantics" `Quick test_sort ]);
      ( "order propagation",
        [
          Alcotest.test_case "claims and physical order" `Quick
            test_order_propagation;
          Alcotest.test_case "merge join skips presorted input" `Quick
            test_merge_join_skips_presorted;
          Alcotest.test_case "Map operator + order" `Quick test_map_operator;
          QCheck_alcotest.to_alcotest prop_claimed_order_is_real;
        ] );
      ( "multiset",
        [ Alcotest.test_case "multiset_equal" `Quick test_multiset_equal ] );
      ( "stats",
        [
          Alcotest.test_case "operator tree" `Quick test_optree;
          Alcotest.test_case "find_all" `Quick test_optree_find_all;
        ] );
      ( "batch pipeline",
        [
          Alcotest.test_case "batch-size invariance" `Quick
            test_batch_size_invariance;
          Alcotest.test_case "corpus differential" `Quick
            test_corpus_differential;
          Alcotest.test_case "generated differential" `Quick
            test_generated_differential;
          Alcotest.test_case "peak live rows" `Quick test_profile_peak;
          Alcotest.test_case "paged pool sweep" `Quick test_paged_pool_sweep;
        ] );
      ("properties", qsuite [ prop_join_algos_agree; prop_group_algos_agree ]);
    ]
