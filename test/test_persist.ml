(* Persistence tests: DDL regeneration, CSV round trips, fidelity of values
   and constraints after reload. *)

open Eager_value
open Eager_storage
open Eager_exec
open Eager_core
open Eager_parser
open Eager_robust
open Eager_workload

let tmpdir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  if Sys.file_exists dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
  dir

let heaps_equal a b table =
  Exec.multiset_equal
    (Heap.to_list (Database.heap a table))
    (Heap.to_list (Database.heap b table))

let test_round_trip_workload () =
  let w = Printers.setup ~users:80 ~machines:4 ~printers:12 () in
  let db = w.Printers.db in
  let dir = tmpdir "eagerdb_persist_rt" in
  (match Persist.save db ~dir with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("save: " ^ Err.to_string e));
  let db2 =
    match Persist.load ~dir () with
    | Ok db2 -> db2
    | Error e -> Alcotest.fail ("load: " ^ Err.to_string e)
  in
  List.iter
    (fun t ->
      Alcotest.(check bool) (t ^ " round-trips") true (heaps_equal db db2 t))
    [ "UserAccount"; "PrinterAuth"; "Printer" ];
  (* the canonical query gives identical answers on the reloaded database *)
  let q = w.Printers.query in
  let r1 = Exec.run_rows db (Plans.e2 db q) in
  let r2 = Exec.run_rows db2 (Plans.e2 db2 q) in
  Alcotest.(check bool) "query results equal" true (Exec.multiset_equal r1 r2);
  (* TestFD still says YES: keys survived the round trip *)
  match Testfd.test db2 q with
  | Testfd.Yes -> ()
  | Testfd.No r -> Alcotest.fail ("keys lost in round trip: " ^ r)

let test_value_fidelity () =
  let db = Database.create () in
  (match
     Binder.run_script db
       {|CREATE TABLE v (i INTEGER, f FLOAT, s VARCHAR(50), b BOOLEAN);
         INSERT INTO v VALUES
           (1, 1.5, 'plain', TRUE),
           (-7, 0.1, 'with, comma', FALSE),
           (NULL, NULL, NULL, NULL),
           (0, 2.0, 'quote '' inside', TRUE);|}
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  let dir = tmpdir "eagerdb_persist_vals" in
  (match Persist.save db ~dir with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Err.to_string e));
  let db2 =
    match Persist.load ~dir () with
    | Ok d -> d
    | Error e -> Alcotest.fail (Err.to_string e)
  in
  Alcotest.(check bool) "values identical" true (heaps_equal db db2 "v");
  (* the float really came back as a float *)
  let row = Heap.get (Database.heap db2 "v") 0 in
  (match row.(1) with
  | Value.Float f -> Alcotest.(check (float 1e-12)) "float exact" 1.5 f
  | v -> Alcotest.fail ("expected float, got " ^ Value.to_string v))

let test_constraints_survive () =
  let db = Database.create () in
  (match
     Binder.run_script db
       {|CREATE DOMAIN Small INTEGER CHECK (VALUE < 100);
         CREATE TABLE t (id INTEGER, v Small, PRIMARY KEY (id));
         INSERT INTO t VALUES (1, 5);
         CREATE VIEW tv AS SELECT T.id i FROM t T WHERE T.v > 0;|}
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  let dir = tmpdir "eagerdb_persist_cons" in
  (match Persist.save db ~dir with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Err.to_string e));
  let db2 =
    match Persist.load ~dir () with
    | Ok d -> d
    | Error e -> Alcotest.fail (Err.to_string e)
  in
  (* duplicate key still rejected *)
  Alcotest.(check bool) "PK enforced after reload" true
    (Result.is_error (Database.insert db2 "t" [ Value.Int 1; Value.Int 6 ]));
  (* the domain check still enforced *)
  Alcotest.(check bool) "domain enforced after reload" true
    (Result.is_error (Database.insert db2 "t" [ Value.Int 2; Value.Int 200 ]));
  (* the view still binds *)
  match
    Binder.bind_select db2 (Parser.parse_select "SELECT i FROM tv V")
  with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail ("view lost: " ^ msg)

let test_ddl_text () =
  let w = Sales.setup ~customers:3 ~orders:5 () in
  let ddl = Persist.ddl_of_database w.Sales.db in
  let contains sub =
    let n = String.length ddl and m = String.length sub in
    let rec go i = i + m <= n && (String.sub ddl i m = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun sub ->
      Alcotest.(check bool) ("DDL mentions " ^ sub) true (contains sub))
    [
      "CREATE TABLE Customer"; "CREATE TABLE Orders"; "PRIMARY KEY (OrderID)";
      "FOREIGN KEY (CustID) REFERENCES Customer (CustID)";
      "CHECK (Amount >= 0)"; "Name VARCHAR(255) NOT NULL";
    ]

let test_indexes_survive () =
  let db = Database.create () in
  (match
     Binder.run_script db
       {|CREATE TABLE t (id INTEGER, grp INTEGER, PRIMARY KEY (id));
         CREATE INDEX t_by_grp ON t (grp);
         INSERT INTO t VALUES (1, 7), (2, 7), (3, 9);|}
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  let dir = tmpdir "eagerdb_persist_idx" in
  (match Persist.save db ~dir with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Err.to_string e));
  let db2 =
    match Persist.load ~dir () with
    | Ok d -> d
    | Error e -> Alcotest.fail (Err.to_string e)
  in
  match Database.find_equality_index db2 ~table:"t" ~col:"grp" with
  | Some def ->
      Alcotest.(check int) "index usable after reload" 2
        (List.length (Database.index_lookup db2 def [ Value.Int 7 ]))
  | None -> Alcotest.fail "index lost in round trip"

let test_errors () =
  (match Persist.load ~dir:"/nonexistent/dir" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing dir must fail");
  (* strings with newlines are refused at save time *)
  let db = Database.create () in
  (match
     Binder.run_script db "CREATE TABLE t (s VARCHAR(10));"
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  Database.load db "t" [ [ Value.Str "a\nb" ] ];
  let dir = tmpdir "eagerdb_persist_err" in
  match Persist.save db ~dir with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "newline string must refuse to persist"

let () =
  Alcotest.run "persist"
    [
      ( "round-trip",
        [
          Alcotest.test_case "workload database" `Quick test_round_trip_workload;
          Alcotest.test_case "value fidelity" `Quick test_value_fidelity;
          Alcotest.test_case "constraints and views" `Quick
            test_constraints_survive;
          Alcotest.test_case "indexes survive" `Quick test_indexes_survive;
        ] );
      ( "format",
        [
          Alcotest.test_case "DDL text" `Quick test_ddl_text;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
    ]
